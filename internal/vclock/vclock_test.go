package vclock

import (
	"testing"
	"time"
)

func TestClock(t *testing.T) {
	c := At(10 * time.Hour)
	if c.Now() != 10*time.Hour {
		t.Errorf("Now = %v", c.Now())
	}
	c.Advance(time.Second)
	if c.Now() != 10*time.Hour+time.Second {
		t.Errorf("after Advance: %v", c.Now())
	}
	c.Advance(-time.Hour)
	if c.Now() != 10*time.Hour+time.Second {
		t.Errorf("negative Advance moved the clock: %v", c.Now())
	}
	c.AdvanceTo(9 * time.Hour)
	if c.Now() != 10*time.Hour+time.Second {
		t.Errorf("AdvanceTo moved the clock backwards: %v", c.Now())
	}
	c.AdvanceTo(11 * time.Hour)
	if c.Now() != 11*time.Hour {
		t.Errorf("AdvanceTo = %v", c.Now())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Intn(1000) != b.Intn(1000) {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 20; i++ {
		if a2.Intn(1000) != c.Intn(1000) {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds produced identical streams")
	}
}

func TestJitterBounds(t *testing.T) {
	g := NewRNG(7)
	base := time.Millisecond
	for i := 0; i < 1000; i++ {
		d := g.Jitter(base, 0.2)
		if d < 800*time.Microsecond || d > 1200*time.Microsecond {
			t.Fatalf("jitter out of bounds: %v", d)
		}
	}
	if g.Jitter(0, 0.5) != 0 {
		t.Errorf("jitter of zero base changed")
	}
	if g.Jitter(base, 0) != base {
		t.Errorf("zero-frac jitter changed the base")
	}
	// Excessive frac is clamped: result stays non-negative.
	for i := 0; i < 100; i++ {
		if d := g.Jitter(base, 5); d < 0 {
			t.Fatalf("clamped jitter negative: %v", d)
		}
	}
}

func TestBetween(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		d := g.Between(time.Microsecond, 5*time.Microsecond)
		if d < time.Microsecond || d >= 5*time.Microsecond {
			t.Fatalf("Between out of range: %v", d)
		}
	}
	if got := g.Between(time.Second, time.Second); got != time.Second {
		t.Errorf("degenerate Between = %v", got)
	}
}

func TestFork(t *testing.T) {
	g := NewRNG(1)
	a := g.Fork(1)
	b := g.Fork(2)
	same := true
	for i := 0; i < 20; i++ {
		if a.Intn(1<<30) != b.Intn(1<<30) {
			same = false
		}
	}
	if same {
		t.Errorf("forked streams identical")
	}
	// Forks of equal construction are deterministic.
	g1, g2 := NewRNG(5), NewRNG(5)
	f1, f2 := g1.Fork(3), g2.Fork(3)
	for i := 0; i < 50; i++ {
		if f1.Intn(1000) != f2.Intn(1000) {
			t.Fatalf("fork determinism broken at %d", i)
		}
	}
}
