// Package vclock provides the virtual-time primitives shared by the
// workload simulators: per-process clocks and a deterministic random
// source for duration jitter. All simulations are reproducible for a
// given seed; nothing reads the wall clock.
package vclock

import (
	"math/rand"
	"time"
)

// Clock is a virtual wall clock for one simulated process. The zero value
// starts at time zero; simulators usually seed it with a time-of-day
// offset so that generated strace timestamps look realistic.
type Clock struct {
	now time.Duration
}

// At returns a clock set to the given instant.
func At(t time.Duration) Clock { return Clock{now: t} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d (negative d is ignored: virtual
// time never runs backwards).
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock forward to t if t is later than now.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// RNG is a deterministic random source with helpers for duration jitter.
type RNG struct {
	r *rand.Rand
}

// NewRNG creates a deterministic source from a seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Jitter returns base scaled by a uniform factor in [1-frac, 1+frac].
// frac is clamped to [0, 1]; a non-positive base returns base unchanged.
func (g *RNG) Jitter(base time.Duration, frac float64) time.Duration {
	if base <= 0 || frac <= 0 {
		return base
	}
	if frac > 1 {
		frac = 1
	}
	f := 1 + frac*(2*g.r.Float64()-1)
	return time.Duration(float64(base) * f)
}

// Between returns a uniform duration in [lo, hi).
func (g *RNG) Between(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(g.r.Int63n(int64(hi-lo)))
}

// Intn proxies a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 proxies a uniform float in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Fork derives an independent deterministic stream, so per-rank sources
// do not share state (and simulation order cannot perturb results).
func (g *RNG) Fork(salt int64) *RNG {
	return NewRNG(g.r.Int63() ^ salt*0x5851f42d4c957f2d)
}
