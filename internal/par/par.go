// Package par provides the bounded worker-pool primitive shared by the
// concurrent ingestion paths (strace directory parsing, STA archive
// decoding, DXT case construction). It exists so that the claim-order
// and abandonment semantics are defined once.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs body(i) for every i in [0, n) across at most workers
// goroutines. workers <= 0 means runtime.GOMAXPROCS(0); workers == 1
// runs inline. body returns false to request that later indices be
// abandoned.
//
// Abandonment is ordered, not merely best-effort: only indices greater
// than the smallest failing index are ever skipped, so every index
// below the first failure is guaranteed to run. Callers that record
// per-index errors can therefore report the first non-nil error in
// index order deterministically, whatever the scheduling. The
// sequential path stops immediately after the first false return.
func ForEach(n, workers int, body func(i int) (keepGoing bool)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if !body(i) {
				return
			}
		}
		return
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		// stopAt holds the smallest index whose body returned false;
		// indices beyond it are abandoned. n means "no stop".
		stopAt atomic.Int64
	)
	stopAt.Store(int64(n))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int64(next.Add(1)) - 1
				if i >= int64(n) {
					return
				}
				// Indices at or below the earliest failure always run:
				// skipping only above it keeps first-failure reporting
				// deterministic even when a later index fails first in
				// wall-clock time.
				if i > stopAt.Load() {
					continue
				}
				if !body(int(i)) {
					for {
						cur := stopAt.Load()
						if i >= cur || stopAt.CompareAndSwap(cur, i) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}
