package par

import (
	"sync/atomic"
	"testing"
)

// TestForEachVisitsAll: every index is visited exactly once at every
// worker count when no body requests a stop.
func TestForEachVisitsAll(t *testing.T) {
	const n = 500
	for _, workers := range []int{0, 1, 4, 32, 1000} {
		var visited [n]atomic.Int32
		ForEach(n, workers, func(i int) bool {
			visited[i].Add(1)
			return true
		})
		for i := range visited {
			if got := visited[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

// TestForEachSequentialStop: workers <= 1 stops immediately after the
// first false return.
func TestForEachSequentialStop(t *testing.T) {
	var visited []int
	ForEach(10, 1, func(i int) bool {
		visited = append(visited, i)
		return i < 3
	})
	if len(visited) != 4 || visited[3] != 3 {
		t.Fatalf("visited %v, want [0 1 2 3]", visited)
	}
}

// TestForEachParallelStop: the ordered-abandonment guarantee — every
// index up to and including the smallest stopping index always runs
// exactly once, nothing runs twice, and later indices may be skipped.
func TestForEachParallelStop(t *testing.T) {
	const n, stopAt = 300, 7
	var visited [n]atomic.Int32
	ForEach(n, 8, func(i int) bool {
		visited[i].Add(1)
		return i != stopAt
	})
	for i := 0; i <= stopAt; i++ {
		if got := visited[i].Load(); got != 1 {
			t.Fatalf("index %d below/at the stop visited %d times, want exactly 1", i, got)
		}
	}
	ran := 0
	for i := stopAt + 1; i < n; i++ {
		switch got := visited[i].Load(); got {
		case 0:
		case 1:
			ran++
		default:
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
	t.Logf("ran %d of %d bodies past the stop before abandonment", ran, n-stopAt-1)
}

// TestForEachEarliestStopWins: when several bodies request a stop, the
// guarantee is anchored to the smallest such index, not the first in
// wall-clock time: everything below it must still run.
func TestForEachEarliestStopWins(t *testing.T) {
	const n = 200
	fail := map[int]bool{20: true, 150: true}
	for run := 0; run < 20; run++ {
		var visited [n]atomic.Int32
		ForEach(n, 8, func(i int) bool {
			visited[i].Add(1)
			return !fail[i]
		})
		for i := 0; i <= 20; i++ {
			if got := visited[i].Load(); got != 1 {
				t.Fatalf("run %d: index %d visited %d times, want 1", run, i, got)
			}
		}
	}
}

// TestForEachEmpty: n = 0 is a no-op at every worker count.
func TestForEachEmpty(t *testing.T) {
	for _, workers := range []int{0, 1, 8} {
		ForEach(0, workers, func(i int) bool {
			t.Fatalf("workers=%d: body called with i=%d", workers, i)
			return false
		})
	}
}
