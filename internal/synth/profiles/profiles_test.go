package profiles_test

import (
	"strings"
	"testing"

	"stinspector/internal/synth/profiles"
	"stinspector/internal/trace"
)

// renderIDs builds the deterministic text rendering used by the
// determinism properties: the log's cases in CaseID order with every
// event attribute spelled out. (The strace-text rendering is covered
// separately by the round-trip tests; this form also pins attributes
// strace text cannot carry, like sizes on non-transfer calls.)
func renderLog(l *trace.EventLog) string {
	var b strings.Builder
	for _, c := range l.Cases() {
		b.WriteString(c.ID.String())
		b.WriteByte('\n')
		for _, e := range c.Events {
			b.WriteString(e.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func TestRegistry(t *testing.T) {
	names := profiles.Names()
	want := []string{"baseline", "heavytail", "burst", "hostileargs", "widevocab", "multitenant", "behavior"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], n)
		}
		p, ok := profiles.Lookup(n)
		if !ok || p.Name != n || p.Desc == "" {
			t.Errorf("Lookup(%q) = %+v, %v", n, p, ok)
		}
	}
	if _, ok := profiles.Lookup("no-such-profile"); ok {
		t.Error("Lookup accepted an unknown profile")
	}
	if len(profiles.All()) != len(want) {
		t.Errorf("All() has %d profiles, want %d", len(profiles.All()), len(want))
	}
}

// TestProfileDeterminism: the same (profile, cid, nCases, perCase,
// seed) must yield the byte-identical log — the property the committed
// BENCH_matrix.json baselines and the fuzz corpus seeds rely on.
func TestProfileDeterminism(t *testing.T) {
	for _, p := range profiles.All() {
		t.Run(p.Name, func(t *testing.T) {
			a := renderLog(p.Generate("det", 7, 50, 42))
			b := renderLog(p.Generate("det", 7, 50, 42))
			if a != b {
				t.Fatalf("two generations with identical inputs differ")
			}
			if a == "" {
				t.Fatal("empty rendering")
			}
		})
	}
}

// TestProfileSeedsDistinct: distinct seeds must yield distinct logs —
// a generator that ignores its seed cannot populate a matrix sweep.
func TestProfileSeedsDistinct(t *testing.T) {
	for _, p := range profiles.All() {
		t.Run(p.Name, func(t *testing.T) {
			a := renderLog(p.Generate("seed", 5, 40, 1))
			b := renderLog(p.Generate("seed", 5, 40, 2))
			if a == b {
				t.Fatalf("seeds 1 and 2 generated the identical log")
			}
		})
	}
}

// TestProfileShape: every profile delivers exactly nCases × perCase
// events, all calls within the strace extraction defaults (so no event
// is silently dropped on parse-back), sizes only on transfer calls and
// microsecond-resolution timestamps (so strace text round-trips
// exactly).
func TestProfileShape(t *testing.T) {
	transfer := map[string]bool{"read": true, "write": true, "pread64": true, "pwrite64": true}
	ioCalls := map[string]bool{
		"read": true, "write": true, "pread64": true, "pwrite64": true,
		"openat": true, "lseek": true, "fsync": true, "close": true,
		// The behavior profile adds the semantic-decoder call classes,
		// all inside the strace.BehaviorCalls extraction defaults.
		"unlink": true, "rename": true, "execve": true, "connect": true,
	}
	for _, p := range profiles.All() {
		t.Run(p.Name, func(t *testing.T) {
			const nCases, perCase = 6, 48
			l := p.Generate("shape", nCases, perCase, 9)
			if l.NumCases() != nCases {
				t.Errorf("cases = %d, want %d", l.NumCases(), nCases)
			}
			if l.NumEvents() != nCases*perCase {
				t.Errorf("events = %d, want %d", l.NumEvents(), nCases*perCase)
			}
			l.Events(func(e trace.Event) {
				if !ioCalls[e.Call] {
					t.Errorf("call %q outside the strace extraction defaults", e.Call)
				}
				if transfer[e.Call] != e.HasSize() {
					t.Errorf("%s(%s): HasSize = %v, want %v", e.Call, e.FP, e.HasSize(), transfer[e.Call])
				}
				if e.Start%1000 != 0 || e.Dur%1000 != 0 {
					t.Errorf("%s: sub-microsecond timestamp start=%d dur=%d", e.Call, e.Start, e.Dur)
				}
				if e.FP == "" {
					t.Errorf("%s: empty path", e.Call)
				}
				if strings.ContainsAny(e.FP, "\n\r") {
					t.Errorf("path %q contains a line break", e.FP)
				}
			})
			if err := l.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

// TestHeavytailHistogram checks that the heavytail vocabulary is
// actually heavy-tailed: the hottest handful of paths absorb a large
// share of all events while a long tail of paths is touched exactly
// once — the shape that makes the profile a symbol-table stressor.
func TestHeavytailHistogram(t *testing.T) {
	p, _ := profiles.Lookup("heavytail")
	const nCases, perCase = 8, 400
	l := p.Generate("ht", nCases, perCase, 7)
	hist := profiles.Vocabulary(l)
	total := l.NumEvents()

	if len(hist) < total/10 {
		t.Fatalf("only %d distinct paths over %d events; vocabulary is not wide", len(hist), total)
	}
	top := 10
	if top > len(hist) {
		top = len(hist)
	}
	var head int
	for _, pc := range hist[:top] {
		head += pc.Count
	}
	if head*4 < total {
		t.Errorf("top %d paths cover %d/%d events, want >= 25%% — head is not heavy", top, head, total)
	}
	ones := 0
	for _, pc := range hist {
		if pc.Count == 1 {
			ones++
		}
	}
	if ones*10 < len(hist)*3 {
		t.Errorf("%d/%d paths are one-hit, want >= 30%% — tail is not long", ones, len(hist))
	}
	if hist[0].Count < 20*hist[len(hist)/2].Count {
		t.Errorf("hottest path count %d < 20x median %d — distribution too flat",
			hist[0].Count, hist[len(hist)/2].Count)
	}
}

// maxOverlap computes the maximum number of simultaneously open
// closed-open intervals by an endpoint sweep (ends processed before
// starts at equal timestamps, matching trace.Interval.Overlaps).
func maxOverlap(l *trace.EventLog) int {
	type point struct {
		at    int64
		delta int
	}
	var pts []point
	l.Events(func(e trace.Event) {
		pts = append(pts, point{int64(e.Start), +1}, point{int64(e.End()), -1})
	})
	// Sort by time; at equal time, ends (-1) first.
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && (pts[j].at < pts[j-1].at || (pts[j].at == pts[j-1].at && pts[j].delta < pts[j-1].delta)); j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	depth, max := 0, 0
	for _, p := range pts {
		depth += p.delta
		if depth > max {
			max = depth
		}
	}
	return max
}

// TestBurstDepth: the burst profile must reach at least its declared
// overlap depth — the invariant that makes it a max-concurrency heap
// stressor rather than just another sequential trace.
func TestBurstDepth(t *testing.T) {
	p, _ := profiles.Lookup("burst")
	for _, tc := range []struct{ nCases, perCase int }{{4, 32}, {9, 20}, {3, 5}} {
		l := p.Generate("b", tc.nCases, tc.perCase, 3)
		want := profiles.BurstDepth(tc.nCases, tc.perCase)
		if want < tc.nCases {
			t.Fatalf("declared depth %d below case count %d", want, tc.nCases)
		}
		if got := maxOverlap(l); got < want {
			t.Errorf("nCases=%d perCase=%d: max overlap %d, declared target %d",
				tc.nCases, tc.perCase, got, want)
		}
	}
}

// TestWidevocabDistinctPaths: exactly one distinct path per event —
// the unbounded-vocabulary invariant behind the retention gates.
func TestWidevocabDistinctPaths(t *testing.T) {
	p, _ := profiles.Lookup("widevocab")
	l := p.Generate("wv", 7, 60, 5)
	if got, want := len(profiles.Vocabulary(l)), l.NumEvents(); got != want {
		t.Errorf("distinct paths = %d, want %d (one per event)", got, want)
	}
}

// TestHostileargsVocabulary: every generated path is drawn from the
// published hostile vocabulary, and a generation at realistic size
// exercises all of it.
func TestHostileargsVocabulary(t *testing.T) {
	p, _ := profiles.Lookup("hostileargs")
	want := make(map[string]bool)
	for _, s := range profiles.HostilePaths() {
		want[s] = true
	}
	l := p.Generate("ha", 8, 100, 11)
	seen := make(map[string]bool)
	l.Events(func(e trace.Event) {
		if !want[e.FP] {
			t.Errorf("path %q not in the hostile vocabulary", e.FP)
		}
		seen[e.FP] = true
	})
	if len(seen) != len(want) {
		t.Errorf("generation used %d/%d hostile paths", len(seen), len(want))
	}
}

// TestMultitenantDisjoint: tenants interleave across cases, each case
// carries its tenant's CID, and the per-tenant path vocabularies are
// pairwise disjoint — the stserve isolation shape.
func TestMultitenantDisjoint(t *testing.T) {
	p, _ := profiles.Lookup("multitenant")
	const nCases = 10
	l := p.Generate("mt", nCases, 40, 13)
	vocab := make(map[string]map[string]bool) // cid -> paths
	tenants := make(map[string]bool)
	for _, c := range l.Cases() {
		wantCID := profiles.TenantCID("mt", c.ID.RID%profiles.MultitenantTenants)
		if c.ID.CID != wantCID {
			t.Errorf("case rid=%d has cid %q, want %q", c.ID.RID, c.ID.CID, wantCID)
		}
		if strings.Contains(c.ID.CID, "_") {
			t.Errorf("cid %q contains '_', which breaks trace file-name parsing", c.ID.CID)
		}
		tenants[c.ID.CID] = true
		if vocab[c.ID.CID] == nil {
			vocab[c.ID.CID] = make(map[string]bool)
		}
		for _, e := range c.Events {
			vocab[c.ID.CID][e.FP] = true
		}
	}
	if len(tenants) != profiles.MultitenantTenants {
		t.Fatalf("saw %d tenants, want %d", len(tenants), profiles.MultitenantTenants)
	}
	cids := make([]string, 0, len(vocab))
	for cid := range vocab {
		cids = append(cids, cid)
	}
	for i, a := range cids {
		for _, b := range cids[i+1:] {
			for path := range vocab[a] {
				if vocab[b][path] {
					t.Errorf("path %q shared between tenants %s and %s", path, a, b)
				}
			}
		}
	}
}

// TestVocabularyOrdering: the histogram helper sorts by descending
// count with a deterministic tie-break, so invariant checks built on
// it are stable.
func TestVocabularyOrdering(t *testing.T) {
	c := trace.NewCase(trace.CaseID{CID: "v", Host: "h", RID: 1}, []trace.Event{
		{Call: "read", Start: 0, Dur: 1000, FP: "/b", Size: 1},
		{Call: "read", Start: 2000, Dur: 1000, FP: "/a", Size: 1},
		{Call: "read", Start: 4000, Dur: 1000, FP: "/b", Size: 2},
	})
	hist := profiles.Vocabulary(trace.MustNewEventLog(c))
	if len(hist) != 2 || hist[0].Path != "/b" || hist[0].Count != 2 || hist[1].Path != "/a" {
		t.Errorf("histogram = %+v", hist)
	}
}

var sink string

// BenchmarkGenerate pins the generators' own cost so matrix sweeps can
// budget for it.
func BenchmarkGenerate(b *testing.B) {
	for _, p := range profiles.All() {
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l := p.Generate("bench", 8, 200, 17)
				sink = l.Cases()[0].Events[0].FP
			}
		})
	}
}
