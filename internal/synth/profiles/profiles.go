// Package profiles names the adversarial and heavy-tail workload
// generators of the scenario matrix. Where internal/synth models the
// paper's well-behaved per-rank I/O shape, each profile here models one
// hostile production shape the ROADMAP's service must survive: a
// heavy-tailed path vocabulary (symbol-table stress), deep concurrency
// bursts (max-concurrency heap stress), pathological argument strings
// (parser stress, drawn from and feeding the strace fuzz corpus), an
// unbounded per-event vocabulary (retention stress), and interleaved
// multi-tenant sessions with disjoint vocabularies (the stserve shape).
//
// Every profile is a pure function of (profile, cid, nCases, perCase,
// seed): the same tuple yields the byte-identical event-log — and
// therefore byte-identical strace text, STA archive and DXT dump — on
// every machine, so the scenario matrix in cmd/stbench and the
// committed BENCH_matrix.json baselines are reproducible. Generated
// events carry a transfer size only for read/write variants and stay at
// microsecond resolution, so a write-to-strace-text → ParseCase round
// trip reproduces the log exactly, event for event.
package profiles

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"stinspector/internal/trace"
)

// Profile is one named workload generator of the scenario matrix.
type Profile struct {
	// Name identifies the profile in -profile/-matrix flags and in
	// BENCH_matrix.json rows.
	Name string
	// Desc is the one-line description -list-profiles prints.
	Desc string
	gen  func(cid string, nCases, perCase int, seed int64) *trace.EventLog
}

// Generate builds the profile's event-log: nCases cases of perCase
// events each, named by cid. The same (profile, cid, nCases, perCase,
// seed) always yields the identical log.
func (p Profile) Generate(cid string, nCases, perCase int, seed int64) *trace.EventLog {
	return p.gen(cid, nCases, perCase, seed)
}

// registry holds the profiles in their canonical (matrix row) order.
var registry = []Profile{
	{
		Name: "baseline",
		Desc: "the paper's well-behaved shape: small cyclic path vocabulary, sequential bursts",
		gen:  baseline,
	},
	{
		Name: "heavytail",
		Desc: "Zipf/power-law path vocabulary: few very hot paths over a long one-hit tail (symbol-table stress)",
		gen:  heavytail,
	},
	{
		Name: "burst",
		Desc: "deep synchronized concurrency waves across all cases (max-concurrency interval-heap stress)",
		gen:  burst,
	},
	{
		Name: "hostileargs",
		Desc: "pathological path strings — quotes, escapes, delimiters, unicode, long names (parser stress)",
		gen:  hostileargs,
	},
	{
		Name: "widevocab",
		Desc: "every event touches its own distinct file: unbounded vocabulary (retention stress, generalizes synth.WideLog)",
		gen:  widevocab,
	},
	{
		Name: "multitenant",
		Desc: "interleaved per-tenant sessions with disjoint path vocabularies (the stserve shape)",
		gen:  multitenant,
	},
	{
		Name: "behavior",
		Desc: "file-lifecycle, spawn and connect mix driving the semantic decoders (behavior-profile stress)",
		gen:  behaviorMix,
	},
}

// All returns every profile in canonical order. The slice is fresh;
// callers may reorder it.
func All() []Profile {
	return append([]Profile(nil), registry...)
}

// Names returns the profile names in canonical order.
func Names() []string {
	names := make([]string, len(registry))
	for i, p := range registry {
		names[i] = p.Name
	}
	return names
}

// Lookup resolves a profile by name.
func Lookup(name string) (Profile, bool) {
	for _, p := range registry {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// transferCalls and ioCalls mirror the strace extraction defaults
// (strace.TransferCalls / strace.IOCalls) without importing the
// package: profiles must stay importable from internal/strace tests.
// Restricting generation to these call names means a profile's log
// survives ParseCase with default Options without dropping events.
func isTransfer(call string) bool {
	switch call {
	case "read", "write", "pread64", "pwrite64":
		return true
	}
	return false
}

// ioCalls is the call mix profiles cycle through; every entry is in
// strace.IOCalls.
var ioCalls = []string{"openat", "read", "write", "pread64", "pwrite64", "lseek", "fsync", "close"}

// sizeFor draws a transfer size for transfer calls and returns
// trace.SizeUnknown otherwise, so rendered strace text parses back to
// the identical event (non-transfer records carry no size).
func sizeFor(rng *rand.Rand, call string) int64 {
	if !isTransfer(call) {
		return trace.SizeUnknown
	}
	return int64(rng.Intn(1 << 18))
}

// generate is the case/event scaffolding shared by the profiles: id
// names case c, ev fills in event i of case c from the shared rng.
// Cases are generated in index order from one rng stream, so the log is
// a pure function of the inputs. NewCase sorts each case by start time.
func generate(cid string, nCases, perCase int, seed int64, id func(c int) trace.CaseID, ev func(rng *rand.Rand, c, i int) trace.Event) *trace.EventLog {
	rng := rand.New(rand.NewSource(seed))
	cases := make([]*trace.Case, nCases)
	for c := 0; c < nCases; c++ {
		evs := make([]trace.Event, perCase)
		for i := range evs {
			evs[i] = ev(rng, c, i)
		}
		cases[c] = trace.NewCase(id(c), evs)
	}
	return trace.MustNewEventLog(cases...)
}

// hostID is the default case naming: hosts cycle h0..h3 as in
// synth.Log, RID = case index.
func hostID(cid string) func(c int) trace.CaseID {
	return func(c int) trace.CaseID {
		return trace.CaseID{CID: cid, Host: fmt.Sprintf("h%d", c%4), RID: c}
	}
}

// baseline is the paper's friendly shape — synth.Log's model with
// round-trip-exact sizes — included so the scenario matrix carries the
// reference row the hostile profiles are compared against.
func baseline(cid string, nCases, perCase int, seed int64) *trace.EventLog {
	return generate(cid, nCases, perCase, seed, hostID(cid), func(rng *rand.Rand, c, i int) trace.Event {
		call := ioCalls[(c+i)%len(ioCalls)]
		start := time.Duration(i*1500+rng.Intn(1500)) * time.Microsecond
		return trace.Event{
			PID:   4000 + c,
			Call:  call,
			Start: start,
			Dur:   time.Duration(5+rng.Intn(400)) * time.Microsecond,
			FP:    fmt.Sprintf("/scratch/job/rank%03d/part%02d.bin", c, i%8),
			Size:  sizeFor(rng, call),
		}
	})
}

// HeavytailTopDirs bounds the top-2 path components of the heavytail
// vocabulary: ranks map into this many /zipf/dNN/ directories, so
// CallTopDirs-style activity mappings stay bounded while the full path
// vocabulary (and therefore the symbol table) grows with the tail.
const HeavytailTopDirs = 16

// heavytail draws every path from a Zipf(s=1.2) rank distribution over
// a vocabulary as large as the whole log: a handful of paths absorb
// most events while the tail is full of paths seen once — the shape
// that stresses the sharded symbol table's growth path and the
// per-path memoization in the analysis fold. The histogram invariant
// (top ranks dominate, a long one-hit tail exists) is property-tested.
func heavytail(cid string, nCases, perCase int, seed int64) *trace.EventLog {
	total := nCases * perCase
	if total < 1 {
		total = 1
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(total-1)+1)
	return generate(cid, nCases, perCase, seed+1, hostID(cid), func(rng *rand.Rand, c, i int) trace.Event {
		call := ioCalls[(c+i)%len(ioCalls)]
		rank := zipf.Uint64()
		start := time.Duration(i*1200+rng.Intn(1200)) * time.Microsecond
		return trace.Event{
			PID:   5000 + c,
			Call:  call,
			Start: start,
			Dur:   time.Duration(5+rng.Intn(300)) * time.Microsecond,
			FP:    fmt.Sprintf("/zipf/d%02d/f%08d.dat", rank%HeavytailTopDirs, rank),
			Size:  sizeFor(rng, call),
		}
	})
}

// burstWave is the number of events per concurrency wave within one
// case: every wave's events overlap each other and, because waves are
// scheduled on a shared clock, overlap the same wave of every other
// case.
const burstWave = 8

// BurstDepth is the concurrency the burst profile guarantees: at the
// crest of each wave at least this many intervals are simultaneously
// open across the whole log. The property test checks the generated
// intervals actually reach it.
func BurstDepth(nCases, perCase int) int {
	w := perCase
	if w > burstWave {
		w = burstWave
	}
	if nCases < 1 || w < 1 {
		return 0
	}
	return nCases * w
}

// burst schedules events in synchronized waves: within wave w, event j
// of every case opens at waveStart + j·10µs and stays open past the
// crest at waveStart + 1ms, so all nCases × min(perCase, burstWave)
// intervals overlap there. Long equal-start, equal-end interval pileups
// are exactly what the max-concurrency sweep's end-heap has to absorb.
func burst(cid string, nCases, perCase int, seed int64) *trace.EventLog {
	const (
		slot  = 10 * time.Microsecond
		crest = time.Millisecond
		span  = 4 * time.Millisecond // wave period; > crest + jitter so waves stay disjoint
	)
	return generate(cid, nCases, perCase, seed, hostID(cid), func(rng *rand.Rand, c, i int) trace.Event {
		wave := i / burstWave
		j := i % burstWave
		call := ioCalls[(c+j)%len(ioCalls)]
		start := time.Duration(wave)*span + time.Duration(j)*slot
		// Every interval must cover the crest; the jitter beyond it
		// varies the end order so the heap sees both equal and distinct
		// end times.
		dur := crest - time.Duration(j)*slot + time.Duration(rng.Intn(200))*time.Microsecond
		return trace.Event{
			PID:   6000 + c,
			Call:  call,
			Start: start,
			Dur:   dur,
			FP:    fmt.Sprintf("/burst/rank%03d/w%03d.bin", c, wave%8),
			Size:  sizeFor(rng, call),
		}
	})
}

// hostileSegments is the pathological path vocabulary: every entry is a
// complete file path exercising one parser hazard — quotes and
// backslash escapes inside the quoted openat argument, delimiters
// (commas, spaces, tabs, parentheses, brackets, braces, angle pairs)
// inside fd-path annotations, strace-grammar lookalikes, unicode, and
// an oversized name. Each one survives the writer → ParseCase round
// trip byte-exactly (the round-trip property test enforces this), and
// the same strings seed the FuzzParseCase corpus.
var hostileSegments = []string{
	"/hostile/sp ace/with,comma.bin",
	// Quotes must come in unescaped pairs: strace's own argument
	// grammar cannot represent a path whose fd annotation carries an
	// odd number of quotes (the rest of the record reads as string
	// body), so that shape is unparseable by construction, not a
	// parser bug. Paired quotes are fair game.
	"/hostile/qu\"ote\"pair/dou\"\"ble.bin",
	"/hostile/back\\slash/dou\\\\ble.bin",
	"/hostile/paren(pair)/brack[et]/bra{ce}.bin",
	"/hostile/angle<pair>/nested<a<b>>.bin",
	"/hostile/close)only/and]this/and}too.bin",
	"/hostile/eq=sign/flags=O_RDWR|O_CREAT.bin",
	"/hostile/tab\there/end.bin",
	"/hostile/ lead/and/trail .bin",
	"/hostile/-1 EAGAIN (Resource temporarily unavailable)",
	"/hostile/<unfinished ...>/resumed>.bin",
	"/hostile/+++ exited with 0 +++.bin",
	"/hostile/--- SIGCHLD {si_signo=SIGCHLD} ---.bin",
	"/hostile/%s/%d/%v/printf-verbs.bin",
	"/hostile/é🙂/ユニコード/файл.bin",
	"/hostile/....../trail.dots...",
	"/hostile/long/" + strings.Repeat("a", 480) + ".bin",
}

// HostilePaths returns the hostile path vocabulary (a copy): the fuzz
// corpus seeder and the property tests both read it.
func HostilePaths() []string {
	return append([]string(nil), hostileSegments...)
}

// hostileargs cycles the I/O call mix over the pathological vocabulary:
// every event's path is one of the hostileSegments, chosen by rng, so a
// trace file is a dense sequence of worst-case argument strings. It is
// the profile behind the committed FuzzParseCase corpus seeds.
func hostileargs(cid string, nCases, perCase int, seed int64) *trace.EventLog {
	return generate(cid, nCases, perCase, seed, hostID(cid), func(rng *rand.Rand, c, i int) trace.Event {
		call := ioCalls[(c+i)%len(ioCalls)]
		start := time.Duration(i*900+rng.Intn(900)) * time.Microsecond
		return trace.Event{
			PID:   7000 + c,
			Call:  call,
			Start: start,
			Dur:   time.Duration(5+rng.Intn(250)) * time.Microsecond,
			FP:    hostileSegments[rng.Intn(len(hostileSegments))],
			Size:  sizeFor(rng, call),
		}
	})
}

// widevocab generalizes synth.WideLog: every event touches its own
// distinct file (the path embeds case and event index), so a log of N
// events carries exactly N distinct paths — the workload under which a
// process-wide symbol table grows without bound and a scoped per-pass
// table must confine the damage. Unlike synth.WideLog it emits
// round-trip-exact sizes, so the scenario matrix can drive it through
// every backend.
func widevocab(cid string, nCases, perCase int, seed int64) *trace.EventLog {
	return generate(cid, nCases, perCase, seed, hostID(cid), func(rng *rand.Rand, c, i int) trace.Event {
		call := ioCalls[(c+i)%len(ioCalls)]
		start := time.Duration(i*1100+rng.Intn(1100)) * time.Microsecond
		return trace.Event{
			PID:   8000 + c,
			Call:  call,
			Start: start,
			Dur:   time.Duration(5+rng.Intn(350)) * time.Microsecond,
			FP:    fmt.Sprintf("/wide/rank%03d/obj%08d.bin", c, c*perCase+i),
			Size:  sizeFor(rng, call),
		}
	})
}

// MultitenantTenants is the number of interleaved sessions the
// multitenant profile simulates; cases round-robin across tenants (a
// log with fewer cases simply has fewer tenants).
const MultitenantTenants = 4

// TenantCID names tenant t's command id under the profile's base cid.
// The separator is a '-' (never '_': trace file names parse the last
// underscore-separated field as the RID).
func TenantCID(cid string, tenant int) string {
	return fmt.Sprintf("%s-t%d", cid, tenant)
}

// multitenant interleaves MultitenantTenants sessions: case c belongs
// to tenant c mod MultitenantTenants, carries that tenant's CID, and
// draws every path from a vocabulary rooted at the tenant's private
// prefix — vocabularies are pairwise disjoint by construction. This is
// the anticipated stserve shape: concurrent named sessions whose
// symbol universes must not bleed into each other.
func multitenant(cid string, nCases, perCase int, seed int64) *trace.EventLog {
	id := func(c int) trace.CaseID {
		t := c % MultitenantTenants
		return trace.CaseID{CID: TenantCID(cid, t), Host: fmt.Sprintf("h%d", c%4), RID: c}
	}
	return generate(cid, nCases, perCase, seed, id, func(rng *rand.Rand, c, i int) trace.Event {
		t := c % MultitenantTenants
		call := ioCalls[(c+i)%len(ioCalls)]
		start := time.Duration(i*1300+rng.Intn(1300)) * time.Microsecond
		return trace.Event{
			PID:   9000 + c,
			Call:  call,
			Start: start,
			Dur:   time.Duration(5+rng.Intn(300)) * time.Microsecond,
			FP:    fmt.Sprintf("/tenant%d/sess%03d/f%04d.dat", t, c, rng.Intn(perCase/2+1)),
			Size:  sizeFor(rng, call),
		}
	})
}

// behaviorCallMix is the call cycle of the behavior profile: the file
// lifecycle, spawn and connect calls the semantic decoding layer
// classifies, plus the transfer calls that keep the DXT trip populated.
// Every entry is inside strace.IOCalls ∪ strace.BehaviorCalls, so the
// log survives ParseCase with default Options without dropping events.
var behaviorCallMix = []string{"openat", "read", "write", "unlink", "rename", "execve", "connect", "close"}

// behaviorMix exercises the semantic decoders end to end: unlink and
// rename records over the per-rank data files, execve records naming a
// small tool vocabulary, and connect records across IPv4, IPv6 and unix
// socket subjects. The strace writer renders each of these in realistic
// argument form (sockaddr structs, argv arrays), so the profile's
// round trip is what pins the decoder ↔ writer agreement.
func behaviorMix(cid string, nCases, perCase int, seed int64) *trace.EventLog {
	return generate(cid, nCases, perCase, seed, hostID(cid), func(rng *rand.Rand, c, i int) trace.Event {
		call := behaviorCallMix[(c+i)%len(behaviorCallMix)]
		start := time.Duration(i*1400+rng.Intn(1400)) * time.Microsecond
		var fp string
		switch call {
		case "execve":
			fp = fmt.Sprintf("/usr/bin/tool%02d", rng.Intn(12))
		case "connect":
			switch rng.Intn(5) {
			case 0:
				fp = fmt.Sprintf("/run/svc%d.sock", rng.Intn(4))
			case 1:
				fp = fmt.Sprintf("[2001:db8::%x]:443", 1+rng.Intn(15))
			default:
				ports := []int{443, 80, 8080}
				fp = fmt.Sprintf("10.0.%d.%d:%d", c%4, rng.Intn(32), ports[rng.Intn(len(ports))])
			}
		default:
			fp = fmt.Sprintf("/app/data/rank%03d/f%02d.dat", c, rng.Intn(24))
		}
		return trace.Event{
			PID:   10000 + c,
			Call:  call,
			Start: start,
			Dur:   time.Duration(5+rng.Intn(300)) * time.Microsecond,
			FP:    fp,
			Size:  sizeFor(rng, call),
		}
	})
}

// Vocabulary returns the distinct file paths of a log with their event
// counts, sorted by descending count then path — the histogram the
// heavy-tail and disjointness invariants are checked on.
func Vocabulary(l *trace.EventLog) []PathCount {
	counts := make(map[string]int)
	l.Events(func(e trace.Event) { counts[e.FP]++ })
	out := make([]PathCount, 0, len(counts))
	for p, n := range counts {
		out = append(out, PathCount{Path: p, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// PathCount is one row of a vocabulary histogram.
type PathCount struct {
	Path  string
	Count int
}
