package profiles_test

// Round-trip properties: every profile's output must survive each
// ingestion backend and reach analysis with zero dropped events. The
// strace-text trip is event-exact (the writer/parser pair is lossless
// for representable logs), the STA archive trip is exact by
// construction, and the DXT trip is count-level (the dump format only
// carries sized transfer calls under a single collective id).

import (
	"bytes"
	"testing"
	"testing/fstest"

	"stinspector/internal/archive"
	"stinspector/internal/core"
	"stinspector/internal/dxt"
	"stinspector/internal/pm"
	"stinspector/internal/source"
	"stinspector/internal/strace"
	"stinspector/internal/synth/profiles"
	"stinspector/internal/trace"
)

const rtCases, rtPerCase = 6, 60

func rtLog(t *testing.T, p profiles.Profile) *trace.EventLog {
	t.Helper()
	return p.Generate("rt", rtCases, rtPerCase, 20260808)
}

// requireEqualLogs compares two logs case by case, event by event.
func requireEqualLogs(t *testing.T, want, got *trace.EventLog) {
	t.Helper()
	if got.NumCases() != want.NumCases() {
		t.Fatalf("cases = %d, want %d", got.NumCases(), want.NumCases())
	}
	for _, wc := range want.Cases() {
		gc := got.Case(wc.ID)
		if gc == nil {
			t.Fatalf("case %s missing after round trip", wc.ID)
		}
		if len(gc.Events) != len(wc.Events) {
			t.Fatalf("case %s: %d events, want %d — events were dropped",
				wc.ID, len(gc.Events), len(wc.Events))
		}
		for i, we := range wc.Events {
			if !gc.Events[i].Equal(we) {
				t.Fatalf("case %s event %d:\n got %s\nwant %s", wc.ID, i, gc.Events[i], we)
			}
		}
	}
}

// TestRoundTripStraceText: write each case as strace -ttt -T -y text,
// parse it back strictly, and require exact event equality.
func TestRoundTripStraceText(t *testing.T) {
	for _, p := range profiles.All() {
		t.Run(p.Name, func(t *testing.T) {
			want := rtLog(t, p)
			cases := make([]*trace.Case, 0, want.NumCases())
			for _, c := range want.Cases() {
				var buf bytes.Buffer
				if err := strace.NewWriter(&buf).WriteCase(c); err != nil {
					t.Fatal(err)
				}
				got, err := strace.ParseCase(c.ID, bytes.NewReader(buf.Bytes()), strace.Options{Strict: true})
				if err != nil {
					t.Fatalf("case %s: %v", c.ID, err)
				}
				cases = append(cases, got)
			}
			requireEqualLogs(t, want, trace.MustNewEventLog(cases...))
		})
	}
}

// TestRoundTripArchive: STA encode/decode is exact for every profile.
func TestRoundTripArchive(t *testing.T) {
	for _, p := range profiles.All() {
		t.Run(p.Name, func(t *testing.T) {
			want := rtLog(t, p)
			var buf bytes.Buffer
			if err := archive.Write(&buf, want); err != nil {
				t.Fatal(err)
			}
			r, err := archive.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			got, err := r.ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			requireEqualLogs(t, want, got)
		})
	}
}

// TestRoundTripDXT: the dump format only represents sized transfer
// calls, so the trip is count-level — every representable event must
// come back, none invented.
func TestRoundTripDXT(t *testing.T) {
	for _, p := range profiles.All() {
		t.Run(p.Name, func(t *testing.T) {
			want := rtLog(t, p)
			var buf bytes.Buffer
			skipped, err := dxt.Write(&buf, want)
			if err != nil {
				t.Fatal(err)
			}
			records, err := dxt.Parse(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			got, err := dxt.ToEventLog("rt", records)
			if err != nil {
				t.Fatal(err)
			}
			if got.NumEvents() != want.NumEvents()-skipped {
				t.Errorf("events = %d, want %d (%d total - %d unrepresentable)",
					got.NumEvents(), want.NumEvents()-skipped, want.NumEvents(), skipped)
			}
			if got.NumEvents() == 0 {
				t.Error("no events survived the DXT trip")
			}
		})
	}
}

// TestRoundTripAnalysis: each profile, ingested from rendered strace
// text through the streaming pipeline, reaches analysis with zero
// dropped and zero unmapped events.
func TestRoundTripAnalysis(t *testing.T) {
	for _, p := range profiles.All() {
		t.Run(p.Name, func(t *testing.T) {
			want := rtLog(t, p)
			fsys := fstest.MapFS{}
			for _, c := range want.Cases() {
				var buf bytes.Buffer
				if err := strace.NewWriter(&buf).WriteCase(c); err != nil {
					t.Fatal(err)
				}
				fsys[c.ID.FileName()] = &fstest.MapFile{Data: buf.Bytes()}
			}
			src, err := strace.StreamFS(fsys, ".", strace.Options{Strict: true, Parallelism: 2, Window: 2})
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.AnalyzeStreamParallel(src, pm.CallTopDirs{Depth: 2}, 2, true)
			if err != nil {
				t.Fatal(err)
			}
			if res.Events != want.NumEvents() {
				t.Errorf("stream delivered %d events, want %d", res.Events, want.NumEvents())
			}
			if res.Cases != want.NumCases() {
				t.Errorf("stream delivered %d cases, want %d", res.Cases, want.NumCases())
			}
			if got := res.ActivityLog.MappedEvents(); got != want.NumEvents() {
				t.Errorf("mapped %d events, want %d", got, want.NumEvents())
			}
			if got := res.ActivityLog.UnmappedEvents(); got != 0 {
				t.Errorf("unmapped events = %d, want 0", got)
			}
		})
	}
}

// TestRoundTripAnalysisInMemoryAgreement: for every profile the
// in-memory pipeline over the original log and the streaming pipeline
// over parsed-back strace text agree on mapped-event counts — parsing
// must not change what analysis sees.
func TestRoundTripAnalysisInMemoryAgreement(t *testing.T) {
	for _, p := range profiles.All() {
		t.Run(p.Name, func(t *testing.T) {
			want := rtLog(t, p)
			res, err := core.AnalyzeStream(source.FromLog(want), pm.CallTopDirs{Depth: 2}, true)
			if err != nil {
				t.Fatal(err)
			}
			if res.Events != want.NumEvents() || res.ActivityLog.UnmappedEvents() != 0 {
				t.Errorf("in-memory source: events=%d unmapped=%d, want %d/0",
					res.Events, res.ActivityLog.UnmappedEvents(), want.NumEvents())
			}
		})
	}
}
