// Package synth generates deterministic synthetic event-logs shaped
// like the paper's per-rank I/O traces (open, interleaved
// read/write/seek bursts, close). It backs the ingestion benchmarks,
// the parallel-equivalence tests, and the stbench -ingest mode, so the
// workload they measure is defined in one place.
package synth

import (
	"fmt"
	"math/rand"
	"time"

	"stinspector/internal/trace"
)

// calls cycles only through calls in strace.IOCalls, so a log survives
// a write-to-strace-text / parse-back round trip with default Options
// without dropping events.
var calls = []string{"read", "write", "openat", "lseek", "close"}

// Log builds an event-log of nCases cases (one per simulated rank,
// hosts cycling h0..h3) with perCase events each, named by cid. The
// same (cid, nCases, perCase, seed) always yields the identical log.
func Log(cid string, nCases, perCase int, seed int64) *trace.EventLog {
	return generate(cid, nCases, perCase, seed, func(c, i int) string {
		return fmt.Sprintf("/scratch/job/rank%03d/part%02d.bin", c, i%8)
	})
}

// WideLog is Log with an unbounded-vocabulary path model: every event
// touches its own distinct file, so a log of N events carries N
// distinct paths. It is the adversarial workload for the symbol
// layer's retention properties — ingesting it through the process-wide
// table would grow that table by the full vocabulary, which is exactly
// what a scoped per-pass table must confine.
func WideLog(cid string, nCases, perCase int, seed int64) *trace.EventLog {
	return generate(cid, nCases, perCase, seed, func(c, i int) string {
		return fmt.Sprintf("/scratch/wide/rank%03d/obj%06d.bin", c, i)
	})
}

// generate is the shared event model of Log and WideLog; fp chooses
// the path of case c's i-th event, which is the only thing the two
// workloads differ in.
func generate(cid string, nCases, perCase int, seed int64, fp func(c, i int) string) *trace.EventLog {
	rng := rand.New(rand.NewSource(seed))
	cases := make([]*trace.Case, nCases)
	for c := 0; c < nCases; c++ {
		evs := make([]trace.Event, perCase)
		start := time.Duration(0)
		for i := range evs {
			start += time.Duration(rng.Intn(1500)) * time.Microsecond
			evs[i] = trace.Event{
				PID:   4000 + c,
				Call:  calls[(c+i)%len(calls)],
				Start: start,
				Dur:   time.Duration(5+rng.Intn(400)) * time.Microsecond,
				FP:    fp(c, i),
				Size:  int64(rng.Intn(1 << 18)),
			}
		}
		id := trace.CaseID{CID: cid, Host: fmt.Sprintf("h%d", c%4), RID: c}
		cases[c] = trace.NewCase(id, evs)
	}
	return trace.MustNewEventLog(cases...)
}
