// Package snapshot defines STS, the durable single-file form of one
// analysis fold's pre-Finalize state: the activity-log, the DFG, the
// statistics computer (128-bit rate sums and max-concurrency interval
// sets included), the behavior profile and the set of CaseIDs already
// folded. It is the
// persistence layer the checkpoint/resume engine and the multi-process
// merge (`stinspect -merge-snapshots`) stand on: because every
// aggregate's Merge is exact, snapshots written by N separate processes
// merge into the same bytes a single-process fold produces.
//
// The container reuses the STA archive idioms: a magic/version header,
// one checksummed section per payload, a footer-located CRC'd index.
//
// Layout:
//
//	"STS1" | u32 version
//	section*          (uvarint kind | uvarint bodyLen | body | u32 CRC)
//	index             (uvarint n | (uvarint kind | uvarint offset | uvarint length)*)
//	u64 index offset | u32 index CRC | "1STS"
//
// Version compatibility: a reader accepts exactly its own version —
// the format captures internal pre-Finalize state, so cross-version
// resumption is not supported; re-fold instead. Within a version the
// section set is fixed (meta, seen, log, dfg, stats, behavior — each
// exactly once) and unknown section kinds are corruption, not
// extensions. Version 2 added the behavior-profile section.
//
// Symbol handling: every payload serializes its strings as a per-file
// intern dictionary in first-use order; on load the dictionary is
// re-interned through a fresh scoped table in file order, which (a
// fresh table assigns symbol i to the i-th distinct string) reproduces
// the writer's symbol assignment exactly.
package snapshot

import (
	"os"
	"sort"

	"stinspector/internal/behavior"
	"stinspector/internal/dfg"
	"stinspector/internal/fsatomic"
	"stinspector/internal/intern"
	"stinspector/internal/pm"
	"stinspector/internal/snapshot/wire"
	"stinspector/internal/stats"
	"stinspector/internal/trace"
)

const (
	magic       = "STS1"
	footerMagic = "1STS"
	version     = 2
)

// footerSize is the fixed tail: index offset, index CRC, magic.
const footerSize = 8 + 4 + 4

// Section kinds of version 2. All six must appear exactly once.
const (
	kindMeta     = 1 // cases, events counters
	kindSeen     = 2 // folded CaseID set
	kindLog      = 3 // pm.Log
	kindDFG      = 4 // dfg.Graph
	kindStats    = 5 // stats.Computer
	kindBehavior = 6 // behavior.Profile
)

// Snapshot is one fold's durable state: the three mergeable aggregates
// plus the CaseIDs they cover. Stats is kept pre-Finalize (a Computer,
// not a Stats) because finalization is lossy — rates are divided,
// intervals are swept away — and resumed folds must keep merging
// exactly.
type Snapshot struct {
	Log      *pm.Log
	DFG      *dfg.Graph
	Stats    *stats.Computer
	Behavior *behavior.Profile
	// Seen lists the CaseIDs folded into the aggregates, in ascending
	// order; a resumed fold skips exactly these.
	Seen []trace.CaseID
	// Cases and Events count what the fold consumed (Cases == len(Seen)
	// for folds over well-formed sources).
	Cases, Events int
}

// Encode serializes a fully-populated snapshot. The encoding is a pure
// function of the snapshot's content: identical state encodes to
// identical bytes whatever process, shard count or resume history
// produced it.
func Encode(s *Snapshot) []byte {
	var b wire.Buf
	b.Raw([]byte(magic))
	b.U32(version)

	type entry struct {
		kind, offset, length int
	}
	var entries []entry
	section := func(kind int, body []byte) {
		start := b.Len()
		b.Uvarint(uint64(kind))
		b.Uvarint(uint64(len(body)))
		b.Raw(body)
		b.U32(wire.Checksum(body))
		entries = append(entries, entry{kind: kind, offset: start, length: b.Len() - start})
	}

	var meta wire.Buf
	meta.Uvarint(uint64(s.Cases))
	meta.Uvarint(uint64(s.Events))
	section(kindMeta, meta.Bytes())
	section(kindSeen, encodeSeen(s.Seen))
	section(kindLog, s.Log.EncodeSnapshot())
	section(kindDFG, s.DFG.EncodeSnapshot())
	section(kindStats, s.Stats.EncodeSnapshot())
	section(kindBehavior, s.Behavior.EncodeSnapshot())

	indexOffset := b.Len()
	var idx wire.Buf
	idx.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		idx.Uvarint(uint64(e.kind))
		idx.Uvarint(uint64(e.offset))
		idx.Uvarint(uint64(e.length))
	}
	b.Raw(idx.Bytes())
	b.U64(uint64(indexOffset))
	b.U32(wire.Checksum(idx.Bytes()))
	b.Raw([]byte(footerMagic))
	return b.Bytes()
}

// Decode reconstructs a snapshot, verifying the magic, version, index
// checksum and every section checksum. The mapping must be the one the
// fold ran under (the statistics computer re-binds to it). Hostile or
// corrupt input — truncation, bit flips, out-of-range ids, impossible
// counts — yields a wire.CorruptError, never a panic.
func Decode(data []byte, m pm.Mapping) (*Snapshot, error) {
	if len(data) < len(magic)+4+footerSize {
		return nil, wire.Corruptf("file too small (%d bytes)", len(data))
	}
	if string(data[:4]) != magic {
		return nil, wire.Corruptf("bad magic %q", data[:4])
	}
	hc := wire.NewCursor(data[4:])
	ver, err := hc.U32()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, wire.Corruptf("unsupported version %d", ver)
	}

	foot := data[len(data)-footerSize:]
	fc := wire.NewCursor(foot)
	indexOffset, err := fc.U64()
	if err != nil {
		return nil, err
	}
	indexCRC, err := fc.U32()
	if err != nil {
		return nil, err
	}
	if string(foot[12:16]) != footerMagic {
		return nil, wire.Corruptf("bad footer magic %q", foot[12:16])
	}
	bodyEnd := uint64(len(data) - footerSize)
	if indexOffset > bodyEnd {
		return nil, wire.Corruptf("index offset %d beyond file", indexOffset)
	}
	idx := data[indexOffset:bodyEnd]
	if wire.Checksum(idx) != indexCRC {
		return nil, wire.Corruptf("index checksum mismatch")
	}

	ic := wire.NewCursor(idx)
	n, err := ic.Count(3)
	if err != nil {
		return nil, err
	}
	sections := make(map[int][]byte, n)
	for i := 0; i < n; i++ {
		kind, err := ic.Int()
		if err != nil {
			return nil, err
		}
		offset, err := ic.Uvarint()
		if err != nil {
			return nil, err
		}
		length, err := ic.Uvarint()
		if err != nil {
			return nil, err
		}
		// Compared without computing offset+length: hostile values near
		// MaxUint64 would wrap the sum back into range.
		if length > indexOffset || offset > indexOffset-length {
			return nil, wire.Corruptf("section %d at [%d,+%d) overlaps index", kind, offset, length)
		}
		body, err := decodeSection(data[offset:offset+length], kind)
		if err != nil {
			return nil, err
		}
		if _, ok := sections[kind]; ok {
			return nil, wire.Corruptf("duplicate section kind %d", kind)
		}
		switch kind {
		case kindMeta, kindSeen, kindLog, kindDFG, kindStats, kindBehavior:
			sections[kind] = body
		default:
			return nil, wire.Corruptf("unknown section kind %d", kind)
		}
	}
	for _, kind := range []int{kindMeta, kindSeen, kindLog, kindDFG, kindStats, kindBehavior} {
		if _, ok := sections[kind]; !ok {
			return nil, wire.Corruptf("missing section kind %d", kind)
		}
	}

	s := &Snapshot{}
	mc := wire.NewCursor(sections[kindMeta])
	if s.Cases, err = mc.Int(); err != nil {
		return nil, err
	}
	if s.Events, err = mc.Int(); err != nil {
		return nil, err
	}
	if err := mc.Done(); err != nil {
		return nil, err
	}
	if s.Seen, err = decodeSeen(sections[kindSeen]); err != nil {
		return nil, err
	}
	if s.Log, err = pm.DecodeLogSnapshot(sections[kindLog]); err != nil {
		return nil, err
	}
	if s.DFG, err = dfg.DecodeGraphSnapshot(sections[kindDFG]); err != nil {
		return nil, err
	}
	if s.Stats, err = stats.DecodeComputerSnapshot(sections[kindStats], m); err != nil {
		return nil, err
	}
	if s.Behavior, err = behavior.DecodeSnapshot(sections[kindBehavior]); err != nil {
		return nil, err
	}
	return s, nil
}

// decodeSection unwraps and checksums one kind|len|body|crc record.
func decodeSection(section []byte, kind int) ([]byte, error) {
	c := wire.NewCursor(section)
	gotKind, err := c.Int()
	if err != nil {
		return nil, err
	}
	if gotKind != kind {
		return nil, wire.Corruptf("section holds kind %d, index says %d", gotKind, kind)
	}
	bodyLen, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(c.Remaining()) < 4 || bodyLen != uint64(c.Remaining())-4 {
		return nil, wire.Corruptf("section kind %d: body length %d does not match record", kind, bodyLen)
	}
	body := section[c.Offset() : c.Offset()+int(bodyLen)]
	cc := wire.NewCursor(section[c.Offset()+int(bodyLen):])
	crc, err := cc.U32()
	if err != nil {
		return nil, err
	}
	if wire.Checksum(body) != crc {
		return nil, wire.Corruptf("section kind %d: checksum mismatch", kind)
	}
	return body, nil
}

// encodeSeen serializes the folded CaseID set with its own string
// dictionary: dict n | string* | count | (cidSym hostSym rid)*.
func encodeSeen(seen []trace.CaseID) []byte {
	dict := intern.NewLocal()
	for _, id := range seen {
		dict.Intern(id.CID)
		dict.Intern(id.Host)
	}
	var b wire.Buf
	b.Uvarint(uint64(dict.Len()))
	for i := 0; i < dict.Len(); i++ {
		b.Str(dict.Str(intern.Sym(i)))
	}
	b.Uvarint(uint64(len(seen)))
	for _, id := range seen {
		cy, _ := dict.Sym(id.CID)
		hy, _ := dict.Sym(id.Host)
		b.Uvarint(uint64(cy))
		b.Uvarint(uint64(hy))
		b.Varint(int64(id.RID))
	}
	return b.Bytes()
}

func decodeSeen(data []byte) ([]trace.CaseID, error) {
	c := wire.NewCursor(data)
	nd, err := c.Count(1)
	if err != nil {
		return nil, err
	}
	dict := intern.NewLocal()
	for i := 0; i < nd; i++ {
		s, err := c.Str()
		if err != nil {
			return nil, err
		}
		dict.Intern(s)
		if dict.Len() != i+1 {
			return nil, wire.Corruptf("duplicate seen-dictionary string %q", s)
		}
	}
	n, err := c.Count(3)
	if err != nil {
		return nil, err
	}
	seen := make([]trace.CaseID, n)
	for i := range seen {
		cy, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		hy, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if cy >= uint64(nd) || hy >= uint64(nd) {
			return nil, wire.Corruptf("seen dictionary id out of range (%d strings)", nd)
		}
		seen[i].CID = dict.Str(intern.Sym(cy))
		seen[i].Host = dict.Str(intern.Sym(hy))
		rid, err := c.Varint()
		if err != nil {
			return nil, err
		}
		seen[i].RID = int(rid)
	}
	if err := c.Done(); err != nil {
		return nil, err
	}
	return seen, nil
}

// Merge folds partial snapshots (shard or epoch partials of one logical
// fold) into a new snapshot, exactly: the activity-logs union under the
// sorted case-list interleave, the graphs sum, the statistics merge in
// integer space, the behavior profiles sum under a string-preserving
// remap, the seen sets merge in ascending order. nil inputs are
// skipped. The inputs' statistics computers are consumed (the first
// survivor becomes the merge target) and must not be used afterwards.
//
// Merging snapshots of a disjoint case partition in any order yields
// the same state a single fold over all the cases produces — the
// property the byte-identity acceptance tests pin.
func Merge(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{}
	var logs []*pm.Log
	var graphs []*dfg.Graph
	var profs []*behavior.Profile
	for _, s := range snaps {
		if s == nil {
			continue
		}
		logs = append(logs, s.Log)
		graphs = append(graphs, s.DFG)
		profs = append(profs, s.Behavior)
		if out.Stats == nil {
			out.Stats = s.Stats
		} else {
			out.Stats.Merge(s.Stats)
		}
		out.Seen = append(out.Seen, s.Seen...)
		out.Cases += s.Cases
		out.Events += s.Events
	}
	out.Log = pm.MergeLogs(logs...)
	out.DFG = dfg.Merge(graphs...)
	out.Behavior = behavior.Merge(profs...)
	sort.Slice(out.Seen, func(i, j int) bool { return out.Seen[i].Less(out.Seen[j]) })
	return out
}

// WriteFile atomically writes the snapshot to path: the bytes land in a
// temporary file synced and renamed into place, so a crash or error
// mid-write leaves the previous checkpoint intact — a checkpoint that
// could itself be torn would defeat resuming.
func WriteFile(path string, s *Snapshot) error {
	return fsatomic.WriteFileBytes(path, Encode(s))
}

// ReadFile loads and decodes a snapshot file under the given mapping.
func ReadFile(path string, m pm.Mapping) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data, m)
}
