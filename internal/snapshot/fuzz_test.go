package snapshot

import (
	"bytes"
	"testing"

	"stinspector/internal/pm"
	"stinspector/internal/synth/profiles"
)

// FuzzSnapshotDecode drives Decode with mutated snapshot files: seeds
// are real snapshots of the adversarial generator profiles (the
// hostileargs renderings among them) plus bit-flipped variants. The
// decoder must never panic and never allocate proportionally to a
// hostile count; when it does accept an input, the decoded state must
// re-encode and re-decode to a fixed point (a canonical snapshot).
func FuzzSnapshotDecode(f *testing.F) {
	m := pm.CallTopDirs{Depth: 2}
	for _, name := range []string{"baseline", "hostileargs", "widevocab"} {
		p, ok := profiles.Lookup(name)
		if !ok {
			f.Fatalf("profile %s missing", name)
		}
		el := p.Generate("fz", 4, 16, 20240924)
		s := foldRange(el, m, 0, 4)
		enc := Encode(s)
		f.Add(enc)
		// Bit-flipped variants seed the mutator with near-valid files.
		for _, pos := range []int{2, len(enc) / 3, len(enc) / 2, len(enc) - 5} {
			mut := append([]byte(nil), enc...)
			mut[pos] ^= 0x41
			f.Add(mut)
		}
		f.Add(enc[:len(enc)*2/3])
	}
	f.Add([]byte{})
	f.Add([]byte("STS1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data, m)
		if err != nil {
			return
		}
		// Accepted input: encoding must be a fixed point, so a decoded
		// snapshot behaves identically to one built in-process.
		re := Encode(s)
		s2, err := Decode(re, m)
		if err != nil {
			t.Fatalf("re-decode of accepted snapshot failed: %v", err)
		}
		if !bytes.Equal(Encode(s2), re) {
			t.Fatal("re-encode is not a fixed point")
		}
	})
}
