// Package wire provides the binary building blocks of the snapshot
// format: a small append-only encoder, a bounds-checked decoder, and
// the CRC-32 checksum — the same primitives the STA archive format uses
// (internal/archive/format.go), factored into a leaf package so the
// aggregate packages (pm, dfg, stats) can serialize themselves without
// importing the archive layer.
//
// The decoder is written for hostile input: every primitive read is
// bounds-checked, and Count guards length-prefixed collections against
// allocation bombs by capping the claimed element count at what the
// remaining bytes could possibly encode. Decoders built on it fail with
// a CorruptError; they never panic and never allocate proportionally to
// an attacker-chosen count.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// CorruptError reports a snapshot integrity failure: truncation,
// checksum mismatch, an out-of-range dictionary id, or a structurally
// impossible count.
type CorruptError struct {
	Detail string
}

func (e *CorruptError) Error() string { return "snapshot: corrupt: " + e.Detail }

// Corruptf builds a CorruptError.
func Corruptf(format string, args ...any) error {
	return &CorruptError{Detail: fmt.Sprintf(format, args...)}
}

// Checksum is the CRC-32 (IEEE) used throughout the snapshot format,
// matching the archive format's choice.
func Checksum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// Buf is a small append-only encoder.
type Buf struct {
	b []byte
}

// Bytes returns the encoded bytes.
func (w *Buf) Bytes() []byte { return w.b }

// Len returns the number of bytes encoded so far.
func (w *Buf) Len() int { return len(w.b) }

func (w *Buf) Uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *Buf) Varint(v int64)   { w.b = binary.AppendVarint(w.b, v) }
func (w *Buf) Raw(p []byte)     { w.b = append(w.b, p...) }
func (w *Buf) U32(v uint32)     { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *Buf) U64(v uint64)     { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *Buf) Str(s string)     { w.Uvarint(uint64(len(s))); w.b = append(w.b, s...) }
func (w *Buf) Bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

// Cursor is the matching bounds-checked decoder.
type Cursor struct {
	b   []byte
	off int
}

// NewCursor returns a cursor over b.
func NewCursor(b []byte) *Cursor { return &Cursor{b: b} }

// Remaining returns the number of unread bytes.
func (c *Cursor) Remaining() int { return len(c.b) - c.off }

// Offset returns the current read position, for error messages.
func (c *Cursor) Offset() int { return c.off }

func (c *Cursor) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, Corruptf("bad uvarint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *Cursor) Varint() (int64, error) {
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		return 0, Corruptf("bad varint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *Cursor) U32() (uint32, error) {
	if c.Remaining() < 4 {
		return 0, Corruptf("truncated u32 at offset %d", c.off)
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, nil
}

func (c *Cursor) U64() (uint64, error) {
	if c.Remaining() < 8 {
		return 0, Corruptf("truncated u64 at offset %d", c.off)
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v, nil
}

func (c *Cursor) Bool() (bool, error) {
	if c.Remaining() < 1 {
		return false, Corruptf("truncated bool at offset %d", c.off)
	}
	v := c.b[c.off]
	c.off++
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, Corruptf("bad bool byte %d at offset %d", v, c.off-1)
	}
}

func (c *Cursor) Str() (string, error) {
	n, err := c.Uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(c.Remaining()) {
		return "", Corruptf("string of %d bytes exceeds input at offset %d", n, c.off)
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s, nil
}

// Count reads a collection length and validates it against the bytes
// actually left: each element of the collection needs at least perItem
// encoded bytes (clamped to 1), so a count the remaining input cannot
// possibly hold is corruption, not an allocation request. This is the
// guard that keeps hostile counts from turning into multi-GB makes.
func (c *Cursor) Count(perItem int) (int, error) {
	if perItem < 1 {
		perItem = 1
	}
	v, err := c.Uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(c.Remaining())/uint64(perItem) {
		return 0, Corruptf("count %d impossible in %d remaining bytes at offset %d", v, c.Remaining(), c.off)
	}
	return int(v), nil
}

// Int reads a uvarint that must fit a non-negative int (a counter, a
// multiplicity): values beyond the platform int range are corruption.
func (c *Cursor) Int() (int, error) {
	v, err := c.Uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt64 || int64(v) > int64(maxInt) {
		return 0, Corruptf("counter %d overflows int at offset %d", v, c.off)
	}
	return int(v), nil
}

const maxInt = int(^uint(0) >> 1)

// Done reports an error when unread bytes remain — decoders call it at
// the end so trailing junk is detected rather than silently ignored.
func (c *Cursor) Done() error {
	if c.Remaining() != 0 {
		return Corruptf("%d trailing bytes at offset %d", c.Remaining(), c.off)
	}
	return nil
}
