package wire

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestRoundTripPrimitives(t *testing.T) {
	var b Buf
	b.Uvarint(0)
	b.Uvarint(math.MaxUint64)
	b.Varint(-1 << 40)
	b.U32(0xdeadbeef)
	b.U64(0x0123456789abcdef)
	b.Str("hello, wire")
	b.Str("")
	b.Bool(true)
	b.Bool(false)
	b.Raw([]byte{1, 2, 3})

	c := NewCursor(b.Bytes())
	if v, err := c.Uvarint(); err != nil || v != 0 {
		t.Fatalf("uvarint: %d, %v", v, err)
	}
	if v, err := c.Uvarint(); err != nil || v != math.MaxUint64 {
		t.Fatalf("uvarint max: %d, %v", v, err)
	}
	if v, err := c.Varint(); err != nil || v != -1<<40 {
		t.Fatalf("varint: %d, %v", v, err)
	}
	if v, err := c.U32(); err != nil || v != 0xdeadbeef {
		t.Fatalf("u32: %x, %v", v, err)
	}
	if v, err := c.U64(); err != nil || v != 0x0123456789abcdef {
		t.Fatalf("u64: %x, %v", v, err)
	}
	if s, err := c.Str(); err != nil || s != "hello, wire" {
		t.Fatalf("str: %q, %v", s, err)
	}
	if s, err := c.Str(); err != nil || s != "" {
		t.Fatalf("empty str: %q, %v", s, err)
	}
	if v, err := c.Bool(); err != nil || !v {
		t.Fatalf("bool true: %v, %v", v, err)
	}
	if v, err := c.Bool(); err != nil || v {
		t.Fatalf("bool false: %v, %v", v, err)
	}
	if c.Remaining() != 3 {
		t.Fatalf("remaining = %d, want 3", c.Remaining())
	}
	if err := c.Done(); err == nil {
		t.Fatal("Done accepted trailing bytes")
	}
}

// Every truncated or malformed read must surface as CorruptError, not a
// panic or a silent zero.
func TestCursorErrors(t *testing.T) {
	checkCorrupt := func(name string, err error) {
		t.Helper()
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: err = %v, want CorruptError", name, err)
		}
	}

	_, err := NewCursor(nil).Uvarint()
	checkCorrupt("empty uvarint", err)
	_, err = NewCursor([]byte{0x80, 0x80}).Uvarint()
	checkCorrupt("truncated uvarint", err)
	// 10-byte uvarint with a continuation bit on byte 10 overflows.
	over := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
	_, err = NewCursor(over).Uvarint()
	checkCorrupt("overlong uvarint", err)
	_, err = NewCursor([]byte{1, 2}).U32()
	checkCorrupt("short u32", err)
	_, err = NewCursor([]byte{1}).U64()
	checkCorrupt("short u64", err)
	_, err = NewCursor(nil).Bool()
	checkCorrupt("empty bool", err)
	_, err = NewCursor([]byte{7}).Bool()
	checkCorrupt("bad bool byte", err)
	// String length claims more than the input holds.
	var b Buf
	b.Uvarint(1000)
	b.Raw([]byte("short"))
	_, err = NewCursor(b.Bytes()).Str()
	checkCorrupt("oversized string", err)
}

// Count rejects element counts the remaining bytes cannot possibly
// encode — the allocation-bomb guard.
func TestCountGuardsAllocation(t *testing.T) {
	var b Buf
	b.Uvarint(1 << 40) // claims 2^40 elements
	c := NewCursor(b.Bytes())
	if _, err := c.Count(4); err == nil {
		t.Fatal("Count accepted an impossible element count")
	} else if !strings.Contains(err.Error(), "impossible") {
		t.Fatalf("unexpected error: %v", err)
	}

	// A count that exactly fits is accepted.
	var ok Buf
	ok.Uvarint(3)
	ok.Raw([]byte{1, 2, 3, 4, 5, 6})
	c = NewCursor(ok.Bytes())
	n, err := c.Count(2)
	if err != nil || n != 3 {
		t.Fatalf("Count = %d, %v; want 3, nil", n, err)
	}
}

func TestIntRejectsHugeCounters(t *testing.T) {
	var b Buf
	b.Uvarint(math.MaxUint64)
	if _, err := NewCursor(b.Bytes()).Int(); err == nil {
		t.Fatal("Int accepted a counter beyond int range")
	}
	var ok Buf
	ok.Uvarint(42)
	if v, err := NewCursor(ok.Bytes()).Int(); err != nil || v != 42 {
		t.Fatalf("Int = %d, %v", v, err)
	}
}
