package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"stinspector/internal/behavior"
	"stinspector/internal/dfg"
	"stinspector/internal/pm"
	"stinspector/internal/snapshot/wire"
	"stinspector/internal/stats"
	"stinspector/internal/synth"
	"stinspector/internal/trace"
)

// foldRange builds the snapshot of a sequential fold over a contiguous
// slice of the synth corpus — the reference state the container tests
// split, merge and round-trip.
func foldRange(el *trace.EventLog, m pm.Mapping, lo, hi int) *Snapshot {
	sm := pm.NewSymMapper(m)
	pmB := pm.NewBuilderSym(sm, pm.BuildOptions{Endpoints: true})
	dfgB := dfg.NewBuilderSym(sm.Acts())
	stC := stats.NewComputerSym(sm)
	bh := behavior.New()
	s := &Snapshot{}
	for _, c := range el.Cases()[lo:hi] {
		s.Cases++
		s.Events += len(c.Events)
		s.Seen = append(s.Seen, c.ID)
		buf := sm.MapCase(c, nil)
		if seq, ok := pmB.AddMapped(c.ID, buf); ok {
			dfgB.AddSymVariant(seq, 1)
		}
		stC.AddMapped(c, buf)
		bh.AddCase(c)
	}
	s.Log = pmB.Finalize()
	s.DFG = dfgB.Finalize()
	s.Stats = stC
	s.Behavior = bh
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	el := synth.Log("sts", 20, 40, 20240924)
	m := pm.CallTopDirs{Depth: 2}
	s := foldRange(el, m, 0, 20)
	enc := Encode(s)
	got, err := Decode(enc, m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cases != s.Cases || got.Events != s.Events {
		t.Errorf("meta: got %d/%d, want %d/%d", got.Cases, got.Events, s.Cases, s.Events)
	}
	if len(got.Seen) != len(s.Seen) {
		t.Fatalf("seen: got %d ids, want %d", len(got.Seen), len(s.Seen))
	}
	for i := range got.Seen {
		if got.Seen[i] != s.Seen[i] {
			t.Fatalf("seen[%d] = %s, want %s", i, got.Seen[i], s.Seen[i])
		}
	}
	if re := Encode(got); !bytes.Equal(re, enc) {
		t.Errorf("re-encode differs: %d vs %d bytes", len(re), len(enc))
	}
}

// Merging the snapshots of a disjoint contiguous partition reproduces
// the whole fold's snapshot byte-for-byte — the property the
// multi-process merge and the resume path stand on.
func TestSnapshotMergeOfSplitsIsWhole(t *testing.T) {
	el := synth.Log("sts", 21, 30, 7)
	m := pm.CallTopDirs{Depth: 2}
	whole := Encode(foldRange(el, m, 0, 21))
	parts := []*Snapshot{
		foldRange(el, m, 0, 8),
		foldRange(el, m, 8, 15),
		foldRange(el, m, 15, 21),
	}
	if got := Encode(Merge(parts[0], parts[1], parts[2])); !bytes.Equal(got, whole) {
		t.Error("merged split snapshots differ from the whole fold's snapshot")
	}
	// nil partials are skipped.
	a := foldRange(el, m, 0, 21)
	if got := Encode(Merge(nil, a, nil)); !bytes.Equal(got, whole) {
		t.Error("Merge with nils differs from the whole fold's snapshot")
	}
}

// Every truncation and every corrupted byte must surface as an error —
// wire.CorruptError for structural damage — and never a panic or a
// silently different snapshot.
func TestSnapshotCorruption(t *testing.T) {
	el := synth.Log("sts", 8, 25, 3)
	m := pm.CallTopDirs{Depth: 2}
	enc := Encode(foldRange(el, m, 0, 8))

	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut], m); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
	// Flip one bit in every byte position: header, section prefixes,
	// bodies, CRCs, index and footer are each covered by a check.
	mut := make([]byte, len(enc))
	for pos := 0; pos < len(enc); pos++ {
		copy(mut, enc)
		mut[pos] ^= 0x10
		got, err := Decode(mut, m)
		if err == nil {
			// A flip inside an unchecked gap would have to reproduce
			// identical state to be acceptable; require detection.
			if !bytes.Equal(Encode(got), enc) {
				t.Fatalf("bit flip at %d decoded to different state without error", pos)
			}
		}
	}
	var ce *wire.CorruptError
	if _, err := Decode(enc[:len(enc)-1], m); !errors.As(err, &ce) {
		t.Errorf("truncated file: err = %v, want CorruptError", err)
	}
	if _, err := Decode([]byte("not a snapshot at all, definitely"), m); !errors.As(err, &ce) {
		t.Errorf("garbage: err = %v, want CorruptError", err)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	el := synth.Log("sts", 6, 20, 5)
	m := pm.CallTopDirs{Depth: 2}
	s := foldRange(el, m, 0, 6)
	path := filepath.Join(t.TempDir(), "part.sts")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(Encode(got), Encode(s)) {
		t.Error("file round trip changed the snapshot")
	}
	// A torn file (crash mid-write simulated by truncation) must be
	// detected on read, not silently produce partial aggregates.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path, m); err == nil {
		t.Error("torn snapshot file read back cleanly")
	}
}
