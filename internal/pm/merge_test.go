package pm

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"stinspector/internal/trace"
)

// mergeCase builds a one-variant case whose trace is determined by kind,
// so tests can steer which cases collapse into which variants.
func mergeCase(rid int, kind int) *trace.Case {
	evs := []trace.Event{
		{Call: "read", FP: "/usr/lib/a.so", Start: 1, Dur: 10 * time.Microsecond, Size: 100},
	}
	for i := 0; i < kind; i++ {
		evs = append(evs, trace.Event{Call: "write", FP: "/dev/pts/7", Start: time.Duration(2 + i), Dur: 10 * time.Microsecond, Size: 50})
	}
	return trace.NewCase(trace.CaseID{CID: "m", Host: "h", RID: rid}, evs)
}

// TestMergeLogsReproducesSequential is the pm merge law: round-robin the
// cases of a log over k partial builders, merge the partials in shard
// order, and the result must equal the sequential fold in every field —
// variant order, multiplicities, interleaved case lists, event counters.
func TestMergeLogsReproducesSequential(t *testing.T) {
	m := CallTopDirs{Depth: 2}
	opts := BuildOptions{Endpoints: true}
	var cases []*trace.Case
	for rid := 0; rid < 37; rid++ {
		cases = append(cases, mergeCase(rid, rid%5))
	}
	seq := NewBuilder(m, opts)
	for _, c := range cases {
		seq.Add(c)
	}
	want := seq.Finalize()

	for shards := 1; shards <= 6; shards++ {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			builders := make([]*Builder, shards)
			for i := range builders {
				builders[i] = NewBuilder(m, opts)
			}
			// Round-robin blocks of 3 cases, like the sharded fold engine.
			for i, c := range cases {
				builders[(i/3)%shards].Add(c)
			}
			logs := make([]*Log, shards)
			for i, b := range builders {
				logs[i] = b.Finalize()
			}
			got := MergeLogs(logs...)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("merged log differs from sequential fold:\ngot  %s\nwant %s", got, want)
			}
			// The case lists must be the exact CaseID interleave, not
			// just the same multiset.
			for i, v := range got.Variants() {
				if !reflect.DeepEqual(v.Cases, want.Variants()[i].Cases) {
					t.Errorf("variant %d case list = %v, want %v", i, v.Cases, want.Variants()[i].Cases)
				}
			}
		})
	}
}

// TestMergeLeavesInputUsable: Merge copies, so mutating the merged
// output must not reach back into the inputs (UnionLogs promises its
// arguments stay valid).
func TestMergeLeavesInputUsable(t *testing.T) {
	m := CallTopDirs{Depth: 2}
	b := NewBuilder(m, BuildOptions{})
	b.Add(mergeCase(1, 0))
	in := b.Finalize()
	out := MergeLogs(in, in)
	out.Variants()[0].Cases[0] = trace.CaseID{CID: "mutated"}
	if in.Variants()[0].Cases[0].CID != "m" {
		t.Errorf("merge aliased the input's case list: %v", in.Variants()[0].Cases)
	}
	if in.NumTraces() != 1 || out.NumTraces() != 2 {
		t.Errorf("traces = %d/%d, want 1/2", in.NumTraces(), out.NumTraces())
	}
}

// TestMergeLogsEmpty: merging nothing, nils, or empty logs yields an
// empty, usable log (the identity of the merge monoid).
func TestMergeLogsEmpty(t *testing.T) {
	empty := MergeLogs()
	if empty.NumTraces() != 0 || empty.NumVariants() != 0 {
		t.Errorf("MergeLogs() = %d traces, %d variants", empty.NumTraces(), empty.NumVariants())
	}
	b := NewBuilder(CallTopDirs{Depth: 2}, BuildOptions{})
	b.Add(mergeCase(1, 1))
	l := b.Finalize()
	got := MergeLogs(nil, empty, l)
	if got.NumTraces() != 1 || got.MappedEvents() != l.MappedEvents() {
		t.Errorf("identity law violated: %s", got)
	}
}

// TestUnionLogsVariantOrdering pins the deterministic variant order of a
// union: lexicographic by trace key, whatever order the inputs present
// their variants in — the regression guard for the reimplementation of
// UnionLogs on the merge primitive.
func TestUnionLogsVariantOrdering(t *testing.T) {
	m := CallTopDirs{Depth: 2}
	build := func(rids ...int) *Log {
		b := NewBuilder(m, BuildOptions{})
		for _, rid := range rids {
			b.Add(mergeCase(rid, rid%3))
		}
		return b.Finalize()
	}
	// Log A sees kinds 1,2 (in that order of first appearance), log B
	// sees kinds 2,0 — their union must come out in key order, not in
	// either insertion order.
	u := UnionLogs(build(1, 2), build(5, 3))
	var got []string
	for _, v := range u.Variants() {
		got = append(got, v.Seq.String())
	}
	want := []string{
		"⟨read:/usr/lib⟩",
		"⟨read:/usr/lib, write:/dev/pts⟩",
		"⟨read:/usr/lib, write:/dev/pts, write:/dev/pts⟩",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("union variant order = %v, want %v", got, want)
	}
	keys := u.Variants()
	for i := 1; i < len(keys); i++ {
		if keys[i-1].Seq.Key() >= keys[i].Seq.Key() {
			t.Errorf("variants not in key order at %d: %q >= %q", i, keys[i-1].Seq.Key(), keys[i].Seq.Key())
		}
	}
	// Argument order must not matter for the variant sequence either.
	rev := UnionLogs(build(5, 3), build(1, 2))
	var gotRev []string
	for _, v := range rev.Variants() {
		gotRev = append(gotRev, v.Seq.String())
	}
	if !reflect.DeepEqual(gotRev, want) {
		t.Errorf("reversed union variant order = %v, want %v", gotRev, want)
	}
}

// TestUnionLogsPadsShortCaseLists: hand-built variants with fewer
// recorded cases than their multiplicity keep summing multiplicities
// and pad the case list with zero CaseIDs, as the pre-merge UnionLogs
// did.
func TestUnionLogsPadsShortCaseLists(t *testing.T) {
	mk := func() *Log {
		l := &Log{byKey: make(map[string]*Variant)}
		l.add(Trace{"read:/usr/lib"}, trace.CaseID{CID: "x", Host: "h", RID: 1})
		v := l.variants[0]
		v.Mult = 3 // two counts without recorded cases
		return l
	}
	u := UnionLogs(mk(), mk())
	if u.NumTraces() != 6 {
		t.Fatalf("traces = %d, want 6", u.NumTraces())
	}
	v := u.Variants()[0]
	if len(v.Cases) != 6 {
		t.Fatalf("case list = %v, want length 6", v.Cases)
	}
	real := 0
	for _, id := range v.Cases {
		if id != (trace.CaseID{}) {
			real++
		}
	}
	if real != 2 {
		t.Errorf("real case ids = %d, want 2 (%v)", real, v.Cases)
	}
}

// TestFinalizeOrderInvariant: folding the same cases in any order —
// live ingestion delivers completion order, not CaseID order — must
// finalize to the identical Log, case lists included. This is the pm
// half of the live-path byte-equivalence guarantee.
func TestFinalizeOrderInvariant(t *testing.T) {
	m := CallTopDirs{Depth: 2}
	opts := BuildOptions{Endpoints: true}
	var cases []*trace.Case
	for rid := 0; rid < 29; rid++ {
		cases = append(cases, mergeCase(rid, rid%4))
	}
	seq := NewBuilder(m, opts)
	for _, c := range cases {
		seq.Add(c)
	}
	want := seq.Finalize()

	perms := [][]int{reversed(len(cases)), strided(len(cases), 7)}
	for pi, perm := range perms {
		b := NewBuilder(m, opts)
		for _, i := range perm {
			b.Add(cases[i])
		}
		got := b.Finalize()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("perm %d: out-of-order fold finalized differently", pi)
		}
	}
}

func reversed(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

// strided enumerates 0..n-1 by a stride coprime to n-ish, a cheap
// deterministic shuffle.
func strided(n, step int) []int {
	out := make([]int, 0, n)
	seen := make([]bool, n)
	for i := 0; len(out) < n; i = (i + step) % n {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		} else {
			i = (i + 1) % n
			continue
		}
	}
	return out
}
