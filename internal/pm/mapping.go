package pm

import (
	"sort"
	"strings"

	"stinspector/internal/trace"
)

// Mapping is the partial function f : E ⇀ A_f of Section IV. Map returns
// the activity for an event and whether the event is in the domain of the
// mapping at all; events outside the domain are excluded from the
// activity trace.
type Mapping interface {
	Map(e trace.Event) (Activity, bool)
}

// MappingFunc adapts a plain function to the Mapping interface, the way
// the paper's Python API accepts a user-defined mapping function
// (Figure 6, step 2).
type MappingFunc func(e trace.Event) (Activity, bool)

// Map implements Mapping.
func (f MappingFunc) Map(e trace.Event) (Activity, bool) { return f(e) }

// CallTopDirs is the mapping f̂ of Equation (4): it concatenates the
// system call name with the file path truncated to at most the top Depth
// directory levels. Depth 2 reproduces the paper's examples
// ("read:/usr/lib" for /usr/lib/x86_64-linux-gnu/libselinux.so.1).
type CallTopDirs struct {
	Depth int
}

// Map implements Mapping.
func (m CallTopDirs) Map(e trace.Event) (Activity, bool) {
	return m.MapCallPath(e.Call, e.FP)
}

// MapCallPath implements CallPathMapping: the activity depends only on
// the call name and file path, so the symbol layer may memoize it per
// distinct (call, fp) pair.
func (m CallTopDirs) MapCallPath(call, fp string) (Activity, bool) {
	return MakeActivity(call, TruncatePath(fp, m.Depth)), true
}

// TruncatePath keeps at most the top depth directory levels of an
// absolute path: TruncatePath("/usr/lib/x/y.so", 2) = "/usr/lib".
// Relative paths and paths shallower than depth are returned unchanged.
func TruncatePath(fp string, depth int) string {
	if depth <= 0 || !strings.HasPrefix(fp, "/") {
		return fp
	}
	parts := strings.Split(fp[1:], "/")
	if len(parts) <= depth {
		return fp
	}
	return "/" + strings.Join(parts[:depth], "/")
}

// CallFileName maps an event to its call plus the final path component,
// the file-level view used in Figure 4 ("read:x86_64-linux-gnu/libselinux.so.1"
// keeps the last Keep components).
type CallFileName struct {
	// Keep is the number of trailing path components retained
	// (default 1).
	Keep int
}

// Map implements Mapping.
func (m CallFileName) Map(e trace.Event) (Activity, bool) {
	return m.MapCallPath(e.Call, e.FP)
}

// MapCallPath implements CallPathMapping.
func (m CallFileName) MapCallPath(call, fp string) (Activity, bool) {
	keep := m.Keep
	if keep <= 0 {
		keep = 1
	}
	parts := strings.Split(strings.TrimPrefix(fp, "/"), "/")
	if len(parts) > keep {
		parts = parts[len(parts)-keep:]
	}
	return MakeActivity(call, strings.Join(parts, "/")), true
}

// PrefixVar is one rewrite rule of an EnvMapping: paths under Prefix are
// abstracted to the site-specific variable Var (for example
// "/p/scratch/user" to "$SCRATCH").
type PrefixVar struct {
	Prefix string
	Var    string
}

// EnvMapping is the mapping f̄ used in the paper's IOR experiments: it
// abstracts file paths based on site-specific variables ($SCRATCH, $HOME,
// $SOFTWARE, "Node Local"), keeping up to Depth path components below the
// variable, and maps everything else through a plain top-level directory
// truncation.
type EnvMapping struct {
	// Vars are matched in order of decreasing prefix length, so more
	// specific prefixes win.
	Vars []PrefixVar
	// Depth is the number of path components kept below the matched
	// variable; 0 keeps only the variable itself (Figure 8a),
	// 1 distinguishes "$SCRATCH/ssf" from "$SCRATCH/fpp" (Figure 8b).
	Depth int
	// FallbackDepth is the directory truncation for unmatched paths
	// (default 2, as in f̂).
	FallbackDepth int
}

// NewEnvMapping builds an EnvMapping, sorting rules so the longest
// prefixes match first.
func NewEnvMapping(depth int, vars ...PrefixVar) *EnvMapping {
	m := &EnvMapping{Vars: append([]PrefixVar(nil), vars...), Depth: depth, FallbackDepth: 2}
	sort.SliceStable(m.Vars, func(i, j int) bool {
		return len(m.Vars[i].Prefix) > len(m.Vars[j].Prefix)
	})
	return m
}

// Abstract rewrites a path per the mapping's rules.
func (m *EnvMapping) Abstract(fp string) string {
	for _, pv := range m.Vars {
		rest, ok := strings.CutPrefix(fp, pv.Prefix)
		if !ok {
			continue
		}
		if rest != "" && rest[0] != '/' && !strings.HasSuffix(pv.Prefix, "/") {
			continue // partial component match such as /scratchy
		}
		rest = strings.TrimPrefix(rest, "/")
		if m.Depth <= 0 || rest == "" {
			return pv.Var
		}
		parts := strings.Split(rest, "/")
		if len(parts) > m.Depth {
			parts = parts[:m.Depth]
		}
		return pv.Var + "/" + strings.Join(parts, "/")
	}
	fb := m.FallbackDepth
	if fb == 0 {
		fb = 2
	}
	return TruncatePath(fp, fb)
}

// Map implements Mapping.
func (m *EnvMapping) Map(e trace.Event) (Activity, bool) {
	return m.MapCallPath(e.Call, e.FP)
}

// MapCallPath implements CallPathMapping.
func (m *EnvMapping) MapCallPath(call, fp string) (Activity, bool) {
	return MakeActivity(call, m.Abstract(fp)), true
}

// Restrict narrows the domain of a mapping to events satisfying the
// predicate, producing a partial mapping. It implements queries such as
// "restrict the synthesis to the directory /usr/lib" (Section IV-A):
//
//	f1 := pm.Restrict(f, func(e trace.Event) bool {
//	        return strings.Contains(e.FP, "/usr/lib")
//	})
func Restrict(m Mapping, pred func(trace.Event) bool) Mapping {
	return MappingFunc(func(e trace.Event) (Activity, bool) {
		if !pred(e) {
			return "", false
		}
		return m.Map(e)
	})
}

// RestrictPath restricts a mapping to events whose file path contains the
// substring.
func RestrictPath(m Mapping, substr string) Mapping {
	return Restrict(m, func(e trace.Event) bool { return strings.Contains(e.FP, substr) })
}

// RestrictCalls restricts a mapping to the given system calls.
func RestrictCalls(m Mapping, calls ...string) Mapping {
	set := make(map[string]bool, len(calls))
	for _, c := range calls {
		set[c] = true
	}
	return Restrict(m, func(e trace.Event) bool { return set[e.Call] })
}
