package pm

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"stinspector/internal/snapshot/wire"
	"stinspector/internal/synth"
)

func buildLog(t *testing.T) *Log {
	t.Helper()
	el := synth.Log("snap", 24, 40, 20240924)
	b := NewBuilder(CallTopDirs{Depth: 2}, BuildOptions{Endpoints: true})
	for _, c := range el.Cases() {
		b.add(c)
	}
	return b.Finalize()
}

// Encode∘decode is the identity on activity-logs, and the encoding is
// canonical: re-encoding the decoded log reproduces the bytes exactly.
func TestLogSnapshotRoundTrip(t *testing.T) {
	l := buildLog(t)
	enc := l.EncodeSnapshot()
	got, err := DecodeLogSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.mapped != l.mapped || got.unmapped != l.unmapped {
		t.Errorf("counters: got %d/%d, want %d/%d", got.mapped, got.unmapped, l.mapped, l.unmapped)
	}
	if len(got.variants) != len(l.variants) {
		t.Fatalf("decoded %d variants, want %d", len(got.variants), len(l.variants))
	}
	for i, v := range l.variants {
		gv := got.variants[i]
		if !reflect.DeepEqual(gv.Seq, v.Seq) || gv.Mult != v.Mult || !reflect.DeepEqual(gv.Cases, v.Cases) {
			t.Errorf("variant %d differs:\ngot  %v ^%d %v\nwant %v ^%d %v", i, gv.Seq, gv.Mult, gv.Cases, v.Seq, v.Mult, v.Cases)
		}
	}
	if re := got.EncodeSnapshot(); !bytes.Equal(re, enc) {
		t.Errorf("re-encode differs: %d vs %d bytes", len(re), len(enc))
	}
}

func TestLogSnapshotEmpty(t *testing.T) {
	l := MergeLogs()
	got, err := DecodeLogSnapshot(l.EncodeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVariants() != 0 || got.mapped != 0 || got.unmapped != 0 {
		t.Errorf("decoded empty log has state: %v", got)
	}
}

// A decoded log stays a first-class Log: merging it with another
// partial reproduces the merge of the originals.
func TestLogSnapshotMergesAfterDecode(t *testing.T) {
	el := synth.Log("snapm", 16, 30, 7)
	m := CallTopDirs{Depth: 2}
	mk := func(lo, hi int) *Log {
		b := NewBuilder(m, BuildOptions{Endpoints: true})
		for _, c := range el.Cases()[lo:hi] {
			b.add(c)
		}
		return b.Finalize()
	}
	whole := mk(0, 16)
	a, bp := mk(0, 9), mk(9, 16)
	da, err := DecodeLogSnapshot(a.EncodeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	db, err := DecodeLogSnapshot(bp.EncodeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	merged := MergeLogs(da, db)
	if !bytes.Equal(merged.EncodeSnapshot(), whole.EncodeSnapshot()) {
		t.Error("merge of decoded partials differs from the whole fold")
	}
}

// Truncations and out-of-range ids must fail with CorruptError — never
// panic, never a silently wrong log.
func TestLogSnapshotCorrupt(t *testing.T) {
	enc := buildLog(t).EncodeSnapshot()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeLogSnapshot(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
	// Dictionary id beyond the table.
	var b wire.Buf
	b.Uvarint(1) // one dictionary string
	b.Str("x")
	b.Uvarint(0) // mapped
	b.Uvarint(0) // unmapped
	b.Uvarint(1) // one variant
	b.Uvarint(1) // seq len
	b.Uvarint(9) // out-of-range activity id
	b.Uvarint(1) // mult
	b.Uvarint(0) // no cases
	var ce *wire.CorruptError
	if _, err := DecodeLogSnapshot(b.Bytes()); !errors.As(err, &ce) {
		t.Fatalf("out-of-range dictionary id: err = %v, want CorruptError", err)
	}
}
