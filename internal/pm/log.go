package pm

import (
	"fmt"
	"sort"
	"strings"

	"stinspector/internal/trace"
)

// Trace is an activity trace σ_f(c): the sequence of activities of the
// mapped events of one case, in event order (Equation 5).
type Trace []Activity

// Key returns a canonical string form used to group identical traces into
// variants. Activities never contain the NUL separator.
func (t Trace) Key() string {
	parts := make([]string, len(t))
	for i, a := range t {
		parts[i] = string(a)
	}
	return strings.Join(parts, "\x00")
}

// String renders the trace in the paper's ⟨a1, a2, ...⟩ notation.
func (t Trace) String() string {
	parts := make([]string, len(t))
	for i, a := range t {
		parts[i] = string(a)
	}
	return "⟨" + strings.Join(parts, ", ") + "⟩"
}

// Variant is one distinct trace together with its multiplicity in the
// activity-log and the cases that produced it. The paper writes
// ⟨a, a, b⟩² for a variant with multiplicity 2.
type Variant struct {
	Seq   Trace
	Mult  int
	Cases []trace.CaseID
}

// Log is the activity-log L_f(C) ∈ B(A_f*): a multiset of traces over the
// activity alphabet, stored as variants. Variants are kept in a
// deterministic order (lexicographic by key) for reproducible output.
type Log struct {
	variants []*Variant
	byKey    map[string]*Variant
	// mapped/unmapped count events inside/outside the mapping domain.
	mapped   int
	unmapped int
}

// BuildOptions configures activity-log construction.
type BuildOptions struct {
	// Endpoints appends the virtual start (●) and end (■) activities
	// to every trace, as the paper does before constructing the DFG.
	Endpoints bool
	// KeepEmpty keeps cases whose every event is outside the mapping
	// domain as empty traces (which contribute a single ●→■ edge when
	// Endpoints is set). When false such cases are dropped.
	KeepEmpty bool
}

// Build derives the activity-log of an event-log under a mapping
// (Section IV: "an activity-log can be seen as a query and an abstraction
// applied to an event-log through the mapping f"). It is the
// materializing form of Builder: cases are folded in CaseID order.
func Build(el *trace.EventLog, m Mapping, opts BuildOptions) *Log {
	b := NewBuilder(m, opts)
	for _, c := range el.Cases() {
		b.Add(c)
	}
	return b.Finalize()
}

// Builder accumulates an activity-log one case at a time — the
// incremental form of Build that the streaming pipeline feeds, so the
// activity-log of a trace set can be derived without the event-log ever
// being materialized. Feeding cases in CaseID order yields exactly the
// Log that Build produces.
type Builder struct {
	m    Mapping
	opts BuildOptions
	log  *Log
}

// NewBuilder returns an empty builder for the mapping and options.
func NewBuilder(m Mapping, opts BuildOptions) *Builder {
	return &Builder{m: m, opts: opts, log: &Log{byKey: make(map[string]*Variant)}}
}

// Add maps one case's events and folds the resulting trace into the
// log. It returns the derived trace and whether the case contributed
// (false when every event fell outside the mapping domain and
// KeepEmpty is unset), so streaming consumers can reuse the sequence —
// feeding it to a dfg.Builder, say — without mapping the case twice.
func (b *Builder) Add(c *trace.Case) (Trace, bool) {
	l := b.log
	seq := make(Trace, 0, len(c.Events)+2)
	if b.opts.Endpoints {
		seq = append(seq, Start)
	}
	n := 0
	for _, e := range c.Events {
		a, ok := b.m.Map(e)
		if !ok {
			l.unmapped++
			continue
		}
		l.mapped++
		seq = append(seq, a)
		n++
	}
	if n == 0 && !b.opts.KeepEmpty {
		return nil, false
	}
	if b.opts.Endpoints {
		seq = append(seq, End)
	}
	l.add(seq, c.ID)
	return seq, true
}

// Finalize returns the accumulated log. The builder must not be used
// afterwards.
func (b *Builder) Finalize() *Log { return b.log }

func (l *Log) add(seq Trace, id trace.CaseID) {
	key := seq.Key()
	v, ok := l.byKey[key]
	if !ok {
		v = &Variant{Seq: seq}
		l.insertVariant(key, v)
	}
	v.Mult++
	v.Cases = append(v.Cases, id)
}

// insertVariant registers a new variant under key, keeping the variants
// slice in its deterministic lexicographic-by-key order.
func (l *Log) insertVariant(key string, v *Variant) {
	l.byKey[key] = v
	i := sort.Search(len(l.variants), func(i int) bool {
		return l.variants[i].Seq.Key() >= key
	})
	l.variants = append(l.variants, nil)
	copy(l.variants[i+1:], l.variants[i:])
	l.variants[i] = v
}

// Variants returns the distinct traces with multiplicities, in
// deterministic order. The slice must not be mutated.
func (l *Log) Variants() []*Variant { return l.variants }

// NumVariants returns the number of distinct traces.
func (l *Log) NumVariants() int { return len(l.variants) }

// NumTraces returns the total number of traces counting multiplicity
// (= the number of cases that contributed).
func (l *Log) NumTraces() int {
	n := 0
	for _, v := range l.variants {
		n += v.Mult
	}
	return n
}

// NumActivities returns the total number of activity occurrences,
// counting multiplicity and excluding the virtual endpoints.
func (l *Log) NumActivities() int {
	n := 0
	for _, v := range l.variants {
		k := 0
		for _, a := range v.Seq {
			if !a.IsVirtual() {
				k++
			}
		}
		n += k * v.Mult
	}
	return n
}

// MappedEvents returns how many events fell inside the mapping domain
// during construction; UnmappedEvents how many were excluded.
func (l *Log) MappedEvents() int   { return l.mapped }
func (l *Log) UnmappedEvents() int { return l.unmapped }

// Activities returns the sorted alphabet A_f actually observed, excluding
// the virtual endpoints.
func (l *Log) Activities() []Activity {
	set := make(map[Activity]bool)
	for _, v := range l.variants {
		for _, a := range v.Seq {
			if !a.IsVirtual() {
				set[a] = true
			}
		}
	}
	out := make([]Activity, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Merge folds another activity-log into l — the exact multiset union
// underlying both UnionLogs and the sharded analysis fold. Variant
// multiplicities and the mapped/unmapped counters are integer sums, and
// each variant's case list is stitched by a stable sorted merge on
// CaseID (ties keep l's entries first). When every input's per-variant
// case list is ascending — true for any log a Builder was fed in CaseID
// order, which is what every streaming source delivers — merging shard
// partials in any order reproduces the sequential fold byte-for-byte.
// o's variants are copied; o stays usable.
func (l *Log) Merge(o *Log) {
	if o == nil {
		return
	}
	l.mapped += o.mapped
	l.unmapped += o.unmapped
	for _, ov := range o.variants {
		key := ov.Seq.Key()
		v, ok := l.byKey[key]
		if !ok {
			l.insertVariant(key, &Variant{Seq: ov.Seq, Mult: ov.Mult, Cases: paddedCases(ov)})
			continue
		}
		// mergeCaseLists copies into a fresh slice, so o's list can be
		// read in place here; only the retained new-variant branch above
		// needs its own copy.
		v.Cases = mergeCaseLists(paddedCasesInPlace(v), paddedCasesInPlace(ov))
		v.Mult += ov.Mult
	}
}

// paddedCases returns a copy of the variant's case list, padded with
// zero CaseIDs up to its multiplicity (a variant built by a Builder
// always records one case per count; hand-built logs may not).
func paddedCases(v *Variant) []trace.CaseID {
	out := make([]trace.CaseID, v.Mult)
	copy(out, v.Cases)
	return out
}

// paddedCasesInPlace is paddedCases without the copy when no padding is
// needed — the receiver side of Merge owns its list already.
func paddedCasesInPlace(v *Variant) []trace.CaseID {
	if len(v.Cases) == v.Mult {
		return v.Cases
	}
	return paddedCases(v)
}

// mergeCaseLists merges two case lists by CaseID, taking from a first
// on ties. For ascending inputs the result is the ascending interleave
// — exactly the list a sequential fold over the combined case stream
// would have recorded.
func mergeCaseLists(a, b []trace.CaseID) []trace.CaseID {
	out := make([]trace.CaseID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Less(a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// MergeLogs merges partial activity-logs (shard partials of one logical
// fold) into a new log; the inputs stay usable. nil inputs are skipped.
func MergeLogs(logs ...*Log) *Log {
	out := &Log{byKey: make(map[string]*Variant)}
	for _, l := range logs {
		out.Merge(l)
	}
	return out
}

// UnionLogs returns the multiset union of activity-logs, for example
// L_f(C_x) = L_f(C_a) ∪ L_f(C_b). It is MergeLogs under the paper's
// name: variants stay in the deterministic lexicographic-by-key order,
// and each variant's case list is merged in CaseID order.
func UnionLogs(logs ...*Log) *Log { return MergeLogs(logs...) }

// TopVariants returns the k most frequent variants (ties broken by the
// deterministic variant order). Trace-variant ranking is the standard
// first look at an event-log in process mining: a handful of variants
// usually covers almost all cases.
func (l *Log) TopVariants(k int) []*Variant {
	out := append([]*Variant(nil), l.variants...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Mult > out[j].Mult })
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Coverage returns the fraction of traces covered by the k most frequent
// variants (1.0 when k ≥ NumVariants).
func (l *Log) Coverage(k int) float64 {
	total := l.NumTraces()
	if total == 0 {
		return 1
	}
	n := 0
	for _, v := range l.TopVariants(k) {
		n += v.Mult
	}
	return float64(n) / float64(total)
}

// String renders the log in the paper's multiset notation, one variant
// per line.
func (l *Log) String() string {
	var b strings.Builder
	b.WriteString("{")
	for i, v := range l.variants {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s^%d", v.Seq, v.Mult)
	}
	b.WriteString("}")
	return b.String()
}
