package pm

import (
	"fmt"
	"sort"
	"strings"

	"stinspector/internal/intern"
	"stinspector/internal/trace"
)

// Trace is an activity trace σ_f(c): the sequence of activities of the
// mapped events of one case, in event order (Equation 5).
type Trace []Activity

// Key returns a canonical string form used to group identical traces into
// variants. Activities never contain the NUL separator.
func (t Trace) Key() string {
	parts := make([]string, len(t))
	for i, a := range t {
		parts[i] = string(a)
	}
	return strings.Join(parts, "\x00")
}

// String renders the trace in the paper's ⟨a1, a2, ...⟩ notation.
func (t Trace) String() string {
	parts := make([]string, len(t))
	for i, a := range t {
		parts[i] = string(a)
	}
	return "⟨" + strings.Join(parts, ", ") + "⟩"
}

// Variant is one distinct trace together with its multiplicity in the
// activity-log and the cases that produced it. The paper writes
// ⟨a, a, b⟩² for a variant with multiplicity 2.
type Variant struct {
	Seq   Trace
	Mult  int
	Cases []trace.CaseID
}

// Log is the activity-log L_f(C) ∈ B(A_f*): a multiset of traces over the
// activity alphabet, stored as variants. Variants are kept in a
// deterministic order (lexicographic by key) for reproducible output.
type Log struct {
	variants []*Variant
	byKey    map[string]*Variant
	// mapped/unmapped count events inside/outside the mapping domain.
	mapped   int
	unmapped int
}

// BuildOptions configures activity-log construction.
type BuildOptions struct {
	// Endpoints appends the virtual start (●) and end (■) activities
	// to every trace, as the paper does before constructing the DFG.
	Endpoints bool
	// KeepEmpty keeps cases whose every event is outside the mapping
	// domain as empty traces (which contribute a single ●→■ edge when
	// Endpoints is set). When false such cases are dropped.
	KeepEmpty bool
}

// Build derives the activity-log of an event-log under a mapping
// (Section IV: "an activity-log can be seen as a query and an abstraction
// applied to an event-log through the mapping f"). It is the
// materializing form of Builder: cases are folded in CaseID order.
func Build(el *trace.EventLog, m Mapping, opts BuildOptions) *Log {
	b := NewBuilder(m, opts)
	for _, c := range el.Cases() {
		b.add(c)
	}
	return b.Finalize()
}

// Builder accumulates an activity-log one case at a time — the
// incremental form of Build that the streaming pipeline feeds, so the
// activity-log of a trace set can be derived without the event-log ever
// being materialized. Feeding cases in CaseID order yields exactly the
// Log that Build produces.
//
// Internally the builder works in symbol space: events map to dense
// activity symbols through a SymMapper, variants are keyed by the raw
// symbol sequence, and per-event work involves no string building at
// all. Finalize materializes the accumulated state into the exact
// string-keyed Log the pre-symbol implementation produced.
type Builder struct {
	sm   *SymMapper
	opts BuildOptions

	vars map[string]*symVariant // key: little-endian symbol bytes

	startSym, endSym intern.Sym

	seqbuf  []intern.Sym // per-case activity sequence, reused
	keybuf  []byte       // per-case variant key, reused
	symsbuf []intern.Sym // per-case MapCase output, reused (add path)

	mapped, unmapped int
}

// symVariant is a variant in symbol space.
type symVariant struct {
	seq   []intern.Sym
	mult  int
	cases []trace.CaseID
}

// NewBuilder returns an empty builder for the mapping and options.
func NewBuilder(m Mapping, opts BuildOptions) *Builder {
	return NewBuilderSym(NewSymMapper(m), opts)
}

// NewBuilderSym returns an empty builder over a caller-supplied
// SymMapper, so one analysis shard's builders (activity-log, DFG,
// statistics) can share a single activity symbol table and map every
// event exactly once.
func NewBuilderSym(sm *SymMapper, opts BuildOptions) *Builder {
	b := &Builder{sm: sm, opts: opts, vars: make(map[string]*symVariant, 16)}
	b.startSym = sm.acts.Intern(string(Start))
	b.endSym = sm.acts.Intern(string(End))
	return b
}

// Mapper returns the builder's symbol mapper.
func (b *Builder) Mapper() *SymMapper { return b.sm }

// Add maps one case's events and folds the resulting trace into the
// log. It returns the derived trace and whether the case contributed
// (false when every event fell outside the mapping domain and
// KeepEmpty is unset). The returned Trace is materialized for the
// caller; the zero-allocation path is AddMapped.
func (b *Builder) Add(c *trace.Case) (Trace, bool) {
	seq, ok := b.add(c)
	if !ok {
		return nil, false
	}
	return b.materialize(seq), true
}

// add is Add without the Trace materialization.
func (b *Builder) add(c *trace.Case) ([]intern.Sym, bool) {
	b.symsbuf = b.sm.MapCase(c, b.symsbuf[:0])
	return b.AddMapped(c.ID, b.symsbuf)
}

// AddMapped folds one case given its pre-mapped activity symbols (one
// entry per event, NoActivity for events outside the domain), as
// produced by the shared SymMapper's MapCase. It returns the case's
// activity sequence in symbol space — endpoints included when
// configured, valid only until the next Add/AddMapped call — so the
// caller can feed it to dfg.Builder.AddSymVariant without mapping the
// case twice.
func (b *Builder) AddMapped(id trace.CaseID, syms []intern.Sym) ([]intern.Sym, bool) {
	seq := b.seqbuf[:0]
	if b.opts.Endpoints {
		seq = append(seq, b.startSym)
	}
	n := 0
	for _, y := range syms {
		if y == NoActivity {
			b.unmapped++
			continue
		}
		b.mapped++
		seq = append(seq, y)
		n++
	}
	if n == 0 && !b.opts.KeepEmpty {
		b.seqbuf = seq
		return nil, false
	}
	if b.opts.Endpoints {
		seq = append(seq, b.endSym)
	}
	b.seqbuf = seq
	b.fold(seq, id)
	return seq, true
}

// fold counts the sequence into its variant.
func (b *Builder) fold(seq []intern.Sym, id trace.CaseID) {
	b.keybuf = symKey(b.keybuf[:0], seq)
	v, ok := b.vars[string(b.keybuf)] // no-alloc lookup
	if !ok {
		v = &symVariant{seq: append([]intern.Sym(nil), seq...)}
		b.vars[string(b.keybuf)] = v
	}
	v.mult++
	v.cases = append(v.cases, id)
}

// symKey appends the little-endian byte form of the symbol sequence —
// an injective, allocation-free variant key.
func symKey(dst []byte, seq []intern.Sym) []byte {
	for _, y := range seq {
		dst = append(dst, byte(y), byte(y>>8), byte(y>>16), byte(y>>24))
	}
	return dst
}

// materialize converts a symbol sequence into a Trace of activity
// strings.
func (b *Builder) materialize(seq []intern.Sym) Trace {
	out := make(Trace, len(seq))
	for i, y := range seq {
		out[i] = Activity(b.sm.acts.Str(y))
	}
	return out
}

// MergeFrom folds another builder's accumulated state into b,
// remapping o's shard-local symbols through b's tables — the symbol
// form of Log.Merge, used by the sharded analysis fold before a single
// Finalize. The same merge law holds: variant multiplicities and the
// mapped/unmapped counters are integer sums, case lists interleave in
// sorted CaseID order with b's entries first on ties, so merging shard
// partials in shard order reproduces the sequential fold exactly. o
// must not be used afterwards.
func (b *Builder) MergeFrom(o *Builder) {
	if o == nil {
		return
	}
	b.mapped += o.mapped
	b.unmapped += o.unmapped
	r := o.sm.acts.RemapInto(b.sm.acts)
	var seq []intern.Sym
	for _, ov := range o.vars {
		seq = seq[:0]
		for _, y := range ov.seq {
			seq = append(seq, r[y])
		}
		b.keybuf = symKey(b.keybuf[:0], seq)
		v, ok := b.vars[string(b.keybuf)]
		if !ok {
			b.vars[string(b.keybuf)] = &symVariant{
				seq:   append([]intern.Sym(nil), seq...),
				mult:  ov.mult,
				cases: ov.cases,
			}
			continue
		}
		v.cases = mergeCaseLists(v.cases, ov.cases)
		v.mult += ov.mult
	}
}

// Finalize materializes the accumulated state into a Log and returns
// it. The builder must not be used afterwards.
func (b *Builder) Finalize() *Log {
	l := &Log{
		byKey:    make(map[string]*Variant, len(b.vars)),
		mapped:   b.mapped,
		unmapped: b.unmapped,
	}
	type keyed struct {
		key string
		v   *Variant
	}
	out := make([]keyed, 0, len(b.vars))
	for _, sv := range b.vars {
		seq := b.materialize(sv.seq)
		key := seq.Key()
		// Two distinct symbol sequences can collapse onto one string
		// key only if an activity embeds the NUL separator (outside
		// the documented Activity contract); fold them the way the
		// string-keyed builder always has.
		if v, ok := l.byKey[key]; ok {
			v.Cases = mergeCaseLists(v.Cases, sv.cases)
			v.Mult += sv.mult
			continue
		}
		v := &Variant{Seq: seq, Mult: sv.mult, Cases: sv.cases}
		l.byKey[key] = v
		out = append(out, keyed{key: key, v: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	l.variants = make([]*Variant, len(out))
	for i, kv := range out {
		// Case lists accumulate in fold order. Batch ingestion folds in
		// CaseID order, so this sort is a no-op there; live ingestion
		// folds in completion order, and canonicalizing here is what
		// makes its final artifacts byte-identical to a batch run.
		sort.Slice(kv.v.Cases, func(a, b int) bool { return kv.v.Cases[a].Less(kv.v.Cases[b]) })
		l.variants[i] = kv.v
	}
	return l
}

// add folds one materialized trace into the log — the hand-construction
// path used by tests and tools building Logs without a Builder.
func (l *Log) add(seq Trace, id trace.CaseID) {
	key := seq.Key()
	v, ok := l.byKey[key]
	if !ok {
		v = &Variant{Seq: seq}
		l.insertVariant(key, v)
	}
	v.Mult++
	v.Cases = append(v.Cases, id)
}

// insertVariant registers a new variant under key, keeping the variants
// slice in its deterministic lexicographic-by-key order.
func (l *Log) insertVariant(key string, v *Variant) {
	l.byKey[key] = v
	i := sort.Search(len(l.variants), func(i int) bool {
		return l.variants[i].Seq.Key() >= key
	})
	l.variants = append(l.variants, nil)
	copy(l.variants[i+1:], l.variants[i:])
	l.variants[i] = v
}

// Variants returns the distinct traces with multiplicities, in
// deterministic order. The slice must not be mutated.
func (l *Log) Variants() []*Variant { return l.variants }

// NumVariants returns the number of distinct traces.
func (l *Log) NumVariants() int { return len(l.variants) }

// NumTraces returns the total number of traces counting multiplicity
// (= the number of cases that contributed).
func (l *Log) NumTraces() int {
	n := 0
	for _, v := range l.variants {
		n += v.Mult
	}
	return n
}

// NumActivities returns the total number of activity occurrences,
// counting multiplicity and excluding the virtual endpoints.
func (l *Log) NumActivities() int {
	n := 0
	for _, v := range l.variants {
		k := 0
		for _, a := range v.Seq {
			if !a.IsVirtual() {
				k++
			}
		}
		n += k * v.Mult
	}
	return n
}

// MappedEvents returns how many events fell inside the mapping domain
// during construction; UnmappedEvents how many were excluded.
func (l *Log) MappedEvents() int   { return l.mapped }
func (l *Log) UnmappedEvents() int { return l.unmapped }

// Activities returns the sorted alphabet A_f actually observed, excluding
// the virtual endpoints.
func (l *Log) Activities() []Activity {
	set := make(map[Activity]bool)
	for _, v := range l.variants {
		for _, a := range v.Seq {
			if !a.IsVirtual() {
				set[a] = true
			}
		}
	}
	out := make([]Activity, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Merge folds another activity-log into l — the exact multiset union
// underlying both UnionLogs and the sharded analysis fold. Variant
// multiplicities and the mapped/unmapped counters are integer sums, and
// each variant's case list is stitched by a stable sorted merge on
// CaseID (ties keep l's entries first). When every input's per-variant
// case list is ascending — true for any log a Builder was fed in CaseID
// order, which is what every streaming source delivers — merging shard
// partials in any order reproduces the sequential fold byte-for-byte.
// o's variants are copied; o stays usable.
func (l *Log) Merge(o *Log) {
	if o == nil {
		return
	}
	l.mapped += o.mapped
	l.unmapped += o.unmapped
	for _, ov := range o.variants {
		key := ov.Seq.Key()
		v, ok := l.byKey[key]
		if !ok {
			l.insertVariant(key, &Variant{Seq: ov.Seq, Mult: ov.Mult, Cases: paddedCases(ov)})
			continue
		}
		// mergeCaseLists copies into a fresh slice, so o's list can be
		// read in place here; only the retained new-variant branch above
		// needs its own copy.
		v.Cases = mergeCaseLists(paddedCasesInPlace(v), paddedCasesInPlace(ov))
		v.Mult += ov.Mult
	}
}

// paddedCases returns a copy of the variant's case list, padded with
// zero CaseIDs up to its multiplicity (a variant built by a Builder
// always records one case per count; hand-built logs may not).
func paddedCases(v *Variant) []trace.CaseID {
	out := make([]trace.CaseID, v.Mult)
	copy(out, v.Cases)
	return out
}

// paddedCasesInPlace is paddedCases without the copy when no padding is
// needed — the receiver side of Merge owns its list already.
func paddedCasesInPlace(v *Variant) []trace.CaseID {
	if len(v.Cases) == v.Mult {
		return v.Cases
	}
	return paddedCases(v)
}

// mergeCaseLists merges two case lists by CaseID, taking from a first
// on ties. For ascending inputs the result is the ascending interleave
// — exactly the list a sequential fold over the combined case stream
// would have recorded.
func mergeCaseLists(a, b []trace.CaseID) []trace.CaseID {
	out := make([]trace.CaseID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Less(a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// MergeLogs merges partial activity-logs (shard partials of one logical
// fold) into a new log; the inputs stay usable. nil inputs are skipped.
func MergeLogs(logs ...*Log) *Log {
	out := &Log{byKey: make(map[string]*Variant)}
	for _, l := range logs {
		out.Merge(l)
	}
	return out
}

// UnionLogs returns the multiset union of activity-logs, for example
// L_f(C_x) = L_f(C_a) ∪ L_f(C_b). It is MergeLogs under the paper's
// name: variants stay in the deterministic lexicographic-by-key order,
// and each variant's case list is merged in CaseID order.
func UnionLogs(logs ...*Log) *Log { return MergeLogs(logs...) }

// TopVariants returns the k most frequent variants (ties broken by the
// deterministic variant order). Trace-variant ranking is the standard
// first look at an event-log in process mining: a handful of variants
// usually covers almost all cases.
func (l *Log) TopVariants(k int) []*Variant {
	out := append([]*Variant(nil), l.variants...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Mult > out[j].Mult })
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Coverage returns the fraction of traces covered by the k most frequent
// variants (1.0 when k ≥ NumVariants).
func (l *Log) Coverage(k int) float64 {
	total := l.NumTraces()
	if total == 0 {
		return 1
	}
	n := 0
	for _, v := range l.TopVariants(k) {
		n += v.Mult
	}
	return float64(n) / float64(total)
}

// String renders the log in the paper's multiset notation, one variant
// per line.
func (l *Log) String() string {
	var b strings.Builder
	b.WriteString("{")
	for i, v := range l.variants {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s^%d", v.Seq, v.Mult)
	}
	b.WriteString("}")
	return b.String()
}
