package pm

import (
	"fmt"
	"sort"
	"strings"

	"stinspector/internal/trace"
)

// Trace is an activity trace σ_f(c): the sequence of activities of the
// mapped events of one case, in event order (Equation 5).
type Trace []Activity

// Key returns a canonical string form used to group identical traces into
// variants. Activities never contain the NUL separator.
func (t Trace) Key() string {
	parts := make([]string, len(t))
	for i, a := range t {
		parts[i] = string(a)
	}
	return strings.Join(parts, "\x00")
}

// String renders the trace in the paper's ⟨a1, a2, ...⟩ notation.
func (t Trace) String() string {
	parts := make([]string, len(t))
	for i, a := range t {
		parts[i] = string(a)
	}
	return "⟨" + strings.Join(parts, ", ") + "⟩"
}

// Variant is one distinct trace together with its multiplicity in the
// activity-log and the cases that produced it. The paper writes
// ⟨a, a, b⟩² for a variant with multiplicity 2.
type Variant struct {
	Seq   Trace
	Mult  int
	Cases []trace.CaseID
}

// Log is the activity-log L_f(C) ∈ B(A_f*): a multiset of traces over the
// activity alphabet, stored as variants. Variants are kept in a
// deterministic order (lexicographic by key) for reproducible output.
type Log struct {
	variants []*Variant
	byKey    map[string]*Variant
	// mapped/unmapped count events inside/outside the mapping domain.
	mapped   int
	unmapped int
}

// BuildOptions configures activity-log construction.
type BuildOptions struct {
	// Endpoints appends the virtual start (●) and end (■) activities
	// to every trace, as the paper does before constructing the DFG.
	Endpoints bool
	// KeepEmpty keeps cases whose every event is outside the mapping
	// domain as empty traces (which contribute a single ●→■ edge when
	// Endpoints is set). When false such cases are dropped.
	KeepEmpty bool
}

// Build derives the activity-log of an event-log under a mapping
// (Section IV: "an activity-log can be seen as a query and an abstraction
// applied to an event-log through the mapping f"). It is the
// materializing form of Builder: cases are folded in CaseID order.
func Build(el *trace.EventLog, m Mapping, opts BuildOptions) *Log {
	b := NewBuilder(m, opts)
	for _, c := range el.Cases() {
		b.Add(c)
	}
	return b.Finalize()
}

// Builder accumulates an activity-log one case at a time — the
// incremental form of Build that the streaming pipeline feeds, so the
// activity-log of a trace set can be derived without the event-log ever
// being materialized. Feeding cases in CaseID order yields exactly the
// Log that Build produces.
type Builder struct {
	m    Mapping
	opts BuildOptions
	log  *Log
}

// NewBuilder returns an empty builder for the mapping and options.
func NewBuilder(m Mapping, opts BuildOptions) *Builder {
	return &Builder{m: m, opts: opts, log: &Log{byKey: make(map[string]*Variant)}}
}

// Add maps one case's events and folds the resulting trace into the
// log. It returns the derived trace and whether the case contributed
// (false when every event fell outside the mapping domain and
// KeepEmpty is unset), so streaming consumers can reuse the sequence —
// feeding it to a dfg.Builder, say — without mapping the case twice.
func (b *Builder) Add(c *trace.Case) (Trace, bool) {
	l := b.log
	seq := make(Trace, 0, len(c.Events)+2)
	if b.opts.Endpoints {
		seq = append(seq, Start)
	}
	n := 0
	for _, e := range c.Events {
		a, ok := b.m.Map(e)
		if !ok {
			l.unmapped++
			continue
		}
		l.mapped++
		seq = append(seq, a)
		n++
	}
	if n == 0 && !b.opts.KeepEmpty {
		return nil, false
	}
	if b.opts.Endpoints {
		seq = append(seq, End)
	}
	l.add(seq, c.ID)
	return seq, true
}

// Finalize returns the accumulated log. The builder must not be used
// afterwards.
func (b *Builder) Finalize() *Log { return b.log }

func (l *Log) add(seq Trace, id trace.CaseID) {
	key := seq.Key()
	v, ok := l.byKey[key]
	if !ok {
		v = &Variant{Seq: seq}
		l.byKey[key] = v
		i := sort.Search(len(l.variants), func(i int) bool {
			return l.variants[i].Seq.Key() >= key
		})
		l.variants = append(l.variants, nil)
		copy(l.variants[i+1:], l.variants[i:])
		l.variants[i] = v
	}
	v.Mult++
	v.Cases = append(v.Cases, id)
}

// Variants returns the distinct traces with multiplicities, in
// deterministic order. The slice must not be mutated.
func (l *Log) Variants() []*Variant { return l.variants }

// NumVariants returns the number of distinct traces.
func (l *Log) NumVariants() int { return len(l.variants) }

// NumTraces returns the total number of traces counting multiplicity
// (= the number of cases that contributed).
func (l *Log) NumTraces() int {
	n := 0
	for _, v := range l.variants {
		n += v.Mult
	}
	return n
}

// NumActivities returns the total number of activity occurrences,
// counting multiplicity and excluding the virtual endpoints.
func (l *Log) NumActivities() int {
	n := 0
	for _, v := range l.variants {
		k := 0
		for _, a := range v.Seq {
			if !a.IsVirtual() {
				k++
			}
		}
		n += k * v.Mult
	}
	return n
}

// MappedEvents returns how many events fell inside the mapping domain
// during construction; UnmappedEvents how many were excluded.
func (l *Log) MappedEvents() int   { return l.mapped }
func (l *Log) UnmappedEvents() int { return l.unmapped }

// Activities returns the sorted alphabet A_f actually observed, excluding
// the virtual endpoints.
func (l *Log) Activities() []Activity {
	set := make(map[Activity]bool)
	for _, v := range l.variants {
		for _, a := range v.Seq {
			if !a.IsVirtual() {
				set[a] = true
			}
		}
	}
	out := make([]Activity, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Union returns the multiset union of activity-logs, for example
// L_f(C_x) = L_f(C_a) ∪ L_f(C_b).
func UnionLogs(logs ...*Log) *Log {
	out := &Log{byKey: make(map[string]*Variant)}
	for _, l := range logs {
		if l == nil {
			continue
		}
		out.mapped += l.mapped
		out.unmapped += l.unmapped
		for _, v := range l.variants {
			for i := 0; i < v.Mult; i++ {
				var id trace.CaseID
				if i < len(v.Cases) {
					id = v.Cases[i]
				}
				out.add(v.Seq, id)
			}
		}
	}
	return out
}

// TopVariants returns the k most frequent variants (ties broken by the
// deterministic variant order). Trace-variant ranking is the standard
// first look at an event-log in process mining: a handful of variants
// usually covers almost all cases.
func (l *Log) TopVariants(k int) []*Variant {
	out := append([]*Variant(nil), l.variants...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Mult > out[j].Mult })
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Coverage returns the fraction of traces covered by the k most frequent
// variants (1.0 when k ≥ NumVariants).
func (l *Log) Coverage(k int) float64 {
	total := l.NumTraces()
	if total == 0 {
		return 1
	}
	n := 0
	for _, v := range l.TopVariants(k) {
		n += v.Mult
	}
	return float64(n) / float64(total)
}

// String renders the log in the paper's multiset notation, one variant
// per line.
func (l *Log) String() string {
	var b strings.Builder
	b.WriteString("{")
	for i, v := range l.variants {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s^%d", v.Seq, v.Mult)
	}
	b.WriteString("}")
	return b.String()
}
