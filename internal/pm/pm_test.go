package pm

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"stinspector/internal/trace"
)

func ev(call, fp string, start time.Duration, size int64) trace.Event {
	return trace.Event{Call: call, FP: fp, Start: start, Dur: 10 * time.Microsecond, Size: size}
}

// fig2aEvents reproduces the event sequence of the paper's Figure 2a
// (the ls command).
func fig2aEvents() []trace.Event {
	return []trace.Event{
		ev("read", "/usr/lib/x86_64-linux-gnu/libselinux.so.1", 1, 832),
		ev("read", "/usr/lib/x86_64-linux-gnu/libc.so.6", 2, 832),
		ev("read", "/usr/lib/x86_64-linux-gnu/libpcre2-8.so.0.10.4", 3, 832),
		ev("read", "/proc/filesystems", 4, 478),
		ev("read", "/proc/filesystems", 5, 0),
		ev("read", "/etc/locale.alias", 6, 2996),
		ev("read", "/etc/locale.alias", 7, 0),
		ev("write", "/dev/pts/7", 8, 50),
	}
}

func fig2aLog(t *testing.T) *trace.EventLog {
	t.Helper()
	var cases []*trace.Case
	for _, rid := range []int{9042, 9043, 9045} {
		cases = append(cases, trace.NewCase(trace.CaseID{CID: "a", Host: "host1", RID: rid}, fig2aEvents()))
	}
	return trace.MustNewEventLog(cases...)
}

func TestCallTopDirsEquation4(t *testing.T) {
	m := CallTopDirs{Depth: 2}
	tests := []struct {
		call, fp string
		want     Activity
	}{
		// The paper: the first line of Figure 2b maps to "read:/usr/lib".
		{"read", "/usr/lib/x86_64-linux-gnu/libselinux.so.1", "read:/usr/lib"},
		{"read", "/proc/filesystems", "read:/proc/filesystems"},
		{"write", "/dev/pts/7", "write:/dev/pts"},
		{"read", "/etc/locale.alias", "read:/etc/locale.alias"},
		{"read", "/usr/share/zoneinfo/Europe/Berlin", "read:/usr/share"},
	}
	for _, tc := range tests {
		a, ok := m.Map(trace.Event{Call: tc.call, FP: tc.fp})
		if !ok || a != tc.want {
			t.Errorf("f̂(%s %s) = %q (%v), want %q", tc.call, tc.fp, a, ok, tc.want)
		}
	}
}

func TestTruncatePath(t *testing.T) {
	tests := []struct {
		fp    string
		depth int
		want  string
	}{
		{"/usr/lib/x/y.so", 2, "/usr/lib"},
		{"/usr/lib", 2, "/usr/lib"},
		{"/usr", 2, "/usr"},
		{"/", 2, "/"},
		{"relative/path/x", 2, "relative/path/x"},
		{"/a/b/c", 0, "/a/b/c"},
		{"/a/b/c", 1, "/a"},
	}
	for _, tc := range tests {
		if got := TruncatePath(tc.fp, tc.depth); got != tc.want {
			t.Errorf("TruncatePath(%q, %d) = %q, want %q", tc.fp, tc.depth, got, tc.want)
		}
	}
}

func TestCallFileName(t *testing.T) {
	m := CallFileName{}
	a, _ := m.Map(trace.Event{Call: "read", FP: "/usr/lib/x86_64-linux-gnu/libselinux.so.1"})
	if a != "read:libselinux.so.1" {
		t.Errorf("CallFileName = %q", a)
	}
	m2 := CallFileName{Keep: 2}
	a, _ = m2.Map(trace.Event{Call: "read", FP: "/usr/lib/x86_64-linux-gnu/libselinux.so.1"})
	if a != "read:x86_64-linux-gnu/libselinux.so.1" {
		t.Errorf("CallFileName{2} = %q", a)
	}
}

func TestEnvMapping(t *testing.T) {
	m := NewEnvMapping(0,
		PrefixVar{Prefix: "/p/scratch/user", Var: "$SCRATCH"},
		PrefixVar{Prefix: "/p/home/user", Var: "$HOME"},
		PrefixVar{Prefix: "/p/software", Var: "$SOFTWARE"},
		PrefixVar{Prefix: "/dev/shm", Var: "Node Local"},
		PrefixVar{Prefix: "/tmp", Var: "Node Local"},
	)
	tests := []struct{ fp, want string }{
		{"/p/scratch/user/ssf/test", "$SCRATCH"},
		{"/p/home/user/.bashrc", "$HOME"},
		{"/p/software/lib/libmpi.so", "$SOFTWARE"},
		{"/dev/shm/psm2_shm.42", "Node Local"},
		{"/tmp/ompi.sock", "Node Local"},
		{"/usr/lib/x/y.so", "/usr/lib"}, // fallback truncation
		{"/p/scratchy/other", "/p/scratchy"},
	}
	for _, tc := range tests {
		if got := m.Abstract(tc.fp); got != tc.want {
			t.Errorf("Abstract(%q) = %q, want %q", tc.fp, got, tc.want)
		}
	}

	// Depth 1 distinguishes the ssf and fpp run directories (Fig. 8b).
	m1 := NewEnvMapping(1, PrefixVar{Prefix: "/p/scratch/user", Var: "$SCRATCH"})
	tests = []struct{ fp, want string }{
		{"/p/scratch/user/ssf/test", "$SCRATCH/ssf"},
		{"/p/scratch/user/fpp/test.00000042", "$SCRATCH/fpp"},
		{"/p/scratch/user", "$SCRATCH"},
	}
	for _, tc := range tests {
		if got := m1.Abstract(tc.fp); got != tc.want {
			t.Errorf("depth-1 Abstract(%q) = %q, want %q", tc.fp, got, tc.want)
		}
	}

	// Longest prefix wins regardless of declaration order.
	m2 := NewEnvMapping(0,
		PrefixVar{Prefix: "/p", Var: "$P"},
		PrefixVar{Prefix: "/p/scratch", Var: "$SCRATCH"},
	)
	if got := m2.Abstract("/p/scratch/x"); got != "$SCRATCH" {
		t.Errorf("longest prefix: got %q", got)
	}
	if got := m2.Abstract("/p/other"); got != "$P" {
		t.Errorf("shorter prefix: got %q", got)
	}
}

func TestActivityParts(t *testing.T) {
	a := MakeActivity("read", "/usr/lib")
	call, path := a.Parts()
	if call != "read" || path != "/usr/lib" {
		t.Errorf("Parts = %q, %q", call, path)
	}
	call, path = Activity("lseek").Parts()
	if call != "lseek" || path != "" {
		t.Errorf("bare Parts = %q, %q", call, path)
	}
	if !Start.IsVirtual() || !End.IsVirtual() || a.IsVirtual() {
		t.Errorf("IsVirtual misclassifies")
	}
}

// TestBuildFig2aTrace verifies σ_f̂(a9042) exactly as printed in the paper.
func TestBuildFig2aTrace(t *testing.T) {
	l := Build(fig2aLog(t), CallTopDirs{Depth: 2}, BuildOptions{})
	if l.NumVariants() != 1 {
		t.Fatalf("variants = %d, want 1 (all three ranks behave identically)", l.NumVariants())
	}
	v := l.Variants()[0]
	if v.Mult != 3 {
		t.Errorf("multiplicity = %d, want 3", v.Mult)
	}
	want := Trace{
		"read:/usr/lib", "read:/usr/lib", "read:/usr/lib",
		"read:/proc/filesystems", "read:/proc/filesystems",
		"read:/etc/locale.alias", "read:/etc/locale.alias",
		"write:/dev/pts",
	}
	if !reflect.DeepEqual(v.Seq, want) {
		t.Errorf("trace = %v\nwant %v", v.Seq, want)
	}
}

func TestBuildWithEndpoints(t *testing.T) {
	l := Build(fig2aLog(t), CallTopDirs{Depth: 2}, BuildOptions{Endpoints: true})
	v := l.Variants()[0]
	if v.Seq[0] != Start || v.Seq[len(v.Seq)-1] != End {
		t.Errorf("endpoints missing: %v", v.Seq)
	}
	if l.NumActivities() != 8*3 {
		t.Errorf("NumActivities = %d, want 24 (virtual endpoints excluded)", l.NumActivities())
	}
	if l.NumTraces() != 3 {
		t.Errorf("NumTraces = %d, want 3", l.NumTraces())
	}
}

func TestBuildPartialMapping(t *testing.T) {
	m := RestrictPath(CallTopDirs{Depth: 2}, "/usr/lib")
	l := Build(fig2aLog(t), m, BuildOptions{})
	if l.NumVariants() != 1 {
		t.Fatalf("variants = %d", l.NumVariants())
	}
	v := l.Variants()[0]
	want := Trace{"read:/usr/lib", "read:/usr/lib", "read:/usr/lib"}
	if !reflect.DeepEqual(v.Seq, want) {
		t.Errorf("restricted trace = %v, want %v", v.Seq, want)
	}
	if l.MappedEvents() != 9 || l.UnmappedEvents() != 15 {
		t.Errorf("mapped/unmapped = %d/%d, want 9/15", l.MappedEvents(), l.UnmappedEvents())
	}
}

func TestBuildEmptyTraces(t *testing.T) {
	m := RestrictPath(CallTopDirs{Depth: 2}, "/no/such/path")
	if l := Build(fig2aLog(t), m, BuildOptions{}); l.NumTraces() != 0 {
		t.Errorf("dropped empty traces expected, got %d", l.NumTraces())
	}
	l := Build(fig2aLog(t), m, BuildOptions{KeepEmpty: true, Endpoints: true})
	if l.NumTraces() != 3 || l.NumVariants() != 1 {
		t.Fatalf("kept traces = %d variants = %d", l.NumTraces(), l.NumVariants())
	}
	if got := l.Variants()[0].Seq; len(got) != 2 || got[0] != Start || got[1] != End {
		t.Errorf("empty trace with endpoints = %v", got)
	}
}

func TestRestrictCalls(t *testing.T) {
	m := RestrictCalls(CallTopDirs{Depth: 2}, "write")
	l := Build(fig2aLog(t), m, BuildOptions{})
	if acts := l.Activities(); len(acts) != 1 || acts[0] != "write:/dev/pts" {
		t.Errorf("activities = %v", acts)
	}
}

func TestUnionLogs(t *testing.T) {
	el := fig2aLog(t)
	m := CallTopDirs{Depth: 2}
	whole := Build(el, m, BuildOptions{Endpoints: true})

	// Split the event-log in two and union the activity-logs.
	g, r := el.Partition(func(c *trace.Case) bool { return c.ID.RID == 9042 })
	u := UnionLogs(Build(g, m, BuildOptions{Endpoints: true}), Build(r, m, BuildOptions{Endpoints: true}))
	if u.NumTraces() != whole.NumTraces() || u.NumVariants() != whole.NumVariants() {
		t.Errorf("union = %d traces %d variants, want %d/%d",
			u.NumTraces(), u.NumVariants(), whole.NumTraces(), whole.NumVariants())
	}
	if u.Variants()[0].Mult != 3 {
		t.Errorf("union multiplicity = %d, want 3", u.Variants()[0].Mult)
	}
}

func TestLogString(t *testing.T) {
	l := Build(fig2aLog(t), CallTopDirs{Depth: 2}, BuildOptions{})
	s := l.String()
	if !strings.Contains(s, "^3") || !strings.Contains(s, "read:/usr/lib") {
		t.Errorf("String() = %s", s)
	}
}

func TestVariantCasesRecorded(t *testing.T) {
	l := Build(fig2aLog(t), CallTopDirs{Depth: 2}, BuildOptions{})
	v := l.Variants()[0]
	if len(v.Cases) != 3 {
		t.Fatalf("cases = %v", v.Cases)
	}
	rids := map[int]bool{}
	for _, id := range v.Cases {
		rids[id.RID] = true
	}
	if !rids[9042] || !rids[9043] || !rids[9045] {
		t.Errorf("case rids = %v", v.Cases)
	}
}

func TestTopVariantsAndCoverage(t *testing.T) {
	// Two variants: the full ls trace (mult 3) and a truncated one
	// (mult 1).
	el := fig2aLog(t)
	extra := trace.NewCase(trace.CaseID{CID: "a", Host: "host1", RID: 9999},
		fig2aEvents()[:3])
	if err := el.Add(extra); err != nil {
		t.Fatal(err)
	}
	l := Build(el, CallTopDirs{Depth: 2}, BuildOptions{})
	if l.NumVariants() != 2 {
		t.Fatalf("variants = %d", l.NumVariants())
	}
	top := l.TopVariants(1)
	if len(top) != 1 || top[0].Mult != 3 {
		t.Errorf("top variant = %+v", top[0])
	}
	if got := l.Coverage(1); got != 0.75 {
		t.Errorf("coverage(1) = %v, want 0.75", got)
	}
	if got := l.Coverage(99); got != 1.0 {
		t.Errorf("coverage(all) = %v", got)
	}
	empty := Build(trace.MustNewEventLog(), CallTopDirs{Depth: 2}, BuildOptions{})
	if empty.Coverage(1) != 1.0 {
		t.Errorf("empty coverage = %v", empty.Coverage(1))
	}
}
