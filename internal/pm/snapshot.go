package pm

import (
	"sort"

	"stinspector/internal/intern"
	"stinspector/internal/snapshot/wire"
	"stinspector/internal/trace"
)

// EncodeSnapshot serializes the activity-log for durable storage. Every
// string — activities and the case-identity CID/Host components — is
// written once in a per-snapshot intern dictionary, in first-use order
// over the deterministic variant order, so the encoding is a pure
// function of the log's content: identical logs encode to identical
// bytes whatever process produced them.
//
// Layout (wrapped in a checksummed section by internal/snapshot):
//
//	dict:     n | string*
//	counters: mapped | unmapped
//	variants: n | (seqLen | actSym* | mult | nCases | (cidSym hostSym rid)*)*
func (l *Log) EncodeSnapshot() []byte {
	dict := intern.NewLocal()
	var b wire.Buf

	// First pass interns in first-use order so the dictionary itself is
	// deterministic; the strings are emitted before the variants that
	// reference them.
	for _, v := range l.variants {
		for _, a := range v.Seq {
			dict.Intern(string(a))
		}
		for _, id := range v.Cases {
			dict.Intern(id.CID)
			dict.Intern(id.Host)
		}
	}
	b.Uvarint(uint64(dict.Len()))
	for i := 0; i < dict.Len(); i++ {
		b.Str(dict.Str(intern.Sym(i)))
	}

	b.Uvarint(uint64(l.mapped))
	b.Uvarint(uint64(l.unmapped))
	b.Uvarint(uint64(len(l.variants)))
	for _, v := range l.variants {
		b.Uvarint(uint64(len(v.Seq)))
		for _, a := range v.Seq {
			y, _ := dict.Sym(string(a))
			b.Uvarint(uint64(y))
		}
		b.Uvarint(uint64(v.Mult))
		b.Uvarint(uint64(len(v.Cases)))
		for _, id := range v.Cases {
			cy, _ := dict.Sym(id.CID)
			hy, _ := dict.Sym(id.Host)
			b.Uvarint(uint64(cy))
			b.Uvarint(uint64(hy))
			b.Varint(int64(id.RID))
		}
	}
	return b.Bytes()
}

// DecodeLogSnapshot reconstructs an activity-log from EncodeSnapshot
// bytes. The dictionary strings are re-interned through a fresh scoped
// table in file order — reproducing the original symbol assignment —
// and every reference is range-checked: hostile input yields a
// wire.CorruptError, never a panic or a garbage log.
func DecodeLogSnapshot(data []byte) (*Log, error) {
	c := wire.NewCursor(data)
	nd, err := c.Count(1)
	if err != nil {
		return nil, err
	}
	dict := intern.NewLocal()
	for i := 0; i < nd; i++ {
		s, err := c.Str()
		if err != nil {
			return nil, err
		}
		dict.Intern(s)
		if dict.Len() != i+1 {
			return nil, wire.Corruptf("duplicate dictionary string %q", s)
		}
	}
	sym := func() (string, error) {
		y, err := c.Uvarint()
		if err != nil {
			return "", err
		}
		if y >= uint64(nd) {
			return "", wire.Corruptf("dictionary id %d out of range (%d strings)", y, nd)
		}
		return dict.Str(intern.Sym(y)), nil
	}

	l := &Log{}
	if l.mapped, err = c.Int(); err != nil {
		return nil, err
	}
	if l.unmapped, err = c.Int(); err != nil {
		return nil, err
	}
	nv, err := c.Count(2)
	if err != nil {
		return nil, err
	}
	l.byKey = make(map[string]*Variant, nv)
	type keyed struct {
		key string
		v   *Variant
	}
	out := make([]keyed, 0, nv)
	for i := 0; i < nv; i++ {
		ns, err := c.Count(1)
		if err != nil {
			return nil, err
		}
		seq := make(Trace, ns)
		for j := range seq {
			s, err := sym()
			if err != nil {
				return nil, err
			}
			seq[j] = Activity(s)
		}
		mult, err := c.Int()
		if err != nil {
			return nil, err
		}
		nc, err := c.Count(3)
		if err != nil {
			return nil, err
		}
		cases := make([]trace.CaseID, nc)
		for j := range cases {
			if cases[j].CID, err = sym(); err != nil {
				return nil, err
			}
			if cases[j].Host, err = sym(); err != nil {
				return nil, err
			}
			rid, err := c.Varint()
			if err != nil {
				return nil, err
			}
			cases[j].RID = int(rid)
		}
		key := seq.Key()
		// A well-formed snapshot never repeats a variant key; fold
		// duplicates the way the builder would rather than dropping data.
		if v, ok := l.byKey[key]; ok {
			v.Cases = mergeCaseLists(v.Cases, cases)
			v.Mult += mult
			continue
		}
		v := &Variant{Seq: seq, Mult: mult, Cases: cases}
		l.byKey[key] = v
		out = append(out, keyed{key: key, v: v})
	}
	if err := c.Done(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	l.variants = make([]*Variant, len(out))
	for i, kv := range out {
		l.variants[i] = kv.v
	}
	return l, nil
}
