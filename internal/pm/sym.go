package pm

import (
	"stinspector/internal/intern"
	"stinspector/internal/trace"
)

// NoActivity is the sentinel SymMapper.MapCase writes for events
// outside the mapping's domain.
const NoActivity = ^intern.Sym(0)

// CallPathMapping marks mappings whose activity is a pure function of
// the event's Call and FP attributes — true for the paper's f̂
// (CallTopDirs), the file-level view (CallFileName) and the
// site-variable abstraction (EnvMapping). The symbol layer memoizes
// such mappings per distinct (call, fp) pair, so the activity string is
// built once per pair instead of once per event. Mappings that inspect
// other attributes (a Restrict predicate over durations, say) must not
// implement it; they fall back to the per-event Map call.
type CallPathMapping interface {
	Mapping
	// MapCallPath returns the activity for an event with the given
	// system call name and file path. It must agree with Map for every
	// event carrying those attributes.
	MapCallPath(call, fp string) (Activity, bool)
}

// SymMapper applies a Mapping in symbol space: events map to dense
// activity symbols drawn from an unsynchronized local table, so the
// builders downstream (activity-log, DFG, statistics) count on integer
// keys instead of concatenated strings. One SymMapper — and therefore
// one activity table — is shared by all builders of one analysis
// shard; at merge time the shard tables are remapped into the
// survivor's (intern.Local.RemapInto).
//
// A SymMapper is unsynchronized: one per goroutine.
type SymMapper struct {
	m    Mapping
	pure CallPathMapping // non-nil when m is call/path-pure

	strs *intern.Local // call and fp strings → symbols
	acts *intern.Local // activity strings → symbols

	// memo caches the (call, fp) → activity decision for pure
	// mappings: key is callSym<<32|fpSym.
	memo map[uint64]memoEntry
}

type memoEntry struct {
	act intern.Sym
	ok  bool
}

// NewSymMapper wraps a mapping for symbol-space application.
func NewSymMapper(m Mapping) *SymMapper {
	sm := &SymMapper{
		m:    m,
		strs: intern.NewLocal(),
		acts: intern.NewLocal(),
		memo: make(map[uint64]memoEntry, 64),
	}
	if p, ok := m.(CallPathMapping); ok {
		sm.pure = p
	}
	return sm
}

// Mapping returns the wrapped mapping.
func (sm *SymMapper) Mapping() Mapping { return sm.m }

// Acts exposes the activity symbol table shared by the shard's
// builders: Str materializes an activity symbol back into its string.
func (sm *SymMapper) Acts() *intern.Local { return sm.acts }

// MapEvent maps one event to its activity symbol; ok is false when the
// event is outside the mapping's domain. For pure mappings the
// activity string is built at most once per distinct (call, fp) pair.
func (sm *SymMapper) MapEvent(e *trace.Event) (intern.Sym, bool) {
	if sm.pure == nil {
		a, ok := sm.m.Map(*e)
		if !ok {
			return 0, false
		}
		return sm.acts.Intern(string(a)), true
	}
	key := uint64(sm.strs.Intern(e.Call))<<32 | uint64(sm.strs.Intern(e.FP))
	if me, ok := sm.memo[key]; ok {
		return me.act, me.ok
	}
	a, ok := sm.pure.MapCallPath(e.Call, e.FP)
	var act intern.Sym
	if ok {
		act = sm.acts.Intern(string(a))
	}
	sm.memo[key] = memoEntry{act: act, ok: ok}
	return act, ok
}

// MapCase maps every event of the case in order, appending one entry
// per event to buf (NoActivity for events outside the domain) and
// returning the extended slice. Reusing buf across cases keeps the
// per-case mapping allocation-free.
func (sm *SymMapper) MapCase(c *trace.Case, buf []intern.Sym) []intern.Sym {
	for i := range c.Events {
		if a, ok := sm.MapEvent(&c.Events[i]); ok {
			buf = append(buf, a)
		} else {
			buf = append(buf, NoActivity)
		}
	}
	return buf
}
