// Package pm implements the process-mining abstractions of Section IV of
// the paper: activities, the partial mapping from events to activities,
// activity traces, and the activity-log (a multiset of traces) from which
// the Directly-Follows-Graph is synthesized.
package pm

import "strings"

// Activity is a named entity an event maps to, for example
// "read:/usr/lib". By the convention of the paper's mapping f̂
// (Equation 4) an activity value concatenates the system call name and an
// abstraction of the file path; this package treats it as opaque.
type Activity string

// The virtual start and end activities appended to every trace before DFG
// construction, rendered as "●" and "■" in the paper's figures.
const (
	Start Activity = "●" // ●
	End   Activity = "■" // ■
)

// IsVirtual reports whether the activity is one of the start/end markers.
func (a Activity) IsVirtual() bool { return a == Start || a == End }

// Parts splits an activity of the conventional "call:path" form into its
// call and path components. Activities without a separator return the
// whole value as call and an empty path.
func (a Activity) Parts() (call, path string) {
	s := string(a)
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}

// MakeActivity builds an activity value in the conventional "call:path"
// form.
func MakeActivity(call, path string) Activity {
	if path == "" {
		return Activity(call)
	}
	return Activity(call + ":" + path)
}
