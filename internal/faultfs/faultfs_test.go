package faultfs_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"stinspector/internal/faultfs"
	"stinspector/internal/strace"
)

// The whole point of the harness: it must be usable where the tailer
// expects its filesystem.
var _ strace.TailFS = fsAdapter{}

// fsAdapter proves *faultfs.FS satisfies the strace.TailFS method set
// without faultfs importing strace (which would cycle through the
// follow tests). The only adaptation is the concrete-to-interface
// return type of Open.
type fsAdapter struct{ fs *faultfs.FS }

func (a fsAdapter) Names() ([]string, error)           { return a.fs.Names() }
func (a fsAdapter) FileID(name string) (uint64, error) { return a.fs.FileID(name) }
func (a fsAdapter) Open(name string) (strace.TailFile, error) {
	f, err := a.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func readAll(t *testing.T, fs *faultfs.FS, name string) []byte {
	t.Helper()
	var buf bytes.Buffer
	for {
		f, err := fs.Open(name)
		var inj *faultfs.InjectedError
		if errors.As(err, &inj) {
			continue // transient by contract: retry
		}
		if err != nil {
			t.Fatal(err)
		}
		buf.Reset()
		p := make([]byte, 64)
		for {
			n, err := f.Read(p)
			buf.Write(p[:n])
			if err == io.EOF {
				f.Close()
				return buf.Bytes()
			}
			if errors.As(err, &inj) {
				continue // handle stays usable after an injected read fault
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestFSFaultsFireAndRecover: injected open and read faults fire on
// schedule, are typed and Temporary, and a retrying reader still gets
// the exact file bytes through short reads.
func TestFSFaultsFireAndRecover(t *testing.T) {
	dir := t.TempDir()
	want := bytes.Repeat([]byte("0123456789abcdef\n"), 40)
	if err := os.WriteFile(filepath.Join(dir, "a.st"), want, 0o644); err != nil {
		t.Fatal(err)
	}
	fs := faultfs.New(dir, 42, faultfs.Faults{
		OpenFailEveryN: 2,
		ReadFailEveryN: 5,
		ShortReadMax:   7,
	})

	got := readAll(t, fs, "a.st")
	if !bytes.Equal(got, want) {
		t.Fatalf("content diverged through faults: got %d bytes, want %d", len(got), len(want))
	}
	if fs.InjectedReads.Load() == 0 {
		t.Error("no read faults fired")
	}

	var inj *faultfs.InjectedError
	_, err := fs.Open("a.st") // one of the next two opens is scheduled to fail
	if err == nil {
		_, err = fs.Open("a.st")
	}
	if !errors.As(err, &inj) {
		t.Fatalf("expected InjectedError from scheduled open fault, got %v", err)
	}
	if !inj.Temporary() {
		t.Error("injected fault not Temporary")
	}
	if fs.InjectedOpens.Load() == 0 {
		t.Error("no open faults fired")
	}
}

// TestFSNamesFiltersTraceFiles: only *.st names surface.
func TestFSNamesFiltersTraceFiles(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []string{"a.st", "b.st.gz", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fs := faultfs.New(dir, 1, faultfs.Faults{})
	names, err := fs.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "a.st" {
		t.Errorf("Names() = %v, want [a.st]", names)
	}
}

// TestAppenderConverges: every plan — chunked, truncating, rotating,
// combined — ends with the file bytes exactly equal to the input, and
// the planned faults actually fired.
func TestAppenderConverges(t *testing.T) {
	content := bytes.Repeat([]byte("read(3, \"xyz\", 64) = 3 <0.000012>\n"), 60)
	for _, tc := range []struct {
		name string
		plan faultfs.Plan
		want func(t *testing.T, a *faultfs.Appender)
	}{
		{"chunked", faultfs.Plan{Chunk: 13}, func(t *testing.T, a *faultfs.Appender) {
			if a.Chunks.Load() < 2 {
				t.Error("plan did not chunk")
			}
		}},
		{"truncate", faultfs.Plan{Chunk: 17, TruncateEveryN: 5}, func(t *testing.T, a *faultfs.Appender) {
			if a.Truncations.Load() == 0 {
				t.Error("no truncations fired")
			}
		}},
		{"rotate", faultfs.Plan{Chunk: 17, RotateEveryN: 7}, func(t *testing.T, a *faultfs.Appender) {
			if a.Rotations.Load() == 0 {
				t.Error("no rotations fired")
			}
		}},
		{"combined", faultfs.Plan{Chunk: 11, TruncateEveryN: 6, RotateEveryN: 9}, func(t *testing.T, a *faultfs.Appender) {
			if a.Truncations.Load() == 0 || a.Rotations.Load() == 0 {
				t.Errorf("combined plan fired truncations=%d rotations=%d", a.Truncations.Load(), a.Rotations.Load())
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			a := faultfs.NewAppender(dir, 7, tc.plan)
			if err := a.Replay("case.st", content); err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(dir, "case.st"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, content) {
				t.Fatalf("replay did not converge: got %d bytes, want %d", len(got), len(content))
			}
			tc.want(t, a)
		})
	}
}

// TestAppenderRotationChangesIdentity: a rotation rebinds the name to a
// new inode, observable through FS.FileID — the signal the tailer keys
// rotation detection on.
func TestAppenderRotationChangesIdentity(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(dir, 1, faultfs.Faults{})
	content := bytes.Repeat([]byte("line\n"), 50)

	a := faultfs.NewAppender(dir, 3, faultfs.Plan{Chunk: 25})
	if err := a.Replay("r.st", content[:50]); err != nil {
		t.Fatal(err)
	}
	// Hold a handle across the rotation, like a real tailer does: the
	// open handle pins the old inode so the recreated file cannot reuse
	// its number, and h.ID() vs FileID(name) is exactly the comparison
	// rotation detection makes.
	h, err := fs.Open("r.st")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	before := h.ID()

	rot := faultfs.NewAppender(dir, 3, faultfs.Plan{Chunk: 25, RotateEveryN: 2})
	if err := rot.Replay("r.st", content); err != nil {
		t.Fatal(err)
	}
	if rot.Rotations.Load() == 0 {
		t.Fatal("rotation plan fired no rotations")
	}
	after, err := fs.FileID("r.st")
	if err != nil {
		t.Fatal(err)
	}
	if before != 0 && before == after {
		t.Error("rotation did not change file identity")
	}
}

// TestAppenderDeterministic: same seed, same plan, same fault counts.
func TestAppenderDeterministic(t *testing.T) {
	content := bytes.Repeat([]byte("deterministic-fault-line\n"), 80)
	run := func() (uint64, uint64) {
		dir := t.TempDir()
		a := faultfs.NewAppender(dir, 99, faultfs.Plan{Chunk: 19, TruncateEveryN: 4})
		if err := a.Replay("d.st", content); err != nil {
			t.Fatal(err)
		}
		return a.Truncations.Load(), a.Chunks.Load()
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Errorf("replays diverged: (%d,%d) vs (%d,%d)", t1, c1, t2, c2)
	}
}
