//go:build unix

package faultfs

import (
	"io/fs"
	"syscall"
)

// inode mirrors strace's unix file identity: the inode number, which is
// what rotation detection compares.
func inode(fi fs.FileInfo) uint64 {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return st.Ino
	}
	return 0
}
