// Package faultfs is the deterministic fault-injection harness of the
// live-ingestion test matrix. It attacks both sides of a follow-mode
// tailer over a real directory:
//
//   - FS wraps the read side with seeded, countable faults — transient
//     open errors, short reads, transient read errors — behind the same
//     interface shape as strace.OSDir, so the tailer cannot tell it is
//     being tested.
//   - Appender replays known-good file contents through a seeded fault
//     plan on the write side: appends are chunked so boundaries cut
//     records mid-line (the delayed-append/truncated-write case), the
//     file is sporadically truncated back to a shorter prefix and
//     rewritten (size shrink), or removed and recreated (rotation: new
//     inode). Every fault converges — the final bytes always equal the
//     input — so a correct tailer must recover to the exact fault-free
//     result, which is what the equivalence suite asserts.
//
// Everything is driven by explicit seeds and counters rather than wall
// clock or probability-of-the-day, so a failing scenario replays
// exactly under -race.
package faultfs

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// InjectedError marks a fault the harness injected, so tests and
// recovery paths can tell synthetic failures from real ones.
type InjectedError struct {
	Op   string // "open", "read"
	Name string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultfs: injected %s fault on %s", e.Op, e.Name)
}

// Temporary marks injected faults as transient, matching the retry
// contract of the tailer's backoff path.
func (e *InjectedError) Temporary() bool { return true }

// Faults configures the read-side fault plan. Zero values disable each
// fault. The *EveryN counters are global across the FS (every Nth call
// fails), which keeps injection deterministic under any goroutine
// interleaving: the set of injected faults depends only on call counts.
type Faults struct {
	// OpenFailEveryN makes every Nth Open return a transient
	// InjectedError instead of a handle.
	OpenFailEveryN int
	// ReadFailEveryN makes every Nth Read return a transient
	// InjectedError (no bytes consumed; the handle stays usable).
	ReadFailEveryN int
	// ShortReadMax caps each Read at a seeded 1..ShortReadMax bytes, so
	// record boundaries land mid-buffer.
	ShortReadMax int
}

// FS implements the strace.TailFS method set over dir with read-side
// fault injection. It is safe for concurrent use.
type FS struct {
	dir    string
	faults Faults

	mu    sync.Mutex
	rnd   *rand.Rand
	opens atomic.Uint64
	reads atomic.Uint64

	// InjectedOpens / InjectedReads count the faults actually fired,
	// for test assertions that the scenario exercised what it claims.
	InjectedOpens atomic.Uint64
	InjectedReads atomic.Uint64
}

// New returns a fault-injecting FS over dir. The seed drives short-read
// sizing; the EveryN counters need no randomness.
func New(dir string, seed int64, f Faults) *FS {
	return &FS{dir: dir, faults: f, rnd: rand.New(rand.NewSource(seed))}
}

// Names lists the *.st files under dir (the strace.TailFS contract).
func (f *FS) Names() ([]string, error) {
	ents, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".st") {
			continue
		}
		names = append(names, ent.Name())
	}
	return names, nil
}

// Open opens name, failing transiently every OpenFailEveryN-th call.
func (f *FS) Open(name string) (*File, error) {
	n := f.opens.Add(1)
	if k := uint64(f.faults.OpenFailEveryN); k > 0 && n%k == 0 {
		f.InjectedOpens.Add(1)
		return nil, &InjectedError{Op: "open", Name: name}
	}
	h, err := os.Open(filepath.Join(f.dir, name))
	if err != nil {
		return nil, err
	}
	return &File{fs: f, name: name, f: h}, nil
}

// FileID reports the inode currently bound to name.
func (f *FS) FileID(name string) (uint64, error) {
	fi, err := os.Stat(filepath.Join(f.dir, name))
	if err != nil {
		return 0, err
	}
	return inode(fi), nil
}

// shortLen picks the seeded size of a short read.
func (f *FS) shortLen(max int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return 1 + f.rnd.Intn(max)
}

// File is one open handle with read faults applied.
type File struct {
	fs   *FS
	name string
	f    *os.File
}

func (h *File) Read(p []byte) (int, error) {
	n := h.fs.reads.Add(1)
	if k := uint64(h.fs.faults.ReadFailEveryN); k > 0 && n%k == 0 {
		h.fs.InjectedReads.Add(1)
		return 0, &InjectedError{Op: "read", Name: h.name}
	}
	if max := h.fs.faults.ShortReadMax; max > 0 && len(p) > max {
		p = p[:h.fs.shortLen(max)]
	}
	return h.f.Read(p)
}

func (h *File) Close() error { return h.f.Close() }

// Size reports the open file's current size (fstat).
func (h *File) Size() (int64, error) {
	fi, err := h.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// ID reports the open file's inode.
func (h *File) ID() uint64 {
	fi, err := h.f.Stat()
	if err != nil {
		return 0
	}
	return inode(fi)
}

// Plan configures the write-side fault replay. Zero values disable each
// fault; a zero Plan appends the whole content in one write.
type Plan struct {
	// Chunk is the target append size in bytes (<= 0 means the whole
	// content at once). Chunk boundaries deliberately ignore line
	// structure, so partial trailing lines are the norm, not the edge
	// case.
	Chunk int
	// TruncateEveryN truncates the file back to a seeded shorter prefix
	// before every Nth chunk, then resumes appending from there — the
	// size-shrink fault. The truncation point is mid-line more often
	// than not. The rollback is bounded below Chunk so every replay
	// makes net forward progress and terminates.
	TruncateEveryN int
	// RotateEveryN removes and recreates the file before every Nth
	// chunk, rewriting from offset 0 under a fresh inode — the rotation
	// fault.
	RotateEveryN int
	// Gap pauses between chunks, letting the tailer observe
	// intermediate states. Keep it at a few milliseconds in tests; the
	// faults, not the clock, carry the scenario.
	Gap time.Duration
}

// Appender replays file contents into a directory under a fault plan.
// Each file's fault sequence is seeded by (seed, name), so concurrent
// replays of different files stay individually deterministic.
type Appender struct {
	dir  string
	seed int64
	plan Plan

	// Truncations, Rotations, Chunks count the faults performed.
	Truncations atomic.Uint64
	Rotations   atomic.Uint64
	Chunks      atomic.Uint64
}

// NewAppender returns an appender writing into dir under the plan.
func NewAppender(dir string, seed int64, plan Plan) *Appender {
	return &Appender{dir: dir, seed: seed, plan: plan}
}

// fileRand derives the per-file deterministic random stream.
func (a *Appender) fileRand(name string) *rand.Rand {
	h := fnv.New64a()
	io.WriteString(h, name)
	return rand.New(rand.NewSource(a.seed ^ int64(h.Sum64())))
}

// Replay writes content to name chunk by chunk, injecting the plan's
// truncations and rotations. When it returns nil the file's bytes equal
// content exactly — every fault has converged.
func (a *Appender) Replay(name string, content []byte) error {
	path := filepath.Join(a.dir, name)
	rnd := a.fileRand(name)
	chunk := a.plan.Chunk
	if chunk <= 0 {
		chunk = len(content)
		if chunk == 0 {
			chunk = 1
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer func() { f.Close() }()

	written := 0
	n := 0
	for written < len(content) {
		n++
		if k := a.plan.RotateEveryN; k > 0 && n%k == 0 && written > 0 {
			// Rotation: the name is rebound to a fresh file; everything
			// already written is rewritten from 0 so the replay converges.
			f.Close()
			if err := os.Remove(path); err != nil {
				return err
			}
			f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
			if err != nil {
				return err
			}
			if _, err := f.Write(content[:written]); err != nil {
				return err
			}
			a.Rotations.Add(1)
		} else if k := a.plan.TruncateEveryN; k > 0 && n%k == 0 && written > 0 {
			// Truncation: shrink to a seeded prefix, then resume. The
			// tailer sees size < offset and must restart from 0. Rolling
			// back strictly less than one chunk keeps the replay
			// terminating: each chunk written outpaces the worst rollback.
			cut := 1
			if chunk > 2 {
				cut += rnd.Intn(chunk - 2)
			}
			back := written - cut
			if back < 0 {
				back = 0
			}
			if err := f.Truncate(int64(back)); err != nil {
				return err
			}
			if _, err := f.Seek(int64(back), io.SeekStart); err != nil {
				return err
			}
			written = back
			a.Truncations.Add(1)
		}
		end := written + chunk
		if end > len(content) {
			end = len(content)
		}
		if _, err := f.Write(content[written:end]); err != nil {
			return err
		}
		written = end
		a.Chunks.Add(1)
		if a.plan.Gap > 0 {
			time.Sleep(a.plan.Gap)
		}
	}
	return f.Close()
}
