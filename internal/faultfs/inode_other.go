//go:build !unix

package faultfs

import "io/fs"

// inode matches strace's non-unix fallback: no portable identity, so
// rotation is visible only as a size shrink.
func inode(fi fs.FileInfo) uint64 { return 0 }
