// Package workloads implements the "typical HPC workloads" the paper's
// conclusion names as future work, on top of the same simulated substrate
// as the IOR reproduction (mpisim + simfs). Each workload produces an
// event-log whose DFG exposes a characteristic I/O pattern:
//
//   - Checkpoint: bulk-synchronous compute with periodic checkpoint
//     phases (shared file or file-per-process), the dominant I/O pattern
//     of long-running simulations;
//   - MetadataStorm: many small per-rank files created, written, read
//     back and removed in one shared directory — the "metadata wall"
//     of reference [22];
//   - SharedLog: all ranks appending small records to one shared log
//     file, the worst case for byte-range write tokens.
package workloads

import (
	"fmt"
	"time"

	"stinspector/internal/iorsim"
	"stinspector/internal/mpisim"
	"stinspector/internal/simfs"
	"stinspector/internal/trace"
)

// Result carries a workload's artifacts.
type Result struct {
	Log   *trace.EventLog
	FS    *simfs.FS
	World *mpisim.World
	Site  iorsim.Site
}

// run is the shared driver: it builds the world/fs pair, asks build for
// one program per rank, and collects the event-log.
func run(cid string, ranks, hosts int, seed int64, params *simfs.Params,
	build func(fs *simfs.FS, world *mpisim.World, r *mpisim.Rank) mpisim.Program) (*Result, error) {

	p := simfs.DefaultParams()
	if params != nil {
		p = *params
	}
	fs := simfs.New(p, seed)
	world := mpisim.NewWorld(mpisim.Config{Ranks: ranks, Hosts: hosts, Seed: seed + 1, BaseRID: 80000})
	programs := make([]mpisim.Program, ranks)
	for i, r := range world.Ranks {
		programs[i] = build(fs, world, r)
	}
	if err := mpisim.NewEngine(world).Run(programs); err != nil {
		return nil, err
	}
	log, err := world.EventLog(cid)
	if err != nil {
		return nil, err
	}
	return &Result{Log: log, FS: fs, World: world, Site: iorsim.DefaultSite()}, nil
}

// syscall helpers shared by the workload builders.

func opOpen(fs *simfs.FS, path string, writable bool) mpisim.Action {
	return mpisim.Syscall("openat", path, func(r *mpisim.Rank, now time.Duration) (time.Duration, int64) {
		return fs.Open(r.ID, now, path, writable), -1
	})
}

func opWrite(fs *simfs.FS, path string, off, size int64) mpisim.Action {
	return mpisim.Syscall("write", path, func(r *mpisim.Rank, now time.Duration) (time.Duration, int64) {
		return fs.Write(r.ID, now, path, off, size), size
	})
}

func opRead(fs *simfs.FS, path string, off, size int64) mpisim.Action {
	return mpisim.Syscall("read", path, func(r *mpisim.Rank, now time.Duration) (time.Duration, int64) {
		return fs.Read(r.ID, now, path, off, size), size
	})
}

func opFsync(fs *simfs.FS, path string) mpisim.Action {
	return mpisim.Syscall("fsync", path, func(r *mpisim.Rank, now time.Duration) (time.Duration, int64) {
		return fs.Fsync(path), -1
	})
}

func opClose(fs *simfs.FS, path string) mpisim.Action {
	return mpisim.Syscall("close", path, func(r *mpisim.Rank, now time.Duration) (time.Duration, int64) {
		return fs.Close(), -1
	})
}

func opUnlink(fs *simfs.FS, path string) mpisim.Action {
	return mpisim.Syscall("unlink", path, func(r *mpisim.Rank, now time.Duration) (time.Duration, int64) {
		return fs.Unlink(r.ID, now, path), -1
	})
}

// CheckpointConfig configures the checkpoint workload.
type CheckpointConfig struct {
	CID    string
	Ranks  int
	Hosts  int
	Rounds int
	// StepCompute is the simulated compute time per round.
	StepCompute time.Duration
	// CheckpointBytes is the per-rank checkpoint size, written in
	// 1 MiB transfers.
	CheckpointBytes int64
	// Shared writes one shared checkpoint file per round; otherwise
	// each rank writes its own file per round.
	Shared bool
	Seed   int64
	Params *simfs.Params
}

func (c CheckpointConfig) withDefaults() CheckpointConfig {
	if c.CID == "" {
		c.CID = "ckpt"
	}
	if c.Ranks <= 0 {
		c.Ranks = 8
	}
	if c.Hosts <= 0 {
		c.Hosts = 2
	}
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	if c.StepCompute <= 0 {
		c.StepCompute = 50 * time.Millisecond
	}
	if c.CheckpointBytes <= 0 {
		c.CheckpointBytes = 8 << 20
	}
	return c
}

// Checkpoint runs the bulk-synchronous checkpoint workload.
func Checkpoint(cfg CheckpointConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	site := iorsim.DefaultSite()
	const transfer = 1 << 20
	return run(cfg.CID, cfg.Ranks, cfg.Hosts, cfg.Seed, cfg.Params,
		func(fs *simfs.FS, world *mpisim.World, r *mpisim.Rank) mpisim.Program {
			var p mpisim.Program
			for round := 0; round < cfg.Rounds; round++ {
				p = append(p, mpisim.Compute(cfg.StepCompute))
				p = append(p, mpisim.Barrier())
				var path string
				var base int64
				if cfg.Shared {
					path = fmt.Sprintf("%s/ckpt/step%04d", site.Scratch, round)
					base = int64(r.ID) * cfg.CheckpointBytes
				} else {
					path = fmt.Sprintf("%s/ckpt/step%04d.%08d", site.Scratch, round, r.ID)
				}
				p = append(p, opOpen(fs, path, true))
				for off := int64(0); off < cfg.CheckpointBytes; off += transfer {
					p = append(p, opWrite(fs, path, base+off, transfer))
				}
				p = append(p, opFsync(fs, path), opClose(fs, path))
				p = append(p, mpisim.Barrier())
			}
			return p
		})
}

// MetadataStormConfig configures the metadata-storm workload.
type MetadataStormConfig struct {
	CID   string
	Ranks int
	Hosts int
	// FilesPerRank small files are created, written, read and removed
	// by each rank, all in one shared directory.
	FilesPerRank int
	FileBytes    int64
	Seed         int64
	Params       *simfs.Params
}

func (c MetadataStormConfig) withDefaults() MetadataStormConfig {
	if c.CID == "" {
		c.CID = "meta"
	}
	if c.Ranks <= 0 {
		c.Ranks = 8
	}
	if c.Hosts <= 0 {
		c.Hosts = 2
	}
	if c.FilesPerRank <= 0 {
		c.FilesPerRank = 16
	}
	if c.FileBytes <= 0 {
		c.FileBytes = 4096
	}
	return c
}

// MetadataStorm runs the many-small-files workload.
func MetadataStorm(cfg MetadataStormConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	site := iorsim.DefaultSite()
	return run(cfg.CID, cfg.Ranks, cfg.Hosts, cfg.Seed, cfg.Params,
		func(fs *simfs.FS, world *mpisim.World, r *mpisim.Rank) mpisim.Program {
			var p mpisim.Program
			p = append(p, mpisim.Barrier())
			for i := 0; i < cfg.FilesPerRank; i++ {
				path := fmt.Sprintf("%s/meta/f.%08d.%04d", site.Scratch, r.ID, i)
				p = append(p,
					opOpen(fs, path, true),
					opWrite(fs, path, 0, cfg.FileBytes),
					opClose(fs, path),
					opOpen(fs, path, false),
					opRead(fs, path, 0, cfg.FileBytes),
					opClose(fs, path),
					opUnlink(fs, path),
				)
			}
			p = append(p, mpisim.Barrier())
			return p
		})
}

// SharedLogConfig configures the shared-append workload.
type SharedLogConfig struct {
	CID   string
	Ranks int
	Hosts int
	// Records per rank, each RecordBytes long, appended round-robin to
	// one shared log file.
	Records     int
	RecordBytes int64
	Seed        int64
	Params      *simfs.Params
}

func (c SharedLogConfig) withDefaults() SharedLogConfig {
	if c.CID == "" {
		c.CID = "shlog"
	}
	if c.Ranks <= 0 {
		c.Ranks = 8
	}
	if c.Hosts <= 0 {
		c.Hosts = 2
	}
	if c.Records <= 0 {
		c.Records = 32
	}
	if c.RecordBytes <= 0 {
		c.RecordBytes = 64 << 10
	}
	return c
}

// SharedLog runs the shared-append workload: rank r's i-th record lands
// at offset (i*ranks + r) * recordBytes, so consecutive appends by
// different ranks always touch adjacent ranges — maximal write-token
// bouncing.
func SharedLog(cfg SharedLogConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	site := iorsim.DefaultSite()
	path := site.Scratch + "/log/app.log"
	return run(cfg.CID, cfg.Ranks, cfg.Hosts, cfg.Seed, cfg.Params,
		func(fs *simfs.FS, world *mpisim.World, r *mpisim.Rank) mpisim.Program {
			var p mpisim.Program
			p = append(p, opOpen(fs, path, true))
			p = append(p, mpisim.Barrier())
			for i := 0; i < cfg.Records; i++ {
				off := (int64(i)*int64(cfg.Ranks) + int64(r.ID)) * cfg.RecordBytes
				p = append(p, opWrite(fs, path, off, cfg.RecordBytes))
				p = append(p, mpisim.Compute(time.Millisecond))
			}
			p = append(p, mpisim.Barrier())
			return p
		})
}
