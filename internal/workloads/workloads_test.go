package workloads

import (
	"strings"
	"testing"
	"time"

	"stinspector/internal/core"
	"stinspector/internal/pm"
	"stinspector/internal/trace"
)

func countCall(log *trace.EventLog, call string) int {
	n := 0
	log.Events(func(e trace.Event) {
		if e.Call == call {
			n++
		}
	})
	return n
}

func TestCheckpointShared(t *testing.T) {
	res, err := Checkpoint(CheckpointConfig{Shared: true, Ranks: 8, Rounds: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	log := res.Log
	if err := log.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// 3 rounds × 8 ranks: one open per rank per round; 8 MiB in 1 MiB
	// transfers = 8 writes per rank per round.
	if got := countCall(log, "openat"); got != 3*8 {
		t.Errorf("opens = %d, want 24", got)
	}
	if got := countCall(log, "write"); got != 3*8*8 {
		t.Errorf("writes = %d, want 192", got)
	}
	if got := countCall(log, "fsync"); got != 24 {
		t.Errorf("fsyncs = %d", got)
	}
	// Shared checkpoints contend: shared opens and revocations happen.
	if res.FS.SharedOpens == 0 {
		t.Errorf("shared checkpoint had no contended opens")
	}
	if res.FS.Revocations == 0 {
		t.Errorf("shared checkpoint had no token revocations")
	}
	// Distinct file per round.
	paths := map[string]bool{}
	log.Events(func(e trace.Event) {
		if e.Call == "openat" {
			paths[e.FP] = true
		}
	})
	if len(paths) != 3 {
		t.Errorf("checkpoint files = %d, want 3", len(paths))
	}
}

func TestCheckpointFPPAvoidsContention(t *testing.T) {
	res, err := Checkpoint(CheckpointConfig{Shared: false, Ranks: 8, Rounds: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FS.Revocations != 0 {
		t.Errorf("per-rank checkpoints caused %d revocations", res.FS.Revocations)
	}
	if res.FS.SharedOpens != 0 {
		t.Errorf("per-rank checkpoints caused %d shared opens", res.FS.SharedOpens)
	}
	// The DFG comparison mirrors Figure 8: shared checkpoint writes
	// carry a much higher load.
	shared, err := Checkpoint(CheckpointConfig{CID: "shared", Shared: true, Ranks: 8, Rounds: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fppDur := res.Log.TotalDur()
	sharedDur := shared.Log.TotalDur()
	if sharedDur < 5*fppDur {
		t.Errorf("shared ckpt total %v not ≫ fpp %v", time.Duration(sharedDur), time.Duration(fppDur))
	}
}

func TestMetadataStorm(t *testing.T) {
	res, err := MetadataStorm(MetadataStormConfig{Ranks: 8, FilesPerRank: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	log := res.Log
	// Per rank: 10 × (create-open + read-open) and 10 unlinks.
	if got := countCall(log, "openat"); got != 8*20 {
		t.Errorf("opens = %d, want 160", got)
	}
	if got := countCall(log, "unlink"); got != 8*10 {
		t.Errorf("unlinks = %d, want 80", got)
	}
	// All files in one directory: creates + unlinks serialize there.
	if res.FS.DirCreates != 8*20 { // 10 creates + 10 unlinks per rank
		t.Errorf("dir metadata ops = %d, want 160", res.FS.DirCreates)
	}
	// No data contention: distinct files, single writer each.
	if res.FS.Revocations != 0 {
		t.Errorf("revocations = %d", res.FS.Revocations)
	}
	// The DFG shows the storm: openat and unlink dominate the load.
	in := core.FromEventLog(log).WithMapping(pm.CallTopDirs{Depth: 3})
	st := in.Stats()
	var openRd, writeRd float64
	for _, a := range st.Activities() {
		call, _ := a.Parts()
		switch call {
		case "openat":
			openRd += st.Get(a).RelDur
		case "write":
			writeRd += st.Get(a).RelDur
		}
	}
	if openRd < writeRd {
		t.Errorf("metadata storm: open load %.3f not above write load %.3f", openRd, writeRd)
	}
}

func TestSharedLog(t *testing.T) {
	res, err := SharedLog(SharedLogConfig{Ranks: 8, Records: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := countCall(res.Log, "write"); got != 8*16 {
		t.Errorf("writes = %d, want 128", got)
	}
	// Interleaved appends bounce the write token on nearly every
	// record.
	if res.FS.Revocations < 8*16/2 {
		t.Errorf("revocations = %d, want ≥ 64 (token bouncing)", res.FS.Revocations)
	}
	// Exactly one shared file.
	paths := map[string]bool{}
	res.Log.Events(func(e trace.Event) { paths[e.FP] = true })
	if len(paths) != 1 {
		t.Errorf("paths = %v", paths)
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a, err := SharedLog(SharedLogConfig{Ranks: 4, Records: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SharedLog(SharedLogConfig{Ranks: 4, Records: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ac, bc := a.Log.Cases(), b.Log.Cases()
	for i := range ac {
		for j := range ac[i].Events {
			if ac[i].Events[j] != bc[i].Events[j] {
				t.Fatalf("case %d event %d differs", i, j)
			}
		}
	}
}

func TestWorkloadDFGRendering(t *testing.T) {
	res, err := Checkpoint(CheckpointConfig{Shared: true, Ranks: 4, Rounds: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	in := core.FromEventLog(res.Log).WithMapping(pm.CallTopDirs{Depth: 4})
	txt := in.RenderText()
	if !strings.Contains(txt, "openat") || !strings.Contains(txt, "write") {
		t.Errorf("render broken:\n%s", txt)
	}
}
