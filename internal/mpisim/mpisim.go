// Package mpisim simulates the process layout and time coordination of an
// MPI job: ranks spread over hosts, per-rank virtual clocks, barriers,
// and a conservative discrete-event scheduler that interleaves the ranks'
// system-call programs in virtual-time order. It stands in for the
// srun/MPI runtime of the paper's JUWELS experiments; system-call costs
// are supplied by a filesystem model (see internal/simfs) through the
// CostFunc of each syscall action.
package mpisim

import (
	"fmt"
	"time"

	"stinspector/internal/trace"
	"stinspector/internal/vclock"
)

// Rank is one simulated MPI rank.
type Rank struct {
	// ID is the MPI rank number, 0-based.
	ID int
	// Host is the machine the rank runs on.
	Host string
	// RID is the launching-process identifier used in the trace file
	// name; PID is the identifier of the forked child executing the
	// command (the paper's example has RID ≠ PID).
	RID int
	PID int
	// Clock is the rank's virtual wall clock.
	Clock vclock.Clock
	// RNG is the rank's private deterministic random stream.
	RNG *vclock.RNG

	events []trace.Event
}

// World is a set of ranks spread over hosts.
type World struct {
	Ranks []*Rank
	rng   *vclock.RNG
}

// Config controls world construction.
type Config struct {
	// Ranks is the total number of MPI ranks (default 1).
	Ranks int
	// Hosts is the number of host machines the ranks are spread over,
	// block-distributed (default 1).
	Hosts int
	// HostPattern names hosts, applied as fmt.Sprintf(pattern, index)
	// (default "jwc%03d", mirroring JUWELS node names).
	HostPattern string
	// BaseRID numbers launching processes (default 9000); PIDs are
	// offset by PIDOffset (default 12).
	BaseRID   int
	PIDOffset int
	// StartOfDay is the virtual time-of-day at which all clocks start
	// (default 10:00:00).
	StartOfDay time.Duration
	// HostSkew offsets every clock on host index i by HostSkew*i,
	// modelling unsynchronized clocks across machines (Section IV-B:
	// this perturbs max-concurrency but must not affect the DFG).
	HostSkew time.Duration
	// Seed makes the simulation deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.Hosts <= 0 {
		c.Hosts = 1
	}
	if c.Hosts > c.Ranks {
		c.Hosts = c.Ranks
	}
	if c.HostPattern == "" {
		c.HostPattern = "jwc%03d"
	}
	if c.BaseRID == 0 {
		c.BaseRID = 9000
	}
	if c.PIDOffset == 0 {
		c.PIDOffset = 12
	}
	if c.StartOfDay == 0 {
		c.StartOfDay = 10 * time.Hour
	}
	return c
}

// NewWorld builds the rank layout. Ranks are block-distributed over
// hosts: with 96 ranks on 2 hosts, ranks 0-47 land on host 0.
func NewWorld(cfg Config) *World {
	cfg = cfg.withDefaults()
	w := &World{rng: vclock.NewRNG(cfg.Seed)}
	perHost := (cfg.Ranks + cfg.Hosts - 1) / cfg.Hosts
	for i := 0; i < cfg.Ranks; i++ {
		hostIdx := i / perHost
		r := &Rank{
			ID:    i,
			Host:  fmt.Sprintf(cfg.HostPattern, hostIdx),
			RID:   cfg.BaseRID + i,
			PID:   cfg.BaseRID + i + cfg.PIDOffset,
			Clock: vclock.At(cfg.StartOfDay + time.Duration(hostIdx)*cfg.HostSkew),
			RNG:   w.rng.Fork(int64(i + 1)),
		}
		w.Ranks = append(w.Ranks, r)
	}
	return w
}

// NumRanks returns the number of ranks.
func (w *World) NumRanks() int { return len(w.Ranks) }

// RanksPerHost returns how many ranks share the first host (the block
// size of the distribution).
func (w *World) RanksPerHost() int {
	if len(w.Ranks) == 0 {
		return 0
	}
	first := w.Ranks[0].Host
	n := 0
	for _, r := range w.Ranks {
		if r.Host == first {
			n++
		}
	}
	return n
}

// Record appends a system-call event to the rank's trace at the current
// clock and advances the clock past it. Size < 0 records a sizeless call
// (openat, lseek, ...). Timestamps and durations are truncated to
// microseconds — the resolution of strace -tt -T output — so that an
// event-log and its strace-text rendering carry identical values.
func (r *Rank) Record(call, path string, dur time.Duration, size int64) {
	r.events = append(r.events, trace.Event{
		PID:   r.PID,
		Call:  call,
		Start: r.Clock.Now().Truncate(time.Microsecond),
		Dur:   dur.Truncate(time.Microsecond),
		FP:    path,
		Size:  size,
	})
	r.Clock.Advance(dur)
	// A few microseconds of user-space time between consecutive system
	// calls, so that events of one process never overlap.
	r.Clock.Advance(r.RNG.Between(time.Microsecond, 4*time.Microsecond))
}

// EventLog collects the recorded events of all ranks into an event-log,
// one case per rank, under the given command identifier.
func (w *World) EventLog(cid string) (*trace.EventLog, error) {
	log, err := trace.NewEventLog()
	if err != nil {
		return nil, err
	}
	for _, r := range w.Ranks {
		id := trace.CaseID{CID: cid, Host: r.Host, RID: r.RID}
		if err := log.Add(trace.NewCase(id, r.events)); err != nil {
			return nil, err
		}
	}
	return log, nil
}
