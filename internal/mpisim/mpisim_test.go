package mpisim

import (
	"testing"
	"time"

	"stinspector/internal/trace"
)

func TestWorldLayout(t *testing.T) {
	w := NewWorld(Config{Ranks: 96, Hosts: 2, Seed: 1})
	if w.NumRanks() != 96 {
		t.Fatalf("ranks = %d", w.NumRanks())
	}
	if w.RanksPerHost() != 48 {
		t.Errorf("ranks per host = %d, want 48", w.RanksPerHost())
	}
	hosts := map[string]int{}
	for _, r := range w.Ranks {
		hosts[r.Host]++
	}
	if len(hosts) != 2 {
		t.Errorf("hosts = %v", hosts)
	}
	for h, n := range hosts {
		if n != 48 {
			t.Errorf("host %s has %d ranks", h, n)
		}
	}
	// Distinct identities.
	rids := map[int]bool{}
	for _, r := range w.Ranks {
		if rids[r.RID] {
			t.Errorf("duplicate rid %d", r.RID)
		}
		rids[r.RID] = true
		if r.PID == r.RID {
			t.Errorf("pid should differ from rid")
		}
	}
}

func TestWorldDefaults(t *testing.T) {
	w := NewWorld(Config{})
	if w.NumRanks() != 1 || w.RanksPerHost() != 1 {
		t.Errorf("default world = %d ranks", w.NumRanks())
	}
	if w.Ranks[0].Clock.Now() != 10*time.Hour {
		t.Errorf("default start of day = %v", w.Ranks[0].Clock.Now())
	}
}

func TestHostSkew(t *testing.T) {
	w := NewWorld(Config{Ranks: 4, Hosts: 2, HostSkew: time.Minute, Seed: 1})
	if got := w.Ranks[0].Clock.Now(); got != 10*time.Hour {
		t.Errorf("host 0 clock = %v", got)
	}
	if got := w.Ranks[3].Clock.Now(); got != 10*time.Hour+time.Minute {
		t.Errorf("host 1 clock = %v, want skewed by 1m", got)
	}
}

func constCost(d time.Duration, size int64) CostFunc {
	return func(r *Rank, now time.Duration) (time.Duration, int64) { return d, size }
}

func TestEngineRecordsEvents(t *testing.T) {
	w := NewWorld(Config{Ranks: 2, Seed: 3})
	progs := []Program{
		{Syscall("read", "/f", constCost(time.Millisecond, 100)), Barrier(), Syscall("write", "/g", constCost(time.Millisecond, 50))},
		{Syscall("read", "/f", constCost(5*time.Millisecond, 100)), Barrier(), Syscall("write", "/g", constCost(time.Millisecond, 50))},
	}
	if err := NewEngine(w).Run(progs); err != nil {
		t.Fatalf("Run: %v", err)
	}
	log, err := w.EventLog("t")
	if err != nil {
		t.Fatal(err)
	}
	if log.NumCases() != 2 || log.NumEvents() != 4 {
		t.Fatalf("log = %d cases / %d events", log.NumCases(), log.NumEvents())
	}
	if err := log.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// The barrier aligns the writes after the slower read: both writes
	// must start at or after the slow rank's read end.
	var slowReadEnd time.Duration
	log.Events(func(e trace.Event) {
		if e.Call == "read" && e.Dur == 5*time.Millisecond {
			slowReadEnd = e.End()
		}
	})
	log.Events(func(e trace.Event) {
		if e.Call == "write" && e.Start < slowReadEnd {
			t.Errorf("write at %v started before barrier release %v", e.Start, slowReadEnd)
		}
	})
}

func TestEngineVirtualTimeOrder(t *testing.T) {
	// The cost function observes arrival order: with rank 1 slower, the
	// third call arriving must be rank 0's second call.
	w := NewWorld(Config{Ranks: 2, Seed: 5})
	var arrivals []int
	cost := func(d time.Duration) CostFunc {
		return func(r *Rank, now time.Duration) (time.Duration, int64) {
			arrivals = append(arrivals, r.ID)
			return d, -1
		}
	}
	progs := []Program{
		{Syscall("a", "/f", cost(time.Millisecond)), Syscall("a", "/f", cost(time.Millisecond))},
		{Syscall("a", "/f", cost(10*time.Millisecond)), Syscall("a", "/f", cost(time.Millisecond))},
	}
	if err := NewEngine(w).Run(progs); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 1}
	for i, r := range want {
		if arrivals[i] != r {
			t.Fatalf("arrivals = %v, want %v", arrivals, want)
		}
	}
}

func TestEngineComputeActions(t *testing.T) {
	w := NewWorld(Config{Ranks: 1, Seed: 7})
	progs := []Program{{
		Compute(42 * time.Millisecond),
		Syscall("read", "/f", constCost(time.Millisecond, 1)),
	}}
	if err := NewEngine(w).Run(progs); err != nil {
		t.Fatal(err)
	}
	log, _ := w.EventLog("t")
	var start time.Duration
	log.Events(func(e trace.Event) { start = e.Start })
	if start < 10*time.Hour+42*time.Millisecond {
		t.Errorf("compute did not delay the syscall: start = %v", start)
	}
}

func TestEngineErrors(t *testing.T) {
	w := NewWorld(Config{Ranks: 2, Seed: 1})
	if err := NewEngine(w).Run([]Program{{}}); err == nil {
		t.Errorf("program count mismatch accepted")
	}
	// Mismatched barrier counts.
	progs := []Program{
		{Barrier()},
		{},
	}
	if err := NewEngine(w).Run(progs); err == nil {
		t.Errorf("mismatched barrier counts accepted")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() *trace.EventLog {
		w := NewWorld(Config{Ranks: 8, Hosts: 2, Seed: 11})
		progs := make([]Program, 8)
		for i := range progs {
			progs[i] = Program{
				Syscall("read", "/f", constCost(time.Duration(i+1)*time.Millisecond, 10)),
				Barrier(),
				Syscall("write", "/g", constCost(time.Millisecond, 10)),
			}
		}
		if err := NewEngine(w).Run(progs); err != nil {
			t.Fatal(err)
		}
		log, _ := w.EventLog("d")
		return log
	}
	a, b := run(), run()
	if a.NumEvents() != b.NumEvents() {
		t.Fatalf("event counts differ")
	}
	ac, bc := a.Cases(), b.Cases()
	for i := range ac {
		for j := range ac[i].Events {
			if ac[i].Events[j] != bc[i].Events[j] {
				t.Fatalf("event %d/%d differs between runs", i, j)
			}
		}
	}
}
