package mpisim

import (
	"container/heap"
	"fmt"
	"time"
)

// CostFunc computes the duration and transfer size of one system call,
// given the invoking rank and the virtual time at which the call starts.
// It is where the filesystem model plugs in; it may mutate shared model
// state (token queues, busy windows), which is safe because the engine
// executes exactly one action at a time, in global virtual-time order.
type CostFunc func(r *Rank, now time.Duration) (dur time.Duration, size int64)

// Action is one step of a rank's program.
type Action struct {
	// Call and Path describe the system call; empty Call marks a
	// barrier.
	Call string
	Path string
	// Cost computes duration and size for syscall actions.
	Cost CostFunc
	// Compute inserts pure user-space time (no event recorded) when
	// Call is empty and Compute > 0; with Call empty and Compute zero
	// the action is a barrier.
	Compute time.Duration
}

// Syscall builds a syscall action.
func Syscall(call, path string, cost CostFunc) Action {
	return Action{Call: call, Path: path, Cost: cost}
}

// Barrier builds a barrier action: the rank blocks until every rank of
// the world reaches the same barrier index.
func Barrier() Action { return Action{} }

// Compute builds a pure computation delay.
func Compute(d time.Duration) Action { return Action{Compute: d} }

// Program is a rank's static sequence of actions.
type Program []Action

// Engine interleaves the ranks' programs in virtual-time order: at each
// step the rank with the earliest clock executes its next action. This
// conservative discrete-event order makes shared-resource arbitration in
// the cost functions (token queues, metadata serialization) arrival-order
// correct and fully deterministic.
type Engine struct {
	world *World
}

// NewEngine builds an engine over a world.
func NewEngine(w *World) *Engine { return &Engine{world: w} }

// Run executes one program per rank. Programs may have different
// lengths, but every program must contain the same number of barrier
// actions; otherwise a rank would block forever and Run errors out.
func (e *Engine) Run(programs []Program) error {
	if len(programs) != len(e.world.Ranks) {
		return fmt.Errorf("mpisim: %d programs for %d ranks", len(programs), len(e.world.Ranks))
	}
	barriers := -1
	for i, p := range programs {
		n := 0
		for _, a := range p {
			if a.Call == "" && a.Compute == 0 {
				n++
			}
		}
		if barriers == -1 {
			barriers = n
		} else if n != barriers {
			return fmt.Errorf("mpisim: rank %d has %d barriers, rank 0 has %d", i, n, barriers)
		}
	}

	type state struct {
		rank *Rank
		prog Program
		pc   int
	}
	states := make([]*state, len(programs))
	ready := &rankQueue{}
	for i, r := range e.world.Ranks {
		states[i] = &state{rank: r, prog: programs[i]}
		heap.Push(ready, queued{at: r.Clock.Now(), idx: i})
	}

	waiting := make([]*state, 0, len(states))

	for ready.Len() > 0 {
		q := heap.Pop(ready).(queued)
		st := states[q.idx]
		if st.pc >= len(st.prog) {
			continue
		}
		a := st.prog[st.pc]
		st.pc++
		switch {
		case a.Call != "":
			dur, size := time.Duration(0), int64(-1)
			if a.Cost != nil {
				dur, size = a.Cost(st.rank, st.rank.Clock.Now())
			}
			st.rank.Record(a.Call, a.Path, dur, size)
			heap.Push(ready, queued{at: st.rank.Clock.Now(), idx: q.idx})
		case a.Compute > 0:
			st.rank.Clock.Advance(a.Compute)
			heap.Push(ready, queued{at: st.rank.Clock.Now(), idx: q.idx})
		default:
			// Barrier: park the rank; release everyone when the
			// last one arrives.
			waiting = append(waiting, st)
			if len(waiting) == len(states) {
				var max time.Duration
				for _, ws := range waiting {
					if ws.rank.Clock.Now() > max {
						max = ws.rank.Clock.Now()
					}
				}
				for _, ws := range waiting {
					// Barrier release is not perfectly
					// simultaneous in practice; a little
					// per-rank exit skew keeps later
					// timing realistic.
					ws.rank.Clock.AdvanceTo(max)
					ws.rank.Clock.Advance(ws.rank.RNG.Between(0, 3*time.Microsecond))
					heap.Push(ready, queued{at: ws.rank.Clock.Now(), idx: ws.rank.ID})
				}
				waiting = waiting[:0]
			}
		}
	}
	if len(waiting) > 0 {
		return fmt.Errorf("mpisim: %d ranks stuck at a barrier", len(waiting))
	}
	for _, st := range states {
		if st.pc < len(st.prog) {
			return fmt.Errorf("mpisim: rank %d finished only %d of %d actions", st.rank.ID, st.pc, len(st.prog))
		}
	}
	return nil
}

// queued orders ranks by virtual time; ties break by rank id for
// determinism.
type queued struct {
	at  time.Duration
	idx int
}

type rankQueue []queued

func (q rankQueue) Len() int { return len(q) }
func (q rankQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].idx < q[j].idx
}
func (q rankQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *rankQueue) Push(x any)   { *q = append(*q, x.(queued)) }
func (q *rankQueue) Pop() any     { old := *q; n := len(old); v := old[n-1]; *q = old[:n-1]; return v }
