package stats

import (
	"bytes"
	"errors"
	"testing"

	"stinspector/internal/pm"
	"stinspector/internal/snapshot/wire"
	"stinspector/internal/synth"
)

// Encode∘decode preserves the computer's pre-Finalize state exactly:
// the decoded computer re-encodes to identical bytes and finalizes to
// bit-identical statistics, floats included (they derive from the
// 128-bit integer accumulators the snapshot carries verbatim).
func TestComputerSnapshotRoundTrip(t *testing.T) {
	el := synth.Log("snap", 24, 40, 20240924)
	m := pm.CallTopDirs{Depth: 2}
	c := NewComputer(m)
	for _, cs := range el.Cases() {
		c.Add(cs)
	}
	enc := c.EncodeSnapshot()
	got, err := DecodeComputerSnapshot(enc, m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Symbols() != c.Symbols() {
		t.Errorf("Symbols = %d, want %d", got.Symbols(), c.Symbols())
	}
	if re := got.EncodeSnapshot(); !bytes.Equal(re, enc) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(re), len(enc))
	}
	if gs, ws := serialize(got.Finalize()), serialize(c.Finalize()); gs != ws {
		t.Errorf("finalized stats differ:\n--- decoded ---\n%s--- original ---\n%s", gs, ws)
	}
}

// A decoded computer stays mergeable: decoding two disjoint partials
// and merging reproduces the sequential fold bit-for-bit.
func TestComputerSnapshotMergesAfterDecode(t *testing.T) {
	el := synth.Log("snapm", 20, 30, 11)
	m := pm.CallTopDirs{Depth: 2}
	seq := NewComputer(m)
	for _, cs := range el.Cases() {
		seq.Add(cs)
	}
	want := serialize(seq.Finalize())

	mk := func(lo, hi int) []byte {
		c := NewComputer(m)
		for _, cs := range el.Cases()[lo:hi] {
			c.Add(cs)
		}
		return c.EncodeSnapshot()
	}
	a, err := DecodeComputerSnapshot(mk(0, 11), m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeComputerSnapshot(mk(11, 20), m)
	if err != nil {
		t.Fatal(err)
	}
	a.Merge(b)
	if got := serialize(a.Finalize()); got != want {
		t.Errorf("merged decoded partials differ from sequential fold:\n--- merged ---\n%s--- sequential ---\n%s", got, want)
	}
}

func TestComputerSnapshotEmpty(t *testing.T) {
	m := pm.CallTopDirs{Depth: 2}
	got, err := DecodeComputerSnapshot(NewComputer(m).EncodeSnapshot(), m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Symbols() != 0 || got.totalDur != 0 {
		t.Errorf("decoded empty computer has state: %d symbols", got.Symbols())
	}
}

// Hostile input fails with CorruptError — truncations, out-of-range
// symbols, explicit empty accumulators — never a panic.
func TestComputerSnapshotCorrupt(t *testing.T) {
	el := synth.Log("snap", 6, 20, 3)
	m := pm.CallTopDirs{Depth: 2}
	c := NewComputer(m)
	for _, cs := range el.Cases() {
		c.Add(cs)
	}
	enc := c.EncodeSnapshot()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeComputerSnapshot(enc[:cut], m); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
	var ce *wire.CorruptError
	// An accumulator claiming events == 0 breaks the absence invariant.
	var b wire.Buf
	b.Uvarint(1)
	b.Str("act")
	b.Uvarint(0)  // no case strings
	b.Varint(0)   // totalDur
	b.Uvarint(1)  // one accumulator
	b.Uvarint(0)  // sym
	b.Uvarint(0)  // events == 0
	b.Varint(0)   // totalDur
	b.Varint(0)   // bytes
	b.Bool(false) // hasBytes
	b.U64(0)      // rate.hi
	b.U64(0)      // rate.lo
	b.Uvarint(0)  // rateCount
	b.Uvarint(0)  // no intervals
	if _, err := DecodeComputerSnapshot(b.Bytes(), m); !errors.As(err, &ce) {
		t.Fatalf("empty accumulator: err = %v, want CorruptError", err)
	}
}
