// Package stats computes the per-activity statistics of Section IV-B of
// the paper: relative duration (Equations 6–8), total bytes moved
// (Equation 9), process data rate (Equations 11–13) and max-concurrency
// (Equations 14–16), plus the timeline data behind Figure 5.
package stats

import (
	"container/heap"
	"sort"
	"time"

	"stinspector/internal/pm"
	"stinspector/internal/trace"
)

// ActivityStats aggregates the paper's four statistics for one activity.
type ActivityStats struct {
	// Activity is the activity these statistics describe.
	Activity pm.Activity
	// Events is |f⁻¹(a) ∩ C|: the number of events mapping to the
	// activity.
	Events int
	// TotalDur is d̄_f(a, C) of Equation (7): the summed duration of
	// the activity's events.
	TotalDur time.Duration
	// RelDur is rd_f(a, C) of Equation (8): TotalDur normalized by the
	// total duration over all activities.
	RelDur float64
	// Bytes is b_f(a, C) of Equation (9): total bytes moved. HasBytes
	// is false when no event of the activity carries a transfer size
	// (openat, lseek, ...), in which case the paper's figures omit the
	// byte and rate annotations.
	Bytes    int64
	HasBytes bool
	// ProcRate is d̄r_f(a, C) of Equation (13): the arithmetic mean
	// over events of size/duration, in bytes per second.
	ProcRate float64
	// MaxConc is mc_f(a, C) of Equation (16): the maximum number of
	// concurrent events of the activity.
	MaxConc int
}

// Load renders the paper's node annotation "Load: rd (bytes)" semantics:
// it returns RelDur and, when available, the byte count.
func (s *ActivityStats) Load() (rd float64, bytes int64, hasBytes bool) {
	return s.RelDur, s.Bytes, s.HasBytes
}

// Stats maps every activity of an activity-log to its statistics.
type Stats struct {
	byActivity map[pm.Activity]*ActivityStats
	// TotalDur is the denominator of Equation (8): the summed duration
	// across all activities.
	TotalDur time.Duration
}

// Get returns the statistics of an activity, or nil.
func (s *Stats) Get(a pm.Activity) *ActivityStats { return s.byActivity[a] }

// Activities returns the activities with statistics, sorted.
func (s *Stats) Activities() []pm.Activity {
	out := make([]pm.Activity, 0, len(s.byActivity))
	for a := range s.byActivity {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxRelDur returns the largest relative duration, used by the
// statistics-based coloring to scale its shades.
func (s *Stats) MaxRelDur() float64 {
	m := 0.0
	for _, st := range s.byActivity {
		if st.RelDur > m {
			m = st.RelDur
		}
	}
	return m
}

// Compute derives the statistics of every activity of the event-log under
// the mapping. The computation is a single pass over the events followed
// by a per-activity aggregation, O(n + Σ_a k_a log k_a) where the log
// factor comes from the max-concurrency interval sort. It is the
// materializing form of Computer: cases are folded in CaseID order.
func Compute(el *trace.EventLog, m pm.Mapping) *Stats {
	c := NewComputer(m)
	for _, cs := range el.Cases() {
		c.Add(cs)
	}
	return c.Finalize()
}

// accum carries the per-activity running state that only resolves at
// Finalize: the mean data rate (Equation 13 needs the event count) and
// the interval set behind the max-concurrency sweep (Equation 16 needs
// every interval; this is the one statistic whose working set grows
// with the activity's events rather than the batch).
type accum struct {
	rateSum   float64
	rateCount int
	intervals []trace.Interval
}

// Computer accumulates the Section IV-B statistics one case at a time —
// the incremental form of Compute that the streaming pipeline feeds.
// Feeding cases in CaseID order reproduces Compute bit for bit,
// including the floating-point data-rate sums, which fold in the same
// order.
type Computer struct {
	m   pm.Mapping
	s   *Stats
	acc map[pm.Activity]*accum
}

// NewComputer returns an empty computer for the mapping.
func NewComputer(m pm.Mapping) *Computer {
	return &Computer{
		m:   m,
		s:   &Stats{byActivity: make(map[pm.Activity]*ActivityStats)},
		acc: make(map[pm.Activity]*accum),
	}
}

// Add folds one case's events into the running statistics.
func (c *Computer) Add(cs *trace.Case) {
	for _, e := range cs.Events {
		a, ok := c.m.Map(e)
		if !ok {
			continue
		}
		st := c.s.byActivity[a]
		if st == nil {
			st = &ActivityStats{Activity: a}
			c.s.byActivity[a] = st
			c.acc[a] = &accum{}
		}
		ac := c.acc[a]
		st.Events++
		st.TotalDur += e.Dur
		c.s.TotalDur += e.Dur
		if e.HasSize() {
			st.Bytes += e.Size
			st.HasBytes = true
			if e.Dur > 0 {
				// dr(e) = e[size] / e[dur], Equation (11).
				ac.rateSum += float64(e.Size) / e.Dur.Seconds()
				ac.rateCount++
			}
		}
		ac.intervals = append(ac.intervals, e.Interval())
	}
}

// Finalize runs the per-activity aggregation (mean rate, max-concurrency
// sweep, relative-duration normalization) and returns the statistics.
// The computer must not be used afterwards.
func (c *Computer) Finalize() *Stats {
	for a, st := range c.s.byActivity {
		ac := c.acc[a]
		if ac.rateCount > 0 {
			st.ProcRate = ac.rateSum / float64(ac.rateCount)
		}
		st.MaxConc = MaxConcurrency(ac.intervals)
		if c.s.TotalDur > 0 {
			st.RelDur = float64(st.TotalDur) / float64(c.s.TotalDur)
		}
	}
	return c.s
}

// MaxConcurrency implements get_max_concurrency of Equation (16): sort
// the intervals by start timestamp, sweep with a min-heap of end times,
// and report the peak number of simultaneously open intervals. An
// interval must strictly overlap (end > start) to count as concurrent,
// matching the paper's "end time of the first event is greater than the
// start time of the last event". O(k log k).
func MaxConcurrency(intervals []trace.Interval) int {
	if len(intervals) == 0 {
		return 0
	}
	ivs := append([]trace.Interval(nil), intervals...)
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	var ends endHeap
	maxOpen := 0
	for _, iv := range ivs {
		for ends.Len() > 0 && ends[0] <= iv.Start {
			heap.Pop(&ends)
		}
		heap.Push(&ends, iv.End)
		if ends.Len() > maxOpen {
			maxOpen = ends.Len()
		}
	}
	return maxOpen
}

type endHeap []time.Duration

func (h endHeap) Len() int           { return len(h) }
func (h endHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h endHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *endHeap) Push(x any)        { *h = append(*h, x.(time.Duration)) }
func (h *endHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// Timeline returns t_f(a, C) of Equation (15): the intervals of every
// event of the activity, ordered by start time, with their case
// identities. This is the data behind the timeline plot of Figure 5.
func Timeline(el *trace.EventLog, m pm.Mapping, a pm.Activity) []trace.Interval {
	var out []trace.Interval
	el.Events(func(e trace.Event) {
		if got, ok := m.Map(e); ok && got == a {
			out = append(out, e.Interval())
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Case.Less(out[j].Case)
	})
	return out
}
