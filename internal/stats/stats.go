// Package stats computes the per-activity statistics of Section IV-B of
// the paper: relative duration (Equations 6–8), total bytes moved
// (Equation 9), process data rate (Equations 11–13) and max-concurrency
// (Equations 14–16), plus the timeline data behind Figure 5.
package stats

import (
	"math/bits"
	"sort"
	"time"

	"stinspector/internal/intern"
	"stinspector/internal/pm"
	"stinspector/internal/trace"
)

// ActivityStats aggregates the paper's four statistics for one activity.
type ActivityStats struct {
	// Activity is the activity these statistics describe.
	Activity pm.Activity
	// Events is |f⁻¹(a) ∩ C|: the number of events mapping to the
	// activity.
	Events int
	// TotalDur is d̄_f(a, C) of Equation (7): the summed duration of
	// the activity's events.
	TotalDur time.Duration
	// RelDur is rd_f(a, C) of Equation (8): TotalDur normalized by the
	// total duration over all activities.
	RelDur float64
	// Bytes is b_f(a, C) of Equation (9): total bytes moved. HasBytes
	// is false when no event of the activity carries a transfer size
	// (openat, lseek, ...), in which case the paper's figures omit the
	// byte and rate annotations.
	Bytes    int64
	HasBytes bool
	// ProcRate is d̄r_f(a, C) of Equation (13): the arithmetic mean
	// over events of size/duration, in bytes per second. Per-event
	// rates are accumulated as exact integers (⌊size·10⁹/dur_ns⌋, a
	// 128-bit sum) with the division deferred to Finalize, so the
	// value never depends on fold order or shard count.
	ProcRate float64
	// MaxConc is mc_f(a, C) of Equation (16): the maximum number of
	// concurrent events of the activity.
	MaxConc int
}

// Load renders the paper's node annotation "Load: rd (bytes)" semantics:
// it returns RelDur and, when available, the byte count.
func (s *ActivityStats) Load() (rd float64, bytes int64, hasBytes bool) {
	return s.RelDur, s.Bytes, s.HasBytes
}

// Stats maps every activity of an activity-log to its statistics.
type Stats struct {
	byActivity map[pm.Activity]*ActivityStats
	// TotalDur is the denominator of Equation (8): the summed duration
	// across all activities.
	TotalDur time.Duration
}

// Get returns the statistics of an activity, or nil.
func (s *Stats) Get(a pm.Activity) *ActivityStats { return s.byActivity[a] }

// Activities returns the activities with statistics, sorted.
func (s *Stats) Activities() []pm.Activity {
	out := make([]pm.Activity, 0, len(s.byActivity))
	for a := range s.byActivity {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxRelDur returns the largest relative duration, used by the
// statistics-based coloring to scale its shades.
func (s *Stats) MaxRelDur() float64 {
	m := 0.0
	for _, st := range s.byActivity {
		if st.RelDur > m {
			m = st.RelDur
		}
	}
	return m
}

// Compute derives the statistics of every activity of the event-log under
// the mapping. The computation is a single pass over the events followed
// by a per-activity aggregation, O(n + Σ_a k_a log k_a) where the log
// factor comes from the max-concurrency interval sort. It is the
// materializing form of Computer: cases are folded in CaseID order.
func Compute(el *trace.EventLog, m pm.Mapping) *Stats {
	c := NewComputer(m)
	for _, cs := range el.Cases() {
		c.Add(cs)
	}
	return c.Finalize()
}

// rateSum is an exact 128-bit accumulator for per-event data rates in
// bytes per second. Integer addition is associative and commutative, so
// partial sums merge without the last-bit drift a floating-point fold
// would pick up from re-association — the property that keeps shard
// count unobservable in the artifacts.
type rateSum struct{ hi, lo uint64 }

// add folds another sum (or one event's 128-bit rate quotient) in.
func (s *rateSum) add(o rateSum) {
	var carry uint64
	s.lo, carry = bits.Add64(s.lo, o.lo, 0)
	s.hi = s.hi + o.hi + carry
}

// float64 converts the exact sum for the Finalize division. The double
// rounding is deterministic: it is a pure function of (hi, lo).
func (s rateSum) float64() float64 {
	return float64(s.hi)*0x1p64 + float64(s.lo)
}

// eventRate returns ⌊size·10⁹/dur_ns⌋ — the event's data rate of
// Equation (11) in integer bytes per second — as a 128-bit value, so
// even a multi-GB transfer over a 1ns duration cannot overflow.
func eventRate(size int64, dur time.Duration) rateSum {
	hi, lo := bits.Mul64(uint64(size), 1e9)
	d := uint64(dur)
	qhi := hi / d
	qlo, _ := bits.Div64(hi%d, lo, d)
	return rateSum{hi: qhi, lo: qlo}
}

// accum carries one activity's running state: the integral aggregates
// (counts, durations, byte totals, the 128-bit rate sum of Equation 13)
// and the interval set behind the max-concurrency sweep (Equation 16
// needs every interval; this is the one statistic whose working set
// grows with the activity's events rather than the batch).
type accum struct {
	events    int
	totalDur  time.Duration
	bytes     int64
	hasBytes  bool
	rate      rateSum
	rateCount int64
	intervals []trace.Interval
}

// merge folds another partial accumulation in. Every operation is
// exact: integer sums, a boolean or, and an interval concatenation
// whose order is irrelevant (Finalize's sweep sorts totally).
func (a *accum) merge(o *accum) {
	a.events += o.events
	a.totalDur += o.totalDur
	a.bytes += o.bytes
	a.hasBytes = a.hasBytes || o.hasBytes
	a.rate.add(o.rate)
	a.rateCount += o.rateCount
	a.intervals = append(a.intervals, o.intervals...)
}

// Computer accumulates the Section IV-B statistics one case at a time —
// the incremental form of Compute that the streaming pipeline feeds.
// All running state is integral (counts, durations, byte totals, the
// 128-bit rate sum), so any partition of the cases over partial
// computers followed by Merge reproduces the sequential fold exactly;
// the only divisions happen in Finalize.
//
// The computer groups in symbol space: events map to dense activity
// symbols through a pm.SymMapper (its own, or the shard's shared one
// via NewComputerSym), and the per-activity state lives in a slice
// indexed by symbol — no string-keyed map operation per event.
type Computer struct {
	sm       *pm.SymMapper
	totalDur time.Duration
	accs     []accum      // indexed by activity symbol; events==0 ⇒ absent
	symsbuf  []intern.Sym // Add scratch
}

// NewComputer returns an empty computer for the mapping.
func NewComputer(m pm.Mapping) *Computer {
	return NewComputerSym(pm.NewSymMapper(m))
}

// NewComputerSym returns an empty computer over a caller-supplied
// SymMapper, sharing the shard's activity symbol table so a case
// mapped once can feed the activity-log, DFG and statistics builders.
func NewComputerSym(sm *pm.SymMapper) *Computer {
	return &Computer{sm: sm}
}

// Add folds one case's events into the running statistics.
func (c *Computer) Add(cs *trace.Case) {
	c.symsbuf = c.sm.MapCase(cs, c.symsbuf[:0])
	c.AddMapped(cs, c.symsbuf)
}

// AddMapped folds one case given its pre-mapped activity symbols (one
// entry per event, pm.NoActivity for events outside the domain), as
// produced by the shared SymMapper's MapCase.
func (c *Computer) AddMapped(cs *trace.Case, syms []intern.Sym) {
	for i := range cs.Events {
		y := syms[i]
		if y == pm.NoActivity {
			continue
		}
		for int(y) >= len(c.accs) {
			c.accs = append(c.accs, accum{})
		}
		e := &cs.Events[i]
		ac := &c.accs[y]
		ac.events++
		ac.totalDur += e.Dur
		c.totalDur += e.Dur
		if e.HasSize() {
			ac.bytes += e.Size
			ac.hasBytes = true
			if e.Dur > 0 {
				// dr(e) = e[size] / e[dur], Equation (11), kept as an
				// exact integer so partials merge bit-for-bit.
				ac.rate.add(eventRate(e.Size, e.Dur))
				ac.rateCount++
			}
		}
		ac.intervals = append(ac.intervals, e.Interval())
	}
}

// Merge folds another computer's partial state into c, exactly: counts,
// durations and byte totals are integer sums, the data-rate numerators
// are 128-bit integer sums, and the interval sets concatenate (their
// order is irrelevant — Finalize's sweep sorts them totally). o's
// shard-local activity symbols are remapped through c's table, so
// merging shard partials in any order reproduces the sequential fold
// bit-for-bit. Both computers must have been built for the same
// mapping; o must not be used afterwards. A nil o is a no-op, matching
// pm.MergeLogs and dfg.Merge.
func (c *Computer) Merge(o *Computer) {
	if o == nil {
		return
	}
	c.totalDur += o.totalDur
	r := o.sm.Acts().RemapInto(c.sm.Acts())
	for y := range o.accs {
		oac := &o.accs[y]
		if oac.events == 0 {
			continue
		}
		m := r[y]
		for int(m) >= len(c.accs) {
			c.accs = append(c.accs, accum{})
		}
		c.accs[m].merge(oac)
	}
}

// Merge merges partial computers (shard partials of one logical
// computation) and finalizes the result. With a single partial it is
// equivalent to Finalize; nil partials are skipped; with none it
// returns empty statistics.
func Merge(parts ...*Computer) *Stats {
	var c *Computer
	for _, o := range parts {
		if o == nil {
			continue
		}
		if c == nil {
			c = o
			continue
		}
		c.Merge(o)
	}
	if c == nil {
		return &Stats{byActivity: make(map[pm.Activity]*ActivityStats)}
	}
	return c.Finalize()
}

// Finalize runs the per-activity aggregation (mean rate, max-concurrency
// sweep, relative-duration normalization), materializes the
// string-keyed statistics and returns them. The computer must not be
// used afterwards.
func (c *Computer) Finalize() *Stats {
	s := &Stats{
		byActivity: make(map[pm.Activity]*ActivityStats, len(c.accs)),
		TotalDur:   c.totalDur,
	}
	acts := c.sm.Acts()
	for y := range c.accs {
		ac := &c.accs[y]
		if ac.events == 0 {
			continue
		}
		st := &ActivityStats{
			Activity: pm.Activity(acts.Str(intern.Sym(y))),
			Events:   ac.events,
			TotalDur: ac.totalDur,
			Bytes:    ac.bytes,
			HasBytes: ac.hasBytes,
		}
		if ac.rateCount > 0 {
			st.ProcRate = ac.rate.float64() / float64(ac.rateCount)
		}
		st.MaxConc = MaxConcurrency(ac.intervals)
		if c.totalDur > 0 {
			st.RelDur = float64(st.TotalDur) / float64(c.totalDur)
		}
		s.byActivity[st.Activity] = st
	}
	return s
}

// MaxConcurrency implements get_max_concurrency of Equation (16): sort
// the intervals by start timestamp, sweep with a min-heap of end times,
// and report the peak number of simultaneously open intervals. An
// interval must strictly overlap (end > start) to count as concurrent,
// matching the paper's "end time of the first event is greater than the
// start time of the last event". O(k log k).
//
// The sort uses the total interval order (start, then end, then case),
// so the result is a pure function of the interval multiset: equal-start
// ties — where a zero-duration interval processed after a longer
// same-start one would otherwise inflate the count — always resolve the
// same way, whatever order the intervals were collected in. This is
// what lets sharded statistics concatenate interval sets in shard order
// and still reproduce the sequential sweep exactly.
func MaxConcurrency(intervals []trace.Interval) int {
	if len(intervals) == 0 {
		return 0
	}
	ivs := append([]trace.Interval(nil), intervals...)
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Less(ivs[j]) })
	ends := make(endHeap, 0, 16)
	maxOpen := 0
	for _, iv := range ivs {
		for len(ends) > 0 && ends[0] <= iv.Start {
			ends.pop()
		}
		ends.push(iv.End)
		if len(ends) > maxOpen {
			maxOpen = len(ends)
		}
	}
	return maxOpen
}

// endHeap is a hand-rolled min-heap of end timestamps. container/heap
// would box every Push/Pop value into an interface — two allocations
// per event in the Finalize sweep, the last per-event allocations of
// the whole analysis fold.
type endHeap []time.Duration

func (h *endHeap) push(v time.Duration) {
	*h = append(*h, v)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *endHeap) pop() {
	s := *h
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s[l] < s[small] {
			small = l
		}
		if r < n && s[r] < s[small] {
			small = r
		}
		if small == i {
			return
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
}

// Timeline returns t_f(a, C) of Equation (15): the intervals of every
// event of the activity, ordered by start time, with their case
// identities. This is the data behind the timeline plot of Figure 5.
func Timeline(el *trace.EventLog, m pm.Mapping, a pm.Activity) []trace.Interval {
	var out []trace.Interval
	el.Events(func(e trace.Event) {
		if got, ok := m.Map(e); ok && got == a {
			out = append(out, e.Interval())
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Case.Less(out[j].Case)
	})
	return out
}
