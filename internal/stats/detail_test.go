package stats

import (
	"testing"
	"time"

	"stinspector/internal/trace"
)

func distLog(t *testing.T) *trace.EventLog {
	t.Helper()
	// 19 fast reads of 1ms and one slow read of 100ms: a contention
	// spike signature.
	var evs []trace.Event
	for i := 0; i < 19; i++ {
		evs = append(evs, trace.Event{
			Call: "read", FP: "/f",
			Start: time.Duration(i) * 10 * time.Millisecond,
			Dur:   time.Millisecond, Size: 100,
		})
	}
	evs = append(evs, trace.Event{
		Call: "read", FP: "/f",
		Start: 200 * time.Millisecond, Dur: 100 * time.Millisecond, Size: 100,
	})
	return trace.MustNewEventLog(trace.NewCase(trace.CaseID{CID: "d", Host: "h", RID: 1}, evs))
}

func TestComputeDistribution(t *testing.T) {
	el := distLog(t)
	d, ok := ComputeDistribution(el, callMapping(), "read")
	if !ok {
		t.Fatalf("no distribution")
	}
	if d.Events != 20 {
		t.Errorf("events = %d", d.Events)
	}
	if d.Min != time.Millisecond || d.Max != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", d.Min, d.Max)
	}
	if d.P50 != time.Millisecond {
		t.Errorf("p50 = %v", d.P50)
	}
	if d.Total != 119*time.Millisecond {
		t.Errorf("total = %v", d.Total)
	}
	// The single slow event carries 100/119 ≈ 0.84 of the time.
	if d.TailShare < 0.8 || d.TailShare > 0.9 {
		t.Errorf("tail share = %v", d.TailShare)
	}
	if _, ok := ComputeDistribution(el, callMapping(), "absent"); ok {
		t.Errorf("absent activity produced a distribution")
	}
}

func TestHistogram(t *testing.T) {
	el := distLog(t)
	counts, width := Histogram(el, callMapping(), "read", 10)
	if len(counts) != 10 || width == 0 {
		t.Fatalf("counts=%v width=%v", counts, width)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 20 {
		t.Errorf("histogram lost events: %d", total)
	}
	if counts[0] != 19 || counts[9] != 1 {
		t.Errorf("bimodal shape lost: %v", counts)
	}
	// Degenerate: all equal durations land in bucket 0.
	same := trace.MustNewEventLog(trace.NewCase(trace.CaseID{CID: "s", Host: "h", RID: 1}, []trace.Event{
		{Call: "read", Start: 0, Dur: time.Millisecond, Size: 1},
		{Call: "read", Start: time.Second, Dur: time.Millisecond, Size: 1},
	}))
	counts, width = Histogram(same, callMapping(), "read", 4)
	if width != 0 || counts[0] != 2 {
		t.Errorf("degenerate histogram: %v %v", counts, width)
	}
	if counts, _ := Histogram(el, callMapping(), "absent", 4); counts != nil {
		t.Errorf("absent activity histogram = %v", counts)
	}
}

func TestPerCase(t *testing.T) {
	el := mkLog(t, map[int][]trace.Event{
		1: {
			{Call: "read", FP: "/f", Start: 0, Dur: 10 * time.Millisecond, Size: 100},
			{Call: "write", FP: "/g", Start: time.Second, Dur: time.Millisecond, Size: 50},
		},
		2: {
			{Call: "read", FP: "/f", Start: 0, Dur: 50 * time.Millisecond, Size: 100},
		},
	})
	// Per-activity view.
	per := PerCase(el, callMapping(), "read")
	if len(per) != 2 {
		t.Fatalf("per = %v", per)
	}
	// Sorted by descending duration: rid 2 (the straggler) first.
	if per[0].Case.RID != 2 || per[0].TotalDur != 50*time.Millisecond {
		t.Errorf("straggler = %+v", per[0])
	}
	if per[1].Events != 1 || per[1].Bytes != 100 {
		t.Errorf("per[1] = %+v", per[1])
	}
	// Whole-log view.
	all := PerCase(el, callMapping(), "")
	if len(all) != 2 || all[1].Case.RID != 1 || all[1].Events != 2 {
		t.Errorf("all = %+v", all)
	}
}
