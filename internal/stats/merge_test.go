package stats

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"stinspector/internal/pm"
	"stinspector/internal/synth"
	"stinspector/internal/trace"
)

// serialize renders every statistic of every activity with floats at
// full precision, so a single-bit divergence between two Stats fails a
// string comparison.
func serialize(s *Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "totaldur=%d\n", int64(s.TotalDur))
	for _, a := range s.Activities() {
		st := s.Get(a)
		fmt.Fprintf(&b, "%s events=%d totaldur=%d reldur=%s bytes=%d/%v procrate=%s maxconc=%d\n",
			a, st.Events, int64(st.TotalDur),
			strconv.FormatFloat(st.RelDur, 'g', -1, 64),
			st.Bytes, st.HasBytes,
			strconv.FormatFloat(st.ProcRate, 'g', -1, 64),
			st.MaxConc)
	}
	return b.String()
}

// TestMergeMatchesSequential256 is the stats merge law at scale: over
// the 256-rank synth set, folding the cases round-robin into k partial
// computers and merging must be byte-identical to the sequential
// computer — including the two floating-point outputs (RelDur,
// ProcRate), which derive from exact integer accumulators — for every
// shard count 1..8. This is the property that makes shard count
// unobservable in the artifacts.
func TestMergeMatchesSequential256(t *testing.T) {
	el := synth.Log("merge", 256, 60, 20240924)
	m := pm.CallTopDirs{Depth: 2}
	seq := NewComputer(m)
	for _, c := range el.Cases() {
		seq.Add(c)
	}
	want := serialize(seq.Finalize())

	for shards := 1; shards <= 8; shards++ {
		parts := make([]*Computer, shards)
		for i := range parts {
			parts[i] = NewComputer(m)
		}
		// Round-robin case blocks, like the sharded fold engine.
		for i, c := range el.Cases() {
			parts[(i/4)%shards].Add(c)
		}
		if got := serialize(Merge(parts...)); got != want {
			t.Errorf("shards=%d: merged stats differ from sequential computer.\n--- merged ---\n%s--- sequential ---\n%s", shards, got, want)
		}
	}
}

// TestMergeEmptyAndDisjoint: merging zero partials yields empty stats;
// partials over disjoint activity sets union cleanly.
func TestMergeEmptyAndDisjoint(t *testing.T) {
	if s := Merge(); len(s.Activities()) != 0 || s.TotalDur != 0 {
		t.Errorf("Merge() = %v", s.Activities())
	}
	if s := Merge(nil, nil); len(s.Activities()) != 0 {
		t.Errorf("Merge(nil, nil) = %v", s.Activities())
	}
	mk := func(call string, dur time.Duration) *Computer {
		c := NewComputer(callMapping())
		c.Add(trace.NewCase(trace.CaseID{CID: "d", Host: "h", RID: 1}, []trace.Event{
			{Call: call, Start: 0, Dur: dur, Size: 100},
		}))
		return c
	}
	s := Merge(mk("read", 3*time.Millisecond), nil, mk("write", time.Millisecond))
	if len(s.Activities()) != 2 {
		t.Fatalf("activities = %v", s.Activities())
	}
	if rd := s.Get("read").RelDur; rd != 0.75 {
		t.Errorf("rd(read) = %v, want 0.75 (denominator merged across partials)", rd)
	}
}

// TestEventRateExact pins the integer rate quotient against hand
// calculations, including a value whose numerator overflows 64 bits.
func TestEventRateExact(t *testing.T) {
	tests := []struct {
		size int64
		dur  time.Duration
		want float64
	}{
		{1000, time.Millisecond, 1e6},
		{3000, time.Millisecond, 3e6},
		{1, time.Second, 1},
		{1, 3 * time.Second, 0},                  // floor(1/3 B/s)
		{1 << 40, time.Nanosecond, 0x1p40 * 1e9}, // needs >64-bit intermediate
	}
	for _, tc := range tests {
		if got := eventRate(tc.size, tc.dur).float64(); got != tc.want {
			t.Errorf("eventRate(%d, %v) = %v, want %v", tc.size, tc.dur, got, tc.want)
		}
	}
	// The 128-bit sum folds the pieces of a split exactly.
	var whole, split rateSum
	whole.add(eventRate(1<<40, time.Nanosecond))
	whole.add(eventRate(1<<40, time.Nanosecond))
	split.add(eventRate(1<<40, time.Nanosecond))
	var other rateSum
	other.add(eventRate(1<<40, time.Nanosecond))
	split.add(other)
	if whole != split {
		t.Errorf("rate sums diverge: %+v vs %+v", whole, split)
	}
}

// TestMaxConcurrencyZeroDurationTies: equal start times with
// zero-duration intervals are exactly where an order-dependent sweep
// leaks the collection order; the totally-ordered sort must give the
// same answer for every input permutation.
func TestMaxConcurrencyZeroDurationTies(t *testing.T) {
	iv := func(s, e int) trace.Interval {
		return trace.Interval{Start: time.Duration(s), End: time.Duration(e)}
	}
	tests := []struct {
		name string
		ivs  []trace.Interval
		want int
	}{
		{"empty", nil, 0},
		{"single zero-duration", []trace.Interval{iv(5, 5)}, 1},
		{"zero-duration then open", []trace.Interval{iv(5, 5), iv(5, 10)}, 1},
		{"open then zero-duration", []trace.Interval{iv(5, 10), iv(5, 5)}, 1},
		{"two zero-duration same start", []trace.Interval{iv(5, 5), iv(5, 5)}, 1},
		{"zero-duration inside open", []trace.Interval{iv(0, 10), iv(5, 5)}, 2},
		{"identical starts open", []trace.Interval{iv(0, 3), iv(0, 7), iv(0, 5)}, 3},
		{"zero plus two opens same start", []trace.Interval{iv(0, 0), iv(0, 5), iv(0, 7)}, 2},
	}
	for _, tc := range tests {
		if got := MaxConcurrency(tc.ivs); got != tc.want {
			t.Errorf("%s: MaxConcurrency = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestMaxConcurrencyPermutationInvariant: the sweep is a pure function
// of the interval multiset — shuffling the input (as shard-order
// concatenation does) never changes the answer, even with equal starts
// and zero durations in the mix.
func TestMaxConcurrencyPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		ivs := make([]trace.Interval, n)
		for i := range ivs {
			s := time.Duration(rng.Intn(6)) * time.Millisecond
			ivs[i] = trace.Interval{
				Start: s,
				End:   s + time.Duration(rng.Intn(4))*time.Millisecond, // often zero-duration
				Case:  trace.CaseID{CID: "p", Host: "h", RID: i},
			}
		}
		want := MaxConcurrency(ivs)
		for shuffle := 0; shuffle < 10; shuffle++ {
			rng.Shuffle(n, func(i, j int) { ivs[i], ivs[j] = ivs[j], ivs[i] })
			if got := MaxConcurrency(ivs); got != want {
				t.Fatalf("trial %d: permutation changed MaxConcurrency: %d vs %d over %v", trial, got, want, ivs)
			}
		}
	}
}
