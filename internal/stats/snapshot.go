package stats

import (
	"math"
	"time"

	"stinspector/internal/intern"
	"stinspector/internal/pm"
	"stinspector/internal/snapshot/wire"
	"stinspector/internal/trace"
)

// Symbols returns the number of distinct activity symbols in the
// computer's table — including activities interned by co-resident
// builders sharing the SymMapper (the virtual endpoints, say). It is
// the observable StreamResult.Symbols reports, preserved exactly across
// an encode/decode round trip.
func (c *Computer) Symbols() int { return c.sm.Acts().Len() }

// EncodeSnapshot serializes the computer's pre-Finalize state for
// durable storage: the full activity symbol table in symbol order (so
// decoding reproduces the exact symbol assignment, shared-table
// residents like the virtual endpoints included), the integral
// aggregates — among them the 128-bit rate sums — and every
// max-concurrency interval. Case identities in the interval sets go
// through a per-snapshot intern dictionary like every other string.
//
// Layout (wrapped in a checksummed section by internal/snapshot):
//
//	acts:     n | string*                      (symbol i = entry i)
//	caseDict: n | string*
//	totalDur: varint
//	accs:     n | (sym events totalDur bytes hasBytes
//	               rateHi rateLo rateCount
//	               nIntervals (start end cidSym hostSym rid)*)*
//
// Only accumulators with events > 0 are written (the "events==0 ⇒
// absent" invariant), so trailing empty slots never change the bytes.
func (c *Computer) EncodeSnapshot() []byte {
	var b wire.Buf
	acts := c.sm.Acts()
	b.Uvarint(uint64(acts.Len()))
	for i := 0; i < acts.Len(); i++ {
		b.Str(acts.Str(intern.Sym(i)))
	}

	caseDict := intern.NewLocal()
	for y := range c.accs {
		if c.accs[y].events == 0 {
			continue
		}
		for _, iv := range c.accs[y].intervals {
			caseDict.Intern(iv.Case.CID)
			caseDict.Intern(iv.Case.Host)
		}
	}
	b.Uvarint(uint64(caseDict.Len()))
	for i := 0; i < caseDict.Len(); i++ {
		b.Str(caseDict.Str(intern.Sym(i)))
	}

	b.Varint(int64(c.totalDur))
	nAccs := 0
	for y := range c.accs {
		if c.accs[y].events > 0 {
			nAccs++
		}
	}
	b.Uvarint(uint64(nAccs))
	for y := range c.accs {
		ac := &c.accs[y]
		if ac.events == 0 {
			continue
		}
		b.Uvarint(uint64(y))
		b.Uvarint(uint64(ac.events))
		b.Varint(int64(ac.totalDur))
		b.Varint(ac.bytes)
		b.Bool(ac.hasBytes)
		b.U64(ac.rate.hi)
		b.U64(ac.rate.lo)
		b.Uvarint(uint64(ac.rateCount))
		b.Uvarint(uint64(len(ac.intervals)))
		for _, iv := range ac.intervals {
			b.Varint(int64(iv.Start))
			b.Varint(int64(iv.End))
			cy, _ := caseDict.Sym(iv.Case.CID)
			hy, _ := caseDict.Sym(iv.Case.Host)
			b.Uvarint(uint64(cy))
			b.Uvarint(uint64(hy))
			b.Varint(int64(iv.Case.RID))
		}
	}
	return b.Bytes()
}

// DecodeComputerSnapshot reconstructs a computer from EncodeSnapshot
// bytes over a fresh SymMapper for the given mapping. The activity
// table is re-interned in file order through the scoped-table machinery
// — a fresh local table assigns symbol i to the i-th distinct string,
// reproducing the original assignment exactly — so the decoded computer
// merges with, and finalizes identically to, the one that was encoded.
// Hostile input yields a wire.CorruptError, never a panic.
func DecodeComputerSnapshot(data []byte, m pm.Mapping) (*Computer, error) {
	c := wire.NewCursor(data)
	sm := pm.NewSymMapper(m)
	acts := sm.Acts()
	nActs, err := c.Count(1)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nActs; i++ {
		s, err := c.Str()
		if err != nil {
			return nil, err
		}
		acts.Intern(s)
		if acts.Len() != i+1 {
			return nil, wire.Corruptf("duplicate activity %q", s)
		}
	}
	nCase, err := c.Count(1)
	if err != nil {
		return nil, err
	}
	caseDict := intern.NewLocal()
	for i := 0; i < nCase; i++ {
		s, err := c.Str()
		if err != nil {
			return nil, err
		}
		caseDict.Intern(s)
		if caseDict.Len() != i+1 {
			return nil, wire.Corruptf("duplicate case string %q", s)
		}
	}
	caseSym := func() (string, error) {
		y, err := c.Uvarint()
		if err != nil {
			return "", err
		}
		if y >= uint64(nCase) {
			return "", wire.Corruptf("case dictionary id %d out of range (%d strings)", y, nCase)
		}
		return caseDict.Str(intern.Sym(y)), nil
	}

	out := &Computer{sm: sm, accs: make([]accum, nActs)}
	td, err := c.Varint()
	if err != nil {
		return nil, err
	}
	out.totalDur = time.Duration(td)
	nAccs, err := c.Count(8)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nAccs; i++ {
		y, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if y >= uint64(nActs) {
			return nil, wire.Corruptf("activity symbol %d out of range (%d activities)", y, nActs)
		}
		ac := &out.accs[y]
		if ac.events != 0 {
			return nil, wire.Corruptf("duplicate accumulator for symbol %d", y)
		}
		if ac.events, err = c.Int(); err != nil {
			return nil, err
		}
		if ac.events == 0 {
			// Empty accumulators are never written; an explicit one
			// would break the events==0 ⇒ absent invariant downstream.
			return nil, wire.Corruptf("empty accumulator for symbol %d", y)
		}
		d, err := c.Varint()
		if err != nil {
			return nil, err
		}
		ac.totalDur = time.Duration(d)
		if ac.bytes, err = c.Varint(); err != nil {
			return nil, err
		}
		if ac.hasBytes, err = c.Bool(); err != nil {
			return nil, err
		}
		if ac.rate.hi, err = c.U64(); err != nil {
			return nil, err
		}
		if ac.rate.lo, err = c.U64(); err != nil {
			return nil, err
		}
		rc, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if rc > math.MaxInt64 {
			return nil, wire.Corruptf("rate count %d overflows int64", rc)
		}
		ac.rateCount = int64(rc)
		ni, err := c.Count(5)
		if err != nil {
			return nil, err
		}
		ac.intervals = make([]trace.Interval, ni)
		for j := range ac.intervals {
			iv := &ac.intervals[j]
			s, err := c.Varint()
			if err != nil {
				return nil, err
			}
			iv.Start = time.Duration(s)
			e, err := c.Varint()
			if err != nil {
				return nil, err
			}
			iv.End = time.Duration(e)
			if iv.Case.CID, err = caseSym(); err != nil {
				return nil, err
			}
			if iv.Case.Host, err = caseSym(); err != nil {
				return nil, err
			}
			rid, err := c.Varint()
			if err != nil {
				return nil, err
			}
			iv.Case.RID = int(rid)
		}
	}
	if err := c.Done(); err != nil {
		return nil, err
	}
	return out, nil
}
