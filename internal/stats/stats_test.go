package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"stinspector/internal/pm"
	"stinspector/internal/trace"
)

func mkLog(t *testing.T, caseEvents map[int][]trace.Event) *trace.EventLog {
	t.Helper()
	var cases []*trace.Case
	rids := make([]int, 0, len(caseEvents))
	for rid := range caseEvents {
		rids = append(rids, rid)
	}
	sort.Ints(rids)
	for _, rid := range rids {
		cases = append(cases, trace.NewCase(trace.CaseID{CID: "s", Host: "h", RID: rid}, caseEvents[rid]))
	}
	return trace.MustNewEventLog(cases...)
}

func callMapping() pm.Mapping {
	return pm.MappingFunc(func(e trace.Event) (pm.Activity, bool) { return pm.Activity(e.Call), true })
}

func TestComputeRelativeDuration(t *testing.T) {
	// Two activities: "a" with total duration 3ms, "b" with 1ms.
	el := mkLog(t, map[int][]trace.Event{
		1: {
			{Call: "a", Start: 0, Dur: 2 * time.Millisecond, Size: 100},
			{Call: "b", Start: 10 * time.Millisecond, Dur: time.Millisecond, Size: 100},
		},
		2: {
			{Call: "a", Start: 0, Dur: time.Millisecond, Size: 100},
		},
	})
	s := Compute(el, callMapping())
	a, b := s.Get("a"), s.Get("b")
	if a == nil || b == nil {
		t.Fatalf("missing stats: %v %v", a, b)
	}
	if got := a.RelDur; math.Abs(got-0.75) > 1e-12 {
		t.Errorf("rd(a) = %v, want 0.75", got)
	}
	if got := b.RelDur; math.Abs(got-0.25) > 1e-12 {
		t.Errorf("rd(b) = %v, want 0.25", got)
	}
	if a.Events != 2 || b.Events != 1 {
		t.Errorf("events = %d/%d", a.Events, b.Events)
	}
	if a.TotalDur != 3*time.Millisecond {
		t.Errorf("total dur(a) = %v", a.TotalDur)
	}
	if got := s.MaxRelDur(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("MaxRelDur = %v", got)
	}
}

func TestComputeBytesAndRate(t *testing.T) {
	el := mkLog(t, map[int][]trace.Event{
		1: {
			// 1000 bytes in 1ms = 1e6 B/s; 3000 bytes in 1ms = 3e6 B/s.
			{Call: "read", Start: 0, Dur: time.Millisecond, Size: 1000},
			{Call: "read", Start: 5 * time.Millisecond, Dur: time.Millisecond, Size: 3000},
			// openat carries no size and must not disturb the rate.
			{Call: "openat", Start: 8 * time.Millisecond, Dur: time.Millisecond, Size: trace.SizeUnknown},
		},
	})
	s := Compute(el, callMapping())
	rd := s.Get("read")
	if rd.Bytes != 4000 || !rd.HasBytes {
		t.Errorf("bytes = %d (has=%v), want 4000", rd.Bytes, rd.HasBytes)
	}
	// Mean of per-event rates, Equation (13): (1e6 + 3e6)/2 = 2e6 B/s.
	if math.Abs(rd.ProcRate-2e6) > 1 {
		t.Errorf("rate = %v, want 2e6", rd.ProcRate)
	}
	op := s.Get("openat")
	if op.HasBytes || op.Bytes != 0 || op.ProcRate != 0 {
		t.Errorf("openat stats = %+v, want no bytes/rate", op)
	}
}

func TestComputeZeroDurationEventsExcludedFromRate(t *testing.T) {
	el := mkLog(t, map[int][]trace.Event{
		1: {
			{Call: "read", Start: 0, Dur: 0, Size: 500},
			{Call: "read", Start: time.Millisecond, Dur: time.Millisecond, Size: 1000},
		},
	})
	s := Compute(el, callMapping())
	rd := s.Get("read")
	if math.Abs(rd.ProcRate-1e6) > 1 {
		t.Errorf("rate = %v, want 1e6 (zero-duration event excluded)", rd.ProcRate)
	}
	if rd.Bytes != 1500 {
		t.Errorf("bytes = %d, want 1500 (zero-duration event still counted)", rd.Bytes)
	}
}

func TestMaxConcurrencyPaperExample(t *testing.T) {
	// Figure 5: three cases each reading /usr/lib three times; the
	// max concurrency of read:/usr/lib in C_b is 2.
	iv := func(startMs, endMs int) trace.Interval {
		return trace.Interval{Start: time.Duration(startMs) * time.Millisecond, End: time.Duration(endMs) * time.Millisecond}
	}
	intervals := []trace.Interval{
		iv(0, 2), iv(3, 5), iv(6, 8), // case 1
		iv(1, 3), iv(9, 10), iv(11, 12), // case 2 — first overlaps case 1's first
		iv(20, 21), iv(22, 23), iv(24, 25), // case 3 — disjoint
	}
	if got := MaxConcurrency(intervals); got != 2 {
		t.Errorf("MaxConcurrency = %d, want 2", got)
	}
}

func TestMaxConcurrencyEdgeCases(t *testing.T) {
	if got := MaxConcurrency(nil); got != 0 {
		t.Errorf("empty = %d, want 0", got)
	}
	one := []trace.Interval{{Start: 0, End: time.Second}}
	if got := MaxConcurrency(one); got != 1 {
		t.Errorf("single = %d, want 1", got)
	}
	// Touching intervals (end == start) are not concurrent.
	touch := []trace.Interval{{Start: 0, End: 5}, {Start: 5, End: 10}}
	if got := MaxConcurrency(touch); got != 1 {
		t.Errorf("touching = %d, want 1", got)
	}
	// Fully nested intervals.
	nested := []trace.Interval{{Start: 0, End: 100}, {Start: 10, End: 20}, {Start: 30, End: 40}}
	if got := MaxConcurrency(nested); got != 2 {
		t.Errorf("nested = %d, want 2", got)
	}
	// All identical.
	same := []trace.Interval{{Start: 0, End: 10}, {Start: 0, End: 10}, {Start: 0, End: 10}}
	if got := MaxConcurrency(same); got != 3 {
		t.Errorf("identical = %d, want 3", got)
	}
	// Unsorted input is handled (the function sorts internally).
	unsorted := []trace.Interval{{Start: 50, End: 60}, {Start: 0, End: 55}}
	if got := MaxConcurrency(unsorted); got != 2 {
		t.Errorf("unsorted = %d, want 2", got)
	}
}

// Property: MaxConcurrency matches a brute-force sweep over all interval
// start points.
func TestMaxConcurrencyMatchesBruteForce(t *testing.T) {
	brute := func(ivs []trace.Interval) int {
		max := 0
		for _, probe := range ivs {
			n := 0
			for _, iv := range ivs {
				if iv.Start <= probe.Start && probe.Start < iv.End {
					n++
				}
			}
			if n > max {
				max = n
			}
		}
		return max
	}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%40) + 1
		ivs := make([]trace.Interval, k)
		for i := range ivs {
			s := time.Duration(rng.Intn(100)) * time.Millisecond
			ivs[i] = trace.Interval{Start: s, End: s + time.Duration(1+rng.Intn(30))*time.Millisecond}
		}
		return MaxConcurrency(ivs) == brute(ivs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: relative durations over all activities sum to 1 (when any
// duration exists at all).
func TestRelDurSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		evs := map[int][]trace.Event{}
		for rid := 0; rid < 1+rng.Intn(4); rid++ {
			n := 1 + rng.Intn(30)
			for j := 0; j < n; j++ {
				evs[rid] = append(evs[rid], trace.Event{
					Call:  []string{"read", "write", "openat"}[rng.Intn(3)],
					Start: time.Duration(j) * time.Millisecond,
					Dur:   time.Duration(1+rng.Intn(500)) * time.Microsecond,
					Size:  int64(rng.Intn(1000)) - 1,
				})
			}
		}
		var cases []*trace.Case
		for rid, e := range evs {
			cases = append(cases, trace.NewCase(trace.CaseID{CID: "q", Host: "h", RID: rid}, e))
		}
		el := trace.MustNewEventLog(cases...)
		s := Compute(el, pm.MappingFunc(func(e trace.Event) (pm.Activity, bool) {
			return pm.Activity(e.Call), true
		}))
		sum := 0.0
		for _, a := range s.Activities() {
			sum += s.Get(a).RelDur
		}
		return math.Abs(sum-1.0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeRespectsPartialMapping(t *testing.T) {
	el := mkLog(t, map[int][]trace.Event{
		1: {
			{Call: "read", FP: "/usr/lib/a", Start: 0, Dur: time.Millisecond, Size: 10},
			{Call: "read", FP: "/etc/b", Start: time.Millisecond, Dur: 3 * time.Millisecond, Size: 10},
		},
	})
	m := pm.RestrictPath(pm.CallTopDirs{Depth: 2}, "/usr/lib")
	s := Compute(el, m)
	if len(s.Activities()) != 1 {
		t.Fatalf("activities = %v", s.Activities())
	}
	st := s.Get("read:/usr/lib")
	// The excluded event must not appear in the rd denominator.
	if st.RelDur != 1.0 {
		t.Errorf("rd = %v, want 1.0 (denominator only over mapped events)", st.RelDur)
	}
}

func TestTimeline(t *testing.T) {
	el := mkLog(t, map[int][]trace.Event{
		2: {{Call: "read", FP: "/usr/lib/a", Start: 5 * time.Millisecond, Dur: time.Millisecond, Size: 1}},
		1: {
			{Call: "read", FP: "/usr/lib/a", Start: 2 * time.Millisecond, Dur: time.Millisecond, Size: 1},
			{Call: "write", FP: "/dev/pts/1", Start: 3 * time.Millisecond, Dur: time.Millisecond, Size: 1},
		},
	})
	tl := Timeline(el, pm.CallTopDirs{Depth: 2}, "read:/usr/lib")
	if len(tl) != 2 {
		t.Fatalf("timeline = %v", tl)
	}
	if tl[0].Start != 2*time.Millisecond || tl[0].Case.RID != 1 {
		t.Errorf("timeline[0] = %+v", tl[0])
	}
	if tl[1].Start != 5*time.Millisecond || tl[1].Case.RID != 2 {
		t.Errorf("timeline[1] = %+v", tl[1])
	}
	if got := Timeline(el, pm.CallTopDirs{Depth: 2}, "no:such"); len(got) != 0 {
		t.Errorf("absent activity timeline = %v", got)
	}
}

// The max-concurrency of an activity equals MaxConcurrency over its
// timeline — Compute and Timeline must agree.
func TestComputeTimelineConsistency(t *testing.T) {
	el := mkLog(t, map[int][]trace.Event{
		1: {
			{Call: "read", FP: "/f", Start: 0, Dur: 10 * time.Millisecond, Size: 1},
			{Call: "read", FP: "/f", Start: 5 * time.Millisecond, Dur: 10 * time.Millisecond, Size: 1},
		},
		2: {{Call: "read", FP: "/f", Start: 7 * time.Millisecond, Dur: 10 * time.Millisecond, Size: 1}},
	})
	m := callMapping()
	s := Compute(el, m)
	tl := Timeline(el, m, "read")
	if got, want := s.Get("read").MaxConc, MaxConcurrency(tl); got != want {
		t.Errorf("Compute mc = %d, Timeline mc = %d", got, want)
	}
	if s.Get("read").MaxConc != 3 {
		t.Errorf("mc = %d, want 3", s.Get("read").MaxConc)
	}
}
