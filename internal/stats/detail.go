package stats

import (
	"sort"
	"time"

	"stinspector/internal/pm"
	"stinspector/internal/trace"
)

// Distribution summarizes the duration distribution of one activity's
// events. The paper's Load annotation is a sum; the distribution view
// separates "many moderately slow calls" from "a few pathologically slow
// ones" — the signature difference between bandwidth-bound and
// contention-bound activities (compare the SSF write durations of
// Figure 8, where rare token revocations carry most of the time).
type Distribution struct {
	Activity pm.Activity
	Events   int
	Min      time.Duration
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration
	Total    time.Duration
	// TailShare is the fraction of total duration carried by the
	// slowest 5% of events; values near 1 indicate contention spikes.
	TailShare float64
}

// ComputeDistribution derives the duration distribution of one activity.
// The second return value is false when no event maps to the activity.
func ComputeDistribution(el *trace.EventLog, m pm.Mapping, a pm.Activity) (Distribution, bool) {
	var durs []time.Duration
	el.Events(func(e trace.Event) {
		if got, ok := m.Map(e); ok && got == a {
			durs = append(durs, e.Dur)
		}
	})
	if len(durs) == 0 {
		return Distribution{}, false
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var total time.Duration
	for _, d := range durs {
		total += d
	}
	d := Distribution{
		Activity: a,
		Events:   len(durs),
		Min:      durs[0],
		P50:      quantile(durs, 0.50),
		P95:      quantile(durs, 0.95),
		P99:      quantile(durs, 0.99),
		Max:      durs[len(durs)-1],
		Total:    total,
	}
	tailStart := int(float64(len(durs)) * 0.95)
	var tail time.Duration
	for _, dd := range durs[tailStart:] {
		tail += dd
	}
	if total > 0 {
		d.TailShare = float64(tail) / float64(total)
	}
	return d, true
}

// quantile returns the q-quantile of sorted durations (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Histogram bins the durations of one activity's events into nbins
// equal-width buckets over [min, max]. Returns bucket counts and the
// bucket width; nil when the activity has no events.
func Histogram(el *trace.EventLog, m pm.Mapping, a pm.Activity, nbins int) (counts []int, width time.Duration) {
	if nbins <= 0 {
		nbins = 10
	}
	var durs []time.Duration
	el.Events(func(e trace.Event) {
		if got, ok := m.Map(e); ok && got == a {
			durs = append(durs, e.Dur)
		}
	})
	if len(durs) == 0 {
		return nil, 0
	}
	min, max := durs[0], durs[0]
	for _, d := range durs {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	span := max - min
	if span == 0 {
		counts = make([]int, nbins)
		counts[0] = len(durs)
		return counts, 0
	}
	width = span/time.Duration(nbins) + 1
	counts = make([]int, nbins)
	for _, d := range durs {
		i := int((d - min) / width)
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts, width
}

// CaseSummary aggregates one case's contribution to an activity (or to
// the whole log when the activity filter is nil): the straggler view.
type CaseSummary struct {
	Case     trace.CaseID
	Events   int
	TotalDur time.Duration
	Bytes    int64
}

// PerCase summarizes every case's contribution to activity a (all
// activities when a is empty), sorted by descending total duration, so
// the slowest process — the straggler the paper's timeline plot is used
// to find — comes first.
func PerCase(el *trace.EventLog, m pm.Mapping, a pm.Activity) []CaseSummary {
	byCase := make(map[trace.CaseID]*CaseSummary)
	var order []trace.CaseID
	el.Events(func(e trace.Event) {
		got, ok := m.Map(e)
		if !ok || (a != "" && got != a) {
			return
		}
		id := e.CaseID()
		cs := byCase[id]
		if cs == nil {
			cs = &CaseSummary{Case: id}
			byCase[id] = cs
			order = append(order, id)
		}
		cs.Events++
		cs.TotalDur += e.Dur
		if e.HasSize() {
			cs.Bytes += e.Size
		}
	})
	out := make([]CaseSummary, 0, len(order))
	for _, id := range order {
		out = append(out, *byCase[id])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TotalDur != out[j].TotalDur {
			return out[i].TotalDur > out[j].TotalDur
		}
		return out[i].Case.Less(out[j].Case)
	})
	return out
}
