package iorsim

import (
	"fmt"
	"time"

	"stinspector/internal/mpisim"
	"stinspector/internal/simfs"
)

// preamble emits the startup I/O of an MPI program: the dynamic loader
// reading ELF headers of shared libraries under $SOFTWARE, environment
// and dotfile opens under $HOME, and the MPI runtime creating
// shared-memory segments on node-local storage. These populate the
// $SOFTWARE / $HOME / "Node Local" regions of Figure 8a; their byte and
// count magnitudes follow the figure (about 30 ELF-header reads of
// ~900 B, ~27 home-directory opens, and ~65 node-local writes of ~66 KB
// per rank).
func preamble(cfg Config, fs *simfs.FS, rank int) mpisim.Program {
	var p mpisim.Program

	libs := []string{
		cfg.Site.Software + "/mpi/lib/libmpi.so.40",
		cfg.Site.Software + "/mpi/lib/libopen-pal.so.40",
		cfg.Site.Software + "/compiler/lib/libc.so.6",
		cfg.Site.Software + "/compiler/lib/libm.so.6",
		cfg.Site.Software + "/tools/lib/libz.so.1",
	}
	open := func(path string, writable bool) mpisim.Action {
		return mpisim.Syscall("openat", path, func(r *mpisim.Rank, now time.Duration) (time.Duration, int64) {
			return fs.Open(r.ID, now, path, writable), -1
		})
	}
	read := func(path string, size int64) mpisim.Action {
		return mpisim.Syscall("read", path, func(r *mpisim.Rank, now time.Duration) (time.Duration, int64) {
			return fs.Read(r.ID, now, path, 0, size), size
		})
	}
	write := func(path string, size int64) mpisim.Action {
		return mpisim.Syscall("write", path, func(r *mpisim.Rank, now time.Duration) (time.Duration, int64) {
			return fs.Write(r.ID, now, path, 0, size), size
		})
	}

	// Loader: one open per library, ELF header + section reads.
	for i, lib := range libs {
		p = append(p, open(lib, false))
		reads := 6
		for j := 0; j < reads; j++ {
			size := int64(832)
			if j == reads-1 {
				size = 1024 + int64(i)*64
			}
			p = append(p, read(lib, size))
		}
	}

	// Environment and configuration under $HOME.
	homeFiles := []string{"/.bashrc", "/.profile", "/.config/env", "/.cache/ld.so", "/.mpirc"}
	for round := 0; round < 5; round++ {
		for i, f := range homeFiles {
			if (round+i)%2 == 0 {
				p = append(p, open(cfg.Site.Home+f, false))
			}
		}
	}

	// MPI shared-memory transport on node-local storage.
	shm := fmt.Sprintf("%s/psm2_shm.%d", cfg.Site.NodeLocal, rank)
	spool := fmt.Sprintf("%s/ompi.spool.%d", cfg.Site.NodeLocal, rank)
	p = append(p, open(shm, true), open(spool, true))
	for i := 0; i < 65; i++ {
		target := shm
		if i%5 == 4 {
			target = spool
		}
		p = append(p, write(target, 66_000))
	}
	return p
}
