// Package iorsim simulates the IOR benchmark over the simfs filesystem
// model and the mpisim process engine. It accepts the options the paper
// uses (Figure 7b):
//
//	ior -t 1m -b 16m -s 3 -w -r -C -e [-F] [-a mpiio] -o FILE
//
// and produces the system-call event streams an strace of the real run
// would yield: openat/lseek/read/write for the POSIX API, and
// pread64/pwrite64 (no lseek) when the MPI-IO interface is selected,
// "a naive replacement of standard file operations with the MPI-IO
// counterpart" (Section V-B).
package iorsim

import (
	"fmt"
	"time"

	"stinspector/internal/mpisim"
	"stinspector/internal/simfs"
	"stinspector/internal/trace"
)

// API selects the I/O interface, the paper's -a option.
type API int

const (
	// POSIX is IOR's default: lseek + read/write.
	POSIX API = iota
	// MPIIO replaces them with pread64/pwrite64 issued by the MPI-IO
	// layer, fusing the seek into the access.
	MPIIO
)

// ParseAPI parses "posix" or "mpiio".
func ParseAPI(s string) (API, error) {
	switch s {
	case "", "posix", "POSIX":
		return POSIX, nil
	case "mpiio", "MPIIO":
		return MPIIO, nil
	}
	return POSIX, fmt.Errorf("iorsim: unknown api %q (want posix or mpiio)", s)
}

func (a API) String() string {
	if a == MPIIO {
		return "mpiio"
	}
	return "posix"
}

// Site describes the storage layout of the simulated cluster, used for
// path generation and for the $VAR abstractions of the mapping f̄.
type Site struct {
	Scratch   string
	Home      string
	Software  string
	NodeLocal string
}

// DefaultSite mirrors the JUWELS-style layout used in the paper.
func DefaultSite() Site {
	return Site{
		Scratch:   "/p/scratch/user",
		Home:      "/p/home/user",
		Software:  "/p/software",
		NodeLocal: "/dev/shm",
	}
}

// Config is one IOR run.
type Config struct {
	// CID identifies the run's cases in the event-log (for example
	// "ssf", "fpp", "posix", "mpiio").
	CID string
	// Ranks and Hosts configure the MPI world (the paper: 96 ranks on
	// 2 hosts). BaseRID offsets the launcher process ids so that
	// multiple runs keep distinct case identities.
	Ranks   int
	Hosts   int
	BaseRID int
	// TransferSize (-t), BlockSize (-b) and Segments (-s) define the
	// file format of Figure 7a.
	TransferSize int64
	BlockSize    int64
	Segments     int
	// Write (-w) and Read (-r) select the phases; Fsync (-e) issues
	// fsync after the write phase; ReorderTasks (-C) makes each rank
	// read the block written by a rank of the neighbouring host.
	Write        bool
	Read         bool
	Fsync        bool
	ReorderTasks bool
	// FilePerProc (-F) switches from single-shared-file to
	// file-per-process.
	FilePerProc bool
	// API is the -a option.
	API API
	// Collective enables MPI-IO collective buffering (IOR's -c):
	// ranks exchange data so that one aggregator per host performs the
	// file accesses with host-contiguous buffers. Only meaningful with
	// API == MPIIO; it reduces the number of ranks touching the file
	// (and thereby token traffic) at the cost of intra-node data
	// movement, which appears as extra node-local writes.
	Collective bool
	// TestFile is the -o option (absolute path under the site scratch).
	TestFile string
	// Preamble also emits the startup I/O every MPI program performs
	// (shared-library reads under $SOFTWARE, dotfile opens under
	// $HOME, MPI shared-memory segments on node-local storage), which
	// populates the non-$SCRATCH nodes of Figure 8a.
	Preamble bool
	// Site is the storage layout (DefaultSite if zero).
	Site Site
	// FSParams calibrates the filesystem model
	// (simfs.DefaultParams if zero).
	FSParams *simfs.Params
	// ComputePerTransfer is user-space time spent preparing each
	// transfer buffer (default 100µs).
	ComputePerTransfer time.Duration
	// Seed fixes the run's randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.CID == "" {
		c.CID = "ior"
	}
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.Hosts <= 0 {
		c.Hosts = 1
	}
	if c.TransferSize <= 0 {
		c.TransferSize = 1 << 20
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 16 << 20
	}
	if c.Segments <= 0 {
		c.Segments = 3
	}
	if c.Site == (Site{}) {
		c.Site = DefaultSite()
	}
	if c.TestFile == "" {
		mode := "ssf"
		if c.FilePerProc {
			mode = "fpp"
		}
		c.TestFile = c.Site.Scratch + "/" + mode + "/test"
	}
	if c.ComputePerTransfer == 0 {
		c.ComputePerTransfer = 100 * time.Microsecond
	}
	if c.BaseRID == 0 {
		c.BaseRID = 40000
	}
	return c
}

// TransfersPerBlock returns -b / -t.
func (c Config) TransfersPerBlock() int { return int(c.BlockSize / c.TransferSize) }

// Result carries the artifacts of a run.
type Result struct {
	Log   *trace.EventLog
	FS    *simfs.FS
	World *mpisim.World
	Cfg   Config
}

// Run executes the simulated benchmark and collects one case per rank.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.BlockSize%cfg.TransferSize != 0 {
		return nil, fmt.Errorf("iorsim: block size %d not a multiple of transfer size %d", cfg.BlockSize, cfg.TransferSize)
	}
	params := simfs.DefaultParams()
	if cfg.FSParams != nil {
		params = *cfg.FSParams
	}
	// Byte-range tokens are granted at block granularity: GPFS learns
	// the access pattern's likely ranges, and IOR's pattern is one
	// block per rank per segment.
	params.GrantBytes = cfg.BlockSize
	fs := simfs.New(params, cfg.Seed)
	world := mpisim.NewWorld(mpisim.Config{
		Ranks:   cfg.Ranks,
		Hosts:   cfg.Hosts,
		BaseRID: cfg.BaseRID,
		Seed:    cfg.Seed + 1,
	})
	programs := make([]mpisim.Program, cfg.Ranks)
	for i, r := range world.Ranks {
		programs[i] = buildProgram(cfg, fs, world, r)
	}
	if err := mpisim.NewEngine(world).Run(programs); err != nil {
		return nil, err
	}
	log, err := world.EventLog(cfg.CID)
	if err != nil {
		return nil, err
	}
	return &Result{Log: log, FS: fs, World: world, Cfg: cfg}, nil
}

// rankFile returns the file a rank accesses: the shared test file, or its
// private "testfile.00000042"-style file in file-per-process mode.
func (c Config) rankFile(rank int) string {
	if !c.FilePerProc {
		return c.TestFile
	}
	return fmt.Sprintf("%s.%08d", c.TestFile, rank)
}

// blockOffset returns the offset of a rank's block within a segment for
// the shared-file layout of Figure 7a: segments are contiguous regions
// holding one block per rank.
func (c Config) blockOffset(segment, rank int) int64 {
	if c.FilePerProc {
		return int64(segment) * c.BlockSize
	}
	return (int64(segment)*int64(c.Ranks) + int64(rank)) * c.BlockSize
}

// buildProgram assembles one rank's action sequence.
func buildProgram(cfg Config, fs *simfs.FS, world *mpisim.World, r *mpisim.Rank) mpisim.Program {
	var p mpisim.Program
	rank := r.ID

	if cfg.Preamble {
		p = append(p, preamble(cfg, fs, rank)...)
	}
	p = append(p, mpisim.Barrier())

	// Open phase.
	path := cfg.rankFile(rank)
	p = append(p, mpisim.Syscall("openat", path, func(rr *mpisim.Rank, now time.Duration) (time.Duration, int64) {
		return fs.Open(rr.ID, now, path, cfg.Write), -1
	}))
	p = append(p, mpisim.Barrier())

	tpb := cfg.TransfersPerBlock()

	if cfg.Collective && cfg.API == MPIIO {
		return appendCollectivePhases(p, cfg, fs, world, r, path)
	}

	if cfg.Write {
		pos := int64(0)
		for seg := 0; seg < cfg.Segments; seg++ {
			target := cfg.blockOffset(seg, rank)
			if cfg.API == POSIX && pos != target {
				p = append(p, seekAction(fs, path))
			}
			for t := 0; t < tpb; t++ {
				off := target + int64(t)*cfg.TransferSize
				p = append(p, mpisim.Compute(cfg.ComputePerTransfer))
				p = append(p, writeAction(cfg, fs, path, off))
			}
			pos = target + c64(tpb)*cfg.TransferSize
		}
		if cfg.Fsync {
			p = append(p, mpisim.Syscall("fsync", path, func(rr *mpisim.Rank, now time.Duration) (time.Duration, int64) {
				return fs.Fsync(path), -1
			}))
		}
		p = append(p, mpisim.Barrier())
	}

	if cfg.Read {
		src := rank
		if cfg.ReorderTasks {
			// -C: read the data written by a rank of the
			// neighbouring node, avoiding the local page cache.
			src = (rank + world.RanksPerHost()) % cfg.Ranks
		}
		rpath := cfg.rankFile(src)
		srcBlockRank := src
		if cfg.FilePerProc {
			srcBlockRank = 0 // private files hold only own blocks
		}
		if cfg.FilePerProc {
			// In file-per-process mode the reader opens the
			// neighbour's file first.
			if src != rank {
				p = append(p, mpisim.Syscall("openat", rpath, func(rr *mpisim.Rank, now time.Duration) (time.Duration, int64) {
					return fs.Open(rr.ID, now, rpath, false), -1
				}))
			}
		}
		pos := int64(-1)
		for seg := 0; seg < cfg.Segments; seg++ {
			target := cfg.blockOffset(seg, srcBlockRank)
			if cfg.FilePerProc {
				target = int64(seg) * cfg.BlockSize
			}
			if cfg.API == POSIX && pos != target {
				p = append(p, seekAction(fs, rpath))
			}
			for t := 0; t < tpb; t++ {
				off := target + int64(t)*cfg.TransferSize
				p = append(p, readAction(cfg, fs, rpath, off))
			}
			pos = target + c64(tpb)*cfg.TransferSize
		}
		p = append(p, mpisim.Barrier())
	}

	p = append(p, mpisim.Syscall("close", path, func(rr *mpisim.Rank, now time.Duration) (time.Duration, int64) {
		return fs.Close(), -1
	}))
	return p
}

func c64(v int) int64 { return int64(v) }

func seekAction(fs *simfs.FS, path string) mpisim.Action {
	return mpisim.Syscall("lseek", path, func(rr *mpisim.Rank, now time.Duration) (time.Duration, int64) {
		return fs.Seek(), -1
	})
}

func writeAction(cfg Config, fs *simfs.FS, path string, off int64) mpisim.Action {
	call := "write"
	if cfg.API == MPIIO {
		call = "pwrite64"
	}
	size := cfg.TransferSize
	return mpisim.Syscall(call, path, func(rr *mpisim.Rank, now time.Duration) (time.Duration, int64) {
		return fs.Write(rr.ID, now, path, off, size), size
	})
}

func readAction(cfg Config, fs *simfs.FS, path string, off int64) mpisim.Action {
	call := "read"
	if cfg.API == MPIIO {
		call = "pread64"
	}
	size := cfg.TransferSize
	return mpisim.Syscall(call, path, func(rr *mpisim.Rank, now time.Duration) (time.Duration, int64) {
		return fs.Read(rr.ID, now, path, off, size), size
	})
}
