package iorsim

import (
	"strings"
	"testing"

	"stinspector/internal/trace"
)

// smallCfg is a reduced-scale run (8 ranks, 2 hosts) for fast tests.
func smallCfg(cid string, fpp bool, api API) Config {
	return Config{
		CID:          cid,
		Ranks:        8,
		Hosts:        2,
		TransferSize: 1 << 20,
		BlockSize:    4 << 20,
		Segments:     2,
		Write:        true,
		Read:         true,
		Fsync:        true,
		ReorderTasks: true,
		FilePerProc:  fpp,
		API:          api,
		Seed:         7,
	}
}

func countCalls(log *trace.EventLog, substr string) map[string]int {
	out := map[string]int{}
	log.Events(func(e trace.Event) {
		if strings.Contains(e.FP, substr) {
			out[e.Call]++
		}
	})
	return out
}

func TestRunSSFPosixCounts(t *testing.T) {
	res, err := Run(smallCfg("ssf", false, POSIX))
	if err != nil {
		t.Fatal(err)
	}
	log := res.Log
	if log.NumCases() != 8 {
		t.Fatalf("cases = %d", log.NumCases())
	}
	if err := log.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	calls := countCalls(log, "/scratch/")
	// 8 ranks × 2 segments × 4 transfers.
	if calls["write"] != 64 || calls["read"] != 64 {
		t.Errorf("write/read = %d/%d, want 64/64", calls["write"], calls["read"])
	}
	// One shared-file open per rank.
	if calls["openat"] != 8 {
		t.Errorf("openat = %d, want 8", calls["openat"])
	}
	if calls["fsync"] != 8 {
		t.Errorf("fsync = %d, want 8", calls["fsync"])
	}
	// lseeks: every rank seeks per segment on write (except rank 0's
	// first segment at offset 0) and per segment on read.
	wantSeeks := 8*2 - 1 + 8*2
	if calls["lseek"] != wantSeeks {
		t.Errorf("lseek = %d, want %d", calls["lseek"], wantSeeks)
	}
	if calls["pread64"] != 0 || calls["pwrite64"] != 0 {
		t.Errorf("posix run used p-calls: %v", calls)
	}
	// All shared-file accesses target the single test file.
	log.Events(func(e trace.Event) {
		if strings.Contains(e.FP, "/scratch/") && e.FP != res.Cfg.TestFile {
			t.Errorf("unexpected path %s", e.FP)
		}
	})
}

func TestRunFPPPaths(t *testing.T) {
	res, err := Run(smallCfg("fpp", true, POSIX))
	if err != nil {
		t.Fatal(err)
	}
	paths := map[string]bool{}
	res.Log.Events(func(e trace.Event) {
		if strings.Contains(e.FP, "/scratch/") {
			paths[e.FP] = true
		}
	})
	// Eight private files.
	if len(paths) != 8 {
		t.Errorf("distinct fpp files = %d: %v", len(paths), paths)
	}
	for p := range paths {
		if !strings.Contains(p, "fpp/test.0000000") {
			t.Errorf("unexpected fpp path %s", p)
		}
	}
	// No write-token revocations in file-per-process mode.
	if res.FS.Revocations != 0 {
		t.Errorf("fpp run caused %d revocations", res.FS.Revocations)
	}
	// -C with FPP: readers open the neighbour's file: 8 creates + 8
	// read opens.
	calls := countCalls(res.Log, "/scratch/")
	if calls["openat"] != 16 {
		t.Errorf("fpp openat = %d, want 16 (own create + neighbour open)", calls["openat"])
	}
}

func TestRunMPIIOCalls(t *testing.T) {
	res, err := Run(smallCfg("mpiio", false, MPIIO))
	if err != nil {
		t.Fatal(err)
	}
	calls := countCalls(res.Log, "/scratch/")
	if calls["pwrite64"] != 64 || calls["pread64"] != 64 {
		t.Errorf("p-calls = %v", calls)
	}
	if calls["lseek"] != 0 || calls["write"] != 0 || calls["read"] != 0 {
		t.Errorf("mpiio run issued posix calls: %v", calls)
	}
}

func TestMPIIOFewerSyscalls(t *testing.T) {
	posix, err := Run(smallCfg("posix", false, POSIX))
	if err != nil {
		t.Fatal(err)
	}
	mpiio, err := Run(smallCfg("mpiio", false, MPIIO))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mpiio.Log.NumEvents(), posix.Log.NumEvents(); got >= want {
		t.Errorf("mpiio issued %d syscalls, posix %d; mpiio must issue fewer", got, want)
	}
}

func TestSSFContentionCounters(t *testing.T) {
	res, err := Run(smallCfg("ssf", false, POSIX))
	if err != nil {
		t.Fatal(err)
	}
	// 7 of 8 ranks open an already-open shared file.
	if res.FS.SharedOpens != 7 {
		t.Errorf("shared opens = %d, want 7", res.FS.SharedOpens)
	}
	// Interleaved segments cause roughly ranks×segments revocations.
	if res.FS.Revocations < 8 {
		t.Errorf("revocations = %d, want ≥ 8", res.FS.Revocations)
	}
	// One shared file, one read switch.
	if res.FS.ReadSwitches != 1 {
		t.Errorf("read switches = %d, want 1", res.FS.ReadSwitches)
	}
}

func TestReorderTasksReadsNeighbourBlocks(t *testing.T) {
	// Without -C each rank reads its own block; sizes/counts are equal
	// either way, but -C on FPP shows up as opens of other ranks'
	// files.
	cfg := smallCfg("fpp", true, POSIX)
	cfg.ReorderTasks = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	calls := countCalls(res.Log, "/scratch/")
	if calls["openat"] != 8 {
		t.Errorf("without -C: openat = %d, want 8 (no neighbour opens)", calls["openat"])
	}
}

func TestPreambleEvents(t *testing.T) {
	cfg := smallCfg("pre", false, POSIX)
	cfg.Preamble = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	soft := countCalls(res.Log, "/p/software")
	if soft["read"] != 8*30 {
		t.Errorf("software reads = %d, want 240", soft["read"])
	}
	if soft["openat"] != 8*5 {
		t.Errorf("software opens = %d, want 40", soft["openat"])
	}
	home := countCalls(res.Log, "/p/home")
	if home["openat"] == 0 {
		t.Errorf("no home opens")
	}
	local := countCalls(res.Log, "/dev/shm")
	if local["write"] != 8*65 {
		t.Errorf("node-local writes = %d, want 520", local["write"])
	}
	var localBytes int64
	res.Log.Events(func(e trace.Event) {
		if strings.HasPrefix(e.FP, "/dev/shm") && e.HasSize() {
			localBytes += e.Size
		}
	})
	if localBytes != 8*65*66_000 {
		t.Errorf("node-local bytes = %d", localBytes)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(smallCfg("d", false, POSIX))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallCfg("d", false, POSIX))
	if err != nil {
		t.Fatal(err)
	}
	if a.Log.NumEvents() != b.Log.NumEvents() {
		t.Fatalf("event counts differ: %d vs %d", a.Log.NumEvents(), b.Log.NumEvents())
	}
	ac, bc := a.Log.Cases(), b.Log.Cases()
	for i := range ac {
		for j := range ac[i].Events {
			if ac[i].Events[j] != bc[i].Events[j] {
				t.Fatalf("case %d event %d differs", i, j)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := smallCfg("bad", false, POSIX)
	cfg.TransferSize = 3
	cfg.BlockSize = 10
	if _, err := Run(cfg); err == nil {
		t.Errorf("non-divisible block/transfer accepted")
	}
	if _, err := ParseAPI("posix"); err != nil {
		t.Errorf("ParseAPI(posix): %v", err)
	}
	if api, err := ParseAPI("mpiio"); err != nil || api != MPIIO {
		t.Errorf("ParseAPI(mpiio) = %v, %v", api, err)
	}
	if _, err := ParseAPI("hdf5"); err == nil {
		t.Errorf("unknown api accepted")
	}
	if POSIX.String() != "posix" || MPIIO.String() != "mpiio" {
		t.Errorf("API.String broken")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{CID: "x", Write: true, Seed: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cfg.TestFile == "" || !strings.Contains(res.Cfg.TestFile, "/ssf/") {
		t.Errorf("default test file = %q", res.Cfg.TestFile)
	}
	if res.Cfg.TransfersPerBlock() != 16 {
		t.Errorf("default transfers per block = %d", res.Cfg.TransfersPerBlock())
	}
}

func TestCollectiveBuffering(t *testing.T) {
	cfg := smallCfg("cb", false, MPIIO)
	cfg.Collective = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Log.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	calls := countCalls(res.Log, "/scratch/")
	perHost := 4 // 8 ranks on 2 hosts
	// Only aggregators touch the file: 2 aggregators × 2 segments ×
	// 4 ranks-per-host block writes.
	if want := 2 * 2 * perHost; calls["pwrite64"] != want {
		t.Errorf("pwrite64 = %d, want %d", calls["pwrite64"], want)
	}
	if calls["pread64"] != 2*2*perHost {
		t.Errorf("pread64 = %d", calls["pread64"])
	}
	// The exchange shows up as node-local traffic.
	local := countCalls(res.Log, "/dev/shm")
	if local["write"] != 8*2*4 { // ranks × segments × transfers
		t.Errorf("shm writes = %d, want 64", local["write"])
	}
	if local["read"] != 8*2*4 {
		t.Errorf("shm reads = %d, want 64", local["read"])
	}
	// Token traffic collapses versus independent MPI-IO: only the two
	// aggregators compete.
	indep, err := Run(smallCfg("indep", false, MPIIO))
	if err != nil {
		t.Fatal(err)
	}
	if res.FS.Revocations >= indep.FS.Revocations {
		t.Errorf("collective revocations %d not below independent %d",
			res.FS.Revocations, indep.FS.Revocations)
	}
	// Bytes through the file are identical.
	var cbBytes, inBytes int64
	res.Log.Events(func(e trace.Event) {
		if strings.Contains(e.FP, "/scratch/") && e.Call == "pwrite64" {
			cbBytes += e.Size
		}
	})
	indep.Log.Events(func(e trace.Event) {
		if strings.Contains(e.FP, "/scratch/") && e.Call == "pwrite64" {
			inBytes += e.Size
		}
	})
	if cbBytes != inBytes {
		t.Errorf("file bytes differ: %d vs %d", cbBytes, inBytes)
	}
}
