package iorsim

import (
	"fmt"
	"time"

	"stinspector/internal/mpisim"
	"stinspector/internal/simfs"
)

// appendCollectivePhases builds the write/read phases under MPI-IO
// collective buffering (IOR -c -a mpiio): per segment, every rank first
// exchanges its data with the node's aggregator through a node-local
// shared-memory buffer, then the aggregator alone accesses the file with
// host-contiguous pwrite64/pread64 calls. Far fewer ranks touch the
// shared file, so byte-range token traffic collapses — the optimization
// collective buffering exists for.
func appendCollectivePhases(p mpisim.Program, cfg Config, fs *simfs.FS, world *mpisim.World, r *mpisim.Rank, path string) mpisim.Program {
	perHost := world.RanksPerHost()
	hostIdx := r.ID / perHost
	isAggregator := r.ID%perHost == 0
	aggBuf := fmt.Sprintf("%s/mpiio_cb.%d", cfg.Site.NodeLocal, hostIdx)
	tpb := cfg.TransfersPerBlock()

	// Ranks on the aggregator's host, for the aggregator's file phase.
	hostLo := hostIdx * perHost
	hostHi := hostLo + perHost
	if hostHi > cfg.Ranks {
		hostHi = cfg.Ranks
	}

	shmWrite := func(size int64) mpisim.Action {
		return mpisim.Syscall("write", aggBuf, func(rr *mpisim.Rank, now time.Duration) (time.Duration, int64) {
			return fs.Write(rr.ID, now, aggBuf, 0, size), size
		})
	}
	shmRead := func(size int64) mpisim.Action {
		return mpisim.Syscall("read", aggBuf, func(rr *mpisim.Rank, now time.Duration) (time.Duration, int64) {
			return fs.Read(rr.ID, now, aggBuf, 0, size), size
		})
	}

	if cfg.Write {
		for seg := 0; seg < cfg.Segments; seg++ {
			// Exchange: every rank ships its block to the
			// aggregation buffer in transfer-size chunks.
			for t := 0; t < tpb; t++ {
				p = append(p, mpisim.Compute(cfg.ComputePerTransfer))
				p = append(p, shmWrite(cfg.TransferSize))
			}
			p = append(p, mpisim.Barrier())
			// File phase: the aggregator writes the host's blocks.
			if isAggregator {
				for rank := hostLo; rank < hostHi; rank++ {
					off := cfg.blockOffset(seg, rank)
					size := cfg.BlockSize
					p = append(p, mpisim.Syscall("pwrite64", path, func(rr *mpisim.Rank, now time.Duration) (time.Duration, int64) {
						return fs.Write(rr.ID, now, path, off, size), size
					}))
				}
			}
			p = append(p, mpisim.Barrier())
		}
		if cfg.Fsync {
			p = append(p, mpisim.Syscall("fsync", path, func(rr *mpisim.Rank, now time.Duration) (time.Duration, int64) {
				return fs.Fsync(path), -1
			}))
		}
		p = append(p, mpisim.Barrier())
	}

	if cfg.Read {
		// With -C the host reads the neighbouring host's region; the
		// aggregator fetches it, then ranks pull their blocks from
		// the buffer.
		srcHost := hostIdx
		if cfg.ReorderTasks {
			hosts := (cfg.Ranks + perHost - 1) / perHost
			srcHost = (hostIdx + 1) % hosts
		}
		srcLo := srcHost * perHost
		srcHi := srcLo + perHost
		if srcHi > cfg.Ranks {
			srcHi = cfg.Ranks
		}
		for seg := 0; seg < cfg.Segments; seg++ {
			if isAggregator {
				for rank := srcLo; rank < srcHi; rank++ {
					off := cfg.blockOffset(seg, rank)
					size := cfg.BlockSize
					p = append(p, mpisim.Syscall("pread64", path, func(rr *mpisim.Rank, now time.Duration) (time.Duration, int64) {
						return fs.Read(rr.ID, now, path, off, size), size
					}))
				}
			}
			p = append(p, mpisim.Barrier())
			for t := 0; t < tpb; t++ {
				p = append(p, shmRead(cfg.TransferSize))
			}
			p = append(p, mpisim.Barrier())
		}
		p = append(p, mpisim.Barrier())
	}

	p = append(p, mpisim.Syscall("close", path, func(rr *mpisim.Rank, now time.Duration) (time.Duration, int64) {
		return fs.Close(), -1
	}))
	return p
}
