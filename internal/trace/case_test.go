package trace

import (
	"testing"
	"time"
)

func TestParseCaseID(t *testing.T) {
	tests := []struct {
		name    string
		want    CaseID
		wantErr bool
	}{
		{name: "a_host1_9042.st", want: CaseID{CID: "a", Host: "host1", RID: 9042}},
		{name: "b_host1_9157", want: CaseID{CID: "b", Host: "host1", RID: 9157}},
		{name: "ior_jwc00n012_77423.st", want: CaseID{CID: "ior", Host: "jwc00n012", RID: 77423}},
		{name: "x_node_a_42.st", want: CaseID{CID: "x", Host: "node_a", RID: 42}}, // underscore in host
		{name: "nounderscore.st", wantErr: true},
		{name: "a_host.st", wantErr: true},
		{name: "a_host_notanumber.st", wantErr: true},
	}
	for _, tc := range tests {
		got, err := ParseCaseID(tc.name)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseCaseID(%q) = %v, want error", tc.name, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCaseID(%q): %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseCaseID(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCaseIDRoundTrip(t *testing.T) {
	id := CaseID{CID: "a", Host: "host1", RID: 9042}
	got, err := ParseCaseID(id.FileName())
	if err != nil {
		t.Fatalf("ParseCaseID(%q): %v", id.FileName(), err)
	}
	if got != id {
		t.Errorf("round trip = %v, want %v", got, id)
	}
}

func TestCaseIDLess(t *testing.T) {
	ids := []CaseID{
		{CID: "a", Host: "h1", RID: 2},
		{CID: "a", Host: "h1", RID: 1},
		{CID: "b", Host: "h1", RID: 0},
		{CID: "a", Host: "h2", RID: 0},
	}
	// a_h1_1 < a_h1_2 < a_h2_0 < b_h1_0
	order := []CaseID{ids[1], ids[0], ids[3], ids[2]}
	for i := 0; i+1 < len(order); i++ {
		if !order[i].Less(order[i+1]) {
			t.Errorf("%v should be < %v", order[i], order[i+1])
		}
		if order[i+1].Less(order[i]) {
			t.Errorf("%v should not be < %v", order[i+1], order[i])
		}
	}
	if ids[0].Less(ids[0]) {
		t.Errorf("Less must be irreflexive")
	}
}

func TestNewCaseSortsAndStamps(t *testing.T) {
	id := CaseID{CID: "a", Host: "host1", RID: 7}
	events := []Event{
		{PID: 1, Call: "write", Start: 3 * time.Second},
		{PID: 1, Call: "read", Start: 1 * time.Second},
		{PID: 1, Call: "openat", Start: 2 * time.Second},
	}
	c := NewCase(id, events)
	if !c.Sorted() {
		t.Fatalf("NewCase did not sort")
	}
	wantCalls := []string{"read", "openat", "write"}
	for i, e := range c.Events {
		if e.Call != wantCalls[i] {
			t.Errorf("event %d = %s, want %s", i, e.Call, wantCalls[i])
		}
		if e.CaseID() != id {
			t.Errorf("event %d identity = %v, want %v", i, e.CaseID(), id)
		}
	}
	// Input slice must not be mutated.
	if events[0].Call != "write" {
		t.Errorf("NewCase mutated its input")
	}
}

func TestNewCaseStableTies(t *testing.T) {
	id := CaseID{CID: "a", Host: "h", RID: 1}
	ts := time.Second
	c := NewCase(id, []Event{
		{PID: 1, Call: "first", Start: ts},
		{PID: 1, Call: "second", Start: ts},
		{PID: 1, Call: "third", Start: ts},
	})
	want := []string{"first", "second", "third"}
	for i, e := range c.Events {
		if e.Call != want[i] {
			t.Errorf("tie order violated at %d: got %s", i, e.Call)
		}
	}
}

func TestCaseFilter(t *testing.T) {
	id := CaseID{CID: "a", Host: "h", RID: 1}
	c := NewCase(id, []Event{
		{Call: "read", Start: 1, FP: "/usr/lib/x.so"},
		{Call: "write", Start: 2, FP: "/dev/pts/7"},
		{Call: "read", Start: 3, FP: "/usr/lib/y.so"},
	})
	f := c.Filter(func(e Event) bool { return e.Call == "read" })
	if f.Len() != 2 {
		t.Fatalf("filtered len = %d, want 2", f.Len())
	}
	if c.Len() != 3 {
		t.Errorf("filter mutated original")
	}
	if f.Events[0].FP != "/usr/lib/x.so" || f.Events[1].FP != "/usr/lib/y.so" {
		t.Errorf("filter broke order: %v", f.Events)
	}
}

func TestCaseSpan(t *testing.T) {
	id := CaseID{CID: "a", Host: "h", RID: 1}
	empty := NewCase(id, nil)
	if _, ok := empty.Span(); ok {
		t.Errorf("empty case should have no span")
	}
	c := NewCase(id, []Event{
		{Call: "a", Start: 10 * time.Second, Dur: 20 * time.Second}, // long first call
		{Call: "b", Start: 15 * time.Second, Dur: time.Second},
	})
	iv, ok := c.Span()
	if !ok {
		t.Fatalf("span missing")
	}
	if iv.Start != 10*time.Second || iv.End != 30*time.Second {
		t.Errorf("span = %+v, want [10s, 30s]", iv)
	}
}

func TestCaseClone(t *testing.T) {
	id := CaseID{CID: "a", Host: "h", RID: 1}
	c := NewCase(id, []Event{{Call: "read", Start: 1}})
	cl := c.Clone()
	cl.Events[0].Call = "mutated"
	if c.Events[0].Call != "read" {
		t.Errorf("Clone shares event storage")
	}
}
