package trace

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// demoLog builds a small two-command event-log resembling the paper's
// ls / ls -l example: cids "a" and "b", three rids each.
func demoLog(t *testing.T) *EventLog {
	t.Helper()
	var cases []*Case
	for i, rid := range []int{9042, 9043, 9045} {
		cases = append(cases, NewCase(CaseID{CID: "a", Host: "host1", RID: rid}, []Event{
			{PID: 9054 + i, Call: "read", Start: 1 * time.Second, Dur: 100 * time.Microsecond, FP: "/usr/lib/libc.so.6", Size: 832},
			{PID: 9054 + i, Call: "read", Start: 2 * time.Second, Dur: 50 * time.Microsecond, FP: "/proc/filesystems", Size: 478},
			{PID: 9054 + i, Call: "write", Start: 3 * time.Second, Dur: 111 * time.Microsecond, FP: "/dev/pts/7", Size: 50},
		}))
	}
	for i, rid := range []int{9157, 9158, 9160} {
		cases = append(cases, NewCase(CaseID{CID: "b", Host: "host1", RID: rid}, []Event{
			{PID: 9173 + i, Call: "read", Start: 1 * time.Second, Dur: 90 * time.Microsecond, FP: "/usr/lib/libc.so.6", Size: 832},
			{PID: 9173 + i, Call: "read", Start: 2 * time.Second, Dur: 37 * time.Microsecond, FP: "/etc/passwd", Size: 1612},
			{PID: 9173 + i, Call: "openat", Start: 2500 * time.Millisecond, Dur: 20 * time.Microsecond, FP: "/etc/group", Size: SizeUnknown},
			{PID: 9173 + i, Call: "write", Start: 3 * time.Second, Dur: 74 * time.Microsecond, FP: "/dev/pts/7", Size: 9},
		}))
	}
	l, err := NewEventLog(cases...)
	if err != nil {
		t.Fatalf("NewEventLog: %v", err)
	}
	return l
}

func TestEventLogBasics(t *testing.T) {
	l := demoLog(t)
	if got, want := l.NumCases(), 6; got != want {
		t.Errorf("NumCases = %d, want %d", got, want)
	}
	if got, want := l.NumEvents(), 3*3+3*4; got != want {
		t.Errorf("NumEvents = %d, want %d", got, want)
	}
	if c := l.Case(CaseID{CID: "a", Host: "host1", RID: 9043}); c == nil {
		t.Errorf("Case lookup failed")
	}
	if c := l.Case(CaseID{CID: "z", Host: "host1", RID: 1}); c != nil {
		t.Errorf("Case lookup for absent id = %v, want nil", c.ID)
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestEventLogDeterministicOrder(t *testing.T) {
	l := demoLog(t)
	var ids []CaseID
	for _, c := range l.Cases() {
		ids = append(ids, c.ID)
	}
	for i := 1; i < len(ids); i++ {
		if !ids[i-1].Less(ids[i]) {
			t.Fatalf("cases not ordered: %v before %v", ids[i-1], ids[i])
		}
	}
	// Insertion order must not matter.
	rev, _ := NewEventLog()
	cs := l.Cases()
	for i := len(cs) - 1; i >= 0; i-- {
		if err := rev.Add(cs[i]); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	var revIDs []CaseID
	for _, c := range rev.Cases() {
		revIDs = append(revIDs, c.ID)
	}
	if !reflect.DeepEqual(ids, revIDs) {
		t.Errorf("order depends on insertion: %v vs %v", ids, revIDs)
	}
}

func TestEventLogDuplicateCase(t *testing.T) {
	id := CaseID{CID: "a", Host: "h", RID: 1}
	_, err := NewEventLog(NewCase(id, nil), NewCase(id, nil))
	if err == nil {
		t.Fatalf("duplicate case accepted")
	}
}

func TestEventLogFilterPath(t *testing.T) {
	l := demoLog(t)
	f := l.FilterPath("/usr/lib")
	if got, want := f.NumEvents(), 6; got != want {
		t.Errorf("FilterPath events = %d, want %d", got, want)
	}
	if got, want := f.NumCases(), 6; got != want {
		t.Errorf("FilterPath cases = %d, want %d", got, want)
	}
	f.Events(func(e Event) {
		if e.FP != "/usr/lib/libc.so.6" {
			t.Errorf("unexpected event after filter: %v", e)
		}
	})
	// The original log is untouched.
	if got, want := l.NumEvents(), 21; got != want {
		t.Errorf("original mutated: %d events", got)
	}
	// Filtering to nothing drops all cases.
	if empty := l.FilterPath("/no/such/prefix"); empty.NumCases() != 0 {
		t.Errorf("empty filter kept %d cases", empty.NumCases())
	}
}

func TestEventLogFilterCalls(t *testing.T) {
	l := demoLog(t)
	f := l.FilterCalls("openat")
	if got, want := f.NumEvents(), 3; got != want {
		t.Errorf("FilterCalls(openat) = %d events, want %d", got, want)
	}
	if got, want := f.NumCases(), 3; got != want {
		t.Errorf("FilterCalls(openat) = %d cases, want %d", got, want)
	}
}

func TestEventLogPartitionByCID(t *testing.T) {
	l := demoLog(t)
	g, r := l.PartitionByCID("a")
	if g.NumCases() != 3 || r.NumCases() != 3 {
		t.Fatalf("partition sizes = %d/%d, want 3/3", g.NumCases(), r.NumCases())
	}
	for _, c := range g.Cases() {
		if c.ID.CID != "a" {
			t.Errorf("green contains %v", c.ID)
		}
	}
	for _, c := range r.Cases() {
		if c.ID.CID != "b" {
			t.Errorf("red contains %v", c.ID)
		}
	}
	// Partition is exact: together they hold every case exactly once.
	if g.NumCases()+r.NumCases() != l.NumCases() {
		t.Errorf("partition lost cases")
	}
}

func TestUnionDisjoint(t *testing.T) {
	l := demoLog(t)
	g, r := l.PartitionByCID("a")
	u, err := Union(g, r)
	if err != nil {
		t.Fatalf("Union: %v", err)
	}
	if u.NumCases() != l.NumCases() || u.NumEvents() != l.NumEvents() {
		t.Errorf("union = %d cases / %d events, want %d / %d",
			u.NumCases(), u.NumEvents(), l.NumCases(), l.NumEvents())
	}
	if _, err := Union(l, l); err == nil {
		t.Errorf("self-union should fail on duplicate cases")
	}
}

func TestValidateDetectsDuplicateEvents(t *testing.T) {
	// Same event in two cases with identical attributes: the paper notes
	// this happens when strace runs without -f (pid not recorded).
	e := Event{PID: 0, Call: "read", Start: time.Second, Dur: time.Millisecond, FP: "/f", Size: 1}
	c1 := NewCase(CaseID{CID: "a", Host: "h", RID: 1}, []Event{e})
	c2 := NewCase(CaseID{CID: "a", Host: "h", RID: 1}, []Event{e})
	c2.ID.RID = 2
	// Force identical identity attributes on the events themselves.
	c2.Events[0].RID = 1
	l := &EventLog{byID: map[CaseID]*Case{c1.ID: c1, c2.ID: c2}, cases: []*Case{c1, c2}}
	if err := l.Validate(); err == nil {
		t.Errorf("Validate accepted duplicate events")
	}
}

func TestValidateDetectsUnsorted(t *testing.T) {
	c := &Case{ID: CaseID{CID: "a", Host: "h", RID: 1}, Events: []Event{
		{CID: "a", Host: "h", RID: 1, Call: "x", Start: 2},
		{CID: "a", Host: "h", RID: 1, Call: "y", Start: 1},
	}}
	l := MustNewEventLog(c)
	if err := l.Validate(); err == nil {
		t.Errorf("Validate accepted unsorted case")
	}
}

func TestCallNamesAndTotals(t *testing.T) {
	l := demoLog(t)
	want := []string{"openat", "read", "write"}
	if got := l.CallNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("CallNames = %v, want %v", got, want)
	}
	var wantBytes int64
	l.Events(func(e Event) {
		if e.HasSize() {
			wantBytes += e.Size
		}
	})
	if got := l.TotalBytes(); got != wantBytes {
		t.Errorf("TotalBytes = %d, want %d", got, wantBytes)
	}
	if l.TotalDur() <= 0 {
		t.Errorf("TotalDur = %d, want > 0", l.TotalDur())
	}
}

// Property: Filter never changes event order within a case, and
// filter(p) ∘ filter(q) == filter(p ∧ q).
func TestFilterComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gen := func() *EventLog {
		nc := 1 + rng.Intn(4)
		var cases []*Case
		for i := 0; i < nc; i++ {
			ne := rng.Intn(30)
			evs := make([]Event, ne)
			for j := range evs {
				evs[j] = Event{
					PID:   100 + rng.Intn(3),
					Call:  []string{"read", "write", "openat", "lseek"}[rng.Intn(4)],
					Start: time.Duration(rng.Intn(1000)) * time.Millisecond,
					Dur:   time.Duration(rng.Intn(1000)) * time.Microsecond,
					FP:    []string{"/usr/lib/a", "/etc/b", "/scratch/c"}[rng.Intn(3)],
					Size:  int64(rng.Intn(100)) - 1,
				}
			}
			cases = append(cases, NewCase(CaseID{CID: "g", Host: "h", RID: i}, evs))
		}
		return MustNewEventLog(cases...)
	}
	p := func(e Event) bool { return e.Call == "read" || e.Call == "write" }
	q := func(e Event) bool { return e.FP == "/usr/lib/a" }
	for trial := 0; trial < 50; trial++ {
		l := gen()
		lhs := l.Filter(p).Filter(q)
		rhs := l.Filter(func(e Event) bool { return p(e) && q(e) })
		if lhs.NumEvents() != rhs.NumEvents() || lhs.NumCases() != rhs.NumCases() {
			t.Fatalf("filter composition mismatch: %d/%d vs %d/%d",
				lhs.NumCases(), lhs.NumEvents(), rhs.NumCases(), rhs.NumEvents())
		}
		for i, c := range lhs.Cases() {
			rc := rhs.Cases()[i]
			if !reflect.DeepEqual(c.Events, rc.Events) {
				t.Fatalf("filter composition differs in case %v", c.ID)
			}
		}
	}
}

// Property (testing/quick): partition is exact — every case lands in
// exactly one side regardless of the predicate.
func TestPartitionIsExact(t *testing.T) {
	f := func(seed int64, threshold uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var cases []*Case
		n := 1 + rng.Intn(10)
		for i := 0; i < n; i++ {
			cases = append(cases, NewCase(CaseID{CID: "c", Host: "h", RID: i}, nil))
		}
		l := MustNewEventLog(cases...)
		g, r := l.Partition(func(c *Case) bool { return uint8(c.ID.RID*37) < threshold })
		if g.NumCases()+r.NumCases() != l.NumCases() {
			return false
		}
		for _, c := range g.Cases() {
			if r.Case(c.ID) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
