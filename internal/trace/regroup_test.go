package trace

import (
	"testing"
	"time"
)

// multiPIDLog builds a log where one rid recorded events of two child
// pids, the SMT/OpenMP situation of Section IV.
func multiPIDLog(t *testing.T) *EventLog {
	t.Helper()
	id := CaseID{CID: "omp", Host: "h1", RID: 100}
	c := NewCase(id, []Event{
		{PID: 200, Call: "read", Start: 1 * time.Second, Dur: time.Millisecond, FP: "/a", Size: 1},
		{PID: 201, Call: "read", Start: 2 * time.Second, Dur: time.Millisecond, FP: "/a", Size: 1},
		{PID: 200, Call: "write", Start: 3 * time.Second, Dur: time.Millisecond, FP: "/b", Size: 1},
		{PID: 201, Call: "write", Start: 4 * time.Second, Dur: time.Millisecond, FP: "/b", Size: 1},
	})
	id2 := CaseID{CID: "omp", Host: "h1", RID: 101}
	c2 := NewCase(id2, []Event{
		{PID: 210, Call: "openat", Start: 1 * time.Second, Dur: time.Millisecond, FP: "/c", Size: SizeUnknown},
	})
	return MustNewEventLog(c, c2)
}

func TestRegroupByPID(t *testing.T) {
	l := multiPIDLog(t)
	r := l.RegroupByPID()
	if r.NumCases() != 3 {
		t.Fatalf("regrouped cases = %d, want 3 (pids 200, 201, 210)", r.NumCases())
	}
	if r.NumEvents() != l.NumEvents() {
		t.Fatalf("regrouping lost events: %d vs %d", r.NumEvents(), l.NumEvents())
	}
	c200 := r.Case(CaseID{CID: "omp", Host: "h1", RID: 200})
	if c200 == nil || c200.Len() != 2 {
		t.Fatalf("pid-200 case = %v", c200)
	}
	for _, e := range c200.Events {
		if e.PID != 200 || e.RID != 200 {
			t.Errorf("event identity = %+v", e)
		}
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Original untouched.
	if l.NumCases() != 2 {
		t.Errorf("original mutated")
	}
}

func TestRegroupPreservesOrder(t *testing.T) {
	l := multiPIDLog(t)
	r := l.RegroupByPID()
	c := r.Case(CaseID{CID: "omp", Host: "h1", RID: 201})
	if c.Events[0].Call != "read" || c.Events[1].Call != "write" {
		t.Errorf("order broken: %v", c.Events)
	}
	if !c.Sorted() {
		t.Errorf("regrouped case not sorted")
	}
}

func TestSplitByCID(t *testing.T) {
	l := demoLog(t)
	parts := l.SplitByCID()
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	if parts["a"].NumCases() != 3 || parts["b"].NumCases() != 3 {
		t.Errorf("split sizes: a=%d b=%d", parts["a"].NumCases(), parts["b"].NumCases())
	}
	total := 0
	for _, sub := range parts {
		total += sub.NumEvents()
	}
	if total != l.NumEvents() {
		t.Errorf("split lost events")
	}
}

func TestTimeShift(t *testing.T) {
	l := demoLog(t)
	shifted := l.TimeShift(func(id CaseID) time.Duration {
		if id.CID == "b" {
			return time.Hour
		}
		return 0
	})
	var minB, minA time.Duration = 1 << 62, 1 << 62
	shifted.Events(func(e Event) {
		if e.CID == "b" && e.Start < minB {
			minB = e.Start
		}
		if e.CID == "a" && e.Start < minA {
			minA = e.Start
		}
	})
	if minB < time.Hour {
		t.Errorf("b not shifted: %v", minB)
	}
	if minA >= time.Hour {
		t.Errorf("a shifted: %v", minA)
	}
	// Original untouched.
	orig := false
	l.Events(func(e Event) {
		if e.CID == "b" && e.Start < time.Hour {
			orig = true
		}
	})
	if !orig {
		t.Errorf("TimeShift mutated the original log")
	}
}
