package trace

import (
	"testing"
	"time"
)

func mkEvent(cid string, rid, pid int, call string, start, dur time.Duration, fp string, size int64) Event {
	return Event{CID: cid, Host: "host1", RID: rid, PID: pid, Call: call, Start: start, Dur: dur, FP: fp, Size: size}
}

func TestEventEnd(t *testing.T) {
	e := mkEvent("a", 1, 2, "read", 10*time.Second, 3*time.Millisecond, "/etc/passwd", 42)
	if got, want := e.End(), 10*time.Second+3*time.Millisecond; got != want {
		t.Errorf("End() = %v, want %v", got, want)
	}
}

func TestEventHasSize(t *testing.T) {
	with := mkEvent("a", 1, 2, "read", 0, 0, "/f", 0)
	if !with.HasSize() {
		t.Errorf("size 0 should count as a size (zero-byte read at EOF)")
	}
	without := mkEvent("a", 1, 2, "openat", 0, 0, "/f", SizeUnknown)
	if without.HasSize() {
		t.Errorf("SizeUnknown should not count as a size")
	}
}

func TestEventCaseID(t *testing.T) {
	e := mkEvent("b", 9157, 9173, "write", 0, 0, "/dev/pts/7", 9)
	want := CaseID{CID: "b", Host: "host1", RID: 9157}
	if e.CaseID() != want {
		t.Errorf("CaseID() = %v, want %v", e.CaseID(), want)
	}
}

func TestEventInterval(t *testing.T) {
	e := mkEvent("a", 1, 2, "read", time.Second, time.Millisecond, "/f", 1)
	iv := e.Interval()
	if iv.Start != time.Second || iv.End != time.Second+time.Millisecond {
		t.Errorf("Interval() = %+v", iv)
	}
	if iv.Case != e.CaseID() {
		t.Errorf("Interval case = %v, want %v", iv.Case, e.CaseID())
	}
	if got, want := iv.Len(), time.Millisecond; got != want {
		t.Errorf("Len() = %v, want %v", got, want)
	}
}

func TestIntervalOverlaps(t *testing.T) {
	a := Interval{Start: 0, End: 10}
	tests := []struct {
		b    Interval
		want bool
	}{
		{Interval{Start: 5, End: 15}, true},
		{Interval{Start: 10, End: 20}, false}, // touching closed-open ranges do not overlap
		{Interval{Start: -5, End: 0}, false},
		{Interval{Start: -5, End: 1}, true},
		{Interval{Start: 2, End: 3}, true},
	}
	for _, tc := range tests {
		if got := a.Overlaps(tc.b); got != tc.want {
			t.Errorf("Overlaps(%v, %v) = %v, want %v", a, tc.b, got, tc.want)
		}
		if got := tc.b.Overlaps(a); got != tc.want {
			t.Errorf("Overlaps(%v, %v) = %v, want %v (symmetry)", tc.b, a, got, tc.want)
		}
	}
}

func TestFormatTimeOfDay(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want string
	}{
		{0, "00:00:00.000000"},
		{8*time.Hour + 55*time.Minute + 54*time.Second + 153994*time.Microsecond, "08:55:54.153994"},
		{25 * time.Hour, "01:00:00.000000"}, // wraps past midnight
		{23*time.Hour + 59*time.Minute + 59*time.Second + 999999*time.Microsecond, "23:59:59.999999"},
	}
	for _, tc := range tests {
		if got := FormatTimeOfDay(tc.d); got != tc.want {
			t.Errorf("FormatTimeOfDay(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestEventStringForms(t *testing.T) {
	e := mkEvent("a", 9042, 9054, "read", 8*time.Hour, 203*time.Microsecond, "/usr/lib/libc.so.6", 832)
	s := e.String()
	for _, sub := range []string{"a_host1_9042", "read", "/usr/lib/libc.so.6", "=832"} {
		if !contains(s, sub) {
			t.Errorf("String() = %q, missing %q", s, sub)
		}
	}
	o := mkEvent("a", 9042, 9054, "openat", 8*time.Hour, time.Microsecond, "/etc/passwd", SizeUnknown)
	if contains(o.String(), "=") {
		t.Errorf("sizeless String() = %q should not render a size", o.String())
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
