package trace

import (
	"fmt"
	"sort"
	"strings"
)

// EventLog is a set of cases, C = {c1, ..., cn} in the paper's notation.
// Cases are kept in a deterministic order (sorted by CaseID) so that every
// downstream artifact — activity logs, DFGs, rendered output — is
// reproducible run to run.
type EventLog struct {
	cases []*Case
	byID  map[CaseID]*Case
}

// NewEventLog builds an event-log from the given cases. Adding two cases
// with the same identity is an error, mirroring the paper's requirement
// that each trace file is a unique case.
func NewEventLog(cases ...*Case) (*EventLog, error) {
	l := &EventLog{byID: make(map[CaseID]*Case, len(cases))}
	for _, c := range cases {
		if err := l.Add(c); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// MustNewEventLog is NewEventLog for statically known inputs; it panics on
// duplicate case identities.
func MustNewEventLog(cases ...*Case) *EventLog {
	l, err := NewEventLog(cases...)
	if err != nil {
		panic(err)
	}
	return l
}

// Add inserts a case into the log, keeping the deterministic order.
func (l *EventLog) Add(c *Case) error {
	if c == nil {
		return fmt.Errorf("trace: nil case")
	}
	if l.byID == nil {
		l.byID = make(map[CaseID]*Case)
	}
	if _, dup := l.byID[c.ID]; dup {
		return fmt.Errorf("trace: duplicate case %s", c.ID)
	}
	l.byID[c.ID] = c
	i := sort.Search(len(l.cases), func(i int) bool { return !l.cases[i].ID.Less(c.ID) })
	l.cases = append(l.cases, nil)
	copy(l.cases[i+1:], l.cases[i:])
	l.cases[i] = c
	return nil
}

// Cases returns the cases in deterministic (CaseID) order. The slice must
// not be mutated by the caller.
func (l *EventLog) Cases() []*Case { return l.cases }

// Case returns the case with the given identity, or nil.
func (l *EventLog) Case(id CaseID) *Case { return l.byID[id] }

// NumCases returns the number of cases in the log.
func (l *EventLog) NumCases() int { return len(l.cases) }

// NumEvents returns the total number of events across all cases.
func (l *EventLog) NumEvents() int {
	n := 0
	for _, c := range l.cases {
		n += len(c.Events)
	}
	return n
}

// Events calls fn for every event in the log, case by case in
// deterministic order, events in start order within each case.
func (l *EventLog) Events(fn func(Event)) {
	for _, c := range l.cases {
		for _, e := range c.Events {
			fn(e)
		}
	}
}

// Clone returns a deep copy of the event-log.
func (l *EventLog) Clone() *EventLog {
	out := &EventLog{byID: make(map[CaseID]*Case, len(l.cases))}
	for _, c := range l.cases {
		cc := c.Clone()
		out.cases = append(out.cases, cc)
		out.byID[cc.ID] = cc
	}
	return out
}

// Filter returns a new event-log holding, for every case, only the events
// for which keep returns true. Cases that end up empty are dropped, so
// that the filtered log contains no degenerate traces.
func (l *EventLog) Filter(keep func(Event) bool) *EventLog {
	out := &EventLog{byID: make(map[CaseID]*Case)}
	for _, c := range l.cases {
		fc := c.Filter(keep)
		if len(fc.Events) == 0 {
			continue
		}
		out.cases = append(out.cases, fc)
		out.byID[fc.ID] = fc
	}
	return out
}

// FilterPath is the paper's event-log query "apply_fp_filter": it keeps
// only the events whose file path contains the given substring.
func (l *EventLog) FilterPath(substr string) *EventLog {
	return l.Filter(func(e Event) bool { return strings.Contains(e.FP, substr) })
}

// FilterCalls keeps only events whose Call is one of the given names,
// mirroring the strace -e option applied after the fact.
func (l *EventLog) FilterCalls(calls ...string) *EventLog {
	set := make(map[string]bool, len(calls))
	for _, c := range calls {
		set[c] = true
	}
	return l.Filter(func(e Event) bool { return set[e.Call] })
}

// FilterCases returns a new event-log holding only the cases for which
// keep returns true. Cases are shared, not copied.
func (l *EventLog) FilterCases(keep func(*Case) bool) *EventLog {
	out := &EventLog{byID: make(map[CaseID]*Case)}
	for _, c := range l.cases {
		if keep(c) {
			out.cases = append(out.cases, c)
			out.byID[c.ID] = c
		}
	}
	return out
}

// Partition splits the log into two mutually exclusive sub-logs (G, R)
// according to the case predicate: cases for which green returns true go
// to the first log, all others to the second. This is step (a) of the
// partition-based coloring of Section IV-C.
func (l *EventLog) Partition(green func(*Case) bool) (*EventLog, *EventLog) {
	g := &EventLog{byID: make(map[CaseID]*Case)}
	r := &EventLog{byID: make(map[CaseID]*Case)}
	for _, c := range l.cases {
		dst := r
		if green(c) {
			dst = g
		}
		dst.cases = append(dst.cases, c)
		dst.byID[c.ID] = c
	}
	return g, r
}

// PartitionByCID partitions the log by command identifier: cases whose CID
// is in cids become the green subset. The paper's Equation (18) partitions
// C_x into G_x = C_a and R_x = C_b this way.
func (l *EventLog) PartitionByCID(cids ...string) (*EventLog, *EventLog) {
	set := make(map[string]bool, len(cids))
	for _, c := range cids {
		set[c] = true
	}
	return l.Partition(func(c *Case) bool { return set[c.ID.CID] })
}

// Union merges several event-logs into a new one, for example
// C_x = C_a ∪ C_b in Equation (3). Case identities must be disjoint.
func Union(logs ...*EventLog) (*EventLog, error) {
	out := &EventLog{byID: make(map[CaseID]*Case)}
	for _, l := range logs {
		if l == nil {
			continue
		}
		for _, c := range l.cases {
			if err := out.Add(c); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// MustUnion is Union that panics on duplicate case identities.
func MustUnion(logs ...*EventLog) *EventLog {
	out, err := Union(logs...)
	if err != nil {
		panic(err)
	}
	return out
}

// Validate checks the structural invariants of the event-log:
// every case is sorted by start time, every event carries its case's
// identity, and no two events in the whole log are exactly identical
// (the paper's uniqueness requirement on E).
func (l *EventLog) Validate() error {
	seen := make(map[Event]CaseID, l.NumEvents())
	for _, c := range l.cases {
		if !c.Sorted() {
			return fmt.Errorf("trace: case %s is not sorted by start time", c.ID)
		}
		for _, e := range c.Events {
			if e.CaseID() != c.ID {
				return fmt.Errorf("trace: event %v carries identity %s but belongs to case %s", e, e.CaseID(), c.ID)
			}
			if prev, dup := seen[e]; dup {
				return fmt.Errorf("trace: duplicate event in cases %s and %s: %v (was the trace recorded without -f?)", prev, c.ID, e)
			}
			seen[e] = c.ID
		}
	}
	return nil
}

// CallNames returns the sorted set of distinct system call names occurring
// in the log.
func (l *EventLog) CallNames() []string {
	set := make(map[string]bool)
	l.Events(func(e Event) { set[e.Call] = true })
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// TotalBytes returns the sum of Size over all events that carry one.
func (l *EventLog) TotalBytes() int64 {
	var n int64
	l.Events(func(e Event) {
		if e.HasSize() {
			n += e.Size
		}
	})
	return n
}

// TotalDur returns the sum of Dur over all events.
func (l *EventLog) TotalDur() (d int64) {
	l.Events(func(e Event) { d += int64(e.Dur) })
	return d
}
