package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// CaseID identifies a case: the combination of command identifier, host
// name and launching-process identifier that names one trace file
// (Figure 1 of the paper: "<cid>_<host>_<rid>.st").
type CaseID struct {
	CID  string
	Host string
	RID  int
}

// String renders the identifier using the paper's file naming convention
// without the ".st" suffix, for example "a_host1_9042".
func (id CaseID) String() string {
	return fmt.Sprintf("%s_%s_%d", id.CID, id.Host, id.RID)
}

// FileName returns the trace file name for this case, for example
// "a_host1_9042.st".
func (id CaseID) FileName() string { return id.String() + ".st" }

// Less imposes a deterministic total order on case identifiers
// (by CID, then Host, then RID).
func (id CaseID) Less(o CaseID) bool {
	if id.CID != o.CID {
		return id.CID < o.CID
	}
	if id.Host != o.Host {
		return id.Host < o.Host
	}
	return id.RID < o.RID
}

// ParseCaseID parses a trace file name of the form "<cid>_<host>_<rid>.st"
// (or the same without the suffix) into a CaseID. CID and Host may not
// contain underscores that would make the parse ambiguous: the last
// underscore-separated field is the RID and the first is the CID; any
// middle fields are joined back into the host name.
func ParseCaseID(name string) (CaseID, error) {
	base := strings.TrimSuffix(name, ".st")
	parts := strings.Split(base, "_")
	if len(parts) < 3 {
		return CaseID{}, fmt.Errorf("trace: file name %q does not match <cid>_<host>_<rid>[.st]", name)
	}
	rid, err := strconv.Atoi(parts[len(parts)-1])
	if err != nil {
		return CaseID{}, fmt.Errorf("trace: file name %q has non-numeric rid %q", name, parts[len(parts)-1])
	}
	return CaseID{
		CID:  parts[0],
		Host: strings.Join(parts[1:len(parts)-1], "_"),
		RID:  rid,
	}, nil
}

// Case is a group of events belonging to one trace file, arranged in
// non-decreasing order of their start timestamps (Equation (2)).
type Case struct {
	ID     CaseID
	Events []Event
}

// NewCase builds a case from events, stamping each event with the case
// identity and sorting by start time (stable, so ties preserve record
// order, as strace preserves the order of simultaneous events).
func NewCase(id CaseID, events []Event) *Case {
	c := &Case{ID: id, Events: append([]Event(nil), events...)}
	for i := range c.Events {
		c.Events[i].CID = id.CID
		c.Events[i].Host = id.Host
		c.Events[i].RID = id.RID
	}
	c.Sort()
	return c
}

// Sort re-establishes the non-decreasing start-time order of the case.
func (c *Case) Sort() {
	sort.SliceStable(c.Events, func(i, j int) bool {
		return c.Events[i].Start < c.Events[j].Start
	})
}

// Sorted reports whether the events are in non-decreasing start order.
func (c *Case) Sorted() bool {
	for i := 1; i < len(c.Events); i++ {
		if c.Events[i].Start < c.Events[i-1].Start {
			return false
		}
	}
	return true
}

// Len returns the number of events in the case.
func (c *Case) Len() int { return len(c.Events) }

// Clone returns a deep copy of the case.
func (c *Case) Clone() *Case {
	return &Case{ID: c.ID, Events: append([]Event(nil), c.Events...)}
}

// Filter returns a new case holding only the events for which keep returns
// true. Relative order is preserved.
func (c *Case) Filter(keep func(Event) bool) *Case {
	out := &Case{ID: c.ID}
	for _, e := range c.Events {
		if keep(e) {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// Span returns the first start and last end timestamp of the case. The
// second return value is false when the case is empty.
func (c *Case) Span() (Interval, bool) {
	if len(c.Events) == 0 {
		return Interval{}, false
	}
	iv := Interval{Start: c.Events[0].Start, End: c.Events[0].End(), Case: c.ID}
	for _, e := range c.Events[1:] {
		if e.End() > iv.End {
			iv.End = e.End()
		}
	}
	return iv, true
}
