package trace

import (
	"sort"
	"time"
)

// RegroupByPID re-derives the event-log's cases at process granularity:
// events are grouped by (cid, host, pid) instead of (cid, host, rid).
//
// Section IV of the paper defines a case as the events of one trace file
// (one rid) and notes: "we do not distinguish between different SMT or
// OpenMP processes within the same MPI process. However, one could do so
// by re-defining case as a group of events belonging to the same cid,
// host, and pid (instead of rid)." This function implements that
// redefinition.
//
// The PID becomes the RID of the new case identities (the trace-file
// naming convention has no separate pid slot); the events keep their
// original PID attribute. If two different rids on one host share a pid
// (possible only across unrelated recordings), their events merge into
// one case, ordered by start time.
func (l *EventLog) RegroupByPID() *EventLog {
	groups := make(map[CaseID][]Event)
	for _, c := range l.cases {
		for _, e := range c.Events {
			id := CaseID{CID: e.CID, Host: e.Host, RID: e.PID}
			ev := e
			ev.RID = e.PID
			groups[id] = append(groups[id], ev)
		}
	}
	ids := make([]CaseID, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	out := &EventLog{byID: make(map[CaseID]*Case, len(ids))}
	for _, id := range ids {
		c := NewCase(id, groups[id])
		out.cases = append(out.cases, c)
		out.byID[id] = c
	}
	return out
}

// SplitByCID splits the event-log into one log per command identifier,
// keyed by CID. Cases are shared, not copied.
func (l *EventLog) SplitByCID() map[string]*EventLog {
	out := make(map[string]*EventLog)
	for _, c := range l.cases {
		sub, ok := out[c.ID.CID]
		if !ok {
			sub = &EventLog{byID: make(map[CaseID]*Case)}
			out[c.ID.CID] = sub
		}
		sub.cases = append(sub.cases, c)
		sub.byID[c.ID] = c
	}
	return out
}

// TimeShift returns a copy of the log with every event of every case
// shifted by the per-case delta. It is used to emulate clock offsets
// across hosts and to align recordings taken at different times of day.
func (l *EventLog) TimeShift(delta func(CaseID) time.Duration) *EventLog {
	out := l.Clone()
	for _, c := range out.cases {
		d := delta(c.ID)
		for i := range c.Events {
			c.Events[i].Start += d
		}
	}
	return out
}
