// Package trace defines the event model used throughout stinspector.
//
// The model follows Section III and IV of the paper "Inspection of I/O
// Operations from System Call Traces using Directly-Follows-Graph"
// (arXiv:2408.07378): every record of a system call is an Event, the
// time-ordered sequence of events recorded by one process is a Case, and a
// set of cases is an EventLog.
package trace

import (
	"fmt"
	"time"
)

// SizeUnknown is the Size value for events whose system call does not
// transfer bytes through the page cache (for example openat or lseek).
// The paper parses the transfer size only for the variants of read and
// write system calls.
const SizeUnknown int64 = -1

// Event is a single system-call record, Equation (1) of the paper:
//
//	e = [cid, host, rid, pid, call, start, dur, fp, size]
//
// CID, Host and RID are inferred from the name of the trace file; the
// remaining attributes are parsed from the trace records themselves.
type Event struct {
	// CID identifies the traced command (for example "a" for "ls" and
	// "b" for "ls -l" in the paper's running example).
	CID string
	// Host is the name of the machine the recording process ran on.
	Host string
	// RID is the identifier of the launching (MPI) process, taken from
	// the shell variable $$ when the trace file was created.
	RID int
	// PID is the identifier of the process that executed the system
	// call (strace option -f). PID differs from RID when the launcher
	// forks a child to execute the command.
	PID int
	// Call is the system call name, for example "read" or "pwrite64".
	Call string
	// Start is the wall-clock time at the start of the call, measured
	// from an arbitrary per-host epoch (strace -tt records time of day;
	// the methodology does not require synchronized clocks across
	// hosts).
	Start time.Duration
	// Dur is the time between the start and the return of the call
	// (strace option -T).
	Dur time.Duration
	// FP is the path of the accessed file (strace option -y).
	FP string
	// Size is the number of bytes transferred, parsed from the return
	// value of read/write call variants, or SizeUnknown for calls that
	// do not move bytes.
	Size int64
}

// End returns the wall-clock time at which the call returned.
func (e Event) End() time.Duration { return e.Start + e.Dur }

// HasSize reports whether the event carries a byte-transfer size.
func (e Event) HasSize() bool { return e.Size >= 0 }

// CaseID returns the identity of the case this event belongs to.
func (e Event) CaseID() CaseID { return CaseID{CID: e.CID, Host: e.Host, RID: e.RID} }

// String renders the event in a compact, human-oriented form.
func (e Event) String() string {
	if e.HasSize() {
		return fmt.Sprintf("%s[%d] %s %s(%s)=%d <%s>",
			e.CaseID(), e.PID, fmtTimeOfDay(e.Start), e.Call, e.FP, e.Size, e.Dur)
	}
	return fmt.Sprintf("%s[%d] %s %s(%s) <%s>",
		e.CaseID(), e.PID, fmtTimeOfDay(e.Start), e.Call, e.FP, e.Dur)
}

// Equal reports whether two events are identical in every attribute.
// The paper requires that no two events in an event-log are exactly equal;
// EventLog.Validate uses this to detect violations (for example traces
// recorded without the strace -f option).
func (e Event) Equal(o Event) bool { return e == o }

// Interval returns the (start, end) tuple of Equation (14), used by the
// max-concurrency statistic and the timeline plots.
func (e Event) Interval() Interval {
	return Interval{Start: e.Start, End: e.Start + e.Dur, Case: e.CaseID()}
}

// Interval is a [Start, End] time range attributed to a case. It is the
// value t(e) of Equation (14) in the paper, enriched with the case identity
// so that timeline plots (Figure 5) can label their rows.
type Interval struct {
	Start time.Duration
	End   time.Duration
	Case  CaseID
}

// Overlaps reports whether the two closed-open intervals intersect.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start < o.End && o.Start < iv.End
}

// Less is the canonical total order on intervals: by start, then end,
// then case identity. Sorting with it makes interval-set algorithms
// (the max-concurrency sweep, say) independent of the order in which
// the intervals were collected — equal-start ties, including
// zero-duration intervals, always resolve the same way.
func (iv Interval) Less(o Interval) bool {
	if iv.Start != o.Start {
		return iv.Start < o.Start
	}
	if iv.End != o.End {
		return iv.End < o.End
	}
	return iv.Case.Less(o.Case)
}

// Len returns the duration of the interval.
func (iv Interval) Len() time.Duration { return iv.End - iv.Start }

// fmtTimeOfDay formats a duration since midnight as HH:MM:SS.micro, the
// format strace -tt uses.
func fmtTimeOfDay(d time.Duration) string {
	d = d % (24 * time.Hour)
	if d < 0 {
		d += 24 * time.Hour
	}
	h := d / time.Hour
	d -= h * time.Hour
	m := d / time.Minute
	d -= m * time.Minute
	s := d / time.Second
	d -= s * time.Second
	us := d / time.Microsecond
	return fmt.Sprintf("%02d:%02d:%02d.%06d", h, m, s, us)
}

// FormatTimeOfDay renders a Start timestamp the way strace -tt does
// (HH:MM:SS.microseconds). Exported for the strace writer and renderers.
func FormatTimeOfDay(d time.Duration) string { return fmtTimeOfDay(d) }
