package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"stinspector/internal/fsatomic"
	"stinspector/internal/trace"
)

// Config configures the serving daemon.
type Config struct {
	// StateDir holds one subdirectory per session (session.json +
	// checkpoint.sts). Required; created if missing.
	StateDir string
	// RequestTimeout bounds every query request; drain requests get
	// DrainTimeout instead. Default 30s.
	RequestTimeout time.Duration
	// DrainTimeout bounds a drain request (the fold must flush and
	// finalize within it). Default 5m.
	DrainTimeout time.Duration
	// Watchdog is the per-session no-progress window after which a
	// typed WatchdogError is recorded in the session's fault log.
	// Default 1m; negative disables.
	Watchdog time.Duration
}

func (c *Config) setDefaults() {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Minute
	}
	if c.Watchdog == 0 {
		c.Watchdog = time.Minute
	}
}

// Server is the session registry behind the stserve daemon.
type Server struct {
	cfg Config

	mu       sync.Mutex
	defaults SessionConfig
	sessions map[string]*Session
	closed   bool
}

// NewServer builds a server over cfg.StateDir (created if missing).
func NewServer(cfg Config) (*Server, error) {
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("serve: state directory not set")
	}
	cfg.setDefaults()
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, sessions: make(map[string]*Session)}, nil
}

func (s *Server) sessionDir(name string) string {
	return filepath.Join(s.cfg.StateDir, name)
}

// SessionDefaults sets fallback knobs for session configs whose
// corresponding fields are unset at Create time. The filled-in values
// are what gets persisted, so a later restart under different daemon
// defaults rebuilds the session exactly as created.
func (s *Server) SessionDefaults(d SessionConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.defaults = d
}

func (s *Server) applyDefaults(cfg SessionConfig) SessionConfig {
	s.mu.Lock()
	d := s.defaults
	s.mu.Unlock()
	if cfg.Policy == "" {
		cfg.Policy = d.Policy
	}
	if cfg.Budget == 0 {
		cfg.Budget = d.Budget
	}
	if cfg.Every == 0 {
		cfg.Every = d.Every
	}
	if cfg.Shards == 0 {
		cfg.Shards = d.Shards
	}
	return cfg
}

// Create persists and starts a new session. The configuration is
// written atomically to session.json before the pipeline starts, so a
// crash between the two leaves a recoverable (empty) session, never an
// unrecorded running one.
func (s *Server) Create(cfg SessionConfig) (*Session, error) {
	cfg = s.applyDefaults(cfg)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("serve: server closed")
	}
	if _, ok := s.sessions[cfg.Name]; ok {
		return nil, fmt.Errorf("serve: session %q already exists", cfg.Name)
	}
	dir := s.sessionDir(cfg.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	blob, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := fsatomic.WriteFileBytes(filepath.Join(dir, "session.json"), append(blob, '\n')); err != nil {
		return nil, err
	}
	sess, err := newSession(cfg, dir, s.cfg.Watchdog)
	if err != nil {
		return nil, err
	}
	s.sessions[cfg.Name] = sess
	return sess, nil
}

// Recover scans StateDir for persisted sessions and restarts each from
// its checkpoint. It returns the recovered names; per-session failures
// abort the recovery (a daemon must not silently run with a subset of
// its sessions).
func (s *Server) Recover() ([]string, error) {
	ents, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(s.sessionDir(ent.Name()), "session.json"))
		if errors.Is(err, os.ErrNotExist) {
			continue // not a session directory
		}
		if err != nil {
			return names, err
		}
		var cfg SessionConfig
		if err := json.Unmarshal(blob, &cfg); err != nil {
			return names, fmt.Errorf("serve: %s/session.json: %w", ent.Name(), err)
		}
		if cfg.Name != ent.Name() {
			return names, fmt.Errorf("serve: session dir %q names itself %q", ent.Name(), cfg.Name)
		}
		s.mu.Lock()
		_, exists := s.sessions[cfg.Name]
		s.mu.Unlock()
		if exists {
			continue
		}
		sess, err := newSession(cfg, s.sessionDir(cfg.Name), s.cfg.Watchdog)
		if err != nil {
			return names, err
		}
		s.mu.Lock()
		s.sessions[cfg.Name] = sess
		s.mu.Unlock()
		names = append(names, cfg.Name)
	}
	sort.Strings(names)
	return names, nil
}

// Get returns a registered session.
func (s *Server) Get(name string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[name]
	return sess, ok
}

// Remove aborts a session and drops it from the registry. Its state
// directory stays on disk: removal is an operational stop, not a purge.
func (s *Server) Remove(name string) bool {
	s.mu.Lock()
	sess, ok := s.sessions[name]
	delete(s.sessions, name)
	s.mu.Unlock()
	if ok {
		sess.Abort()
	}
	return ok
}

// List snapshots every session's Info, sorted by name.
func (s *Server) List() []Info {
	s.mu.Lock()
	all := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	s.mu.Unlock()
	infos := make([]Info, len(all))
	for i, sess := range all {
		infos[i] = sess.Info()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// DrainAll drains every session concurrently — the graceful-shutdown
// path — and returns the first error. New sessions are refused from the
// moment it starts.
func (s *Server) DrainAll() error {
	s.mu.Lock()
	s.closed = true
	all := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	s.mu.Unlock()

	errc := make(chan error, len(all))
	for _, sess := range all {
		go func(sess *Session) { errc <- sess.Drain() }(sess)
	}
	var first error
	for range all {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// AbortAll hard-stops every session (the non-graceful shutdown path).
func (s *Server) AbortAll() {
	s.mu.Lock()
	s.closed = true
	all := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	s.mu.Unlock()
	for _, sess := range all {
		sess.Abort()
	}
}

// Handler returns the HTTP surface. Query and mutation requests are
// bounded by RequestTimeout; drain requests by DrainTimeout.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("POST /sessions/{name}", s.handleCreate)
	mux.HandleFunc("GET /sessions/{name}/info", s.withSession(func(w http.ResponseWriter, r *http.Request, sess *Session) {
		writeJSON(w, http.StatusOK, sess.Info())
	}))
	mux.HandleFunc("GET /sessions/{name}/{artifact}", s.withSession(s.handleArtifact))
	mux.HandleFunc("POST /sessions/{name}/ingest", s.withSession(s.handleIngest))
	mux.HandleFunc("DELETE /sessions/{name}", func(w http.ResponseWriter, r *http.Request) {
		if !s.Remove(r.PathValue("name")) {
			http.Error(w, "no such session", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	// Drain can legitimately outlive the query timeout: route it around
	// the TimeoutHandler with its own, longer bound.
	drain := http.HandlerFunc(s.withSession(func(w http.ResponseWriter, r *http.Request, sess *Session) {
		if err := sess.Drain(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, sess.Info())
	}))
	outer := http.NewServeMux()
	outer.Handle("POST /sessions/{name}/drain", http.TimeoutHandler(drain, s.cfg.DrainTimeout, "drain timed out"))
	outer.Handle("/", http.TimeoutHandler(mux, s.cfg.RequestTimeout, "request timed out"))
	return outer
}

func (s *Server) withSession(h func(http.ResponseWriter, *http.Request, *Session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sess, ok := s.Get(r.PathValue("name"))
		if !ok {
			http.Error(w, "no such session", http.StatusNotFound)
			return
		}
		h(w, r, sess)
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var cfg SessionConfig
	if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
		http.Error(w, fmt.Sprintf("bad session config: %v", err), http.StatusBadRequest)
		return
	}
	name := r.PathValue("name")
	if cfg.Name == "" {
		cfg.Name = name
	}
	if cfg.Name != name {
		http.Error(w, fmt.Sprintf("body names session %q, path %q", cfg.Name, name), http.StatusBadRequest)
		return
	}
	sess, err := s.Create(cfg)
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := s.Get(name); ok {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, http.StatusCreated, sess.Info())
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request, sess *Session) {
	kind := r.PathValue("artifact")
	out, err := sess.Artifact(kind)
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, out)
	case errors.Is(err, os.ErrNotExist):
		http.Error(w, "no checkpoint yet", http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request, sess *Session) {
	q := r.URL.Query()
	rid, err := strconv.Atoi(q.Get("rid"))
	if err != nil || q.Get("cid") == "" || q.Get("host") == "" {
		http.Error(w, "ingest needs cid, host and numeric rid query parameters", http.StatusBadRequest)
		return
	}
	id := trace.CaseID{CID: q.Get("cid"), Host: q.Get("host"), RID: rid}
	events, dropped, err := sess.Ingest(id, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"events": events, "dropped_lines": dropped})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
