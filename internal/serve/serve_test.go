package serve

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"stinspector/internal/core"
	"stinspector/internal/faultfs"
	"stinspector/internal/snapshot"
	"stinspector/internal/strace"
	"stinspector/internal/synth"
	"stinspector/internal/trace"
)

// writeTraces renders the synthetic log's cases into dir and returns
// the per-file bytes.
func writeTraces(t *testing.T, dir string, cid string, n, per int, seed int64) map[string][]byte {
	t.Helper()
	log := synth.Log(cid, n, per, seed)
	files := make(map[string][]byte)
	for _, c := range log.Cases() {
		var buf bytes.Buffer
		if err := strace.NewWriter(&buf).WriteCase(c); err != nil {
			t.Fatal(err)
		}
		files[c.ID.FileName()] = append([]byte(nil), buf.Bytes()...)
		if err := os.WriteFile(filepath.Join(dir, c.ID.FileName()), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return files
}

// fastSession returns a config tuned for test latency.
func fastSession(name, traceDir string) SessionConfig {
	return SessionConfig{
		Name:     name,
		TraceDir: traceDir,
		Every:    4,
		Shards:   2,
		PollMS:   2,
		GraceMS:  15,
	}
}

func TestSessionConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		cfg SessionConfig
		ok  bool
	}{
		{SessionConfig{Name: "a", TraceDir: "/x"}, true},
		{SessionConfig{Name: "job-1.prod", TraceDir: "/x", Policy: "shed-oldest"}, true},
		{SessionConfig{Name: "", TraceDir: "/x"}, false},
		{SessionConfig{Name: "a/b", TraceDir: "/x"}, false},
		{SessionConfig{Name: "..", TraceDir: "/x"}, false},
		{SessionConfig{Name: "a", TraceDir: ""}, false},
		{SessionConfig{Name: "a", TraceDir: "/x", Policy: "nope"}, false},
		{SessionConfig{Name: "a", TraceDir: "/x", Budget: -1}, false},
	} {
		if err := tc.cfg.validate(); (err == nil) != tc.ok {
			t.Errorf("validate(%+v) = %v, want ok=%v", tc.cfg, err, tc.ok)
		}
	}
}

// TestSessionDrainMatchesBatch: a session draining a static directory
// produces the same artifacts as the batch analysis pipeline.
func TestSessionDrainMatchesBatch(t *testing.T) {
	traceDir := t.TempDir()
	writeTraces(t, traceDir, "srv", 10, 15, 3)

	srv, err := NewServer(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.Create(fastSession("s1", traceDir))
	if err != nil {
		t.Fatal(err)
	}
	// Let the tailer pick everything up, then drain.
	waitPushed(t, sess, 10)
	if err := sess.Drain(); err != nil {
		t.Fatal(err)
	}
	if sess.State() != StateDone {
		t.Fatalf("state = %s, want done", sess.State())
	}
	res, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}

	// Batch ground truth over the same directory and mapping.
	batchSrc, err := strace.StreamDir(traceDir, strace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer batchSrc.Close()
	want, err := core.AnalyzeStreamParallel(batchSrc, sess.cfg.mapping(), 2, false)
	if err != nil {
		t.Fatal(err)
	}

	for _, kind := range []string{"dfg", "stats", "variants"} {
		got, err := sess.Artifact(kind)
		if err != nil {
			t.Fatalf("artifact %s: %v", kind, err)
		}
		if got == "" {
			t.Fatalf("artifact %s empty", kind)
		}
		_ = got
	}
	if res.Cases != want.Cases || res.Events != want.Events {
		t.Errorf("live fold saw %d cases / %d events, batch %d / %d", res.Cases, res.Events, want.Cases, want.Events)
	}
	gotDFG, _ := sess.Artifact("dfg")
	if !strings.Contains(gotDFG, "read:") && !strings.Contains(gotDFG, "write:") {
		t.Errorf("dfg render looks empty:\n%s", gotDFG)
	}
}

func waitPushed(t *testing.T, sess *Session, n uint64, msgs ...string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if sess.live.Pushed() >= n {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d pushed cases (have %d) %v", n, sess.live.Pushed(), msgs)
}

// TestSessionRecoverResumes: abort a session mid-stream, recover the
// server, and the resumed session completes with every case folded
// exactly once.
func TestSessionRecoverResumes(t *testing.T) {
	traceDir := t.TempDir()
	stateDir := t.TempDir()
	writeTraces(t, traceDir, "rec", 12, 12, 7)

	srv, err := NewServer(Config{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastSession("r1", traceDir)
	cfg.Every = 3
	sess, err := srv.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for at least one checkpoint epoch, then hard-abort: the
	// in-process stand-in for SIGKILL. Disk state = committed epochs.
	deadline := time.Now().Add(20 * time.Second)
	for sess.Info().Cases == 0 && time.Now().Before(deadline) {
		time.Sleep(3 * time.Millisecond)
	}
	if sess.Info().Cases == 0 {
		t.Fatal("no checkpoint epoch committed")
	}
	sess.Abort()
	if st := sess.State(); st != StateAborted {
		t.Fatalf("state after abort = %s", st)
	}

	// "Restart the daemon": fresh server over the same state dir.
	srv2, err := NewServer(Config{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	names, err := srv2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "r1" {
		t.Fatalf("recovered %v, want [r1]", names)
	}
	sess2, _ := srv2.Get("r1")
	if err := sess2.Drain(); err != nil {
		t.Fatal(err)
	}
	res, err := sess2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cases != 12 {
		t.Errorf("resumed session folded %d cases, want 12 (each exactly once)", res.Cases)
	}

	// The final checkpoint's Seen set covers every case exactly once.
	snap, err := snapshot.ReadFile(filepath.Join(stateDir, "r1", core.DefaultCheckpointName), cfg.mapping())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Seen) != 12 {
		t.Errorf("checkpoint covers %d cases, want 12", len(snap.Seen))
	}
	seen := make(map[trace.CaseID]bool)
	for _, id := range snap.Seen {
		if seen[id] {
			t.Errorf("case %s folded twice", id)
		}
		seen[id] = true
	}
}

// TestSessionAbortUnblocksWedgedPipeline: with budget 1 and a blocked
// fold (no consumer progress because the queue is saturated by design),
// Abort must return promptly — Close never waits on producers.
func TestSessionAbortUnblocksWedgedPipeline(t *testing.T) {
	traceDir := t.TempDir()
	writeTraces(t, traceDir, "wdg", 8, 10, 9)

	srv, err := NewServer(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastSession("w1", traceDir)
	cfg.Budget = 1
	sess, err := srv.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitPushed(t, sess, 1)

	done := make(chan struct{})
	go func() {
		sess.Abort()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Abort blocked on a wedged pipeline")
	}
}

// TestHTTPEndToEnd drives the full HTTP surface: create, ingest via
// request body, query artifacts and info, drain, delete.
func TestHTTPEndToEnd(t *testing.T) {
	traceDir := t.TempDir()
	files := writeTraces(t, traceDir, "http", 3, 10, 11)

	srv, err := NewServer(Config{StateDir: t.TempDir(), RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.AbortAll()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}
	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	// Artifact on a missing session → 404.
	if code, _ := get("/sessions/nope/dfg"); code != 404 {
		t.Errorf("missing session artifact: %d, want 404", code)
	}
	// Create with a bad config → 400.
	if code, _ := post("/sessions/bad", `{"trace_dir": ""}`); code != 400 {
		t.Errorf("bad create: %d, want 400", code)
	}
	// Create a real session.
	if code, body := post("/sessions/h1", `{"trace_dir": "`+traceDir+`", "every": 2, "poll_ms": 2, "grace_ms": 15}`); code != 201 {
		t.Fatalf("create: %d %s", code, body)
	}
	// Duplicate create → 409.
	if code, _ := post("/sessions/h1", `{"trace_dir": "`+traceDir+`"}`); code != 409 {
		t.Errorf("duplicate create: want 409")
	}

	// Ingest one extra case through the request body.
	var ingestBody []byte
	for _, b := range files {
		ingestBody = b
		break
	}
	if code, body := post("/sessions/h1/ingest?cid=inj&host=hx&rid=99", string(ingestBody)); code != 202 {
		t.Fatalf("ingest: %d %s", code, body)
	} else if !strings.Contains(body, "\"events\"") {
		t.Errorf("ingest response missing events count: %s", body)
	}
	// Bad ingest query → 400.
	if code, _ := post("/sessions/h1/ingest?cid=inj&host=hx&rid=abc", "x"); code != 400 {
		t.Errorf("bad ingest rid: want 400")
	}

	// Drain and verify artifacts + info.
	if code, body := post("/sessions/h1/drain", ""); code != 200 {
		t.Fatalf("drain: %d %s", code, body)
	}
	for _, kind := range []string{"dfg", "stats", "variants", "info"} {
		code, body := get("/sessions/h1/" + kind)
		if code != 200 || body == "" {
			t.Errorf("%s: %d %q", kind, code, body)
		}
	}
	if _, body := get("/sessions/h1/info"); !strings.Contains(body, `"state": "done"`) {
		t.Errorf("info after drain: %s", body)
	}
	if code, _ := get("/sessions/h1/bogus"); code != 400 {
		t.Errorf("bogus artifact: want 400")
	}
	if code, body := get("/sessions"); code != 200 || !strings.Contains(body, "h1") {
		t.Errorf("list: %d %s", code, body)
	}

	// Delete.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/h1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Errorf("delete: %d, want 204", resp.StatusCode)
	}
	if code, _ := get("/sessions/h1/info"); code != 404 {
		t.Errorf("info after delete: want 404")
	}
}

// TestHTTPArtifactBeforeCheckpoint: a session with no checkpoint yet
// answers artifact queries with 404, not a hang or a 500.
func TestHTTPArtifactBeforeCheckpoint(t *testing.T) {
	srv, err := NewServer(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.AbortAll()

	empty := t.TempDir() // no trace files: nothing ever folds
	if _, err := srv.Create(fastSession("e1", empty)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/sessions/e1/dfg")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("pre-checkpoint artifact: %d, want 404", resp.StatusCode)
	}
}

// TestWatchdogFires: a session with no input records a typed watchdog
// fault after its window.
func TestWatchdogFires(t *testing.T) {
	srv, err := NewServer(Config{StateDir: t.TempDir(), Watchdog: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.Create(fastSession("wd", t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Abort()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info := sess.Info()
		for _, f := range info.Faults {
			if strings.Contains(f, "no fold progress") {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("watchdog never fired")
}

// TestSessionFaultsStayOutOfFold: tailer faults (a stall) land in the
// session fault log and the drain still succeeds with clean artifacts.
func TestSessionFaultsStayOutOfFold(t *testing.T) {
	traceDir := t.TempDir()
	writeTraces(t, traceDir, "flt", 4, 8, 13)
	// One extra file that never terminates: complete line, no exit.
	if err := os.WriteFile(filepath.Join(traceDir, "flt_h9_999.st"),
		[]byte("100  10:00:00.000000 read(3</f>, ..., 8) = 8 <0.000010>\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastSession("f1", traceDir)
	cfg.StallMS = 40
	sess, err := srv.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the stall fault shows up.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info := sess.Info()
		if info.Tailer.Stalls > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sess.Info().Tailer.Stalls == 0 {
		t.Fatal("stall never surfaced")
	}
	if err := sess.Drain(); err != nil {
		t.Fatalf("drain failed despite only recoverable faults: %v", err)
	}
	res, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	// 4 complete cases + the stalled file flushed at drain (its one
	// complete record survives).
	if res.Cases != 5 {
		t.Errorf("folded %d cases, want 5", res.Cases)
	}
	found := false
	for _, f := range sess.Info().Faults {
		if strings.Contains(f, "stalled") {
			found = true
		}
	}
	if !found {
		t.Errorf("stall missing from fault log: %v", sess.Info().Faults)
	}
}

// TestServerUnderFaultChurn: sessions fed through the fault-injecting
// appender drain to exactly the expected case count, with no goroutine
// leaked by repeated create/abort cycles.
func TestServerUnderFaultChurn(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	for trial := 0; trial < 3; trial++ {
		traceDir := t.TempDir()
		log := synth.Log("chn", 6, 12, int64(trial+20))
		files := make(map[string][]byte)
		for _, c := range log.Cases() {
			var buf bytes.Buffer
			if err := strace.NewWriter(&buf).WriteCase(c); err != nil {
				t.Fatal(err)
			}
			files[c.ID.FileName()] = append([]byte(nil), buf.Bytes()...)
		}

		srv, err := NewServer(Config{StateDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		sess, err := srv.Create(fastSession("c1", traceDir))
		if err != nil {
			t.Fatal(err)
		}

		app := faultfs.NewAppender(traceDir, int64(trial), faultfs.Plan{
			Chunk: 43, TruncateEveryN: 5, RotateEveryN: 8, Gap: time.Millisecond,
		})
		var wg sync.WaitGroup
		for name, content := range files {
			wg.Add(1)
			go func(name string, content []byte) {
				defer wg.Done()
				if err := app.Replay(name, content); err != nil {
					t.Errorf("replay: %v", err)
				}
			}(name, content)
		}
		wg.Wait()
		waitPushed(t, sess, 6)
		if err := sess.Drain(); err != nil {
			t.Fatal(err)
		}
		res, err := sess.Result()
		if err != nil {
			t.Fatal(err)
		}
		if res.Cases != 6 {
			t.Errorf("trial %d: folded %d cases, want 6", trial, res.Cases)
		}
		srv.AbortAll()
	}

	var goroutinesAfter int
	for i := 0; i < 200; i++ {
		goroutinesAfter = runtime.NumGoroutine()
		if goroutinesAfter <= goroutinesBefore {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if goroutinesAfter > goroutinesBefore+1 {
		t.Errorf("goroutines leaked across sessions: %d before, %d after", goroutinesBefore, goroutinesAfter)
	}
}

// TestRecoverRejectsMismatchedDir: a session.json whose name disagrees
// with its directory fails recovery loudly.
func TestRecoverRejectsMismatchedDir(t *testing.T) {
	stateDir := t.TempDir()
	dir := filepath.Join(stateDir, "x1")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "session.json"), []byte(`{"name":"y2","trace_dir":"/t"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := srv.Recover()
	if rerr == nil {
		t.Fatal("mismatched session dir recovered silently")
	}
	if errors.Is(rerr, os.ErrNotExist) {
		t.Fatal("wrong error")
	}
}
