// Package serve is the live-ingestion service layer: long-lived named
// sessions, each tailing a trace directory through the fault-tolerant
// follower into a bounded-backpressure queue and a checkpointed fold.
// Sessions are crash-safe: every epoch the fold atomically persists its
// pre-Finalize aggregates plus the folded CaseID set, and on restart a
// session resumes from that checkpoint, skipping files already folded —
// the final artifacts are byte-identical to an uninterrupted run.
package serve

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"stinspector/internal/core"
	"stinspector/internal/intern"
	"stinspector/internal/pm"
	"stinspector/internal/render"
	"stinspector/internal/snapshot"
	"stinspector/internal/source"
	"stinspector/internal/strace"
	"stinspector/internal/trace"
)

// SessionConfig is the durable per-session configuration, persisted as
// session.json inside the session's state directory so a restarted
// daemon can rebuild the session exactly.
type SessionConfig struct {
	Name     string `json:"name"`
	TraceDir string `json:"trace_dir"`
	// Policy is the backpressure overflow policy: "block" (default) or
	// "shed-oldest".
	Policy string `json:"policy,omitempty"`
	// Budget is the hard in-flight case budget; 0 means
	// source.DefaultLiveBudget.
	Budget int `json:"budget,omitempty"`
	// Every is the checkpoint epoch size in cases; 0 means 64.
	Every int `json:"every,omitempty"`
	// Shards is the fold parallelism; 0 means GOMAXPROCS.
	Shards int `json:"shards,omitempty"`
	// MapDepth is the CallTopDirs mapping depth; 0 means 2.
	MapDepth int `json:"map_depth,omitempty"`
	// PollMS, GraceMS, StallMS override the follower's poll cadence,
	// emit grace and stall timeout, in milliseconds; 0 keeps the
	// follower defaults.
	PollMS  int `json:"poll_ms,omitempty"`
	GraceMS int `json:"grace_ms,omitempty"`
	StallMS int `json:"stall_ms,omitempty"`
}

func (c *SessionConfig) policy() (source.Policy, error) { return source.ParsePolicy(c.Policy) }

func (c *SessionConfig) mapping() pm.Mapping {
	depth := c.MapDepth
	if depth <= 0 {
		depth = 2
	}
	return pm.CallTopDirs{Depth: depth}
}

func (c *SessionConfig) every() int {
	if c.Every <= 0 {
		return 64
	}
	return c.Every
}

func (c *SessionConfig) validate() error {
	if err := validName(c.Name); err != nil {
		return err
	}
	if c.TraceDir == "" {
		return fmt.Errorf("serve: session %q: trace_dir not set", c.Name)
	}
	if _, err := c.policy(); err != nil {
		return err
	}
	if c.Budget < 0 || c.Every < 0 || c.Shards < 0 || c.MapDepth < 0 {
		return fmt.Errorf("serve: session %q: negative knob", c.Name)
	}
	return nil
}

func validName(name string) error {
	if name == "" {
		return fmt.Errorf("serve: empty session name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("serve: session name %q: only [A-Za-z0-9._-] allowed", name)
		}
	}
	if name == "." || name == ".." {
		return fmt.Errorf("serve: session name %q not allowed", name)
	}
	return nil
}

// SessionState is a session's lifecycle position.
type SessionState string

const (
	StateRunning  SessionState = "running"
	StateDraining SessionState = "draining"
	StateDone     SessionState = "done"    // drained; final artifacts on disk
	StateAborted  SessionState = "aborted" // hard-stopped; checkpoint is the survivor
	StateFailed   SessionState = "failed"  // fold error
)

// maxFaultLog bounds the per-session fault ring buffer.
const maxFaultLog = 64

// Session is one live ingestion pipeline: tailer → sink → bounded Live
// queue → checkpointed fold, with a scoped symbol table so dropping the
// session releases its string vocabulary. Recoverable faults (stalls,
// strict parse failures, unreadable files) land in the session fault
// log, not in the fold's error stream: a fault never poisons the
// artifacts.
type Session struct {
	cfg  SessionConfig
	dir  string // state directory (checkpoint + session.json)
	m    pm.Mapping
	syms *intern.Table

	live   *source.Live
	tailer *strace.Tailer

	mu           sync.Mutex
	state        SessionState
	faults       []string
	seen         map[trace.CaseID]bool // pushed or checkpointed: dedupe guard
	lastProgress time.Time
	ckptCases    int
	res          *core.StreamResult
	foldErr      error

	foldDone  chan struct{}
	drainOnce sync.Once
	abortOnce sync.Once
	wdStop    chan struct{}
}

// WatchdogError is the typed fault the per-session watchdog records
// when a running session has made no fold progress for its window.
type WatchdogError struct {
	Name  string
	Quiet time.Duration
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("serve: session %s: no fold progress for %s", e.Name, e.Quiet.Round(time.Second))
}

// Temporary marks the watchdog signal recoverable — a stalled session
// keeps serving queries from its last checkpoint.
func (e *WatchdogError) Temporary() bool { return true }

// newSession builds and starts the pipeline. dir must exist and hold
// session.json already; resume recovery happens unconditionally (a
// fresh session simply has no checkpoint yet).
func newSession(cfg SessionConfig, dir string, watchdog time.Duration) (*Session, error) {
	pol, err := cfg.policy()
	if err != nil {
		return nil, err
	}
	budget := cfg.Budget
	if budget <= 0 {
		budget = source.DefaultLiveBudget
	}
	s := &Session{
		cfg:          cfg,
		dir:          dir,
		m:            cfg.mapping(),
		syms:         intern.NewTable(),
		live:         source.NewLive(budget, pol),
		state:        StateRunning,
		seen:         make(map[trace.CaseID]bool),
		lastProgress: time.Now(),
		foldDone:     make(chan struct{}),
		wdStop:       make(chan struct{}),
	}

	// Crash recovery: the checkpoint's Seen set tells us which trace
	// files were fully folded. They are skipped at the tailer, deduped
	// at the sink, and filtered once more inside the checkpointed fold
	// (belt and braces — each layer alone suffices).
	ckpt := filepath.Join(dir, core.DefaultCheckpointName)
	var skip []string
	if prev, err := snapshot.ReadFile(ckpt, s.m); err == nil {
		s.ckptCases = len(prev.Seen)
		for _, id := range prev.Seen {
			s.seen[id] = true
			skip = append(skip, id.FileName())
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("serve: session %s: corrupt checkpoint: %w", cfg.Name, err)
	}

	fopts := strace.FollowOptions{Options: strace.Options{Syms: s.syms}}
	if cfg.PollMS > 0 {
		fopts.Poll = time.Duration(cfg.PollMS) * time.Millisecond
	}
	if cfg.GraceMS > 0 {
		fopts.Grace = time.Duration(cfg.GraceMS) * time.Millisecond
	}
	if cfg.StallMS > 0 {
		fopts.StallTimeout = time.Duration(cfg.StallMS) * time.Millisecond
	}
	s.tailer = strace.TailDir(cfg.TraceDir, sessionSink{s: s}, fopts)
	s.tailer.SkipFiles(skip)

	go s.fold()
	s.tailer.Start()
	if watchdog > 0 {
		go s.watchdog(watchdog)
	}
	return s, nil
}

// fold runs the checkpointed analysis until the live source finishes
// (drain) or is closed (abort).
func (s *Session) fold() {
	defer close(s.foldDone)
	res, err := core.AnalyzeStreamCheckpointed(s.live, s.m, s.cfg.Shards, false, core.CheckpointOptions{
		Dir:    s.dir,
		Every:  s.cfg.every(),
		Resume: true,
		OnEpoch: func(cases int) {
			s.mu.Lock()
			s.ckptCases = cases
			s.lastProgress = time.Now()
			s.mu.Unlock()
		},
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.foldErr = err
		if errors.Is(err, source.ErrClosed) {
			s.state = StateAborted
		} else {
			s.state = StateFailed
		}
		return
	}
	s.res = res
	s.state = StateDone
}

// watchdog records a typed fault whenever a running session goes a full
// window without fold progress. It exits with the fold.
func (s *Session) watchdog(window time.Duration) {
	ticker := time.NewTicker(window)
	defer ticker.Stop()
	for {
		select {
		case <-s.foldDone:
			return
		case <-s.wdStop:
			return
		case <-ticker.C:
			s.mu.Lock()
			quiet := time.Since(s.lastProgress)
			stalled := s.state == StateRunning && quiet >= window
			s.mu.Unlock()
			if stalled {
				s.recordFault(&WatchdogError{Name: s.cfg.Name, Quiet: quiet})
			}
		}
	}
}

// sessionSink routes the tailer into the session: completed cases into
// the bounded queue (deduped against recovery's seen set), recoverable
// faults into the fault log — never into the fold's error stream.
type sessionSink struct{ s *Session }

func (k sessionSink) Push(c *trace.Case) error { return k.s.push(c) }
func (k sessionSink) Fail(err error)           { k.s.recordFault(err) }

// push is the dedupe-guarded enqueue shared by the tailer sink and the
// HTTP ingest path.
func (s *Session) push(c *trace.Case) error {
	s.mu.Lock()
	if s.seen[c.ID] {
		s.mu.Unlock()
		return nil
	}
	s.seen[c.ID] = true
	s.lastProgress = time.Now()
	s.mu.Unlock()
	return s.live.Push(c)
}

func (s *Session) recordFault(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.faults) == maxFaultLog {
		copy(s.faults, s.faults[1:])
		s.faults = s.faults[:maxFaultLog-1]
	}
	s.faults = append(s.faults, err.Error())
}

// Ingest feeds one case from a byte stream (the HTTP ingest path) under
// follow-mode line discipline. It reports the events ingested and
// whether an unterminated final line was dropped.
func (s *Session) Ingest(id trace.CaseID, r io.Reader) (events, dropped int, err error) {
	c, dropped, err := strace.FollowReader(id, r, strace.Options{Syms: s.syms})
	if err != nil {
		return 0, dropped, err
	}
	if err := s.push(c); err != nil {
		return 0, dropped, err
	}
	return len(c.Events), dropped, nil
}

// Drain finishes the session gracefully: the tailer flushes every file
// it knows from the records already complete, the queue is sealed, and
// the fold runs to EOF — writing the final checkpoint. Blocks until the
// artifacts are durable. Idempotent.
func (s *Session) Drain() error {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		if s.state == StateRunning {
			s.state = StateDraining
		}
		s.mu.Unlock()
		s.tailer.Drain()
		s.live.Finish()
	})
	<-s.foldDone
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.foldErr
}

// Abort hard-stops the session: the queue is closed (producers and the
// fold wake immediately; Close never waits for a wedged producer), the
// tailer abandons its files, and in-flight work past the last
// checkpoint is discarded. The checkpoint on disk is the recovery
// point. Idempotent; safe after Drain (then a no-op on a finished
// pipeline).
func (s *Session) Abort() {
	s.abortOnce.Do(func() {
		close(s.wdStop)
		s.live.Close()
		s.tailer.Stop()
	})
	<-s.foldDone
}

// State reports the lifecycle position.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Result returns the final artifacts after a successful Drain.
func (s *Session) Result() (*core.StreamResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.res == nil {
		return nil, fmt.Errorf("serve: session %s: no final result (state %s)", s.cfg.Name, s.state)
	}
	return s.res, nil
}

// Info is the queryable session status.
type Info struct {
	Name         string           `json:"name"`
	State        SessionState     `json:"state"`
	Cases        int              `json:"cases"` // covered by the last checkpoint
	Pushed       uint64           `json:"pushed"`
	Shed         uint64           `json:"shed"`
	Resident     int              `json:"resident"`
	PeakResident int              `json:"peak_resident"`
	Policy       string           `json:"policy"`
	Budget       int              `json:"budget"`
	Tailer       strace.TailStats `json:"tailer"`
	Faults       []string         `json:"faults,omitempty"`
	LastProgress time.Time        `json:"last_progress"`
}

// Info snapshots the session's counters and fault log.
func (s *Session) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	pol, _ := s.cfg.policy()
	budget := s.cfg.Budget
	if budget <= 0 {
		budget = source.DefaultLiveBudget
	}
	return Info{
		Name:         s.cfg.Name,
		State:        s.state,
		Cases:        s.ckptCases,
		Pushed:       s.live.Pushed(),
		Shed:         s.live.Shed(),
		Resident:     s.live.Resident(),
		PeakResident: s.live.PeakResident(),
		Policy:       pol.String(),
		Budget:       budget,
		Tailer:       s.tailer.Stats(),
		Faults:       append([]string(nil), s.faults...),
		LastProgress: s.lastProgress,
	}
}

// Artifact renders a query artifact from the session's most recent
// durable state — the checkpoint on disk while the fold is running, or
// the final result after Drain. Kinds: "dfg", "stats", "variants",
// "behavior". os.ErrNotExist surfaces when no checkpoint has been
// written yet.
func (s *Session) Artifact(kind string) (string, error) {
	s.mu.Lock()
	res := s.res
	s.mu.Unlock()
	if res == nil {
		var err error
		res, err = core.MergeSnapshotFiles(s.m, filepath.Join(s.dir, core.DefaultCheckpointName))
		if err != nil {
			return "", err
		}
	}
	switch kind {
	case "dfg":
		return render.RenderText(res.DFG, res.Stats, nil), nil
	case "stats":
		return render.StatsTable(res.Stats), nil
	case "variants":
		var b []byte
		for _, v := range res.ActivityLog.Variants() {
			b = fmt.Appendf(b, "%4d× %s\n", v.Mult, v.Seq)
		}
		return string(b), nil
	case "behavior":
		return res.Behavior.RenderText(), nil
	default:
		return "", fmt.Errorf("serve: unknown artifact %q (want dfg, stats, variants or behavior)", kind)
	}
}
