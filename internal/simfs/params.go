// Package simfs models a GPFS-like parallel filesystem in virtual time.
// It substitutes for the JUWELS/JUST storage stack of the paper's
// experiments (Section V): system calls issued by simulated ranks receive
// durations computed from a contention model with three mechanisms, each
// mirroring a documented GPFS behaviour:
//
//  1. Shared-inode open serialization — writable opens of one file by
//     many ranks serialize on the file's metanode (the cause of the large
//     "openat $SCRATCH/ssf" load in Figure 8b).
//  2. Directory-create serialization — creating many files in one
//     directory serializes on the directory metanode (the smaller
//     metadata cost of the file-per-process mode).
//  3. Byte-range write tokens — the first writer receives a
//     to-end-of-file token grant; writes into a range granted to another
//     rank revoke it through the file's token manager, a serialized
//     operation (the cause of the "write $SCRATCH/ssf" load; a sole
//     writer, as in file-per-process mode, never pays it).
//
// Reads switch a file into shared-read mode once (one serialized token
// transition) and then proceed at stream bandwidth, matching the low read
// loads of Figure 8.
//
// All state is virtual; no real I/O happens. The model is driven by the
// mpisim discrete-event engine, which guarantees arrival-order
// determinism.
package simfs

import "time"

// Params calibrates the filesystem model. The defaults are tuned so that
// the IOR experiments of the paper (96 ranks, 2 hosts, 3 segments of one
// 16 MiB block in 1 MiB transfers) reproduce the relative-duration
// ordering of Figures 8 and 9; they are not claims about absolute JUWELS
// latencies.
type Params struct {
	// OpenBase is the cost of an uncontended open; CreateExtra is
	// added when the open creates the file.
	OpenBase    time.Duration
	CreateExtra time.Duration
	// SharedOpenSvc is the serialized metanode service time charged to
	// every writable open of a file that other ranks have already
	// opened.
	SharedOpenSvc time.Duration
	// DirCreateSvc is the serialized per-create service time of a
	// directory metanode.
	DirCreateSvc time.Duration
	// WriteTokenSvc is the serialized token-manager service time of a
	// byte-range revocation; ReadSwitchSvc is the one-time cost of
	// switching a written file into shared-read mode.
	WriteTokenSvc time.Duration
	ReadSwitchSvc time.Duration
	// GrantBytes is the size of the byte-range token granted on a
	// write (GPFS grants a probable range around the access; the
	// default matches the experiments' 16 MiB block, so one grant
	// covers one block).
	GrantBytes int64
	// WriteBW / ReadBW are per-stream data bandwidths to the parallel
	// filesystem; LocalBW is the bandwidth of node-local paths
	// (/dev/shm, /tmp).
	WriteBW float64
	ReadBW  float64
	LocalBW float64
	// SmallOp is the cost of cheap calls (lseek, close).
	SmallOp time.Duration
	// FsyncBase is the cost of fsync.
	FsyncBase time.Duration
	// Jitter is the relative spread applied to every duration.
	Jitter float64
	// LocalPrefixes classify node-local paths (no token protocol).
	LocalPrefixes []string
	// DisableWriteTokens turns mechanism 3 off; DisableSharedOpen
	// turns mechanism 1 off. Both exist for the ablation experiments,
	// which show the Figure 8b ordering collapsing without them.
	DisableWriteTokens bool
	DisableSharedOpen  bool
}

// DefaultParams returns the calibrated model.
func DefaultParams() Params {
	return Params{
		OpenBase:      25 * time.Microsecond,
		CreateExtra:   60 * time.Microsecond,
		SharedOpenSvc: 350 * time.Millisecond,
		DirCreateSvc:  3 * time.Millisecond,
		WriteTokenSvc: 55 * time.Millisecond,
		ReadSwitchSvc: 40 * time.Millisecond,
		GrantBytes:    16 << 20,
		WriteBW:       3.4e9,
		ReadBW:        4.6e9,
		LocalBW:       2.2e9,
		SmallOp:       1500 * time.Nanosecond,
		FsyncBase:     3 * time.Millisecond,
		Jitter:        0.15,
		LocalPrefixes: []string{"/dev/shm", "/tmp"},
	}
}
