package simfs

import (
	"fmt"
	"testing"
	"time"
)

func newFS() *FS { return New(DefaultParams(), 1) }

func TestOpenBasics(t *testing.T) {
	fs := newFS()
	d := fs.Open(0, 0, "/p/scratch/user/ssf/test", true)
	if d <= 0 {
		t.Fatalf("open duration = %v", d)
	}
	// First (creating) open pays the directory create service but no
	// shared-open penalty.
	if fs.SharedOpens != 0 || fs.DirCreates != 1 {
		t.Errorf("counters after first open: shared=%d creates=%d", fs.SharedOpens, fs.DirCreates)
	}
}

func TestSharedOpenSerialization(t *testing.T) {
	fs := newFS()
	path := "/p/scratch/user/ssf/test"
	first := fs.Open(0, 0, path, true)
	var durs []time.Duration
	// Many ranks open the shared file at the same instant: the
	// metanode serializes them, so durations must grow roughly
	// linearly with queue position (mechanism 1).
	for rank := 1; rank <= 10; rank++ {
		durs = append(durs, fs.Open(rank, first, path, true))
	}
	if fs.SharedOpens != 10 {
		t.Fatalf("shared opens = %d", fs.SharedOpens)
	}
	for i := 1; i < len(durs); i++ {
		if durs[i] <= durs[i-1] {
			t.Errorf("open %d (%v) not slower than open %d (%v) under contention",
				i, durs[i], i-1, durs[i-1])
		}
	}
	p := DefaultParams()
	if durs[9] < 8*p.SharedOpenSvc {
		t.Errorf("10th queued open = %v, want ≥ 8×%v", durs[9], p.SharedOpenSvc)
	}
}

func TestReadOnlySharedOpensCheap(t *testing.T) {
	fs := newFS()
	path := "/p/software/lib/libc.so.6"
	for rank := 0; rank < 20; rank++ {
		d := fs.Open(rank, 0, path, false)
		if d > time.Millisecond {
			t.Fatalf("read-only open of shared lib took %v", d)
		}
	}
	if fs.SharedOpens != 0 {
		t.Errorf("read-only opens counted as shared: %d", fs.SharedOpens)
	}
}

func TestDirCreateSerialization(t *testing.T) {
	fs := newFS()
	var last time.Duration
	for rank := 0; rank < 8; rank++ {
		d := fs.Open(rank, 0, fmt.Sprintf("/p/scratch/user/fpp/test.%08d", rank), true)
		if rank > 0 && d <= last {
			t.Errorf("create %d (%v) not slower than %d (%v): directory metanode must serialize",
				rank, d, rank-1, last)
		}
		last = d
	}
	if fs.DirCreates != 8 {
		t.Errorf("dir creates = %d", fs.DirCreates)
	}
	// Creates in different directories do not serialize with each
	// other.
	fs2 := newFS()
	d1 := fs2.Open(0, 0, "/p/scratch/user/d1/f", true)
	d2 := fs2.Open(1, 0, "/p/scratch/user/d2/f", true)
	if d2 > d1*2 {
		t.Errorf("cross-directory create serialized: %v then %v", d1, d2)
	}
}

func TestWriteTokenMechanism(t *testing.T) {
	fs := newFS()
	path := "/p/scratch/user/ssf/test"
	const mb = 1 << 20

	// Sole writer: first write gets a free to-EOF grant; sequential
	// writes stay at stream bandwidth.
	d0 := fs.Write(0, 0, path, 0, mb)
	if fs.Revocations != 0 {
		t.Fatalf("first write revoked: %d", fs.Revocations)
	}
	streamMax := 2 * time.Duration(float64(mb)/fs.Params().WriteBW*float64(time.Second))
	if d0 > streamMax {
		t.Errorf("uncontended write = %v, want ≤ %v", d0, streamMax)
	}
	d1 := fs.Write(0, 0, path, mb, mb)
	if d1 > streamMax || fs.Revocations != 0 {
		t.Errorf("sequential write by owner = %v (revocations %d)", d1, fs.Revocations)
	}

	// Another rank writing above revokes (the first grant extends to
	// EOF).
	d2 := fs.Write(1, 0, path, 16*mb, mb)
	if fs.Revocations != 1 {
		t.Fatalf("revocations = %d, want 1", fs.Revocations)
	}
	if d2 < fs.Params().WriteTokenSvc/2 {
		t.Errorf("revoking write = %v, want ≥ ~%v", d2, fs.Params().WriteTokenSvc)
	}

	// Rank 0 still owns its original range below rank 1's grant.
	d3 := fs.Write(0, 0, path, 2*mb, mb)
	if fs.Revocations != 1 {
		t.Errorf("write into own retained range revoked (revocations %d)", fs.Revocations)
	}
	if d3 > streamMax {
		t.Errorf("own-range write slow: %v", d3)
	}

	// Rank 0 writing into rank 1's granted region revokes again.
	fs.Write(0, 0, path, 17*mb, mb)
	if fs.Revocations != 2 {
		t.Errorf("revocations = %d, want 2", fs.Revocations)
	}
}

func TestTokenManagerQueues(t *testing.T) {
	fs := newFS()
	path := "/p/scratch/user/ssf/test"
	const mb = 1 << 20
	fs.Write(0, 0, path, 0, mb)
	// 8 ranks revoke at the same instant: queue positions show in the
	// durations.
	var durs []time.Duration
	for rank := 1; rank <= 8; rank++ {
		durs = append(durs, fs.Write(rank, 0, path, int64(rank)*16*mb, mb))
	}
	for i := 1; i < len(durs); i++ {
		if durs[i] <= durs[i-1] {
			t.Errorf("queued revocation %d (%v) not slower than %d (%v)", i, durs[i], i-1, durs[i-1])
		}
	}
}

func TestFilePerProcessNoRevocations(t *testing.T) {
	fs := newFS()
	const mb = 1 << 20
	for rank := 0; rank < 16; rank++ {
		path := fmt.Sprintf("/p/scratch/user/fpp/test.%08d", rank)
		for seg := 0; seg < 3; seg++ {
			for tr := 0; tr < 16; tr++ {
				off := int64(seg*16+tr) * mb
				fs.Write(rank, 0, path, off, mb)
			}
		}
	}
	if fs.Revocations != 0 {
		t.Errorf("file-per-process writes caused %d revocations", fs.Revocations)
	}
}

func TestReadSwitch(t *testing.T) {
	fs := newFS()
	path := "/p/scratch/user/ssf/test"
	const mb = 1 << 20
	fs.Write(0, 0, path, 0, mb)
	fs.Write(1, 0, path, 16*mb, mb)

	// First read pays the shared-read switch.
	d := fs.Read(2, 0, path, 0, mb)
	if fs.ReadSwitches != 1 {
		t.Fatalf("read switches = %d", fs.ReadSwitches)
	}
	if d < fs.Params().ReadSwitchSvc/2 {
		t.Errorf("switching read = %v", d)
	}
	// Subsequent reads stream.
	streamMax := 2 * time.Duration(float64(mb)/fs.Params().ReadBW*float64(time.Second))
	for rank := 0; rank < 8; rank++ {
		if d := fs.Read(rank, 0, path, int64(rank)*mb, mb); d > streamMax {
			t.Errorf("post-switch read = %v, want ≤ %v", d, streamMax)
		}
	}
	if fs.ReadSwitches != 1 {
		t.Errorf("read switches = %d after streaming reads", fs.ReadSwitches)
	}
	// Writing again drops shared-read mode.
	fs.Write(0, 0, path, 0, mb)
	fs.Read(1, 0, path, 0, mb)
	if fs.ReadSwitches != 2 {
		t.Errorf("write-after-read did not force a new switch: %d", fs.ReadSwitches)
	}
}

func TestNodeLocalBypassesTokens(t *testing.T) {
	fs := newFS()
	const kb66 = 66_000
	for rank := 0; rank < 8; rank++ {
		d := fs.Write(rank, 0, "/dev/shm/psm2_shm.0", 0, kb66)
		if d > time.Millisecond {
			t.Errorf("node-local write = %v", d)
		}
	}
	if fs.Revocations != 0 || fs.SharedOpens != 0 {
		t.Errorf("node-local I/O hit the token path")
	}
	if d := fs.Open(0, 0, "/tmp/x", true); d > time.Millisecond {
		t.Errorf("node-local open = %v", d)
	}
}

func TestSmallOps(t *testing.T) {
	fs := newFS()
	if d := fs.Seek(); d <= 0 || d > 100*time.Microsecond {
		t.Errorf("lseek = %v", d)
	}
	if d := fs.Close(); d <= 0 || d > 100*time.Microsecond {
		t.Errorf("close = %v", d)
	}
	if d := fs.Fsync("/p/scratch/user/ssf/test"); d <= 0 || d > 100*time.Millisecond {
		t.Errorf("fsync = %v", d)
	}
}

func TestAblationSwitches(t *testing.T) {
	p := DefaultParams()
	p.DisableWriteTokens = true
	p.DisableSharedOpen = true
	fs := New(p, 1)
	path := "/p/scratch/user/ssf/test"
	const mb = 1 << 20
	fs.Open(0, 0, path, true)
	for rank := 1; rank < 8; rank++ {
		if d := fs.Open(rank, 0, path, true); d > time.Millisecond {
			t.Errorf("ablated shared open = %v", d)
		}
	}
	for rank := 0; rank < 8; rank++ {
		if d := fs.Write(rank, 0, path, int64(rank)*16*mb, mb); d > time.Millisecond {
			t.Errorf("ablated interleaved write = %v", d)
		}
	}
	if fs.Revocations != 0 || fs.SharedOpens != 0 {
		t.Errorf("ablation did not disable mechanisms: rev=%d shared=%d", fs.Revocations, fs.SharedOpens)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		fs := New(DefaultParams(), 42)
		var out []time.Duration
		path := "/p/scratch/user/ssf/test"
		fs.Open(0, 0, path, true)
		for rank := 0; rank < 10; rank++ {
			out = append(out, fs.Write(rank, 0, path, int64(rank)*1<<24, 1<<20))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("durations diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestReadOwnFileNoSwitch(t *testing.T) {
	fs := newFS()
	path := "/p/scratch/user/own/ckpt"
	const mb = 1 << 20
	fs.Open(0, 0, path, true)
	fs.Write(0, 0, path, 0, mb)
	// The writer reading back its own file holds all tokens: no switch.
	d := fs.Read(0, 0, path, 0, mb)
	if fs.ReadSwitches != 0 {
		t.Errorf("owner read-back switched: %d", fs.ReadSwitches)
	}
	streamMax := 2 * time.Duration(float64(mb)/fs.Params().ReadBW*float64(time.Second))
	if d > streamMax {
		t.Errorf("owner read-back slow: %v", d)
	}
	// A different rank reading does switch.
	fs.Read(1, 0, path, 0, mb)
	if fs.ReadSwitches != 1 {
		t.Errorf("foreign read did not switch: %d", fs.ReadSwitches)
	}
}
