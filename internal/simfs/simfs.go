package simfs

import (
	"sort"
	"strings"
	"time"

	"stinspector/internal/vclock"
)

// FS is the filesystem model. It is not safe for concurrent use; the
// mpisim engine drives it from a single goroutine in virtual-time order.
type FS struct {
	p     Params
	rng   *vclock.RNG
	files map[string]*fileState
	dirs  map[string]*dirState

	// Counters for tests and ablation reports.
	Revocations  int
	SharedOpens  int
	DirCreates   int
	ReadSwitches int
}

// grant is one bounded byte-range token grant [start, end) owned by a
// rank. The first writer of a file additionally becomes its default
// owner: it holds the residual whole-file token, and other ranks' grants
// are split off it on demand (GPFS's token-split behaviour on growing
// files).
type grant struct {
	start, end int64
	owner      int
}

type fileState struct {
	exists bool
	// openedBy tracks ranks that opened the file writable.
	openedBy map[int]bool
	// metaBusy is the metanode queue for writable shared opens.
	metaBusy time.Duration
	// tokenBusy is the token-manager queue (revocations, read switch).
	tokenBusy time.Duration
	// defaultOwner holds the residual whole-file write token
	// (-1: nobody has written yet).
	defaultOwner int
	// grants are the bounded write-token ranges, sorted by start.
	grants []grant
	// readShared marks the file as switched to shared-read mode.
	readShared bool
}

type dirState struct {
	createBusy time.Duration
}

// New builds a filesystem model.
func New(p Params, seed int64) *FS {
	return &FS{
		p:     p,
		rng:   vclock.NewRNG(seed),
		files: make(map[string]*fileState),
		dirs:  make(map[string]*dirState),
	}
}

// Params returns the model calibration.
func (fs *FS) Params() Params { return fs.p }

func (fs *FS) file(path string) *fileState {
	f, ok := fs.files[path]
	if !ok {
		f = &fileState{openedBy: make(map[int]bool), defaultOwner: -1}
		fs.files[path] = f
	}
	return f
}

func (fs *FS) dir(path string) *dirState {
	i := strings.LastIndexByte(path, '/')
	key := "/"
	if i > 0 {
		key = path[:i]
	}
	d, ok := fs.dirs[key]
	if !ok {
		d = &dirState{}
		fs.dirs[key] = d
	}
	return d
}

func (fs *FS) local(path string) bool {
	for _, p := range fs.p.LocalPrefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

func (fs *FS) jitter(d time.Duration) time.Duration {
	return fs.rng.Jitter(d, fs.p.Jitter)
}

// serialize charges a serialized service interval on the queue clock:
// the request waits until the queue is free, holds it for svc, and the
// call returns the total time spent (wait + service).
func serialize(queue *time.Duration, now time.Duration, svc time.Duration) time.Duration {
	start := now
	if *queue > start {
		start = *queue
	}
	*queue = start + svc
	return start + svc - now
}

// Open models openat. Writable opens of a shared file pay the metanode
// serialization (mechanism 1); creates pay the directory serialization
// (mechanism 2). Returns the call duration.
func (fs *FS) Open(rank int, now time.Duration, path string, writable bool) time.Duration {
	dur := fs.jitter(fs.p.OpenBase)
	if fs.local(path) {
		fs.file(path).exists = true
		return dur
	}
	f := fs.file(path)
	creating := writable && !f.exists
	if creating {
		dur += fs.jitter(fs.p.CreateExtra)
		fs.DirCreates++
		dur += serialize(&fs.dir(path).createBusy, now+dur, fs.jitter(fs.p.DirCreateSvc))
	}
	if writable && !fs.p.DisableSharedOpen {
		shared := false
		for r := range f.openedBy {
			if r != rank {
				shared = true
				break
			}
		}
		if shared {
			fs.SharedOpens++
			dur += serialize(&f.metaBusy, now+dur, fs.jitter(fs.p.SharedOpenSvc))
		}
	}
	f.exists = true
	if writable {
		f.openedBy[rank] = true
	}
	return dur
}

// Write models a write of size bytes at the given offset. The first
// access to a range granted to another rank revokes the token through
// the file's serialized token manager (mechanism 3).
func (fs *FS) Write(rank int, now time.Duration, path string, offset, size int64) time.Duration {
	if fs.local(path) {
		return fs.jitter(time.Duration(float64(size) / fs.p.LocalBW * float64(time.Second)))
	}
	f := fs.file(path)
	f.exists = true
	var dur time.Duration
	if !fs.p.DisableWriteTokens {
		gb := fs.p.GrantBytes
		if gb <= 0 {
			gb = 16 << 20
		}
		owner, owned := f.owner(offset)
		switch {
		case !owned:
			// First writer: takes the residual whole-file token
			// for free and a bounded grant over the access range.
			f.defaultOwner = rank
			f.setGrant(offset, gb, rank)
		case owner != rank:
			// Revoke through the token manager, then re-grant.
			fs.Revocations++
			dur += serialize(&f.tokenBusy, now, fs.jitter(fs.p.WriteTokenSvc))
			f.setGrant(offset, gb, rank)
		}
		f.readShared = false
	}
	dur += fs.jitter(time.Duration(float64(size) / fs.p.WriteBW * float64(time.Second)))
	return dur
}

// Read models a read of size bytes. The first read of a file holding
// write grants of *other* ranks performs the one-time switch to
// shared-read mode through the token manager; afterwards reads stream at
// read bandwidth. A rank reading back a file whose tokens it holds
// exclusively (its own checkpoint, its own temporary file) pays nothing —
// it already owns the byte ranges.
func (fs *FS) Read(rank int, now time.Duration, path string, offset, size int64) time.Duration {
	if fs.local(path) {
		return fs.jitter(time.Duration(float64(size) / fs.p.LocalBW * float64(time.Second)))
	}
	f := fs.file(path)
	var dur time.Duration
	if !f.readShared && f.heldByOther(rank) && !fs.p.DisableWriteTokens {
		fs.ReadSwitches++
		dur += serialize(&f.tokenBusy, now, fs.jitter(fs.p.ReadSwitchSvc))
		f.grants = f.grants[:0]
		f.defaultOwner = -1
		f.readShared = true
	}
	dur += fs.jitter(time.Duration(float64(size) / fs.p.ReadBW * float64(time.Second)))
	return dur
}

// heldByOther reports whether any write token of the file belongs to a
// rank other than the given one.
func (f *fileState) heldByOther(rank int) bool {
	if f.defaultOwner >= 0 && f.defaultOwner != rank {
		return true
	}
	for _, g := range f.grants {
		if g.owner != rank {
			return true
		}
	}
	return false
}

// Unlink models file removal: a directory-metanode operation that
// serializes with creates and other unlinks in the same directory
// (mechanism 2), releasing the file's token state.
func (fs *FS) Unlink(rank int, now time.Duration, path string) time.Duration {
	dur := fs.jitter(fs.p.OpenBase)
	if fs.local(path) {
		delete(fs.files, path)
		return dur
	}
	fs.DirCreates++
	dur += serialize(&fs.dir(path).createBusy, now+dur, fs.jitter(fs.p.DirCreateSvc))
	delete(fs.files, path)
	return dur
}

// Seek models lseek.
func (fs *FS) Seek() time.Duration { return fs.jitter(fs.p.SmallOp) }

// Close models close.
func (fs *FS) Close() time.Duration { return fs.jitter(fs.p.SmallOp) }

// Fsync models fsync on a file.
func (fs *FS) Fsync(path string) time.Duration {
	return fs.jitter(fs.p.FsyncBase)
}

// owner returns the rank holding the write token covering offset: the
// bounded grant containing it, or the default owner's residual token.
func (f *fileState) owner(offset int64) (rank int, ok bool) {
	i := sort.Search(len(f.grants), func(i int) bool { return f.grants[i].start > offset })
	if i > 0 && offset < f.grants[i-1].end {
		return f.grants[i-1].owner, true
	}
	if f.defaultOwner >= 0 {
		return f.defaultOwner, true
	}
	return 0, false
}

// setGrant records a bounded grant [offset, offset+size) for the rank,
// removing every existing grant it overlaps (their holders lose those
// ranges).
func (f *fileState) setGrant(offset, size int64, rank int) {
	end := offset + size
	out := f.grants[:0]
	for _, g := range f.grants {
		if g.end <= offset || g.start >= end {
			out = append(out, g)
		}
	}
	f.grants = out
	i := sort.Search(len(f.grants), func(i int) bool { return f.grants[i].start > offset })
	f.grants = append(f.grants, grant{})
	copy(f.grants[i+1:], f.grants[i:])
	f.grants[i] = grant{start: offset, end: end, owner: rank}
}
