package fsatomic

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")

	if err := WriteFileBytes(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "first" {
		t.Fatalf("read back %q, %v", got, err)
	}

	// Replacement is atomic: the old content is fully superseded.
	if err := WriteFileBytes(path, []byte("second, longer content")); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil || string(got) != "second, longer content" {
		t.Fatalf("read back %q, %v", got, err)
	}
	assertNoTempLitter(t, dir)
}

// A failing write callback must leave the destination untouched — both
// when it did not exist and when a previous version was on disk — and
// must not litter the directory with temporary files.
func TestWriteFileErrorLeavesDestination(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	boom := errors.New("boom")

	err := WriteFile(path, func(w io.Writer) error {
		w.Write([]byte("partial bytes that must never land"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination exists after failed first write: %v", err)
	}

	if err := WriteFileBytes(path, []byte("good")); err != nil {
		t.Fatal(err)
	}
	err = WriteFile(path, func(w io.Writer) error {
		w.Write([]byte("torn"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "good" {
		t.Fatalf("previous content lost: %q, %v", got, err)
	}
	assertNoTempLitter(t, dir)
}

func TestWriteFileMissingDirectory(t *testing.T) {
	err := WriteFileBytes(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"))
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}

func assertNoTempLitter(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temporary file left behind: %s", e.Name())
		}
	}
}
