// Package fsatomic provides crash-safe file replacement: every write
// lands in a temporary file in the destination directory, is synced to
// stable storage, and is renamed over the destination in one atomic
// step. A reader therefore only ever observes the old complete file or
// the new complete file — never a torn prefix — which is the property
// the archive writer and every snapshot/checkpoint write rely on: a
// resumable checkpoint that can itself be torn would defeat resuming.
package fsatomic

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
// write receives a temporary file in path's directory (same filesystem,
// so the final rename cannot degrade into a copy); on any error — from
// write itself, the sync, or the rename — the temporary file is removed
// and the destination is left exactly as it was. On success the file is
// fsynced before the rename, so a crash straddling WriteFile leaves
// either the previous content or the new content, never a mix.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	// CreateTemp opens 0600; published files keep the conventional
	// world-readable mode an os.Create would have produced.
	if err = tmp.Chmod(0o644); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return nil
}

// WriteFileBytes is WriteFile for callers that already hold the full
// encoded content.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
