package render

import (
	"strings"
	"testing"
	"time"

	"stinspector/internal/dfg"
	"stinspector/internal/pm"
	"stinspector/internal/stats"
	"stinspector/internal/trace"
)

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		n    int64
		want string
	}{
		{0, "0 B"},
		{999, "999 B"},
		{750, "750 B"},
		{14980, "14.98 KB"},
		{2870, "2.87 KB"},
		{825820000, "825.82 MB"},
		{9660000000, "9.66 GB"},
		{4831838208, "4.83 GB"}, // 96 ranks × 3 segments × 16 MiB, as in Fig. 8b
		{2500000000000, "2.50 TB"},
	}
	for _, tc := range tests {
		if got := FormatBytes(tc.n); got != tc.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

func TestFormatRateAndLoad(t *testing.T) {
	if got := FormatRateMBs(10.15e6); got != "10.15 MB/s" {
		t.Errorf("FormatRateMBs = %q", got)
	}
	if got := FormatRateMBs(0.61e6); got != "0.61 MB/s" {
		t.Errorf("FormatRateMBs small = %q", got)
	}
	if got := FormatLoad(0.22, 14980, true); got != "Load:0.22 (14.98 KB)" {
		t.Errorf("FormatLoad = %q", got)
	}
	if got := FormatLoad(0.55, 0, false); got != "Load:0.55" {
		t.Errorf("FormatLoad sizeless = %q", got)
	}
	if got := FormatDR(2, 10.15e6); got != "DR: 2x10.15 MB/s" {
		t.Errorf("FormatDR = %q", got)
	}
}

func TestFormatDuration(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want string
	}{
		{203 * time.Microsecond, "203µs"},
		{5 * time.Millisecond, "5.00ms"},
		{1500 * time.Millisecond, "1.500s"},
	}
	for _, tc := range tests {
		if got := FormatDuration(tc.d); got != tc.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

// tinyPipeline builds a two-activity log/graph/stats set for rendering
// tests.
func tinyPipeline(t *testing.T) (*dfg.Graph, *stats.Stats, pm.Mapping) {
	t.Helper()
	var cases []*trace.Case
	for rid := 0; rid < 2; rid++ {
		cases = append(cases, trace.NewCase(trace.CaseID{CID: "x", Host: "h", RID: rid}, []trace.Event{
			{Call: "read", FP: "/usr/lib/libc.so.6", Start: 0, Dur: 200 * time.Microsecond, Size: 832},
			{Call: "write", FP: "/dev/pts/7", Start: time.Millisecond, Dur: 100 * time.Microsecond, Size: 50},
		}))
	}
	el := trace.MustNewEventLog(cases...)
	m := pm.CallTopDirs{Depth: 2}
	l := pm.Build(el, m, pm.BuildOptions{Endpoints: true})
	return dfg.Build(l), stats.Compute(el, m), m
}

func TestDOTOutput(t *testing.T) {
	g, s, _ := tinyPipeline(t)
	out := RenderDOT(g, s, StatisticsColoring{Stats: s})
	for _, want := range []string{
		"digraph",
		"read\\n/usr/lib",
		"write\\n/dev/pts",
		"Load:",
		"DR: 2x",
		"->",
		"fillcolor=",
		string(pm.Start),
		string(pm.End),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	if out != RenderDOT(g, s, StatisticsColoring{Stats: s}) {
		t.Errorf("DOT output is not deterministic")
	}
}

func TestDOTSkipCalls(t *testing.T) {
	g, s, _ := tinyPipeline(t)
	var b strings.Builder
	d := &DOT{Graph: g, Stats: s, SkipCalls: map[string]bool{"write": true}}
	if err := d.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "/dev/pts") {
		t.Errorf("skipped call still rendered:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "/usr/lib") {
		t.Errorf("unskipped node missing")
	}
}

func TestDOTNilGraph(t *testing.T) {
	d := &DOT{}
	if err := d.Render(&strings.Builder{}); err == nil {
		t.Errorf("nil graph accepted")
	}
}

func TestStatisticsColoringShades(t *testing.T) {
	g, s, _ := tinyPipeline(t)
	c := StatisticsColoring{Stats: s}
	var readA, writeA pm.Activity
	for _, a := range g.Nodes() {
		call, _ := a.Parts()
		switch call {
		case "read":
			readA = a
		case "write":
			writeA = a
		}
	}
	readStyle, writeStyle := c.Node(readA), c.Node(writeA)
	if readStyle.FillColor == "" || writeStyle.FillColor == "" {
		t.Fatalf("missing fills: %+v %+v", readStyle, writeStyle)
	}
	// read has 2/3 of the duration: its shade must be darker (smaller
	// channel values) than write's.
	if readStyle.FillColor >= writeStyle.FillColor {
		t.Errorf("read shade %s not darker than write shade %s", readStyle.FillColor, writeStyle.FillColor)
	}
	// The activity with the max relative duration gets the darkest
	// shade and a white font.
	if readStyle.FontColor != "#ffffff" {
		t.Errorf("max-load node should flip font color, got %q", readStyle.FontColor)
	}
	if st := c.Node(pm.Start); st.FillColor != "" {
		t.Errorf("virtual node colored: %+v", st)
	}
}

func TestPartitionColoring(t *testing.T) {
	g, _, _ := tinyPipeline(t)
	// Fabricate subset graphs: green holds only read, red only write.
	var readA, writeA pm.Activity
	for _, a := range g.Nodes() {
		call, _ := a.Parts()
		switch call {
		case "read":
			readA = a
		case "write":
			writeA = a
		}
	}
	gGreen := dfg.New()
	gGreen.AddNode(readA, 1)
	gRed := dfg.New()
	gRed.AddNode(writeA, 1)
	c := NewPartitionColoring(g, gGreen, gRed)
	if st := c.Node(readA); st.FillColor != greenFill {
		t.Errorf("read style = %+v, want green", st)
	}
	if st := c.Node(writeA); st.FillColor != redFill {
		t.Errorf("write style = %+v, want red", st)
	}
	if st := c.Node(pm.Start); st.FillColor != "" {
		t.Errorf("virtual node colored")
	}
	e := dfg.Edge{From: readA, To: writeA}
	if es := c.Edge(e); es.Color != "" {
		t.Errorf("shared edge colored: %+v", es)
	}
}

func TestTextRender(t *testing.T) {
	g, s, _ := tinyPipeline(t)
	out := RenderText(g, s, nil)
	for _, want := range []string{"read:/usr/lib", "write:/dev/pts", "--2-->", "Load:", "events=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestStatsTable(t *testing.T) {
	_, s, _ := tinyPipeline(t)
	out := StatsTable(s)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	// Sorted by descending relative duration: read first.
	if !strings.Contains(lines[1], "read:/usr/lib") {
		t.Errorf("first data row = %q, want read:/usr/lib", lines[1])
	}
	if !strings.Contains(out, "MB/s") {
		t.Errorf("rates missing:\n%s", out)
	}
}

func TestTimelinePlot(t *testing.T) {
	id1 := trace.CaseID{CID: "b", Host: "h", RID: 9157}
	id2 := trace.CaseID{CID: "b", Host: "h", RID: 9158}
	intervals := []trace.Interval{
		{Start: 0, End: time.Millisecond, Case: id1},
		{Start: 2 * time.Millisecond, End: 3 * time.Millisecond, Case: id1},
		{Start: time.Millisecond, End: 4 * time.Millisecond, Case: id2},
	}
	out := RenderTimeline(intervals)
	if !strings.Contains(out, "b_h_9157") || !strings.Contains(out, "b_h_9158") {
		t.Errorf("rows missing:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("bars missing:\n%s", out)
	}
	rows := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(rows) != 3 { // two case rows + axis
		t.Errorf("rows = %d:\n%s", len(rows), out)
	}
	if got := RenderTimeline(nil); !strings.Contains(got, "no events") {
		t.Errorf("empty timeline = %q", got)
	}
}

func TestTimelineShortEventVisible(t *testing.T) {
	id := trace.CaseID{CID: "c", Host: "h", RID: 1}
	// A very short event within a long span must still paint one cell.
	intervals := []trace.Interval{
		{Start: 0, End: 10 * time.Second, Case: id},
		{Start: 5 * time.Second, End: 5*time.Second + time.Microsecond, Case: trace.CaseID{CID: "c", Host: "h", RID: 2}},
	}
	out := RenderTimeline(intervals)
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "c_h_2") && !strings.Contains(line, "#") {
			t.Errorf("short event invisible: %q", line)
		}
	}
}
