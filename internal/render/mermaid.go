package render

import (
	"fmt"
	"io"
	"strings"

	"stinspector/internal/dfg"
	"stinspector/internal/pm"
	"stinspector/internal/stats"
)

// Mermaid renders a DFG as a Mermaid flowchart, the diagram dialect of
// GitHub/GitLab markdown — convenient for pasting analysis results into
// issues and documentation. Node labels and colorings mirror the DOT
// renderer.
type Mermaid struct {
	Graph  *dfg.Graph
	Stats  *stats.Stats
	Styler Styler
	// SkipCalls omits activities by call name, as in Figure 9.
	SkipCalls map[string]bool
}

// Render writes the flowchart.
func (m *Mermaid) Render(w io.Writer) error {
	if m.Graph == nil {
		return fmt.Errorf("render: nil graph")
	}
	styler := m.Styler
	if styler == nil {
		styler = PlainStyle{}
	}
	var b strings.Builder
	b.WriteString("flowchart TB\n")

	skip := func(a pm.Activity) bool {
		if a.IsVirtual() || len(m.SkipCalls) == 0 {
			return false
		}
		call, _ := a.Parts()
		return m.SkipCalls[call]
	}

	ids := make(map[pm.Activity]string)
	for i, a := range m.Graph.Nodes() {
		if skip(a) {
			continue
		}
		id := fmt.Sprintf("n%d", i)
		ids[a] = id
		if a.IsVirtual() {
			fmt.Fprintf(&b, "  %s((%q))\n", id, string(a))
			continue
		}
		fmt.Fprintf(&b, "  %s[%q]\n", id, m.label(a))
		if st := styler.Node(a); st.FillColor != "" {
			stroke := st.Border
			if stroke == "" {
				stroke = "#333333"
			}
			fmt.Fprintf(&b, "  style %s fill:%s,stroke:%s\n", id, st.FillColor, stroke)
		}
	}
	for _, e := range m.Graph.Edges() {
		from, okF := ids[e.From]
		to, okT := ids[e.To]
		if !okF || !okT {
			continue
		}
		fmt.Fprintf(&b, "  %s -->|%d| %s\n", from, m.Graph.EdgeCount(e), to)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// label builds the Figure 3a node annotation with Mermaid line breaks.
func (m *Mermaid) label(a pm.Activity) string {
	call, path := a.Parts()
	lines := []string{call}
	if path != "" {
		lines = append(lines, path)
	}
	if m.Stats != nil {
		if st := m.Stats.Get(a); st != nil {
			lines = append(lines, FormatLoad(st.RelDur, st.Bytes, st.HasBytes))
			if st.HasBytes {
				lines = append(lines, FormatDR(st.MaxConc, st.ProcRate))
			}
		}
	}
	return strings.Join(lines, "<br/>")
}

// RenderMermaid renders a graph with optional statistics and styling.
func RenderMermaid(g *dfg.Graph, s *stats.Stats, styler Styler) string {
	var b strings.Builder
	m := &Mermaid{Graph: g, Stats: s, Styler: styler}
	_ = m.Render(&b)
	return b.String()
}
