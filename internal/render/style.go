package render

import (
	"fmt"
	"math"

	"stinspector/internal/dfg"
	"stinspector/internal/pm"
	"stinspector/internal/stats"
)

// NodeStyle collects the visual attributes of one DFG node.
type NodeStyle struct {
	// FillColor is a hex "#rrggbb" fill, empty for none.
	FillColor string
	// FontColor is a hex font color, empty for the default (black).
	FontColor string
	// Border is a pen color for the node outline, empty for default.
	Border string
}

// EdgeStyle collects the visual attributes of one DFG edge.
type EdgeStyle struct {
	// Color is a pen/label color, empty for default.
	Color string
	// PenWidth scales the stroke (0 means default).
	PenWidth float64
}

// Styler decides the style of nodes and edges; it corresponds to the
// "styler" argument of the paper's DFGViewer (Figure 6, steps 5a/5b).
type Styler interface {
	Node(a pm.Activity) NodeStyle
	Edge(e dfg.Edge) EdgeStyle
}

// PlainStyle applies no coloring.
type PlainStyle struct{}

// Node implements Styler.
func (PlainStyle) Node(pm.Activity) NodeStyle { return NodeStyle{} }

// Edge implements Styler.
func (PlainStyle) Edge(dfg.Edge) EdgeStyle { return EdgeStyle{} }

// StatisticsColoring is the statistics-based strategy of Section IV-C(1):
// the higher the activity's relative duration, the darker the shade of
// blue. Metric selects which statistic drives the shade.
type StatisticsColoring struct {
	Stats *stats.Stats
	// Metric chooses the node statistic (default MetricRelDur).
	Metric Metric
}

// Metric selects the statistic used by StatisticsColoring.
type Metric int

const (
	// MetricRelDur shades by relative duration (the paper's default).
	MetricRelDur Metric = iota
	// MetricBytes shades by total bytes moved ("alternatively, one
	// could color the nodes based on the number of bytes moved").
	MetricBytes
)

// Node implements Styler.
func (c StatisticsColoring) Node(a pm.Activity) NodeStyle {
	if a.IsVirtual() || c.Stats == nil {
		return NodeStyle{}
	}
	st := c.Stats.Get(a)
	if st == nil {
		return NodeStyle{}
	}
	var frac float64
	switch c.Metric {
	case MetricBytes:
		maxB := int64(0)
		for _, act := range c.Stats.Activities() {
			if b := c.Stats.Get(act).Bytes; b > maxB {
				maxB = b
			}
		}
		if maxB > 0 {
			frac = float64(st.Bytes) / float64(maxB)
		}
	default:
		if m := c.Stats.MaxRelDur(); m > 0 {
			frac = st.RelDur / m
		}
	}
	fill, font := blueShade(frac)
	return NodeStyle{FillColor: fill, FontColor: font}
}

// Edge implements Styler.
func (c StatisticsColoring) Edge(dfg.Edge) EdgeStyle { return EdgeStyle{} }

// blueShade interpolates from near-white to a dark blue; dark fills flip
// the font to white for legibility.
func blueShade(frac float64) (fill, font string) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	// From #f7fbff (light) to #08306b (dark), the matplotlib "Blues"
	// endpoints the paper's figures resemble.
	r := lerp(0xf7, 0x08, frac)
	g := lerp(0xfb, 0x30, frac)
	b := lerp(0xff, 0x6b, frac)
	fill = fmt.Sprintf("#%02x%02x%02x", r, g, b)
	if frac > 0.55 {
		font = "#ffffff"
	}
	return fill, font
}

func lerp(from, to int, frac float64) int {
	return int(math.Round(float64(from) + (float64(to)-float64(from))*frac))
}

// Partition colors of Section IV-C(2).
const (
	greenFill = "#c7e9c0"
	greenPen  = "#2ca25f"
	redFill   = "#fcbba1"
	redPen    = "#cb181d"
)

// PartitionColoring is the partition-based strategy of Section IV-C(2):
// nodes and edges exclusive to the G subset are green, those exclusive to
// the R subset are red, shared elements stay uncolored.
type PartitionColoring struct {
	Partition *dfg.Partition
}

// NewPartitionColoring builds the styler from the full DFG and the two
// subset DFGs, performing the classification of Section IV-C.
func NewPartitionColoring(full, green, red *dfg.Graph) PartitionColoring {
	return PartitionColoring{Partition: dfg.Classify(full, green, red)}
}

// Node implements Styler.
func (c PartitionColoring) Node(a pm.Activity) NodeStyle {
	if c.Partition == nil || a.IsVirtual() {
		return NodeStyle{}
	}
	switch c.Partition.Node(a) {
	case dfg.Green:
		return NodeStyle{FillColor: greenFill, Border: greenPen}
	case dfg.Red:
		return NodeStyle{FillColor: redFill, Border: redPen}
	}
	return NodeStyle{}
}

// Edge implements Styler.
func (c PartitionColoring) Edge(e dfg.Edge) EdgeStyle {
	if c.Partition == nil {
		return EdgeStyle{}
	}
	switch c.Partition.Edge(e) {
	case dfg.Green:
		return EdgeStyle{Color: greenPen, PenWidth: 1.6}
	case dfg.Red:
		return EdgeStyle{Color: redPen, PenWidth: 1.6}
	}
	return EdgeStyle{}
}
