package render

import (
	"strings"
	"testing"
)

func TestMermaidOutput(t *testing.T) {
	g, s, _ := tinyPipeline(t)
	out := RenderMermaid(g, s, StatisticsColoring{Stats: s})
	for _, want := range []string{
		"flowchart TB",
		"read<br/>/usr/lib",
		"write<br/>/dev/pts",
		"Load:",
		"-->|2|",
		"style ",
		"fill:#",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("mermaid missing %q:\n%s", want, out)
		}
	}
	// Deterministic.
	if out != RenderMermaid(g, s, StatisticsColoring{Stats: s}) {
		t.Errorf("mermaid output not deterministic")
	}
}

func TestMermaidSkipCalls(t *testing.T) {
	g, s, _ := tinyPipeline(t)
	var b strings.Builder
	m := &Mermaid{Graph: g, Stats: s, SkipCalls: map[string]bool{"write": true}}
	if err := m.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "/dev/pts") {
		t.Errorf("skipped node rendered")
	}
}

func TestMermaidNilGraph(t *testing.T) {
	m := &Mermaid{}
	if err := m.Render(&strings.Builder{}); err == nil {
		t.Errorf("nil graph accepted")
	}
}
