// Package render turns Directly-Follows-Graphs, statistics and timelines
// into human-readable artifacts: Graphviz DOT documents with the node
// semantics of Figure 3a and the two coloring strategies of Section IV-C,
// plain-text DFG listings, and ASCII timeline plots in the style of
// Figure 5.
package render

import (
	"fmt"
	"time"
)

// FormatBytes renders a byte count the way the paper's figures do:
// decimal units with two decimals ("0.75 KB", "14.98 KB", "825.82 MB",
// "9.66 GB").
func FormatBytes(n int64) string {
	f := float64(n)
	switch {
	case f >= 1e12:
		return fmt.Sprintf("%.2f TB", f/1e12)
	case f >= 1e9:
		return fmt.Sprintf("%.2f GB", f/1e9)
	case f >= 1e6:
		return fmt.Sprintf("%.2f MB", f/1e6)
	case f >= 1e3:
		return fmt.Sprintf("%.2f KB", f/1e3)
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// FormatRateMBs renders a data rate in MB/s with two decimals, the fixed
// unit of the paper's "DR: <mc>x<rate> MB/s" annotations ("0.61 MB/s",
// "3175.20 MB/s").
func FormatRateMBs(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f MB/s", bytesPerSec/1e6)
}

// FormatLoad renders the paper's "Load:<rd> (<bytes>)" annotation;
// activities without byte transfers omit the parenthesized part
// (Figure 8a's openat nodes show just "Load:0.55").
func FormatLoad(relDur float64, bytes int64, hasBytes bool) string {
	if !hasBytes {
		return fmt.Sprintf("Load:%.2f", relDur)
	}
	return fmt.Sprintf("Load:%.2f (%s)", relDur, FormatBytes(bytes))
}

// FormatDR renders the paper's "DR: <mc>x<rate>" annotation, an
// estimation of the rate at which a file access activity induces I/O load
// on the system (Equation 17).
func FormatDR(maxConc int, rate float64) string {
	return fmt.Sprintf("DR: %dx%s", maxConc, FormatRateMBs(rate))
}

// FormatDuration renders a duration compactly for tables (µs under 1ms,
// ms under 1s, seconds above).
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1e3)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
