package render

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"stinspector/internal/dfg"
	"stinspector/internal/pm"
	"stinspector/internal/stats"
)

// Text renders a DFG as a deterministic plain-text listing: one block per
// node with its Figure 3a annotations and partition class, followed by
// its outgoing edges. This is the format the stbench experiment harness
// prints and the golden tests compare against.
type Text struct {
	Graph *dfg.Graph
	Stats *stats.Stats
	// Partition annotates nodes/edges with their green/red class when
	// set.
	Partition *dfg.Partition
	// SkipCalls omits activities by call name, as in Figure 9.
	SkipCalls map[string]bool
}

// Render writes the listing.
func (t *Text) Render(w io.Writer) error {
	if t.Graph == nil {
		return fmt.Errorf("render: nil graph")
	}
	skip := func(a pm.Activity) bool {
		if a.IsVirtual() || len(t.SkipCalls) == 0 {
			return false
		}
		call, _ := a.Parts()
		return t.SkipCalls[call]
	}
	var b strings.Builder
	for _, a := range t.Graph.Nodes() {
		if skip(a) {
			continue
		}
		b.WriteString(t.nodeLine(a))
		b.WriteByte('\n')
		for _, e := range t.Graph.OutEdges(a) {
			if skip(e.To) {
				continue
			}
			cls := ""
			if t.Partition != nil {
				if c := t.Partition.Edge(e); c != dfg.Shared {
					cls = " [" + c.String() + "]"
				}
			}
			fmt.Fprintf(&b, "  --%d--> %s%s\n", t.Graph.EdgeCount(e), e.To, cls)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (t *Text) nodeLine(a pm.Activity) string {
	var parts []string
	parts = append(parts, string(a))
	if t.Stats != nil && !a.IsVirtual() {
		if st := t.Stats.Get(a); st != nil {
			parts = append(parts, FormatLoad(st.RelDur, st.Bytes, st.HasBytes))
			if st.HasBytes {
				parts = append(parts, FormatDR(st.MaxConc, st.ProcRate))
			}
			parts = append(parts, fmt.Sprintf("events=%d", st.Events))
		}
	}
	if t.Partition != nil && !a.IsVirtual() {
		if c := t.Partition.Node(a); c != dfg.Shared {
			parts = append(parts, "["+c.String()+"]")
		}
	}
	return strings.Join(parts, "  ")
}

// RenderText renders the graph as text with optional annotations.
func RenderText(g *dfg.Graph, s *stats.Stats, p *dfg.Partition) string {
	var b strings.Builder
	t := &Text{Graph: g, Stats: s, Partition: p}
	_ = t.Render(&b)
	return b.String()
}

// StatsTable renders the per-activity statistics as an aligned table
// sorted by descending relative duration, the tabular complement of the
// DFG figures.
func StatsTable(s *stats.Stats) string {
	type row struct {
		act pm.Activity
		st  *stats.ActivityStats
	}
	rows := make([]row, 0)
	for _, a := range s.Activities() {
		rows = append(rows, row{a, s.Get(a)})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].st.RelDur != rows[j].st.RelDur {
			return rows[i].st.RelDur > rows[j].st.RelDur
		}
		return rows[i].act < rows[j].act
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %8s %8s %12s %6s %14s\n", "ACTIVITY", "EVENTS", "RELDUR", "BYTES", "MAXC", "RATE")
	for _, r := range rows {
		bytes := "-"
		rate := "-"
		if r.st.HasBytes {
			bytes = FormatBytes(r.st.Bytes)
			rate = FormatRateMBs(r.st.ProcRate)
		}
		fmt.Fprintf(&b, "%-44s %8d %8.3f %12s %6d %14s\n",
			r.act, r.st.Events, r.st.RelDur, bytes, r.st.MaxConc, rate)
	}
	return b.String()
}
