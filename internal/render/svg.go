package render

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"stinspector/internal/trace"
)

// TimelineSVG renders interval data as a standalone SVG document in the
// style of Figure 5: one horizontal lane per case, one bar per event.
// The output is self-contained (no scripts, no external references) and
// deterministic.
type TimelineSVG struct {
	// Width is the drawing width in pixels (default 720).
	Width int
	// RowHeight is the lane height in pixels (default 22).
	RowHeight int
	// Title is an optional heading rendered above the lanes.
	Title string
}

const svgBar = "#4878a8"

// Render writes the document.
func (p *TimelineSVG) Render(w io.Writer, intervals []trace.Interval) error {
	width := p.Width
	if width <= 0 {
		width = 720
	}
	rowH := p.RowHeight
	if rowH <= 0 {
		rowH = 22
	}
	labelW := 170
	topPad := 8
	if p.Title != "" {
		topPad = 30
	}

	byCase := make(map[trace.CaseID][]trace.Interval)
	var minT, maxT time.Duration
	first := true
	for _, iv := range intervals {
		if first || iv.Start < minT {
			minT = iv.Start
		}
		if first || iv.End > maxT {
			maxT = iv.End
		}
		first = false
		byCase[iv.Case] = append(byCase[iv.Case], iv)
	}
	ids := make([]trace.CaseID, 0, len(byCase))
	for id := range byCase {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })

	span := maxT - minT
	if span <= 0 {
		span = 1
	}
	plotW := width - labelW - 10
	height := topPad + len(ids)*rowH + 26

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="#ffffff"/>` + "\n")
	if p.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="18" font-weight="bold">%s</text>`+"\n", labelW, xmlEscape(p.Title))
	}
	for row, id := range ids {
		y := topPad + row*rowH
		fmt.Fprintf(&b, `<text x="4" y="%d">%s</text>`+"\n", y+rowH-7, xmlEscape(id.String()))
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#dddddd"/>`+"\n",
			labelW, y+rowH-4, labelW+plotW, y+rowH-4)
		for _, iv := range byCase[id] {
			x := labelW + int(float64(iv.Start-minT)/float64(span)*float64(plotW))
			wpx := int(float64(iv.End-iv.Start) / float64(span) * float64(plotW))
			if wpx < 2 {
				wpx = 2
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
				x, y+3, wpx, rowH-10, svgBar)
		}
	}
	axisY := topPad + len(ids)*rowH + 14
	fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#555555">0</text>`+"\n", labelW, axisY)
	endLabel := FormatDuration(span)
	fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#555555" text-anchor="end">%s</text>`+"\n",
		labelW+plotW, axisY, xmlEscape(endLabel))
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderTimelineSVG renders intervals with default sizing.
func RenderTimelineSVG(intervals []trace.Interval, title string) string {
	var b strings.Builder
	p := &TimelineSVG{Title: title}
	_ = p.Render(&b, intervals)
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
