package render

import (
	"strings"
	"testing"
	"time"

	"stinspector/internal/trace"
)

func TestTimelineSVG(t *testing.T) {
	id1 := trace.CaseID{CID: "b", Host: "h", RID: 9157}
	id2 := trace.CaseID{CID: "b", Host: "h", RID: 9158}
	intervals := []trace.Interval{
		{Start: 0, End: time.Millisecond, Case: id1},
		{Start: 2 * time.Millisecond, End: 3 * time.Millisecond, Case: id2},
	}
	out := RenderTimelineSVG(intervals, "read:/usr/lib over C_b")
	for _, want := range []string{
		"<svg", "</svg>", "b_h_9157", "b_h_9158", "<rect", "read:/usr/lib over C_b",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// Deterministic.
	if out != RenderTimelineSVG(intervals, "read:/usr/lib over C_b") {
		t.Errorf("svg not deterministic")
	}
	// XML escaping of labels.
	esc := RenderTimelineSVG(intervals, `a<b>&"c"`)
	if strings.Contains(esc, `a<b>`) {
		t.Errorf("title not escaped")
	}
	if !strings.Contains(esc, "&lt;b&gt;") {
		t.Errorf("escaped form missing")
	}
}

func TestTimelineSVGTinyBarsVisible(t *testing.T) {
	id := trace.CaseID{CID: "c", Host: "h", RID: 1}
	intervals := []trace.Interval{
		{Start: 0, End: 10 * time.Second, Case: id},
		{Start: 5 * time.Second, End: 5*time.Second + time.Microsecond, Case: trace.CaseID{CID: "c", Host: "h", RID: 2}},
	}
	out := RenderTimelineSVG(intervals, "")
	// Both rows must have at least one rect (short events get the 2px
	// minimum width).
	if strings.Count(out, "<rect") < 3 { // background + 2 bars
		t.Errorf("bars missing:\n%s", out)
	}
}

func TestTimelineSVGEmpty(t *testing.T) {
	out := RenderTimelineSVG(nil, "")
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Errorf("empty svg malformed")
	}
}
