package render

import (
	"errors"
	"strings"
	"testing"
	"time"

	"stinspector/internal/dfg"
	"stinspector/internal/pm"
	"stinspector/internal/trace"
)

// failWriter fails after n successful writes, driving the writer-error
// branches of every renderer.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("sink full")
	}
	w.n--
	return len(p), nil
}

// TestRendererNilGraph: every DFG renderer must reject a nil graph with
// an error, never panic.
func TestRendererNilGraph(t *testing.T) {
	render := map[string]func() error{
		"dot":     func() error { return (&DOT{}).Render(&strings.Builder{}) },
		"text":    func() error { return (&Text{}).Render(&strings.Builder{}) },
		"mermaid": func() error { return (&Mermaid{}).Render(&strings.Builder{}) },
	}
	for name, fn := range render {
		err := fn()
		if err == nil || !strings.Contains(err.Error(), "nil graph") {
			t.Errorf("%s: want 'nil graph' error, got %v", name, err)
		}
	}
}

// TestRendererWriterError: a failing sink must surface as the render
// error (not be swallowed) in every renderer that writes directly.
func TestRendererWriterError(t *testing.T) {
	g := dfg.New()
	g.AddEdge(dfg.Edge{From: "read:/a", To: "write:/b"}, 1)
	cases := map[string]func(*failWriter) error{
		"dot":     func(w *failWriter) error { return (&DOT{Graph: g}).Render(w) },
		"text":    func(w *failWriter) error { return (&Text{Graph: g}).Render(w) },
		"mermaid": func(w *failWriter) error { return (&Mermaid{Graph: g}).Render(w) },
		"timeline": func(w *failWriter) error {
			return (&TimelinePlot{}).Render(w, []trace.Interval{{Start: 0, End: time.Second}})
		},
		"timeline-empty": func(w *failWriter) error {
			return (&TimelinePlot{}).Render(w, nil)
		},
		"svg": func(w *failWriter) error {
			return (&TimelineSVG{}).Render(w, []trace.Interval{{Start: 0, End: time.Second}})
		},
	}
	for name, fn := range cases {
		if err := fn(&failWriter{}); err == nil {
			t.Errorf("%s: writer failure not propagated", name)
		}
	}
}

// TestRenderEmptyLog pins the renderers' behavior on the DFG of an
// empty activity-log (zero nodes, zero edges): structurally valid,
// deterministic documents rather than errors.
func TestRenderEmptyLog(t *testing.T) {
	empty := dfg.Build(pm.NewBuilder(pm.CallTopDirs{Depth: 2}, pm.BuildOptions{Endpoints: true}).Finalize())
	if empty.NumNodes() != 0 || empty.NumEdges() != 0 {
		t.Fatalf("empty log built %d nodes / %d edges", empty.NumNodes(), empty.NumEdges())
	}

	dot := RenderDOT(empty, nil, nil)
	for _, want := range []string{"digraph \"dfg\" {", "}\n"} {
		if !strings.Contains(dot, want) {
			t.Errorf("empty DOT missing %q:\n%s", want, dot)
		}
	}
	if strings.Contains(dot, "label=") {
		t.Errorf("empty DOT contains nodes:\n%s", dot)
	}
	if got := RenderText(empty, nil, nil); got != "" {
		t.Errorf("empty text render = %q, want empty", got)
	}
	if got := RenderMermaid(empty, nil, nil); got != "flowchart TB\n" {
		t.Errorf("empty mermaid render = %q", got)
	}
	if got := RenderTimeline(nil); got != "(no events)\n" {
		t.Errorf("empty timeline = %q", got)
	}
	svg := RenderTimelineSVG(nil, "t")
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Errorf("empty timeline SVG malformed:\n%s", svg)
	}
}

// TestRenderMalformedDFG pins behavior on graphs that violate the
// well-formed-pipeline invariants: isolated zero-count nodes, edges
// whose endpoints were never seen as activities, self-loops, and
// SkipCalls configurations that skip every edge endpoint. All must
// render deterministically without panicking or emitting dangling
// references.
func TestRenderMalformedDFG(t *testing.T) {
	tests := []struct {
		name  string
		build func() *dfg.Graph
		skip  map[string]bool
		check func(t *testing.T, dot, text string)
	}{
		{
			name: "isolated zero-count node",
			build: func() *dfg.Graph {
				g := dfg.New()
				g.AddNode("read:/a", 0)
				return g
			},
			check: func(t *testing.T, dot, text string) {
				if !strings.Contains(dot, `label="read\n/a"`) {
					t.Errorf("isolated node dropped from DOT:\n%s", dot)
				}
			},
		},
		{
			name: "edge creates endpoints",
			build: func() *dfg.Graph {
				g := dfg.New()
				g.AddEdge(dfg.Edge{From: "a:/x", To: "b:/y"}, 3)
				return g
			},
			check: func(t *testing.T, dot, text string) {
				if !strings.Contains(text, "--3-->") {
					t.Errorf("edge count missing from text:\n%s", text)
				}
			},
		},
		{
			name: "self-loop",
			build: func() *dfg.Graph {
				g := dfg.New()
				g.AddEdge(dfg.Edge{From: "read:/a", To: "read:/a"}, 2)
				return g
			},
			check: func(t *testing.T, dot, text string) {
				if !strings.Contains(dot, "n0 -> n0") {
					t.Errorf("self-loop missing from DOT:\n%s", dot)
				}
			},
		},
		{
			name: "all endpoints skipped",
			build: func() *dfg.Graph {
				g := dfg.New()
				g.AddEdge(dfg.Edge{From: "read:/a", To: "write:/b"}, 1)
				g.AddNode(pm.Start, 1)
				return g
			},
			skip: map[string]bool{"read": true, "write": true},
			check: func(t *testing.T, dot, text string) {
				if strings.Contains(dot, "->") {
					t.Errorf("edge to skipped endpoint survived:\n%s", dot)
				}
				if !strings.Contains(dot, string(pm.Start)) {
					t.Errorf("virtual node must never be skipped:\n%s", dot)
				}
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			var dotB, textB strings.Builder
			if err := (&DOT{Graph: g, SkipCalls: tc.skip}).Render(&dotB); err != nil {
				t.Fatalf("DOT render: %v", err)
			}
			if err := (&Text{Graph: g, SkipCalls: tc.skip}).Render(&textB); err != nil {
				t.Fatalf("text render: %v", err)
			}
			tc.check(t, dotB.String(), textB.String())
		})
	}
}
