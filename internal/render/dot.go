package render

import (
	"fmt"
	"io"
	"strings"

	"stinspector/internal/dfg"
	"stinspector/internal/pm"
	"stinspector/internal/stats"
)

// DOT renders a DFG as a Graphviz document. Node labels follow the
// semantics of Figure 3a:
//
//	<CALL_NAME>
//	<DIRECTORY_PATH>
//	Load: <RELATIVE_DUR>/<BYTES_MOVED>
//	DR: <MAX_CONC> x <PROCESS_DATA_RATE>
//
// Edge labels carry the directly-follows observation counts. Stats may be
// nil, in which case only the call/path lines appear. Styler may be nil
// for no coloring.
type DOT struct {
	Graph  *dfg.Graph
	Stats  *stats.Stats
	Styler Styler
	// Name is the graph name in the DOT output (default "dfg").
	Name string
	// SkipCalls omits activities whose call component matches, the way
	// Figure 9 "skips the rendering of openat calls as it does not
	// highlight useful differences". Virtual endpoints are never
	// skipped.
	SkipCalls map[string]bool
}

// Render writes the DOT document.
func (d *DOT) Render(w io.Writer) error {
	if d.Graph == nil {
		return fmt.Errorf("render: nil graph")
	}
	styler := d.Styler
	if styler == nil {
		styler = PlainStyle{}
	}
	name := d.Name
	if name == "" {
		name = "dfg"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [shape=box, style=\"rounded,filled\", fillcolor=\"#ffffff\", fontname=\"Helvetica\"];\n")
	b.WriteString("  edge [fontname=\"Helvetica\", fontsize=10];\n")

	skipped := d.skippedSet()
	ids := make(map[pm.Activity]string)
	for i, a := range d.Graph.Nodes() {
		if skipped[a] {
			continue
		}
		id := fmt.Sprintf("n%d", i)
		ids[a] = id
		fmt.Fprintf(&b, "  %s [label=%q", id, d.nodeLabel(a))
		if a.IsVirtual() {
			b.WriteString(", shape=circle, width=0.25, fixedsize=true")
		}
		style := styler.Node(a)
		if style.FillColor != "" {
			fmt.Fprintf(&b, ", fillcolor=%q", style.FillColor)
		}
		if style.FontColor != "" {
			fmt.Fprintf(&b, ", fontcolor=%q", style.FontColor)
		}
		if style.Border != "" {
			fmt.Fprintf(&b, ", color=%q", style.Border)
		}
		b.WriteString("];\n")
	}
	for _, e := range d.Graph.Edges() {
		from, okF := ids[e.From]
		to, okT := ids[e.To]
		if !okF || !okT {
			continue // endpoint skipped
		}
		fmt.Fprintf(&b, "  %s -> %s [label=%q", from, to, fmt.Sprintf("%d", d.Graph.EdgeCount(e)))
		style := styler.Edge(e)
		if style.Color != "" {
			fmt.Fprintf(&b, ", color=%q, fontcolor=%q", style.Color, style.Color)
		}
		if style.PenWidth > 0 {
			fmt.Fprintf(&b, ", penwidth=%.1f", style.PenWidth)
		}
		b.WriteString("];\n")
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func (d *DOT) skippedSet() map[pm.Activity]bool {
	out := make(map[pm.Activity]bool)
	if len(d.SkipCalls) == 0 {
		return out
	}
	for _, a := range d.Graph.Nodes() {
		if a.IsVirtual() {
			continue
		}
		call, _ := a.Parts()
		if d.SkipCalls[call] {
			out[a] = true
		}
	}
	return out
}

// nodeLabel builds the multi-line label of Figure 3a.
func (d *DOT) nodeLabel(a pm.Activity) string {
	if a.IsVirtual() {
		return string(a)
	}
	call, path := a.Parts()
	lines := []string{call}
	if path != "" {
		lines = append(lines, path)
	}
	if d.Stats != nil {
		if st := d.Stats.Get(a); st != nil {
			lines = append(lines, FormatLoad(st.RelDur, st.Bytes, st.HasBytes))
			if st.HasBytes {
				lines = append(lines, FormatDR(st.MaxConc, st.ProcRate))
			}
		}
	}
	return strings.Join(lines, "\n")
}

// RenderDOT is a convenience wrapper rendering a graph with optional
// statistics and styling to a string.
func RenderDOT(g *dfg.Graph, s *stats.Stats, styler Styler) string {
	var b strings.Builder
	d := &DOT{Graph: g, Stats: s, Styler: styler}
	// strings.Builder never fails.
	_ = d.Render(&b)
	return b.String()
}
