package render

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"stinspector/internal/trace"
)

// TimelinePlot renders interval data as an ASCII timeline in the style of
// Figure 5: one row per case, bars marking the active ranges of the
// activity's events.
type TimelinePlot struct {
	// Width is the number of character columns for the time axis
	// (default 72).
	Width int
}

// Render writes the plot. Intervals from the same case share a row; rows
// are ordered by case identity. Returns an error only on writer failure.
func (p *TimelinePlot) Render(w io.Writer, intervals []trace.Interval) error {
	width := p.Width
	if width <= 0 {
		width = 72
	}
	if len(intervals) == 0 {
		_, err := io.WriteString(w, "(no events)\n")
		return err
	}

	minT, maxT := intervals[0].Start, intervals[0].End
	byCase := make(map[trace.CaseID][]trace.Interval)
	for _, iv := range intervals {
		if iv.Start < minT {
			minT = iv.Start
		}
		if iv.End > maxT {
			maxT = iv.End
		}
		byCase[iv.Case] = append(byCase[iv.Case], iv)
	}
	span := maxT - minT
	if span <= 0 {
		span = 1
	}

	ids := make([]trace.CaseID, 0, len(byCase))
	for id := range byCase {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })

	labelW := 0
	for _, id := range ids {
		if n := len(id.String()); n > labelW {
			labelW = n
		}
	}

	var b strings.Builder
	for _, id := range ids {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, iv := range byCase[id] {
			lo := int(float64(iv.Start-minT) / float64(span) * float64(width))
			hi := int(float64(iv.End-minT) / float64(span) * float64(width))
			if hi <= lo {
				hi = lo + 1 // every event is at least one cell wide
			}
			if hi > width {
				hi = width
			}
			for i := lo; i < hi; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", labelW, id, row)
	}
	fmt.Fprintf(&b, "%-*s  %s\n", labelW, "", axisLabel(span, width))
	_, err := io.WriteString(w, b.String())
	return err
}

func axisLabel(span time.Duration, width int) string {
	left := "0"
	right := FormatDuration(span)
	pad := width - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	return left + strings.Repeat(" ", pad) + right
}

// RenderTimeline renders intervals with the default width.
func RenderTimeline(intervals []trace.Interval) string {
	var b strings.Builder
	p := &TimelinePlot{}
	_ = p.Render(&b, intervals)
	return b.String()
}
