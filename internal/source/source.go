// Package source defines the streaming case-batch layer of the
// ingestion pipeline. A Source yields the cases of an event-log one at
// a time in deterministic CaseID order, so analysis can run at O(batch)
// memory instead of materializing the full log first — the enabling
// substrate for inspecting multi-GB trace sets (the paper's 512-rank
// IOR runs) on machines that cannot hold them.
//
// All three ingestion backends implement it: strace directories
// (strace.StreamFS), STA archives (archive.Reader.Stream) and Darshan
// DXT dumps (dxt.Stream). The in-memory APIs (strace.ReadFS,
// archive.ReadAll, dxt.ToEventLog) are reimplemented as stream + drain,
// so both paths share one ingestion discipline and stay byte-identical.
package source

import (
	"errors"
	"fmt"
	"io"

	"stinspector/internal/trace"
)

// Source streams cases in deterministic order. It is not safe for
// concurrent use by multiple goroutines.
//
// The Next contract: (case, nil) yields the next case; (nil, io.EOF)
// signals exhaustion; any other (nil, err) means the case at this
// position failed to load — the source stays usable, and the caller
// decides whether to abandon (Close) or keep consuming (how strace's
// Strict mode collects every failure). After Close, Next returns
// ErrClosed.
type Source interface {
	Next() (*trace.Case, error)
	// Close releases the source's resources and cancels any outstanding
	// concurrent fetches. For the finite, fetch-based sources (Ordered
	// and the backend streams built on it) Close does not return until
	// every worker goroutine has exited, so abandoning a stream early
	// leaks neither goroutines nor file handles — safe precisely
	// because those workers are the source's own and each fetch is
	// finite. For live, push-based sources (Live), whose producers are
	// external and may never finish, Close must NOT wait for producers:
	// it wakes any goroutine blocked pushing into or reading from the
	// stream and returns immediately, so closing a live session cannot
	// deadlock on a wedged producer. Either way Close is idempotent and
	// Next returns ErrClosed afterwards.
	Close() error
}

// ErrClosed is returned by Next after Close.
var ErrClosed = errors.New("source: closed")

// PeakResidenter is implemented by sources that track how many cases
// were resident (fetched but not yet consumed) at once — the observable
// behind the O(batch) memory claim.
type PeakResidenter interface {
	PeakResident() int
}

// PeakResident reports the peak number of resident cases of a source,
// or 0 if the source does not track it.
func PeakResident(s Source) int {
	if p, ok := s.(PeakResidenter); ok {
		return p.PeakResident()
	}
	return 0
}

// Walk consumes the source, calling fn for every case. A nil return
// means the stream was exhausted cleanly. Per-case errors follow the
// joinErrors policy: false aborts on the first one (deterministically
// the earliest in case order, since delivery is ordered); true skips
// the failing case, keeps consuming, and returns every failure joined —
// the two error semantics of strace lenient and Strict ingestion. An
// error from fn itself is always terminal. Walk does not Close the
// source.
func Walk(s Source, joinErrors bool, fn func(*trace.Case) error) error {
	var errs []error
	for {
		c, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if joinErrors {
				errs = append(errs, err)
				continue
			}
			return err
		}
		if err := fn(c); err != nil {
			return err
		}
	}
	return errors.Join(errs...)
}

// Drain materializes the rest of the source into an event-log, with the
// same joinErrors policy as Walk. It does not Close the source.
func Drain(s Source, joinErrors bool) (*trace.EventLog, error) {
	log, err := trace.NewEventLog()
	if err != nil {
		return nil, err
	}
	if err := Walk(s, joinErrors, log.Add); err != nil {
		return nil, err
	}
	return log, nil
}

// NextBatch reads up to n cases, the batch form of Next. It returns a
// short (possibly empty) batch together with io.EOF at exhaustion; a
// per-case error ends the batch early and is returned with the cases
// that preceded it.
func NextBatch(s Source, n int) ([]*trace.Case, error) {
	if n <= 0 {
		return nil, fmt.Errorf("source: batch size %d", n)
	}
	batch := make([]*trace.Case, 0, n)
	for len(batch) < n {
		c, err := s.Next()
		if err != nil {
			return batch, err
		}
		batch = append(batch, c)
	}
	return batch, nil
}

// logSource streams an in-memory event-log, the bridge that lets the
// streaming analysis path consume already-materialized logs.
type logSource struct {
	cases  []*trace.Case
	closed bool
}

// FromLog returns a source over the log's cases in CaseID order.
func FromLog(el *trace.EventLog) Source { return &logSource{cases: el.Cases()} }

// FromCases returns a source over the given cases in the given order.
// Callers are responsible for ordering when determinism matters.
func FromCases(cases ...*trace.Case) Source {
	return &logSource{cases: append([]*trace.Case(nil), cases...)}
}

func (s *logSource) Next() (*trace.Case, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if len(s.cases) == 0 {
		return nil, io.EOF
	}
	c := s.cases[0]
	s.cases = s.cases[1:]
	return c, nil
}

func (s *logSource) Close() error {
	s.closed = true
	s.cases = nil
	return nil
}

// filterSource applies an event predicate to every case, dropping cases
// that end up empty — the streaming form of EventLog.Filter.
type filterSource struct {
	src  Source
	keep func(trace.Event) bool
}

// Filter derives a source yielding, for every case, only the events for
// which keep returns true; cases left without events are dropped, so a
// drained filtered stream equals EventLog.Filter of the drained stream.
func Filter(s Source, keep func(trace.Event) bool) Source {
	return &filterSource{src: s, keep: keep}
}

func (s *filterSource) Next() (*trace.Case, error) {
	for {
		c, err := s.src.Next()
		if err != nil {
			return nil, err
		}
		fc := c.Filter(s.keep)
		if len(fc.Events) == 0 {
			continue
		}
		return fc, nil
	}
}

func (s *filterSource) Close() error { return s.src.Close() }

// PeakResident forwards the wrapped source's accounting.
func (s *filterSource) PeakResident() int { return PeakResident(s.src) }

// caseFilterSource drops whole cases by predicate — the streaming form
// of EventLog.FilterCases, and the case-split primitive behind the
// partition-based coloring over streams.
type caseFilterSource struct {
	src  Source
	keep func(*trace.Case) bool
}

// FilterCases derives a source yielding only the cases for which keep
// returns true. Cases are shared, not copied.
func FilterCases(s Source, keep func(*trace.Case) bool) Source {
	return &caseFilterSource{src: s, keep: keep}
}

func (s *caseFilterSource) Next() (*trace.Case, error) {
	for {
		c, err := s.src.Next()
		if err != nil {
			return nil, err
		}
		if s.keep(c) {
			return c, nil
		}
	}
}

func (s *caseFilterSource) Close() error { return s.src.Close() }

// PeakResident forwards the wrapped source's accounting.
func (s *caseFilterSource) PeakResident() int { return PeakResident(s.src) }

// closerSource couples a source with an underlying resource (an open
// archive file, say) that must be released exactly once when the stream
// is closed.
type closerSource struct {
	Source
	closer io.Closer
	done   bool
}

// WithCloser returns a source whose Close also closes c (once).
func WithCloser(s Source, c io.Closer) Source {
	return &closerSource{Source: s, closer: c}
}

func (s *closerSource) Close() error {
	err := s.Source.Close()
	if !s.done {
		s.done = true
		if cerr := s.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// PeakResident forwards the wrapped source's accounting (interface
// embedding promotes only Next/Close, not optional capabilities).
func (s *closerSource) PeakResident() int { return PeakResident(s.Source) }
