package source

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"stinspector/internal/trace"
)

func shardCases(n int) []*trace.Case {
	out := make([]*trace.Case, n)
	for i := range out {
		out[i] = trace.NewCase(trace.CaseID{CID: "sf", Host: "h", RID: i}, []trace.Event{
			{Call: "read", FP: "/f", Start: 1, Dur: 1, Size: 1},
		})
	}
	return out
}

// faultySource yields shardCases(n) but fails (without a case) at the
// given positions — the per-case error shape of the Next contract.
type faultySource struct {
	cases []*trace.Case
	fail  map[int]bool
	next  int
}

func (s *faultySource) Next() (*trace.Case, error) {
	if s.next >= len(s.cases) {
		return nil, io.EOF
	}
	i := s.next
	s.next++
	if s.fail[i] {
		return nil, fmt.Errorf("case %d broken", i)
	}
	return s.cases[i], nil
}

func (s *faultySource) Close() error { return nil }

// TestShardedFoldRoundRobinPartition pins the deterministic partition:
// case i is folded by shard (i/block) mod shards, in delivery order
// within each shard.
func TestShardedFoldRoundRobinPartition(t *testing.T) {
	const n, block, shards = 29, 4, 3
	src := FromCases(shardCases(n)...)
	defer src.Close()
	var mu sync.Mutex
	got := make([][]int, shards)
	err := ShardedFold(src, shards, block, false, func(shard int, c *trace.Case) error {
		mu.Lock()
		got[shard] = append(got[shard], c.ID.RID)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int, shards)
	for i := 0; i < n; i++ {
		s := (i / block) % shards
		want[s] = append(want[s], i)
	}
	for s := range want {
		if fmt.Sprint(got[s]) != fmt.Sprint(want[s]) {
			t.Errorf("shard %d folded %v, want %v", s, got[s], want[s])
		}
	}
}

// TestShardedFoldSequentialInline: shards == 1 must fold every case on
// shard 0 in delivery order (it is Walk, not a worker pool).
func TestShardedFoldSequentialInline(t *testing.T) {
	src := FromCases(shardCases(7)...)
	defer src.Close()
	var order []int
	err := ShardedFold(src, 1, 2, false, func(shard int, c *trace.Case) error {
		if shard != 0 {
			t.Errorf("case %d on shard %d, want 0", c.ID.RID, shard)
		}
		order = append(order, c.ID.RID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != fmt.Sprint([]int{0, 1, 2, 3, 4, 5, 6}) {
		t.Errorf("order = %v", order)
	}
}

// TestShardedFoldJoinErrors: with joinErrors, failing cases are skipped
// and every failure comes back joined; the good cases all fold.
func TestShardedFoldJoinErrors(t *testing.T) {
	src := &faultySource{cases: shardCases(10), fail: map[int]bool{2: true, 7: true}}
	var mu sync.Mutex
	folded := 0
	err := ShardedFold(src, 3, 2, true, func(shard int, c *trace.Case) error {
		mu.Lock()
		folded++
		mu.Unlock()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "case 2 broken") || !strings.Contains(err.Error(), "case 7 broken") {
		t.Errorf("joined error = %v, want both failures", err)
	}
	if folded != 8 {
		t.Errorf("folded %d cases, want 8", folded)
	}
}

// TestShardedFoldFailFast: without joinErrors the earliest failing case
// aborts the fold deterministically.
func TestShardedFoldFailFast(t *testing.T) {
	src := &faultySource{cases: shardCases(10), fail: map[int]bool{4: true}}
	err := ShardedFold(src, 2, 2, false, func(shard int, c *trace.Case) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "case 4 broken") {
		t.Errorf("err = %v, want case 4 failure", err)
	}
}

// TestShardedFoldFoldError: an error from the fold callback is terminal
// and surfaces; reading stops without deadlocking the reader or leaking
// workers.
func TestShardedFoldFoldError(t *testing.T) {
	boom := errors.New("fold exploded")
	for _, shards := range []int{1, 3} {
		src := FromCases(shardCases(50)...)
		err := ShardedFold(src, shards, 2, true, func(shard int, c *trace.Case) error {
			if c.ID.RID == 6 {
				return boom
			}
			return nil
		})
		src.Close()
		if !errors.Is(err, boom) {
			t.Errorf("shards=%d: err = %v, want fold error", shards, err)
		}
	}
}

// TestShardedFoldDefaults: zero shards/block select GOMAXPROCS and the
// default block without losing cases.
func TestShardedFoldDefaults(t *testing.T) {
	src := FromCases(shardCases(100)...)
	defer src.Close()
	var mu sync.Mutex
	seen := make(map[int]bool)
	err := ShardedFold(src, 0, 0, false, func(shard int, c *trace.Case) error {
		mu.Lock()
		seen[c.ID.RID] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 100 {
		t.Errorf("folded %d distinct cases, want 100", len(seen))
	}
}
