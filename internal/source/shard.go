package source

import (
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"stinspector/internal/trace"
)

// DefaultShardBlock is the number of consecutive cases handed to one
// shard worker per dispatch when ShardedFold's block size is left 0.
// Blocks amortize channel traffic; keeping them modest keeps the
// resident-case bound (window + ~3·block·shards) close to the source's
// own window.
const DefaultShardBlock = 16

// ShardedFold consumes a source and distributes its cases over shards
// concurrent fold workers: case i belongs to block ⌊i/block⌋, and block
// j goes to worker j mod shards — a deterministic round-robin partition
// of the case sequence, independent of scheduling. Each worker calls
// fold(shard, c) for its cases in delivery order, so per-shard state
// (an aggregate builder set, say) needs no locking; because every
// source delivers ascending CaseID order, each shard sees an ascending
// subsequence — the precondition under which the analysis aggregates'
// Merge reproduces the sequential fold exactly.
//
// shards <= 0 means runtime.GOMAXPROCS(0); shards == 1 folds inline on
// the calling goroutine (no worker goroutines), making the sequential
// fold the one-shard case of this engine rather than a second
// implementation. block <= 0 means DefaultShardBlock.
//
// Per-case source errors follow the joinErrors policy of Walk: false
// aborts on the first failing case (deterministically the earliest,
// since delivery is ordered), true skips failing cases and returns
// every failure joined. An error from fold itself is terminal: reading
// stops and the error is returned (when several shards fail
// concurrently, the lowest-numbered shard's error wins). ShardedFold
// does not Close the source.
func ShardedFold(s Source, shards, block int, joinErrors bool, fold func(shard int, c *trace.Case) error) error {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if block <= 0 {
		block = DefaultShardBlock
	}
	if shards == 1 {
		return Walk(s, joinErrors, func(c *trace.Case) error { return fold(0, c) })
	}

	// One channel per shard keeps the block→worker assignment a pure
	// function of the block index, whatever the goroutine scheduling.
	chans := make([]chan []*trace.Case, shards)
	for i := range chans {
		chans[i] = make(chan []*trace.Case, 2)
	}
	foldErrs := make([]error, shards)
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(shards)
	for i := 0; i < shards; i++ {
		go func(i int) {
			defer wg.Done()
			for batch := range chans[i] {
				if foldErrs[i] != nil {
					continue // keep draining so the reader never blocks
				}
				for _, c := range batch {
					if err := fold(i, c); err != nil {
						foldErrs[i] = err
						failed.Store(true)
						break
					}
				}
			}
		}(i)
	}

	var srcErrs []error
	var termErr error
	next := 0
	batch := make([]*trace.Case, 0, block)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		chans[next] <- batch
		next = (next + 1) % shards
		batch = make([]*trace.Case, 0, block)
	}
	for termErr == nil && !failed.Load() {
		c, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if joinErrors {
				srcErrs = append(srcErrs, err)
				continue
			}
			termErr = err
			break
		}
		batch = append(batch, c)
		if len(batch) == block {
			flush()
		}
	}
	flush()
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()

	if termErr != nil {
		return termErr
	}
	for _, err := range foldErrs {
		if err != nil {
			return err
		}
	}
	return errors.Join(srcErrs...)
}
