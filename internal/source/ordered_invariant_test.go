package source

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"

	"stinspector/internal/trace"
)

// TestOrderedTokenConservation pins the window-token invariant behind
// ordSource.Next's slot refund: across a full drain, every one of the
// window tokens is either back in the semaphore or was destroyed by a
// worker's past-the-end claim — none is ever dropped. A lost token
// would shrink the effective window permanently; the refund panics
// rather than drop, and this test drives the accounting to exact
// numbers at several workers/window/corpus shapes, including windows
// smaller than the worker count and windows larger than the corpus.
func TestOrderedTokenConservation(t *testing.T) {
	cases := []struct{ workers, window, n int }{
		{workers: 4, window: 8, n: 100},
		{workers: 8, window: 3, n: 50},  // workers clamped to the window
		{workers: 3, window: 64, n: 10}, // window larger than the corpus
		{workers: 16, window: 16, n: 5}, // workers clamped to the corpus
		{workers: 2, window: 2, n: 200}, // tightest window that still fans out
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("w%d_win%d_n%d", tc.workers, tc.window, tc.n), func(t *testing.T) {
			var fetches atomic.Int64
			src := Ordered(tc.n, tc.workers, tc.window, func(i int) (*trace.Case, error) {
				fetches.Add(1)
				runtime.Gosched() // jitter claim interleavings
				id := trace.CaseID{CID: fmt.Sprintf("c%06d", i), Host: "h", RID: i}
				return trace.NewCase(id, []trace.Event{{
					CID: id.CID, Host: "h", RID: i, Call: "read", FP: "/f",
				}}), nil
			})
			s, ok := src.(*ordSource)
			if !ok {
				t.Fatalf("combo did not build an ordSource (got %T)", src)
			}
			// The engine clamps workers to min(workers, n, window); the
			// spawned count determines how many tokens terminal claims
			// destroy.
			spawned := tc.workers
			if spawned > tc.n {
				spawned = tc.n
			}
			if spawned > tc.window {
				spawned = tc.window
			}

			delivered := 0
			for {
				c, err := src.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				if want := fmt.Sprintf("c%06d", delivered); c.ID.CID != want {
					t.Fatalf("case %d delivered out of order: %s", delivered, c.ID.CID)
				}
				delivered++
			}
			if delivered != tc.n {
				t.Fatalf("delivered %d of %d cases", delivered, tc.n)
			}

			// Let every worker run to its natural exit (a claim past the
			// end): after the drain the semaphore holds enough tokens for
			// each remaining worker to claim once more and leave.
			s.wg.Wait()

			if got := fetches.Load(); got != int64(tc.n) {
				t.Errorf("fetch called %d times, want %d", got, tc.n)
			}
			// Exactly n in-range claims plus one terminal claim per worker.
			if got := int(s.ticket.Load()); got != tc.n+spawned {
				t.Errorf("ticket = %d, want %d (n) + %d (terminal claims)", got, tc.n, spawned)
			}
			// Token conservation: window tokens minus the one each
			// exiting worker destroyed are all back in the semaphore.
			if got, want := len(s.sem), tc.window-spawned; got != want {
				t.Errorf("semaphore holds %d tokens after drain, want %d (window %d - %d destroyed)",
					got, want, tc.window, spawned)
			}
			if len(s.pending) != 0 {
				t.Errorf("%d undelivered results pending after drain", len(s.pending))
			}
			if got := s.resident.Load(); got != 0 {
				t.Errorf("resident = %d after drain, want 0", got)
			}
			if err := src.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
