package source

import (
	"errors"
	"io"
	"sync"

	"stinspector/internal/trace"
)

// Policy selects what a Live source does when a producer pushes into a
// full in-flight budget.
type Policy uint8

const (
	// Block makes Push wait until the consumer frees a slot (or the
	// source is closed). Producers are throttled to the consumer's pace;
	// nothing is ever lost, at the cost of producer latency.
	Block Policy = iota
	// ShedOldest drops the oldest queued case to make room for the new
	// one, incrementing the shed counter. Producers never block and
	// memory stays bounded whatever the consumer does, at the cost of
	// losing the stalest data — the monitoring trade.
	ShedOldest
)

// String names the policy the way the CLIs spell it.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case ShedOldest:
		return "shed-oldest"
	}
	return "unknown"
}

// ParsePolicy parses the CLI spelling of a policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block", "":
		return Block, nil
	case "shed-oldest":
		return ShedOldest, nil
	}
	return Block, errors.New("source: unknown overflow policy " + s + " (want block or shed-oldest)")
}

// ErrFinished is returned by Live.Push after Finish: the producer side
// has been sealed and no more cases may enter the stream.
var ErrFinished = errors.New("source: live source finished")

// DefaultLiveBudget is the in-flight case budget used when NewLive is
// given a budget <= 0.
const DefaultLiveBudget = 64

// Live adapts push-style producers (follow-mode tailers, ingest
// handlers) to the pull-style Source contract, with a hard in-flight
// case budget between them. It is the backpressure boundary of the
// live-ingestion path: however fast producers push and however slow the
// analysis fold consumes, at most budget cases are resident in the
// queue — a slow consumer can never OOM the process. Overflow follows
// the Policy: Block throttles producers, ShedOldest drops the stalest
// queued case and counts it.
//
// Unlike the batch sources, delivery order is completion order, not
// CaseID order: whichever case finishes first is delivered first. The
// analysis aggregates are fold-order-invariant (their finalized
// artifacts are canonical whatever order cases arrive), so this is a
// latency choice, not a correctness one.
//
// The producer side (Push, Fail, Finish) is safe for concurrent use by
// any number of goroutines; the consumer side (Next) keeps the
// single-goroutine Source contract.
//
// Close semantics for the infinite-source case: an unfinished Live
// stream has producers that may never finish, so — unlike Ordered,
// whose Close waits for its own bounded workers to drain — Live.Close
// never waits for producers. It marks the stream closed and wakes every
// goroutine blocked in Push or Next; blocked producers return ErrClosed
// immediately. Closing a live session therefore cannot deadlock on a
// wedged producer (pinned by TestLiveCloseUnblocksWedgedProducer).
type Live struct {
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond

	budget int
	policy Policy

	q        []liveItem
	resident int // queued cases (errors are not charged to the budget)
	peak     int
	shed     uint64
	pushed   uint64
	finished bool
	closed   bool
}

// liveItem is one queue entry: a delivered case or a recoverable error
// at its position (the Fail path).
type liveItem struct {
	c   *trace.Case
	err error
}

// NewLive returns a live source with the given in-flight case budget
// (<= 0 means DefaultLiveBudget) and overflow policy.
func NewLive(budget int, policy Policy) *Live {
	if budget <= 0 {
		budget = DefaultLiveBudget
	}
	l := &Live{budget: budget, policy: policy}
	l.notFull.L = &l.mu
	l.notEmpty.L = &l.mu
	return l
}

// Push delivers a completed case into the stream. Under Block it waits
// for a free budget slot; under ShedOldest it drops the oldest queued
// case (counting it) when the budget is full. Push returns ErrClosed if
// the source is (or becomes, while blocked) closed, and ErrFinished
// after Finish; both mean the producer should stop.
func (l *Live) Push(c *trace.Case) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		switch {
		case l.closed:
			return ErrClosed
		case l.finished:
			return ErrFinished
		case l.resident < l.budget:
			l.q = append(l.q, liveItem{c: c})
			l.resident++
			l.pushed++
			if l.resident > l.peak {
				l.peak = l.resident
			}
			l.notEmpty.Signal()
			return nil
		case l.policy == ShedOldest:
			// Drop the oldest queued *case*; queued errors are kept (they
			// are positions, not payload, and cost no budget).
			for i := range l.q {
				if l.q[i].c != nil {
					l.q = append(l.q[:i], l.q[i+1:]...)
					break
				}
			}
			l.resident--
			l.shed++
		default: // Block
			l.notFull.Wait()
		}
	}
}

// Fail surfaces a recoverable per-position error to the consumer, the
// live counterpart of a batch source's per-case error: Next returns it
// at this queue position and the stream continues. Errors are not
// charged to the case budget and are never shed. Fail after Close or
// Finish is a no-op (the consumer is gone or the stream is sealed).
func (l *Live) Fail(err error) {
	if err == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.finished {
		return
	}
	l.q = append(l.q, liveItem{err: err})
	l.notEmpty.Signal()
}

// Finish seals the producer side: subsequent Push/Fail calls are
// rejected/ignored, and once the queue drains Next returns io.EOF — the
// graceful end of a live stream (drain-then-shutdown). Finish is
// idempotent and never blocks.
func (l *Live) Finish() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.finished = true
	l.notEmpty.Broadcast()
	l.notFull.Broadcast()
}

// Next implements Source: it blocks until a case (or a recoverable
// error) is available, the stream is finished and drained (io.EOF), or
// the source is closed (ErrClosed).
func (l *Live) Next() (*trace.Case, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.closed {
			return nil, ErrClosed
		}
		if len(l.q) > 0 {
			it := l.q[0]
			l.q = l.q[1:]
			if it.c != nil {
				l.resident--
				l.notFull.Signal()
				return it.c, nil
			}
			return nil, it.err
		}
		if l.finished {
			return nil, io.EOF
		}
		l.notEmpty.Wait()
	}
}

// Close abandons the stream: the queue is dropped and every goroutine
// blocked in Push or Next is woken immediately (producers see
// ErrClosed). Close never waits for producers — see the type comment —
// and is idempotent.
func (l *Live) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.q = nil
	l.resident = 0
	l.notEmpty.Broadcast()
	l.notFull.Broadcast()
	return nil
}

// Shed reports how many cases the ShedOldest policy dropped — the
// bounded-degradation counter of the live path.
func (l *Live) Shed() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.shed
}

// Pushed reports how many cases entered the stream (shed ones
// included).
func (l *Live) Pushed() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pushed
}

// Resident reports how many cases are queued right now.
func (l *Live) Resident() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.resident
}

// PeakResident reports the maximum number of cases that were queued at
// once; bounded by the budget.
func (l *Live) PeakResident() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.peak
}
