package source

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"stinspector/internal/trace"
)

// mkCase builds a tiny case with a deterministic identity and one event.
func mkCase(i int) *trace.Case {
	id := trace.CaseID{CID: "s", Host: "h", RID: i}
	return trace.NewCase(id, []trace.Event{{
		PID: i, Call: "read", Start: time.Duration(i) * time.Microsecond,
		Dur: time.Microsecond, FP: "/f", Size: 1,
	}})
}

// TestOrderedDeliversInOrder: every workers/window combination must
// deliver cases in exact index order.
func TestOrderedDeliversInOrder(t *testing.T) {
	const n = 100
	for _, cfg := range [][2]int{{1, 1}, {2, 2}, {4, 4}, {4, 16}, {16, 8}, {0, 0}} {
		s := Ordered(n, cfg[0], cfg[1], func(i int) (*trace.Case, error) {
			return mkCase(i), nil
		})
		for i := 0; i < n; i++ {
			c, err := s.Next()
			if err != nil {
				t.Fatalf("workers=%d window=%d: Next %d: %v", cfg[0], cfg[1], i, err)
			}
			if c.ID.RID != i {
				t.Fatalf("workers=%d window=%d: got case %d at position %d", cfg[0], cfg[1], c.ID.RID, i)
			}
		}
		if _, err := s.Next(); err != io.EOF {
			t.Fatalf("workers=%d window=%d: want io.EOF, got %v", cfg[0], cfg[1], err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOrderedWindowBound: with a slow consumer, the number of cases
// fetched but not yet consumed never exceeds the window.
func TestOrderedWindowBound(t *testing.T) {
	const n, workers, window = 64, 8, 4
	var inFlight, maxInFlight atomic.Int64
	s := Ordered(n, workers, window, func(i int) (*trace.Case, error) {
		cur := inFlight.Add(1)
		for {
			m := maxInFlight.Load()
			if cur <= m || maxInFlight.CompareAndSwap(m, cur) {
				break
			}
		}
		return mkCase(i), nil
	})
	defer s.Close()
	for i := 0; i < n; i++ {
		if _, err := s.Next(); err != nil {
			t.Fatal(err)
		}
		inFlight.Add(-1)
		if i%8 == 0 {
			time.Sleep(time.Millisecond) // let workers run ahead if they could
		}
	}
	if got := maxInFlight.Load(); got > window {
		t.Errorf("max cases in flight %d exceeds window %d", got, window)
	}
	if peak := PeakResident(s); peak == 0 || peak > window {
		t.Errorf("PeakResident = %d, want in [1, %d]", peak, window)
	}
}

// TestOrderedPerCaseErrors: a failing index surfaces as an error at its
// position; the stream continues past it, so join-all consumers see
// every failure and fail-fast consumers deterministically see the first.
func TestOrderedPerCaseErrors(t *testing.T) {
	const n = 20
	bad := map[int]bool{3: true, 7: true, 15: true}
	mk := func() Source {
		return Ordered(n, 4, 4, func(i int) (*trace.Case, error) {
			if bad[i] {
				return nil, fmt.Errorf("boom %d", i)
			}
			return mkCase(i), nil
		})
	}

	s := mk()
	var got []string
	kept := 0
	err := Walk(s, true, func(c *trace.Case) error { kept++; return nil })
	s.Close()
	if err == nil {
		t.Fatal("want joined errors")
	}
	for i := range bad {
		if !strings.Contains(err.Error(), fmt.Sprintf("boom %d", i)) {
			t.Errorf("joined error missing boom %d: %v", i, err)
		}
	}
	if kept != n-len(bad) {
		t.Errorf("kept %d cases, want %d", kept, n-len(bad))
	}

	// Fail-fast: always the smallest failing index, whatever the timing.
	for trial := 0; trial < 20; trial++ {
		s := mk()
		err := Walk(s, false, func(c *trace.Case) error { got = append(got, c.ID.String()); return nil })
		s.Close()
		if err == nil || !strings.Contains(err.Error(), "boom 3") {
			t.Fatalf("trial %d: want boom 3 first, got %v", trial, err)
		}
	}
}

// TestOrderedCloseStopsWorkers: abandoning a stream early must wind all
// worker goroutines down (the Close contract) — counted before/after.
func TestOrderedCloseStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 10; trial++ {
		s := Ordered(1000, 8, 8, func(i int) (*trace.Case, error) {
			time.Sleep(50 * time.Microsecond)
			return mkCase(i), nil
		})
		if _, err := s.Next(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Next(); err != ErrClosed {
			t.Fatalf("after Close: want ErrClosed, got %v", err)
		}
	}
	// Close waits for workers, so no settling loop should be needed;
	// allow a tiny grace for unrelated runtime goroutines.
	var after int
	for i := 0; i < 50; i++ {
		after = runtime.NumGoroutine()
		if after <= before {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestWrappersForwardPeakResident: the combinators must not hide the
// wrapped engine's resident-case accounting (regression: interface
// embedding promotes only Next/Close).
func TestWrappersForwardPeakResident(t *testing.T) {
	mk := func() Source {
		return Ordered(16, 2, 4, func(i int) (*trace.Case, error) { return mkCase(i), nil })
	}
	wrap := map[string]func(Source) Source{
		"filter":      func(s Source) Source { return Filter(s, func(trace.Event) bool { return true }) },
		"filterCases": func(s Source) Source { return FilterCases(s, func(*trace.Case) bool { return true }) },
		"withCloser":  func(s Source) Source { return WithCloser(s, io.NopCloser(nil)) },
	}
	for name, w := range wrap {
		s := w(mk())
		if _, err := Drain(s, false); err != nil {
			t.Fatal(err)
		}
		if got := PeakResident(s); got == 0 {
			t.Errorf("%s: PeakResident not forwarded (got 0)", name)
		}
		s.Close()
	}
}

// TestDrainMatchesFromLog: drain(stream(log)) round-trips the log.
func TestDrainMatchesFromLog(t *testing.T) {
	cases := make([]*trace.Case, 30)
	for i := range cases {
		cases[i] = mkCase(i)
	}
	el := trace.MustNewEventLog(cases...)
	s := FromLog(el)
	defer s.Close()
	got, err := Drain(s, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCases() != el.NumCases() || got.NumEvents() != el.NumEvents() {
		t.Fatalf("drained %d cases / %d events, want %d / %d",
			got.NumCases(), got.NumEvents(), el.NumCases(), el.NumEvents())
	}
}

// TestNextBatch: batches are ordered, short at EOF, and error-delimited.
func TestNextBatch(t *testing.T) {
	s := Ordered(10, 2, 4, func(i int) (*trace.Case, error) {
		if i == 7 {
			return nil, errors.New("bad seven")
		}
		return mkCase(i), nil
	})
	defer s.Close()
	b1, err := NextBatch(s, 4)
	if err != nil || len(b1) != 4 {
		t.Fatalf("batch 1: %d cases, err %v", len(b1), err)
	}
	b2, err := NextBatch(s, 4)
	if err == nil || len(b2) != 3 {
		t.Fatalf("batch 2: want 3 cases + error, got %d, %v", len(b2), err)
	}
	b3, err := NextBatch(s, 4)
	if err != io.EOF || len(b3) != 2 {
		t.Fatalf("batch 3: want 2 cases + io.EOF, got %d, %v", len(b3), err)
	}
	if _, err := NextBatch(s, 0); err == nil {
		t.Error("batch size 0 accepted")
	}
}

// TestFilterDropsEmptyCases: the streaming filter matches
// EventLog.Filter — events dropped, empty cases removed entirely.
func TestFilterDropsEmptyCases(t *testing.T) {
	a := trace.NewCase(trace.CaseID{CID: "f", Host: "h", RID: 0}, []trace.Event{
		{PID: 1, Call: "read", FP: "/keep/x", Dur: time.Microsecond},
		{PID: 1, Call: "read", FP: "/drop/y", Dur: time.Microsecond},
	})
	b := trace.NewCase(trace.CaseID{CID: "f", Host: "h", RID: 1}, []trace.Event{
		{PID: 2, Call: "read", FP: "/drop/z", Dur: time.Microsecond},
	})
	el := trace.MustNewEventLog(a, b)
	keep := func(e trace.Event) bool { return strings.Contains(e.FP, "/keep") }

	s := Filter(FromLog(el), keep)
	defer s.Close()
	got, err := Drain(s, false)
	if err != nil {
		t.Fatal(err)
	}
	want := el.Filter(keep)
	if got.NumCases() != want.NumCases() || got.NumEvents() != want.NumEvents() {
		t.Fatalf("filtered stream: %d cases / %d events, want %d / %d",
			got.NumCases(), got.NumEvents(), want.NumCases(), want.NumEvents())
	}
}
