package source

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"stinspector/internal/trace"
)

// liveCase builds a minimal distinct case for queue tests.
func liveCase(i int) *trace.Case {
	id := trace.CaseID{CID: "live", Host: "h", RID: i}
	return trace.NewCase(id, []trace.Event{{
		CID: id.CID, Host: id.Host, RID: id.RID, PID: 100 + i,
		Call: "read", FP: "/data/f", Start: time.Duration(i) * time.Millisecond,
		Dur: time.Microsecond, Size: 1,
	}})
}

func TestLivePushNextFinish(t *testing.T) {
	l := NewLive(4, Block)
	for i := 0; i < 3; i++ {
		if err := l.Push(liveCase(i)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	l.Fail(errors.New("stalled: /x.st"))
	l.Finish()
	if err := l.Push(liveCase(9)); !errors.Is(err, ErrFinished) {
		t.Fatalf("push after Finish: got %v, want ErrFinished", err)
	}

	var got []int
	var recoverable int
	for {
		c, err := l.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			recoverable++
			continue
		}
		got = append(got, c.ID.RID)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("delivered %v, want [0 1 2]", got)
	}
	if recoverable != 1 {
		t.Errorf("recoverable errors: got %d, want 1", recoverable)
	}
	if l.PeakResident() != 3 {
		t.Errorf("peak resident: got %d, want 3", l.PeakResident())
	}
	// io.EOF is sticky once drained.
	if _, err := l.Next(); err != io.EOF {
		t.Errorf("Next after EOF: got %v", err)
	}
}

func TestLiveNextAfterClose(t *testing.T) {
	l := NewLive(2, Block)
	if err := l.Push(liveCase(0)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Next(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Next after Close: got %v, want ErrClosed", err)
	}
	if err := l.Push(liveCase(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Push after Close: got %v, want ErrClosed", err)
	}
}

// TestLiveBlockBackpressure: under Block, a producer pushing past the
// budget parks until the consumer frees a slot, and nothing is lost.
func TestLiveBlockBackpressure(t *testing.T) {
	const budget, n = 3, 24
	l := NewLive(budget, Block)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := l.Push(liveCase(i)); err != nil {
				done <- fmt.Errorf("push %d: %w", i, err)
				return
			}
		}
		l.Finish()
		done <- nil
	}()

	seen := 0
	for {
		c, err := l.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if c.ID.RID != seen {
			t.Fatalf("out-of-order delivery from a single producer: got %d, want %d", c.ID.RID, seen)
		}
		seen++
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Errorf("delivered %d cases, want %d (Block must lose nothing)", seen, n)
	}
	if p := l.PeakResident(); p > budget {
		t.Errorf("peak resident %d exceeded budget %d", p, budget)
	}
	if l.Shed() != 0 {
		t.Errorf("Block policy shed %d cases", l.Shed())
	}
}

// TestLiveShedOldest: with a full budget and no consumer, producers
// never block; the oldest cases are dropped and counted, the newest
// budget's worth survive.
func TestLiveShedOldest(t *testing.T) {
	const budget, n = 4, 16
	l := NewLive(budget, ShedOldest)
	pushDone := make(chan struct{})
	go func() {
		defer close(pushDone)
		for i := 0; i < n; i++ {
			if err := l.Push(liveCase(i)); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
		}
		l.Finish()
	}()
	select {
	case <-pushDone:
	case <-time.After(10 * time.Second):
		t.Fatal("ShedOldest producer blocked")
	}

	var got []int
	for {
		c, err := l.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, c.ID.RID)
	}
	if len(got) != budget {
		t.Fatalf("delivered %v, want the newest %d cases", got, budget)
	}
	for i, rid := range got {
		if rid != n-budget+i {
			t.Errorf("slot %d: got case %d, want %d (shed must drop the oldest)", i, rid, n-budget+i)
		}
	}
	if want := uint64(n - budget); l.Shed() != want {
		t.Errorf("shed counter: got %d, want %d", l.Shed(), want)
	}
	if p := l.PeakResident(); p > budget {
		t.Errorf("peak resident %d exceeded budget %d", p, budget)
	}
}

// TestLiveShedKeepsErrors: queued recoverable errors are positions, not
// payload — shedding drops cases around them, never the errors.
func TestLiveShedKeepsErrors(t *testing.T) {
	l := NewLive(2, ShedOldest)
	if err := l.Push(liveCase(0)); err != nil {
		t.Fatal(err)
	}
	l.Fail(errors.New("stall"))
	for i := 1; i < 5; i++ {
		if err := l.Push(liveCase(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Finish()
	var cases, errs int
	for {
		_, err := l.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			errs++
			continue
		}
		cases++
	}
	if errs != 1 {
		t.Errorf("errors delivered: got %d, want 1", errs)
	}
	if cases != 2 {
		t.Errorf("cases delivered: got %d, want 2 (budget)", cases)
	}
	if l.Shed() != 3 {
		t.Errorf("shed: got %d, want 3", l.Shed())
	}
}

// TestLiveCloseUnblocksWedgedProducer is the cancellation-propagation
// pin for the infinite-source Close contract: a producer wedged in Push
// against a full Block budget — one that will never finish on its own —
// must be woken by Close with ErrClosed, and Close itself must return
// without waiting for it. A Close that waited for producers (the way
// Ordered's waits for its own workers) would deadlock right here.
func TestLiveCloseUnblocksWedgedProducer(t *testing.T) {
	l := NewLive(1, Block)
	if err := l.Push(liveCase(0)); err != nil {
		t.Fatal(err)
	}

	const wedged = 4
	errc := make(chan error, wedged)
	var started sync.WaitGroup
	started.Add(wedged)
	for i := 0; i < wedged; i++ {
		go func(i int) {
			started.Done()
			errc <- l.Push(liveCase(1 + i)) // budget full: parks forever
		}(i)
	}
	started.Wait()
	// Give the producers a moment to actually park in Push; the test is
	// about waking them, which is correct whether or not they got there,
	// but parking first exercises the interesting path.
	time.Sleep(10 * time.Millisecond)

	closed := make(chan struct{})
	go func() {
		l.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on a wedged producer")
	}

	for i := 0; i < wedged; i++ {
		select {
		case err := <-errc:
			if !errors.Is(err, ErrClosed) {
				t.Errorf("wedged producer %d returned %v, want ErrClosed", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("wedged producer never woke after Close")
		}
	}
}

// TestLiveConcurrentProducers: many producers, one consumer, both
// policies, under the race detector. Every pushed case is either
// delivered or (under ShedOldest) counted shed — none vanish.
func TestLiveConcurrentProducers(t *testing.T) {
	for _, policy := range []Policy{Block, ShedOldest} {
		t.Run(policy.String(), func(t *testing.T) {
			const producers, per = 8, 50
			l := NewLive(5, policy)
			var wg sync.WaitGroup
			wg.Add(producers)
			for p := 0; p < producers; p++ {
				go func(p int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if err := l.Push(liveCase(p*per + i)); err != nil {
							t.Errorf("producer %d: %v", p, err)
							return
						}
					}
				}(p)
			}
			go func() {
				wg.Wait()
				l.Finish()
			}()
			delivered := 0
			for {
				_, err := l.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				delivered++
			}
			total := delivered + int(l.Shed())
			if total != producers*per {
				t.Errorf("delivered %d + shed %d = %d, want %d", delivered, l.Shed(), total, producers*per)
			}
			if policy == Block && l.Shed() != 0 {
				t.Errorf("Block shed %d", l.Shed())
			}
			if p := l.PeakResident(); p > 5 {
				t.Errorf("peak resident %d exceeded budget", p)
			}
		})
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"block", Block, true},
		{"", Block, true},
		{"shed-oldest", ShedOldest, true},
		{"drop", Block, false},
	} {
		got, err := ParsePolicy(tc.in)
		if (err == nil) != tc.ok || (err == nil && got != tc.want) {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}
