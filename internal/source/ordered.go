package source

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"stinspector/internal/trace"
)

// Fetch loads the case at position i of a fixed, pre-sorted work list.
// Implementations must be safe for concurrent calls with distinct i.
type Fetch func(i int) (*trace.Case, error)

// Ordered streams the results of fetch(0..n-1) in index order while
// running up to workers fetches concurrently, with at most window cases
// resident (fetched but not yet consumed) at any moment. It is the one
// bounded-reorder engine behind all three ingestion backends: the same
// worker-claim discipline as par.ForEach (monotonic index claims), but
// feeding an ordered, bounded channel instead of a materialized slice,
// so peak memory is O(window) whatever the trace-set size.
//
// workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 fetches lazily
// inline (no goroutines). window <= 0 defaults to 2*workers; workers is
// clamped to window, since more workers than resident slots can never
// run concurrently. Delivery order — and therefore which failing index
// a fail-fast consumer reports first — is deterministic for every
// workers/window setting.
func Ordered(n, workers, window int, fetch Fetch) Source {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if window <= 0 {
		window = 2 * workers
	}
	if workers > window {
		workers = window
	}
	if workers <= 1 {
		return &seqSource{n: n, fetch: fetch}
	}
	s := &ordSource{
		n:       n,
		fetch:   fetch,
		results: make(chan indexed, window),
		sem:     make(chan struct{}, window),
		stop:    make(chan struct{}),
		pending: make(map[int]indexed, window),
	}
	for i := 0; i < window; i++ {
		s.sem <- struct{}{}
	}
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.worker()
	}
	return s
}

// OrderedRange is Ordered over the half-open index range [a, b) of the
// work list: fetch is still addressed in the list's own coordinates,
// which is what range-addressed backends (an archive's case index, say)
// need to stream a slice without re-numbering their entries. An empty
// or inverted range yields an immediately-exhausted source.
func OrderedRange(a, b, workers, window int, fetch Fetch) Source {
	if b < a {
		b = a
	}
	if a == 0 {
		return Ordered(b, workers, window, fetch)
	}
	return Ordered(b-a, workers, window, func(i int) (*trace.Case, error) {
		return fetch(a + i)
	})
}

// indexed is one fetch outcome traveling from a worker to the consumer.
type indexed struct {
	i   int
	c   *trace.Case
	err error
}

type ordSource struct {
	n     int
	fetch Fetch

	// ticket hands out fetch indices; claims are monotonic, and the
	// window semaphore bounds claimed-but-unconsumed indices, so index
	// claimed <= consumed + window always holds.
	ticket  atomic.Int64
	sem     chan struct{}
	results chan indexed
	stop    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once

	// Consumer state (single-goroutine by the Source contract).
	next    int
	pending map[int]indexed
	closed  bool

	resident atomic.Int64
	peak     atomic.Int64
}

func (s *ordSource) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.sem:
		}
		i := int(s.ticket.Add(1)) - 1
		if i >= s.n {
			return
		}
		c, err := s.fetch(i)
		if c != nil {
			cur := s.resident.Add(1)
			for {
				p := s.peak.Load()
				if cur <= p || s.peak.CompareAndSwap(p, cur) {
					break
				}
			}
		}
		select {
		case s.results <- indexed{i: i, c: c, err: err}:
		case <-s.stop:
			return
		}
	}
}

func (s *ordSource) Next() (*trace.Case, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if s.next >= s.n {
		return nil, io.EOF
	}
	for {
		if r, ok := s.pending[s.next]; ok {
			delete(s.pending, s.next)
			s.next++
			if r.c != nil {
				s.resident.Add(-1)
			}
			// Hand the freed window slot back to the workers. Token
			// conservation makes this send non-blocking: sem starts with
			// window tokens, every worker claim moves one token from sem
			// to the claimed index (or destroys it when the claim lands
			// past n), and each delivered index refunds its token exactly
			// once — right here. So at this point
			//
			//	tokens in sem + tokens held by undelivered claims
			//	  + destroyed tokens + 1 (this index's token) == window
			//
			// and sem holds at most window-1 tokens; the buffered send
			// always succeeds. A silent drop here would instead shrink
			// the effective window permanently, so a full channel is a
			// broken invariant worth crashing on, not a slot to leak.
			select {
			case s.sem <- struct{}{}:
			default:
				panic("source: ordered window refund would block; token invariant violated")
			}
			return r.c, r.err
		}
		r := <-s.results
		s.pending[r.i] = r
	}
}

// Close cancels outstanding fetches and waits for the workers to exit.
// The wait is safe only because Ordered's workers are its own and every
// fetch terminates: this is the finite-source half of the Source.Close
// contract. An infinite or externally-produced stream must use Live,
// whose Close never waits on producers — waiting here for a producer
// that never finishes would wedge the whole shutdown path.
func (s *ordSource) Close() error {
	s.closed = true
	s.once.Do(func() { close(s.stop) })
	s.wg.Wait()
	return nil
}

// PeakResident reports the maximum number of cases that were resident
// (fetched, not yet consumed) at once; bounded by the window.
func (s *ordSource) PeakResident() int { return int(s.peak.Load()) }

// seqSource is the workers == 1 path: fully lazy, one case resident.
type seqSource struct {
	n, next int
	fetch   Fetch
	closed  bool
	any     bool
}

func (s *seqSource) Next() (*trace.Case, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if s.next >= s.n {
		return nil, io.EOF
	}
	c, err := s.fetch(s.next)
	s.next++
	if c != nil {
		s.any = true
	}
	return c, err
}

func (s *seqSource) Close() error {
	s.closed = true
	return nil
}

func (s *seqSource) PeakResident() int {
	if s.any {
		return 1
	}
	return 0
}
