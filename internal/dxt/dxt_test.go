package dxt

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"stinspector/internal/dfg"
	"stinspector/internal/iorsim"
	"stinspector/internal/pm"
	"stinspector/internal/trace"
)

const sample = `
# DXT, file_id: 1234, file_name: /p/scratch/u/ssf/test
# DXT, rank: 0, hostname: jwc001
# Module    Rank  Wt/Rd  Segment          Offset       Length    Start(s)      End(s)
 X_POSIX       0  write        0               0      1048576      0.001200      0.004700
 X_POSIX       0  write        1         1048576      1048576      0.004900      0.008100
 X_MPIIO       0   read        2               0      1048576      0.010000      0.012500
# DXT, file_id: 1234, file_name: /p/scratch/u/ssf/test
# DXT, rank: 1, hostname: jwc002
# Module    Rank  Wt/Rd  Segment          Offset       Length    Start(s)      End(s)
 X_POSIX       1  write        0        16777216      1048576      0.002000      0.009000
`

func TestParseSample(t *testing.T) {
	recs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Module != "X_POSIX" || !r.IsWrite || r.Rank != 0 {
		t.Errorf("record 0 = %+v", r)
	}
	if r.FileName != "/p/scratch/u/ssf/test" {
		t.Errorf("file = %q", r.FileName)
	}
	if r.Length != 1048576 || r.Offset != 0 {
		t.Errorf("length/offset = %d/%d", r.Length, r.Offset)
	}
	if r.Start != 1200*time.Microsecond || r.End != 4700*time.Microsecond {
		t.Errorf("start/end = %v/%v", r.Start, r.End)
	}
	if recs[2].Module != "X_MPIIO" || recs[2].IsWrite {
		t.Errorf("record 2 = %+v", recs[2])
	}
	if recs[3].Hostname != "jwc002" || recs[3].Rank != 1 {
		t.Errorf("record 3 = %+v", recs[3])
	}
}

func TestToEventLog(t *testing.T) {
	recs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	log, err := ToEventLog("dxt", recs)
	if err != nil {
		t.Fatal(err)
	}
	if log.NumCases() != 2 || log.NumEvents() != 4 {
		t.Fatalf("log = %d cases / %d events", log.NumCases(), log.NumEvents())
	}
	c := log.Case(trace.CaseID{CID: "dxt", Host: "jwc001", RID: 0})
	if c == nil || c.Len() != 3 {
		t.Fatalf("rank-0 case = %v", c)
	}
	// Calls are mapped per module.
	if c.Events[0].Call != "write" || c.Events[2].Call != "pread64" {
		t.Errorf("calls = %s, %s", c.Events[0].Call, c.Events[2].Call)
	}
	if c.Events[0].Dur != 3500*time.Microsecond {
		t.Errorf("dur = %v", c.Events[0].Dur)
	}
	// The converted log flows through the standard pipeline.
	g := dfg.Build(pm.Build(log, pm.CallTopDirs{Depth: 2}, pm.BuildOptions{Endpoints: true}))
	if !g.HasNode("write:/p/scratch") {
		t.Errorf("DFG missing DXT-derived node: %s", g)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		" X_POSIX 0 write 0 0 100 0.1 0.2",                          // no file header
		"# DXT, file_name: /f\n X_WAT 0 write 0 0 100 0.1 0.2",      // module
		"# DXT, file_name: /f\n X_POSIX 0 chmod 0 0 100 0.1 0.2",    // op
		"# DXT, file_name: /f\n X_POSIX 0 write 0 0 100 0.2 0.1",    // end < start
		"# DXT, file_name: /f\n X_POSIX zero write 0 0 100 0.1 0.2", // rank
		"# DXT, file_name: /f\n X_POSIX 0 write 0 0 abc 0.1 0.2",    // length
		"# DXT, file_name: /f\n X_POSIX 0 write 0 0 100",            // columns
	}
	for _, input := range bad {
		if _, err := Parse(strings.NewReader(input)); err == nil {
			t.Errorf("Parse accepted %q", input)
		}
	}
}

// Round trip: an IOR simulation exported as DXT and re-ingested produces
// the same transfer-level DFG as the direct path (sizeless calls like
// openat/lseek are not expressible in DXT and are excluded from both
// sides).
func TestDXTRoundTripAgainstIOR(t *testing.T) {
	res, err := iorsim.Run(iorsim.Config{
		CID: "dxt", Ranks: 4, Hosts: 2, TransferSize: 1 << 20, BlockSize: 4 << 20,
		Segments: 2, Write: true, Read: true, ReorderTasks: true, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	skipped, err := Write(&buf, res.Log)
	if err != nil {
		t.Fatal(err)
	}
	if skipped == 0 {
		t.Errorf("expected openat/lseek/close/fsync records to be skipped")
	}
	recs, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, buf.String())
	}
	back, err := ToEventLog("dxt", recs)
	if err != nil {
		t.Fatal(err)
	}

	transfersOnly := res.Log.FilterCalls("read", "write", "pread64", "pwrite64")
	if back.NumEvents() != transfersOnly.NumEvents() {
		t.Fatalf("events = %d, want %d", back.NumEvents(), transfersOnly.NumEvents())
	}
	m := pm.CallTopDirs{Depth: 2}
	build := func(el *trace.EventLog) *dfg.Graph {
		return dfg.Build(pm.Build(el, m, pm.BuildOptions{Endpoints: true}))
	}
	direct := build(transfersOnly)
	viaDXT := build(back)
	if !viaDXT.Equal(direct) {
		t.Errorf("DXT round trip changed the transfer DFG:\n%s\nvs\n%s", viaDXT, direct)
	}
	// Byte totals preserved.
	if back.TotalBytes() != transfersOnly.TotalBytes() {
		t.Errorf("bytes = %d, want %d", back.TotalBytes(), transfersOnly.TotalBytes())
	}
}
