package dxt

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// TestToEventLogParallelEquivalence: concurrent case construction is
// deterministic for every worker count.
func TestToEventLogParallelEquivalence(t *testing.T) {
	var records []Record
	for rank := 0; rank < 13; rank++ {
		for seg := 0; seg < 40; seg++ {
			records = append(records, Record{
				Module:   "X_POSIX",
				Rank:     rank,
				Hostname: fmt.Sprintf("node%02d", rank%4),
				FileName: "/p/scratch/u/ssf/test",
				IsWrite:  seg%2 == 0,
				Segment:  seg,
				Offset:   int64(seg) * 1048576,
				Length:   1048576,
				Start:    time.Duration(seg) * time.Millisecond,
				End:      time.Duration(seg)*time.Millisecond + 400*time.Microsecond,
			})
		}
	}
	want, err := ToEventLogParallel("dxt", records, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 3, 16} {
		got, err := ToEventLogParallel("dxt", records, p)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", p, err)
		}
		if got.NumCases() != want.NumCases() {
			t.Fatalf("parallelism=%d: %d cases, want %d", p, got.NumCases(), want.NumCases())
		}
		gc, wc := got.Cases(), want.Cases()
		for i := range gc {
			if gc[i].ID != wc[i].ID || !reflect.DeepEqual(gc[i].Events, wc[i].Events) {
				t.Fatalf("parallelism=%d: case %d differs", p, i)
			}
		}
	}
}
