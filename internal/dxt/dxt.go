// Package dxt ingests Darshan DXT (eXtended Tracing) text dumps, the
// per-access trace format produced by darshan-dxt-parser. Section II of
// the paper states that the methodology "does not depend on strace and
// can be applied over data instrumented by one of the other existing
// tools"; this package demonstrates that claim by mapping DXT records
// onto the same event model the strace ingester fills.
//
// The accepted format is the darshan-dxt-parser text output:
//
//	# DXT, file_id: 1234, file_name: /p/scratch/u/ssf/test
//	# DXT, rank: 0, hostname: jwc001
//	# Module    Rank  Wt/Rd  Segment          Offset       Length    Start(s)      End(s)
//	 X_POSIX       0  write        0               0      1048576      0.0012      0.0047
//	 X_MPIIO      0   read         1         1048576      1048576      0.0050      0.0081
//
// Attribute mapping: the Wt/Rd column becomes the call name ("write" or
// "read"; X_MPIIO records become "pwrite64"/"pread64", matching the
// system calls the MPI-IO layer issues), file_name becomes fp, Length
// becomes size, Start(s) becomes the start timestamp (DXT times are
// relative to job start) and End−Start the duration. The rank becomes
// both RID and PID.
package dxt

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"stinspector/internal/intern"
	"stinspector/internal/source"
	"stinspector/internal/trace"
)

// Record is one parsed DXT access line with its file/rank context.
type Record struct {
	Module   string // "X_POSIX" or "X_MPIIO"
	Rank     int
	Hostname string
	FileName string
	IsWrite  bool
	Segment  int
	Offset   int64
	Length   int64
	Start    time.Duration
	End      time.Duration
}

// ParseError reports an unparseable DXT line.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("dxt: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// Parse reads a darshan-dxt-parser text stream into records. Header
// comments set the current file/rank context; access lines inherit it.
// Header strings canonicalize through the process-wide intern.Default;
// ParseSyms scopes them to a per-pass table instead.
func Parse(r io.Reader) ([]Record, error) {
	return ParseSyms(r, nil)
}

// ParseSyms is Parse canonicalizing the header strings (file names,
// hostnames) through the given symbol table — nil means the
// process-wide intern.Default, under which every record of a group
// shares the interned string and paths seen by other ingestion
// backends resolve to the same allocation. A scoped table
// (intern.NewTable) confines an unbounded file-name vocabulary to the
// pass: drop the records and the table together and the strings are
// collectable.
func ParseSyms(r io.Reader, t *intern.Table) ([]Record, error) {
	cache := intern.CacheFor(t)
	defer intern.PutCache(cache)
	var (
		records  []Record
		fileName string
		hostname string
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// Header comments set the file/host context; the rank
			// header is informative only (access lines carry their
			// own rank column).
			if v, ok := headerValue(line, "file_name:"); ok {
				fileName = cache.Canon(v)
			}
			if v, ok := headerValue(line, "hostname:"); ok {
				hostname = cache.Canon(v)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 8 {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: "want 8 columns"}
		}
		module := fields[0]
		if module != "X_POSIX" && module != "X_MPIIO" && module != "X_STDIO" {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: "unknown module"}
		}
		recRank, err1 := strconv.Atoi(fields[1])
		op := strings.ToLower(fields[2])
		seg, err2 := strconv.Atoi(fields[3])
		off, err3 := strconv.ParseInt(fields[4], 10, 64)
		length, err4 := strconv.ParseInt(fields[5], 10, 64)
		start, err5 := parseDecimalSeconds(fields[6])
		end, err6 := parseDecimalSeconds(fields[7])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil || err6 != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: "bad numeric column"}
		}
		if op != "write" && op != "read" {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: "op must be write or read"}
		}
		if end < start {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: "end before start"}
		}
		if fileName == "" {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: "access record before file_name header"}
		}
		records = append(records, Record{
			Module:   module,
			Rank:     recRank,
			Hostname: hostname,
			FileName: fileName,
			IsWrite:  op == "write",
			Segment:  seg,
			Offset:   off,
			Length:   length,
			Start:    start,
			End:      end,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return records, nil
}

func headerValue(line, key string) (string, bool) {
	i := strings.Index(line, key)
	if i < 0 {
		return "", false
	}
	v := line[i+len(key):]
	if j := strings.IndexByte(v, ','); j >= 0 {
		v = v[:j]
	}
	return strings.TrimSpace(v), true
}

// call maps a DXT record onto the system call its layer issues.
func (r Record) call() string {
	switch r.Module {
	case "X_MPIIO":
		if r.IsWrite {
			return "pwrite64"
		}
		return "pread64"
	default:
		if r.IsWrite {
			return "write"
		}
		return "read"
	}
}

// ToEventLog converts parsed records into an event-log: one case per
// (hostname, rank), identified by the given command id. Hostless records
// fall back to "host0". Case construction (which time-sorts each case's
// events) runs concurrently with GOMAXPROCS workers.
func ToEventLog(cid string, records []Record) (*trace.EventLog, error) {
	return ToEventLogParallel(cid, records, 0)
}

// ToEventLogParallel is ToEventLog with an explicit worker bound for the
// per-case construction step; parallelism 0 means runtime.GOMAXPROCS(0).
// The resulting log is deterministic for every setting. It is the
// materializing form of Stream.
func ToEventLogParallel(cid string, records []Record, parallelism int) (*trace.EventLog, error) {
	src := Stream(cid, records, parallelism, 0)
	defer src.Close()
	return source.Drain(src, false)
}

// Stream groups parsed records into per-(hostname, rank) cases and
// streams them in CaseID order: grouping is a single pass over the
// records, but the expensive per-case step — event construction and the
// time sort — runs lazily in parallelism workers with at most window
// constructed cases resident (0 = 2×workers). Hostless records fall
// back to "host0", as in ToEventLog.
func Stream(cid string, records []Record, parallelism, window int) source.Source {
	groups := make(map[trace.CaseID][]Record)
	for _, r := range records {
		host := r.Hostname
		if host == "" {
			host = "host0"
		}
		id := trace.CaseID{CID: cid, Host: host, RID: r.Rank}
		groups[id] = append(groups[id], r)
	}
	ids := make([]trace.CaseID, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return source.Ordered(len(ids), parallelism, window, func(i int) (*trace.Case, error) {
		recs := groups[ids[i]]
		events := make([]trace.Event, len(recs))
		for j, r := range recs {
			events[j] = trace.Event{
				PID:   r.Rank,
				Call:  r.call(),
				Start: r.Start,
				Dur:   r.End - r.Start,
				FP:    r.FileName,
				Size:  r.Length,
			}
		}
		return trace.NewCase(ids[i], events), nil
	})
}

// Write renders an event-log in the darshan-dxt-parser text format, one
// header per (file, case) group. Only transfer events (read/write
// variants) are expressible in DXT; others are skipped and counted.
func Write(w io.Writer, log *trace.EventLog) (skipped int, err error) {
	bw := bufio.NewWriter(w)
	for _, c := range log.Cases() {
		// Group the case's events by file, preserving order.
		byFile := make(map[string][]trace.Event)
		var order []string
		for _, e := range c.Events {
			_, _, ok := dxtOp(e.Call)
			if !ok || !e.HasSize() {
				skipped++
				continue
			}
			if _, seen := byFile[e.FP]; !seen {
				order = append(order, e.FP)
			}
			byFile[e.FP] = append(byFile[e.FP], e)
		}
		for _, fp := range order {
			fmt.Fprintf(bw, "# DXT, file_id: %d, file_name: %s\n", fileID(fp), fp)
			fmt.Fprintf(bw, "# DXT, rank: %d, hostname: %s\n", c.ID.RID, c.ID.Host)
			fmt.Fprintf(bw, "# Module Rank Wt/Rd Segment Offset Length Start(s) End(s)\n")
			for seg, e := range byFile[fp] {
				module, op, _ := dxtOp(e.Call)
				fmt.Fprintf(bw, " %s %d %s %d %d %d %s %s\n",
					module, c.ID.RID, op, seg, int64(0), e.Size,
					fmtSeconds(e.Start), fmtSeconds(e.End()))
			}
		}
	}
	return skipped, bw.Flush()
}

func dxtOp(call string) (module, op string, ok bool) {
	switch call {
	case "write", "writev", "pwritev", "pwritev2":
		return "X_POSIX", "write", true
	case "read", "readv", "preadv", "preadv2":
		return "X_POSIX", "read", true
	case "pwrite64":
		return "X_MPIIO", "write", true
	case "pread64":
		return "X_MPIIO", "read", true
	}
	return "", "", false
}

// parseDecimalSeconds parses "12.345678" exactly (no float rounding),
// microsecond-or-finer resolution up to 9 fractional digits.
func parseDecimalSeconds(s string) (time.Duration, error) {
	intPart, fracPart, hasFrac := strings.Cut(s, ".")
	if intPart == "" {
		intPart = "0"
	}
	sec, err := strconv.ParseInt(intPart, 10, 64)
	if err != nil || sec < 0 {
		return 0, fmt.Errorf("bad seconds %q", s)
	}
	var ns int64
	if hasFrac {
		if fracPart == "" || len(fracPart) > 9 {
			return 0, fmt.Errorf("bad seconds %q", s)
		}
		f, err := strconv.ParseInt(fracPart, 10, 64)
		if err != nil || f < 0 {
			return 0, fmt.Errorf("bad seconds %q", s)
		}
		for i := len(fracPart); i < 9; i++ {
			f *= 10
		}
		ns = f
	}
	return time.Duration(sec)*time.Second + time.Duration(ns), nil
}

// fmtSeconds renders a duration as decimal seconds at microsecond
// resolution, matching darshan-dxt-parser output.
func fmtSeconds(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	return fmt.Sprintf("%d.%06d", us/1e6, us%1e6)
}

func fileID(fp string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(fp); i++ {
		h ^= uint32(fp[i])
		h *= 16777619
	}
	return h
}
