package dxt

import (
	"reflect"
	"strings"
	"testing"

	"stinspector/internal/intern"
)

// TestParseSymsScoped: ParseSyms canonicalizes the dump's header
// strings (file name, hostname) through the scoped table only, and the
// parsed records are identical to a Default-table parse.
func TestParseSymsScoped(t *testing.T) {
	const dump = `# DXT, file_id: 7, file_name: /scoped-dxt-test/out.dat
# DXT, rank: 0, hostname: scoped-dxt-host
# Module    Rank  Wt/Rd  Segment          Offset       Length    Start(s)      End(s)
 X_POSIX       0  write        0               0         4096      0.0010      0.0020
`
	want, err := Parse(strings.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}

	tab := intern.NewTable()
	d0 := intern.Default.Len()
	got, err := ParseSyms(strings.NewReader(dump), tab)
	if err != nil {
		t.Fatal(err)
	}
	if intern.Default.Len() != d0 {
		t.Errorf("scoped parse grew Default: %d -> %d", d0, intern.Default.Len())
	}
	if tab.Len() != 3 { // "", file name, hostname
		t.Errorf("scoped table Len = %d, want 3", tab.Len())
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("scoped records differ:\n got %+v\nwant %+v", got, want)
	}
}
