package strace

// decode.go is the semantic decoding layer: per-syscall-class byte-level
// decoders that understand the *argument structure* of a record instead
// of treating it as an opaque string. It owns path extraction (with
// dirfd resolution), C-literal unescaping, execve argv decoding and
// socket-address decoding, and exposes the typed DecodeRecord view the
// behavior package builds profiles from.
//
// Everything here stays on the zero-alloc hot path: decoders scan bytes
// of the argument strings (which are subslices of the parse arena) and
// build derived strings — dirfd joins, spawn command lines, canonical
// connection subjects — into a caller-owned scratch buffer that is
// canonicalized through the symbol cache with CanonBytes. No regexp is
// ever compiled or matched per event: the regexp-per-line approach of
// tools like package-analysis is exactly the anti-pattern this layer
// exists to avoid.

import (
	"strconv"
	"strings"
	"unicode/utf8"
)

// DecodeKind classifies what DecodeRecord understood about a record.
type DecodeKind uint8

const (
	// DecodeNone means the record carried no decodable subject.
	DecodeNone DecodeKind = iota
	// DecodeFile is a file operation (open/read/write/unlink/rename…).
	DecodeFile
	// DecodeSpawn is a process execution (execve/execveat).
	DecodeSpawn
	// DecodeConnect is a network connection attempt.
	DecodeConnect
)

// Decoded is the typed form of one record under the semantic decoding
// layer: a file access, a process spawn or a network connection, with
// the class-specific attributes filled in.
type Decoded struct {
	Kind DecodeKind
	// Path is the primary file subject: the resolved path of a file
	// operation (dirfd joins applied, escapes decoded, cwd-relative
	// paths marked with a "./" prefix) or the program path of a spawn.
	Path string
	// Path2 is the destination path of rename/link operations.
	Path2 string
	// Argv is the decoded argument vector of a spawn, when the trace
	// carried one.
	Argv []string
	// Family names the decoded socket-address family (AF_INET,
	// AF_INET6, AF_UNIX).
	Family string
	// Addr is the canonical connection subject: "ip:port" for IPv4,
	// "[addr]:port" for IPv6, the socket path for unix sockets.
	Addr string
	// Port is the decoded port for internet families.
	Port int
}

// DecodeRecord decodes one complete record into its typed semantic
// form. It is the convenience view over the same per-class decoders the
// hot path uses; callers that only need the event file-path get it
// without this struct via the record-to-event conversion.
func DecodeRecord(r Record) Decoded {
	switch r.Call {
	case "execve":
		return decodeSpawn(r, 0, 1)
	case "execveat":
		return decodeSpawn(r, 1, 2)
	case "connect":
		return decodeConnect(r)
	case "rename", "renameat", "renameat2", "link", "symlink":
		d := Decoded{Kind: DecodeFile, Path: extractPath(r), Path2: renameDst(r)}
		if d.Path == "" {
			d.Kind = DecodeNone
		}
		return d
	}
	if p := extractPath(r); p != "" {
		return Decoded{Kind: DecodeFile, Path: p}
	}
	return Decoded{}
}

func decodeSpawn(r Record, pathIdx, argvIdx int) Decoded {
	var scratch []byte
	p, built, ok := spawnInto(r, pathIdx, argvIdx, &scratch)
	if !ok {
		return Decoded{}
	}
	if built {
		p = string(scratch)
	}
	d := Decoded{Kind: DecodeSpawn, Path: p}
	if len(r.Args) > argvIdx {
		d.Argv, _ = decodeArgv(r.Args[argvIdx])
	}
	return d
}

func decodeConnect(r Record) Decoded {
	if len(r.Args) >= 2 {
		if sa, ok := parseSockaddr(r.Args[1]); ok {
			d := Decoded{Kind: DecodeConnect, Family: sa.family.name(), Port: sa.port}
			if b, ok := appendSockaddrSubject(nil, r.Args[1]); ok {
				d.Addr = string(b)
			}
			return d
		}
	}
	if p, ok := r.FirstArgPath(); ok {
		return Decoded{Kind: DecodeConnect, Addr: p}
	}
	return Decoded{}
}

// renameDst extracts the destination path of a rename/link record,
// resolving a relative destination against its dirfd argument.
func renameDst(r Record) string {
	idx := 1
	if strings.HasSuffix(r.Call, "at") || strings.HasSuffix(r.Call, "at2") {
		idx = 3
	}
	if len(r.Args) <= idx {
		return ""
	}
	body, esc, ok := unquoteBody(r.Args[idx])
	if !ok {
		return ""
	}
	if len(body) > 0 && body[0] == '/' {
		if !esc {
			return body
		}
		return string(appendUnquoted(nil, body))
	}
	var scratch []byte
	resolveDirRel(r.Args[idx-1], body, esc, &scratch)
	return string(scratch)
}

// extractPath finds the file path of the record, following the per-call
// argument conventions of strace -y output. It is the materializing
// wrapper over extractPathInto for callers off the hot path.
func extractPath(r Record) string {
	var scratch []byte
	p, built := extractPathInto(r, &scratch)
	if built {
		return string(scratch)
	}
	return p
}

// extractPathInto is the hot-path form of path extraction: when the
// path is a subslice of existing strings it is returned directly
// (built == false, no allocation); when it must be assembled — a dirfd
// join, an unescape, a spawn command line, a connection subject — the
// bytes are built into *scratch and built == true is returned, so the
// caller canonicalizes them with CanonBytes without ever materializing
// an intermediate string.
func extractPathInto(r Record, scratch *[]byte) (string, bool) {
	switch r.Call {
	case "openat", "openat2", "newfstatat", "fstatat64", "statx",
		"unlinkat", "mkdirat", "faccessat", "faccessat2", "readlinkat",
		"utimensat", "fchmodat", "fchownat":
		// openat(AT_FDCWD, "/etc/passwd", O_RDONLY) = 3</etc/passwd>
		// openat(5</data>, "part.bin", O_RDONLY) = 6</data/part.bin>
		if r.RetPath != "" {
			return r.RetPath, false
		}
		if len(r.Args) >= 2 {
			if body, esc, ok := unquoteBody(r.Args[1]); ok {
				return resolvePath(r.Args[0], body, esc, scratch)
			}
		}
	case "open", "creat", "stat", "lstat", "stat64", "access", "unlink",
		"mkdir", "rmdir", "truncate", "readlink", "chdir", "chmod",
		"chown", "utime", "statfs", "getxattr":
		if r.RetPath != "" {
			return r.RetPath, false
		}
		if len(r.Args) >= 1 {
			if body, esc, ok := unquoteBody(r.Args[0]); ok {
				if !esc {
					return body, false
				}
				*scratch = appendUnquoted((*scratch)[:0], body)
				return "", true
			}
		}
	case "rename", "renameat", "renameat2", "link", "symlink":
		// The source path identifies the activity; for the *at
		// variants the path arguments sit at positions 1 and 3.
		idx := 0
		if strings.HasSuffix(r.Call, "at") || strings.HasSuffix(r.Call, "at2") {
			idx = 1
		}
		if len(r.Args) > idx {
			if body, esc, ok := unquoteBody(r.Args[idx]); ok {
				if idx == 0 {
					// Plain rename/link paths are cwd-relative or
					// absolute as written.
					if !esc {
						return body, false
					}
					*scratch = appendUnquoted((*scratch)[:0], body)
					return "", true
				}
				return resolvePath(r.Args[idx-1], body, esc, scratch)
			}
		}
	case "execve":
		if p, built, ok := spawnInto(r, 0, 1, scratch); ok {
			return p, built
		}
	case "execveat":
		if p, built, ok := spawnInto(r, 1, 2, scratch); ok {
			return p, built
		}
	case "connect":
		// connect(3<socket:[12345]>, {sa_family=AF_INET, …}, 16): the
		// canonical subject comes from the address struct; the
		// socket-inode annotation is only the fallback.
		if len(r.Args) >= 2 {
			if b, ok := appendSockaddrSubject((*scratch)[:0], r.Args[1]); ok {
				*scratch = b
				return "", true
			}
		}
	case "mmap", "mmap2":
		// mmap(NULL, 8192, PROT_READ, MAP_PRIVATE, 3</lib/x.so>, 0):
		// the fd is argument 5.
		if len(r.Args) >= 5 {
			if _, p, ok := SplitFDPath(r.Args[4]); ok {
				return p, false
			}
		}
		return "", false
	}
	if p, ok := r.FirstArgPath(); ok {
		return p, false
	}
	// Fall back to a quoted first argument for calls not listed above.
	if len(r.Args) >= 1 {
		if body, esc, ok := unquoteBody(r.Args[0]); ok {
			if !esc {
				return body, false
			}
			*scratch = appendUnquoted((*scratch)[:0], body)
			return "", true
		}
	}
	return "", false
}

// resolvePath resolves a path argument against its dirfd argument:
// absolute paths pass through, relative paths join the dirfd's -y
// annotation with exactly one separator, and relative paths whose dirfd
// carries no annotation get the distinct "./" cwd marker — so behavior
// profiles never conflate the cwd-relative "x" with the absolute "/x".
// strace never escapes printable ASCII, so a leading '/' in the raw
// body is authoritative even when later bytes are escaped.
func resolvePath(dirArg, body string, esc bool, scratch *[]byte) (string, bool) {
	if len(body) > 0 && body[0] == '/' {
		if !esc {
			return body, false
		}
		*scratch = appendUnquoted((*scratch)[:0], body)
		return "", true
	}
	if body == "" {
		// AT_EMPTY_PATH: the subject is the dirfd itself.
		if dir, ok := splitDirFD(dirArg); ok {
			return dir, false
		}
		return "", false
	}
	return resolveDirRel(dirArg, body, esc, scratch)
}

// resolveDirRel builds dir-relative joins into scratch. The join never
// doubles the separator (a dirfd annotated "/" yields "/x", not "//x").
func resolveDirRel(dirArg, body string, esc bool, scratch *[]byte) (string, bool) {
	b := (*scratch)[:0]
	if dir, ok := splitDirFD(dirArg); ok && dir != "" {
		b = append(b, dir...)
		if dir[len(dir)-1] != '/' {
			b = append(b, '/')
		}
	} else {
		b = append(b, "./"...)
	}
	if esc {
		b = appendUnquoted(b, body)
	} else {
		b = append(b, body...)
	}
	*scratch = b
	return "", true
}

// splitDirFD splits a dirfd argument carrying a -y path annotation —
// "5</data>" or "AT_FDCWD</home/u>" — into the annotated directory.
// Unlike SplitFDPath it accepts the symbolic AT_FDCWD form strace
// prints for the cwd dirfd.
func splitDirFD(s string) (dir string, ok bool) {
	i := strings.IndexByte(s, '<')
	if i <= 0 || !strings.HasSuffix(s, ">") {
		return "", false
	}
	if s[:i] != "AT_FDCWD" {
		if _, err := strconv.Atoi(s[:i]); err != nil {
			return "", false
		}
	}
	return s[i+1 : len(s)-1], true
}

// spawnInto builds the spawn subject — the program path followed by the
// decoded argv tail ("path arg1 arg2 …") — into scratch. argv[0] is
// skipped: it conventionally repeats the program name. Records without
// an argv array (writer-dialect round trips, plain path forms) yield
// the bare program path.
func spawnInto(r Record, pathIdx, argvIdx int, scratch *[]byte) (path string, built, ok bool) {
	if r.RetPath != "" {
		return r.RetPath, false, true
	}
	if len(r.Args) <= pathIdx {
		return "", false, false
	}
	body, esc, okq := unquoteBody(r.Args[pathIdx])
	if !okq || body == "" {
		// An empty program path is not a decodable spawn subject.
		return "", false, false
	}
	rel := len(body) > 0 && body[0] != '/' && pathIdx > 0
	hasArgv := len(r.Args) > argvIdx && len(r.Args[argvIdx]) > 0 && r.Args[argvIdx][0] == '['
	if !hasArgv && !esc && !rel {
		return body, false, true
	}
	var b []byte
	if rel {
		// execveat: resolve the program path against its dirfd.
		resolveDirRel(r.Args[pathIdx-1], body, esc, scratch)
		b = *scratch
	} else {
		b = (*scratch)[:0]
		if esc {
			b = appendUnquoted(b, body)
		} else {
			b = append(b, body...)
		}
	}
	if hasArgv {
		first := true
		forEachArrayItem(r.Args[argvIdx], func(item string) {
			if first {
				first = false
				return
			}
			ab, aesc, ok := unquoteBody(item)
			if !ok {
				return
			}
			b = append(b, ' ')
			if aesc {
				b = appendUnquoted(b, ab)
			} else {
				b = append(b, ab...)
			}
		})
	}
	*scratch = b
	return "", true, true
}

// decodeArgv decodes a strace argv array literal (`["ls", "-l", ...]`)
// into its strings, honoring escapes and ignoring the trailing "..."
// abbreviation marker.
func decodeArgv(s string) ([]string, bool) {
	var out []string
	ok := forEachArrayItem(s, func(item string) {
		if p, ok := unquote(item); ok {
			out = append(out, p)
		}
	})
	return out, ok
}

// forEachArrayItem iterates the top-level items of a strace array
// literal like `["ls", "-l"]`, calling fn with each raw (still quoted)
// item. Nested brackets and quoted commas do not split items. It
// reports false when s is not an array literal.
func forEachArrayItem(s string, fn func(item string)) bool {
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return false
	}
	body := s[1 : len(s)-1]
	depth := 0
	start := 0
	emit := func(end int) {
		item := strings.TrimSpace(body[start:end])
		if item != "" && item != "..." {
			fn(item)
		}
	}
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			for i++; i < len(body); i++ {
				if body[i] == '\\' {
					i++
					continue
				}
				if body[i] == '"' {
					break
				}
			}
		case '[', '(', '{':
			depth++
		case ']', ')', '}':
			depth--
		case ',':
			if depth == 0 {
				emit(i)
				start = i + 1
			}
		}
	}
	emit(len(body))
	return true
}

// sockFamily is the decoded socket-address family.
type sockFamily uint8

const (
	afNone sockFamily = iota
	afInet
	afInet6
	afUnix
)

func (f sockFamily) name() string {
	switch f {
	case afInet:
		return "AF_INET"
	case afInet6:
		return "AF_INET6"
	case afUnix:
		return "AF_UNIX"
	}
	return ""
}

// sockaddr is the byte-scanned form of a socket-address struct literal.
type sockaddr struct {
	family   sockFamily
	addr     string // raw; still escaped when addrEsc
	addrEsc  bool
	abstract bool // abstract unix socket (sun_path=@"name")
	port     int
}

// parseSockaddr byte-scans a sockaddr struct literal in either dialect:
// the kernel-style strace rendering
//
//	{sa_family=AF_INET, sin_port=htons(80), sin_addr=inet_addr("1.2.3.4")}
//
// or the condensed Family/Addr/Port form some tracers emit
//
//	{Family: AF_INET, Addr: 8.8.8.8, Port: 53}
func parseSockaddr(s string) (sockaddr, bool) {
	var sa sockaddr
	if len(s) < 2 || s[0] != '{' {
		return sa, false
	}
	i := strings.Index(s, "AF_")
	if i < 0 {
		return sa, false
	}
	j := i
	for j < len(s) && (s[j] == '_' || (s[j] >= 'A' && s[j] <= 'Z') || (s[j] >= '0' && s[j] <= '9')) {
		j++
	}
	switch s[i:j] {
	case "AF_INET":
		sa.family = afInet
	case "AF_INET6":
		sa.family = afInet6
	case "AF_UNIX", "AF_LOCAL":
		sa.family = afUnix
	default:
		return sa, false
	}
	rest := s[j:]
	if sa.family == afUnix {
		var ok bool
		sa.addr, sa.addrEsc, sa.abstract, ok = unixSockPath(rest)
		return sa, ok
	}
	sa.port, _ = scanPort(rest)
	var ok bool
	sa.addr, sa.addrEsc, ok = inetSockAddr(rest)
	return sa, ok
}

// unixSockPath finds the socket path in `sun_path="/run/x.sock"`,
// `sun_path=@"abstract"` or the condensed `Addr: "/run/x.sock"`.
func unixSockPath(s string) (addr string, esc, abstract, ok bool) {
	var v string
	if i := strings.Index(s, "sun_path="); i >= 0 {
		v = s[i+len("sun_path="):]
	} else if i := strings.Index(s, "Addr:"); i >= 0 {
		v = strings.TrimLeft(s[i+len("Addr:"):], " ")
	} else {
		return "", false, false, false
	}
	if len(v) > 0 && v[0] == '@' {
		abstract = true
		v = v[1:]
	}
	if body, esc, ok := unquoteBody(v); ok {
		return body, esc, abstract, true
	}
	if t := bareToken(v); t != "" {
		return t, false, abstract, true
	}
	return "", false, false, false
}

// inetSockAddr finds the address literal in `inet_addr("1.2.3.4")`,
// `inet_pton(AF_INET6, "2001:db8::1", &sin6_addr)` or the condensed
// `Addr: 8.8.8.8` form.
func inetSockAddr(s string) (addr string, esc, ok bool) {
	if i := strings.Index(s, "inet_addr("); i >= 0 {
		return unquoteBody(s[i+len("inet_addr("):])
	}
	if i := strings.Index(s, "inet_pton("); i >= 0 {
		rest := s[i+len("inet_pton("):]
		if q := strings.IndexByte(rest, '"'); q >= 0 {
			return unquoteBody(rest[q:])
		}
	}
	if i := strings.Index(s, "Addr:"); i >= 0 {
		v := strings.TrimLeft(s[i+len("Addr:"):], " ")
		if len(v) > 0 && v[0] == '"' {
			return unquoteBody(v)
		}
		if t := bareToken(v); t != "" {
			return t, false, true
		}
	}
	return "", false, false
}

// scanPort finds the port in "htons(80)" or "Port: 53".
func scanPort(s string) (int, bool) {
	if i := strings.Index(s, "htons("); i >= 0 {
		return atoiPrefix(s[i+len("htons("):])
	}
	if i := strings.Index(s, "Port:"); i >= 0 {
		return atoiPrefix(strings.TrimLeft(s[i+len("Port:"):], " "))
	}
	return 0, false
}

// atoiPrefix parses the leading decimal digits of s.
func atoiPrefix(s string) (int, bool) {
	n, i := 0, 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		n = n*10 + int(s[i]-'0')
		i++
		if n > 1<<24 {
			return 0, false
		}
	}
	if i == 0 {
		return 0, false
	}
	return n, true
}

// bareToken takes the leading run of s up to a struct delimiter, for
// the condensed unquoted address form.
func bareToken(s string) string {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ',', '}', ')', ' ':
			return s[:i]
		}
	}
	return s
}

// appendSockaddrSubject appends the canonical connection subject of a
// sockaddr struct literal to dst: "ip:port" for IPv4, "[addr]:port"
// for IPv6, the (unescaped) socket path for unix sockets.
func appendSockaddrSubject(dst []byte, s string) ([]byte, bool) {
	sa, ok := parseSockaddr(s)
	if !ok || sa.addr == "" {
		return dst, false
	}
	switch sa.family {
	case afUnix:
		if sa.abstract {
			dst = append(dst, '@')
		}
		if sa.addrEsc {
			dst = appendUnquoted(dst, sa.addr)
		} else {
			dst = append(dst, sa.addr...)
		}
	case afInet:
		dst = append(dst, sa.addr...)
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, int64(sa.port), 10)
	case afInet6:
		dst = append(dst, '[')
		dst = append(dst, sa.addr...)
		dst = append(dst, ']', ':')
		dst = strconv.AppendInt(dst, int64(sa.port), 10)
	}
	return dst, true
}

// unquote strips the surrounding double quotes of a C string literal
// argument and decodes its escapes, handling strace's trailing "..."
// abbreviation marker.
func unquote(s string) (string, bool) {
	body, esc, ok := unquoteBody(s)
	if !ok {
		return "", false
	}
	if !esc {
		return body, true
	}
	return string(appendUnquoted(nil, body)), true
}

// unquoteBody strips the quotes of a C string literal, returning the
// raw body and whether it still carries backslash escapes. Anything
// after the closing quote (the "..." abbreviation marker, a trailing
// struct delimiter) is ignored, so it works on argument prefixes too.
func unquoteBody(s string) (body string, esc, ok bool) {
	if len(s) < 2 || s[0] != '"' {
		return "", false, false
	}
	b := s[1:]
	i := closingQuote(b)
	if i < 0 {
		return "", false, false
	}
	b = b[:i]
	return b, strings.IndexByte(b, '\\') >= 0, true
}

// appendUnquoted appends the unescaped bytes of a C literal body to
// dst, decoding the full strace escape set — \n \t \r \v \f \a \b,
// octal (\0 … \377), hex (\xNN) — plus the \uNNNN/\UNNNNNNNN forms Go's
// %q emits, so writer-rendered traces decode to the original bytes too.
// Unknown escapes (including \" and \\) yield the escaped byte itself.
func appendUnquoted(dst []byte, body string) []byte {
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' || i+1 >= len(body) {
			dst = append(dst, c)
			continue
		}
		i++
		switch c = body[i]; c {
		case 'n':
			dst = append(dst, '\n')
		case 't':
			dst = append(dst, '\t')
		case 'r':
			dst = append(dst, '\r')
		case 'v':
			dst = append(dst, '\v')
		case 'f':
			dst = append(dst, '\f')
		case 'a':
			dst = append(dst, '\a')
		case 'b':
			dst = append(dst, '\b')
		case '0', '1', '2', '3', '4', '5', '6', '7':
			v := int(c - '0')
			for n := 1; n < 3 && i+1 < len(body) && body[i+1] >= '0' && body[i+1] <= '7'; n++ {
				i++
				v = v*8 + int(body[i]-'0')
			}
			dst = append(dst, byte(v))
		case 'x':
			v, n := 0, 0
			for n < 2 && i+1 < len(body) && isHexDigit(body[i+1]) {
				i++
				v = v*16 + hexVal(body[i])
				n++
			}
			if n == 0 {
				dst = append(dst, 'x')
			} else {
				dst = append(dst, byte(v))
			}
		case 'u', 'U':
			want := 4
			if c == 'U' {
				want = 8
			}
			v, n := 0, 0
			for n < want && i+1 < len(body) && isHexDigit(body[i+1]) {
				i++
				v = v*16 + hexVal(body[i])
				n++
			}
			if n != want || v > utf8.MaxRune {
				// Malformed: keep the escape verbatim-ish (the marker
				// byte), matching the unknown-escape rule.
				dst = append(dst, c)
			} else {
				dst = utf8.AppendRune(dst, rune(v))
			}
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

func isHexDigit(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

// closingQuote finds the first unescaped double quote of a literal
// body, the closing delimiter.
func closingQuote(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			return i
		}
	}
	return -1
}
