package strace

import (
	"reflect"
	"strings"
	"testing"

	"stinspector/internal/intern"
	"stinspector/internal/trace"
)

// TestParseCaseScopedSyms: parsing with Options.Syms set interns the
// trace's strings into the scoped table only — the process-wide
// Default does not grow even for novel paths — and the parsed events
// are identical to a Default-table parse.
func TestParseCaseScopedSyms(t *testing.T) {
	const text = "0.000100 openat(AT_FDCWD, \"/scoped-strace-test/data.bin\", O_RDONLY) = 3</scoped-strace-test/data.bin> <0.000020>\n" +
		"0.000200 read(3</scoped-strace-test/data.bin>, \"\", 4096) = 4096 <0.000050>\n" +
		"0.000300 close(3</scoped-strace-test/data.bin>) = 0 <0.000010>\n"
	id := trace.CaseID{CID: "scoped-strace-test", Host: "h0", RID: 1}

	want, err := ParseCase(id, strings.NewReader(text), Options{})
	if err != nil {
		t.Fatal(err)
	}

	tab := intern.NewTable()
	d0 := intern.Default.Len()
	got, err := ParseCase(id, strings.NewReader(text), Options{Syms: tab})
	if err != nil {
		t.Fatal(err)
	}
	if intern.Default.Len() != d0 {
		t.Errorf("scoped parse grew Default: %d -> %d", d0, intern.Default.Len())
	}
	if tab.Len() < 4 { // "", cid/host, calls, path at minimum
		t.Errorf("scoped table holds %d symbols, want the trace vocabulary", tab.Len())
	}
	if !reflect.DeepEqual(got.Events, want.Events) {
		t.Errorf("scoped parse events differ from Default parse:\n got %+v\nwant %+v", got.Events, want.Events)
	}
	if got.ID != want.ID {
		t.Errorf("scoped parse ID = %v, want %v", got.ID, want.ID)
	}
}

// TestEventsFromRecordsScopedSyms: the record-to-event conversion
// honors Options.Syms too.
func TestEventsFromRecordsScopedSyms(t *testing.T) {
	rec, err := ParseLine(`0.5 read(3</scoped-evrec-test/f>, "", 8) = 8 <0.001>`)
	if err != nil {
		t.Fatal(err)
	}
	id := trace.CaseID{CID: "scoped-evrec-test", Host: "h", RID: 0}
	tab := intern.NewTable()
	d0 := intern.Default.Len()
	evs, err := EventsFromRecords(id, []Record{rec}, Options{Syms: tab})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].FP != "/scoped-evrec-test/f" {
		t.Fatalf("events = %+v", evs)
	}
	if intern.Default.Len() != d0 {
		t.Errorf("scoped conversion grew Default: %d -> %d", d0, intern.Default.Len())
	}
}
