package strace

import (
	"bytes"
	"compress/gzip"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"stinspector/internal/trace"
)

// TestReadDirGzip: compressed trace files (the practical format for
// large rank counts) parse identically to plain ones.
func TestReadDirGzip(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	dir := t.TempDir()

	id1 := trace.CaseID{CID: "g", Host: "h1", RID: 1}
	id2 := trace.CaseID{CID: "g", Host: "h1", RID: 2}
	c1 := trace.NewCase(id1, randEvents(rng, id1, 30))
	c2 := trace.NewCase(id2, randEvents(rng, id2, 30))

	// c1 plain, c2 gzipped.
	var plain bytes.Buffer
	w := NewWriter(&plain)
	if err := w.WriteCase(c1); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, id1.FileName()), plain.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var raw bytes.Buffer
	w2 := NewWriter(&raw)
	if err := w2.WriteCase(c2); err != nil {
		t.Fatal(err)
	}
	var gzBuf bytes.Buffer
	gz := gzip.NewWriter(&gzBuf)
	if _, err := gz.Write(raw.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, id2.FileName()+".gz"), gzBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	log, err := ReadDir(dir, Options{Strict: true})
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if log.NumCases() != 2 {
		t.Fatalf("cases = %d", log.NumCases())
	}
	if got := log.Case(id2); got == nil || !reflect.DeepEqual(got.Events, c2.Events) {
		t.Errorf("gzipped case differs after round trip")
	}
}

func TestReadDirBadGzip(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a_h_1.st.gz"), []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir, Options{}); err == nil {
		t.Errorf("corrupt gzip accepted")
	}
}
