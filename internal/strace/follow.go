package strace

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stinspector/internal/trace"
)

// Sink receives completed cases and recoverable faults from a Tailer.
// internal/source.Live satisfies it directly; internal/serve wraps one
// to divert faults into a session log.
type Sink interface {
	// Push hands over a completed case. A Push error (the sink is
	// closed) terminates the tailer's file loop that called it.
	Push(c *trace.Case) error
	// Fail reports a recoverable fault at the stream's current
	// position: a stall, a parse problem under Strict, an unreadable
	// file. The stream continues.
	Fail(err error)
}

// StallError is the typed recoverable error a Tailer surfaces when a
// file has neither grown nor terminated for the configured stall
// timeout. The file stays tailed; the error is a liveness signal, not a
// verdict.
type StallError struct {
	Name  string        // file name within the tailed directory
	Quiet time.Duration // how long the file has been silent
}

func (e *StallError) Error() string {
	return fmt.Sprintf("strace: follow: %s stalled (no growth for %s, no exit record)", e.Name, e.Quiet.Round(time.Millisecond))
}

// Temporary marks the stall recoverable: the tailer keeps following.
func (e *StallError) Temporary() bool { return true }

// FileError is the typed recoverable error for a file the tailer must
// give up on (unparseable name, terminal open failure). The rest of the
// directory keeps streaming.
type FileError struct {
	Name string
	Err  error
}

func (e *FileError) Error() string {
	return fmt.Sprintf("strace: follow: %s: %v", e.Name, e.Err)
}

func (e *FileError) Unwrap() error { return e.Err }

// FollowOptions configures follow-mode tailing. The embedded Options
// govern record-to-event conversion exactly as in batch ingestion.
type FollowOptions struct {
	Options

	// Poll is the directory-scan and growth-check cadence.
	// Default 50ms.
	Poll time.Duration
	// Grace is how long a file must stay quiet after its exit record
	// before the case is emitted — absorbing writers that flush the
	// exit line before their final buffers. Default 100ms.
	Grace time.Duration
	// StallTimeout is how long a file may go without growth or an exit
	// record before a StallError is surfaced (and the timer re-arms).
	// 0 disables stall detection. Default 30s.
	StallTimeout time.Duration
	// BackoffMax caps the exponential reopen backoff. Default 1s.
	BackoffMax time.Duration
	// Seed drives backoff jitter, per-file deterministic. Default 1.
	Seed int64
}

func (o *FollowOptions) setDefaults() {
	if o.Poll <= 0 {
		o.Poll = 50 * time.Millisecond
	}
	if o.Grace <= 0 {
		o.Grace = 100 * time.Millisecond
	}
	if o.StallTimeout == 0 {
		o.StallTimeout = 30 * time.Second
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// TailStats is a snapshot of a Tailer's fault and progress counters.
type TailStats struct {
	Cases        uint64 `json:"cases"`         // cases emitted
	Rotations    uint64 `json:"rotations"`     // name rebound to a new file identity
	Truncations  uint64 `json:"truncations"`   // size shrank below the read offset
	Reopens      uint64 `json:"reopens"`       // handle reopened (faults, rotation, truncation)
	Stalls       uint64 `json:"stalls"`        // StallErrors surfaced
	PartialDrops uint64 `json:"partial_drops"` // unterminated final lines dropped at emit
	ParseSkips   uint64 `json:"parse_skips"`   // unparseable complete lines skipped
}

// Tailer follows a directory of growing trace files and pushes each
// completed case (one file = one case, named by its CaseID) into a
// Sink. Recovery invariants:
//
//   - A record is emitted only from a complete, newline-terminated
//     line; a partial final line is buffered and re-tried, never pushed
//     truncated. At emit time an unterminated remainder is dropped and
//     counted.
//   - Truncation (size below the read offset) and rotation (the name's
//     identity changed) both restart the file from offset 0 with fresh
//     state; the writer contract is that rebuilt content supersedes
//     what was partially read.
//   - Open and read failures retry with capped exponential backoff plus
//     deterministic jitter; they never kill the tailer.
//   - Stalls surface as typed recoverable StallErrors via Sink.Fail.
//
// A file completes when its exit record has been read, the reader has
// caught up to EOF with no partial line pending, and the file has been
// quiet for Grace. Drain completes remaining files from the records
// already parseable; Stop abandons them.
type Tailer struct {
	fs   TailFS
	sink Sink
	opts FollowOptions

	stop  chan struct{} // hard cancel: abandon everything
	drain chan struct{} // soft finish: emit what is complete

	mu       sync.Mutex
	started  bool
	stopped  bool
	draining bool
	known    map[string]bool // discovered (or skipped) file names
	wg       sync.WaitGroup

	cases        atomic.Uint64
	rotations    atomic.Uint64
	truncations  atomic.Uint64
	reopens      atomic.Uint64
	stalls       atomic.Uint64
	partialDrops atomic.Uint64
	parseSkips   atomic.Uint64
}

// TailDir returns a Tailer over the OS directory dir.
func TailDir(dir string, sink Sink, opts FollowOptions) *Tailer {
	return NewTailer(OSDir(dir), sink, opts)
}

// NewTailer returns a Tailer over an explicit TailFS (the seam the
// fault-injection matrix uses).
func NewTailer(fs TailFS, sink Sink, opts FollowOptions) *Tailer {
	opts.setDefaults()
	return &Tailer{
		fs:    fs,
		sink:  sink,
		opts:  opts,
		stop:  make(chan struct{}),
		drain: make(chan struct{}),
		known: make(map[string]bool),
	}
}

// SkipFiles marks file names as already consumed, so recovery does not
// re-ingest cases a checkpoint has folded. Must be called before Start.
func (t *Tailer) SkipFiles(names []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, n := range names {
		t.known[n] = true
	}
}

// Start launches the directory scanner. It returns immediately.
func (t *Tailer) Start() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		return
	}
	t.started = true
	t.wg.Add(1)
	go t.scan()
}

// Drain asks every file loop to finish from what it has — emitting
// cases from the complete records parsed so far, exit record or not —
// and waits for them. Unterminated final lines are dropped and counted.
// Safe to call once; Stop may still follow.
func (t *Tailer) Drain() {
	t.mu.Lock()
	if !t.draining {
		t.draining = true
		close(t.drain)
	}
	t.mu.Unlock()
	t.wg.Wait()
}

// Stop hard-cancels the tailer: file loops abandon their state without
// emitting, and Stop waits for them to exit. Idempotent.
func (t *Tailer) Stop() {
	t.mu.Lock()
	if !t.stopped {
		t.stopped = true
		close(t.stop)
	}
	t.mu.Unlock()
	t.wg.Wait()
}

// Stats snapshots the tailer's counters.
func (t *Tailer) Stats() TailStats {
	return TailStats{
		Cases:        t.cases.Load(),
		Rotations:    t.rotations.Load(),
		Truncations:  t.truncations.Load(),
		Reopens:      t.reopens.Load(),
		Stalls:       t.stalls.Load(),
		PartialDrops: t.partialDrops.Load(),
		ParseSkips:   t.parseSkips.Load(),
	}
}

// sleep waits d or until stop/drain fires; it reports false on stop.
func (t *Tailer) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-t.stop:
		return false
	case <-t.drain:
		return true
	case <-timer.C:
		return true
	}
}

func (t *Tailer) stopping() bool {
	select {
	case <-t.stop:
		return true
	default:
		return false
	}
}

func (t *Tailer) drainRequested() bool {
	select {
	case <-t.drain:
		return true
	default:
		return false
	}
}

// scan polls the directory for new trace files and spawns one follow
// loop per file. On drain it performs one final sweep (so files created
// moments before the drain are still flushed) and exits.
func (t *Tailer) scan() {
	defer t.wg.Done()
	for {
		if t.stopping() {
			return
		}
		final := t.drainRequested()
		names, err := t.fs.Names()
		if err == nil {
			for _, name := range names {
				if !IsTraceName(name) {
					continue
				}
				t.mu.Lock()
				seen := t.known[name]
				if !seen {
					t.known[name] = true
					t.wg.Add(1)
				}
				t.mu.Unlock()
				if !seen {
					go t.followFile(name)
				}
			}
		}
		// Listing errors are transient by contract: retry next poll.
		if final {
			return
		}
		if !t.sleep(t.opts.Poll) {
			return
		}
	}
}

// fileRand derives the per-file deterministic jitter stream.
func (t *Tailer) fileRand(name string) *rand.Rand {
	h := fnv.New64a()
	io.WriteString(h, name)
	return rand.New(rand.NewSource(t.opts.Seed ^ int64(h.Sum64())))
}

// backoff sleeps the capped exponential delay for the given attempt
// with ±50% deterministic jitter; false means stop was requested.
func (t *Tailer) backoff(rnd *rand.Rand, attempt int) bool {
	d := 10 * time.Millisecond << uint(min(attempt, 16))
	if d > t.opts.BackoffMax || d <= 0 {
		d = t.opts.BackoffMax
	}
	jittered := d/2 + time.Duration(rnd.Int63n(int64(d)))
	timer := time.NewTimer(jittered)
	defer timer.Stop()
	select {
	case <-t.stop:
		return false
	case <-timer.C:
		return true
	}
}

// fileTail is the per-file follow state.
type fileTail struct {
	name    string
	f       TailFile
	offset  int64    // bytes consumed from the current identity
	buf     []byte   // unterminated final line, buffered for retry
	records []Record // complete records parsed so far
	args    argBuilder
	line    int // 1-based line counter for ParseError positions
	sawExit bool
	lastNew time.Time // last time bytes arrived (or the file opened)
}

// reset drops all parse state — the truncation/rotation restart.
func (ft *fileTail) reset() {
	ft.offset = 0
	ft.buf = ft.buf[:0]
	ft.records = ft.records[:0]
	ft.args.reset()
	ft.line = 0
	ft.sawExit = false
	ft.lastNew = time.Now()
}

// followFile tails one trace file to completion. One file = one case.
func (t *Tailer) followFile(name string) {
	defer t.wg.Done()

	id, err := trace.ParseCaseID(name)
	if err != nil {
		t.sink.Fail(&FileError{Name: name, Err: err})
		return
	}

	rnd := t.fileRand(name)
	ft := &fileTail{name: name, lastNew: time.Now()}
	defer func() {
		if ft.f != nil {
			ft.f.Close()
		}
	}()

	// open (re)establishes the handle and skips already-consumed bytes.
	// If the skip comes up short the file shrank underneath us: restart
	// from zero with fresh state.
	open := func() bool {
		for attempt := 0; ; attempt++ {
			if t.stopping() {
				return false
			}
			f, err := t.fs.Open(name)
			if err == nil {
				if ft.offset > 0 {
					if _, err := io.CopyN(io.Discard, f, ft.offset); err != nil {
						f.Close()
						if errors.Is(err, io.EOF) {
							t.truncations.Add(1)
							ft.reset()
							continue
						}
						t.reopens.Add(1)
						if !t.backoff(rnd, attempt) {
							return false
						}
						continue
					}
				}
				ft.f = f
				return true
			}
			t.reopens.Add(1)
			if !t.backoff(rnd, attempt) {
				return false
			}
		}
	}
	if !open() {
		return
	}

	lastStallCheck := time.Now()
	readBuf := make([]byte, 32*1024)
	for {
		if t.stopping() {
			return
		}

		// Rotation: the name now binds a different file. The writer
		// contract (one case per file, rebuilt on rotate) makes the new
		// content authoritative — restart from zero.
		if cur, err := t.fs.FileID(name); err == nil && cur != 0 && ft.f.ID() != 0 && cur != ft.f.ID() {
			ft.f.Close()
			ft.f = nil
			t.rotations.Add(1)
			t.reopens.Add(1)
			ft.reset()
			if !open() {
				return
			}
			continue
		}
		// Truncation: the open file shrank below what we consumed.
		if size, err := ft.f.Size(); err == nil && size < ft.offset {
			ft.f.Close()
			ft.f = nil
			t.truncations.Add(1)
			t.reopens.Add(1)
			ft.reset()
			if !open() {
				return
			}
			continue
		}

		// Read what is available now. os-like handles return io.EOF at
		// the current end and deliver new bytes on later reads.
		caughtUp := false
		n, err := ft.f.Read(readBuf)
		if n > 0 {
			ft.offset += int64(n)
			ft.lastNew = time.Now()
			lastStallCheck = ft.lastNew
			t.consume(ft, readBuf[:n])
		}
		switch {
		case err == nil:
			// More may be immediately available; loop without sleeping.
			continue
		case errors.Is(err, io.EOF):
			caughtUp = true
		default:
			// Transient read fault: retry on the same handle if the
			// error says so, otherwise reopen at the current offset.
			var tmp interface{ Temporary() bool }
			if !(errors.As(err, &tmp) && tmp.Temporary()) {
				ft.f.Close()
				ft.f = nil
				t.reopens.Add(1)
				if !open() {
					return
				}
			}
			if !t.sleep(t.opts.Poll) {
				return
			}
			continue
		}

		// Caught up. Emit if complete, drain if asked, else wait.
		if ft.sawExit && caughtUp && time.Since(ft.lastNew) >= t.opts.Grace {
			t.emit(id, ft)
			return
		}
		if t.drainRequested() && caughtUp {
			if len(ft.records) > 0 {
				t.emit(id, ft)
			}
			return
		}
		if st := t.opts.StallTimeout; st > 0 && !ft.sawExit && time.Since(ft.lastNew) >= st && time.Since(lastStallCheck) >= st {
			lastStallCheck = time.Now()
			t.stalls.Add(1)
			t.sink.Fail(&StallError{Name: name, Quiet: time.Since(ft.lastNew).Round(time.Millisecond)})
		}
		if !t.sleep(t.opts.Poll) {
			return
		}
	}
}

// consume splits raw bytes into complete lines and parses them; the
// unterminated remainder stays buffered — a truncated record is never
// materialized.
func (t *Tailer) consume(ft *fileTail, p []byte) {
	ft.buf = append(ft.buf, p...)
	for {
		i := indexByte(ft.buf, '\n')
		if i < 0 {
			return
		}
		line := string(ft.buf[:i])
		ft.buf = ft.buf[i+1:]
		ft.line++
		if strings.TrimSpace(line) == "" {
			continue
		}
		rec, err := parseLineWith(line, &ft.args)
		if err != nil {
			t.parseSkips.Add(1)
			if t.opts.Strict {
				if pe, ok := err.(*ParseError); ok {
					pe.Line = ft.line
				}
				t.sink.Fail(&FileError{Name: ft.name, Err: err})
			}
			continue
		}
		rec.Line = ft.line
		ft.records = append(ft.records, rec)
		if rec.Kind == KindExit {
			ft.sawExit = true
		}
	}
}

// emit converts the file's records into a case and pushes it. An
// unterminated buffered remainder is dropped and counted here — the
// single place a partial line can leave the pipeline, and it leaves as
// a counter, not a record.
func (t *Tailer) emit(id trace.CaseID, ft *fileTail) {
	if len(ft.buf) > 0 {
		t.partialDrops.Add(1)
		ft.buf = ft.buf[:0]
	}
	events, err := EventsFromRecords(id, ft.records, t.opts.Options)
	if err != nil {
		t.sink.Fail(&FileError{Name: ft.name, Err: err})
		return
	}
	if err := t.sink.Push(trace.NewCase(id, events)); err != nil {
		return
	}
	t.cases.Add(1)
}

// indexByte is bytes.IndexByte without the import churn in this file's
// hot loop.
func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// FollowReader ingests one case from a growing byte stream (an HTTP
// request body, a pipe) under follow-mode line discipline: complete
// lines parse as they arrive, and at EOF an unterminated final line is
// dropped — never emitted truncated — and reported in the returned drop
// count. Parse failures on complete lines are skipped (or returned,
// under Strict), matching the Tailer.
func FollowReader(id trace.CaseID, r io.Reader, opts Options) (*trace.Case, int, error) {
	ft := &fileTail{name: id.FileName()}
	buf := make([]byte, 32*1024)
	var strictErr error
	for {
		n, err := r.Read(buf)
		if n > 0 {
			consumeReader(ft, buf[:n], opts.Strict, &strictErr)
		}
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, 0, err
		}
	}
	if strictErr != nil {
		return nil, 0, strictErr
	}
	dropped := 0
	if len(ft.buf) > 0 {
		dropped = 1
	}
	events, err := EventsFromRecords(id, ft.records, opts)
	if err != nil {
		return nil, dropped, err
	}
	return trace.NewCase(id, events), dropped, nil
}

// consumeReader mirrors Tailer.consume for the sinkless FollowReader
// path, collecting the first Strict parse error instead of Fail-ing.
func consumeReader(ft *fileTail, p []byte, strict bool, strictErr *error) {
	ft.buf = append(ft.buf, p...)
	for {
		i := indexByte(ft.buf, '\n')
		if i < 0 {
			return
		}
		line := string(ft.buf[:i])
		ft.buf = ft.buf[i+1:]
		ft.line++
		if strings.TrimSpace(line) == "" {
			continue
		}
		rec, err := parseLineWith(line, &ft.args)
		if err != nil {
			if strict && *strictErr == nil {
				if pe, ok := err.(*ParseError); ok {
					pe.Line = ft.line
				}
				*strictErr = err
			}
			continue
		}
		rec.Line = ft.line
		ft.records = append(ft.records, rec)
		if rec.Kind == KindExit {
			ft.sawExit = true
		}
	}
}
