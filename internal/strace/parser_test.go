package strace

import (
	"strings"
	"testing"
	"time"
)

func mustParse(t *testing.T, line string) Record {
	t.Helper()
	rec, err := ParseLine(line)
	if err != nil {
		t.Fatalf("ParseLine(%q): %v", line, err)
	}
	return rec
}

// The lines of Figure 2a of the paper.
func TestParseFig2aLines(t *testing.T) {
	rec := mustParse(t, `9054  08:55:54.153994 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, ..., 832) = 832 <0.000203>`)
	if !rec.HasPID || rec.PID != 9054 {
		t.Errorf("pid = %d (has=%v), want 9054", rec.PID, rec.HasPID)
	}
	if rec.Kind != KindSyscall || rec.Call != "read" {
		t.Errorf("kind/call = %v/%s", rec.Kind, rec.Call)
	}
	wantTS := 8*time.Hour + 55*time.Minute + 54*time.Second + 153994*time.Microsecond
	if rec.Time != wantTS {
		t.Errorf("time = %v, want %v", rec.Time, wantTS)
	}
	if p, ok := rec.FirstArgPath(); !ok || p != "/usr/lib/x86_64-linux-gnu/libselinux.so.1" {
		t.Errorf("first-arg path = %q (%v)", p, ok)
	}
	if !rec.RetOK || rec.RetInt != 832 {
		t.Errorf("ret = %d (ok=%v), want 832", rec.RetInt, rec.RetOK)
	}
	if req, ok := rec.RequestedBytes(); !ok || req != 832 {
		t.Errorf("requested = %d (%v), want 832", req, ok)
	}
	if !rec.HasDur || rec.Dur != 203*time.Microsecond {
		t.Errorf("dur = %v (has=%v), want 203µs", rec.Dur, rec.HasDur)
	}

	// Zero-byte read at EOF with an empty string content argument.
	rec = mustParse(t, `9054  08:55:54.163049 read(3</proc/filesystems>, "", 1024) = 0 <0.000040>`)
	if rec.RetInt != 0 || !rec.RetOK {
		t.Errorf("EOF read ret = %d (ok=%v)", rec.RetInt, rec.RetOK)
	}
	if req, ok := rec.RequestedBytes(); !ok || req != 1024 {
		t.Errorf("EOF read requested = %d (%v), want 1024", req, ok)
	}

	rec = mustParse(t, `9054  08:55:54.176260 write(1</dev/pts/7>, ..., 50) = 50 <0.000111>`)
	if p, _ := rec.FirstArgPath(); p != "/dev/pts/7" {
		t.Errorf("write path = %q", p)
	}
}

// The unfinished/resumed pair of Figure 2c.
func TestParseFig2cUnfinishedResumed(t *testing.T) {
	u := mustParse(t, `77423  16:56:40.452431 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, <unfinished ...>`)
	if u.Kind != KindUnfinished || u.Call != "read" {
		t.Fatalf("kind/call = %v/%s", u.Kind, u.Call)
	}
	if u.HasDur {
		t.Errorf("unfinished record should carry no duration")
	}
	if p, ok := u.FirstArgPath(); !ok || p != "/usr/lib/x86_64-linux-gnu/libselinux.so.1" {
		t.Errorf("unfinished path = %q (%v)", p, ok)
	}

	r := mustParse(t, `77423  16:56:40.452660 <... read resumed> ..., 405) = 404 <0.000223>`)
	if r.Kind != KindResumed || r.Call != "read" {
		t.Fatalf("resumed kind/call = %v/%s", r.Kind, r.Call)
	}
	if r.RetInt != 404 || !r.RetOK {
		t.Errorf("resumed ret = %d (ok=%v), want 404", r.RetInt, r.RetOK)
	}
	if r.Dur != 223*time.Microsecond {
		t.Errorf("resumed dur = %v", r.Dur)
	}
}

func TestParseOpenat(t *testing.T) {
	rec := mustParse(t, `9173  08:56:04.754100 openat(AT_FDCWD, "/etc/nsswitch.conf", O_RDONLY|O_CLOEXEC) = 4</etc/nsswitch.conf> <0.000031>`)
	if rec.Call != "openat" || rec.Kind != KindSyscall {
		t.Fatalf("call = %s", rec.Call)
	}
	if rec.RetPath != "/etc/nsswitch.conf" {
		t.Errorf("ret path = %q", rec.RetPath)
	}
	if rec.RetInt != 4 || !rec.RetOK {
		t.Errorf("ret fd = %d (ok=%v)", rec.RetInt, rec.RetOK)
	}
	// Failed openat: no fd annotation, errno set.
	rec = mustParse(t, `9173  08:56:04.754200 openat(AT_FDCWD, "/nonexistent", O_RDONLY) = -1 ENOENT (No such file or directory) <0.000008>`)
	if !rec.Failed() || rec.Errno != "ENOENT" {
		t.Errorf("failed openat: errno = %q, failed = %v", rec.Errno, rec.Failed())
	}
	if rec.RetInt != -1 || !rec.RetOK {
		t.Errorf("failed openat ret = %d (ok=%v)", rec.RetInt, rec.RetOK)
	}
}

func TestParseLseekAndPwrite(t *testing.T) {
	rec := mustParse(t, `100  10:00:00.000001 lseek(5</scratch/ssf/test>, 16777216, SEEK_SET) = 16777216 <0.000004>`)
	if rec.Call != "lseek" {
		t.Fatalf("call = %q", rec.Call)
	}
	if p, ok := rec.FirstArgPath(); !ok || p != "/scratch/ssf/test" {
		t.Errorf("lseek path = %q (%v)", p, ok)
	}
	if rec.RetInt != 16777216 {
		t.Errorf("lseek ret = %d", rec.RetInt)
	}
	rec = mustParse(t, `100  10:00:00.000002 pwrite64(5</scratch/ssf/test>, ..., 1048576, 16777216) = 1048576 <0.000301>`)
	if rec.Call != "pwrite64" || rec.RetInt != 1048576 {
		t.Errorf("pwrite64: call=%q ret=%d", rec.Call, rec.RetInt)
	}
}

func TestParseERESTARTSYS(t *testing.T) {
	rec := mustParse(t, `100  10:00:00.000001 read(3</f>, ..., 4096) = ? ERESTARTSYS (To be restarted if SA_RESTART is set) <0.010000>`)
	if !rec.Interrupted() {
		t.Errorf("ERESTARTSYS not flagged as interrupted: errno=%q", rec.Errno)
	}
	if rec.Failed() {
		t.Errorf("ERESTARTSYS should not count as failed")
	}
}

func TestParseExitAndSignal(t *testing.T) {
	rec := mustParse(t, `9054  08:55:54.180000 +++ exited with 0 +++`)
	if rec.Kind != KindExit || rec.ExitStatus != 0 {
		t.Errorf("exit: kind=%v status=%d", rec.Kind, rec.ExitStatus)
	}
	rec = mustParse(t, `9054  08:55:54.200000 +++ exited with 3 +++`)
	if rec.ExitStatus != 3 {
		t.Errorf("exit status = %d, want 3", rec.ExitStatus)
	}
	rec = mustParse(t, `9054  08:55:54.190000 --- SIGCHLD {si_signo=SIGCHLD, si_code=CLD_EXITED, si_pid=9060} ---`)
	if rec.Kind != KindSignal || rec.Call != "SIGCHLD" {
		t.Errorf("signal: kind=%v name=%q", rec.Kind, rec.Call)
	}
	rec = mustParse(t, `9054  08:55:54.195000 +++ killed by SIGKILL +++`)
	if rec.Kind != KindExit || rec.Call != "SIGKILL" {
		t.Errorf("killed: kind=%v sig=%q", rec.Kind, rec.Call)
	}
}

func TestParseWithoutPIDColumn(t *testing.T) {
	rec := mustParse(t, `08:55:54.153994 read(3</etc/passwd>, ..., 832) = 832 <0.000203>`)
	if rec.HasPID {
		t.Errorf("line without pid column parsed as having one: pid=%d", rec.PID)
	}
	if rec.Call != "read" || rec.RetInt != 832 {
		t.Errorf("call/ret = %s/%d", rec.Call, rec.RetInt)
	}
}

func TestParseEpochTimestamps(t *testing.T) {
	rec := mustParse(t, `42  1700000000.123456 write(1</dev/pts/0>, ..., 5) = 5 <0.000010>`)
	want := time.Duration(1700000000.123456 * float64(time.Second))
	if d := rec.Time - want; d > time.Microsecond || d < -time.Microsecond {
		t.Errorf("epoch time = %v, want ~%v", rec.Time, want)
	}
}

func TestParseQuotedCommasAndParens(t *testing.T) {
	// Content strings can contain commas, parens, angle brackets and
	// escaped quotes; none of them may confuse the splitter.
	rec := mustParse(t, `7  09:00:00.000001 write(1</dev/pts/7>, "a,b(c)<d>\"e", 12) = 12 <0.000002>`)
	if len(rec.Args) != 3 {
		t.Fatalf("args = %d (%q), want 3", len(rec.Args), rec.Args)
	}
	if rec.Args[1] != `"a,b(c)<d>\"e"` {
		t.Errorf("quoted arg = %q", rec.Args[1])
	}
	if rec.RetInt != 12 {
		t.Errorf("ret = %d", rec.RetInt)
	}
}

func TestParseStructArgsWithEquals(t *testing.T) {
	// '=' inside braces must not be mistaken for the return separator.
	rec := mustParse(t, `7  09:00:00.000001 fstat(3</etc/passwd>, {st_mode=S_IFREG|0644, st_size=1612}) = 0 <0.000003>`)
	if rec.Call != "fstat" || rec.RetInt != 0 || !rec.RetOK {
		t.Errorf("fstat parse: call=%q ret=%d ok=%v", rec.Call, rec.RetInt, rec.RetOK)
	}
	if len(rec.Args) != 2 {
		t.Errorf("fstat args = %q", rec.Args)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"garbage",
		"9054  notatime read(3</f>) = 0 <0.1>",
		"9054  08:55:54.153994 read(3</f>, ..., 832)", // no return
		"9054  08:55:54.153994 +++ wat +++",
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) succeeded, want error", line)
		}
	}
}

func TestParseTimestamp(t *testing.T) {
	good := map[string]time.Duration{
		"00:00:00.000000": 0,
		"08:55:54.153994": 8*time.Hour + 55*time.Minute + 54*time.Second + 153994*time.Microsecond,
		"23:59:59.999999": 24*time.Hour - time.Microsecond,
	}
	for s, want := range good {
		got, err := ParseTimestamp(s)
		if err != nil || got != want {
			t.Errorf("ParseTimestamp(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"24:00:00.0", "aa:bb:cc.dd", "-5", "12:61:00.0", ""} {
		if _, err := ParseTimestamp(s); err == nil {
			t.Errorf("ParseTimestamp(%q) succeeded, want error", s)
		}
	}
}

func TestSplitFDPath(t *testing.T) {
	fd, p, ok := SplitFDPath("3</usr/lib/libc.so.6>")
	if !ok || fd != 3 || p != "/usr/lib/libc.so.6" {
		t.Errorf("SplitFDPath = %d, %q, %v", fd, p, ok)
	}
	for _, s := range []string{"3", "</f>", "x</f>", "3</f"} {
		if _, _, ok := SplitFDPath(s); ok {
			t.Errorf("SplitFDPath(%q) = ok, want not ok", s)
		}
	}
}

func TestSplitArgs(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a, b, c", []string{"a", "b", "c"}},
		{`3</a,b>, "x,y", 7`, []string{"3</a,b>", `"x,y"`, "7"}},
		{"{a=1, b=2}, [1, 2], 3", []string{"{a=1, b=2}", "[1, 2]", "3"}},
	}
	for _, tc := range tests {
		got := splitArgs(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("splitArgs(%q) = %q, want %q", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("splitArgs(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

func TestReadRecordsLenient(t *testing.T) {
	input := strings.Join([]string{
		`9054  08:55:54.153994 read(3</f>, ..., 832) = 832 <0.000203>`,
		`this line is garbage`,
		`9054  08:55:54.176260 write(1</dev/pts/7>, ..., 50) = 50 <0.000111>`,
	}, "\n")
	recs, skipped, err := ReadRecords(strings.NewReader(input), true)
	if err != nil {
		t.Fatalf("lenient ReadRecords: %v", err)
	}
	if len(recs) != 2 || skipped != 1 {
		t.Errorf("records=%d skipped=%d, want 2/1", len(recs), skipped)
	}
	if recs[1].Line != 3 {
		t.Errorf("line number = %d, want 3", recs[1].Line)
	}
	if _, _, err := ReadRecords(strings.NewReader(input), false); err == nil {
		t.Errorf("strict ReadRecords accepted garbage")
	}
}
