package strace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"stinspector/internal/trace"
)

// Writer renders events as strace-compatible text, one process's records
// per stream, reproducing the format of Figure 2. It is used by the
// workload simulators so that the full parser code path is exercised on
// synthetic traces, and by tests for round-trip verification.
type Writer struct {
	w io.Writer
	// fds assigns stable, realistic file descriptor numbers per path,
	// starting from 3 (0-2 are the standard streams; /dev/pts gets 1).
	fds    map[string]int
	nextFD int
	err    error
}

// NewWriter creates a writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, fds: make(map[string]int), nextFD: 3}
}

// fd returns the descriptor number used for a path.
func (sw *Writer) fd(path string) int {
	if isTerminal(path) {
		return 1
	}
	if fd, ok := sw.fds[path]; ok {
		return fd
	}
	fd := sw.nextFD
	sw.fds[path] = fd
	sw.nextFD++
	return fd
}

func isTerminal(path string) bool {
	return len(path) >= 9 && path[:9] == "/dev/pts/"
}

func (sw *Writer) printf(format string, args ...any) {
	if sw.err != nil {
		return
	}
	_, sw.err = fmt.Fprintf(sw.w, format, args...)
}

// Err returns the first write error encountered.
func (sw *Writer) Err() error { return sw.err }

// WriteEvent renders one event as a complete system-call record.
func (sw *Writer) WriteEvent(e trace.Event) {
	ts := trace.FormatTimeOfDay(e.Start)
	dur := fmtSeconds(e.Dur)
	switch {
	case e.Call == "openat":
		sw.printf("%d  %s openat(AT_FDCWD, %q, O_RDWR|O_CREAT, 0644) = %d<%s> <%s>\n",
			e.PID, ts, e.FP, sw.fd(e.FP), e.FP, dur)
	case e.Call == "close":
		sw.printf("%d  %s close(%d<%s>) = 0 <%s>\n",
			e.PID, ts, sw.fd(e.FP), e.FP, dur)
	case e.Call == "lseek":
		sw.printf("%d  %s lseek(%d<%s>, 0, SEEK_SET) = 0 <%s>\n",
			e.PID, ts, sw.fd(e.FP), e.FP, dur)
	case e.Call == "fsync" || e.Call == "fdatasync":
		sw.printf("%d  %s %s(%d<%s>) = 0 <%s>\n",
			e.PID, ts, e.Call, sw.fd(e.FP), e.FP, dur)
	case TransferCalls[e.Call]:
		size := e.Size
		if size < 0 {
			size = 0
		}
		sw.printf("%d  %s %s(%d<%s>, ..., %d) = %d <%s>\n",
			e.PID, ts, e.Call, sw.fd(e.FP), e.FP, size, size, dur)
	default:
		sw.printf("%d  %s %s(%d<%s>) = 0 <%s>\n",
			e.PID, ts, e.Call, sw.fd(e.FP), e.FP, dur)
	}
}

// WriteUnfinishedPair renders an event as an unfinished/resumed record
// pair with the given interleaving gap, exercising the merge path of the
// parser (Figure 2c).
func (sw *Writer) WriteUnfinishedPair(e trace.Event) {
	ts := trace.FormatTimeOfDay(e.Start)
	rts := trace.FormatTimeOfDay(e.End())
	dur := fmtSeconds(e.Dur)
	size := e.Size
	if size < 0 {
		size = 0
	}
	sw.printf("%d  %s %s(%d<%s>, <unfinished ...>\n", e.PID, ts, e.Call, sw.fd(e.FP), e.FP)
	sw.printf("%d  %s <... %s resumed> ..., %d) = %d <%s>\n", e.PID, rts, e.Call, size, size, dur)
}

// fmtSeconds renders a duration in strace's "<seconds.micros>" body form
// exactly (integer arithmetic, microsecond resolution).
func fmtSeconds(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	return fmt.Sprintf("%d.%06d", us/1e6, us%1e6)
}

// WriteExit renders a process exit record.
func (sw *Writer) WriteExit(pid int, at time.Duration, status int) {
	sw.printf("%d  %s +++ exited with %d +++\n", pid, trace.FormatTimeOfDay(at), status)
}

// WriteCase renders every event of a case in order, followed by an exit
// record.
func (sw *Writer) WriteCase(c *trace.Case) error {
	for _, e := range c.Events {
		sw.WriteEvent(e)
	}
	if len(c.Events) > 0 {
		last := c.Events[len(c.Events)-1]
		sw.printf("%d  %s +++ exited with 0 +++\n", last.PID, trace.FormatTimeOfDay(last.End()))
	}
	return sw.err
}

// WriteDir writes one "<cid>_<host>_<rid>.st" file per case of the
// event-log into dir, mirroring the recording setup of Figure 1.
func WriteDir(dir string, log *trace.EventLog) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ids := make([]trace.CaseID, 0, log.NumCases())
	for _, c := range log.Cases() {
		ids = append(ids, c.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for _, id := range ids {
		c := log.Case(id)
		f, err := os.Create(filepath.Join(dir, id.FileName()))
		if err != nil {
			return err
		}
		sw := NewWriter(f)
		werr := sw.WriteCase(c)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}
