package strace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"stinspector/internal/trace"
)

// Writer renders events as strace-compatible text, one process's records
// per stream, reproducing the format of Figure 2. It is used by the
// workload simulators so that the full parser code path is exercised on
// synthetic traces, and by tests for round-trip verification.
type Writer struct {
	w io.Writer
	// fds assigns stable, realistic file descriptor numbers per path,
	// starting from 3 (0-2 are the standard streams; /dev/pts gets 1).
	fds    map[string]int
	nextFD int
	err    error
}

// NewWriter creates a writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, fds: make(map[string]int), nextFD: 3}
}

// fd returns the descriptor number used for a path.
func (sw *Writer) fd(path string) int {
	if isTerminal(path) {
		return 1
	}
	if fd, ok := sw.fds[path]; ok {
		return fd
	}
	fd := sw.nextFD
	sw.fds[path] = fd
	sw.nextFD++
	return fd
}

func isTerminal(path string) bool {
	return len(path) >= 9 && path[:9] == "/dev/pts/"
}

func (sw *Writer) printf(format string, args ...any) {
	if sw.err != nil {
		return
	}
	_, sw.err = fmt.Fprintf(sw.w, format, args...)
}

// Err returns the first write error encountered.
func (sw *Writer) Err() error { return sw.err }

// WriteEvent renders one event as a complete system-call record.
func (sw *Writer) WriteEvent(e trace.Event) {
	ts := trace.FormatTimeOfDay(e.Start)
	dur := fmtSeconds(e.Dur)
	switch {
	case e.Call == "openat":
		sw.printf("%d  %s openat(AT_FDCWD, %q, O_RDWR|O_CREAT, 0644) = %d<%s> <%s>\n",
			e.PID, ts, e.FP, sw.fd(e.FP), e.FP, dur)
	case e.Call == "close":
		sw.printf("%d  %s close(%d<%s>) = 0 <%s>\n",
			e.PID, ts, sw.fd(e.FP), e.FP, dur)
	case e.Call == "lseek":
		sw.printf("%d  %s lseek(%d<%s>, 0, SEEK_SET) = 0 <%s>\n",
			e.PID, ts, sw.fd(e.FP), e.FP, dur)
	case e.Call == "fsync" || e.Call == "fdatasync":
		sw.printf("%d  %s %s(%d<%s>) = 0 <%s>\n",
			e.PID, ts, e.Call, sw.fd(e.FP), e.FP, dur)
	case e.Call == "unlink" || e.Call == "rmdir":
		sw.printf("%d  %s %s(%q) = 0 <%s>\n", e.PID, ts, e.Call, e.FP, dur)
	case e.Call == "unlinkat":
		sw.printf("%d  %s unlinkat(AT_FDCWD, %q, 0) = 0 <%s>\n", e.PID, ts, e.FP, dur)
	case e.Call == "mkdir":
		sw.printf("%d  %s mkdir(%q, 0755) = 0 <%s>\n", e.PID, ts, e.FP, dur)
	case e.Call == "truncate":
		sw.printf("%d  %s truncate(%q, 0) = 0 <%s>\n", e.PID, ts, e.FP, dur)
	case e.Call == "rename":
		// The semantic decoder takes the source path as the subject, so
		// any destination round-trips; render the conventional backup
		// name.
		sw.printf("%d  %s rename(%q, %q) = 0 <%s>\n", e.PID, ts, e.FP, e.FP+"~", dur)
	case e.Call == "execve":
		// The spawn subject is "path arg1 arg2 …" with argv[0] skipped,
		// so writing the whole FP as the path and the program basename
		// as argv[0] decodes back to exactly FP.
		sw.printf("%d  %s execve(%q, [%q], 0x7ffce2f9d438) = 0 <%s>\n",
			e.PID, ts, e.FP, argv0(e.FP), dur)
	case e.Call == "connect":
		sw.writeConnect(e, ts, dur)
	case TransferCalls[e.Call]:
		size := e.Size
		if size < 0 {
			size = 0
		}
		sw.printf("%d  %s %s(%d<%s>, ..., %d) = %d <%s>\n",
			e.PID, ts, e.Call, sw.fd(e.FP), e.FP, size, size, dur)
	default:
		sw.printf("%d  %s %s(%d<%s>) = 0 <%s>\n",
			e.PID, ts, e.Call, sw.fd(e.FP), e.FP, dur)
	}
}

// writeConnect renders a connect record whose sockaddr struct literal
// decodes back to exactly e.FP under the semantic decoder: "ip:port"
// becomes an AF_INET struct, "[addr]:port" an AF_INET6 struct, anything
// else an AF_UNIX socket path (a leading '@' marks it abstract).
func (sw *Writer) writeConnect(e trace.Event, ts, dur string) {
	fd := sw.fd(e.FP)
	host, port, v6, ok := splitSubject(e.FP)
	switch {
	case ok && v6:
		sw.printf("%d  %s connect(%d<socket:[%d]>, {sa_family=AF_INET6, sin6_port=htons(%s), sin6_flowinfo=htonl(0), inet_pton(AF_INET6, %q, &sin6_addr), sin6_scope_id=0}, 28) = 0 <%s>\n",
			e.PID, ts, fd, fd, port, host, dur)
	case ok:
		sw.printf("%d  %s connect(%d<socket:[%d]>, {sa_family=AF_INET, sin_port=htons(%s), sin_addr=inet_addr(%q)}, 16) = 0 <%s>\n",
			e.PID, ts, fd, fd, port, host, dur)
	case strings.HasPrefix(e.FP, "@"):
		sw.printf("%d  %s connect(%d<socket:[%d]>, {sa_family=AF_UNIX, sun_path=@%q}, 110) = 0 <%s>\n",
			e.PID, ts, fd, fd, e.FP[1:], dur)
	default:
		sw.printf("%d  %s connect(%d<socket:[%d]>, {sa_family=AF_UNIX, sun_path=%q}, 110) = 0 <%s>\n",
			e.PID, ts, fd, fd, e.FP, dur)
	}
}

// splitSubject splits a canonical connection subject back into host and
// port: "1.2.3.4:443" or "[2001:db8::1]:443". Subjects that are not in
// either form (unix socket paths) report ok == false.
func splitSubject(fp string) (host, port string, v6, ok bool) {
	if strings.HasPrefix(fp, "[") {
		if i := strings.Index(fp, "]:"); i > 0 && allDigits(fp[i+2:]) {
			return fp[1:i], fp[i+2:], true, true
		}
		return "", "", false, false
	}
	i := strings.LastIndexByte(fp, ':')
	if i <= 0 || !allDigits(fp[i+1:]) || strings.IndexByte(fp, '/') >= 0 {
		return "", "", false, false
	}
	return fp[:i], fp[i+1:], false, true
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// argv0 derives the conventional argv[0] — the program basename — from a
// spawn subject ("path arg1 …").
func argv0(fp string) string {
	if i := strings.IndexByte(fp, ' '); i >= 0 {
		fp = fp[:i]
	}
	if i := strings.LastIndexByte(fp, '/'); i >= 0 {
		fp = fp[i+1:]
	}
	return fp
}

// WriteUnfinishedPair renders an event as an unfinished/resumed record
// pair with the given interleaving gap, exercising the merge path of the
// parser (Figure 2c).
func (sw *Writer) WriteUnfinishedPair(e trace.Event) {
	ts := trace.FormatTimeOfDay(e.Start)
	rts := trace.FormatTimeOfDay(e.End())
	dur := fmtSeconds(e.Dur)
	size := e.Size
	if size < 0 {
		size = 0
	}
	sw.printf("%d  %s %s(%d<%s>, <unfinished ...>\n", e.PID, ts, e.Call, sw.fd(e.FP), e.FP)
	sw.printf("%d  %s <... %s resumed> ..., %d) = %d <%s>\n", e.PID, rts, e.Call, size, size, dur)
}

// fmtSeconds renders a duration in strace's "<seconds.micros>" body form
// exactly (integer arithmetic, microsecond resolution).
func fmtSeconds(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	return fmt.Sprintf("%d.%06d", us/1e6, us%1e6)
}

// WriteExit renders a process exit record.
func (sw *Writer) WriteExit(pid int, at time.Duration, status int) {
	sw.printf("%d  %s +++ exited with %d +++\n", pid, trace.FormatTimeOfDay(at), status)
}

// WriteCase renders every event of a case in order, followed by an exit
// record.
func (sw *Writer) WriteCase(c *trace.Case) error {
	for _, e := range c.Events {
		sw.WriteEvent(e)
	}
	if len(c.Events) > 0 {
		last := c.Events[len(c.Events)-1]
		sw.printf("%d  %s +++ exited with 0 +++\n", last.PID, trace.FormatTimeOfDay(last.End()))
	}
	return sw.err
}

// WriteDir writes one "<cid>_<host>_<rid>.st" file per case of the
// event-log into dir, mirroring the recording setup of Figure 1.
func WriteDir(dir string, log *trace.EventLog) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ids := make([]trace.CaseID, 0, log.NumCases())
	for _, c := range log.Cases() {
		ids = append(ids, c.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for _, id := range ids {
		c := log.Case(id)
		f, err := os.Create(filepath.Join(dir, id.FileName()))
		if err != nil {
			return err
		}
		sw := NewWriter(f)
		werr := sw.WriteCase(c)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}
