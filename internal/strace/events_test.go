package strace

import (
	"strings"
	"testing"
	"time"

	"stinspector/internal/trace"
)

var testID = trace.CaseID{CID: "a", Host: "host1", RID: 9042}

func parseRecords(t *testing.T, lines ...string) []Record {
	t.Helper()
	recs, _, err := ReadRecords(strings.NewReader(strings.Join(lines, "\n")), false)
	if err != nil {
		t.Fatalf("ReadRecords: %v", err)
	}
	return recs
}

func TestEventsFromRecordsBasic(t *testing.T) {
	recs := parseRecords(t,
		`9054  08:55:54.153994 read(3</usr/lib/libselinux.so.1>, ..., 832) = 832 <0.000203>`,
		`9054  08:55:54.163560 read(3</etc/locale.alias>, ..., 4096) = 2996 <0.000041>`,
		`9054  08:55:54.176260 write(1</dev/pts/7>, ..., 50) = 50 <0.000111>`,
		`9054  08:55:54.180000 +++ exited with 0 +++`,
	)
	events, err := EventsFromRecords(testID, recs, Options{})
	if err != nil {
		t.Fatalf("EventsFromRecords: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3 (exit record must be dropped)", len(events))
	}
	e := events[0]
	if e.CID != "a" || e.Host != "host1" || e.RID != 9042 || e.PID != 9054 {
		t.Errorf("identity not stamped: %+v", e)
	}
	if e.Call != "read" || e.FP != "/usr/lib/libselinux.so.1" || e.Size != 832 {
		t.Errorf("event 0 = %+v", e)
	}
	if e.Dur != 203*time.Microsecond {
		t.Errorf("dur = %v", e.Dur)
	}
	if events[2].FP != "/dev/pts/7" || events[2].Size != 50 {
		t.Errorf("write event = %+v", events[2])
	}
}

func TestEventsMergeUnfinishedResumed(t *testing.T) {
	recs := parseRecords(t,
		`77423  16:56:40.452431 read(3</usr/lib/libselinux.so.1>, <unfinished ...>`,
		`77500  16:56:40.452500 write(1</dev/pts/7>, ..., 9) = 9 <0.000074>`,
		`77423  16:56:40.452660 <... read resumed> ..., 405) = 404 <0.000223>`,
	)
	events, err := EventsFromRecords(testID, recs, Options{Strict: true})
	if err != nil {
		t.Fatalf("EventsFromRecords: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	// The merged read keeps its original start timestamp and takes
	// duration/size from the resumed half.
	var merged trace.Event
	for _, e := range events {
		if e.Call == "read" {
			merged = e
		}
	}
	wantStart := 16*time.Hour + 56*time.Minute + 40*time.Second + 452431*time.Microsecond
	if merged.Start != wantStart {
		t.Errorf("merged start = %v, want %v", merged.Start, wantStart)
	}
	if merged.Dur != 223*time.Microsecond {
		t.Errorf("merged dur = %v", merged.Dur)
	}
	if merged.Size != 404 {
		t.Errorf("merged size = %d, want 404 (transferred, not requested)", merged.Size)
	}
	if merged.FP != "/usr/lib/libselinux.so.1" {
		t.Errorf("merged path = %q", merged.FP)
	}
	if merged.PID != 77423 {
		t.Errorf("merged pid = %d", merged.PID)
	}
}

func TestEventsUnfinishedAcrossPIDsDoNotMix(t *testing.T) {
	recs := parseRecords(t,
		`100  10:00:00.000001 read(3</a>, <unfinished ...>`,
		`200  10:00:00.000002 read(4</b>, <unfinished ...>`,
		`200  10:00:00.000003 <... read resumed> ..., 10) = 10 <0.000001>`,
		`100  10:00:00.000004 <... read resumed> ..., 20) = 20 <0.000003>`,
	)
	events, err := EventsFromRecords(testID, recs, Options{Strict: true})
	if err != nil {
		t.Fatalf("EventsFromRecords: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	byPID := map[int]trace.Event{}
	for _, e := range events {
		byPID[e.PID] = e
	}
	if byPID[100].Size != 20 || byPID[100].FP != "/a" {
		t.Errorf("pid 100 merged wrong: %+v", byPID[100])
	}
	if byPID[200].Size != 10 || byPID[200].FP != "/b" {
		t.Errorf("pid 200 merged wrong: %+v", byPID[200])
	}
}

func TestEventsDropInterrupted(t *testing.T) {
	recs := parseRecords(t,
		`100  10:00:00.000001 read(3</f>, ..., 4096) = ? ERESTARTSYS (To be restarted if SA_RESTART is set) <0.010000>`,
		`100  10:00:00.020000 read(3</f>, ..., 4096) = 4096 <0.000100>`,
	)
	events, err := EventsFromRecords(testID, recs, Options{Strict: true})
	if err != nil {
		t.Fatalf("EventsFromRecords: %v", err)
	}
	if len(events) != 1 || events[0].Size != 4096 {
		t.Errorf("events = %+v, want only the restarted read", events)
	}
}

func TestEventsFailedCalls(t *testing.T) {
	lines := []string{
		`100  10:00:00.000001 openat(AT_FDCWD, "/missing", O_RDONLY) = -1 ENOENT (No such file or directory) <0.000008>`,
		`100  10:00:00.000002 read(3</f>, ..., 100) = 100 <0.000001>`,
	}
	recs := parseRecords(t, lines...)
	events, err := EventsFromRecords(testID, recs, Options{})
	if err != nil {
		t.Fatalf("default: %v", err)
	}
	if len(events) != 1 {
		t.Errorf("default drops failed calls: got %d events", len(events))
	}
	events, err = EventsFromRecords(testID, recs, Options{KeepFailed: true})
	if err != nil {
		t.Fatalf("KeepFailed: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("KeepFailed: got %d events", len(events))
	}
	if events[0].Call != "openat" || events[0].FP != "/missing" || events[0].HasSize() {
		t.Errorf("failed openat event = %+v", events[0])
	}
}

func TestEventsCallFilter(t *testing.T) {
	recs := parseRecords(t,
		`100  10:00:00.000001 read(3</f>, ..., 10) = 10 <0.000001>`,
		`100  10:00:00.000002 mmap(NULL, 8192, PROT_READ, MAP_PRIVATE, 3</f>, 0) = 0x7f0000000000 <0.000002>`,
		`100  10:00:00.000003 close(3</f>) = 0 <0.000001>`,
	)
	// Default set: read and close survive, mmap does not.
	events, _ := EventsFromRecords(testID, recs, Options{})
	if len(events) != 2 {
		t.Errorf("default set kept %d events, want 2", len(events))
	}
	// Explicit set.
	events, _ = EventsFromRecords(testID, recs, Options{Calls: map[string]bool{"read": true}})
	if len(events) != 1 || events[0].Call != "read" {
		t.Errorf("explicit set: %+v", events)
	}
	// Empty non-nil set keeps everything.
	events, _ = EventsFromRecords(testID, recs, Options{Calls: map[string]bool{}})
	if len(events) != 3 {
		t.Errorf("keep-all set kept %d events, want 3", len(events))
	}
	// mmap return is a pointer; it must not be mistaken for a size.
	for _, e := range events {
		if e.Call == "mmap" && e.HasSize() {
			t.Errorf("mmap got a transfer size: %+v", e)
		}
	}
}

func TestEventsStrictErrors(t *testing.T) {
	// Resumed without unfinished.
	recs := parseRecords(t, `100  10:00:00.000003 <... read resumed> ..., 10) = 10 <0.000001>`)
	if _, err := EventsFromRecords(testID, recs, Options{Strict: true}); err == nil {
		t.Errorf("strict mode accepted dangling resumed record")
	}
	if _, err := EventsFromRecords(testID, recs, Options{}); err != nil {
		t.Errorf("lenient mode rejected dangling resumed record: %v", err)
	}
	// Unfinished never resumed.
	recs = parseRecords(t, `100  10:00:00.000003 read(3</f>, <unfinished ...>`)
	if _, err := EventsFromRecords(testID, recs, Options{Strict: true}); err == nil {
		t.Errorf("strict mode accepted dangling unfinished record")
	}
	// Two outstanding calls for one pid.
	recs = parseRecords(t,
		`100  10:00:00.000001 read(3</f>, <unfinished ...>`,
		`100  10:00:00.000002 write(4</g>, <unfinished ...>`,
	)
	if _, err := EventsFromRecords(testID, recs, Options{Strict: true}); err == nil {
		t.Errorf("strict mode accepted two outstanding calls for one pid")
	}
}

func TestEventsMismatchedResumeCall(t *testing.T) {
	recs := parseRecords(t,
		`100  10:00:00.000001 read(3</f>, <unfinished ...>`,
		`100  10:00:00.000002 <... write resumed> ..., 10) = 10 <0.000001>`,
	)
	if _, err := EventsFromRecords(testID, recs, Options{Strict: true}); err == nil {
		t.Errorf("strict mode accepted mismatched resumed call name")
	}
	events, err := EventsFromRecords(testID, recs, Options{})
	if err != nil || len(events) != 0 {
		t.Errorf("lenient mode: events=%v err=%v", events, err)
	}
}
