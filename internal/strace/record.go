// Package strace parses and generates traces in the textual format of the
// Linux strace utility, as produced by
//
//	strace -o FILE -f -e trace=... -tt -T -y CMD
//
// which is the instrumentation setup of Section III of the paper. The
// package recognizes complete system-call records, the
// "<unfinished ...>" / "<... call resumed>" pairs written under
// simultaneous multi-processing, interrupted calls (ERESTARTSYS), signal
// delivery records and process exit records. It converts trace files into
// trace.Case values and, in the other direction, renders synthetic event
// streams as strace-compatible text (used by the workload simulators).
package strace

import (
	"time"
)

// Kind classifies a parsed strace record.
type Kind int

const (
	// KindSyscall is a complete system-call record:
	// "read(3</etc/passwd>, ..., 4096) = 1612 <0.000037>".
	KindSyscall Kind = iota
	// KindUnfinished is the first half of a call that was preempted by
	// activity on another process: "read(3</f>, <unfinished ...>".
	KindUnfinished
	// KindResumed is the second half: "<... read resumed> ..., 405) = 404 <0.000223>".
	KindResumed
	// KindExit is a process exit record: "+++ exited with 0 +++".
	KindExit
	// KindSignal is a signal delivery record: "--- SIGCHLD {...} ---".
	KindSignal
)

// String returns the name of the record kind.
func (k Kind) String() string {
	switch k {
	case KindSyscall:
		return "syscall"
	case KindUnfinished:
		return "unfinished"
	case KindResumed:
		return "resumed"
	case KindExit:
		return "exit"
	case KindSignal:
		return "signal"
	}
	return "unknown"
}

// Record is one parsed line of strace output. It keeps the raw argument
// list so that higher layers can apply call-specific interpretation (file
// path extraction, transfer sizes) without the parser having to know every
// system call.
type Record struct {
	// PID is the process identifier column (strace -f). HasPID is false
	// when the trace was recorded without -f and the column is absent.
	PID    int
	HasPID bool

	// Time is the wall-clock timestamp of the record (strace -tt),
	// expressed as a duration since the host's midnight (or since the
	// epoch when the -ttt fractional-seconds form is encountered).
	Time time.Duration

	// Kind classifies the record.
	Kind Kind

	// Call is the system call name. For KindSignal it holds the signal
	// name; for KindExit it is empty.
	Call string

	// Args are the top-level comma-separated argument strings, with
	// surrounding whitespace trimmed. For KindResumed these are only
	// the arguments that appeared after "resumed>".
	Args []string

	// Ret is the raw return token (everything between "= " and the
	// duration), e.g. "832", "-1", "3</etc/passwd>", "?".
	Ret string
	// RetInt is the integer return value when Ret parses as one
	// (including the fd of an fd-annotated return); RetOK reports
	// whether it did.
	RetInt int64
	RetOK  bool
	// RetPath is the path annotation of an fd-valued return
	// ("= 3</etc/passwd>" gives "/etc/passwd"), from strace -y.
	RetPath string
	// Errno is the symbolic errno of a failed call ("EBADF", or
	// "ERESTARTSYS" for interrupted calls, which the methodology
	// ignores).
	Errno string

	// Dur is the duration between start and return (strace -T); HasDur
	// reports whether the record carried one. Unfinished records never
	// do.
	Dur    time.Duration
	HasDur bool

	// ExitStatus is the status of a KindExit record.
	ExitStatus int

	// Raw is the original line, kept for diagnostics.
	Raw string
	// Line is the 1-based line number within the trace file.
	Line int
}

// Interrupted reports whether the record is an interrupted system call
// (ERESTARTSYS), which Section III of the paper discards.
func (r *Record) Interrupted() bool { return r.Errno == "ERESTARTSYS" }

// Failed reports whether the record is a completed call that returned an
// error.
func (r *Record) Failed() bool { return r.Errno != "" && r.Errno != "ERESTARTSYS" }

// FirstArgPath returns the path annotation of the first fd-typed argument
// ("3</usr/lib/libc.so.6>" gives "/usr/lib/libc.so.6"). ok is false when
// the first argument carries no annotation.
func (r *Record) FirstArgPath() (path string, ok bool) {
	if len(r.Args) == 0 {
		return "", false
	}
	_, p, ok := SplitFDPath(r.Args[0])
	return p, ok
}

// RequestedBytes returns the last argument interpreted as a byte count,
// which for read/write call variants is the number of bytes requested (the
// paper notes it may differ from the transferred size in the return
// value). ok is false when there is no trailing integer argument.
func (r *Record) RequestedBytes() (int64, bool) {
	if len(r.Args) == 0 {
		return 0, false
	}
	return parseInt(r.Args[len(r.Args)-1])
}
