package strace

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
	"unicode/utf8"
)

// ParseError describes a line that could not be parsed.
type ParseError struct {
	Line int    // 1-based line number, 0 if unknown
	Text string // offending line
	Msg  string
}

func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("strace: line %d: %s: %q", e.Line, e.Msg, e.Text)
	}
	return fmt.Sprintf("strace: %s: %q", e.Msg, e.Text)
}

// argBuilder materializes argument lists into a shared per-file arena,
// so the hot ParseCase loop does not allocate a fresh []string per
// record: every record's Args is a capacity-clamped subslice of the
// arena, and the argument strings themselves are subslices of the line.
// The zero value allocates a private arena, which is what the
// standalone ParseLine uses.
type argBuilder struct {
	arena []string
}

// split splits an argument list, appending into the arena and returning
// the record's view of it (nil for an empty list, matching the
// historical splitArgs contract).
func (ab *argBuilder) split(s string) []string {
	start := len(ab.arena)
	ab.arena = splitArgsInto(s, ab.arena)
	if len(ab.arena) == start {
		return nil
	}
	return ab.arena[start:len(ab.arena):len(ab.arena)]
}

// reset drops the argument references accumulated for one file so the
// pooled arena does not pin parsed line text, keeping the (largest)
// backing array for reuse.
func (ab *argBuilder) reset() {
	clear(ab.arena)
	ab.arena = ab.arena[:0]
}

// ParseLine parses one line of strace output into a Record. The line may
// or may not carry a leading PID column (strace -f); the parser detects
// this from the shape of the first field.
func ParseLine(line string) (Record, error) {
	return parseLineWith(line, &argBuilder{})
}

// parseLineWith is ParseLine with a caller-owned argument arena — the
// form the per-file parsing loop uses.
func parseLineWith(line string, ab *argBuilder) (Record, error) {
	rec := Record{Raw: line}
	s := strings.TrimRight(line, "\r\n")
	if strings.TrimSpace(s) == "" {
		return rec, &ParseError{Text: line, Msg: "empty line"}
	}

	// Optional PID column: an integer followed by whitespace and then a
	// timestamp. Without -f the line starts with the timestamp.
	rest := s
	if pid, after, ok := leadingInt(rest); ok {
		afterTrim := strings.TrimLeft(after, " \t")
		if afterTrim != after && startsWithTimestamp(afterTrim) {
			rec.PID = int(pid)
			rec.HasPID = true
			rest = afterTrim
		}
	}

	tsTok, rest, ok := cutField(rest)
	if !ok {
		return rec, &ParseError{Text: line, Msg: "missing timestamp"}
	}
	ts, err := ParseTimestamp(tsTok)
	if err != nil {
		return rec, &ParseError{Text: line, Msg: err.Error()}
	}
	rec.Time = ts
	rest = strings.TrimLeft(rest, " \t")

	switch {
	case strings.HasPrefix(rest, "+++"):
		return parseExit(rec, rest, line)
	case strings.HasPrefix(rest, "---"):
		return parseSignal(rec, rest, line)
	case strings.HasPrefix(rest, "<..."):
		return parseResumed(rec, rest, line, ab)
	default:
		return parseCall(rec, rest, line, ab)
	}
}

// parseExit parses "+++ exited with 0 +++" and "+++ killed by SIGKILL +++".
func parseExit(rec Record, rest, line string) (Record, error) {
	rec.Kind = KindExit
	body := strings.TrimSuffix(strings.TrimPrefix(rest, "+++"), "+++")
	body = strings.TrimSpace(body)
	if st, found := strings.CutPrefix(body, "exited with "); found {
		n, err := strconv.Atoi(strings.TrimSpace(st))
		if err != nil {
			return rec, &ParseError{Text: line, Msg: "bad exit status"}
		}
		rec.ExitStatus = n
		return rec, nil
	}
	if sig, found := strings.CutPrefix(body, "killed by "); found {
		rec.Call = firstField(sig)
		return rec, nil
	}
	return rec, &ParseError{Text: line, Msg: "unrecognized +++ record"}
}

// firstField returns the first whitespace-delimited field of s as a
// subslice — strings.Fields(s)[0] without materializing the slice (or
// panicking on all-space input).
func firstField(s string) string {
	start := 0
	for start < len(s) {
		r, sz := utf8.DecodeRuneInString(s[start:])
		if !unicode.IsSpace(r) {
			break
		}
		start += sz
	}
	end := start
	for end < len(s) {
		r, sz := utf8.DecodeRuneInString(s[end:])
		if unicode.IsSpace(r) {
			break
		}
		end += sz
	}
	return s[start:end]
}

// parseSignal parses "--- SIGCHLD {si_signo=SIGCHLD, ...} ---".
func parseSignal(rec Record, rest, line string) (Record, error) {
	rec.Kind = KindSignal
	body := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(rest, "---"), "---"))
	if body == "" {
		return rec, &ParseError{Text: line, Msg: "empty signal record"}
	}
	rec.Call = firstField(body)
	return rec, nil
}

// parseResumed parses "<... read resumed> ..., 405) = 404 <0.000223>".
func parseResumed(rec Record, rest, line string, ab *argBuilder) (Record, error) {
	rec.Kind = KindResumed
	body := strings.TrimPrefix(rest, "<...")
	idx := strings.Index(body, "resumed>")
	if idx < 0 {
		return rec, &ParseError{Text: line, Msg: "malformed resumed record"}
	}
	rec.Call = strings.TrimSpace(body[:idx])
	tail := strings.TrimSpace(body[idx+len("resumed>"):])

	// The tail is the remainder of the argument list, a closing
	// parenthesis, and the usual return/duration suffix.
	argPart, retPart, found := cutReturn(tail)
	if !found {
		return rec, &ParseError{Text: line, Msg: "resumed record missing return value"}
	}
	argPart = strings.TrimSpace(argPart)
	argPart = strings.TrimSuffix(argPart, ")")
	rec.Args = ab.split(argPart)
	if err := parseReturn(&rec, retPart); err != nil {
		return rec, &ParseError{Text: line, Msg: err.Error()}
	}
	return rec, nil
}

// parseCall parses complete and unfinished system-call records.
func parseCall(rec Record, rest, line string, ab *argBuilder) (Record, error) {
	open := strings.IndexByte(rest, '(')
	if open <= 0 {
		return rec, &ParseError{Text: line, Msg: "missing '(' in system call record"}
	}
	rec.Call = rest[:open]
	if !validCallName(rec.Call) {
		return rec, &ParseError{Text: line, Msg: "invalid system call name"}
	}
	body := rest[open+1:]

	if strings.HasSuffix(strings.TrimSpace(body), "<unfinished ...>") {
		rec.Kind = KindUnfinished
		argPart := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(body), "<unfinished ...>"))
		argPart = strings.TrimSuffix(strings.TrimSpace(argPart), ",")
		rec.Args = ab.split(argPart)
		return rec, nil
	}

	rec.Kind = KindSyscall
	argPart, retPart, found := cutReturn(body)
	if !found {
		return rec, &ParseError{Text: line, Msg: "missing return value"}
	}
	argPart = strings.TrimSpace(argPart)
	argPart = strings.TrimSuffix(argPart, ")")
	rec.Args = ab.split(argPart)
	if err := parseReturn(&rec, retPart); err != nil {
		return rec, &ParseError{Text: line, Msg: err.Error()}
	}
	return rec, nil
}

// cutReturn splits a record tail at the top-level " = " separating the
// argument list from the return value. The separator is only valid at
// parenthesis depth zero (argument values can contain '=' inside braces,
// e.g. struct dumps).
func cutReturn(s string) (args, ret string, found bool) {
	depth := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr {
			switch c {
			case '\\':
				i++
			case '"':
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		case '=':
			if depth <= 0 && i > 0 && s[i-1] == ' ' && i+1 < len(s) && s[i+1] == ' ' {
				return s[:i-1], s[i+2:], true
			}
		}
	}
	return s, "", false
}

// parseReturn interprets the return token and trailing duration:
// "832 <0.000203>", "-1 EBADF (Bad file descriptor) <0.000010>",
// "3</etc/passwd> <0.000031>", "? ERESTARTSYS (To be restarted ...)".
func parseReturn(rec *Record, s string) error {
	s = strings.TrimSpace(s)
	// Trailing duration.
	if i := strings.LastIndexByte(s, '<'); i >= 0 && strings.HasSuffix(s, ">") {
		durTok := s[i+1 : len(s)-1]
		// Distinguish "<0.000203>" from an fd path "<...>" return:
		// a duration is all digits and dots.
		if d, err := parseSeconds(durTok); err == nil {
			rec.Dur = d
			rec.HasDur = true
			s = strings.TrimSpace(s[:i])
		}
	}

	// An fd-annotated return consumes the whole token before the errno
	// split is attempted: the annotated path may itself contain spaces
	// (even errno lookalikes — "3</dir/-1 EAGAIN (...)>" is a valid -y
	// return), and splitting it at the first space would misread the
	// path tail as a failure. A genuine errno token never parses as an
	// fd path (its integer prefix is "-1" or "?", never a bare fd).
	if fd, path, ok := SplitFDPath(s); ok {
		rec.Ret = s
		rec.RetInt = int64(fd)
		rec.RetOK = true
		rec.RetPath = path
		return nil
	}

	// Errno and its explanation: "-1 EBADF (Bad file descriptor)",
	// "? ERESTARTSYS (To be restarted if SA_RESTART is set)".
	if i := strings.IndexByte(s, ' '); i >= 0 {
		tail := strings.TrimSpace(s[i+1:])
		if tail != "" && tail[0] == 'E' {
			errno := tail
			if j := strings.IndexByte(errno, ' '); j >= 0 {
				errno = errno[:j]
			}
			rec.Errno = errno
		}
		s = s[:i]
	}
	rec.Ret = s
	if s == "?" {
		return nil
	}
	if fd, path, ok := SplitFDPath(s); ok {
		rec.RetInt = int64(fd)
		rec.RetOK = true
		rec.RetPath = path
		return nil
	}
	if v, ok := parseInt(s); ok {
		rec.RetInt = v
		rec.RetOK = true
		return nil
	}
	// Pointers ("0x7f...") and other symbolic returns are kept raw.
	return nil
}

// splitArgs is splitArgsInto with a fresh slice — the standalone form.
func splitArgs(s string) []string { return splitArgsInto(s, nil) }

// splitArgsInto splits an argument list at top-level commas, respecting
// strings (with escapes), parentheses, brackets, braces and fd-path
// angle-bracket annotations. Every argument is a whitespace-trimmed
// subslice of s; results are appended to out, so the per-file parsing
// loop amortizes the slice allocation across records. An empty (or
// all-space) list appends nothing.
func splitArgsInto(s string, out []string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return out
	}
	var (
		depth int
		inStr bool
		start int
	)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr {
			switch c {
			case '\\':
				i++
			case '"':
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '(', '[', '{', '<':
			depth++
		case ')', ']', '}', '>':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	return append(out, strings.TrimSpace(s[start:]))
}

// SplitFDPath splits an fd-with-path token produced by strace -y, for
// example "3</usr/lib/libc.so.6>" into (3, "/usr/lib/libc.so.6", true).
func SplitFDPath(s string) (fd int, path string, ok bool) {
	i := strings.IndexByte(s, '<')
	if i <= 0 || !strings.HasSuffix(s, ">") {
		return 0, "", false
	}
	n, err := strconv.Atoi(s[:i])
	if err != nil {
		return 0, "", false
	}
	return n, s[i+1 : len(s)-1], true
}

// ParseTimestamp parses the strace -tt time-of-day form
// "HH:MM:SS.micros" and the -ttt epoch form "1700000000.123456" into a
// duration since the respective zero point.
func ParseTimestamp(s string) (time.Duration, error) {
	if strings.Count(s, ":") == 2 {
		i := strings.IndexByte(s, ':')
		j := i + 1 + strings.IndexByte(s[i+1:], ':')
		h, err1 := strconv.Atoi(s[:i])
		m, err2 := strconv.Atoi(s[i+1 : j])
		sec, err3 := parseSeconds(s[j+1:])
		if err1 != nil || err2 != nil || err3 != nil || h < 0 || h > 23 || m < 0 || m > 59 || sec < 0 || sec >= 61*time.Second {
			return 0, fmt.Errorf("bad -tt timestamp %q", s)
		}
		return time.Duration(h)*time.Hour + time.Duration(m)*time.Minute + sec, nil
	}
	if d, err := parseSeconds(s); err == nil {
		return d, nil
	}
	return 0, fmt.Errorf("bad timestamp %q", s)
}

// parseSeconds parses a decimal-seconds token like "0.000203" or
// "54.153994" exactly (no float64 rounding), with up to nanosecond
// resolution.
func parseSeconds(s string) (time.Duration, error) {
	if s == "" {
		return 0, fmt.Errorf("empty duration")
	}
	intPart, fracPart, hasFrac := strings.Cut(s, ".")
	if intPart == "" {
		intPart = "0"
	}
	sec, err := strconv.ParseInt(intPart, 10, 64)
	if err != nil || sec < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	var ns int64
	if hasFrac {
		if fracPart == "" || len(fracPart) > 9 {
			return 0, fmt.Errorf("bad duration %q", s)
		}
		f, err := strconv.ParseInt(fracPart, 10, 64)
		if err != nil || f < 0 {
			return 0, fmt.Errorf("bad duration %q", s)
		}
		for i := len(fracPart); i < 9; i++ {
			f *= 10
		}
		ns = f
	}
	if sec > (1<<62)/int64(time.Second) {
		return 0, fmt.Errorf("duration overflow %q", s)
	}
	return time.Duration(sec)*time.Second + time.Duration(ns), nil
}

// parseInt parses a decimal or hexadecimal integer token.
func parseInt(s string) (int64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err := strconv.ParseInt(s[2:], 16, 64)
		return v, err == nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	return v, err == nil
}

// cutField splits off the first whitespace-delimited field.
func cutField(s string) (field, rest string, ok bool) {
	s = strings.TrimLeft(s, " \t")
	if s == "" {
		return "", "", false
	}
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, "", true
	}
	return s[:i], s[i+1:], true
}

// leadingInt consumes a leading decimal integer, returning the remainder.
func leadingInt(s string) (int64, string, bool) {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == 0 || i > 18 {
		return 0, s, false
	}
	v, err := strconv.ParseInt(s[:i], 10, 64)
	if err != nil {
		return 0, s, false
	}
	return v, s[i:], true
}

// startsWithTimestamp reports whether s begins with something shaped like
// a -tt or -ttt timestamp.
func startsWithTimestamp(s string) bool {
	// HH:MM:SS...
	if len(s) >= 8 && isDigit(s[0]) && isDigit(s[1]) && s[2] == ':' &&
		isDigit(s[3]) && isDigit(s[4]) && s[5] == ':' {
		return true
	}
	// epoch.micros
	i := 0
	for i < len(s) && isDigit(s[i]) {
		i++
	}
	return i >= 9 && i < len(s) && s[i] == '.'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// validCallName reports whether s looks like a syscall identifier.
func validCallName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
			return false
		}
	}
	return true
}
