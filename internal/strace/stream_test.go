package strace

import (
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"stinspector/internal/source"
	"stinspector/internal/synth"
	"stinspector/internal/trace"
)

// TestStreamFSMatchesReadFS: draining the stream reproduces ReadFS for
// every parallelism/window combination.
func TestStreamFSMatchesReadFS(t *testing.T) {
	fsys, _ := synthFS(t, 23, 40)
	want, err := ReadFS(fsys, ".", Options{Strict: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 3, 8} {
		for _, w := range []int{0, 1, 5} {
			src, err := StreamFS(fsys, ".", Options{Strict: true, Parallelism: p, Window: w})
			if err != nil {
				t.Fatal(err)
			}
			got, err := source.Drain(src, true)
			src.Close()
			if err != nil {
				t.Fatalf("p=%d w=%d: %v", p, w, err)
			}
			logsEqual(t, want, got)
		}
	}
}

// TestStreamFSDeliversCaseOrder: cases arrive in CaseID order — the
// canonical event-log order — not directory or file-name order.
func TestStreamFSDeliversCaseOrder(t *testing.T) {
	fsys, _ := synthFS(t, 19, 10)
	src, err := StreamFS(fsys, ".", Options{Strict: true, Parallelism: 4, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var prev trace.CaseID
	first := true
	for {
		c, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !first && !prev.Less(c.ID) {
			t.Fatalf("case %s delivered after %s", c.ID, prev)
		}
		prev, first = c.ID, false
	}
}

// TestStreamFSAbandonLeaksNothing is the regression test for the
// abandoned-consumer leak: in lenient mode, walking away from a stream
// after a few cases and calling Close must wind down every parser
// goroutine (Close blocks until they exit) and release every file
// handle (each worker owns its file for exactly the duration of its
// parse). Goroutines are counted via the runtime, file handles via
// /proc/self/fd where available.
func TestStreamFSAbandonLeaksNothing(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDir(dir, synth.Log("leak", 48, 60, 3)); err != nil {
		t.Fatal(err)
	}
	countFDs := func() int {
		ents, err := os.ReadDir("/proc/self/fd")
		if err != nil {
			return -1 // not Linux; goroutine accounting still applies
		}
		return len(ents)
	}

	goroutinesBefore := runtime.NumGoroutine()
	fdsBefore := countFDs()
	for trial := 0; trial < 8; trial++ {
		src, err := StreamDir(dir, Options{Parallelism: 6, Window: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := src.Next(); err != nil {
				t.Fatal(err)
			}
		}
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := src.Next(); err != source.ErrClosed {
			t.Fatalf("Next after Close: want ErrClosed, got %v", err)
		}
	}

	var goroutinesAfter int
	for i := 0; i < 100; i++ {
		goroutinesAfter = runtime.NumGoroutine()
		if goroutinesAfter <= goroutinesBefore {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if goroutinesAfter > goroutinesBefore {
		t.Errorf("parser goroutines leaked: %d before, %d after 8 abandoned streams",
			goroutinesBefore, goroutinesAfter)
	}
	if fdsBefore >= 0 {
		if fdsAfter := countFDs(); fdsAfter > fdsBefore {
			t.Errorf("file handles leaked: %d before, %d after (see /proc/self/fd)", fdsBefore, fdsAfter)
		}
	}
}
