package strace

import (
	"fmt"
	"testing"
	"time"
)

// decodeOf parses a single complete record line and decodes it.
func decodeOf(t *testing.T, line string) Decoded {
	t.Helper()
	rec, err := ParseLine(line)
	if err != nil {
		t.Fatalf("ParseLine(%q): %v", line, err)
	}
	return DecodeRecord(rec)
}

// TestDecodeRecordClasses drives every decoded syscall class through its
// success, errno and hostile-argument shapes and checks the full typed
// view — paths with dirfd resolution, spawn command lines with argv,
// connection subjects per address family.
func TestDecodeRecordClasses(t *testing.T) {
	tests := []struct {
		name string
		line string
		want Decoded
	}{
		// --- file class: openat family ---
		{
			"openat success uses ret annotation",
			`1  10:00:00.000001 openat(AT_FDCWD, "/etc/passwd", O_RDONLY) = 3</etc/passwd> <0.000008>`,
			Decoded{Kind: DecodeFile, Path: "/etc/passwd"},
		},
		{
			"openat errno joins dirfd",
			`1  10:00:00.000002 openat(5</data/run42>, "part.bin", O_RDONLY) = -1 ENOENT (No such file) <0.000004>`,
			Decoded{Kind: DecodeFile, Path: "/data/run42/part.bin"},
		},
		{
			"openat errno absolute ignores dirfd",
			`1  10:00:00.000003 openat(5</data>, "/abs/x.bin", O_RDONLY) = -1 EACCES (Permission denied) <0.000004>`,
			Decoded{Kind: DecodeFile, Path: "/abs/x.bin"},
		},
		{
			"openat hostile escaped arg",
			`1  10:00:00.000004 openat(AT_FDCWD, "/tmp/a\nb\357\203\277.bin", O_RDONLY) = -1 ENOENT (No such file) <0.000004>`,
			Decoded{Kind: DecodeFile, Path: "/tmp/a\nb\xef\x83\xbf.bin"},
		},
		{
			"unlinkat joins annotated AT_FDCWD",
			`1  10:00:00.000005 unlinkat(AT_FDCWD</home/u>, "stale.tmp", 0) = 0 <0.000004>`,
			Decoded{Kind: DecodeFile, Path: "/home/u/stale.tmp"},
		},
		// --- file class: simple path-first calls ---
		{
			"unlink success",
			`1  10:00:00.000006 unlink("/tmp/ior.lock") = 0 <0.000007>`,
			Decoded{Kind: DecodeFile, Path: "/tmp/ior.lock"},
		},
		{
			"truncate errno",
			`1  10:00:00.000007 truncate("/p/out.dat", 0) = -1 EROFS (Read-only file system) <0.000002>`,
			Decoded{Kind: DecodeFile, Path: "/p/out.dat"},
		},
		{
			"mkdir hostile delimiters",
			`1  10:00:00.000008 mkdir("/tmp/paren(pair)/bra{ce}", 0755) = 0 <0.000012>`,
			Decoded{Kind: DecodeFile, Path: "/tmp/paren(pair)/bra{ce}"},
		},
		// --- rename family: src subject, dst in Path2 ---
		{
			"rename carries both paths",
			`1  10:00:00.000009 rename("/tmp/ckpt.tmp", "/tmp/ckpt") = 0 <0.000008>`,
			Decoded{Kind: DecodeFile, Path: "/tmp/ckpt.tmp", Path2: "/tmp/ckpt"},
		},
		{
			"renameat2 resolves both dirfds",
			`1  10:00:00.000010 renameat2(5</stage>, "new.dat", 6</data>, "cur.dat", RENAME_EXCHANGE) = 0 <0.000008>`,
			Decoded{Kind: DecodeFile, Path: "/stage/new.dat", Path2: "/data/cur.dat"},
		},
		// --- spawn class ---
		{
			"execve success with argv tail",
			`1  10:00:00.000011 execve("/usr/bin/tar", ["tar", "-czf", "out.tgz"], 0x7ffd00 /* 60 vars */) = 0 <0.000200>`,
			Decoded{Kind: DecodeSpawn, Path: "/usr/bin/tar -czf out.tgz", Argv: []string{"tar", "-czf", "out.tgz"}},
		},
		{
			"execve errno keeps subject",
			`1  10:00:00.000012 execve("/usr/bin/gone", ["gone"], 0x7ffd00 /* 8 vars */) = -1 ENOENT (No such file) <0.000020>`,
			Decoded{Kind: DecodeSpawn, Path: "/usr/bin/gone", Argv: []string{"gone"}},
		},
		{
			"execve hostile escaped argv",
			`1  10:00:00.000013 execve("/bin/sh", ["sh", "-c", "echo \"a b\"\n"], 0x7ffd00 /* 2 vars */) = 0 <0.000100>`,
			Decoded{Kind: DecodeSpawn, Path: "/bin/sh -c echo \"a b\"\n", Argv: []string{"sh", "-c", "echo \"a b\"\n"}},
		},
		{
			"execveat resolves dirfd",
			`1  10:00:00.000014 execveat(5</opt/tools>, "run.sh", ["run.sh"], 0x7ffd00 /* 4 vars */, 0) = 0 <0.000100>`,
			Decoded{Kind: DecodeSpawn, Path: "/opt/tools/run.sh", Argv: []string{"run.sh"}},
		},
		// --- connect class ---
		{
			"connect AF_INET",
			`1  10:00:00.000015 connect(3<socket:[12345]>, {sa_family=AF_INET, sin_port=htons(443), sin_addr=inet_addr("10.0.0.7")}, 16) = 0 <0.000100>`,
			Decoded{Kind: DecodeConnect, Family: "AF_INET", Addr: "10.0.0.7:443", Port: 443},
		},
		{
			"connect AF_INET errno still decodes",
			`1  10:00:00.000016 connect(3<socket:[12345]>, {sa_family=AF_INET, sin_port=htons(80), sin_addr=inet_addr("1.2.3.4")}, 16) = -1 EINPROGRESS (Operation now in progress) <0.000050>`,
			Decoded{Kind: DecodeConnect, Family: "AF_INET", Addr: "1.2.3.4:80", Port: 80},
		},
		{
			"connect AF_INET6",
			`1  10:00:00.000017 connect(3<socket:[999]>, {sa_family=AF_INET6, sin6_port=htons(8080), sin6_flowinfo=htonl(0), inet_pton(AF_INET6, "2001:db8::1", &sin6_addr), sin6_scope_id=0}, 28) = 0 <0.000100>`,
			Decoded{Kind: DecodeConnect, Family: "AF_INET6", Addr: "[2001:db8::1]:8080", Port: 8080},
		},
		{
			"connect AF_UNIX",
			`1  10:00:00.000018 connect(4<socket:[777]>, {sa_family=AF_UNIX, sun_path="/run/docker.sock"}, 110) = 0 <0.000030>`,
			Decoded{Kind: DecodeConnect, Family: "AF_UNIX", Addr: "/run/docker.sock"},
		},
		{
			"connect abstract AF_UNIX",
			`1  10:00:00.000019 connect(4<socket:[778]>, {sa_family=AF_UNIX, sun_path=@"dbus-session"}, 110) = 0 <0.000030>`,
			Decoded{Kind: DecodeConnect, Family: "AF_UNIX", Addr: "@dbus-session"},
		},
		{
			"connect condensed dialect",
			`1  10:00:00.000020 connect(3<socket:[1]>, {Family: AF_INET, Addr: 8.8.8.8, Port: 53}, 16) = 0 <0.000030>`,
			Decoded{Kind: DecodeConnect, Family: "AF_INET", Addr: "8.8.8.8:53", Port: 53},
		},
		{
			"connect hostile sockaddr falls back to fd annotation",
			`1  10:00:00.000021 connect(3<socket:[424242]>, {garbage, no family}, 16) = -1 EINVAL (Invalid argument) <0.000030>`,
			Decoded{Kind: DecodeConnect, Addr: "socket:[424242]"},
		},
		// --- undecodable ---
		{
			"no subject at all",
			`1  10:00:00.000022 brk(NULL) = 0x55d3a0 <0.000002>`,
			Decoded{Kind: DecodeNone},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := decodeOf(t, tc.line)
			if got.Kind != tc.want.Kind || got.Path != tc.want.Path || got.Path2 != tc.want.Path2 ||
				got.Family != tc.want.Family || got.Addr != tc.want.Addr || got.Port != tc.want.Port {
				t.Errorf("DecodeRecord:\n got %+v\nwant %+v", got, tc.want)
			}
			if len(tc.want.Argv) > 0 {
				if len(got.Argv) != len(tc.want.Argv) {
					t.Fatalf("argv = %q, want %q", got.Argv, tc.want.Argv)
				}
				for i := range got.Argv {
					if got.Argv[i] != tc.want.Argv[i] {
						t.Errorf("argv[%d] = %q, want %q", i, got.Argv[i], tc.want.Argv[i])
					}
				}
			}
		})
	}
}

// TestDecodeUnfinishedResumed: subjects must survive the
// unfinished/resumed merge — the argument struct sits in the unfinished
// half, the return in the resumed half.
func TestDecodeUnfinishedResumed(t *testing.T) {
	recs := parseRecords(t,
		`7  10:00:00.000001 connect(3<socket:[5]>, {sa_family=AF_INET, sin_port=htons(443), sin_addr=inet_addr("10.1.2.3")}, 16 <unfinished ...>`,
		`8  10:00:00.000002 execve("/usr/bin/env", ["env"], 0x7ffd00 /* 3 vars */ <unfinished ...>`,
		`7  10:00:00.000400 <... connect resumed> ) = 0 <0.000399>`,
		`8  10:00:00.000500 <... execve resumed> ) = 0 <0.000498>`,
	)
	events, err := EventsFromRecords(testID, recs, Options{Strict: true})
	if err != nil {
		t.Fatalf("EventsFromRecords: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %v", events)
	}
	if events[0].Call != "connect" || events[0].FP != "10.1.2.3:443" {
		t.Errorf("merged connect = %+v", events[0])
	}
	if events[1].Call != "execve" || events[1].FP != "/usr/bin/env" {
		t.Errorf("merged execve = %+v", events[1])
	}
}

// TestUnquoteEscapes is the regression test for the C-escape mangling
// bug: the old unquote dropped the backslash and kept the escape letter
// ("\n" became "n", "\357" became "357"), silently corrupting every
// escaped path. The full strace escape set must decode to the original
// bytes.
func TestUnquoteEscapes(t *testing.T) {
	tests := []struct{ in, want string }{
		{`"\n"`, "\n"},
		{`"\t"`, "\t"},
		{`"\r"`, "\r"},
		{`"\v\f\a\b"`, "\v\f\a\b"},
		{`"\357\203\277"`, "\xef\x83\xbf"}, // octal, the strace -x default for non-ASCII
		{`"\0"`, "\x00"},                   // short octal
		{`"\0778"`, "\x3f8"},               // octal stops at three digits
		{`"\x41\x42"`, "AB"},               // hex
		{`"\xg"`, "xg"},                    // malformed hex keeps the marker
		{`"\q"`, "q"},                      // unknown escape yields the escaped byte
		{`"\\"`, `\`},                      // escaped backslash
		{`"\""`, `"`},                      // escaped quote
		{`"a\nb\357c"`, "a\nb\xefc"},       // mixed literal and escaped bytes
		{`"é\U0001F642"`, "é\U0001F642"},   // Go %q forms round-trip too
	}
	for _, tc := range tests {
		got, ok := unquote(tc.in)
		if !ok || got != tc.want {
			t.Errorf("unquote(%s) = %q, %v; want %q", tc.in, got, ok, tc.want)
		}
	}
}

// TestUnquoteRoundTrip: for arbitrary byte strings, quoting with Go's %q
// (a superset dialect of strace's) and unquoting must reproduce the
// original bytes — the property the writer/parser round trip of escaped
// paths stands on.
func TestUnquoteRoundTrip(t *testing.T) {
	inputs := []string{
		"/tmp/a\nb.bin",
		"/tmp/\xef\x83\xbf/unié.dat",
		"col:\ttab\rret\x00nul",
		`back\slash "quoted"`,
		"\x01\x02\x7f\x80\xff",
	}
	for _, in := range inputs {
		q := fmt.Sprintf("%q", in)
		got, ok := unquote(q)
		if !ok || got != in {
			t.Errorf("unquote(%s) = %q, %v; want %q", q, got, ok, in)
		}
	}
}

// TestDirfdJoin is the regression test for the dirfd-join bugs: a dirfd
// annotation ending in "/" used to produce a doubled separator
// ("//part.bin"), and a relative path under an un-annotated dirfd used
// to be emitted bare, conflating the cwd-relative "x" with the absolute
// "/x" in every aggregate. Relative paths now carry the distinct "./"
// marker.
func TestDirfdJoin(t *testing.T) {
	tests := []struct{ line, want string }{
		{
			// Root-annotated dirfd must not double the separator.
			`1  10:00:00.000001 openat(5</>, "etc/passwd", O_RDONLY) = -1 ENOENT (No such file) <0.000004>`,
			"/etc/passwd",
		},
		{
			// Trailing-slash annotation must not double the separator.
			`1  10:00:00.000002 openat(5</data/>, "part.bin", O_RDONLY) = -1 ENOENT (No such file) <0.000004>`,
			"/data/part.bin",
		},
		{
			// Un-annotated numeric dirfd: cwd-relative, marked "./".
			`1  10:00:00.000003 openat(5, "rel.bin", O_RDONLY) = -1 ENOENT (No such file) <0.000004>`,
			"./rel.bin",
		},
		{
			// Bare AT_FDCWD (no -y annotation): same marker.
			`1  10:00:00.000004 openat(AT_FDCWD, "rel.bin", O_RDONLY) = -1 ENOENT (No such file) <0.000004>`,
			"./rel.bin",
		},
		{
			// AT_EMPTY_PATH: the subject is the dirfd annotation itself.
			`1  10:00:00.000005 openat(5</data/part.bin>, "", O_RDONLY) = -1 EINVAL (Invalid argument) <0.000004>`,
			"/data/part.bin",
		},
		{
			// unlinkat joins like openat.
			`1  10:00:00.000006 unlinkat(7</scratch/>, "old.tmp", 0) = 0 <0.000004>`,
			"/scratch/old.tmp",
		},
	}
	for _, tc := range tests {
		rec, err := ParseLine(tc.line)
		if err != nil {
			t.Fatalf("ParseLine(%q): %v", tc.line, err)
		}
		if got := extractPath(rec); got != tc.want {
			t.Errorf("extractPath(%q) = %q, want %q", tc.line, got, tc.want)
		}
	}
}

// TestMidnightWrap is the regression test for the -tt timestamp wrap: a
// trace straddling midnight used to go non-monotonic (the 00:00:00
// record appeared ~24h before its predecessor), breaking durations,
// orderings and concurrency intervals. The converter now detects the
// wrap and keeps time flowing forward, including for straggler records
// strace emits slightly out of order across the boundary.
func TestMidnightWrap(t *testing.T) {
	recs := parseRecords(t,
		`1  23:59:59.900000 openat(AT_FDCWD, "/a", O_RDONLY) = 3</a> <0.000010>`,
		`1  00:00:00.100000 read(3</a>, ..., 64) = 64 <0.000010>`,
		`1  23:59:59.950000 write(4</b>, ..., 8) = 8 <0.000010>`, // straggler from before the wrap
		`1  00:00:00.200000 close(3</a>) = 0 <0.000010>`,
	)
	events, err := EventsFromRecords(testID, recs, Options{Strict: true})
	if err != nil {
		t.Fatalf("EventsFromRecords: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("events = %v", events)
	}
	day := 24 * time.Hour
	wants := []time.Duration{
		23*time.Hour + 59*time.Minute + 59*time.Second + 900*time.Millisecond,
		day + 100*time.Millisecond,
		23*time.Hour + 59*time.Minute + 59*time.Second + 950*time.Millisecond,
		day + 200*time.Millisecond,
	}
	for i, want := range wants {
		if events[i].Start != want {
			t.Errorf("event %d (%s) start = %v, want %v", i, events[i].Call, events[i].Start, want)
		}
	}
	// The wrapped trace is causally ordered: the post-midnight reads
	// come after the pre-midnight open.
	if events[1].Start < events[0].Start || events[3].Start < events[1].Start {
		t.Error("midnight wrap left the trace non-monotonic")
	}
}

// TestMidnightWrapEpochUntouched: epoch (-ttt) stamps never jump by half
// a day between adjacent records, so the wrap heuristic must leave them
// exactly as parsed.
func TestMidnightWrapEpochUntouched(t *testing.T) {
	recs := parseRecords(t,
		`1  1726160397.300539 openat(AT_FDCWD, "/a", O_RDONLY) = 3</a> <0.000010>`,
		`1  1726160397.400539 read(3</a>, ..., 64) = 64 <0.000010>`,
	)
	events, err := EventsFromRecords(testID, recs, Options{Strict: true})
	if err != nil {
		t.Fatalf("EventsFromRecords: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %v", events)
	}
	want0 := time.Duration(1726160397)*time.Second + 300539*time.Microsecond
	if events[0].Start != want0 || events[1].Start != want0+100*time.Millisecond {
		t.Errorf("epoch stamps changed: %v, %v", events[0].Start, events[1].Start)
	}
}
