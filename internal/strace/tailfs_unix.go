//go:build unix

package strace

import (
	"io/fs"
	"syscall"
)

// fileID extracts the inode number — the identity rotation detection
// compares. A name whose inode changed was rotated: the old handle
// still reads the old file, the name now binds a new one.
func fileID(fi fs.FileInfo) uint64 {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return st.Ino
	}
	return 0
}
