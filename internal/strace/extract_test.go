package strace

import (
	"math/rand"
	"strings"
	"testing"

	"stinspector/internal/trace"
)

// eventOf parses a single line with an all-calls filter and returns the
// resulting event.
func eventOf(t *testing.T, line string) trace.Event {
	t.Helper()
	recs := parseRecords(t, line)
	events, err := EventsFromRecords(testID, recs, Options{Calls: map[string]bool{}, KeepFailed: true})
	if err != nil {
		t.Fatalf("EventsFromRecords: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %v", events)
	}
	return events[0]
}

func TestExtractPathVariants(t *testing.T) {
	tests := []struct {
		line string
		want string
	}{
		{
			`1  10:00:00.000001 openat(AT_FDCWD, "/etc/passwd", O_RDONLY) = 3</etc/passwd> <0.000008>`,
			"/etc/passwd",
		},
		{
			// Relative openat joined with the annotated dirfd.
			`1  10:00:00.000002 openat(5</data/run42>, "part.bin", O_RDONLY) = -1 ENOENT (No such file) <0.000004>`,
			"/data/run42/part.bin",
		},
		{
			`1  10:00:00.000003 stat("/usr/bin/ior", {st_mode=S_IFREG|0755, st_size=12345}) = 0 <0.000005>`,
			"/usr/bin/ior",
		},
		{
			`1  10:00:00.000004 newfstatat(AT_FDCWD, "/p/scratch/u/out", {st_mode=S_IFREG|0644}, 0) = 0 <0.000006>`,
			"/p/scratch/u/out",
		},
		{
			`1  10:00:00.000005 unlink("/tmp/ior.lock") = 0 <0.000007>`,
			"/tmp/ior.lock",
		},
		{
			`1  10:00:00.000006 rename("/tmp/ckpt.tmp", "/tmp/ckpt") = 0 <0.000008>`,
			"/tmp/ckpt.tmp",
		},
		{
			`1  10:00:00.000007 renameat2(AT_FDCWD, "/tmp/a", AT_FDCWD, "/tmp/b", 0) = 0 <0.000008>`,
			"/tmp/a",
		},
		{
			`1  10:00:00.000008 mmap(NULL, 8192, PROT_READ, MAP_PRIVATE, 3</usr/lib/libc.so.6>, 0) = 0x7f0000000000 <0.000002>`,
			"/usr/lib/libc.so.6",
		},
		{
			// Anonymous mmap has no path.
			`1  10:00:00.000009 mmap(NULL, 8192, PROT_READ|PROT_WRITE, MAP_PRIVATE|MAP_ANONYMOUS, -1, 0) = 0x7f0000001000 <0.000002>`,
			"",
		},
		{
			`1  10:00:00.000010 execve("/usr/bin/ls", ["ls"], 0x7ffd00 /* 60 vars */) = 0 <0.000200>`,
			"/usr/bin/ls",
		},
		{
			`1  10:00:00.000011 mkdirat(AT_FDCWD, "/p/scratch/u/fpp", 0755) = 0 <0.000030>`,
			"/p/scratch/u/fpp",
		},
		{
			`1  10:00:00.000012 fsync(7</p/scratch/u/ssf/test>) = 0 <0.003000>`,
			"/p/scratch/u/ssf/test",
		},
	}
	for _, tc := range tests {
		e := eventOf(t, tc.line)
		if e.FP != tc.want {
			t.Errorf("line %q:\n  fp = %q, want %q", tc.line, e.FP, tc.want)
		}
	}
}

// Fuzz-style robustness: random mutations of valid trace text must never
// panic the parser; they either parse or return an error.
func TestParserRobustnessUnderMutation(t *testing.T) {
	base := []string{
		`9054  08:55:54.153994 read(3</usr/lib/x.so>, ..., 832) = 832 <0.000203>`,
		`9054  08:55:54.163049 openat(AT_FDCWD, "/etc/passwd", O_RDONLY) = 3</etc/passwd> <0.000031>`,
		`77423  16:56:40.452431 read(3</f>, <unfinished ...>`,
		`77423  16:56:40.452660 <... read resumed> ..., 405) = 404 <0.000223>`,
		`9054  08:55:54.180000 +++ exited with 0 +++`,
		`9054  08:55:54.190000 --- SIGCHLD {si_signo=SIGCHLD} ---`,
	}
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 5000; trial++ {
		line := base[rng.Intn(len(base))]
		b := []byte(line)
		// Apply 1-3 random mutations: flip, delete, insert.
		for k := 0; k < 1+rng.Intn(3); k++ {
			if len(b) == 0 {
				break
			}
			switch rng.Intn(3) {
			case 0:
				b[rng.Intn(len(b))] = byte(rng.Intn(128))
			case 1:
				i := rng.Intn(len(b))
				b = append(b[:i], b[i+1:]...)
			case 2:
				i := rng.Intn(len(b) + 1)
				b = append(b[:i], append([]byte{byte(rng.Intn(128))}, b[i:]...)...)
			}
		}
		// Must not panic.
		rec, err := ParseLine(string(b))
		_ = rec
		_ = err
	}
}

// Whole-stream robustness: mutated multi-line inputs through the lenient
// reader and the event extraction must not panic.
func TestStreamRobustnessUnderMutation(t *testing.T) {
	valid := strings.Join([]string{
		`1  10:00:00.000001 openat(AT_FDCWD, "/a", O_RDONLY) = 3</a> <0.00001>`,
		`1  10:00:00.000002 read(3</a>, ..., 100) = 100 <0.000010>`,
		`2  10:00:00.000003 write(4</b>, <unfinished ...>`,
		`2  10:00:00.000004 <... write resumed> ..., 50) = 50 <0.000020>`,
		`1  10:00:00.000005 +++ exited with 0 +++`,
	}, "\n")
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 500; trial++ {
		b := []byte(valid)
		for k := 0; k < 5; k++ {
			i := rng.Intn(len(b))
			b[i] = byte(rng.Intn(128))
		}
		recs, _, err := ReadRecords(strings.NewReader(string(b)), true)
		if err != nil {
			continue
		}
		if _, err := EventsFromRecords(testID, recs, Options{}); err != nil {
			t.Fatalf("lenient extraction errored: %v", err)
		}
	}
}
