package strace

import (
	"bytes"
	"compress/gzip"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"testing/fstest"
	"time"

	"stinspector/internal/synth"
	"stinspector/internal/trace"
)

// synthFS renders nFiles synthetic per-rank trace files into an
// in-memory filesystem, gzip-compressing every fourth file so the
// parallel path covers both encodings.
func synthFS(t testing.TB, nFiles, perFile int) (fstest.MapFS, int) {
	t.Helper()
	fsys := fstest.MapFS{}
	log := synth.Log("par", nFiles, perFile, 7)
	for f, c := range log.Cases() {
		var buf bytes.Buffer
		if err := NewWriter(&buf).WriteCase(c); err != nil {
			t.Fatal(err)
		}
		name := c.ID.FileName()
		data := buf.Bytes()
		if f%4 == 3 {
			var gzBuf bytes.Buffer
			gw := gzip.NewWriter(&gzBuf)
			if _, err := gw.Write(data); err != nil {
				t.Fatal(err)
			}
			if err := gw.Close(); err != nil {
				t.Fatal(err)
			}
			name += ".gz"
			data = gzBuf.Bytes()
		}
		fsys[name] = &fstest.MapFile{Data: data}
	}
	return fsys, log.NumEvents()
}

// logsEqual compares two event-logs case by case, event by event.
func logsEqual(t *testing.T, a, b *trace.EventLog) {
	t.Helper()
	if a.NumCases() != b.NumCases() {
		t.Fatalf("case count differs: %d vs %d", a.NumCases(), b.NumCases())
	}
	ac, bc := a.Cases(), b.Cases()
	for i := range ac {
		if ac[i].ID != bc[i].ID {
			t.Fatalf("case %d: id %s vs %s", i, ac[i].ID, bc[i].ID)
		}
		if !reflect.DeepEqual(ac[i].Events, bc[i].Events) {
			t.Fatalf("case %s: events differ", ac[i].ID)
		}
	}
}

// TestReadFSParallelMatchesSequential: the deterministic-merge guarantee.
// Every parallelism setting must produce the identical event-log.
func TestReadFSParallelMatchesSequential(t *testing.T) {
	fsys, _ := synthFS(t, 37, 50)
	seq, err := ReadFS(fsys, ".", Options{Strict: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 2, 4, 16, 64} {
		par, err := ReadFS(fsys, ".", Options{Strict: true, Parallelism: p})
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", p, err)
		}
		logsEqual(t, seq, par)
	}
}

// TestReadFSEmptyDir: no trace files is an error at every parallelism.
func TestReadFSEmptyDir(t *testing.T) {
	fsys := fstest.MapFS{"README.txt": &fstest.MapFile{Data: []byte("not a trace")}}
	for _, p := range []int{1, 8} {
		_, err := ReadFS(fsys, ".", Options{Parallelism: p})
		if err == nil || !strings.Contains(err.Error(), "no *.st") {
			t.Fatalf("Parallelism=%d: want 'no *.st' error, got %v", p, err)
		}
	}
}

// TestReadFSCorruptFileStrict: under Strict, every corrupt file is
// reported (multi-error), deterministically, at every parallelism.
func TestReadFSCorruptFileStrict(t *testing.T) {
	fsys, _ := synthFS(t, 24, 20)
	fsys["par_h0_900.st"] = &fstest.MapFile{Data: []byte("this is not strace output\n")}
	fsys["par_h0_901.st"] = &fstest.MapFile{Data: []byte("neither is this\n")}
	for _, p := range []int{1, 8} {
		_, err := ReadFS(fsys, ".", Options{Strict: true, Parallelism: p})
		if err == nil {
			t.Fatalf("Parallelism=%d: corrupt files not reported", p)
		}
		for _, name := range []string{"par_h0_900.st", "par_h0_901.st"} {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("Parallelism=%d: error does not mention %s: %v", p, name, err)
			}
		}
	}
}

// TestReadFSCorruptFileLenient: without Strict, corrupt lines are
// skipped, so a garbage file degrades to an empty case instead of
// failing the whole ingestion.
func TestReadFSCorruptFileLenient(t *testing.T) {
	fsys, events := synthFS(t, 24, 20)
	fsys["par_h0_900.st"] = &fstest.MapFile{Data: []byte("this is not strace output\n")}
	seq, err := ReadFS(fsys, ".", Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ReadFS(fsys, ".", Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	logsEqual(t, seq, par)
	if par.NumEvents() != events {
		t.Fatalf("lenient ingest: got %d events, want %d", par.NumEvents(), events)
	}
}

// TestReadFSBadGzipDeterministicError: a broken .st.gz is an I/O-level
// failure even in lenient mode; the reported error must name the first
// failing file in sorted order at every parallelism.
func TestReadFSBadGzipDeterministicError(t *testing.T) {
	fsys, _ := synthFS(t, 16, 20)
	fsys["par_h0_800.st.gz"] = &fstest.MapFile{Data: []byte("not gzip at all")}
	for _, p := range []int{1, 4, 16} {
		_, err := ReadFS(fsys, ".", Options{Parallelism: p})
		if err == nil || !strings.Contains(err.Error(), "par_h0_800.st.gz") {
			t.Fatalf("Parallelism=%d: want error naming par_h0_800.st.gz, got %v", p, err)
		}
	}
}

// TestReadFSTwoFailuresFirstWins: with two failing files, lenient mode
// must always report the one earlier in sorted order, even when a
// worker reaches the later one first in wall-clock time (regression
// test for the ordered-abandonment guarantee of par.ForEach).
func TestReadFSTwoFailuresFirstWins(t *testing.T) {
	fsys, _ := synthFS(t, 32, 10)
	// Sorted order places aa_... first and zz_... last.
	fsys["aa_h0_1.st.gz"] = &fstest.MapFile{Data: []byte("broken early")}
	fsys["zz_h0_9.st.gz"] = &fstest.MapFile{Data: []byte("broken late")}
	for i := 0; i < 50; i++ {
		_, err := ReadFS(fsys, ".", Options{Parallelism: 8})
		if err == nil || !strings.Contains(err.Error(), "aa_h0_1.st.gz") {
			t.Fatalf("run %d: want error naming aa_h0_1.st.gz (the first failure in sorted order), got %v", i, err)
		}
	}
}

// TestReadDirParallelSpeedup encodes the pipeline's performance goal: on
// a machine with at least 4 cores, parallel ingestion of a 200-file
// trace directory must be at least 2x faster than the sequential path.
// Single-core environments skip (there is no parallelism to exploit).
func TestReadDirParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for the speedup gate, have %d", runtime.NumCPU())
	}
	fsys, events := synthFS(t, 200, 400)
	run := func(parallelism int) time.Duration {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 5; i++ {
			start := time.Now()
			log, err := ReadFS(fsys, ".", Options{Strict: true, Parallelism: parallelism})
			if err != nil {
				t.Fatal(err)
			}
			if log.NumEvents() != events {
				t.Fatalf("lost events: got %d, want %d", log.NumEvents(), events)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	run(0) // warm up pools and code paths
	seq := run(1)
	par := run(0)
	speedup := seq.Seconds() / par.Seconds()
	t.Logf("sequential %v, parallel %v (%d cores): %.2fx", seq, par, runtime.NumCPU(), speedup)
	if speedup < 2 {
		t.Errorf("parallel ReadFS speedup %.2fx, want >= 2x on %d cores", speedup, runtime.NumCPU())
	}
}
