package strace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"stinspector/internal/intern"
	"stinspector/internal/race"
	"stinspector/internal/synth/profiles"
	"stinspector/internal/trace"
)

// TestParseAllocBudget is the parse-side allocation-regression gate of
// the symbol-interning refactor: ParseCase over a realistic mixed-call
// trace must stay under a fixed allocations-per-event ceiling. The
// pre-interning implementation sat near 5 allocs/event (line copy,
// timestamp SplitN, per-record Args slices, unquote copies); the
// interned, arena-backed parser runs near 1.1 — the line copy plus
// amortized slice growth. The ceiling is set at 2 to leave headroom
// for scanner-buffer variance without ever letting the old behaviour
// back in. The budget holds over both symbol-table modes: the
// process-wide Default (warm pooled caches) and a scoped per-pass
// table, whose caches are deliberately stripped when pooled — the
// per-file map rebuild is a handful of allocations amortized over
// thousands of events. Skipped under -race: the detector's
// instrumented allocator makes the count meaningless.
func TestParseAllocBudget(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	const events = 4000
	var buf bytes.Buffer
	w := NewWriter(&buf)
	id := trace.CaseID{CID: "alloc", Host: "h", RID: 1}
	calls := []string{"openat", "read", "pwrite64", "lseek", "close", "fsync"}
	paths := []string{"/usr/lib/x86_64-linux-gnu/libselinux.so.1", "/p/scratch/u/ssf/testfile", "/etc/ld.so.cache"}
	for i := 0; i < events; i++ {
		w.WriteEvent(trace.Event{
			PID:   9000 + i%3,
			Call:  calls[i%len(calls)],
			Start: time.Duration(i) * time.Millisecond,
			Dur:   50 * time.Microsecond,
			FP:    paths[i%len(paths)],
			Size:  4096,
		})
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	data := buf.String()

	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"default-table", Options{Calls: map[string]bool{}}},
		{"scoped-table", Options{Calls: map[string]bool{}, Syms: intern.NewTable()}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			// Warm the interner and the pools so the measurement
			// reflects the steady state the ingestion workers run in.
			if _, err := ParseCase(id, strings.NewReader(data), mode.opts); err != nil {
				t.Fatal(err)
			}

			avg := testing.AllocsPerRun(10, func() {
				c, err := ParseCase(id, strings.NewReader(data), mode.opts)
				if err != nil {
					t.Fatal(err)
				}
				if c.Len() != events {
					t.Fatalf("parsed %d events, want %d", c.Len(), events)
				}
			})
			perEvent := avg / events
			t.Logf("ParseCase (%s): %.0f allocs for %d events = %.3f allocs/event", mode.name, avg, events, perEvent)
			if perEvent > 2.0 {
				t.Errorf("allocs/event = %.3f, budget 2.0 — the zero-alloc parse path regressed", perEvent)
			}
		})
	}
}

// TestParseAllocBudgetProfiles extends the parse-side allocation gate
// from the friendly synth shape to the adversarial generator profiles:
// a Zipf vocabulary (heavytail) and pathological quoted/escaped
// argument strings (hostileargs) must not reopen a per-event
// allocation path. Measured steady state sits near 1.1 allocs/event
// for both — the same line-copy cost as the friendly shape — so both
// share the recorded 2.0 ceiling. Skipped under -race (instrumented
// allocator).
func TestParseAllocBudgetProfiles(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	for _, name := range []string{"heavytail", "hostileargs"} {
		p, ok := profiles.Lookup(name)
		if !ok {
			t.Fatalf("profile %s missing", name)
		}
		log := p.Generate("allocp", 2, 2000, 3)
		type renderedCase struct {
			id   trace.CaseID
			data string
		}
		var cs []renderedCase
		events := 0
		for _, c := range log.Cases() {
			var buf bytes.Buffer
			if err := NewWriter(&buf).WriteCase(c); err != nil {
				t.Fatal(err)
			}
			cs = append(cs, renderedCase{c.ID, buf.String()})
			events += c.Len()
		}

		for _, mode := range []struct {
			name string
			opts Options
		}{
			{"default-table", Options{Strict: true}},
			{"scoped-table", Options{Strict: true, Syms: intern.NewTable()}},
		} {
			t.Run(name+"/"+mode.name, func(t *testing.T) {
				parseAll := func() {
					for _, c := range cs {
						got, err := ParseCase(c.id, strings.NewReader(c.data), mode.opts)
						if err != nil {
							t.Fatal(err)
						}
						if got.Len() != log.Case(c.id).Len() {
							t.Fatalf("case %s: parsed %d events, want %d", c.id, got.Len(), log.Case(c.id).Len())
						}
					}
				}
				parseAll() // warm the interner and pools
				avg := testing.AllocsPerRun(10, parseAll)
				perEvent := avg / float64(events)
				t.Logf("ParseCase (%s, %s): %.0f allocs for %d events = %.3f allocs/event",
					name, mode.name, avg, events, perEvent)
				if perEvent > 2.0 {
					t.Errorf("allocs/event = %.3f, budget 2.0 — hostile inputs reopened a per-event allocation path", perEvent)
				}
			})
		}
	}
}

// TestBehaviorAllocBudget is the allocation gate for the semantic
// decoding layer: parsing the behavior profile — whose call mix routes
// every record through the sockaddr, argv and dirfd-join decoders —
// must hold the same 2.0 allocs/event ceiling as the plain I/O path.
// The decoders build derived paths into per-parser scratch buffers and
// intern through the symbol table, so steady state measures near the
// usual 1.1 (line copy plus amortized growth); a regression here means
// a decoder started allocating per event. Skipped under -race
// (instrumented allocator).
func TestBehaviorAllocBudget(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	p, ok := profiles.Lookup("behavior")
	if !ok {
		t.Fatal("behavior profile missing")
	}
	log := p.Generate("allocb", 2, 2000, 5)
	type renderedCase struct {
		id   trace.CaseID
		data string
	}
	var cs []renderedCase
	events := 0
	for _, c := range log.Cases() {
		var buf bytes.Buffer
		if err := NewWriter(&buf).WriteCase(c); err != nil {
			t.Fatal(err)
		}
		cs = append(cs, renderedCase{c.ID, buf.String()})
		events += c.Len()
	}

	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"default-table", Options{Strict: true}},
		{"scoped-table", Options{Strict: true, Syms: intern.NewTable()}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			parseAll := func() {
				for _, c := range cs {
					got, err := ParseCase(c.id, strings.NewReader(c.data), mode.opts)
					if err != nil {
						t.Fatal(err)
					}
					if got.Len() != log.Case(c.id).Len() {
						t.Fatalf("case %s: parsed %d events, want %d", c.id, got.Len(), log.Case(c.id).Len())
					}
				}
			}
			parseAll() // warm the interner and pools
			avg := testing.AllocsPerRun(10, parseAll)
			perEvent := avg / float64(events)
			t.Logf("ParseCase (behavior, %s): %.0f allocs for %d events = %.3f allocs/event",
				mode.name, avg, events, perEvent)
			if perEvent > 2.0 {
				t.Errorf("allocs/event = %.3f, budget 2.0 — the semantic decoders opened a per-event allocation path", perEvent)
			}
		})
	}
}
