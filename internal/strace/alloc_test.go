package strace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"stinspector/internal/intern"
	"stinspector/internal/race"
	"stinspector/internal/trace"
)

// TestParseAllocBudget is the parse-side allocation-regression gate of
// the symbol-interning refactor: ParseCase over a realistic mixed-call
// trace must stay under a fixed allocations-per-event ceiling. The
// pre-interning implementation sat near 5 allocs/event (line copy,
// timestamp SplitN, per-record Args slices, unquote copies); the
// interned, arena-backed parser runs near 1.1 — the line copy plus
// amortized slice growth. The ceiling is set at 2 to leave headroom
// for scanner-buffer variance without ever letting the old behaviour
// back in. The budget holds over both symbol-table modes: the
// process-wide Default (warm pooled caches) and a scoped per-pass
// table, whose caches are deliberately stripped when pooled — the
// per-file map rebuild is a handful of allocations amortized over
// thousands of events. Skipped under -race: the detector's
// instrumented allocator makes the count meaningless.
func TestParseAllocBudget(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	const events = 4000
	var buf bytes.Buffer
	w := NewWriter(&buf)
	id := trace.CaseID{CID: "alloc", Host: "h", RID: 1}
	calls := []string{"openat", "read", "pwrite64", "lseek", "close", "fsync"}
	paths := []string{"/usr/lib/x86_64-linux-gnu/libselinux.so.1", "/p/scratch/u/ssf/testfile", "/etc/ld.so.cache"}
	for i := 0; i < events; i++ {
		w.WriteEvent(trace.Event{
			PID:   9000 + i%3,
			Call:  calls[i%len(calls)],
			Start: time.Duration(i) * time.Millisecond,
			Dur:   50 * time.Microsecond,
			FP:    paths[i%len(paths)],
			Size:  4096,
		})
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	data := buf.String()

	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"default-table", Options{Calls: map[string]bool{}}},
		{"scoped-table", Options{Calls: map[string]bool{}, Syms: intern.NewTable()}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			// Warm the interner and the pools so the measurement
			// reflects the steady state the ingestion workers run in.
			if _, err := ParseCase(id, strings.NewReader(data), mode.opts); err != nil {
				t.Fatal(err)
			}

			avg := testing.AllocsPerRun(10, func() {
				c, err := ParseCase(id, strings.NewReader(data), mode.opts)
				if err != nil {
					t.Fatal(err)
				}
				if c.Len() != events {
					t.Fatalf("parsed %d events, want %d", c.Len(), events)
				}
			})
			perEvent := avg / events
			t.Logf("ParseCase (%s): %.0f allocs for %d events = %.3f allocs/event", mode.name, avg, events, perEvent)
			if perEvent > 2.0 {
				t.Errorf("allocs/event = %.3f, budget 2.0 — the zero-alloc parse path regressed", perEvent)
			}
		})
	}
}
