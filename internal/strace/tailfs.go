package strace

import (
	"io"
	"os"
	"path/filepath"
	"strings"
)

// TailFS is the filesystem surface the follow-mode tailer consumes: a
// flat directory of growing trace files, with enough identity
// information to detect rotation (the name now binds to a different
// file) and truncation (the file shrank). The production implementation
// is OSDir; internal/faultfs provides a fault-injecting one for the
// recovery test matrix, which is why this is an interface at all.
//
// Implementations must be safe for concurrent use: the tailer stats and
// opens concurrently from per-file goroutines.
type TailFS interface {
	// Names lists the trace files ("*.st") currently present, in any
	// order. A transient listing error is recoverable; the tailer
	// retries on its poll cadence.
	Names() ([]string, error)
	// Open opens the file currently bound to name for sequential
	// reading.
	Open(name string) (TailFile, error)
	// FileID reports the identity of the file currently bound to name
	// (the inode on unix). An open handle whose ID no longer matches
	// FileID(name) has been rotated away.
	FileID(name string) (uint64, error)
}

// TailFile is one open trace file being tailed.
type TailFile interface {
	io.ReadCloser
	// Size reports the current size of the open file itself (fstat): it
	// keeps growing — or shrinking, on truncation — while the handle is
	// open, even after the name is rotated away.
	Size() (int64, error)
	// ID reports the open file's identity, comparable with
	// TailFS.FileID.
	ID() uint64
}

// IsTraceName reports whether name looks like a per-case trace file the
// follow layer should tail. Compressed traces are excluded: a growing
// gzip stream cannot be incrementally decoded from an offset, so
// follow-mode consumes plain text only (batch ingestion still reads
// .st.gz).
func IsTraceName(name string) bool {
	return strings.HasSuffix(name, ".st")
}

// OSDir returns the production TailFS over a real directory.
func OSDir(dir string) TailFS { return osDir{dir: dir} }

type osDir struct{ dir string }

func (d osDir) Names() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		if ent.IsDir() || !IsTraceName(ent.Name()) {
			continue
		}
		names = append(names, ent.Name())
	}
	return names, nil
}

func (d osDir) Open(name string) (TailFile, error) {
	f, err := os.Open(filepath.Join(d.dir, name))
	if err != nil {
		return nil, err
	}
	return osTailFile{f: f}, nil
}

func (d osDir) FileID(name string) (uint64, error) {
	fi, err := os.Stat(filepath.Join(d.dir, name))
	if err != nil {
		return 0, err
	}
	return fileID(fi), nil
}

type osTailFile struct{ f *os.File }

func (t osTailFile) Read(p []byte) (int, error) { return t.f.Read(p) }
func (t osTailFile) Close() error               { return t.f.Close() }

func (t osTailFile) Size() (int64, error) {
	fi, err := t.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (t osTailFile) ID() uint64 {
	fi, err := t.f.Stat()
	if err != nil {
		return 0
	}
	return fileID(fi)
}
