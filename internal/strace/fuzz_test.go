package strace

import (
	"bytes"
	"strings"
	"testing"

	"stinspector/internal/trace"
)

// fuzzSeeds are realistic strace fragments covering the parser's
// branches: plain calls, -f PID columns, unfinished/resumed pairs,
// signals, exits, failed and interrupted calls, and junk.
var fuzzSeeds = []string{
	`9054  08:55:54.153994 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, ..., 832) = 832 <0.000203>`,
	`08:55:54.153994 openat(AT_FDCWD, "/etc/ld.so.cache", O_RDONLY|O_CLOEXEC) = 3</etc/ld.so.cache> <0.000042>`,
	"9054  08:55:54.100000 write(1</dev/pts/0>, \"x\", 1 <unfinished ...>\n" +
		"9055  08:55:54.100100 read(4</tmp/a>, ..., 16) = 16 <0.000010>\n" +
		"9054  08:55:54.100200 <... write resumed>) = 1 <0.000200>",
	`9054  08:55:54.200000 --- SIGCHLD {si_signo=SIGCHLD} ---`,
	`9054  08:55:54.300000 +++ exited with 0 +++`,
	`9054  08:55:54.400000 read(5</tmp/x>, ..., 64) = -1 EAGAIN (Resource temporarily unavailable) <0.000015>`,
	`9054  08:55:54.500000 read(5</tmp/x>, ..., 64) = ? ERESTARTSYS (To be restarted if SA_RESTART is set) <0.000015>`,
	`not strace output at all`,
	``,
}

// FuzzParseCase: arbitrary trace text must never panic, in any option
// mode, and whenever a case is produced it must satisfy the event-model
// invariants (sorted by start time, stamped with the case identity).
func FuzzParseCase(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	// A writer-dialect seed: a synthetic case rendered back to strace
	// text, so the fuzzer starts from the full round-trip grammar.
	var buf bytes.Buffer
	c := trace.NewCase(trace.CaseID{CID: "seed", Host: "h", RID: 7}, []trace.Event{
		{PID: 7, Call: "openat", Start: 0, Dur: 1000, FP: "/tmp/f"},
		{PID: 7, Call: "read", Start: 2000, Dur: 1500, FP: "/tmp/f", Size: 64},
		{PID: 7, Call: "close", Start: 5000, Dur: 100, FP: "/tmp/f"},
	})
	if err := NewWriter(&buf).WriteCase(c); err == nil {
		f.Add(buf.String())
	}

	id := trace.CaseID{CID: "fuzz", Host: "h", RID: 1}
	f.Fuzz(func(t *testing.T, data string) {
		for _, opts := range []Options{
			{},
			{Strict: true},
			{KeepFailed: true, Calls: map[string]bool{}},
		} {
			c, err := ParseCase(id, strings.NewReader(data), opts)
			if err != nil {
				continue
			}
			if c == nil {
				t.Fatalf("opts %+v: nil case with nil error", opts)
			}
			if !c.Sorted() {
				t.Fatalf("opts %+v: case not sorted by start time", opts)
			}
			for _, e := range c.Events {
				if e.CaseID() != id {
					t.Fatalf("opts %+v: event %v carries identity %s, want %s", opts, e, e.CaseID(), id)
				}
			}
		}
	})
}
