package strace

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"stinspector/internal/behavior"
	"stinspector/internal/trace"
)

// fuzzSeeds are realistic strace fragments covering the parser's
// branches: plain calls, -f PID columns, unfinished/resumed pairs,
// signals, exits, failed and interrupted calls, and junk.
var fuzzSeeds = []string{
	`9054  08:55:54.153994 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, ..., 832) = 832 <0.000203>`,
	`08:55:54.153994 openat(AT_FDCWD, "/etc/ld.so.cache", O_RDONLY|O_CLOEXEC) = 3</etc/ld.so.cache> <0.000042>`,
	"9054  08:55:54.100000 write(1</dev/pts/0>, \"x\", 1 <unfinished ...>\n" +
		"9055  08:55:54.100100 read(4</tmp/a>, ..., 16) = 16 <0.000010>\n" +
		"9054  08:55:54.100200 <... write resumed>) = 1 <0.000200>",
	`9054  08:55:54.200000 --- SIGCHLD {si_signo=SIGCHLD} ---`,
	`9054  08:55:54.300000 +++ exited with 0 +++`,
	`9054  08:55:54.400000 read(5</tmp/x>, ..., 64) = -1 EAGAIN (Resource temporarily unavailable) <0.000015>`,
	`9054  08:55:54.500000 read(5</tmp/x>, ..., 64) = ? ERESTARTSYS (To be restarted if SA_RESTART is set) <0.000015>`,
	`not strace output at all`,
	``,
}

// FuzzParseCase: arbitrary trace text must never panic, in any option
// mode, and whenever a case is produced it must satisfy the event-model
// invariants (sorted by start time, stamped with the case identity).
func FuzzParseCase(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	// A writer-dialect seed: a synthetic case rendered back to strace
	// text, so the fuzzer starts from the full round-trip grammar.
	var buf bytes.Buffer
	c := trace.NewCase(trace.CaseID{CID: "seed", Host: "h", RID: 7}, []trace.Event{
		{PID: 7, Call: "openat", Start: 0, Dur: 1000, FP: "/tmp/f"},
		{PID: 7, Call: "read", Start: 2000, Dur: 1500, FP: "/tmp/f", Size: 64},
		{PID: 7, Call: "close", Start: 5000, Dur: 100, FP: "/tmp/f"},
	})
	if err := NewWriter(&buf).WriteCase(c); err == nil {
		f.Add(buf.String())
	}

	id := trace.CaseID{CID: "fuzz", Host: "h", RID: 1}
	f.Fuzz(func(t *testing.T, data string) {
		for _, opts := range []Options{
			{},
			{Strict: true},
			{KeepFailed: true, Calls: map[string]bool{}},
		} {
			c, err := ParseCase(id, strings.NewReader(data), opts)
			if err != nil {
				continue
			}
			if c == nil {
				t.Fatalf("opts %+v: nil case with nil error", opts)
			}
			if !c.Sorted() {
				t.Fatalf("opts %+v: case not sorted by start time", opts)
			}
			for _, e := range c.Events {
				if e.CaseID() != id {
					t.Fatalf("opts %+v: event %v carries identity %s, want %s", opts, e, e.CaseID(), id)
				}
			}
		}
	})
}

// behaviorFuzzSeeds exercise the semantic decoders: spawn argv arrays,
// sockaddr struct literals in both dialects, dirfd joins and
// escape-bearing arguments.
var behaviorFuzzSeeds = []string{
	`1  10:00:00.000001 execve("/usr/bin/tar", ["tar", "-czf", "out.tgz"], 0x7ffd00 /* 60 vars */) = 0 <0.000200>`,
	`1  10:00:00.000002 connect(3<socket:[12345]>, {sa_family=AF_INET, sin_port=htons(443), sin_addr=inet_addr("10.0.0.7")}, 16) = 0 <0.000100>`,
	`1  10:00:00.000003 connect(3<socket:[999]>, {sa_family=AF_INET6, sin6_port=htons(8080), sin6_flowinfo=htonl(0), inet_pton(AF_INET6, "2001:db8::1", &sin6_addr), sin6_scope_id=0}, 28) = 0 <0.000100>`,
	`1  10:00:00.000004 connect(4<socket:[777]>, {sa_family=AF_UNIX, sun_path=@"dbus-session"}, 110) = -1 ECONNREFUSED (Connection refused) <0.000030>`,
	`1  10:00:00.000005 connect(3<socket:[1]>, {Family: AF_INET, Addr: 8.8.8.8, Port: 53}, 16) = 0 <0.000030>`,
	`1  10:00:00.000006 openat(5</data/>, "part\n\357\203\277.bin", O_RDONLY) = -1 ENOENT (No such file) <0.000004>`,
	`1  10:00:00.000007 renameat2(5</stage>, "new.dat", 6</data>, "cur.dat", RENAME_EXCHANGE) = 0 <0.000008>`,
	`1  10:00:00.000008 unlinkat(AT_FDCWD</home/u>, "stale.tmp", 0) = 0 <0.000004>`,
	`1  10:00:00.000009 execveat(5</opt/tools>, "run.sh", ["run.sh", "--x=\"y\""], 0x7ffd00 /* 4 vars */, 0) = 0 <0.000100>`,
	`1  10:00:00.000010 connect(3, {sa_family=AF_INET, sin_port=htons(`,
}

// FuzzBehaviorDecode: the semantic decoding layer — DecodeRecord over
// every parsed record, behavior-profile folding over every parsed case —
// must never panic on arbitrary trace text, and its invariants must hold:
// a DecodeFile/DecodeSpawn result carries a path, unquote inverts Go
// quoting, and a profile folded event-by-event matches FromLog.
func FuzzBehaviorDecode(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	for _, s := range behaviorFuzzSeeds {
		f.Add(s)
	}

	id := trace.CaseID{CID: "fuzz", Host: "h", RID: 1}
	f.Fuzz(func(t *testing.T, data string) {
		// unquote must invert quoting for arbitrary byte strings.
		if got, ok := unquote(strconv.Quote(data)); !ok || got != data {
			t.Fatalf("unquote(Quote(%q)) = %q, %v", data, got, ok)
		}
		recs, _, err := ReadRecords(strings.NewReader(data), true)
		if err != nil {
			return
		}
		for _, r := range recs {
			d := DecodeRecord(r)
			switch d.Kind {
			case DecodeFile, DecodeSpawn:
				if d.Path == "" {
					t.Fatalf("decoded %v with empty path from %+v", d.Kind, r)
				}
			}
		}
		c, err := ParseCase(id, strings.NewReader(data), Options{KeepFailed: true})
		if err != nil || len(c.Events) == 0 {
			return
		}
		p := behavior.New()
		p.AddCase(c)
		q := behavior.FromLog(trace.MustNewEventLog(c))
		if p.RenderText() != q.RenderText() {
			t.Fatal("per-case fold and FromLog disagree")
		}
		// Merging into an empty profile is the identity.
		m := behavior.New()
		m.Merge(p)
		if m.RenderText() != p.RenderText() {
			t.Fatal("merge into empty profile changed the rendering")
		}
	})
}
