package strace

import (
	"fmt"
	"strings"

	"stinspector/internal/intern"
	"stinspector/internal/trace"
)

// TransferCalls is the set of system calls whose return value is a
// transfer size (the "variants of read and write" of Section III).
var TransferCalls = map[string]bool{
	"read": true, "pread64": true, "readv": true, "preadv": true, "preadv2": true,
	"write": true, "pwrite64": true, "writev": true, "pwritev": true, "pwritev2": true,
}

// IOCalls is the default set of I/O-related calls extracted into events;
// it covers the calls traced in the paper's experiments.
var IOCalls = map[string]bool{
	"read": true, "pread64": true, "readv": true, "preadv": true, "preadv2": true,
	"write": true, "pwrite64": true, "writev": true, "pwritev": true, "pwritev2": true,
	"openat": true, "open": true, "creat": true, "close": true,
	"lseek": true, "fsync": true, "fdatasync": true,
}

// Options configures the record-to-event conversion.
type Options struct {
	// Calls restricts extraction to the given call names. Nil means
	// IOCalls; an explicitly empty (len 0, non-nil) map keeps every
	// call.
	Calls map[string]bool
	// KeepFailed keeps events for calls that returned an error (the
	// transfer size is then SizeUnknown). Interrupted calls
	// (ERESTARTSYS) are always dropped, per Section III.
	KeepFailed bool
	// Strict makes structural problems (a resumed record with no
	// matching unfinished record, or a dangling unfinished record at
	// EOF) an error instead of a silent drop.
	Strict bool
	// Parallelism bounds the number of trace files parsed concurrently
	// by ReadDir/ReadFS/StreamFS (and, through core.FromStraceDir, the
	// whole ingestion facade). 0 means runtime.GOMAXPROCS(0); 1 forces
	// the sequential path. The merged event-log is identical for every
	// setting: files are parsed independently and delivered in
	// deterministic CaseID order.
	Parallelism int
	// Window bounds how many parsed cases may be resident (fetched but
	// not yet consumed) in the streaming path at once — the knob behind
	// the O(batch) memory guarantee of StreamFS/StreamDir. 0 means
	// 2×Parallelism. The materializing ReadDir/ReadFS honor it too; it
	// only changes peak memory during ingestion, never the result.
	Window int
	// Syms selects the symbol table Call/FP/CID/Host strings are
	// canonicalized through. Nil means the process-wide intern.Default,
	// which is append-only for the life of the process — fine for the
	// paper's bounded vocabulary. A long-lived service ingesting an
	// unbounded path vocabulary should scope a table to the pass
	// (intern.NewTable) so dropping the pass's results makes its
	// strings collectable. The parsed events are identical either way;
	// only string retention differs.
	Syms *intern.Table
}

func (o Options) callWanted(name string) bool {
	if o.Calls == nil {
		return IOCalls[name]
	}
	if len(o.Calls) == 0 {
		return true
	}
	return o.Calls[name]
}

// EventsFromRecords converts parsed records into events for the given
// case, merging unfinished/resumed pairs and applying the paper's
// filtering rules. Records must be given in file order; the resulting
// events are ordered by start time (strace preserves event order, and the
// merge assigns each merged call its original start timestamp).
func EventsFromRecords(id trace.CaseID, records []Record, opts Options) ([]trace.Event, error) {
	cache := intern.CacheFor(opts.Syms)
	defer intern.PutCache(cache)
	return eventsFromRecords(id, records, opts, cache)
}

// eventsFromRecords is EventsFromRecords over a caller-owned symbol
// cache, so the per-file parse worker canonicalizes call names and
// file paths without re-acquiring a cache per record.
func eventsFromRecords(id trace.CaseID, records []Record, opts Options, cache *intern.Cache) ([]trace.Event, error) {
	events := make([]trace.Event, 0, len(records))
	// strace guarantees at most one outstanding (unfinished) call per
	// process, so a single pending record per PID suffices.
	pending := make(map[int]Record)

	emit := func(r Record) {
		if r.Interrupted() {
			return
		}
		if r.Failed() && !opts.KeepFailed {
			return
		}
		if !opts.callWanted(r.Call) {
			return
		}
		events = append(events, recordToEvent(id, r, cache))
	}

	for _, r := range records {
		switch r.Kind {
		case KindSyscall:
			emit(r)
		case KindUnfinished:
			if prev, dup := pending[r.PID]; dup {
				if opts.Strict {
					return nil, fmt.Errorf("strace: case %s: line %d: pid %d has two outstanding calls (%s at line %d, %s)",
						id, r.Line, r.PID, prev.Call, prev.Line, r.Call)
				}
				// Drop the stale record and start over.
			}
			pending[r.PID] = r
		case KindResumed:
			u, ok := pending[r.PID]
			if !ok || u.Call != r.Call {
				if opts.Strict {
					return nil, fmt.Errorf("strace: case %s: line %d: resumed %s for pid %d without matching unfinished record",
						id, r.Line, r.Call, r.PID)
				}
				continue
			}
			delete(pending, r.PID)
			emit(mergeUnfinished(u, r))
		case KindExit, KindSignal:
			// Not system calls; ignored.
		}
	}
	if len(pending) > 0 && opts.Strict {
		for pid, u := range pending {
			return nil, fmt.Errorf("strace: case %s: pid %d: %s at line %d never resumed",
				id, pid, u.Call, u.Line)
		}
	}
	return events, nil
}

// mergeUnfinished merges an unfinished record and its resumed counterpart
// into a single complete record: arguments are concatenated, the start
// timestamp comes from the unfinished half, and the return value, transfer
// size and duration come from the resumed half (Section III).
func mergeUnfinished(u, r Record) Record {
	m := r
	m.Kind = KindSyscall
	m.Time = u.Time
	m.Line = u.Line
	args := append([]string(nil), u.Args...)
	args = append(args, r.Args...)
	// The unfinished half can end in an empty fragment when the split
	// happened right after a comma.
	clean := args[:0]
	for _, a := range args {
		if a != "" {
			clean = append(clean, a)
		}
	}
	m.Args = clean
	m.Raw = u.Raw + " // " + r.Raw
	return m
}

// recordToEvent applies the attribute extraction rules of Section III to a
// complete record: the file path comes from the fd annotation of the first
// argument (or, for openat and friends, from the annotated return fd,
// falling back to the quoted path argument), and the transfer size from
// the return value of read/write variants. The call name and path are
// canonicalized through the symbol cache, so the event holds interned
// strings rather than per-event substring pins of the trace line.
func recordToEvent(id trace.CaseID, r Record, cache *intern.Cache) trace.Event {
	e := trace.Event{
		CID:   id.CID,
		Host:  id.Host,
		RID:   id.RID,
		PID:   r.PID,
		Call:  cache.Canon(r.Call),
		Start: r.Time,
		Dur:   r.Dur,
		Size:  trace.SizeUnknown,
	}
	e.FP = cache.Canon(extractPath(r))
	if TransferCalls[r.Call] && r.RetOK && r.RetPath == "" && r.RetInt >= 0 {
		e.Size = r.RetInt
	}
	return e
}

// extractPath finds the file path of the record, following the
// per-call argument conventions of strace -y output.
func extractPath(r Record) string {
	switch r.Call {
	case "openat", "openat2", "newfstatat", "fstatat64", "statx",
		"unlinkat", "mkdirat", "faccessat", "faccessat2", "readlinkat",
		"utimensat", "fchmodat", "fchownat":
		// openat(AT_FDCWD, "/etc/passwd", O_RDONLY) = 3</etc/passwd>
		// openat(5</data>, "part.bin", O_RDONLY) = 6</data/part.bin>
		if r.RetPath != "" {
			return r.RetPath
		}
		if len(r.Args) >= 2 {
			if p, ok := unquote(r.Args[1]); ok {
				if strings.HasPrefix(p, "/") {
					return p
				}
				// Relative to the dirfd: join with its
				// annotation when present.
				if _, dir, ok := SplitFDPath(r.Args[0]); ok {
					return dir + "/" + p
				}
				return p
			}
		}
	case "open", "creat", "stat", "lstat", "stat64", "access", "unlink",
		"mkdir", "rmdir", "truncate", "readlink", "chdir", "chmod",
		"chown", "utime", "statfs", "getxattr", "execve":
		if r.RetPath != "" {
			return r.RetPath
		}
		if len(r.Args) >= 1 {
			if p, ok := unquote(r.Args[0]); ok {
				return p
			}
		}
	case "rename", "renameat", "renameat2", "link", "symlink":
		// The source path identifies the activity; for the *at
		// variants the path arguments sit at positions 1 and 3.
		idx := 0
		if strings.HasSuffix(r.Call, "at") || strings.HasSuffix(r.Call, "at2") {
			idx = 1
		}
		if len(r.Args) > idx {
			if p, ok := unquote(r.Args[idx]); ok {
				return p
			}
		}
	case "mmap", "mmap2":
		// mmap(NULL, 8192, PROT_READ, MAP_PRIVATE, 3</lib/x.so>, 0):
		// the fd is argument 5.
		if len(r.Args) >= 5 {
			if _, p, ok := SplitFDPath(r.Args[4]); ok {
				return p
			}
		}
		return ""
	}
	if p, ok := r.FirstArgPath(); ok {
		return p
	}
	// Fall back to a quoted first argument for calls not listed above.
	if len(r.Args) >= 1 {
		if p, ok := unquote(r.Args[0]); ok {
			return p
		}
	}
	return ""
}

// unquote strips the surrounding double quotes of a C string literal
// argument, handling strace's trailing "..." abbreviation marker.
func unquote(s string) (string, bool) {
	if len(s) < 2 || s[0] != '"' {
		return "", false
	}
	body := s[1:]
	if i := lastUnescapedQuote(body); i >= 0 {
		body = body[:i]
	} else {
		return "", false
	}
	// Fast path: no escapes means the literal is a plain subslice.
	if strings.IndexByte(body, '\\') < 0 {
		return body, true
	}
	// Minimal unescaping: \" and \\ are the forms strace emits in
	// paths.
	var b []byte
	for i := 0; i < len(body); i++ {
		if body[i] == '\\' && i+1 < len(body) {
			i++
			b = append(b, body[i])
			continue
		}
		b = append(b, body[i])
	}
	return string(b), true
}

func lastUnescapedQuote(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			return i
		}
	}
	return -1
}
