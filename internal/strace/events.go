package strace

import (
	"fmt"
	"time"

	"stinspector/internal/intern"
	"stinspector/internal/trace"
)

// TransferCalls is the set of system calls whose return value is a
// transfer size (the "variants of read and write" of Section III).
var TransferCalls = map[string]bool{
	"read": true, "pread64": true, "readv": true, "preadv": true, "preadv2": true,
	"write": true, "pwrite64": true, "writev": true, "pwritev": true, "pwritev2": true,
}

// IOCalls is the set of I/O-related calls the paper's experiments
// trace; together with BehaviorCalls it forms the default extraction
// set.
var IOCalls = map[string]bool{
	"read": true, "pread64": true, "readv": true, "preadv": true, "preadv2": true,
	"write": true, "pwrite64": true, "writev": true, "pwritev": true, "pwritev2": true,
	"openat": true, "open": true, "creat": true, "close": true,
	"lseek": true, "fsync": true, "fdatasync": true,
}

// BehaviorCalls is the set of calls the semantic decoding layer turns
// into behavior-profile events beyond plain I/O: file mutations
// (delete, rename, create-directory, truncate), process spawns and
// network connections. They are part of the default extraction set so
// behavior profiles agree across every ingestion backend.
var BehaviorCalls = map[string]bool{
	"unlink": true, "unlinkat": true, "rmdir": true,
	"rename": true, "renameat": true, "renameat2": true,
	"mkdir": true, "mkdirat": true,
	"truncate": true, "ftruncate": true,
	"execve": true, "execveat": true,
	"connect": true,
}

// Options configures the record-to-event conversion.
type Options struct {
	// Calls restricts extraction to the given call names. Nil means
	// the default set IOCalls ∪ BehaviorCalls; an explicitly empty
	// (len 0, non-nil) map keeps every call.
	Calls map[string]bool
	// KeepFailed keeps events for calls that returned an error (the
	// transfer size is then SizeUnknown). Interrupted calls
	// (ERESTARTSYS) are always dropped, per Section III.
	KeepFailed bool
	// Strict makes structural problems (a resumed record with no
	// matching unfinished record, or a dangling unfinished record at
	// EOF) an error instead of a silent drop.
	Strict bool
	// Parallelism bounds the number of trace files parsed concurrently
	// by ReadDir/ReadFS/StreamFS (and, through core.FromStraceDir, the
	// whole ingestion facade). 0 means runtime.GOMAXPROCS(0); 1 forces
	// the sequential path. The merged event-log is identical for every
	// setting: files are parsed independently and delivered in
	// deterministic CaseID order.
	Parallelism int
	// Window bounds how many parsed cases may be resident (fetched but
	// not yet consumed) in the streaming path at once — the knob behind
	// the O(batch) memory guarantee of StreamFS/StreamDir. 0 means
	// 2×Parallelism. The materializing ReadDir/ReadFS honor it too; it
	// only changes peak memory during ingestion, never the result.
	Window int
	// Syms selects the symbol table Call/FP/CID/Host strings are
	// canonicalized through. Nil means the process-wide intern.Default,
	// which is append-only for the life of the process — fine for the
	// paper's bounded vocabulary. A long-lived service ingesting an
	// unbounded path vocabulary should scope a table to the pass
	// (intern.NewTable) so dropping the pass's results makes its
	// strings collectable. The parsed events are identical either way;
	// only string retention differs.
	Syms *intern.Table
}

func (o Options) callWanted(name string) bool {
	if o.Calls == nil {
		return IOCalls[name] || BehaviorCalls[name]
	}
	if len(o.Calls) == 0 {
		return true
	}
	return o.Calls[name]
}

// EventsFromRecords converts parsed records into events for the given
// case, merging unfinished/resumed pairs and applying the paper's
// filtering rules. Records must be given in file order; the resulting
// events are ordered by start time (strace preserves event order, and the
// merge assigns each merged call its original start timestamp).
func EventsFromRecords(id trace.CaseID, records []Record, opts Options) ([]trace.Event, error) {
	cache := intern.CacheFor(opts.Syms)
	defer intern.PutCache(cache)
	return eventsFromRecords(id, records, opts, cache)
}

// eventsFromRecords is EventsFromRecords over a caller-owned symbol
// cache, so the per-file parse worker canonicalizes call names and
// file paths without re-acquiring a cache per record.
func eventsFromRecords(id trace.CaseID, records []Record, opts Options, cache *intern.Cache) ([]trace.Event, error) {
	events := make([]trace.Event, 0, len(records))
	// strace guarantees at most one outstanding (unfinished) call per
	// process, so a single pending record per PID suffices.
	pending := make(map[int]Record)
	// scratch backs the byte-built file paths (dirfd joins, unescapes,
	// spawn command lines, connection subjects) across the whole case;
	// CanonBytes interns from it without materializing a string.
	var scratch []byte

	emit := func(r Record) {
		if r.Interrupted() {
			return
		}
		if r.Failed() && !opts.KeepFailed {
			return
		}
		if !opts.callWanted(r.Call) {
			return
		}
		events = append(events, recordToEvent(id, r, cache, &scratch))
	}

	// -tt timestamps are time of day and wrap at midnight; a trace
	// crossing 00:00 would otherwise go non-monotonic (negative
	// inter-event deltas, broken concurrency intervals). A backward
	// jump of more than half a day is a wrap — add a day and keep the
	// offset; a forward jump of more than half a day while an offset is
	// active is a straggler record emitted before the wrap — subtract a
	// day for that record only. Epoch (-ttt) stamps never jump that
	// far, so they pass through untouched.
	const day = 24 * time.Hour
	var dayOffset, last time.Duration
	haveTime := false

	for i := range records {
		r := records[i]
		t := r.Time + dayOffset
		if haveTime {
			switch {
			case t < last && last-t > day/2:
				dayOffset += day
				t += day
			case t > last && t-last > day/2 && dayOffset >= day:
				t -= day
			}
		}
		haveTime = true
		if t > last {
			last = t
		}
		r.Time = t
		switch r.Kind {
		case KindSyscall:
			emit(r)
		case KindUnfinished:
			if prev, dup := pending[r.PID]; dup {
				if opts.Strict {
					return nil, fmt.Errorf("strace: case %s: line %d: pid %d has two outstanding calls (%s at line %d, %s)",
						id, r.Line, r.PID, prev.Call, prev.Line, r.Call)
				}
				// Drop the stale record and start over.
			}
			pending[r.PID] = r
		case KindResumed:
			u, ok := pending[r.PID]
			if !ok || u.Call != r.Call {
				if opts.Strict {
					return nil, fmt.Errorf("strace: case %s: line %d: resumed %s for pid %d without matching unfinished record",
						id, r.Line, r.Call, r.PID)
				}
				continue
			}
			delete(pending, r.PID)
			emit(mergeUnfinished(u, r))
		case KindExit, KindSignal:
			// Not system calls; ignored.
		}
	}
	if len(pending) > 0 && opts.Strict {
		for pid, u := range pending {
			return nil, fmt.Errorf("strace: case %s: pid %d: %s at line %d never resumed",
				id, pid, u.Call, u.Line)
		}
	}
	return events, nil
}

// mergeUnfinished merges an unfinished record and its resumed counterpart
// into a single complete record: arguments are concatenated, the start
// timestamp comes from the unfinished half, and the return value, transfer
// size and duration come from the resumed half (Section III).
func mergeUnfinished(u, r Record) Record {
	m := r
	m.Kind = KindSyscall
	m.Time = u.Time
	m.Line = u.Line
	args := append([]string(nil), u.Args...)
	args = append(args, r.Args...)
	// The unfinished half can end in an empty fragment when the split
	// happened right after a comma.
	clean := args[:0]
	for _, a := range args {
		if a != "" {
			clean = append(clean, a)
		}
	}
	m.Args = clean
	m.Raw = u.Raw + " // " + r.Raw
	return m
}

// recordToEvent applies the attribute extraction rules of Section III to a
// complete record: the file path comes from the semantic decoding layer
// (decode.go) — the fd annotation of the first argument, the annotated
// return fd of openat and friends with dirfd-resolved fallbacks, the
// decoded command line of a spawn, the canonical address of a connect —
// and the transfer size from the return value of read/write variants.
// The call name and path are canonicalized through the symbol cache, so
// the event holds interned strings rather than per-event substring pins
// of the trace line; byte-built paths intern straight from scratch.
func recordToEvent(id trace.CaseID, r Record, cache *intern.Cache, scratch *[]byte) trace.Event {
	e := trace.Event{
		CID:   id.CID,
		Host:  id.Host,
		RID:   id.RID,
		PID:   r.PID,
		Call:  cache.Canon(r.Call),
		Start: r.Time,
		Dur:   r.Dur,
		Size:  trace.SizeUnknown,
	}
	if p, built := extractPathInto(r, scratch); built {
		e.FP = cache.CanonBytes(*scratch)
	} else {
		e.FP = cache.Canon(p)
	}
	if TransferCalls[r.Call] && r.RetOK && r.RetPath == "" && r.RetInt >= 0 {
		e.Size = r.RetInt
	}
	return e
}
