package strace

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"stinspector/internal/trace"
)

// randEvents generates a plausible random event stream for one case.
func randEvents(rng *rand.Rand, id trace.CaseID, n int) []trace.Event {
	calls := []string{"read", "write", "pread64", "pwrite64", "openat", "lseek", "close", "fsync"}
	paths := []string{
		"/usr/lib/x86_64-linux-gnu/libc.so.6",
		"/etc/passwd",
		"/scratch/ssf/test",
		"/scratch/fpp/test.00000042",
		"/dev/pts/7",
	}
	events := make([]trace.Event, n)
	start := 9 * time.Hour
	for i := range events {
		start += time.Duration(1+rng.Intn(5000)) * time.Microsecond
		call := calls[rng.Intn(len(calls))]
		size := trace.SizeUnknown
		if TransferCalls[call] {
			size = int64(rng.Intn(1 << 20))
		}
		events[i] = trace.Event{
			CID: id.CID, Host: id.Host, RID: id.RID,
			PID:   id.RID + 12,
			Call:  call,
			Start: start,
			Dur:   time.Duration(1+rng.Intn(300)) * time.Microsecond,
			FP:    paths[rng.Intn(len(paths))],
			Size:  size,
		}
	}
	return events
}

// Property: writing events as strace text and parsing them back yields the
// same events (timestamps have microsecond resolution in the text format,
// which the generator respects).
func TestWriterParserRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		id := trace.CaseID{CID: "rt", Host: "h1", RID: 100 + trial}
		want := randEvents(rng, id, 1+rng.Intn(60))

		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, e := range want {
			w.WriteEvent(e)
		}
		if err := w.Err(); err != nil {
			t.Fatalf("writer: %v", err)
		}

		c, err := ParseCase(id, &buf, Options{Strict: true})
		if err != nil {
			t.Fatalf("trial %d: ParseCase: %v", trial, err)
		}
		got := c.Events
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d events back, want %d", trial, len(got), len(want))
		}
		for i := range want {
			// close/fsync/lseek/openat come back without size; the
			// writer emitted them without one too.
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("trial %d event %d:\n got %+v\nwant %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// Property: the unfinished/resumed rendering merges back to the same event.
func TestUnfinishedPairRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	id := trace.CaseID{CID: "u", Host: "h1", RID: 1}
	for trial := 0; trial < 40; trial++ {
		e := randEvents(rng, id, 1)[0]
		if !TransferCalls[e.Call] {
			e.Call = "read"
			e.Size = int64(rng.Intn(4096))
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.WriteUnfinishedPair(e)
		if err := w.Err(); err != nil {
			t.Fatalf("writer: %v", err)
		}
		c, err := ParseCase(id, &buf, Options{Strict: true})
		if err != nil {
			t.Fatalf("ParseCase: %v\n%s", err, buf.String())
		}
		if len(c.Events) != 1 {
			t.Fatalf("merged to %d events, want 1", len(c.Events))
		}
		if !reflect.DeepEqual(c.Events[0], e) {
			t.Fatalf("merge mismatch:\n got %+v\nwant %+v", c.Events[0], e)
		}
	}
}

func TestWriteDirReadDir(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dir := t.TempDir()
	var cases []*trace.Case
	for rid := 0; rid < 4; rid++ {
		id := trace.CaseID{CID: "d", Host: "hostA", RID: 9000 + rid}
		cases = append(cases, trace.NewCase(id, randEvents(rng, id, 20)))
	}
	want := trace.MustNewEventLog(cases...)
	if err := WriteDir(dir, want); err != nil {
		t.Fatalf("WriteDir: %v", err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("wrote %d files, want 4", len(entries))
	}
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".st") {
			t.Errorf("unexpected file %s", ent.Name())
		}
	}

	got, err := ReadDir(dir, Options{Strict: true})
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if got.NumCases() != want.NumCases() || got.NumEvents() != want.NumEvents() {
		t.Fatalf("round trip: %d cases / %d events, want %d / %d",
			got.NumCases(), got.NumEvents(), want.NumCases(), want.NumEvents())
	}
	for _, wc := range want.Cases() {
		gc := got.Case(wc.ID)
		if gc == nil {
			t.Fatalf("case %s missing", wc.ID)
		}
		if !reflect.DeepEqual(gc.Events, wc.Events) {
			t.Errorf("case %s differs after round trip", wc.ID)
		}
	}
}

func TestReadDirErrors(t *testing.T) {
	if _, err := ReadDir(t.TempDir(), Options{}); err == nil {
		t.Errorf("empty dir accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "badname.st"), []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir, Options{}); err == nil {
		t.Errorf("bad file name accepted")
	}
}

func TestParseFileNameConvention(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a_host1_9042.st")
	content := `9054  08:55:54.153994 read(3</usr/lib/libc.so.6>, ..., 832) = 832 <0.000203>` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := ParseFile(path, Options{Strict: true})
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if c.ID != (trace.CaseID{CID: "a", Host: "host1", RID: 9042}) {
		t.Errorf("case id = %v", c.ID)
	}
	if len(c.Events) != 1 || c.Events[0].PID != 9054 {
		t.Errorf("events = %+v", c.Events)
	}
}
