package strace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"stinspector/internal/faultfs"
	"stinspector/internal/synth"
	"stinspector/internal/trace"
)

// faultDir adapts *faultfs.FS to TailFS (interface return type on Open;
// faultfs cannot import strace, so the match is structural).
type faultDir struct{ fs *faultfs.FS }

func (d faultDir) Names() ([]string, error)           { return d.fs.Names() }
func (d faultDir) FileID(name string) (uint64, error) { return d.fs.FileID(name) }
func (d faultDir) Open(name string) (TailFile, error) {
	f, err := d.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// collectSink gathers pushed cases and failed errors.
type collectSink struct {
	mu    sync.Mutex
	cases []*trace.Case
	errs  []error
}

func (s *collectSink) Push(c *trace.Case) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cases = append(s.cases, c)
	return nil
}

func (s *collectSink) Fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errs = append(s.errs, err)
}

func (s *collectSink) snapshot() ([]*trace.Case, []error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*trace.Case(nil), s.cases...), append([]error(nil), s.errs...)
}

// renderCases renders each case of the log to its trace-file bytes,
// keyed by file name, plus the batch-parsed ground truth per case.
func renderCases(t *testing.T, log *trace.EventLog) (map[string][]byte, map[string]*trace.Case) {
	t.Helper()
	files := make(map[string][]byte)
	want := make(map[string]*trace.Case)
	for _, c := range log.Cases() {
		var buf bytes.Buffer
		if err := NewWriter(&buf).WriteCase(c); err != nil {
			t.Fatal(err)
		}
		name := c.ID.FileName()
		files[name] = append([]byte(nil), buf.Bytes()...)
		parsed, err := ParseCase(c.ID, bytes.NewReader(buf.Bytes()), Options{Strict: true})
		if err != nil {
			t.Fatal(err)
		}
		want[name] = parsed
	}
	return files, want
}

// fastOpts are follow options tuned for test latency, not production.
func fastOpts() FollowOptions {
	return FollowOptions{
		Options:      Options{Strict: true},
		Poll:         2 * time.Millisecond,
		Grace:        15 * time.Millisecond,
		StallTimeout: 30 * time.Second,
		BackoffMax:   20 * time.Millisecond,
		Seed:         7,
	}
}

// waitCases polls until the sink holds n cases or the deadline passes.
func waitCases(t *testing.T, s *collectSink, n int, d time.Duration) []*trace.Case {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		cases, _ := s.snapshot()
		if len(cases) >= n {
			return cases
		}
		time.Sleep(2 * time.Millisecond)
	}
	cases, errs := s.snapshot()
	t.Fatalf("timed out waiting for %d cases: have %d (errors: %v)", n, len(cases), errs)
	return nil
}

func assertCasesEqual(t *testing.T, got []*trace.Case, want map[string]*trace.Case) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("emitted %d cases, want %d", len(got), len(want))
	}
	for _, c := range got {
		w, ok := want[c.ID.FileName()]
		if !ok {
			t.Errorf("unexpected case %s", c.ID)
			continue
		}
		if !reflect.DeepEqual(c.Events, w.Events) {
			t.Errorf("case %s: events diverged from batch parse (%d vs %d events)", c.ID, len(c.Events), len(w.Events))
		}
	}
}

// TestFollowReaderCompleteAndPartial: a full stream round-trips to the
// batch parse; a stream cut mid-line drops exactly the truncated tail,
// never a partial record.
func TestFollowReaderCompleteAndPartial(t *testing.T) {
	log := synth.Log("fr", 1, 12, 5)
	files, want := renderCases(t, log)
	for name, content := range files {
		id, err := trace.ParseCaseID(name)
		if err != nil {
			t.Fatal(err)
		}
		c, dropped, err := FollowReader(id, bytes.NewReader(content), Options{Strict: true})
		if err != nil {
			t.Fatal(err)
		}
		if dropped != 0 {
			t.Errorf("complete stream dropped %d lines", dropped)
		}
		if !reflect.DeepEqual(c.Events, want[name].Events) {
			t.Error("complete stream diverged from batch parse")
		}

		// Cut mid-line: everything after the last newline is a truncated
		// record and must be dropped, not parsed.
		cut := bytes.LastIndexByte(content[:len(content)-1], '\n')
		partial := content[:cut+1+3] // 3 bytes into the final line
		pc, dropped, err := FollowReader(id, bytes.NewReader(partial), Options{Strict: true})
		if err != nil {
			t.Fatal(err)
		}
		if dropped != 1 {
			t.Errorf("cut stream: dropped = %d, want 1", dropped)
		}
		if len(pc.Events) >= len(c.Events)+1 {
			t.Errorf("cut stream produced %d events from %d full-stream events", len(pc.Events), len(c.Events))
		}
	}
}

// TestTailerLiveAppend: files written incrementally while the tailer
// runs are emitted complete and identical to a batch parse.
func TestTailerLiveAppend(t *testing.T) {
	dir := t.TempDir()
	log := synth.Log("liv", 6, 20, 11)
	files, want := renderCases(t, log)

	sink := &collectSink{}
	tailer := TailDir(dir, sink, fastOpts())
	tailer.Start()
	defer tailer.Stop()

	app := faultfs.NewAppender(dir, 5, faultfs.Plan{Chunk: 64, Gap: time.Millisecond})
	var wg sync.WaitGroup
	for name, content := range files {
		wg.Add(1)
		go func(name string, content []byte) {
			defer wg.Done()
			if err := app.Replay(name, content); err != nil {
				t.Errorf("replay %s: %v", name, err)
			}
		}(name, content)
	}
	wg.Wait()

	got := waitCases(t, sink, len(files), 15*time.Second)
	tailer.Stop()
	assertCasesEqual(t, got, want)
	if _, errs := sink.snapshot(); len(errs) != 0 {
		t.Errorf("unexpected sink errors: %v", errs)
	}
}

// TestTailerFaultMatrix is the core of the robustness matrix: every
// write-side fault plan crossed with read-side faults must still
// converge to cases byte-identical to the fault-free batch parse,
// under -race, with the planned faults actually firing.
func TestTailerFaultMatrix(t *testing.T) {
	log := synth.Log("flt", 5, 25, 3)
	files, want := renderCases(t, log)

	scenarios := []struct {
		name   string
		plan   faultfs.Plan
		faults faultfs.Faults
		fired  func(a *faultfs.Appender) bool
	}{
		{
			name:   "delayed-appends-short-reads",
			plan:   faultfs.Plan{Chunk: 37, Gap: time.Millisecond},
			faults: faultfs.Faults{ShortReadMax: 11},
			fired:  func(a *faultfs.Appender) bool { return a.Chunks.Load() > 1 },
		},
		{
			name:   "truncate-open-faults",
			plan:   faultfs.Plan{Chunk: 53, TruncateEveryN: 4, Gap: time.Millisecond},
			faults: faultfs.Faults{OpenFailEveryN: 3},
			fired:  func(a *faultfs.Appender) bool { return a.Truncations.Load() > 0 },
		},
		{
			name:   "rotate-read-faults",
			plan:   faultfs.Plan{Chunk: 53, RotateEveryN: 5, Gap: time.Millisecond},
			faults: faultfs.Faults{ReadFailEveryN: 7},
			fired:  func(a *faultfs.Appender) bool { return a.Rotations.Load() > 0 },
		},
		{
			name:   "everything-at-once",
			plan:   faultfs.Plan{Chunk: 41, TruncateEveryN: 5, RotateEveryN: 7, Gap: time.Millisecond},
			faults: faultfs.Faults{OpenFailEveryN: 4, ReadFailEveryN: 9, ShortReadMax: 13},
			fired: func(a *faultfs.Appender) bool {
				return a.Truncations.Load() > 0 && a.Rotations.Load() > 0
			},
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultfs.New(dir, 17, sc.faults)
			sink := &collectSink{}
			tailer := NewTailer(faultDir{fs: ffs}, sink, fastOpts())
			tailer.Start()
			defer tailer.Stop()

			app := faultfs.NewAppender(dir, 29, sc.plan)
			var wg sync.WaitGroup
			for name, content := range files {
				wg.Add(1)
				go func(name string, content []byte) {
					defer wg.Done()
					if err := app.Replay(name, content); err != nil {
						t.Errorf("replay %s: %v", name, err)
					}
				}(name, content)
			}
			wg.Wait()
			if !sc.fired(app) {
				t.Fatalf("scenario %s did not fire its planned faults", sc.name)
			}

			got := waitCases(t, sink, len(files), 20*time.Second)
			tailer.Stop()
			assertCasesEqual(t, got, want)
		})
	}
}

// TestTailerRotationDetected: an explicit rotation under a held handle
// is detected via identity change and the rewritten file wins.
func TestTailerRotationDetected(t *testing.T) {
	dir := t.TempDir()
	log := synth.Log("rot", 1, 10, 13)
	files, want := renderCases(t, log)
	var name string
	var content []byte
	for n, c := range files {
		name, content = n, c
	}

	// First identity: a prefix with no exit record, so the tailer holds
	// the file open waiting for more.
	cut := bytes.IndexByte(content, '\n')
	for i := 0; i < 3; i++ {
		cut += bytes.IndexByte(content[cut+1:], '\n') + 1
	}
	if err := os.WriteFile(filepath.Join(dir, name), content[:cut+1], 0o644); err != nil {
		t.Fatal(err)
	}

	sink := &collectSink{}
	tailer := TailDir(dir, sink, fastOpts())
	tailer.Start()
	defer tailer.Stop()
	time.Sleep(50 * time.Millisecond) // let it catch up on the prefix

	// Rotate: remove and rewrite the complete case under a new inode.
	if err := os.Remove(filepath.Join(dir, name)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
		t.Fatal(err)
	}

	got := waitCases(t, sink, 1, 10*time.Second)
	tailer.Stop()
	assertCasesEqual(t, got, want)
	if st := tailer.Stats(); st.Rotations == 0 {
		t.Errorf("rotation not detected: %+v", st)
	}
}

// TestTailerTruncationDetected: shrinking the file below the read
// offset restarts the case from zero.
func TestTailerTruncationDetected(t *testing.T) {
	dir := t.TempDir()
	log := synth.Log("trc", 1, 10, 17)
	files, want := renderCases(t, log)
	var name string
	var content []byte
	for n, c := range files {
		name, content = n, c
	}
	path := filepath.Join(dir, name)

	cut := len(content) * 3 / 4
	if err := os.WriteFile(path, content[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	sink := &collectSink{}
	tailer := TailDir(dir, sink, fastOpts())
	tailer.Start()
	defer tailer.Stop()
	time.Sleep(50 * time.Millisecond)

	// Shrink far below the tailer's offset, then rewrite completely.
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the shrink be observed
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(content); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got := waitCases(t, sink, 1, 10*time.Second)
	tailer.Stop()
	assertCasesEqual(t, got, want)
	if st := tailer.Stats(); st.Truncations == 0 {
		t.Errorf("truncation not detected: %+v", st)
	}
}

// TestTailerDrainEmitsPartial: Drain flushes a file with no exit record
// from its complete records and drops the unterminated tail, counted.
func TestTailerDrainEmitsPartial(t *testing.T) {
	dir := t.TempDir()
	log := synth.Log("drn", 1, 10, 19)
	files, _ := renderCases(t, log)
	var name string
	var content []byte
	for n, c := range files {
		name, content = n, c
	}

	// Strip the exit line and leave an unterminated final line.
	cut := bytes.LastIndexByte(content[:len(content)-1], '\n')
	partial := append(append([]byte(nil), content[:cut+1]...), []byte("123 not-a-complete")...)
	if err := os.WriteFile(filepath.Join(dir, name), partial, 0o644); err != nil {
		t.Fatal(err)
	}

	opts := fastOpts()
	opts.Strict = false // the synthetic tail must not Fail the sink
	sink := &collectSink{}
	tailer := TailDir(dir, sink, opts)
	tailer.Start()
	time.Sleep(50 * time.Millisecond)
	tailer.Drain()

	cases, errs := sink.snapshot()
	if len(cases) != 1 {
		t.Fatalf("drain emitted %d cases, want 1 (errors: %v)", len(cases), errs)
	}
	if len(cases[0].Events) == 0 {
		t.Error("drained case lost its complete records")
	}
	if st := tailer.Stats(); st.PartialDrops != 1 {
		t.Errorf("partial drops = %d, want 1", st.PartialDrops)
	}
}

// TestTailerStall: a silent unterminated file surfaces a typed,
// temporary StallError and keeps being tailed.
func TestTailerStall(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "s_h_1.st"), []byte("100  10:00:00.000000 read(3</f>, ..., 8) = 8 <0.000010>\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	opts.StallTimeout = 30 * time.Millisecond
	sink := &collectSink{}
	tailer := TailDir(dir, sink, opts)
	tailer.Start()
	defer tailer.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for {
		_, errs := sink.snapshot()
		var stall *StallError
		for _, err := range errs {
			if errors.As(err, &stall) {
				if stall.Name != "s_h_1.st" {
					t.Errorf("stall names %q", stall.Name)
				}
				if !stall.Temporary() {
					t.Error("StallError not Temporary")
				}
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no StallError surfaced; errors: %v", errs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTailerSkipFiles: recovery's skip list suppresses re-ingestion.
func TestTailerSkipFiles(t *testing.T) {
	dir := t.TempDir()
	log := synth.Log("skp", 2, 8, 23)
	files, want := renderCases(t, log)
	names := make([]string, 0, len(files))
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}

	sink := &collectSink{}
	tailer := TailDir(dir, sink, fastOpts())
	tailer.SkipFiles(names[:1])
	tailer.Start()
	got := waitCases(t, sink, 1, 10*time.Second)
	time.Sleep(50 * time.Millisecond) // a second emit would land by now
	tailer.Stop()
	cases, _ := sink.snapshot()
	if len(cases) != 1 {
		t.Fatalf("emitted %d cases, want 1 (skip list ignored)", len(cases))
	}
	if got[0].ID.FileName() == names[0] {
		t.Errorf("skipped file %s was emitted", names[0])
	}
	if !reflect.DeepEqual(got[0].Events, want[got[0].ID.FileName()].Events) {
		t.Error("non-skipped case diverged")
	}
}

// TestTailerStopLeaksNothing: Stop mid-follow abandons silently and
// releases every goroutine and file handle.
func TestTailerStopLeaksNothing(t *testing.T) {
	dir := t.TempDir()
	log := synth.Log("lk", 8, 10, 31)
	files, _ := renderCases(t, log)
	for name, content := range files {
		// No exit record reaches disk: every file stays mid-follow.
		cut := bytes.IndexByte(content, '\n')
		if err := os.WriteFile(filepath.Join(dir, name), content[:cut+1], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	countFDs := func() int {
		ents, err := os.ReadDir("/proc/self/fd")
		if err != nil {
			return -1
		}
		return len(ents)
	}

	goroutinesBefore := runtime.NumGoroutine()
	fdsBefore := countFDs()
	for trial := 0; trial < 4; trial++ {
		sink := &collectSink{}
		tailer := TailDir(dir, sink, fastOpts())
		tailer.Start()
		time.Sleep(20 * time.Millisecond)
		tailer.Stop()
		if cases, _ := sink.snapshot(); len(cases) != 0 {
			t.Fatalf("Stop emitted %d cases", len(cases))
		}
	}

	var goroutinesAfter int
	for i := 0; i < 100; i++ {
		goroutinesAfter = runtime.NumGoroutine()
		if goroutinesAfter <= goroutinesBefore {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if goroutinesAfter > goroutinesBefore {
		t.Errorf("tailer goroutines leaked: %d before, %d after", goroutinesBefore, goroutinesAfter)
	}
	if fdsBefore >= 0 {
		if fdsAfter := countFDs(); fdsAfter > fdsBefore {
			t.Errorf("file handles leaked: %d before, %d after", fdsBefore, fdsAfter)
		}
	}
}
