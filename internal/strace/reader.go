package strace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"stinspector/internal/intern"
	"stinspector/internal/source"
	"stinspector/internal/trace"
)

// scanBufPool recycles the 64 KiB scanner line buffers of ReadRecords.
// With hundreds of per-rank trace files parsed concurrently, allocating a
// fresh buffer per file is measurable; pooling keeps the hot ParseLine
// loop allocation-free on the buffer side.
var scanBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 64*1024)
		return &b
	},
}

// caseBuf is the pooled per-file parsing state: the record slice
// ParseCase fills and discards once records become events, and the
// argument arena every record's Args subslices.
type caseBuf struct {
	records []Record
	args    argBuilder
}

// recordPool recycles the per-file parsing buffers.
var recordPool = sync.Pool{
	New: func() any {
		return &caseBuf{records: make([]Record, 0, 1024)}
	},
}

// ReadRecords parses every line of an strace output stream into records.
// Unparseable lines are returned as errors unless lenient is true, in
// which case they are skipped and counted.
func ReadRecords(r io.Reader, lenient bool) ([]Record, int, error) {
	return readRecordsInto(nil, r, lenient, &argBuilder{})
}

// readRecordsInto is ReadRecords appending into a caller-provided slice
// and argument arena, enabling ParseCase to reuse pooled backing arrays
// across files.
func readRecordsInto(records []Record, r io.Reader, lenient bool, ab *argBuilder) ([]Record, int, error) {
	skipped := 0
	bufp := scanBufPool.Get().(*[]byte)
	defer scanBufPool.Put(bufp)
	sc := bufio.NewScanner(r)
	sc.Buffer((*bufp)[:0], 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		rec, err := parseLineWith(text, ab)
		if err != nil {
			if lenient {
				skipped++
				continue
			}
			if pe, ok := err.(*ParseError); ok {
				pe.Line = line
			}
			return nil, skipped, err
		}
		rec.Line = line
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("strace: reading trace: %w", err)
	}
	return records, skipped, nil
}

// ParseCase parses a single trace stream into a case with the given
// identity. Call names, file paths and the case identity strings are
// canonicalized through the symbol table opts.Syms selects (the
// process-wide intern.Default when nil), so the resulting events share
// one string per distinct value instead of allocating per event.
func ParseCase(id trace.CaseID, r io.Reader, opts Options) (*trace.Case, error) {
	cache := intern.CacheFor(opts.Syms)
	defer intern.PutCache(cache)
	id.CID = cache.Canon(id.CID)
	id.Host = cache.Canon(id.Host)

	cb := recordPool.Get().(*caseBuf)
	defer func() {
		// Drop the string references before pooling so the backing
		// arrays do not pin parsed line text across files. Clear the
		// records' full capacity: on a parse error the slice header is
		// still len 0 while the backing array already holds records.
		s := cb.records[:cap(cb.records)]
		clear(s)
		cb.records = s[:0]
		cb.args.reset()
		recordPool.Put(cb)
	}()
	records, _, err := readRecordsInto(cb.records[:0], r, !opts.Strict, &cb.args)
	if err != nil {
		return nil, err
	}
	cb.records = records
	events, err := eventsFromRecords(id, records, opts, cache)
	if err != nil {
		return nil, err
	}
	return trace.NewCase(id, events), nil
}

// ParseFile parses one trace file whose name follows the
// "<cid>_<host>_<rid>.st" convention of Figure 1.
func ParseFile(path string, opts Options) (*trace.Case, error) {
	id, err := trace.ParseCaseID(filepath.Base(path))
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseCase(id, f, opts)
}

// ReadDir parses every "*.st" trace file in dir into an event-log. It is
// the bulk ingestion step that the paper performs before consolidating
// the cases into a single HDF5 file. Files are parsed concurrently under
// Options.Parallelism; the result is deterministic regardless.
func ReadDir(dir string, opts Options) (*trace.EventLog, error) {
	return ReadFS(os.DirFS(dir), ".", opts)
}

// ReadFS is ReadDir over an fs.FS, enabling tests to use in-memory
// filesystems. Unless Parallelism is 1, the fs.FS must be safe for
// concurrent Open and file reads (os.DirFS and fstest.MapFS are; the
// fs.FS contract itself does not guarantee it).
//
// ReadFS is the materializing form of StreamFS: it drains the stream
// into an event-log. The result is byte-for-byte identical to the
// sequential path for every Parallelism setting. Error semantics are
// deterministic too: without Strict the error reported is the one of
// the first failing file in case order (remaining files are
// abandoned); with Strict every file is parsed to completion and all
// failures are joined into one error.
func ReadFS(fsys fs.FS, root string, opts Options) (*trace.EventLog, error) {
	src, err := StreamFS(fsys, root, opts)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	return source.Drain(src, opts.Strict)
}

// StreamDir is the streaming form of ReadDir: cases arrive one at a
// time in deterministic CaseID order at O(Options.Window) peak memory.
func StreamDir(dir string, opts Options) (source.Source, error) {
	return StreamFS(os.DirFS(dir), ".", opts)
}

// StreamFS streams the "*.st" / "*.st.gz" trace files under root as a
// case source. Files are parsed concurrently by Options.Parallelism
// workers feeding an ordered, bounded reorder window (Options.Window),
// so cases are delivered in deterministic CaseID order — the same order
// the materialized event-log keeps — while at most Window parsed cases
// are resident. A per-file failure surfaces as an error at that case's
// position and the stream continues, which lets consumers choose
// between fail-fast (lenient ingestion) and collect-all (Strict).
// Closing the source cancels outstanding parses and waits for the
// workers to exit, so an abandoned stream leaks neither goroutines nor
// file handles.
func StreamFS(fsys fs.FS, root string, opts Options) (source.Source, error) {
	entries, err := fs.ReadDir(fsys, root)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if strings.HasSuffix(ent.Name(), ".st") || strings.HasSuffix(ent.Name(), ".st.gz") {
			names = append(names, ent.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("strace: no *.st or *.st.gz trace files under %q", root)
	}
	sortByCase(names)
	return source.Ordered(len(names), opts.Parallelism, opts.Window, func(i int) (*trace.Case, error) {
		return parseFSFile(fsys, root, names[i], opts)
	}), nil
}

// sortByCase orders trace file names by their parsed CaseID — the
// canonical order of the event-log — so the streaming and materialized
// pipelines agree on delivery (and first-error) order. Names that do
// not parse as case identities sort by the whole name in the CID slot,
// keeping the order total and deterministic; they fail later with a
// naming error at their position.
func sortByCase(names []string) {
	key := func(name string) trace.CaseID {
		id, err := trace.ParseCaseID(strings.TrimSuffix(name, ".gz"))
		if err != nil {
			return trace.CaseID{CID: name}
		}
		return id
	}
	sort.Slice(names, func(i, j int) bool {
		ki, kj := key(names[i]), key(names[j])
		if ki != kj {
			return ki.Less(kj)
		}
		return names[i] < names[j]
	})
}

// parseFSFile opens, optionally decompresses, and parses one trace file.
func parseFSFile(fsys fs.FS, root, name string, opts Options) (*trace.Case, error) {
	id, err := trace.ParseCaseID(strings.TrimSuffix(name, ".gz"))
	if err != nil {
		return nil, err
	}
	f, err := fsys.Open(filepath.Join(root, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(name, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("strace: %s: %w", name, err)
		}
		defer gz.Close()
		r = gz
	}
	c, err := ParseCase(id, r, opts)
	if err != nil {
		return nil, fmt.Errorf("strace: %s: %w", name, err)
	}
	return c, nil
}
