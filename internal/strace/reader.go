package strace

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"stinspector/internal/par"
	"stinspector/internal/trace"
)

// scanBufPool recycles the 64 KiB scanner line buffers of ReadRecords.
// With hundreds of per-rank trace files parsed concurrently, allocating a
// fresh buffer per file is measurable; pooling keeps the hot ParseLine
// loop allocation-free on the buffer side.
var scanBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 64*1024)
		return &b
	},
}

// recordPool recycles the record slices that ParseCase fills and then
// discards once the records are converted to events.
var recordPool = sync.Pool{
	New: func() any {
		s := make([]Record, 0, 1024)
		return &s
	},
}

// ReadRecords parses every line of an strace output stream into records.
// Unparseable lines are returned as errors unless lenient is true, in
// which case they are skipped and counted.
func ReadRecords(r io.Reader, lenient bool) ([]Record, int, error) {
	return readRecordsInto(nil, r, lenient)
}

// readRecordsInto is ReadRecords appending into a caller-provided slice,
// enabling ParseCase to reuse pooled backing arrays across files.
func readRecordsInto(records []Record, r io.Reader, lenient bool) ([]Record, int, error) {
	skipped := 0
	bufp := scanBufPool.Get().(*[]byte)
	defer scanBufPool.Put(bufp)
	sc := bufio.NewScanner(r)
	sc.Buffer((*bufp)[:0], 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		rec, err := ParseLine(text)
		if err != nil {
			if lenient {
				skipped++
				continue
			}
			if pe, ok := err.(*ParseError); ok {
				pe.Line = line
			}
			return nil, skipped, err
		}
		rec.Line = line
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("strace: reading trace: %w", err)
	}
	return records, skipped, nil
}

// ParseCase parses a single trace stream into a case with the given
// identity.
func ParseCase(id trace.CaseID, r io.Reader, opts Options) (*trace.Case, error) {
	recp := recordPool.Get().(*[]Record)
	defer func() {
		// Drop the string references before pooling so the backing
		// array does not pin parsed line text across files. Clear the
		// full capacity: on a parse error the slice header is still
		// len 0 while the backing array already holds records.
		s := (*recp)[:cap(*recp)]
		clear(s)
		*recp = s[:0]
		recordPool.Put(recp)
	}()
	records, _, err := readRecordsInto((*recp)[:0], r, !opts.Strict)
	if err != nil {
		return nil, err
	}
	*recp = records
	events, err := EventsFromRecords(id, records, opts)
	if err != nil {
		return nil, err
	}
	return trace.NewCase(id, events), nil
}

// ParseFile parses one trace file whose name follows the
// "<cid>_<host>_<rid>.st" convention of Figure 1.
func ParseFile(path string, opts Options) (*trace.Case, error) {
	id, err := trace.ParseCaseID(filepath.Base(path))
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseCase(id, f, opts)
}

// ReadDir parses every "*.st" trace file in dir into an event-log. It is
// the bulk ingestion step that the paper performs before consolidating
// the cases into a single HDF5 file. Files are parsed concurrently under
// Options.Parallelism; the result is deterministic regardless.
func ReadDir(dir string, opts Options) (*trace.EventLog, error) {
	return ReadFS(os.DirFS(dir), ".", opts)
}

// ReadFS is ReadDir over an fs.FS, enabling tests to use in-memory
// filesystems. Unless Parallelism is 1, the fs.FS must be safe for
// concurrent Open and file reads (os.DirFS and fstest.MapFS are; the
// fs.FS contract itself does not guarantee it).
//
// Per-file parsing is embarrassingly parallel: ReadFS fans the files out
// to a bounded worker pool (Options.Parallelism workers) and merges the
// parsed cases in sorted file-name order, so the resulting event-log is
// byte-for-byte identical to the sequential one. Error semantics are
// deterministic too: without Strict the error reported is the one of the
// first failing file in sorted order (remaining files are abandoned);
// with Strict every file is parsed to completion and all failures are
// joined into one error.
func ReadFS(fsys fs.FS, root string, opts Options) (*trace.EventLog, error) {
	entries, err := fs.ReadDir(fsys, root)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if strings.HasSuffix(ent.Name(), ".st") || strings.HasSuffix(ent.Name(), ".st.gz") {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("strace: no *.st or *.st.gz trace files under %q", root)
	}

	cases := make([]*trace.Case, len(names))
	errs := make([]error, len(names))
	par.ForEach(len(names), opts.Parallelism, func(i int) bool {
		cases[i], errs[i] = parseFSFile(fsys, root, names[i], opts)
		// Lenient mode abandons outstanding files once any file has
		// failed; Strict keeps going so that every failure is reported.
		return opts.Strict || errs[i] == nil
	})

	if opts.Strict {
		if err := errors.Join(errs...); err != nil {
			return nil, err
		}
	} else {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	log, err := trace.NewEventLog()
	if err != nil {
		return nil, err
	}
	for _, c := range cases {
		if err := log.Add(c); err != nil {
			return nil, err
		}
	}
	return log, nil
}

// parseFSFile opens, optionally decompresses, and parses one trace file.
func parseFSFile(fsys fs.FS, root, name string, opts Options) (*trace.Case, error) {
	id, err := trace.ParseCaseID(strings.TrimSuffix(name, ".gz"))
	if err != nil {
		return nil, err
	}
	f, err := fsys.Open(filepath.Join(root, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(name, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("strace: %s: %w", name, err)
		}
		defer gz.Close()
		r = gz
	}
	c, err := ParseCase(id, r, opts)
	if err != nil {
		return nil, fmt.Errorf("strace: %s: %w", name, err)
	}
	return c, nil
}
