package strace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"stinspector/internal/trace"
)

// ReadRecords parses every line of an strace output stream into records.
// Unparseable lines are returned as errors unless lenient is true, in
// which case they are skipped and counted.
func ReadRecords(r io.Reader, lenient bool) ([]Record, int, error) {
	var (
		records []Record
		skipped int
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		rec, err := ParseLine(text)
		if err != nil {
			if lenient {
				skipped++
				continue
			}
			if pe, ok := err.(*ParseError); ok {
				pe.Line = line
			}
			return nil, skipped, err
		}
		rec.Line = line
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("strace: reading trace: %w", err)
	}
	return records, skipped, nil
}

// ParseCase parses a single trace stream into a case with the given
// identity.
func ParseCase(id trace.CaseID, r io.Reader, opts Options) (*trace.Case, error) {
	records, _, err := ReadRecords(r, !opts.Strict)
	if err != nil {
		return nil, err
	}
	events, err := EventsFromRecords(id, records, opts)
	if err != nil {
		return nil, err
	}
	return trace.NewCase(id, events), nil
}

// ParseFile parses one trace file whose name follows the
// "<cid>_<host>_<rid>.st" convention of Figure 1.
func ParseFile(path string, opts Options) (*trace.Case, error) {
	id, err := trace.ParseCaseID(filepath.Base(path))
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseCase(id, f, opts)
}

// ReadDir parses every "*.st" trace file in dir into an event-log. It is
// the bulk ingestion step that the paper performs before consolidating
// the cases into a single HDF5 file.
func ReadDir(dir string, opts Options) (*trace.EventLog, error) {
	return ReadFS(os.DirFS(dir), ".", opts)
}

// ReadFS is ReadDir over an fs.FS, enabling tests to use in-memory
// filesystems.
func ReadFS(fsys fs.FS, root string, opts Options) (*trace.EventLog, error) {
	entries, err := fs.ReadDir(fsys, root)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if strings.HasSuffix(ent.Name(), ".st") || strings.HasSuffix(ent.Name(), ".st.gz") {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("strace: no *.st or *.st.gz trace files under %q", root)
	}
	log, err := trace.NewEventLog()
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		id, err := trace.ParseCaseID(strings.TrimSuffix(name, ".gz"))
		if err != nil {
			return nil, err
		}
		f, err := fsys.Open(filepath.Join(root, name))
		if err != nil {
			return nil, err
		}
		var r io.Reader = f
		var gz *gzip.Reader
		if strings.HasSuffix(name, ".gz") {
			gz, err = gzip.NewReader(f)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("strace: %s: %w", name, err)
			}
			r = gz
		}
		c, err := ParseCase(id, r, opts)
		if gz != nil {
			if cerr := gz.Close(); err == nil && cerr != nil {
				err = cerr
			}
		}
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("strace: %s: %w", name, err)
		}
		if err := log.Add(c); err != nil {
			return nil, err
		}
	}
	return log, nil
}
