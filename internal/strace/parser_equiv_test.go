package strace

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"stinspector/internal/trace"
)

// This file pins the zero-copy parser rewrites — the arena-backed
// splitArgs, the allocation-free ParseTimestamp, and the
// firstField-based parseExit/parseSignal — against verbatim copies of
// the pre-rewrite implementations, over the fuzz corpus and the
// writer-dialect round trip. Behavioural equivalence here plus the
// package's structural tests is the acceptance bar for touching the
// hot path.

// splitArgsOld is the pre-arena implementation, verbatim.
func splitArgsOld(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var (
		out   []string
		depth int
		inStr bool
		start int
	)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr {
			switch c {
			case '\\':
				i++
			case '"':
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '(', '[', '{', '<':
			depth++
		case ')', ']', '}', '>':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// parseTimestampOld is the pre-rewrite ParseTimestamp, verbatim (it
// allocated a 3-element slice per call via SplitN).
func parseTimestampOld(s string) (time.Duration, error) {
	if strings.Count(s, ":") == 2 {
		parts := strings.SplitN(s, ":", 3)
		h, err1 := strconv.Atoi(parts[0])
		m, err2 := strconv.Atoi(parts[1])
		sec, err3 := parseSeconds(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || h < 0 || h > 23 || m < 0 || m > 59 || sec < 0 || sec >= 61*time.Second {
			return 0, fmt.Errorf("bad -tt timestamp %q", s)
		}
		return time.Duration(h)*time.Hour + time.Duration(m)*time.Minute + sec, nil
	}
	if d, err := parseSeconds(s); err == nil {
		return d, nil
	}
	return 0, fmt.Errorf("bad timestamp %q", s)
}

// fieldsFirstOld reproduces the old strings.Fields(...)[0] extraction
// used by parseExit/parseSignal.
func fieldsFirstOld(s string) (string, bool) {
	f := strings.Fields(s)
	if len(f) == 0 {
		return "", false
	}
	return f[0], true
}

// equivCorpus gathers every line the parser equivalence runs over: the
// fuzz seeds, the on-disk fuzz corpus if any, and a writer-rendered
// synthetic case (the round-trip dialect).
func equivCorpus(t *testing.T) []string {
	t.Helper()
	var lines []string
	add := func(s string) {
		for _, l := range strings.Split(s, "\n") {
			lines = append(lines, l)
		}
	}
	for _, s := range fuzzSeeds {
		add(s)
	}
	ents, err := os.ReadDir(filepath.Join("testdata", "fuzz", "FuzzParseCase"))
	if err == nil {
		for _, ent := range ents {
			b, err := os.ReadFile(filepath.Join("testdata", "fuzz", "FuzzParseCase", ent.Name()))
			if err == nil {
				add(string(b))
			}
		}
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	c := trace.NewCase(trace.CaseID{CID: "eq", Host: "h", RID: 3}, []trace.Event{
		{PID: 3, Call: "openat", Start: 1000, Dur: 500, FP: "/tmp/eq", Size: trace.SizeUnknown},
		{PID: 3, Call: "pwrite64", Start: 3000, Dur: 700, FP: "/tmp/eq", Size: 4096},
		{PID: 3, Call: "close", Start: 9000, Dur: 100, FP: "/tmp/eq", Size: trace.SizeUnknown},
	})
	if err := w.WriteCase(c); err != nil {
		t.Fatal(err)
	}
	add(buf.String())
	// Adversarial argument shapes the corpus might miss.
	lines = append(lines,
		`1  00:00:01.000000 openat(AT_FDCWD, "/a \"q\" b", O_RDONLY) = 3</a> <0.000001>`,
		`1  00:00:01.000000 futex({a=1, , }, [ , ], "x,,y", ) = 0 <0.000001>`,
		`1  00:00:01.000000 read(3</f>, <unfinished ...>`,
		`1  00:00:01.000000 <... read resumed> "", 0) = 0 <0.000001>`,
		`1  00:00:01.000000 +++ killed by SIGKILL (core dumped) +++`,
		`1  00:00:01.000000 --- SIGSEGV {si_signo=SIGSEGV, si_code=1} ---`,
	)
	return lines
}

// TestSplitArgsEquivalence: the arena splitter must reproduce the old
// splitter's output exactly on the argument part of every corpus line
// and on raw corpus text.
func TestSplitArgsEquivalence(t *testing.T) {
	arena := &argBuilder{}
	for _, line := range equivCorpus(t) {
		inputs := []string{line}
		if i := strings.IndexByte(line, '('); i >= 0 {
			body := line[i+1:]
			if args, _, found := cutReturn(body); found {
				inputs = append(inputs, strings.TrimSuffix(strings.TrimSpace(args), ")"))
			}
		}
		for _, in := range inputs {
			want := splitArgsOld(in)
			got := splitArgs(in)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("splitArgs(%q) = %q, want %q", in, got, want)
			}
			gotArena := arena.split(in)
			if len(gotArena) == 0 {
				gotArena = nil
			}
			if !reflect.DeepEqual([]string(gotArena), want) {
				t.Errorf("arena split(%q) = %q, want %q", in, gotArena, want)
			}
		}
	}
}

// TestParseTimestampEquivalence: same values and same error text as the
// SplitN-based implementation, on corpus first-fields and a table of
// shapes.
func TestParseTimestampEquivalence(t *testing.T) {
	var inputs []string
	for _, line := range equivCorpus(t) {
		f, rest, ok := cutField(line)
		if ok {
			inputs = append(inputs, f)
			if f2, _, ok2 := cutField(rest); ok2 {
				inputs = append(inputs, f2)
			}
		}
	}
	inputs = append(inputs,
		"08:55:54.153994", "23:59:60.999999", "24:00:00.0", "1:2:3", "a:b:c",
		"1700000000.123456", "0.0", ".5", "5.", "1:2:3:4", "::", "", "99:99:99",
	)
	for _, in := range inputs {
		want, wantErr := parseTimestampOld(in)
		got, gotErr := ParseTimestamp(in)
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("ParseTimestamp(%q) err = %v, want %v", in, gotErr, wantErr)
			continue
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Errorf("ParseTimestamp(%q) error text %q, want %q", in, gotErr, wantErr)
			}
			continue
		}
		if got != want {
			t.Errorf("ParseTimestamp(%q) = %v, want %v", in, got, want)
		}
	}
}

// TestFirstFieldEquivalence: firstField must agree with
// strings.Fields(...)[0] wherever the old code could reach it.
func TestFirstFieldEquivalence(t *testing.T) {
	var inputs []string
	for _, line := range equivCorpus(t) {
		inputs = append(inputs, line)
		if s, ok := strings.CutPrefix(line, "+++"); ok {
			inputs = append(inputs, strings.TrimSpace(strings.TrimSuffix(s, "+++")))
		}
	}
	inputs = append(inputs, "SIGKILL (core dumped)", " SIGCHLD", "x", "\u00a0nbsp lead", "mixed\ttab")
	for _, in := range inputs {
		want, ok := fieldsFirstOld(in)
		if !ok {
			continue // old code never called Fields on all-space input
		}
		if got := firstField(in); got != want {
			t.Errorf("firstField(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestParseLineArenaEquivalence: whole-record equivalence between the
// standalone ParseLine (private arena per call) and the pooled
// per-file path (shared arena), over every corpus line.
func TestParseLineArenaEquivalence(t *testing.T) {
	arena := &argBuilder{}
	for _, line := range equivCorpus(t) {
		want, wantErr := ParseLine(line)
		got, gotErr := parseLineWith(line, arena)
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("parseLineWith(%q) err = %v, ParseLine err = %v", line, gotErr, wantErr)
			continue
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Errorf("error text diverges for %q: %q vs %q", line, gotErr, wantErr)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("record diverges for %q:\narena: %+v\nplain: %+v", line, got, want)
		}
	}
}
