//go:build !unix

package strace

import "io/fs"

// fileID has no portable identity source off unix; rotation is then
// detected by size shrink only (a rotate-to-longer-file goes unseen
// until the next shrink or reopen). The fault-injection matrix runs on
// unix, where the inode path is exercised.
func fileID(fi fs.FileInfo) uint64 { return 0 }
