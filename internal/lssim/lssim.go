// Package lssim generates the running example of the paper: the traces
// of "ls" (command identifier "a") and "ls -l" (command identifier "b"),
// each executed by three MPI processes on one host (Figures 1 and 2).
//
// The generated events reproduce the paper's figures quantitatively:
//
//   - transfer sizes are the ones printed in Figure 2, which makes the
//     per-activity byte totals match Figure 3 exactly (e.g. 18 × 832 B =
//     14.98 KB for read:/usr/lib);
//   - durations are calibrated so that the relative-duration statistics
//     match the Load values of Figure 3 to ±0.01;
//   - start schedules are laid out so that the max-concurrency statistics
//     match the DR multiplicities of Figure 3 (2× for read:/usr/lib,
//     3× for read:/etc/locale.alias and write:/dev/pts, 1× for
//     read:/etc/passwd, ...), including the Figure 5 timeline shape.
package lssim

import (
	"time"

	"stinspector/internal/trace"
)

// Config controls generation.
type Config struct {
	// Host is the machine name (default "host1").
	Host string
	// RIDsA / RIDsB are the launcher process ids of the two commands
	// (defaults: the paper's 9042/9043/9045 and 9157/9158/9160).
	RIDsA []int
	RIDsB []int
}

func (c Config) withDefaults() Config {
	if c.Host == "" {
		c.Host = "host1"
	}
	if len(c.RIDsA) == 0 {
		c.RIDsA = []int{9042, 9043, 9045}
	}
	if len(c.RIDsB) == 0 {
		c.RIDsB = []int{9157, 9158, 9160}
	}
	return c
}

// ev describes one scheduled event of a case.
type ev struct {
	call  string
	fp    string
	start int64 // µs offset within the case schedule
	dur   int64 // µs
	size  int64
}

// File paths of Figure 2.
const (
	libSelinux = "/usr/lib/x86_64-linux-gnu/libselinux.so.1"
	libC       = "/usr/lib/x86_64-linux-gnu/libc.so.6"
	libPcre    = "/usr/lib/x86_64-linux-gnu/libpcre2-8.so.0.10.4"
	procFS     = "/proc/filesystems"
	locale     = "/etc/locale.alias"
	nsswitch   = "/etc/nsswitch.conf"
	passwd     = "/etc/passwd"
	group      = "/etc/group"
	zoneinfo   = "/usr/share/zoneinfo/Europe/Berlin"
	pts        = "/dev/pts/7"
)

// scheduleA returns the per-case schedules of the ls command. Index i is
// the i-th case. Durations are identical across cases (they encode the
// Load calibration); start offsets differ (they encode the concurrency
// calibration).
func scheduleA() [][]ev {
	durs := []int64{203, 79, 85, 250, 200, 167, 150, 111}
	sizes := []int64{832, 832, 832, 478, 0, 2996, 0, 50}
	calls := []string{"read", "read", "read", "read", "read", "read", "read", "write"}
	fps := []string{libSelinux, libC, libPcre, procFS, procFS, locale, locale, pts}
	starts := [][]int64{
		{0, 300, 500, 800, 1100, 1500, 1700, 2000},
		{100, 350, 560, 900, 1150, 1560, 1760, 2050},
		{700, 950, 1150, 1355, 1610, 1812, 1985, 2140},
	}
	return build(calls, fps, durs, sizes, starts)
}

// scheduleB returns the per-case schedules of the ls -l command.
func scheduleB() [][]ev {
	durs := []int64{203, 79, 85, 250, 200, 167, 150, 140, 27, 67, 100, 74, 74, 93, 99, 109, 174}
	sizes := []int64{832, 832, 832, 478, 0, 2996, 0, 542, 0, 1612, 872, 9, 2298, 1449, 74, 53, 65}
	calls := []string{
		"read", "read", "read", "read", "read", "read", "read",
		"read", "read", "read", "read", "write", "read", "read",
		"write", "write", "write",
	}
	fps := []string{
		libSelinux, libC, libPcre, procFS, procFS, locale, locale,
		nsswitch, nsswitch, passwd, group, pts, zoneinfo, zoneinfo,
		pts, pts, pts,
	}
	starts := [][]int64{
		{0, 300, 500, 800, 1100, 1500, 1700, 1900, 2100, 2200, 2300, 2450, 2600, 2700, 2850, 3000, 3200},
		{100, 350, 560, 900, 1150, 1560, 1760, 1950, 2150, 2270, 2380, 2480, 2610, 2710, 2900, 3050, 3250},
		{700, 950, 1150, 1355, 1610, 1812, 1985, 2140, 2285, 2360, 2430, 2595, 2810, 2890, 3000, 3150, 3430},
	}
	return build(calls, fps, durs, sizes, starts)
}

func build(calls, fps []string, durs, sizes []int64, starts [][]int64) [][]ev {
	out := make([][]ev, len(starts))
	for c, ss := range starts {
		evs := make([]ev, len(calls))
		for i := range calls {
			size := sizes[i]
			if calls[i] != "read" && calls[i] != "write" {
				size = trace.SizeUnknown
			}
			evs[i] = ev{call: calls[i], fp: fps[i], start: ss[i], dur: durs[i], size: size}
		}
		out[c] = evs
	}
	return out
}

// Base times of day of the two commands, from Figure 2 (08:55:54 for ls,
// 08:56:04 for ls -l).
var (
	baseA = 8*time.Hour + 55*time.Minute + 54*time.Second + 153994*time.Microsecond
	baseB = 8*time.Hour + 56*time.Minute + 4*time.Second + 731999*time.Microsecond
)

// LS generates the event-log C_a of the ls command.
func LS(cfg Config) *trace.EventLog {
	cfg = cfg.withDefaults()
	return buildLog("a", cfg.Host, cfg.RIDsA, 12, baseA, scheduleA())
}

// LSL generates the event-log C_b of the ls -l command.
func LSL(cfg Config) *trace.EventLog {
	cfg = cfg.withDefaults()
	return buildLog("b", cfg.Host, cfg.RIDsB, 16, baseB, scheduleB())
}

// Both generates C_a, C_b and their union C_x (Equation 3).
func Both(cfg Config) (ca, cb, cx *trace.EventLog) {
	ca = LS(cfg)
	cb = LSL(cfg)
	cx = trace.MustUnion(ca, cb)
	return ca, cb, cx
}

func buildLog(cid, host string, rids []int, pidOffset int, base time.Duration, schedules [][]ev) *trace.EventLog {
	var cases []*trace.Case
	for i, rid := range rids {
		sched := schedules[i%len(schedules)]
		events := make([]trace.Event, len(sched))
		for j, e := range sched {
			events[j] = trace.Event{
				PID:   rid + pidOffset,
				Call:  e.call,
				Start: base + time.Duration(e.start)*time.Microsecond,
				Dur:   time.Duration(e.dur) * time.Microsecond,
				FP:    e.fp,
				Size:  e.size,
			}
		}
		cases = append(cases, trace.NewCase(trace.CaseID{CID: cid, Host: host, RID: rid}, events))
	}
	return trace.MustNewEventLog(cases...)
}
