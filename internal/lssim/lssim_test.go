package lssim

import (
	"math"
	"testing"

	"stinspector/internal/pm"
	"stinspector/internal/stats"
	"stinspector/internal/trace"
)

func TestShapes(t *testing.T) {
	ca, cb, cx := Both(Config{})
	if ca.NumCases() != 3 || cb.NumCases() != 3 || cx.NumCases() != 6 {
		t.Fatalf("cases = %d/%d/%d", ca.NumCases(), cb.NumCases(), cx.NumCases())
	}
	if got := ca.NumEvents(); got != 3*8 {
		t.Errorf("ls events = %d, want 24", got)
	}
	if got := cb.NumEvents(); got != 3*17 {
		t.Errorf("ls -l events = %d, want 51", got)
	}
	for _, log := range []*trace.EventLog{ca, cb, cx} {
		if err := log.Validate(); err != nil {
			t.Errorf("Validate: %v", err)
		}
	}
}

func TestNoSelfOverlapWithinCases(t *testing.T) {
	_, _, cx := Both(Config{})
	for _, c := range cx.Cases() {
		for i := 1; i < len(c.Events); i++ {
			prev, cur := c.Events[i-1], c.Events[i]
			if cur.Start < prev.End() {
				t.Errorf("case %s: event %d (%s@%v) starts before %s ends (%v)",
					c.ID, i, cur.Call, cur.Start, prev.Call, prev.End())
			}
		}
	}
}

// TestFig3Bytes verifies the byte totals printed in Figure 3, which derive
// exactly from the Figure 2 transfer sizes times three processes.
func TestFig3Bytes(t *testing.T) {
	_, _, cx := Both(Config{})
	s := stats.Compute(cx, pm.CallTopDirs{Depth: 2})
	want := map[pm.Activity]int64{
		"read:/usr/lib":           14976, // 14.98 KB
		"read:/proc/filesystems":  2868,  // 2.87 KB
		"read:/etc/locale.alias":  17976, // 17.98 KB
		"read:/etc/nsswitch.conf": 1626,  // 1.63 KB
		"read:/etc/passwd":        4836,  // 4.84 KB
		"read:/etc/group":         2616,  // 2.62 KB
		"read:/usr/share":         11241, // 11.24 KB
		"write:/dev/pts":          753,   // 0.75 KB
	}
	for a, bytes := range want {
		st := s.Get(a)
		if st == nil {
			t.Errorf("activity %s missing", a)
			continue
		}
		if st.Bytes != bytes {
			t.Errorf("bytes(%s) = %d, want %d", a, st.Bytes, bytes)
		}
	}
	if got := len(s.Activities()); got != len(want) {
		t.Errorf("activities = %d, want %d: %v", got, len(want), s.Activities())
	}
}

// TestFig3RelativeDurations verifies the Load values of Figure 3 within
// rounding tolerance.
func TestFig3RelativeDurations(t *testing.T) {
	_, _, cx := Both(Config{})
	s := stats.Compute(cx, pm.CallTopDirs{Depth: 2})
	want := map[pm.Activity]float64{
		"read:/usr/lib":           0.22,
		"read:/proc/filesystems":  0.27,
		"read:/etc/locale.alias":  0.19,
		"read:/etc/nsswitch.conf": 0.05,
		"read:/etc/passwd":        0.02,
		"read:/etc/group":         0.03,
		"read:/usr/share":         0.05,
		"write:/dev/pts":          0.17,
	}
	for a, rd := range want {
		st := s.Get(a)
		if st == nil {
			t.Fatalf("activity %s missing", a)
		}
		if math.Abs(st.RelDur-rd) > 0.01 {
			t.Errorf("rd(%s) = %.4f, want %.2f ± 0.01", a, st.RelDur, rd)
		}
	}
}

// TestFig3MaxConcurrency verifies the DR multiplicities of Figure 3.
func TestFig3MaxConcurrency(t *testing.T) {
	_, _, cx := Both(Config{})
	s := stats.Compute(cx, pm.CallTopDirs{Depth: 2})
	want := map[pm.Activity]int{
		"read:/usr/lib":           2,
		"read:/proc/filesystems":  2,
		"read:/etc/locale.alias":  3,
		"read:/etc/nsswitch.conf": 2,
		"read:/etc/passwd":        1,
		"read:/etc/group":         2,
		"read:/usr/share":         2,
		"write:/dev/pts":          3,
	}
	for a, mc := range want {
		st := s.Get(a)
		if st == nil {
			t.Fatalf("activity %s missing", a)
		}
		if st.MaxConc != mc {
			t.Errorf("mc(%s) = %d, want %d", a, st.MaxConc, mc)
		}
	}
}

// TestFig5Timeline verifies the Figure 5 shape: the read:/usr/lib events
// of C_b form three rows of three bars with max-concurrency 2.
func TestFig5Timeline(t *testing.T) {
	_, cb, _ := Both(Config{})
	tl := stats.Timeline(cb, pm.CallTopDirs{Depth: 2}, "read:/usr/lib")
	if len(tl) != 9 {
		t.Fatalf("timeline intervals = %d, want 9", len(tl))
	}
	rows := map[trace.CaseID]int{}
	for _, iv := range tl {
		rows[iv.Case]++
	}
	if len(rows) != 3 {
		t.Errorf("timeline rows = %d, want 3", len(rows))
	}
	for id, n := range rows {
		if n != 3 {
			t.Errorf("row %s has %d bars, want 3", id, n)
		}
	}
	if mc := stats.MaxConcurrency(tl); mc != 2 {
		t.Errorf("timeline mc = %d, want 2", mc)
	}
}

// The trace σ_f̂(a9042) as printed in Section IV.
func TestPaperTraceSequence(t *testing.T) {
	ca := LS(Config{})
	l := pm.Build(ca, pm.CallTopDirs{Depth: 2}, pm.BuildOptions{})
	if l.NumVariants() != 1 || l.Variants()[0].Mult != 3 {
		t.Fatalf("variants = %d, mult = %d", l.NumVariants(), l.Variants()[0].Mult)
	}
	want := pm.Trace{
		"read:/usr/lib", "read:/usr/lib", "read:/usr/lib",
		"read:/proc/filesystems", "read:/proc/filesystems",
		"read:/etc/locale.alias", "read:/etc/locale.alias",
		"write:/dev/pts",
	}
	got := l.Variants()[0].Seq
	if len(got) != len(want) {
		t.Fatalf("trace = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("trace[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestCustomConfig(t *testing.T) {
	log := LS(Config{Host: "nodeX", RIDsA: []int{1, 2}})
	if log.NumCases() != 2 {
		t.Fatalf("cases = %d", log.NumCases())
	}
	for _, c := range log.Cases() {
		if c.ID.Host != "nodeX" || c.ID.CID != "a" {
			t.Errorf("case id = %v", c.ID)
		}
	}
}
