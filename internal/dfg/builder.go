package dfg

import (
	"stinspector/internal/intern"
	"stinspector/internal/pm"
)

// Builder constructs a DFG incrementally, one activity trace at a time —
// the streaming form of Build. Because the graph is pure occurrence
// counting, folding the same traces in any order (per case as a stream
// delivers them, or per variant as Build does) yields an identical
// graph.
//
// The builder counts in symbol space: activities are dense symbols from
// an intern.Local table (its own, or one shared with the shard's
// SymMapper via NewBuilderSym), node counts live in a slice indexed by
// symbol and edge counts in a map keyed by the packed symbol pair — no
// string hashing per event. Finalize materializes the classic
// string-keyed Graph.
type Builder struct {
	tab    *intern.Local
	nodes  []int  // occurrence count by activity symbol
	seen   []bool // activity appeared in a trace (counts can be 0)
	edges  map[uint64]int
	traces int

	symbuf []intern.Sym // AddVariant scratch
}

// NewBuilder returns a builder over an empty graph with its own
// activity symbol table.
func NewBuilder() *Builder { return NewBuilderSym(intern.NewLocal()) }

// NewBuilderSym returns a builder whose activity symbols are drawn from
// the given table — the shard-sharing form: pass the SymMapper's Acts()
// table and feed the sequences pm.Builder.AddMapped returns straight
// into AddSymVariant.
func NewBuilderSym(tab *intern.Local) *Builder {
	return &Builder{tab: tab, edges: make(map[uint64]int, 32)}
}

// AddTrace folds one case's activity trace into the graph.
func (b *Builder) AddTrace(seq pm.Trace) { b.AddVariant(seq, 1) }

// AddVariant folds a trace with a multiplicity, the variant form.
func (b *Builder) AddVariant(seq pm.Trace, mult int) {
	syms := b.symbuf[:0]
	for _, a := range seq {
		syms = append(syms, b.tab.Intern(string(a)))
	}
	b.symbuf = syms
	b.AddSymVariant(syms, mult)
}

// AddSymVariant folds a trace already in symbol space (symbols from the
// builder's table) with a multiplicity. This is the per-event hot path
// of DFG synthesis: a slice increment per activity and one integer-key
// map increment per transition.
func (b *Builder) AddSymVariant(seq []intern.Sym, mult int) {
	b.traces += mult
	prev := intern.Sym(0)
	for i, y := range seq {
		b.grow(y)
		b.nodes[y] += mult
		b.seen[y] = true
		if i > 0 {
			b.edges[uint64(prev)<<32|uint64(y)] += mult
		}
		prev = y
	}
}

func (b *Builder) grow(y intern.Sym) {
	for int(y) >= len(b.nodes) {
		b.nodes = append(b.nodes, 0)
		b.seen = append(b.seen, false)
	}
}

// MergeFrom folds another builder's counts into b, remapping o's
// shard-local symbols through b's table — the symbol form of
// Graph.Merge, used by the sharded analysis fold before a single
// Finalize. The counts are integer sums, so merging shard partials in
// any order equals building one graph from all the traces. o must not
// be used afterwards.
func (b *Builder) MergeFrom(o *Builder) {
	if o == nil {
		return
	}
	b.traces += o.traces
	r := o.tab.RemapInto(b.tab)
	for y, c := range o.nodes {
		if !o.seen[y] {
			continue
		}
		m := r[y]
		b.grow(m)
		b.nodes[m] += c
		b.seen[m] = true
	}
	for e, c := range o.edges {
		from, to := r[intern.Sym(e>>32)], r[intern.Sym(uint32(e))]
		b.edges[uint64(from)<<32|uint64(to)] += c
	}
}

// Finalize materializes the accumulated counts into a Graph. The
// builder must not be used afterwards.
func (b *Builder) Finalize() *Graph {
	g := New()
	g.traces = b.traces
	for y, c := range b.nodes {
		if b.seen[y] {
			g.nodes[pm.Activity(b.tab.Str(intern.Sym(y)))] = c
		}
	}
	for e, c := range b.edges {
		g.edges[Edge{
			From: pm.Activity(b.tab.Str(intern.Sym(e >> 32))),
			To:   pm.Activity(b.tab.Str(intern.Sym(uint32(e)))),
		}] = c
	}
	return g
}
