package dfg

import (
	"fmt"

	"stinspector/internal/pm"
)

// Class is the partition-based color class of a node or edge
// (Section IV-C): Green for elements occurring exclusively in the
// G-subset's DFG, Red for elements exclusive to the R-subset, Shared for
// elements occurring in both.
type Class int

const (
	// Shared marks elements present in both partitions (left uncolored
	// in the paper's figures).
	Shared Class = iota
	// Green marks elements exclusive to the G subset.
	Green
	// Red marks elements exclusive to the R subset.
	Red
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Green:
		return "green"
	case Red:
		return "red"
	case Shared:
		return "shared"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Partition is the result of classifying the elements of a full DFG
// against the DFGs of two mutually exclusive event-log subsets.
type Partition struct {
	Nodes map[pm.Activity]Class
	EdgeC map[Edge]Class
}

// Classify colors the nodes and edges of the full graph according to the
// partition-based strategy of Section IV-C:
//
//   - elements occurring exclusively in green's DFG are Green,
//   - elements occurring exclusively in red's DFG are Red,
//   - elements occurring in both are Shared.
//
// Elements of the full graph missing from both subset graphs (possible
// only if full was not built from the union of the two subsets) are
// classified Shared, the neutral class.
func Classify(full, green, red *Graph) *Partition {
	p := &Partition{
		Nodes: make(map[pm.Activity]Class, full.NumNodes()),
		EdgeC: make(map[Edge]Class, full.NumEdges()),
	}
	for _, a := range full.Nodes() {
		p.Nodes[a] = classOf(green.HasNode(a), red.HasNode(a))
	}
	for _, e := range full.Edges() {
		p.EdgeC[e] = classOf(green.HasEdge(e), red.HasEdge(e))
	}
	return p
}

func classOf(inGreen, inRed bool) Class {
	switch {
	case inGreen && !inRed:
		return Green
	case inRed && !inGreen:
		return Red
	default:
		return Shared
	}
}

// Node returns the class of an activity (Shared when unknown).
func (p *Partition) Node(a pm.Activity) Class { return p.Nodes[a] }

// Edge returns the class of an edge (Shared when unknown).
func (p *Partition) Edge(e Edge) Class { return p.EdgeC[e] }

// CountNodes returns how many nodes fall in each class.
func (p *Partition) CountNodes() (green, red, shared int) {
	for _, c := range p.Nodes {
		switch c {
		case Green:
			green++
		case Red:
			red++
		default:
			shared++
		}
	}
	return
}

// CountEdges returns how many edges fall in each class.
func (p *Partition) CountEdges() (green, red, shared int) {
	for _, c := range p.EdgeC {
		switch c {
		case Green:
			green++
		case Red:
			red++
		default:
			shared++
		}
	}
	return
}

// ExclusiveNodes returns the nodes of the given class, in the full
// graph's deterministic order. The full graph must be supplied because
// the partition stores only classifications.
func (p *Partition) ExclusiveNodes(g *Graph, class Class) []pm.Activity {
	var out []pm.Activity
	for _, a := range g.Nodes() {
		if p.Nodes[a] == class {
			out = append(out, a)
		}
	}
	return out
}
