package dfg

import (
	"strings"
	"testing"

	"stinspector/internal/pm"
	"stinspector/internal/trace"
)

func TestFootprintRelations(t *testing.T) {
	g := buildGraph(t, logA(t))
	fp := NewFootprint(g)
	if len(fp.Activities) != 4 {
		t.Fatalf("activities = %v", fp.Activities)
	}
	// read:/usr/lib directly precedes read:/proc/filesystems, never the
	// reverse.
	if r := fp.Relation("read:/usr/lib", "read:/proc/filesystems"); r != Precedes {
		t.Errorf("lib vs proc = %v, want →", r)
	}
	if r := fp.Relation("read:/proc/filesystems", "read:/usr/lib"); r != Follows {
		t.Errorf("proc vs lib = %v, want ←", r)
	}
	// Self-loops read as parallel (both directions trivially exist).
	if r := fp.Relation("read:/usr/lib", "read:/usr/lib"); r != Parallel {
		t.Errorf("self relation = %v, want ∥", r)
	}
	// No relation between /usr/lib and /dev/pts in the ls trace.
	if r := fp.Relation("read:/usr/lib", "write:/dev/pts"); r != Unrelated {
		t.Errorf("lib vs pts = %v, want #", r)
	}
	// Unknown activities are unrelated.
	if r := fp.Relation("x", "y"); r != Unrelated {
		t.Errorf("unknown = %v", r)
	}
	// Rendering includes the symbols.
	s := fp.String()
	for _, sym := range []string{"→", "←", "∥", "#"} {
		if !strings.Contains(s, sym) {
			t.Errorf("footprint render missing %q:\n%s", sym, s)
		}
	}
}

func TestFootprintDiffAndSimilarity(t *testing.T) {
	ga := buildGraph(t, logA(t))
	gb := buildGraph(t, logB(t))
	fa, fb := NewFootprint(ga), NewFootprint(gb)

	// Self-similarity is exact.
	if s := fa.Similarity(NewFootprint(buildGraph(t, logA(t)))); s != 1.0 {
		t.Errorf("self similarity = %v", s)
	}
	if d := fa.Diff(fa); len(d) != 0 {
		t.Errorf("self diff = %v", d)
	}

	// ls vs ls -l differ structurally.
	diffs := fa.Diff(fb)
	if len(diffs) == 0 {
		t.Fatalf("no structural differences found")
	}
	s := fa.Similarity(fb)
	if s <= 0 || s >= 1 {
		t.Errorf("similarity = %v, want in (0,1)", s)
	}
	// Diff is symmetric in count with sides swapped.
	rev := fb.Diff(fa)
	if len(rev) != len(diffs) {
		t.Errorf("diff asymmetry: %d vs %d", len(diffs), len(rev))
	}
	// One expected difference: in ls, locale.alias → pts; in ls -l,
	// locale.alias → nsswitch.conf instead.
	found := false
	for _, d := range diffs {
		if d.A == "read:/etc/locale.alias" && d.B == "write:/dev/pts" &&
			d.Left == Precedes && d.Rite == Unrelated {
			found = true
		}
	}
	if !found {
		t.Errorf("expected locale→pts structural diff, got %v", diffs)
	}
}

func TestFootprintEmptyAndDisjoint(t *testing.T) {
	empty := NewFootprint(New())
	if len(empty.Activities) != 0 {
		t.Errorf("empty footprint = %v", empty.Activities)
	}
	if s := empty.Similarity(empty); s != 1.0 {
		t.Errorf("empty similarity = %v", s)
	}
	// Completely disjoint alphabets: every self/cross cell with a
	// relation in one side disagrees.
	a := trace.NewCase(trace.CaseID{CID: "x", Host: "h", RID: 1}, []trace.Event{
		{Call: "p", Start: 1, FP: "/x"}, {Call: "p", Start: 2, FP: "/x"},
	})
	b := trace.NewCase(trace.CaseID{CID: "y", Host: "h", RID: 1}, []trace.Event{
		{Call: "q", Start: 1, FP: "/x"}, {Call: "q", Start: 2, FP: "/x"},
	})
	m := pm.MappingFunc(func(e trace.Event) (pm.Activity, bool) { return pm.Activity(e.Call), true })
	fa := NewFootprint(Build(pm.Build(trace.MustNewEventLog(a), m, pm.BuildOptions{Endpoints: true})))
	fb := NewFootprint(Build(pm.Build(trace.MustNewEventLog(b), m, pm.BuildOptions{Endpoints: true})))
	if s := fa.Similarity(fb); s >= 1 {
		t.Errorf("disjoint similarity = %v", s)
	}
	if d := fa.Diff(fb); len(d) != 2 { // p∥p vs #, q# vs q∥q
		t.Errorf("disjoint diff = %v", d)
	}
}
