package dfg

import (
	"sort"

	"stinspector/internal/pm"
)

// FilterCounts returns a copy of the graph keeping only nodes observed
// at least minNode times and edges observed at least minEdge times
// (virtual start/end nodes are always kept). Frequency filtering is the
// standard interactive simplification of process-mining DFG viewers: the
// paper recommends mappings that keep the graph small, and this provides
// the complementary post-hoc reduction when they do not.
//
// Edges whose endpoint was dropped are removed as well, so the result is
// a well-formed subgraph. Counts are preserved, which means flow
// conservation generally no longer holds on the filtered graph.
func (g *Graph) FilterCounts(minNode, minEdge int) *Graph {
	out := New()
	out.traces = g.traces
	for a, c := range g.nodes {
		if a.IsVirtual() || c >= minNode {
			out.nodes[a] = c
		}
	}
	for e, c := range g.edges {
		if c < minEdge {
			continue
		}
		if _, ok := out.nodes[e.From]; !ok {
			continue
		}
		if _, ok := out.nodes[e.To]; !ok {
			continue
		}
		out.edges[e] = c
	}
	return out
}

// Project returns the subgraph induced by the given activities (plus the
// virtual endpoints): only edges with both endpoints retained survive.
func (g *Graph) Project(keep func(pm.Activity) bool) *Graph {
	out := New()
	out.traces = g.traces
	for a, c := range g.nodes {
		if a.IsVirtual() || keep(a) {
			out.nodes[a] = c
		}
	}
	for e, c := range g.edges {
		_, okF := out.nodes[e.From]
		_, okT := out.nodes[e.To]
		if okF && okT {
			out.edges[e] = c
		}
	}
	return out
}

// Union returns the edge-wise and node-wise sum of the graphs, the DFG
// counterpart of event-log union: Build(L(C_a) ∪ L(C_b)) equals
// Union(Build(L(C_a)), Build(L(C_b))) (tested as the additivity
// property).
func UnionGraphs(gs ...*Graph) *Graph {
	out := New()
	for _, g := range gs {
		if g == nil {
			continue
		}
		out.traces += g.traces
		for a, c := range g.nodes {
			out.nodes[a] += c
		}
		for e, c := range g.edges {
			out.edges[e] += c
		}
	}
	return out
}

// TopEdges returns the n most frequent edges (ties broken
// deterministically by edge order).
func (g *Graph) TopEdges(n int) []Edge {
	edges := g.Edges()
	sort.SliceStable(edges, func(i, j int) bool {
		return g.edges[edges[i]] > g.edges[edges[j]]
	})
	if n > len(edges) {
		n = len(edges)
	}
	return edges[:n]
}

// SelfLoops returns the activities with self-edges and their counts,
// in deterministic order. In the paper's figures self-loops mark the
// repeated sequential accesses (read…read of a block, write…write of
// transfers).
func (g *Graph) SelfLoops() map[pm.Activity]int {
	out := make(map[pm.Activity]int)
	for e, c := range g.edges {
		if e.From == e.To {
			out[e.From] = c
		}
	}
	return out
}

// DominantPath greedily follows the highest-count outgoing edge from the
// virtual start activity until the end activity, a node repeats, or no
// edge leaves the current node. It extracts the "main flow" a human
// reads off the rendered DFG.
func (g *Graph) DominantPath() []pm.Activity {
	path := []pm.Activity{pm.Start}
	seen := map[pm.Activity]bool{pm.Start: true}
	cur := pm.Start
	for cur != pm.End {
		var best Edge
		bestCount := -1
		for _, e := range g.OutEdges(cur) {
			if e.To == cur {
				continue // self-loops are not flow
			}
			// Deterministic: OutEdges is ordered; strict > keeps
			// the first maximum.
			if c := g.edges[e]; c > bestCount {
				best, bestCount = e, c
			}
		}
		if bestCount < 0 {
			break
		}
		path = append(path, best.To)
		if best.To == pm.End {
			break
		}
		if seen[best.To] {
			break
		}
		seen[best.To] = true
		cur = best.To
	}
	return path
}
