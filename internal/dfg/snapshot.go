package dfg

import (
	"stinspector/internal/intern"
	"stinspector/internal/pm"
	"stinspector/internal/snapshot/wire"
)

// EncodeSnapshot serializes the graph for durable storage. Activities
// are written once in a per-snapshot intern dictionary built over the
// deterministic node order, so identical graphs encode to identical
// bytes. Counts use signed varints: the graph API never produces
// negative counts, but the encoding does not silently corrupt one.
//
// Layout (wrapped in a checksummed section by internal/snapshot):
//
//	dict:   n | string*
//	traces: uvarint
//	nodes:  n | (actSym count)*
//	edges:  n | (fromSym toSym count)*
func (g *Graph) EncodeSnapshot() []byte {
	dict := intern.NewLocal()
	var b wire.Buf

	nodes := g.Nodes()
	for _, a := range nodes {
		dict.Intern(string(a))
	}
	b.Uvarint(uint64(dict.Len()))
	for i := 0; i < dict.Len(); i++ {
		b.Str(dict.Str(intern.Sym(i)))
	}

	b.Uvarint(uint64(g.traces))
	b.Uvarint(uint64(len(nodes)))
	for _, a := range nodes {
		y, _ := dict.Sym(string(a))
		b.Uvarint(uint64(y))
		b.Varint(int64(g.nodes[a]))
	}
	edges := g.Edges()
	b.Uvarint(uint64(len(edges)))
	for _, e := range edges {
		fy, _ := dict.Sym(string(e.From))
		ty, _ := dict.Sym(string(e.To))
		b.Uvarint(uint64(fy))
		b.Uvarint(uint64(ty))
		b.Varint(int64(g.edges[e]))
	}
	return b.Bytes()
}

// DecodeGraphSnapshot reconstructs a graph from EncodeSnapshot bytes.
// Every dictionary reference is range-checked and duplicate entries are
// rejected: hostile input yields a wire.CorruptError, never a panic.
func DecodeGraphSnapshot(data []byte) (*Graph, error) {
	c := wire.NewCursor(data)
	nd, err := c.Count(1)
	if err != nil {
		return nil, err
	}
	dict := intern.NewLocal()
	for i := 0; i < nd; i++ {
		s, err := c.Str()
		if err != nil {
			return nil, err
		}
		dict.Intern(s)
		if dict.Len() != i+1 {
			return nil, wire.Corruptf("duplicate dictionary string %q", s)
		}
	}
	sym := func() (pm.Activity, error) {
		y, err := c.Uvarint()
		if err != nil {
			return "", err
		}
		if y >= uint64(nd) {
			return "", wire.Corruptf("dictionary id %d out of range (%d strings)", y, nd)
		}
		return pm.Activity(dict.Str(intern.Sym(y))), nil
	}

	g := New()
	if g.traces, err = c.Int(); err != nil {
		return nil, err
	}
	nn, err := c.Count(2)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nn; i++ {
		a, err := sym()
		if err != nil {
			return nil, err
		}
		count, err := c.Varint()
		if err != nil {
			return nil, err
		}
		if _, ok := g.nodes[a]; ok {
			return nil, wire.Corruptf("duplicate node %q", a)
		}
		g.nodes[a] = int(count)
	}
	ne, err := c.Count(3)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ne; i++ {
		var e Edge
		if e.From, err = sym(); err != nil {
			return nil, err
		}
		if e.To, err = sym(); err != nil {
			return nil, err
		}
		count, err := c.Varint()
		if err != nil {
			return nil, err
		}
		if _, ok := g.edges[e]; ok {
			return nil, wire.Corruptf("duplicate edge %s", e)
		}
		if _, ok := g.nodes[e.From]; !ok {
			return nil, wire.Corruptf("edge %s from unknown node", e)
		}
		if _, ok := g.nodes[e.To]; !ok {
			return nil, wire.Corruptf("edge %s to unknown node", e)
		}
		g.edges[e] = int(count)
	}
	if err := c.Done(); err != nil {
		return nil, err
	}
	return g, nil
}
