package dfg

import (
	"math/rand"
	"testing"
	"time"

	"stinspector/internal/pm"
	"stinspector/internal/trace"
)

// bruteForceDFG builds the DFG definition literally: for every pair of
// adjacent activities in every trace (with multiplicity), count the
// directly-follows observation. It is the executable form of
// Definition 4 the optimized builder must agree with.
func bruteForceDFG(l *pm.Log) (map[Edge]int, map[pm.Activity]int) {
	edges := make(map[Edge]int)
	nodes := make(map[pm.Activity]int)
	for _, v := range l.Variants() {
		for rep := 0; rep < v.Mult; rep++ {
			for i, a := range v.Seq {
				nodes[a]++
				if i+1 < len(v.Seq) {
					edges[Edge{From: a, To: v.Seq[i+1]}]++
				}
			}
		}
	}
	return edges, nodes
}

// Property: Build agrees with the literal definition on random logs.
func TestBuildMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	alphabet := []string{"a", "b", "c", "d", "e", "f", "g"}
	for trial := 0; trial < 60; trial++ {
		var cases []*trace.Case
		nc := 1 + rng.Intn(12)
		for c := 0; c < nc; c++ {
			n := rng.Intn(25)
			evs := make([]trace.Event, n)
			for i := range evs {
				evs[i] = trace.Event{
					Call:  alphabet[rng.Intn(len(alphabet))],
					FP:    "/x",
					Start: time.Duration(i) * time.Millisecond,
				}
			}
			cases = append(cases, trace.NewCase(trace.CaseID{CID: "bf", Host: "h", RID: c}, evs))
		}
		el := trace.MustNewEventLog(cases...)
		m := pm.MappingFunc(func(e trace.Event) (pm.Activity, bool) {
			// Partial mapping: drop activity "g" entirely.
			if e.Call == "g" {
				return "", false
			}
			return pm.Activity(e.Call), true
		})
		l := pm.Build(el, m, pm.BuildOptions{Endpoints: true, KeepEmpty: true})
		g := Build(l)
		wantEdges, wantNodes := bruteForceDFG(l)

		if g.NumEdges() != len(wantEdges) {
			t.Fatalf("trial %d: edges = %d, brute force %d", trial, g.NumEdges(), len(wantEdges))
		}
		for e, c := range wantEdges {
			if g.EdgeCount(e) != c {
				t.Fatalf("trial %d: edge %s = %d, want %d", trial, e, g.EdgeCount(e), c)
			}
		}
		for a, c := range wantNodes {
			if g.NodeCount(a) != c {
				t.Fatalf("trial %d: node %s = %d, want %d", trial, a, g.NodeCount(a), c)
			}
		}
	}
}
