package dfg

import (
	"fmt"
	"sort"
	"strings"

	"stinspector/internal/pm"
)

// Relation is the footprint relation between two activities, as defined
// in the process-discovery foundations the paper builds on (van der
// Aalst, "Foundations of Process Discovery" — the same source as the DFG
// definition): for activities a and b,
//
//	a → b  (Precedes)  when a is directly followed by b but never the
//	                   reverse,
//	a ← b  (Follows)   when only the reverse is observed,
//	a ∥ b  (Parallel)  when both directions are observed,
//	a # b  (Unrelated) when neither is.
type Relation int

const (
	// Unrelated: neither a→b nor b→a observed (#).
	Unrelated Relation = iota
	// Precedes: a→b only.
	Precedes
	// Follows: b→a only.
	Follows
	// Parallel: both directions observed (∥).
	Parallel
)

// String renders the relation symbol.
func (r Relation) String() string {
	switch r {
	case Precedes:
		return "→"
	case Follows:
		return "←"
	case Parallel:
		return "∥"
	default:
		return "#"
	}
}

// Footprint is the relation matrix over an activity alphabet. It is a
// compact, alignment-friendly summary of a DFG: two runs with the same
// footprint have the same causal structure even if their counts differ,
// and the cell-wise diff pinpoints where the structure changed.
type Footprint struct {
	Activities []pm.Activity
	index      map[pm.Activity]int
	cells      []Relation // row-major len(Activities)²
}

// NewFootprint derives the footprint of a graph. Virtual start/end
// activities are excluded: the footprint describes the observable
// activities only.
func NewFootprint(g *Graph) *Footprint {
	var acts []pm.Activity
	for _, a := range g.Nodes() {
		if !a.IsVirtual() {
			acts = append(acts, a)
		}
	}
	sort.Slice(acts, func(i, j int) bool { return acts[i] < acts[j] })
	fp := &Footprint{
		Activities: acts,
		index:      make(map[pm.Activity]int, len(acts)),
		cells:      make([]Relation, len(acts)*len(acts)),
	}
	for i, a := range acts {
		fp.index[a] = i
	}
	for i, a := range acts {
		for j, b := range acts {
			ab := g.HasEdge(Edge{From: a, To: b})
			ba := g.HasEdge(Edge{From: b, To: a})
			var r Relation
			switch {
			case ab && ba:
				r = Parallel
			case ab:
				r = Precedes
			case ba:
				r = Follows
			}
			fp.cells[i*len(acts)+j] = r
		}
	}
	return fp
}

// Relation returns the footprint cell for (a, b); Unrelated when either
// activity is not in the alphabet.
func (fp *Footprint) Relation(a, b pm.Activity) Relation {
	i, ok1 := fp.index[a]
	j, ok2 := fp.index[b]
	if !ok1 || !ok2 {
		return Unrelated
	}
	return fp.cells[i*len(fp.Activities)+j]
}

// String renders the matrix with the conventional symbols.
func (fp *Footprint) String() string {
	var b strings.Builder
	w := 0
	for _, a := range fp.Activities {
		if len(a) > w {
			w = len(string(a))
		}
	}
	fmt.Fprintf(&b, "%-*s", w+2, "")
	for j := range fp.Activities {
		fmt.Fprintf(&b, "%3d", j)
	}
	b.WriteByte('\n')
	for i, a := range fp.Activities {
		fmt.Fprintf(&b, "%2d %-*s", i, w-1, a)
		for j := range fp.Activities {
			fmt.Fprintf(&b, "%3s", fp.cells[i*len(fp.Activities)+j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FootprintDiff is one structural difference between two footprints.
type FootprintDiff struct {
	A, B pm.Activity
	Left Relation
	Rite Relation
}

// Diff returns the cells over the union alphabet where the two
// footprints disagree, in deterministic order. Activities missing from
// one footprint compare as Unrelated there, so added/removed activities
// surface through their relations.
func (fp *Footprint) Diff(o *Footprint) []FootprintDiff {
	seen := make(map[pm.Activity]bool)
	var alphabet []pm.Activity
	for _, a := range fp.Activities {
		if !seen[a] {
			seen[a] = true
			alphabet = append(alphabet, a)
		}
	}
	for _, a := range o.Activities {
		if !seen[a] {
			seen[a] = true
			alphabet = append(alphabet, a)
		}
	}
	sort.Slice(alphabet, func(i, j int) bool { return alphabet[i] < alphabet[j] })
	var out []FootprintDiff
	for _, a := range alphabet {
		for _, b := range alphabet {
			l, r := fp.Relation(a, b), o.Relation(a, b)
			if l != r {
				out = append(out, FootprintDiff{A: a, B: b, Left: l, Rite: r})
			}
		}
	}
	return out
}

// Similarity returns the fraction of agreeing cells over the union
// alphabet, 1.0 for structurally identical behaviour. It is a coarse
// conformance measure between two program configurations.
func (fp *Footprint) Similarity(o *Footprint) float64 {
	seen := make(map[pm.Activity]bool)
	n := 0
	for _, a := range fp.Activities {
		if !seen[a] {
			seen[a] = true
			n++
		}
	}
	for _, a := range o.Activities {
		if !seen[a] {
			seen[a] = true
			n++
		}
	}
	if n == 0 {
		return 1
	}
	diffs := len(fp.Diff(o))
	total := n * n
	return float64(total-diffs) / float64(total)
}
