package dfg

import (
	"reflect"
	"strings"
	"testing"

	"stinspector/internal/pm"
	"stinspector/internal/trace"
)

func TestFilterCounts(t *testing.T) {
	g := buildGraph(t, trace.MustUnion(logA(t), logB(t)))
	// Keep only elements observed ≥ 6 times.
	f := g.FilterCounts(6, 6)
	if !f.HasNode(pm.Start) || !f.HasNode(pm.End) {
		t.Errorf("virtual endpoints dropped")
	}
	// read:/etc/passwd occurs 3 times — dropped.
	if f.HasNode("read:/etc/passwd") {
		t.Errorf("infrequent node kept")
	}
	// read:/usr/lib occurs 18 times — kept, with original count.
	if f.NodeCount("read:/usr/lib") != 18 {
		t.Errorf("kept node count = %d", f.NodeCount("read:/usr/lib"))
	}
	// Edges into dropped nodes are gone.
	for _, e := range f.Edges() {
		if !f.HasNode(e.From) || !f.HasNode(e.To) {
			t.Errorf("dangling edge %s", e)
		}
		if f.EdgeCount(e) < 6 {
			t.Errorf("infrequent edge kept: %s = %d", e, f.EdgeCount(e))
		}
	}
	// Original untouched.
	if !g.HasNode("read:/etc/passwd") {
		t.Errorf("FilterCounts mutated the receiver")
	}
}

func TestProject(t *testing.T) {
	g := buildGraph(t, logA(t))
	p := g.Project(func(a pm.Activity) bool {
		call, _ := a.Parts()
		return call == "read"
	})
	if p.HasNode("write:/dev/pts") {
		t.Errorf("projection kept excluded node")
	}
	if !p.HasNode("read:/usr/lib") {
		t.Errorf("projection dropped included node")
	}
	if p.HasEdge(Edge{From: "read:/etc/locale.alias", To: "write:/dev/pts"}) {
		t.Errorf("projection kept edge to excluded node")
	}
	if !p.HasEdge(Edge{From: "read:/usr/lib", To: "read:/proc/filesystems"}) {
		t.Errorf("projection dropped internal edge")
	}
}

func TestUnionGraphs(t *testing.T) {
	la, lb := logA(t), logB(t)
	ga, gb := buildGraph(t, la), buildGraph(t, lb)
	direct := buildGraph(t, trace.MustUnion(la, lb))
	union := UnionGraphs(ga, gb)
	if !union.Equal(direct) {
		t.Errorf("UnionGraphs differs from DFG of union log:\n%s\nvs\n%s", union, direct)
	}
	if UnionGraphs(ga, nil).NumNodes() != ga.NumNodes() {
		t.Errorf("nil operand mishandled")
	}
}

func TestTopEdges(t *testing.T) {
	g := buildGraph(t, logA(t))
	top := g.TopEdges(1)
	if len(top) != 1 {
		t.Fatalf("top = %v", top)
	}
	// The self-edge of read:/usr/lib has count 6, the maximum.
	want := Edge{From: "read:/usr/lib", To: "read:/usr/lib"}
	if top[0] != want {
		t.Errorf("top edge = %v (count %d), want %v", top[0], g.EdgeCount(top[0]), want)
	}
	if got := g.TopEdges(1000); len(got) != g.NumEdges() {
		t.Errorf("TopEdges over-asked = %d", len(got))
	}
}

func TestSelfLoops(t *testing.T) {
	g := buildGraph(t, logA(t))
	loops := g.SelfLoops()
	want := map[pm.Activity]int{
		"read:/usr/lib":          6,
		"read:/proc/filesystems": 3,
		"read:/etc/locale.alias": 3,
	}
	if !reflect.DeepEqual(loops, want) {
		t.Errorf("SelfLoops = %v, want %v", loops, want)
	}
}

func TestDominantPath(t *testing.T) {
	g := buildGraph(t, logA(t))
	path := g.DominantPath()
	var names []string
	for _, a := range path {
		names = append(names, string(a))
	}
	got := strings.Join(names, " → ")
	want := strings.Join([]string{
		string(pm.Start), "read:/usr/lib", "read:/proc/filesystems",
		"read:/etc/locale.alias", "write:/dev/pts", string(pm.End),
	}, " → ")
	if got != want {
		t.Errorf("dominant path = %s\nwant %s", got, want)
	}
}

func TestDominantPathTerminates(t *testing.T) {
	// A cyclic graph without reachable end must not loop forever.
	g := New()
	g.AddEdge(Edge{From: pm.Start, To: "a"}, 5)
	g.AddEdge(Edge{From: "a", To: "b"}, 5)
	g.AddEdge(Edge{From: "b", To: "a"}, 5)
	path := g.DominantPath()
	if len(path) == 0 || len(path) > 5 {
		t.Errorf("path = %v", path)
	}
}
