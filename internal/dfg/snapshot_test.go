package dfg

import (
	"bytes"
	"errors"
	"testing"

	"stinspector/internal/pm"
	"stinspector/internal/snapshot/wire"
	"stinspector/internal/synth"
)

func snapGraph(t *testing.T) *Graph {
	t.Helper()
	el := synth.Log("snap", 24, 40, 20240924)
	l := pm.Build(el, pm.CallTopDirs{Depth: 2}, pm.BuildOptions{Endpoints: true})
	return Build(l)
}

// Encode∘decode is the identity on graphs, and the encoding is
// canonical: re-encoding the decoded graph reproduces the bytes.
func TestGraphSnapshotRoundTrip(t *testing.T) {
	g := snapGraph(t)
	enc := g.EncodeSnapshot()
	got, err := DecodeGraphSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(g) {
		t.Errorf("decoded graph differs:\ngot  %s\nwant %s", got, g)
	}
	if got.traces != g.traces {
		t.Errorf("traces = %d, want %d", got.traces, g.traces)
	}
	if re := got.EncodeSnapshot(); !bytes.Equal(re, enc) {
		t.Errorf("re-encode differs: %d vs %d bytes", len(re), len(enc))
	}
}

func TestGraphSnapshotEmpty(t *testing.T) {
	got, err := DecodeGraphSnapshot(New().EncodeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 0 || got.NumEdges() != 0 || got.traces != 0 {
		t.Errorf("decoded empty graph has state: %s", got)
	}
}

// A decoded graph merges like any other partial.
func TestGraphSnapshotMergesAfterDecode(t *testing.T) {
	whole := snapGraph(t)
	el := synth.Log("snap", 24, 40, 20240924)
	m := pm.CallTopDirs{Depth: 2}
	mk := func(lo, hi int) *Graph {
		sub := el.Cases()[lo:hi]
		b := pm.NewBuilder(m, pm.BuildOptions{Endpoints: true})
		db := NewBuilder()
		for _, c := range sub {
			if seq, ok := b.Add(c); ok {
				db.AddTrace(seq)
			}
		}
		return db.Finalize()
	}
	a, bp := mk(0, 13), mk(13, 24)
	da, err := DecodeGraphSnapshot(a.EncodeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	db, err := DecodeGraphSnapshot(bp.EncodeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if merged := Merge(da, db); !merged.Equal(whole) || merged.traces != whole.traces {
		t.Error("merge of decoded partials differs from the whole graph")
	}
}

// Truncations, range violations and structural inconsistencies yield
// CorruptError, never a panic.
func TestGraphSnapshotCorrupt(t *testing.T) {
	enc := snapGraph(t).EncodeSnapshot()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeGraphSnapshot(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
	var ce *wire.CorruptError
	// Edge referencing an out-of-range dictionary id.
	var b wire.Buf
	b.Uvarint(1)
	b.Str("a")
	b.Uvarint(0) // traces
	b.Uvarint(1) // nodes
	b.Uvarint(0)
	b.Varint(1)
	b.Uvarint(1) // edges
	b.Uvarint(0)
	b.Uvarint(7) // out of range
	b.Varint(1)
	if _, err := DecodeGraphSnapshot(b.Bytes()); !errors.As(err, &ce) {
		t.Fatalf("out-of-range edge id: err = %v, want CorruptError", err)
	}
}
