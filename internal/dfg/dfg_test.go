package dfg

import (
	"math/rand"
	"testing"
	"time"

	"stinspector/internal/pm"
	"stinspector/internal/trace"
)

func ev(call, fp string, start time.Duration) trace.Event {
	return trace.Event{Call: call, FP: fp, Start: start, Dur: 10 * time.Microsecond, Size: 1}
}

// Figure 2a: ls.
func fig2aEvents() []trace.Event {
	return []trace.Event{
		ev("read", "/usr/lib/x86_64-linux-gnu/libselinux.so.1", 1),
		ev("read", "/usr/lib/x86_64-linux-gnu/libc.so.6", 2),
		ev("read", "/usr/lib/x86_64-linux-gnu/libpcre2-8.so.0.10.4", 3),
		ev("read", "/proc/filesystems", 4),
		ev("read", "/proc/filesystems", 5),
		ev("read", "/etc/locale.alias", 6),
		ev("read", "/etc/locale.alias", 7),
		ev("write", "/dev/pts/7", 8),
	}
}

// Figure 2b: ls -l.
func fig2bEvents() []trace.Event {
	return []trace.Event{
		ev("read", "/usr/lib/x86_64-linux-gnu/libselinux.so.1", 1),
		ev("read", "/usr/lib/x86_64-linux-gnu/libc.so.6", 2),
		ev("read", "/usr/lib/x86_64-linux-gnu/libpcre2-8.so.0.10.4", 3),
		ev("read", "/proc/filesystems", 4),
		ev("read", "/proc/filesystems", 5),
		ev("read", "/etc/locale.alias", 6),
		ev("read", "/etc/locale.alias", 7),
		ev("read", "/etc/nsswitch.conf", 8),
		ev("read", "/etc/nsswitch.conf", 9),
		ev("read", "/etc/passwd", 10),
		ev("read", "/etc/group", 11),
		ev("write", "/dev/pts/7", 12),
		ev("read", "/usr/share/zoneinfo/Europe/Berlin", 13),
		ev("read", "/usr/share/zoneinfo/Europe/Berlin", 14),
		ev("write", "/dev/pts/7", 15),
		ev("write", "/dev/pts/7", 16),
		ev("write", "/dev/pts/7", 17),
	}
}

func logA(t *testing.T) *trace.EventLog {
	t.Helper()
	var cases []*trace.Case
	for _, rid := range []int{9042, 9043, 9045} {
		cases = append(cases, trace.NewCase(trace.CaseID{CID: "a", Host: "host1", RID: rid}, fig2aEvents()))
	}
	return trace.MustNewEventLog(cases...)
}

func logB(t *testing.T) *trace.EventLog {
	t.Helper()
	var cases []*trace.Case
	for _, rid := range []int{9157, 9158, 9160} {
		cases = append(cases, trace.NewCase(trace.CaseID{CID: "b", Host: "host1", RID: rid}, fig2bEvents()))
	}
	return trace.MustNewEventLog(cases...)
}

func buildGraph(t *testing.T, el *trace.EventLog) *Graph {
	t.Helper()
	return Build(pm.Build(el, pm.CallTopDirs{Depth: 2}, pm.BuildOptions{Endpoints: true}))
}

// TestFig3bEdges checks every edge count of Figure 3b, the DFG of
// G[L_f̂(C_a)].
func TestFig3bEdges(t *testing.T) {
	g := buildGraph(t, logA(t))
	want := map[Edge]int{
		{pm.Start, "read:/usr/lib"}:                          3,
		{"read:/usr/lib", "read:/usr/lib"}:                   6,
		{"read:/usr/lib", "read:/proc/filesystems"}:          3,
		{"read:/proc/filesystems", "read:/proc/filesystems"}: 3,
		{"read:/proc/filesystems", "read:/etc/locale.alias"}: 3,
		{"read:/etc/locale.alias", "read:/etc/locale.alias"}: 3,
		{"read:/etc/locale.alias", "write:/dev/pts"}:         3,
		{"write:/dev/pts", pm.End}:                           3,
	}
	if g.NumEdges() != len(want) {
		t.Errorf("edges = %d, want %d\n%s", g.NumEdges(), len(want), g)
	}
	for e, c := range want {
		if got := g.EdgeCount(e); got != c {
			t.Errorf("edge %s = %d, want %d", e, got, c)
		}
	}
	// Node counts: 4 activities + start/end.
	if g.NumNodes() != 6 {
		t.Errorf("nodes = %d, want 6", g.NumNodes())
	}
	if got := g.NodeCount("read:/usr/lib"); got != 9 {
		t.Errorf("read:/usr/lib count = %d, want 9", got)
	}
	if got := g.NodeCount(pm.Start); got != 3 {
		t.Errorf("start count = %d, want 3", got)
	}
}

// TestFig3cEdges checks the distinguishing edges of Figure 3c
// (G[L_f̂(C_b)], the ls -l DFG).
func TestFig3cEdges(t *testing.T) {
	g := buildGraph(t, logB(t))
	checks := map[Edge]int{
		{"read:/etc/locale.alias", "read:/etc/nsswitch.conf"}: 3,
		{"read:/etc/nsswitch.conf", "read:/etc/passwd"}:       3,
		{"read:/etc/passwd", "read:/etc/group"}:               3,
		{"read:/etc/group", "write:/dev/pts"}:                 3,
		{"write:/dev/pts", "read:/usr/share"}:                 3,
		{"read:/usr/share", "read:/usr/share"}:                3,
		{"read:/usr/share", "write:/dev/pts"}:                 3,
		{"write:/dev/pts", "write:/dev/pts"}:                  6,
		{"write:/dev/pts", pm.End}:                            3,
	}
	for e, c := range checks {
		if got := g.EdgeCount(e); got != c {
			t.Errorf("edge %s = %d, want %d", e, got, c)
		}
	}
	if g.NodeCount("write:/dev/pts") != 12 {
		t.Errorf("write:/dev/pts count = %d, want 12", g.NodeCount("write:/dev/pts"))
	}
}

// TestFig3dUnion checks that the DFG of the union event-log C_x has the
// combined counts of Figure 3d.
func TestFig3dUnion(t *testing.T) {
	cx := trace.MustUnion(logA(t), logB(t))
	g := buildGraph(t, cx)
	checks := map[Edge]int{
		{pm.Start, "read:/usr/lib"}:                           6,
		{"read:/usr/lib", "read:/usr/lib"}:                    12,
		{"read:/usr/lib", "read:/proc/filesystems"}:           6,
		{"read:/etc/locale.alias", "read:/etc/nsswitch.conf"}: 3,
		{"read:/etc/locale.alias", "write:/dev/pts"}:          3,
		{"write:/dev/pts", pm.End}:                            6,
	}
	for e, c := range checks {
		if got := g.EdgeCount(e); got != c {
			t.Errorf("edge %s = %d, want %d", e, got, c)
		}
	}
}

// TestClassifyFig3d verifies the partition coloring of Figure 3d: red
// elements are exclusive to ls -l, and the single green edge is
// read:/etc/locale.alias → write:/dev/pts (exclusive to ls).
func TestClassifyFig3d(t *testing.T) {
	la, lb := logA(t), logB(t)
	cx := trace.MustUnion(la, lb)
	full := buildGraph(t, cx)
	green := buildGraph(t, la)
	red := buildGraph(t, lb)
	p := Classify(full, green, red)

	wantRedNodes := []pm.Activity{
		"read:/etc/nsswitch.conf", "read:/etc/passwd", "read:/etc/group", "read:/usr/share",
	}
	for _, a := range wantRedNodes {
		if p.Node(a) != Red {
			t.Errorf("node %s = %v, want red", a, p.Node(a))
		}
	}
	sharedNodes := []pm.Activity{
		"read:/usr/lib", "read:/proc/filesystems", "read:/etc/locale.alias", "write:/dev/pts",
	}
	for _, a := range sharedNodes {
		if p.Node(a) != Shared {
			t.Errorf("node %s = %v, want shared", a, p.Node(a))
		}
	}
	// "There are no activities that occur exclusively in ls, except a
	// single directly-follows relation indicated as an edge from
	// read:/etc/locale.alias to write:/dev/pts."
	gn, _, _ := p.CountNodes()
	if gn != 0 {
		t.Errorf("green nodes = %d, want 0", gn)
	}
	if p.Edge(Edge{"read:/etc/locale.alias", "write:/dev/pts"}) != Green {
		t.Errorf("locale.alias→dev/pts should be the single green edge")
	}
	ge, _, _ := p.CountEdges()
	if ge != 1 {
		t.Errorf("green edges = %d, want 1", ge)
	}
	if p.Edge(Edge{"read:/etc/locale.alias", "read:/etc/nsswitch.conf"}) != Red {
		t.Errorf("locale.alias→nsswitch.conf should be red")
	}
	if got := p.ExclusiveNodes(full, Red); len(got) != 4 {
		t.Errorf("ExclusiveNodes(red) = %v", got)
	}
}

func TestGraphAccessors(t *testing.T) {
	g := buildGraph(t, logA(t))
	if !g.HasNode("write:/dev/pts") || g.HasNode("no:such") {
		t.Errorf("HasNode broken")
	}
	if !g.HasEdge(Edge{pm.Start, "read:/usr/lib"}) {
		t.Errorf("HasEdge broken")
	}
	nodes := g.Nodes()
	if nodes[0] != pm.Start || nodes[len(nodes)-1] != pm.End {
		t.Errorf("node ordering: %v", nodes)
	}
	if out := g.OutEdges("read:/usr/lib"); len(out) != 2 {
		t.Errorf("OutEdges = %v", out)
	}
	if in := g.InEdges("write:/dev/pts"); len(in) != 1 {
		t.Errorf("InEdges = %v", in)
	}
	if g.NumTraces() != 3 {
		t.Errorf("NumTraces = %d", g.NumTraces())
	}
	if !g.Equal(buildGraph(t, logA(t))) {
		t.Errorf("Equal(self rebuild) = false")
	}
	if g.Equal(buildGraph(t, logB(t))) {
		t.Errorf("Equal(different) = true")
	}
}

// Property: flow conservation. For every non-virtual activity, the summed
// in-edge counts and out-edge counts both equal the node occurrence count
// when traces carry endpoints; the start node's out-weight equals the
// number of traces; total edge count equals Σ (len(σ)+1)·mult.
func TestFlowConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	acts := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 40; trial++ {
		var cases []*trace.Case
		totalLen := 0
		nc := 1 + rng.Intn(8)
		for i := 0; i < nc; i++ {
			n := rng.Intn(20)
			evs := make([]trace.Event, n)
			for j := range evs {
				evs[j] = trace.Event{
					Call:  acts[rng.Intn(len(acts))],
					FP:    "/x",
					Start: time.Duration(j) * time.Millisecond,
				}
			}
			totalLen += n
			cases = append(cases, trace.NewCase(trace.CaseID{CID: "p", Host: "h", RID: i}, evs))
		}
		el := trace.MustNewEventLog(cases...)
		m := pm.MappingFunc(func(e trace.Event) (pm.Activity, bool) { return pm.Activity(e.Call), true })
		l := pm.Build(el, m, pm.BuildOptions{Endpoints: true, KeepEmpty: true})
		g := Build(l)

		if got, want := g.OutWeight(pm.Start), nc; got != want {
			t.Fatalf("trial %d: start out-weight = %d, want %d", trial, got, want)
		}
		if got, want := g.InWeight(pm.End), nc; got != want {
			t.Fatalf("trial %d: end in-weight = %d, want %d", trial, got, want)
		}
		if got, want := g.TotalEdgeCount(), totalLen+nc; got != want {
			t.Fatalf("trial %d: total edge count = %d, want %d", trial, got, want)
		}
		for _, a := range g.Nodes() {
			if a.IsVirtual() {
				continue
			}
			if g.InWeight(a) != g.NodeCount(a) || g.OutWeight(a) != g.NodeCount(a) {
				t.Fatalf("trial %d: flow conservation violated at %s: in=%d out=%d count=%d",
					trial, a, g.InWeight(a), g.OutWeight(a), g.NodeCount(a))
			}
		}
	}
}

// Property: the DFG of a union event-log equals the edge-wise sum of the
// subset DFGs (the construction is additive over cases).
func TestBuildAdditivity(t *testing.T) {
	la, lb := logA(t), logB(t)
	cx := trace.MustUnion(la, lb)
	full := buildGraph(t, cx)
	ga, gb := buildGraph(t, la), buildGraph(t, lb)
	for _, e := range full.Edges() {
		if got, want := full.EdgeCount(e), ga.EdgeCount(e)+gb.EdgeCount(e); got != want {
			t.Errorf("edge %s: union=%d, sum=%d", e, got, want)
		}
	}
	for _, a := range full.Nodes() {
		if got, want := full.NodeCount(a), ga.NodeCount(a)+gb.NodeCount(a); got != want {
			t.Errorf("node %s: union=%d, sum=%d", a, got, want)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := New()
	if g.NumNodes() != 0 || g.NumEdges() != 0 || g.NumTraces() != 0 {
		t.Errorf("empty graph not empty")
	}
	if g.TotalEdgeCount() != 0 {
		t.Errorf("empty TotalEdgeCount = %d", g.TotalEdgeCount())
	}
}

// TestMergeReproducesBuild is the dfg merge law: partition an
// activity-log's variants over partial builders, merge the partial
// graphs, and the result must Equal the graph built in one pass —
// whatever the partition or the merge order.
func TestMergeReproducesBuild(t *testing.T) {
	m := pm.CallTopDirs{Depth: 2}
	l := pm.Build(trace.MustUnion(logA(t), logB(t)), m, pm.BuildOptions{Endpoints: true})
	want := Build(l)
	for shards := 1; shards <= 4; shards++ {
		builders := make([]*Builder, shards)
		for i := range builders {
			builders[i] = NewBuilder()
		}
		for i, v := range l.Variants() {
			builders[i%shards].AddVariant(v.Seq, v.Mult)
		}
		graphs := make([]*Graph, shards)
		for i, b := range builders {
			graphs[i] = b.Finalize()
		}
		got := Merge(graphs...)
		if !got.Equal(want) {
			t.Errorf("shards=%d: merged graph differs from one-pass build:\n%s\nwant:\n%s", shards, got, want)
		}
		if got.NumTraces() != want.NumTraces() {
			t.Errorf("shards=%d: traces = %d, want %d", shards, got.NumTraces(), want.NumTraces())
		}
	}
}

// TestMergeIdentityAndInputs: merging with empty graphs is the
// identity, and Merge leaves its inputs untouched.
func TestMergeIdentityAndInputs(t *testing.T) {
	l := pm.Build(logA(t), pm.CallTopDirs{Depth: 2}, pm.BuildOptions{Endpoints: true})
	g := Build(l)
	nodes, edges, traces := g.NumNodes(), g.NumEdges(), g.NumTraces()
	got := Merge(New(), g, nil, New())
	if !got.Equal(g) || got.NumTraces() != traces {
		t.Errorf("identity law violated:\n%s\nwant:\n%s", got, g)
	}
	got.AddNode("extra:/node", 1)
	if g.NumNodes() != nodes || g.NumEdges() != edges {
		t.Errorf("Merge aliased its input: %d/%d nodes, want %d/%d", g.NumNodes(), g.NumEdges(), nodes, edges)
	}
}
