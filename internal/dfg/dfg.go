// Package dfg constructs and compares Directly-Follows-Graphs.
//
// Given an activity-log L_f(C), the DFG G[L_f(C)] has the activities as
// nodes and an edge (a1, a2) if and only if some trace in the log has a1
// immediately preceding a2 (Definition 4 of van der Aalst's "Foundations
// of Process Discovery", as adopted in Section IV-A of the paper). Edge
// weights count how often the directly-follows relation was observed;
// node weights count activity occurrences. Construction is a single pass
// over the activity-log, O(n) in the number of events.
package dfg

import (
	"fmt"
	"sort"
	"strings"

	"stinspector/internal/pm"
)

// Edge is a directed directly-follows relation between two activities.
type Edge struct {
	From, To pm.Activity
}

// String renders the edge as "a → b".
func (e Edge) String() string { return fmt.Sprintf("%s → %s", e.From, e.To) }

// Graph is a Directly-Follows-Graph with occurrence counts.
type Graph struct {
	nodes map[pm.Activity]int
	edges map[Edge]int
	// traces is the number of traces (counting multiplicity) the graph
	// was built from.
	traces int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nodes: make(map[pm.Activity]int), edges: make(map[Edge]int)}
}

// Build synthesizes the DFG from an activity-log in a single pass.
// Virtual start/end activities present in the log's traces become regular
// nodes (with counts equal to the number of traces), exactly as in the
// paper's figures where ● and ■ carry the trace multiplicities on their
// edges. It is the materializing form of Builder.
func Build(l *pm.Log) *Graph {
	b := NewBuilder()
	for _, v := range l.Variants() {
		b.AddVariant(v.Seq, v.Mult)
	}
	return b.Finalize()
}

// Merge folds another graph's occurrence counts into g. The graph is
// pure counting, so the merge is exact and order-insensitive: merging
// shard partials in any order equals building one graph from all the
// traces. o stays usable.
func (g *Graph) Merge(o *Graph) {
	if o == nil {
		return
	}
	g.traces += o.traces
	for a, c := range o.nodes {
		g.nodes[a] += c
	}
	for e, c := range o.edges {
		g.edges[e] += c
	}
}

// Merge merges partial graphs (shard partials of one logical fold) into
// a new graph; the inputs stay usable.
func Merge(graphs ...*Graph) *Graph {
	out := New()
	for _, g := range graphs {
		out.Merge(g)
	}
	return out
}

// AddNode inserts (or increments) a node with the given occurrence count,
// for manual graph construction in tools and tests.
func (g *Graph) AddNode(a pm.Activity, count int) {
	g.nodes[a] += count
}

// AddEdge inserts (or increments) an edge with the given observation
// count, creating its endpoints as needed.
func (g *Graph) AddEdge(e Edge, count int) {
	if _, ok := g.nodes[e.From]; !ok {
		g.nodes[e.From] = 0
	}
	if _, ok := g.nodes[e.To]; !ok {
		g.nodes[e.To] = 0
	}
	g.edges[e] += count
}

// NumNodes returns the number of distinct activities in the graph,
// including virtual endpoints if present.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of distinct directly-follows relations.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumTraces returns the number of traces the graph was built from.
func (g *Graph) NumTraces() int { return g.traces }

// HasNode reports whether the activity occurs in the graph.
func (g *Graph) HasNode(a pm.Activity) bool { _, ok := g.nodes[a]; return ok }

// HasEdge reports whether the directly-follows relation occurs.
func (g *Graph) HasEdge(e Edge) bool { _, ok := g.edges[e]; return ok }

// NodeCount returns the number of occurrences of the activity.
func (g *Graph) NodeCount(a pm.Activity) int { return g.nodes[a] }

// EdgeCount returns the number of observations of the directly-follows
// relation.
func (g *Graph) EdgeCount(e Edge) int { return g.edges[e] }

// Nodes returns the activities in deterministic (lexicographic) order,
// with virtual start first and end last.
func (g *Graph) Nodes() []pm.Activity {
	out := make([]pm.Activity, 0, len(g.nodes))
	for a := range g.nodes {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return nodeLess(out[i], out[j]) })
	return out
}

func nodeLess(a, b pm.Activity) bool {
	ra, rb := nodeRank(a), nodeRank(b)
	if ra != rb {
		return ra < rb
	}
	return a < b
}

func nodeRank(a pm.Activity) int {
	switch a {
	case pm.Start:
		return 0
	case pm.End:
		return 2
	default:
		return 1
	}
}

// Edges returns the edges in deterministic order (by from-node, then
// to-node, following the same ranking as Nodes).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return nodeLess(out[i].From, out[j].From)
		}
		return nodeLess(out[i].To, out[j].To)
	})
	return out
}

// OutEdges returns the edges leaving a, in deterministic order.
func (g *Graph) OutEdges(a pm.Activity) []Edge {
	var out []Edge
	for e := range g.edges {
		if e.From == a {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return nodeLess(out[i].To, out[j].To) })
	return out
}

// InEdges returns the edges entering a, in deterministic order.
func (g *Graph) InEdges(a pm.Activity) []Edge {
	var out []Edge
	for e := range g.edges {
		if e.To == a {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return nodeLess(out[i].From, out[j].From) })
	return out
}

// OutWeight returns the summed counts of edges leaving a; InWeight the
// summed counts of edges entering a. With endpoint-augmented traces both
// equal NodeCount(a) for every non-virtual activity (flow conservation),
// an invariant the tests rely on.
func (g *Graph) OutWeight(a pm.Activity) int {
	n := 0
	for e, c := range g.edges {
		if e.From == a {
			n += c
		}
	}
	return n
}

// InWeight returns the summed counts of edges entering a.
func (g *Graph) InWeight(a pm.Activity) int {
	n := 0
	for e, c := range g.edges {
		if e.To == a {
			n += c
		}
	}
	return n
}

// TotalEdgeCount returns the sum of all edge observation counts.
func (g *Graph) TotalEdgeCount() int {
	n := 0
	for _, c := range g.edges {
		n += c
	}
	return n
}

// Equal reports whether two graphs have identical node and edge sets with
// identical counts.
func (g *Graph) Equal(o *Graph) bool {
	if len(g.nodes) != len(o.nodes) || len(g.edges) != len(o.edges) {
		return false
	}
	for a, c := range g.nodes {
		if o.nodes[a] != c {
			return false
		}
	}
	for e, c := range g.edges {
		if o.edges[e] != c {
			return false
		}
	}
	return true
}

// String renders a deterministic adjacency summary, useful in error
// messages and golden tests.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DFG: %d nodes, %d edges, %d traces\n", g.NumNodes(), g.NumEdges(), g.traces)
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %s → %s [%d]\n", e.From, e.To, g.edges[e])
	}
	return b.String()
}
