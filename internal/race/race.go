//go:build !race

// Package race reports whether the race detector is active, so
// allocation-budget tests can skip themselves: the detector's shadow
// memory and instrumented allocations make allocs-per-op meaningless.
package race

// Enabled is true when the binary was built with -race.
const Enabled = false
