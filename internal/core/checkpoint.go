package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"stinspector/internal/pm"
	"stinspector/internal/snapshot"
	"stinspector/internal/source"
	"stinspector/internal/trace"
)

// DefaultCheckpointName is the snapshot filename used when
// CheckpointOptions.Name is empty.
const DefaultCheckpointName = "checkpoint.sts"

// CheckpointOptions configures a durable analysis fold.
type CheckpointOptions struct {
	// Dir is the checkpoint directory (created if missing). Required.
	Dir string
	// Name is the snapshot filename within Dir; empty means
	// DefaultCheckpointName.
	Name string
	// Every bounds how many cases are folded between checkpoint writes;
	// <= 0 writes a single snapshot after the full fold.
	Every int
	// Resume loads an existing snapshot from Dir first and folds only
	// the cases it has not seen. A missing snapshot file is a fresh
	// start, not an error.
	Resume bool
	// OnEpoch, when set, is called after each successful checkpoint
	// write with the total number of cases the checkpoint now covers.
	// It runs on the fold goroutine: long-lived callers (the serving
	// layer's watchdog) should only record progress here, not block.
	OnEpoch func(cases int)
}

func (o *CheckpointOptions) path() string {
	name := o.Name
	if name == "" {
		name = DefaultCheckpointName
	}
	return filepath.Join(o.Dir, name)
}

// AnalyzeStreamCheckpointed is AnalyzeStreamParallel made durable: the
// fold proceeds in epochs of at most opts.Every cases, and after each
// epoch the accumulated pre-Finalize state — aggregates plus the folded
// CaseID set — is written atomically to the checkpoint file, so a crash
// loses at most one epoch of work. With opts.Resume the fold first
// loads the checkpoint and skips every case it already covers.
//
// Because every aggregate merge is exact and the epoch boundaries fall
// on the same deterministic stream positions whatever the crash/resume
// history, the final artifacts — and the final checkpoint bytes — are
// identical to an uninterrupted AnalyzeStreamParallel run at any shard
// count. shards and joinErrors as in AnalyzeStreamParallel; the source
// is not closed.
func AnalyzeStreamCheckpointed(src source.Source, m pm.Mapping, shards int, joinErrors bool, opts CheckpointOptions) (*StreamResult, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("core: checkpoint directory not set")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	path := opts.path()

	var acc *snapshot.Snapshot
	feed := src
	if opts.Resume {
		prev, err := snapshot.ReadFile(path, m)
		switch {
		case err == nil:
			acc = prev
			seen := make(map[trace.CaseID]bool, len(prev.Seen))
			for _, id := range prev.Seen {
				seen[id] = true
			}
			feed = source.FilterCases(src, func(c *trace.Case) bool { return !seen[c.ID] })
		case errors.Is(err, os.ErrNotExist):
			// Fresh start.
		default:
			return nil, err
		}
	}

	limited := &limitSource{src: feed, every: opts.Every}
	var errs []error
	for {
		limited.reset()
		epoch, err := foldEpoch(limited, m, shards, joinErrors)
		if err != nil {
			if !joinErrors {
				return nil, err
			}
			errs = append(errs, err)
		}
		acc = snapshot.Merge(acc, epoch)
		if err := snapshot.WriteFile(path, acc); err != nil {
			return nil, err
		}
		if opts.OnEpoch != nil {
			opts.OnEpoch(len(acc.Seen))
		}
		if limited.eof {
			break
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	res := resultFromSnapshot(acc)
	res.PeakResident = source.PeakResident(src)
	return res, nil
}

// AnalyzeStreamSnapshot folds the source like AnalyzeStreamParallel but
// returns the pre-Finalize state as a snapshot instead of finalized
// artifacts — the building block for multi-process fold sharding: each
// process folds its slice of the corpus, writes the snapshot, and the
// files merge (MergeSnapshotFiles, `stinspect -merge-snapshots`) into
// exactly the single-process result. The source is not closed.
func AnalyzeStreamSnapshot(src source.Source, m pm.Mapping, shards int, joinErrors bool) (*snapshot.Snapshot, error) {
	return foldEpoch(src, m, shards, joinErrors)
}

// MergeSnapshotFiles loads snapshot files written by separate fold
// processes, merges them exactly, and finalizes the combined artifacts.
// For snapshots covering a disjoint partition of one corpus the result
// is byte-identical to a single AnalyzeStreamParallel run over the
// whole corpus.
func MergeSnapshotFiles(m pm.Mapping, paths ...string) (*StreamResult, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("core: no snapshot files to merge")
	}
	snaps := make([]*snapshot.Snapshot, len(paths))
	for i, p := range paths {
		s, err := snapshot.ReadFile(p, m)
		if err != nil {
			return nil, fmt.Errorf("merge %s: %w", p, err)
		}
		snaps[i] = s
	}
	return resultFromSnapshot(snapshot.Merge(snaps...)), nil
}

// resultFromSnapshot finalizes a snapshot's aggregates into the
// artifacts AnalyzeStreamParallel reports. The snapshot's statistics
// computer is consumed.
func resultFromSnapshot(s *snapshot.Snapshot) *StreamResult {
	res := &StreamResult{
		ActivityLog: s.Log,
		DFG:         s.DFG,
		Behavior:    s.Behavior,
		Cases:       s.Cases,
		Events:      s.Events,
		Symbols:     s.Stats.Symbols(),
	}
	res.Stats = s.Stats.Finalize()
	return res
}

// foldEpoch runs one sharded fold over the (possibly budgeted) source
// and captures the resulting partial state as a snapshot. It is the
// shared core of the checkpointed fold and the snapshot-producing one:
// the same shardPartial machinery as AnalyzeStreamParallel, with the
// per-shard folded CaseIDs collected alongside the aggregates.
func foldEpoch(src source.Source, m pm.Mapping, shards int, joinErrors bool) (*snapshot.Snapshot, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	parts := make([]*shardPartial, shards)
	seenByShard := make([][]trace.CaseID, shards)
	for i := range parts {
		parts[i] = newShardPartial(m)
	}
	err := source.ShardedFold(src, shards, 0, joinErrors, func(shard int, c *trace.Case) error {
		seenByShard[shard] = append(seenByShard[shard], c.ID)
		return parts[shard].fold(c)
	})
	if err != nil {
		return nil, err
	}
	s := &snapshot.Snapshot{}
	for _, p := range parts {
		s.Cases += p.cases
		s.Events += p.evs
	}
	for _, ids := range seenByShard {
		s.Seen = append(s.Seen, ids...)
	}
	// Each shard's list is ascending (round-robin over an ascending
	// stream); the combined set sorts into the canonical order.
	sort.Slice(s.Seen, func(i, j int) bool { return s.Seen[i].Less(s.Seen[j]) })
	run := parts[0]
	for _, p := range parts[1:] {
		p.mergeInto(run)
	}
	s.Log = run.pmB.Finalize()
	s.DFG = run.dfgB.Finalize()
	s.Stats = run.stC
	s.Behavior = run.bh
	return s, nil
}

// limitSource feeds at most every cases per epoch from the wrapped
// source, reporting io.EOF at the budget boundary; reset re-arms it for
// the next epoch. every <= 0 means unbudgeted (one epoch drains the
// stream). Per-case errors pass through without consuming budget, so an
// epoch's case count is exact whatever the error policy. eof records
// whether the underlying stream is truly exhausted.
type limitSource struct {
	src    source.Source
	every  int
	budget int
	eof    bool
}

func (s *limitSource) reset() { s.budget = s.every }

func (s *limitSource) Next() (*trace.Case, error) {
	if s.eof || (s.every > 0 && s.budget <= 0) {
		return nil, io.EOF
	}
	c, err := s.src.Next()
	if err == io.EOF {
		s.eof = true
		return nil, io.EOF
	}
	if err != nil {
		return nil, err
	}
	if s.every > 0 {
		s.budget--
	}
	return c, nil
}

// Close is a no-op: the checkpoint engine borrows the caller's source.
func (s *limitSource) Close() error { return nil }
