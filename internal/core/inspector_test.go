package core

import (
	"path/filepath"
	"strings"
	"testing"

	"stinspector/internal/dfg"
	"stinspector/internal/lssim"
	"stinspector/internal/pm"
	"stinspector/internal/render"
	"stinspector/internal/strace"
	"stinspector/internal/trace"
)

func demoInspector() *Inspector {
	_, _, cx := lssim.Both(lssim.Config{})
	return FromEventLog(cx)
}

func TestPipelineFig6(t *testing.T) {
	in := demoInspector()

	// Step 1: filter to /usr/lib.
	filtered := in.FilterPath("/usr/lib")
	if filtered.EventLog().NumEvents() != 18 {
		t.Errorf("filtered events = %d, want 18", filtered.EventLog().NumEvents())
	}
	// The original inspector is untouched.
	if in.EventLog().NumEvents() != 75 {
		t.Errorf("original mutated: %d", in.EventLog().NumEvents())
	}

	// Step 2: mapping at file granularity (Figure 4).
	fileView := filtered.WithMapping(pm.CallFileName{Keep: 2})
	g := fileView.DFG()
	wantNodes := []pm.Activity{
		"read:x86_64-linux-gnu/libselinux.so.1",
		"read:x86_64-linux-gnu/libc.so.6",
		"read:x86_64-linux-gnu/libpcre2-8.so.0.10.4",
	}
	for _, a := range wantNodes {
		if !g.HasNode(a) {
			t.Errorf("Figure 4 node %s missing", a)
		}
	}
	// Fig 4: the three library reads form a chain, each edge count 6.
	e := dfg.Edge{From: wantNodes[0], To: wantNodes[1]}
	if g.EdgeCount(e) != 6 {
		t.Errorf("edge %s = %d, want 6", e, g.EdgeCount(e))
	}

	// Steps 3-5: DFG, stats, render.
	st := in.Stats()
	if st.Get("read:/usr/lib") == nil {
		t.Fatalf("stats missing")
	}
	dot := in.RenderDOT(render.StatisticsColoring{Stats: st})
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "fillcolor") {
		t.Errorf("dot output broken")
	}
	txt := in.RenderText()
	if !strings.Contains(txt, "read:/usr/lib") {
		t.Errorf("text output broken")
	}
}

func TestPartitionByCID(t *testing.T) {
	in := demoInspector()
	full, p := in.PartitionByCID("a")
	if p.Node("read:/etc/passwd") != dfg.Red {
		t.Errorf("passwd class = %v, want red", p.Node("read:/etc/passwd"))
	}
	if p.Node("read:/usr/lib") != dfg.Shared {
		t.Errorf("usr/lib class = %v, want shared", p.Node("read:/usr/lib"))
	}
	green, _, _ := p.CountNodes()
	if green != 0 {
		t.Errorf("green nodes = %d, want 0", green)
	}
	if !full.HasEdge(dfg.Edge{From: "read:/etc/locale.alias", To: "write:/dev/pts"}) {
		t.Errorf("full graph missing the ls-exclusive edge")
	}
}

func TestArchiveRoundTripThroughInspector(t *testing.T) {
	in := demoInspector()
	path := filepath.Join(t.TempDir(), "cx.sta")
	if err := in.SaveArchive(path); err != nil {
		t.Fatalf("SaveArchive: %v", err)
	}
	back, err := FromArchive(path)
	if err != nil {
		t.Fatalf("FromArchive: %v", err)
	}
	if !back.DFG().Equal(in.DFG()) {
		t.Errorf("DFG changed across archive round trip")
	}
}

func TestStraceDirIngestion(t *testing.T) {
	// Write the ls example as strace text files, read them back via
	// the full parser path, and verify the DFG is identical to the
	// direct path.
	_, _, cx := lssim.Both(lssim.Config{})
	dir := t.TempDir()
	if err := strace.WriteDir(dir, cx); err != nil {
		t.Fatalf("WriteDir: %v", err)
	}
	in, err := FromStraceDir(dir, strace.Options{Strict: true})
	if err != nil {
		t.Fatalf("FromStraceDir: %v", err)
	}
	want := FromEventLog(cx)
	if !in.DFG().Equal(want.DFG()) {
		t.Errorf("strace round trip changed the DFG:\ngot %s\nwant %s", in.DFG(), want.DFG())
	}
}

func TestFilterCalls(t *testing.T) {
	in := demoInspector().FilterCalls("write")
	acts := in.Stats().Activities()
	if len(acts) != 1 || acts[0] != "write:/dev/pts" {
		t.Errorf("activities = %v", acts)
	}
}

func TestTimeline(t *testing.T) {
	in := demoInspector()
	tl := in.Timeline("read:/usr/lib")
	if len(tl) != 18 {
		t.Errorf("timeline = %d intervals, want 18", len(tl))
	}
}

func TestSummary(t *testing.T) {
	s := demoInspector().Summary()
	if !strings.Contains(s, "6 cases") || !strings.Contains(s, "75 events") {
		t.Errorf("summary = %q", s)
	}
}

func TestImmutability(t *testing.T) {
	in := demoInspector()
	el := in.EventLog()
	_ = in.FilterPath("/usr")
	_ = in.WithMapping(pm.CallFileName{})
	if in.EventLog() != el {
		t.Errorf("derivations mutated the receiver")
	}
	var _ = trace.CaseID{} // keep import for clarity of the test's domain
}
