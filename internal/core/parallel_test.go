package core

import (
	"path/filepath"
	"testing"

	"stinspector/internal/strace"
	"stinspector/internal/synth"
	"stinspector/internal/trace"
)

// writeTraceDir renders a synthetic multi-rank event-log as a directory
// of per-rank .st files.
func writeTraceDir(t *testing.T, nFiles, perFile int) (string, *trace.EventLog) {
	t.Helper()
	log := synth.Log("core", nFiles, perFile, 11)
	dir := t.TempDir()
	if err := strace.WriteDir(dir, log); err != nil {
		t.Fatal(err)
	}
	return dir, log
}

// TestFromStraceDirParallelEquivalence: the full facade pipeline (parse,
// map, DFG, stats, render) must be bit-identical whatever the ingestion
// parallelism.
func TestFromStraceDirParallelEquivalence(t *testing.T) {
	dir, want := writeTraceDir(t, 23, 40)
	seq, err := FromStraceDir(dir, strace.Options{Strict: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.EventLog().NumEvents() != want.NumEvents() {
		t.Fatalf("sequential ingest: got %d events, want %d", seq.EventLog().NumEvents(), want.NumEvents())
	}
	for _, p := range []int{0, 2, 8} {
		par, err := FromStraceDir(dir, strace.Options{Strict: true, Parallelism: p})
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", p, err)
		}
		if got, wantTxt := par.RenderText(), seq.RenderText(); got != wantTxt {
			t.Errorf("Parallelism=%d: rendered DFG differs from sequential", p)
		}
		if got, wantSum := par.Summary(), seq.Summary(); got != wantSum {
			t.Errorf("Parallelism=%d: summary %q, want %q", p, got, wantSum)
		}
	}
}

// TestFromArchiveParallelEquivalence: the archive decode path is
// deterministic under concurrency too.
func TestFromArchiveParallelEquivalence(t *testing.T) {
	dir, _ := writeTraceDir(t, 12, 30)
	seq, err := FromStraceDir(dir, strace.Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "log.sta")
	if err := seq.SaveArchive(path); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 1, 8} {
		in, err := FromArchiveParallel(path, p)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", p, err)
		}
		if got, want := in.RenderText(), seq.RenderText(); got != want {
			t.Errorf("parallelism=%d: rendered DFG differs from source log", p)
		}
	}
}
