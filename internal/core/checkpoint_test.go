package core

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"stinspector/internal/pm"
	"stinspector/internal/snapshot"
	"stinspector/internal/source"
	"stinspector/internal/synth"
	"stinspector/internal/trace"
)

// prefixSource delivers the first n cases of a log then EOF — the test
// stand-in for a process killed partway through its stream.
type prefixSource struct {
	cases []*trace.Case
	next  int
}

func (s *prefixSource) Next() (*trace.Case, error) {
	if s.next >= len(s.cases) {
		return nil, io.EOF
	}
	c := s.cases[s.next]
	s.next++
	return c, nil
}

func (s *prefixSource) Close() error { return nil }

func prefix(el *trace.EventLog, n int) source.Source {
	return &prefixSource{cases: el.Cases()[:n]}
}

// The checkpointed fold is AnalyzeStreamParallel with durability bolted
// on: whatever the epoch size and shard count, the artifacts are
// byte-identical to the plain fold, and the checkpoint file on disk is
// a readable snapshot of the complete run.
func TestCheckpointedMatchesPlain(t *testing.T) {
	el := synth.Log("ckpt", 37, 60, 20240924)
	m := pm.CallTopDirs{Depth: 2}
	plain, err := AnalyzeStream(source.FromLog(el), m, true)
	if err != nil {
		t.Fatal(err)
	}
	want := streamArtifacts(plain)
	for _, every := range []int{0, 1, 7, 1000} {
		for _, shards := range []int{1, 4} {
			dir := t.TempDir()
			res, err := AnalyzeStreamCheckpointed(source.FromLog(el), m, shards, true,
				CheckpointOptions{Dir: dir, Every: every})
			if err != nil {
				t.Fatalf("every=%d shards=%d: %v", every, shards, err)
			}
			if got := streamArtifacts(res); got != want {
				t.Errorf("every=%d shards=%d: artifacts differ from plain fold", every, shards)
			}
			s, err := snapshot.ReadFile(filepath.Join(dir, DefaultCheckpointName), m)
			if err != nil {
				t.Fatalf("every=%d shards=%d: checkpoint unreadable: %v", every, shards, err)
			}
			if s.Cases != el.NumCases() || len(s.Seen) != el.NumCases() {
				t.Errorf("every=%d shards=%d: checkpoint covers %d cases / %d ids, want %d",
					every, shards, s.Cases, len(s.Seen), el.NumCases())
			}
		}
	}
}

// Kill-and-resume reproduces the uninterrupted run exactly: a fold
// killed after k cases and resumed over the full stream yields the same
// artifacts and the same final checkpoint bytes, at aligned and
// unaligned kill points alike — the merge laws are exact under any
// contiguous partition of the stream.
func TestCheckpointKillAndResume(t *testing.T) {
	el := synth.Log("ckpt", 41, 55, 7)
	m := pm.CallTopDirs{Depth: 2}
	const every = 8

	ref := t.TempDir()
	full, err := AnalyzeStreamCheckpointed(source.FromLog(el), m, 4, true,
		CheckpointOptions{Dir: ref, Every: every})
	if err != nil {
		t.Fatal(err)
	}
	want := streamArtifacts(full)
	wantBytes, err := os.ReadFile(filepath.Join(ref, DefaultCheckpointName))
	if err != nil {
		t.Fatal(err)
	}

	for _, kill := range []int{8, 16, 40, 13, 1} { // boundary-aligned and not
		dir := t.TempDir()
		opts := CheckpointOptions{Dir: dir, Every: every}
		if _, err := AnalyzeStreamCheckpointed(prefix(el, kill), m, 4, true, opts); err != nil {
			t.Fatalf("kill=%d partial run: %v", kill, err)
		}
		opts.Resume = true
		res, err := AnalyzeStreamCheckpointed(source.FromLog(el), m, 4, true, opts)
		if err != nil {
			t.Fatalf("kill=%d resume: %v", kill, err)
		}
		if got := streamArtifacts(res); got != want {
			t.Errorf("kill=%d: resumed artifacts differ from uninterrupted run", kill)
		}
		gotBytes, err := os.ReadFile(filepath.Join(dir, DefaultCheckpointName))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Errorf("kill=%d: final checkpoint bytes differ from uninterrupted run", kill)
		}
	}
}

// Resuming a checkpoint that already covers the whole stream folds
// nothing and reports the complete result unchanged.
func TestCheckpointResumeCompleteIsNoOp(t *testing.T) {
	el := synth.Log("ckpt", 12, 30, 3)
	m := pm.CallTopDirs{Depth: 2}
	dir := t.TempDir()
	opts := CheckpointOptions{Dir: dir, Every: 5}
	first, err := AnalyzeStreamCheckpointed(source.FromLog(el), m, 2, true, opts)
	if err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(dir, DefaultCheckpointName))
	if err != nil {
		t.Fatal(err)
	}
	opts.Resume = true
	again, err := AnalyzeStreamCheckpointed(source.FromLog(el), m, 2, true, opts)
	if err != nil {
		t.Fatal(err)
	}
	if streamArtifacts(again) != streamArtifacts(first) {
		t.Error("no-op resume changed the artifacts")
	}
	after, err := os.ReadFile(filepath.Join(dir, DefaultCheckpointName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("no-op resume changed the checkpoint bytes")
	}
}

// An empty stream still produces a checkpoint and the same result shape
// as the plain fold (endpoint symbols included).
func TestCheckpointEmptyStream(t *testing.T) {
	el := synth.Log("ckpt", 5, 10, 1)
	m := pm.CallTopDirs{Depth: 2}
	plain, err := AnalyzeStream(prefix(el, 0), m, true)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	res, err := AnalyzeStreamCheckpointed(prefix(el, 0), m, 2, true,
		CheckpointOptions{Dir: dir, Every: 4})
	if err != nil {
		t.Fatal(err)
	}
	if streamArtifacts(res) != streamArtifacts(plain) {
		t.Error("empty-stream artifacts differ from plain fold")
	}
	if res.Symbols != plain.Symbols {
		t.Errorf("Symbols = %d, want %d", res.Symbols, plain.Symbols)
	}
	if _, err := os.Stat(filepath.Join(dir, DefaultCheckpointName)); err != nil {
		t.Errorf("empty-stream run wrote no checkpoint: %v", err)
	}
}

func TestCheckpointRequiresDir(t *testing.T) {
	el := synth.Log("ckpt", 2, 10, 1)
	if _, err := AnalyzeStreamCheckpointed(source.FromLog(el), pm.CallTopDirs{Depth: 2}, 1, true,
		CheckpointOptions{}); err == nil {
		t.Error("empty Dir accepted")
	}
}

// Snapshot files from independent fold processes over a disjoint
// partition merge into exactly the single-process result.
func TestMergeSnapshotFiles(t *testing.T) {
	el := synth.Log("ckpt", 30, 45, 11)
	m := pm.CallTopDirs{Depth: 2}
	plain, err := AnalyzeStream(source.FromLog(el), m, true)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var paths []string
	bounds := []int{0, 11, 19, 30}
	for i := 0; i+1 < len(bounds); i++ {
		src := &prefixSource{cases: el.Cases()[bounds[i]:bounds[i+1]]}
		s, err := AnalyzeStreamSnapshot(src, m, 3, true)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, "part"+string(rune('0'+i))+".sts")
		if err := snapshot.WriteFile(p, s); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	merged, err := MergeSnapshotFiles(m, paths...)
	if err != nil {
		t.Fatal(err)
	}
	if streamArtifacts(merged) != streamArtifacts(plain) {
		t.Error("merged shard snapshots differ from the single-process fold")
	}
	if _, err := MergeSnapshotFiles(m); err == nil {
		t.Error("MergeSnapshotFiles with no paths accepted")
	}
}
