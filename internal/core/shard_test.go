package core

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"stinspector/internal/pm"
	"stinspector/internal/race"
	"stinspector/internal/render"
	"stinspector/internal/source"
	"stinspector/internal/stats"
	"stinspector/internal/synth"
	"stinspector/internal/trace"
)

// shardCounts are the shard settings the equivalence properties must
// hold at: sequential, a fixed mid-size, and whatever this machine has.
func shardCounts() []int {
	out := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		out = append(out, p)
	}
	return out
}

// streamArtifacts serializes everything a StreamResult carries — the
// activity-log variant by variant (case lists included), the DFG, and
// the statistics with floats at full precision — so byte-identity here
// means byte-identity of every downstream artifact.
func streamArtifacts(res *StreamResult) string {
	var b strings.Builder
	l := res.ActivityLog
	fmt.Fprintf(&b, "log traces=%d variants=%d mapped=%d unmapped=%d\n",
		l.NumTraces(), l.NumVariants(), l.MappedEvents(), l.UnmappedEvents())
	for _, v := range l.Variants() {
		fmt.Fprintf(&b, "  %d× %s %v\n", v.Mult, v.Seq, v.Cases)
	}
	b.WriteString(render.RenderText(res.DFG, res.Stats, nil))
	for _, a := range res.Stats.Activities() {
		s := res.Stats.Get(a)
		fmt.Fprintf(&b, "%s events=%d totaldur=%d reldur=%s bytes=%d/%v procrate=%s maxconc=%d\n",
			a, s.Events, int64(s.TotalDur),
			strconv.FormatFloat(s.RelDur, 'g', -1, 64),
			s.Bytes, s.HasBytes,
			strconv.FormatFloat(s.ProcRate, 'g', -1, 64),
			s.MaxConc)
	}
	fmt.Fprintf(&b, "cases=%d events=%d\n", res.Cases, res.Events)
	return b.String()
}

// TestAnalyzeStreamParallelEquivalence is the tentpole law at the core
// layer: every shard count produces byte-identical artifacts to the
// sequential fold.
func TestAnalyzeStreamParallelEquivalence(t *testing.T) {
	el := synth.Log("shard", 53, 120, 20240924)
	m := pm.CallTopDirs{Depth: 2}
	seq, err := AnalyzeStream(source.FromLog(el), m, true)
	if err != nil {
		t.Fatal(err)
	}
	want := streamArtifacts(seq)
	for _, shards := range shardCounts() {
		res, err := AnalyzeStreamParallel(source.FromLog(el), m, shards, true)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := streamArtifacts(res); got != want {
			t.Errorf("shards=%d: artifacts differ from sequential fold", shards)
		}
	}
}

// errSource fails at fixed positions, for the error-policy checks.
type errSource struct {
	cases []*trace.Case
	fail  map[int]bool
	next  int
}

func (s *errSource) Next() (*trace.Case, error) {
	if s.next >= len(s.cases) {
		return nil, io.EOF
	}
	i := s.next
	s.next++
	if s.fail[i] {
		return nil, fmt.Errorf("case %d unreadable", i)
	}
	return s.cases[i], nil
}

func (s *errSource) Close() error { return nil }

// TestAnalyzeStreamParallelErrorPolicies: joinErrors skips failures,
// folds the rest and joins every failure; fail-fast aborts on the
// earliest one — at every shard count.
func TestAnalyzeStreamParallelErrorPolicies(t *testing.T) {
	el := synth.Log("err", 12, 20, 3)
	for _, shards := range shardCounts() {
		src := &errSource{cases: el.Cases(), fail: map[int]bool{3: true, 9: true}}
		res, err := AnalyzeStreamParallel(src, pm.CallTopDirs{Depth: 2}, shards, true)
		if err == nil || !strings.Contains(err.Error(), "case 3 unreadable") || !strings.Contains(err.Error(), "case 9 unreadable") {
			t.Errorf("shards=%d: joined error = %v", shards, err)
		}
		if res != nil {
			t.Errorf("shards=%d: result despite errors", shards)
		}
		src = &errSource{cases: el.Cases(), fail: map[int]bool{5: true}}
		_, err = AnalyzeStreamParallel(src, pm.CallTopDirs{Depth: 2}, shards, false)
		if err == nil || !strings.Contains(err.Error(), "case 5 unreadable") {
			t.Errorf("shards=%d: fail-fast error = %v", shards, err)
		}
	}
}

// TestAnalyzeParallelSpeedup encodes the analysis layer's performance
// goal, the analysis counterpart of TestReadDirParallelSpeedup: on a
// machine with at least 4 cores, the sharded fold over an
// already-materialized log (no parsing in the loop) must be at least 2x
// faster than the sequential fold. Fewer cores, or -short, skip.
func TestAnalyzeParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for the speedup gate, have %d", runtime.NumCPU())
	}
	el := synth.Log("speed", 96, 2500, 7)
	m := pm.CallTopDirs{Depth: 2}
	run := func(shards int) time.Duration {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 5; i++ {
			src := source.FromLog(el)
			start := time.Now()
			res, err := AnalyzeStreamParallel(src, m, shards, true)
			if err != nil {
				t.Fatal(err)
			}
			if res.Events != el.NumEvents() {
				t.Fatalf("lost events: got %d, want %d", res.Events, el.NumEvents())
			}
			if d := time.Since(start); d < best {
				best = d
			}
			src.Close()
		}
		return best
	}
	run(0) // warm up
	checkAnalyzeAllocBudget(t, el, m)
	seq := run(1)
	par := run(0)
	speedup := seq.Seconds() / par.Seconds()
	t.Logf("sequential fold %v, sharded fold %v (%d cores): %.2fx", seq, par, runtime.NumCPU(), speedup)
	if speedup < 2 {
		t.Errorf("sharded analysis speedup %.2fx, want >= 2x on %d cores", speedup, runtime.NumCPU())
	}
}

// TestAnalyzeAllocBudget runs the allocation gate standalone, so
// single-core machines (where the speedup harness skips) still enforce
// it, over a smaller log to stay cheap.
func TestAnalyzeAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	el := synth.Log("allocb", 48, 2000, 11)
	m := pm.CallTopDirs{Depth: 2}
	// Warm: table growth, pool population.
	src := source.FromLog(el)
	if _, err := AnalyzeStreamParallel(src, m, 1, true); err != nil {
		t.Fatal(err)
	}
	src.Close()
	checkAnalyzeAllocBudget(t, el, m)
}

// checkAnalyzeAllocBudget is the analysis-side allocation-regression
// gate of the symbol-interning refactor, run inside the speedup
// harness so both sit over the same 240k-event log: the sequential
// fold must stay under a fixed allocations-per-event ceiling. The
// string-keyed builders sat near 2 allocs/event (MakeActivity concat,
// variant keys, the interface-boxing max-concurrency heap); the
// symbolized fold runs near 0.01. The ceiling of 0.25 keeps two
// orders of magnitude of headroom over today's cost while catching any
// per-event allocation sneaking back into the hot loop. Skipped under
// -race (instrumented allocator).
func checkAnalyzeAllocBudget(t *testing.T, el *trace.EventLog, m pm.Mapping) {
	t.Helper()
	checkAnalyzeAllocBudgetCeiling(t, el, m, 0.25)
}

// checkAnalyzeAllocBudgetCeiling is the gate with an explicit ceiling,
// for inputs whose inherent per-run cost differs from the friendly
// shape (an unbounded path vocabulary pays first-sight interning into
// the run's own symbol table on every run, by design).
func checkAnalyzeAllocBudgetCeiling(t *testing.T, el *trace.EventLog, m pm.Mapping, ceiling float64) {
	t.Helper()
	if race.Enabled {
		t.Log("allocation budget skipped under -race")
		return
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	src := source.FromLog(el)
	res, err := AnalyzeStreamParallel(src, m, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	src.Close()
	runtime.ReadMemStats(&m1)
	if res.Events != el.NumEvents() {
		t.Fatalf("lost events: got %d, want %d", res.Events, el.NumEvents())
	}
	perEvent := float64(m1.Mallocs-m0.Mallocs) / float64(el.NumEvents())
	t.Logf("sequential analysis fold: %d allocs for %d events = %.4f allocs/event",
		m1.Mallocs-m0.Mallocs, el.NumEvents(), perEvent)
	if perEvent > ceiling {
		t.Errorf("analysis allocs/event = %.4f, budget %.2f — the zero-alloc fold regressed", perEvent, ceiling)
	}
}

// TestAnalyzeStreamMatchesInMemoryStats is a spot check that the
// exact-integer rate refactor kept the streaming and in-memory paths
// agreeing (the root-level equivalence suite covers this exhaustively;
// this keeps the property visible next to the implementation).
func TestAnalyzeStreamMatchesInMemoryStats(t *testing.T) {
	el := synth.Log("mem", 9, 50, 5)
	m := pm.CallTopDirs{Depth: 2}
	res, err := AnalyzeStream(source.FromLog(el), m, false)
	if err != nil {
		t.Fatal(err)
	}
	want := stats.Compute(el, m)
	for _, a := range want.Activities() {
		ws, gs := want.Get(a), res.Stats.Get(a)
		if gs == nil || ws.ProcRate != gs.ProcRate || ws.RelDur != gs.RelDur || ws.MaxConc != gs.MaxConc {
			t.Errorf("activity %s: stream %+v, in-memory %+v", a, gs, ws)
		}
	}
}
