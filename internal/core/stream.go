package core

import (
	"runtime"

	"stinspector/internal/behavior"
	"stinspector/internal/dfg"
	"stinspector/internal/intern"
	"stinspector/internal/pm"
	"stinspector/internal/source"
	"stinspector/internal/stats"
	"stinspector/internal/trace"
)

// StreamResult bundles the synthesis artifacts of one bounded-memory
// pass over a case source: the activity-log, the DFG and the Section
// IV-B statistics, plus the ingestion accounting. It is what a
// streaming consumer gets instead of an Inspector — everything
// derivable without random access to the event-log.
type StreamResult struct {
	ActivityLog *pm.Log
	DFG         *dfg.Graph
	Stats       *stats.Stats
	// Behavior is the fourth mergeable aggregate: the per-case and
	// merged behavior profile (files touched, commands executed,
	// endpoints contacted) derived from the semantic decoding layer.
	Behavior *behavior.Profile
	// Cases and Events count what the stream delivered.
	Cases, Events int
	// PeakResident is the maximum number of cases that were loaded but
	// not yet consumed at once (0 if the source does not track it) —
	// the observable behind the O(batch) memory guarantee.
	PeakResident int
	// Symbols counts the distinct activity symbols resident in the
	// run's merged symbol table at finalization — the size of the
	// symbol universe this pass owned. Every run creates that table
	// afresh and drops it with the builders, so the count is a per-run
	// observable (compare intern.Table.Len for the parse-side table a
	// scoped ingestion pass owns).
	Symbols int
}

// AnalyzeStream consumes a case source in a single pass, feeding the
// incremental activity-log, DFG and statistics builders, without the
// event-log ever being materialized: peak memory is the source's
// resident window plus the (much smaller) aggregates. For a source
// delivering CaseID order — all backend streams do — the three
// artifacts are identical to the in-memory pipeline's ActivityLog /
// DFG / Stats, endpoints included.
//
// joinErrors selects the error policy of source.Walk: false aborts on
// the first failing case (lenient ingestion), true skips failing cases
// and returns every failure joined (strace Strict semantics). The
// source is not closed; callers own its lifetime.
//
// AnalyzeStream is the one-shard case of AnalyzeStreamParallel: there
// is exactly one analysis fold in the tree.
func AnalyzeStream(src source.Source, m pm.Mapping, joinErrors bool) (*StreamResult, error) {
	return AnalyzeStreamParallel(src, m, 1, joinErrors)
}

// shardPartial is one shard's builder set: the per-shard state of the
// parallel fold, merged in shard order once the stream is exhausted.
// The three builders share one pm.SymMapper — and therefore one
// shard-local activity symbol table — so every event is mapped exactly
// once and all per-event counting happens on integer keys; the
// shard-local tables are remapped into shard 0's at merge.
type shardPartial struct {
	sm    *pm.SymMapper
	pmB   *pm.Builder
	dfgB  *dfg.Builder
	stC   *stats.Computer
	bh    *behavior.Profile
	syms  []intern.Sym // per-case mapping scratch, reused
	cases int
	evs   int
}

func newShardPartial(m pm.Mapping) *shardPartial {
	sm := pm.NewSymMapper(m)
	return &shardPartial{
		sm:   sm,
		pmB:  pm.NewBuilderSym(sm, pm.BuildOptions{Endpoints: true}),
		dfgB: dfg.NewBuilderSym(sm.Acts()),
		stC:  stats.NewComputerSym(sm),
		bh:   behavior.New(),
	}
}

func (p *shardPartial) fold(c *trace.Case) error {
	p.cases++
	p.evs += len(c.Events)
	p.syms = p.sm.MapCase(c, p.syms[:0])
	if seq, ok := p.pmB.AddMapped(c.ID, p.syms); ok {
		p.dfgB.AddSymVariant(seq, 1)
	}
	p.stC.AddMapped(c, p.syms)
	p.bh.AddCase(c)
	return nil
}

// mergeInto folds p's symbolized partial state into dst, remapping p's
// shard-local symbol tables through dst's.
func (p *shardPartial) mergeInto(dst *shardPartial) {
	dst.pmB.MergeFrom(p.pmB)
	dst.dfgB.MergeFrom(p.dfgB)
	dst.stC.Merge(p.stC)
	dst.bh.Merge(p.bh)
}

// AnalyzeStreamParallel is AnalyzeStream with the analysis fold itself
// sharded: source.ShardedFold round-robins case blocks to shards
// workers, each owning its own builder set over a shard-local symbol
// table, and the shard partials are merged in shard order afterwards —
// the shard tables remapped into shard 0's (itself created fresh for
// this run), the counts folded as integer sums. Because every aggregate merge is exact — integer
// counts and sums, sorted case-list interleaves, a totally-ordered
// max-concurrency sweep, and a symbol remap that preserves strings
// exactly — the result is byte-identical to the sequential fold at
// every shard count; shard count is a pure throughput knob, never
// observable in the artifacts. Only the merged survivor materializes
// activity strings, once, at Finalize.
//
// shards <= 0 means runtime.GOMAXPROCS(0); shards == 1 folds inline
// with no worker goroutines. joinErrors as in AnalyzeStream. The
// source is not closed.
func AnalyzeStreamParallel(src source.Source, m pm.Mapping, shards int, joinErrors bool) (*StreamResult, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	parts := make([]*shardPartial, shards)
	for i := range parts {
		parts[i] = newShardPartial(m)
	}
	err := source.ShardedFold(src, shards, 0, joinErrors, func(shard int, c *trace.Case) error {
		return parts[shard].fold(c)
	})
	if err != nil {
		return nil, err
	}
	res := &StreamResult{}
	for _, p := range parts {
		res.Cases += p.cases
		res.Events += p.evs
	}
	// The run owns its merged symbol universe: shard 0's table — created
	// fresh for this run, like every partial — survives as the merge
	// target, and shards 1..n remap into it in shard order (for one
	// shard there is nothing to merge at all). The remap preserves
	// strings exactly, so the merged assignment — and therefore every
	// artifact — is byte-identical to folding sequentially, and the
	// whole universe dies with the StreamResult.
	run := parts[0]
	for _, p := range parts[1:] {
		p.mergeInto(run)
	}
	res.Symbols = run.sm.Acts().Len()
	res.ActivityLog = run.pmB.Finalize()
	res.DFG = run.dfgB.Finalize()
	res.Stats = run.stC.Finalize()
	res.Behavior = run.bh
	res.PeakResident = source.PeakResident(src)
	return res, nil
}

// LoadStream materializes a case source into an Inspector with the
// default mapping — the in-memory API reconstructed on top of the
// streaming one. joinErrors as in AnalyzeStream. The source is not
// closed.
func LoadStream(src source.Source, joinErrors bool) (*Inspector, error) {
	el, err := source.Drain(src, joinErrors)
	if err != nil {
		return nil, err
	}
	return FromEventLog(el), nil
}
