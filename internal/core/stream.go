package core

import (
	"runtime"

	"stinspector/internal/dfg"
	"stinspector/internal/pm"
	"stinspector/internal/source"
	"stinspector/internal/stats"
	"stinspector/internal/trace"
)

// StreamResult bundles the synthesis artifacts of one bounded-memory
// pass over a case source: the activity-log, the DFG and the Section
// IV-B statistics, plus the ingestion accounting. It is what a
// streaming consumer gets instead of an Inspector — everything
// derivable without random access to the event-log.
type StreamResult struct {
	ActivityLog *pm.Log
	DFG         *dfg.Graph
	Stats       *stats.Stats
	// Cases and Events count what the stream delivered.
	Cases, Events int
	// PeakResident is the maximum number of cases that were loaded but
	// not yet consumed at once (0 if the source does not track it) —
	// the observable behind the O(batch) memory guarantee.
	PeakResident int
}

// AnalyzeStream consumes a case source in a single pass, feeding the
// incremental activity-log, DFG and statistics builders, without the
// event-log ever being materialized: peak memory is the source's
// resident window plus the (much smaller) aggregates. For a source
// delivering CaseID order — all backend streams do — the three
// artifacts are identical to the in-memory pipeline's ActivityLog /
// DFG / Stats, endpoints included.
//
// joinErrors selects the error policy of source.Walk: false aborts on
// the first failing case (lenient ingestion), true skips failing cases
// and returns every failure joined (strace Strict semantics). The
// source is not closed; callers own its lifetime.
//
// AnalyzeStream is the one-shard case of AnalyzeStreamParallel: there
// is exactly one analysis fold in the tree.
func AnalyzeStream(src source.Source, m pm.Mapping, joinErrors bool) (*StreamResult, error) {
	return AnalyzeStreamParallel(src, m, 1, joinErrors)
}

// shardPartial is one shard's builder set: the per-shard state of the
// parallel fold, merged in shard order once the stream is exhausted.
type shardPartial struct {
	pmB   *pm.Builder
	dfgB  *dfg.Builder
	stC   *stats.Computer
	cases int
	evs   int
}

func (p *shardPartial) fold(c *trace.Case) error {
	p.cases++
	p.evs += len(c.Events)
	if seq, ok := p.pmB.Add(c); ok {
		p.dfgB.AddTrace(seq)
	}
	p.stC.Add(c)
	return nil
}

// AnalyzeStreamParallel is AnalyzeStream with the analysis fold itself
// sharded: source.ShardedFold round-robins case blocks to shards
// workers, each owning its own builder set, and the shard partials are
// merged in shard order afterwards. Because every aggregate merge is
// exact — integer counts and sums, sorted case-list interleaves, a
// totally-ordered max-concurrency sweep — the result is byte-identical
// to the sequential fold at every shard count; shard count is a pure
// throughput knob, never observable in the artifacts.
//
// shards <= 0 means runtime.GOMAXPROCS(0); shards == 1 folds inline
// with no worker goroutines. joinErrors as in AnalyzeStream. The
// source is not closed.
func AnalyzeStreamParallel(src source.Source, m pm.Mapping, shards int, joinErrors bool) (*StreamResult, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	parts := make([]*shardPartial, shards)
	for i := range parts {
		parts[i] = &shardPartial{
			pmB:  pm.NewBuilder(m, pm.BuildOptions{Endpoints: true}),
			dfgB: dfg.NewBuilder(),
			stC:  stats.NewComputer(m),
		}
	}
	err := source.ShardedFold(src, shards, 0, joinErrors, func(shard int, c *trace.Case) error {
		return parts[shard].fold(c)
	})
	if err != nil {
		return nil, err
	}
	res := &StreamResult{}
	for _, p := range parts {
		res.Cases += p.cases
		res.Events += p.evs
	}
	if shards == 1 {
		res.ActivityLog = parts[0].pmB.Finalize()
		res.DFG = parts[0].dfgB.Finalize()
		res.Stats = parts[0].stC.Finalize()
	} else {
		logs := make([]*pm.Log, shards)
		graphs := make([]*dfg.Graph, shards)
		comps := make([]*stats.Computer, shards)
		for i, p := range parts {
			logs[i] = p.pmB.Finalize()
			graphs[i] = p.dfgB.Finalize()
			comps[i] = p.stC
		}
		res.ActivityLog = pm.MergeLogs(logs...)
		res.DFG = dfg.Merge(graphs...)
		res.Stats = stats.Merge(comps...)
	}
	res.PeakResident = source.PeakResident(src)
	return res, nil
}

// LoadStream materializes a case source into an Inspector with the
// default mapping — the in-memory API reconstructed on top of the
// streaming one. joinErrors as in AnalyzeStream. The source is not
// closed.
func LoadStream(src source.Source, joinErrors bool) (*Inspector, error) {
	el, err := source.Drain(src, joinErrors)
	if err != nil {
		return nil, err
	}
	return FromEventLog(el), nil
}
