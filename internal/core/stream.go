package core

import (
	"stinspector/internal/dfg"
	"stinspector/internal/pm"
	"stinspector/internal/source"
	"stinspector/internal/stats"
	"stinspector/internal/trace"
)

// StreamResult bundles the synthesis artifacts of one bounded-memory
// pass over a case source: the activity-log, the DFG and the Section
// IV-B statistics, plus the ingestion accounting. It is what a
// streaming consumer gets instead of an Inspector — everything
// derivable without random access to the event-log.
type StreamResult struct {
	ActivityLog *pm.Log
	DFG         *dfg.Graph
	Stats       *stats.Stats
	// Cases and Events count what the stream delivered.
	Cases, Events int
	// PeakResident is the maximum number of cases that were loaded but
	// not yet consumed at once (0 if the source does not track it) —
	// the observable behind the O(batch) memory guarantee.
	PeakResident int
}

// AnalyzeStream consumes a case source in a single pass, feeding the
// incremental activity-log, DFG and statistics builders, without the
// event-log ever being materialized: peak memory is the source's
// resident window plus the (much smaller) aggregates. For a source
// delivering CaseID order — all backend streams do — the three
// artifacts are identical to the in-memory pipeline's ActivityLog /
// DFG / Stats, endpoints included.
//
// joinErrors selects the error policy of source.Walk: false aborts on
// the first failing case (lenient ingestion), true skips failing cases
// and returns every failure joined (strace Strict semantics). The
// source is not closed; callers own its lifetime.
func AnalyzeStream(src source.Source, m pm.Mapping, joinErrors bool) (*StreamResult, error) {
	pmB := pm.NewBuilder(m, pm.BuildOptions{Endpoints: true})
	dfgB := dfg.NewBuilder()
	stC := stats.NewComputer(m)
	res := &StreamResult{}
	err := source.Walk(src, joinErrors, func(c *trace.Case) error {
		res.Cases++
		res.Events += len(c.Events)
		if seq, ok := pmB.Add(c); ok {
			dfgB.AddTrace(seq)
		}
		stC.Add(c)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.ActivityLog = pmB.Finalize()
	res.DFG = dfgB.Finalize()
	res.Stats = stC.Finalize()
	res.PeakResident = source.PeakResident(src)
	return res, nil
}

// LoadStream materializes a case source into an Inspector with the
// default mapping — the in-memory API reconstructed on top of the
// streaming one. joinErrors as in AnalyzeStream. The source is not
// closed.
func LoadStream(src source.Source, joinErrors bool) (*Inspector, error) {
	el, err := source.Drain(src, joinErrors)
	if err != nil {
		return nil, err
	}
	return FromEventLog(el), nil
}
