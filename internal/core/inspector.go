// Package core implements the paper's primary contribution as a pipeline
// facade: loading event-logs (from strace directories or STA archives),
// querying them with file-path filters, abstracting events into
// activities with a mapping, synthesizing the Directly-Follows-Graph,
// computing the activity statistics, and applying the two coloring
// strategies. It mirrors the st_inspector workflow of Figure 6:
//
//	insp, _ := core.FromStraceDir("traces/", strace.Options{})   // 0
//	insp = insp.FilterPath("/usr/lib")                           // 1
//	insp = insp.WithMapping(pm.CallTopDirs{Depth: 2})            // 2
//	g := insp.DFG()                                              // 3
//	st := insp.Stats()                                           // 4
//	dot := insp.RenderDOT(render.StatisticsColoring{Stats: st})  // 5a
package core

import (
	"fmt"
	"io"
	"strings"

	"stinspector/internal/archive"
	"stinspector/internal/behavior"
	"stinspector/internal/dfg"
	"stinspector/internal/dxt"
	"stinspector/internal/intern"
	"stinspector/internal/pm"
	"stinspector/internal/render"
	"stinspector/internal/stats"
	"stinspector/internal/strace"
	"stinspector/internal/trace"
)

// Inspector holds an event-log and the mapping under which it is
// synthesized. Inspectors are immutable: filters and mapping changes
// return derived inspectors, so several views of one log can coexist.
type Inspector struct {
	log     *trace.EventLog
	mapping pm.Mapping
}

// FromEventLog wraps an existing event-log with the default mapping f̂
// (call + top two directory levels, Equation 4).
func FromEventLog(el *trace.EventLog) *Inspector {
	return &Inspector{log: el, mapping: pm.CallTopDirs{Depth: 2}}
}

// FromStraceDir parses every *.st file under dir (Figure 1's recording
// convention) into an event-log. Files are parsed concurrently under
// opts.Parallelism (default GOMAXPROCS) with a deterministic merge.
func FromStraceDir(dir string, opts strace.Options) (*Inspector, error) {
	el, err := strace.ReadDir(dir, opts)
	if err != nil {
		return nil, err
	}
	return FromEventLog(el), nil
}

// FromArchive loads a consolidated STA event-log file (the paper's
// single-HDF5-file stage), decoding case sections concurrently.
func FromArchive(path string) (*Inspector, error) {
	return FromArchiveParallel(path, 0)
}

// FromArchiveParallel is FromArchive with an explicit decode-worker
// bound; 0 means GOMAXPROCS, 1 decodes sequentially.
func FromArchiveParallel(path string, parallelism int) (*Inspector, error) {
	return FromArchiveSyms(path, parallelism, nil)
}

// FromArchiveSyms is FromArchiveParallel decoding through a scoped
// symbol table (nil means intern.Default): the pass owns its symbol
// universe, so dropping the inspector makes the archive's strings
// collectable instead of accumulating in the process-wide table.
func FromArchiveSyms(path string, parallelism int, t *intern.Table) (*Inspector, error) {
	el, err := archive.ReadLogParallelSyms(path, parallelism, t)
	if err != nil {
		return nil, err
	}
	return FromEventLog(el), nil
}

// FromDXT ingests a Darshan DXT text dump (darshan-dxt-parser output),
// demonstrating the paper's remark that the methodology applies to data
// from instrumentation tools other than strace. The cid names the
// resulting cases.
func FromDXT(cid string, r io.Reader) (*Inspector, error) {
	return FromDXTParallel(cid, r, 0)
}

// FromDXTParallel is FromDXT with an explicit worker bound for the
// per-case construction step; 0 means GOMAXPROCS, 1 builds sequentially.
func FromDXTParallel(cid string, r io.Reader, parallelism int) (*Inspector, error) {
	return FromDXTSyms(cid, r, parallelism, nil)
}

// FromDXTSyms is FromDXTParallel canonicalizing the dump's header
// strings through a scoped symbol table (nil means intern.Default).
func FromDXTSyms(cid string, r io.Reader, parallelism int, t *intern.Table) (*Inspector, error) {
	records, err := dxt.ParseSyms(r, t)
	if err != nil {
		return nil, err
	}
	el, err := dxt.ToEventLogParallel(cid, records, parallelism)
	if err != nil {
		return nil, err
	}
	return FromEventLog(el), nil
}

// SaveArchive consolidates the inspector's event-log into an STA file.
func (in *Inspector) SaveArchive(path string) error {
	return archive.WriteFile(path, in.log)
}

// EventLog exposes the underlying event-log.
func (in *Inspector) EventLog() *trace.EventLog { return in.log }

// Mapping exposes the active mapping.
func (in *Inspector) Mapping() pm.Mapping { return in.mapping }

// FilterPath is the paper's apply_fp_filter (Figure 6, step 1): it
// derives an inspector restricted to events whose file path contains the
// substring.
func (in *Inspector) FilterPath(substr string) *Inspector {
	return &Inspector{log: in.log.FilterPath(substr), mapping: in.mapping}
}

// FilterCalls derives an inspector restricted to the given system calls.
func (in *Inspector) FilterCalls(calls ...string) *Inspector {
	return &Inspector{log: in.log.FilterCalls(calls...), mapping: in.mapping}
}

// WithMapping is apply_mapping_fn (Figure 6, step 2): it derives an
// inspector using the given event-to-activity mapping.
func (in *Inspector) WithMapping(m pm.Mapping) *Inspector {
	return &Inspector{log: in.log, mapping: m}
}

// ActivityLog builds L_f(C) with the virtual start/end activities
// appended.
func (in *Inspector) ActivityLog() *pm.Log {
	return pm.Build(in.log, in.mapping, pm.BuildOptions{Endpoints: true})
}

// DFG synthesizes G[L_f(C)] (Figure 6, step 3).
func (in *Inspector) DFG() *dfg.Graph {
	return dfg.Build(in.ActivityLog())
}

// Stats computes the Section IV-B statistics (Figure 6, step 4).
func (in *Inspector) Stats() *stats.Stats {
	return stats.Compute(in.log, in.mapping)
}

// Behavior derives the behavior profile of the event-log: per case and
// merged, the files opened/read/written/deleted/renamed, the commands
// executed and the network endpoints contacted. It is the in-memory
// twin of StreamResult.Behavior and byte-identical to it for the same
// log.
func (in *Inspector) Behavior() *behavior.Profile {
	return behavior.FromLog(in.log)
}

// Timeline returns the Figure 5 interval data of one activity.
func (in *Inspector) Timeline(a pm.Activity) []trace.Interval {
	return stats.Timeline(in.log, in.mapping, a)
}

// Distribution returns the duration distribution of one activity,
// separating bandwidth-bound from contention-bound behaviour.
func (in *Inspector) Distribution(a pm.Activity) (stats.Distribution, bool) {
	return stats.ComputeDistribution(in.log, in.mapping, a)
}

// PerCase returns the per-process contribution to an activity (all
// activities when a is empty), slowest first — the straggler view.
func (in *Inspector) PerCase(a pm.Activity) []stats.CaseSummary {
	return stats.PerCase(in.log, in.mapping, a)
}

// RegroupByPID re-derives cases at process granularity (Section IV's
// SMT/OpenMP remark) and returns a new inspector over the regrouped log.
func (in *Inspector) RegroupByPID() *Inspector {
	return &Inspector{log: in.log.RegroupByPID(), mapping: in.mapping}
}

// Footprint derives the activity-relation matrix of the DFG, a compact
// structural summary whose cell-wise diff localizes behavioural changes
// between configurations.
func (in *Inspector) Footprint() *dfg.Footprint {
	return dfg.NewFootprint(in.DFG())
}

// Partition splits the event-log into mutually exclusive G and R subsets
// by a case predicate and classifies the full DFG's nodes and edges
// (Section IV-C, partition-based coloring). It returns the full graph and
// the classification.
func (in *Inspector) Partition(green func(*trace.Case) bool) (*dfg.Graph, *dfg.Partition) {
	g, r := in.log.Partition(green)
	full := in.DFG()
	gg := (&Inspector{log: g, mapping: in.mapping}).DFG()
	rg := (&Inspector{log: r, mapping: in.mapping}).DFG()
	return full, dfg.Classify(full, gg, rg)
}

// PartitionByCID partitions by command identifier, as in Equation (18).
func (in *Inspector) PartitionByCID(greenCIDs ...string) (*dfg.Graph, *dfg.Partition) {
	set := make(map[string]bool, len(greenCIDs))
	for _, c := range greenCIDs {
		set[c] = true
	}
	return in.Partition(func(c *trace.Case) bool { return set[c.ID.CID] })
}

// RenderDOT renders the DFG as a Graphviz document with the given styler
// (Figure 6, step 5). A nil styler renders uncolored.
func (in *Inspector) RenderDOT(styler render.Styler) string {
	return render.RenderDOT(in.DFG(), in.Stats(), styler)
}

// RenderText renders the DFG as a deterministic text listing.
func (in *Inspector) RenderText() string {
	return render.RenderText(in.DFG(), in.Stats(), nil)
}

// Summary returns a one-line description of the inspector's contents.
func (in *Inspector) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d cases, %d events, calls: %s",
		in.log.NumCases(), in.log.NumEvents(), strings.Join(in.log.CallNames(), ","))
	return b.String()
}
