package core

import (
	"strings"
	"testing"

	"stinspector/internal/dfg"
	"stinspector/internal/strace"
)

func TestInspectorDistribution(t *testing.T) {
	in := demoInspector()
	d, ok := in.Distribution("read:/usr/lib")
	if !ok {
		t.Fatalf("no distribution")
	}
	if d.Events != 18 {
		t.Errorf("events = %d, want 18", d.Events)
	}
	if d.Min <= 0 || d.Max < d.Min || d.P50 < d.Min || d.P50 > d.Max {
		t.Errorf("quantiles inconsistent: %+v", d)
	}
	if _, ok := in.Distribution("no:such"); ok {
		t.Errorf("absent activity produced a distribution")
	}
}

func TestInspectorPerCase(t *testing.T) {
	in := demoInspector()
	rows := in.PerCase("read:/usr/lib")
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].TotalDur > rows[i-1].TotalDur {
			t.Errorf("rows not sorted by descending duration")
		}
	}
	total := 0
	for _, r := range rows {
		total += r.Events
	}
	if total != 18 {
		t.Errorf("per-case events = %d", total)
	}
	// All activities.
	all := in.PerCase("")
	if len(all) != 6 {
		t.Errorf("all rows = %d", len(all))
	}
}

func TestInspectorFootprint(t *testing.T) {
	in := demoInspector()
	fp := in.Footprint()
	if len(fp.Activities) != 8 {
		t.Fatalf("footprint alphabet = %v", fp.Activities)
	}
	if fp.Relation("read:/usr/lib", "read:/proc/filesystems") != dfg.Precedes {
		t.Errorf("relation wrong")
	}
	// Filtering changes the footprint deterministically.
	sub := in.FilterPath("/usr/lib").Footprint()
	if len(sub.Activities) != 1 {
		t.Errorf("filtered alphabet = %v", sub.Activities)
	}
	if s := fp.Similarity(sub); s >= 1 {
		t.Errorf("similarity with filtered view = %v", s)
	}
}

func TestInspectorRegroupByPID(t *testing.T) {
	in := demoInspector()
	re := in.RegroupByPID()
	// Each rid has exactly one pid in the demo: case count unchanged,
	// identities renumbered.
	if re.EventLog().NumCases() != in.EventLog().NumCases() {
		t.Errorf("regrouped cases = %d", re.EventLog().NumCases())
	}
	if re.EventLog().NumEvents() != in.EventLog().NumEvents() {
		t.Errorf("regrouped events = %d", re.EventLog().NumEvents())
	}
	// The DFG is invariant when pid↔rid is a bijection.
	if !re.DFG().Equal(in.DFG()) {
		t.Errorf("bijective regrouping changed the DFG")
	}
}

func TestFromDXTAndErrors(t *testing.T) {
	in, err := FromDXT("j", strings.NewReader(
		"# DXT, file_name: /p/s/f\n# DXT, hostname: h\n X_MPIIO 3 read 0 0 4096 0.001 0.003\n"))
	if err != nil {
		t.Fatal(err)
	}
	if in.EventLog().NumEvents() != 1 {
		t.Errorf("events = %d", in.EventLog().NumEvents())
	}
	if in.Mapping() == nil {
		t.Errorf("Mapping() nil")
	}
	if _, err := FromDXT("j", strings.NewReader("nonsense")); err == nil {
		t.Errorf("bad DXT accepted")
	}
	if _, err := FromStraceDir("/no/such/dir", strace.Options{}); err == nil {
		t.Errorf("missing dir accepted")
	}
	if _, err := FromArchive("/no/such/file.sta"); err == nil {
		t.Errorf("missing archive accepted")
	}
}
