package core

// Analysis-side allocation gate over the adversarial generator
// profiles: TestAnalyzeAllocBudget measures only the friendly synth
// shape, but the fold's per-event costs must also stay pinned when the
// inputs turn hostile. The recorded ceilings differ by what the input
// inherently costs:
//
//   - hostileargs (pathological strings, tiny vocabulary) folds at
//     ~0.06 allocs/event — string content is irrelevant to the
//     symbolized fold, so it shares the friendly shape's 0.25 ceiling.
//   - heavytail (Zipf path vocabulary, ~half the events touch one-off
//     paths) folds at ~0.95 allocs/event: every analysis run owns a
//     fresh scoped symbol table, so an unbounded vocabulary pays
//     first-sight interning per distinct path on every run, by design.
//     That cost is proportional to vocabulary size, not events, and
//     the 1.5 ceiling pins it — a per-EVENT allocation sneaking into
//     the hot loop would land at 2+ and still fail.

import (
	"testing"

	"stinspector/internal/pm"
	"stinspector/internal/source"
	"stinspector/internal/synth/profiles"
)

func TestAnalyzeAllocBudgetProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	for _, tc := range []struct {
		profile string
		ceiling float64
	}{
		{"hostileargs", 0.25},
		{"heavytail", 1.5},
	} {
		t.Run(tc.profile, func(t *testing.T) {
			p, ok := profiles.Lookup(tc.profile)
			if !ok {
				t.Fatalf("profile %s missing", tc.profile)
			}
			el := p.Generate("alloca", 24, 2000, 11)
			m := pm.CallTopDirs{Depth: 2}
			// Warm: table growth, pool population.
			src := source.FromLog(el)
			if _, err := AnalyzeStreamParallel(src, m, 1, true); err != nil {
				t.Fatal(err)
			}
			src.Close()
			checkAnalyzeAllocBudgetCeiling(t, el, m, tc.ceiling)
		})
	}
}
