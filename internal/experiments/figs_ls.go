package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"

	"stinspector/internal/core"
	"stinspector/internal/dfg"
	"stinspector/internal/lssim"
	"stinspector/internal/pm"
	"stinspector/internal/render"
	"stinspector/internal/strace"
	"stinspector/internal/trace"
)

// Fig2 regenerates the raw strace records of Figure 2: the ls and ls -l
// traces rendered in strace text format, including an unfinished/resumed
// pair, and verifies that parsing them back reproduces the events.
func Fig2() (*Report, error) {
	r := &Report{ID: "fig2", Title: "strace records of ls and ls -l (Figure 2)"}
	ca, cb, _ := lssim.Both(lssim.Config{})

	var text bytes.Buffer
	first := ca.Cases()[0]
	text.WriteString("--- " + first.ID.FileName() + " (Figure 2a) ---\n")
	w := strace.NewWriter(&text)
	if err := w.WriteCase(first); err != nil {
		return nil, err
	}
	firstB := cb.Cases()[0]
	text.WriteString("\n--- " + firstB.ID.FileName() + " (Figure 2b) ---\n")
	w = strace.NewWriter(&text)
	if err := w.WriteCase(firstB); err != nil {
		return nil, err
	}
	// Figure 2c: an unfinished/resumed pair.
	text.WriteString("\n--- simultaneous multi-processing (Figure 2c) ---\n")
	w = strace.NewWriter(&text)
	w.WriteUnfinishedPair(first.Events[0])
	r.Text = text.String()

	// Round trip through the parser.
	parsed, err := strace.ParseCase(first.ID, strings.NewReader(sectionOf(r.Text, "Figure 2a")), strace.Options{Strict: true})
	if err != nil {
		return nil, err
	}
	r.checkInt("fig2a events parse back", len(parsed.Events), len(first.Events))
	same := true
	for i := range parsed.Events {
		if parsed.Events[i] != first.Events[i] {
			same = false
		}
	}
	r.check("fig2a parse round-trip exact", same, fmt.Sprintf("%v", same), "true")
	r.checkInt("fig2a records per process", len(first.Events), 8)
	r.checkInt("fig2b records per process", len(firstB.Events), 17)
	return r, nil
}

func sectionOf(text, marker string) string {
	i := strings.Index(text, marker)
	if i < 0 {
		return ""
	}
	rest := text[i:]
	if j := strings.Index(rest, "\n"); j >= 0 {
		rest = rest[j+1:]
	}
	if j := strings.Index(rest, "\n---"); j >= 0 {
		rest = rest[:j]
	}
	// Exclude the exit record for exact event comparison.
	return rest
}

// fig3Targets are the node annotations printed in Figure 3.
var fig3Targets = []struct {
	act   pm.Activity
	rd    float64
	bytes int64
	mc    int
}{
	{"read:/usr/lib", 0.22, 14976, 2},
	{"read:/proc/filesystems", 0.27, 2868, 2},
	{"read:/etc/locale.alias", 0.19, 17976, 3},
	{"read:/etc/nsswitch.conf", 0.05, 1626, 2},
	{"read:/etc/passwd", 0.02, 4836, 1},
	{"read:/etc/group", 0.03, 2616, 2},
	{"read:/usr/share", 0.05, 11241, 2},
	{"write:/dev/pts", 0.17, 753, 3},
}

// Fig3 regenerates the three DFGs of Figure 3 with their Load/DR
// annotations and the partition coloring of Figure 3d.
func Fig3() (*Report, error) {
	r := &Report{ID: "fig3", Title: "DFG synthesis of C_a, C_b, C_x (Figure 3)"}
	ca, cb, cx := lssim.Both(lssim.Config{})
	inA, inB, inX := core.FromEventLog(ca), core.FromEventLog(cb), core.FromEventLog(cx)

	gA, gB, gX := inA.DFG(), inB.DFG(), inX.DFG()
	stX := inX.Stats()
	full, part := inX.PartitionByCID("a")

	var text bytes.Buffer
	text.WriteString("--- G[L(C_a)] (Figure 3b) ---\n")
	text.WriteString(render.RenderText(gA, stX, nil))
	text.WriteString("\n--- G[L(C_b)] (Figure 3c) ---\n")
	text.WriteString(render.RenderText(gB, stX, nil))
	text.WriteString("\n--- G[L(C_x)] partition-colored (Figure 3d) ---\n")
	text.WriteString(render.RenderText(full, stX, part))
	text.WriteString("\n--- DOT of Figure 3d ---\n")
	text.WriteString(render.RenderDOT(full, stX, render.PartitionColoring{Partition: part}))
	r.Text = text.String()

	// Edge counts of Figure 3b.
	fig3b := map[dfg.Edge]int{
		{From: pm.Start, To: "read:/usr/lib"}:                          3,
		{From: "read:/usr/lib", To: "read:/usr/lib"}:                   6,
		{From: "read:/usr/lib", To: "read:/proc/filesystems"}:          3,
		{From: "read:/proc/filesystems", To: "read:/proc/filesystems"}: 3,
		{From: "read:/proc/filesystems", To: "read:/etc/locale.alias"}: 3,
		{From: "read:/etc/locale.alias", To: "read:/etc/locale.alias"}: 3,
		{From: "read:/etc/locale.alias", To: "write:/dev/pts"}:         3,
		{From: "write:/dev/pts", To: pm.End}:                           3,
	}
	for e, want := range fig3b {
		r.checkInt(fmt.Sprintf("3b edge %s", e), gA.EdgeCount(e), want)
	}
	r.checkInt("3b distinct edges", gA.NumEdges(), len(fig3b))

	// Node annotations of Figure 3 (statistics over C_x).
	for _, tgt := range fig3Targets {
		st := stX.Get(tgt.act)
		if st == nil {
			r.check(fmt.Sprintf("stats for %s", tgt.act), false, "missing", "present")
			continue
		}
		r.checkInt(fmt.Sprintf("bytes(%s)", tgt.act), int(st.Bytes), int(tgt.bytes))
		r.checkInt(fmt.Sprintf("mc(%s)", tgt.act), st.MaxConc, tgt.mc)
		if tgt.rd > 0 {
			r.check(fmt.Sprintf("rd(%s)", tgt.act),
				math.Abs(st.RelDur-tgt.rd) <= 0.01,
				fmt.Sprintf("%.3f", st.RelDur), fmt.Sprintf("%.2f±0.01", tgt.rd))
		}
	}

	// Figure 3d coloring: four nodes exclusive to ls -l, none to ls,
	// one green edge.
	for _, a := range []pm.Activity{"read:/etc/nsswitch.conf", "read:/etc/passwd", "read:/etc/group", "read:/usr/share"} {
		r.check(fmt.Sprintf("3d %s red", a), part.Node(a) == dfg.Red, part.Node(a).String(), "red")
	}
	gn, rn, _ := part.CountNodes()
	r.checkInt("3d green nodes", gn, 0)
	r.checkInt("3d red nodes", rn, 4)
	ge, _, _ := part.CountEdges()
	r.checkInt("3d green edges", ge, 1)
	r.check("3d single green edge is locale→pts",
		part.Edge(dfg.Edge{From: "read:/etc/locale.alias", To: "write:/dev/pts"}) == dfg.Green,
		part.Edge(dfg.Edge{From: "read:/etc/locale.alias", To: "write:/dev/pts"}).String(), "green")

	// Union additivity (Figure 3d counts are the sums of 3b and 3c).
	e := dfg.Edge{From: pm.Start, To: "read:/usr/lib"}
	r.checkInt("3d start edge count", gX.EdgeCount(e), 6)
	return r, nil
}

// Fig4 regenerates the file-level DFG restricted to /usr/lib.
func Fig4() (*Report, error) {
	r := &Report{ID: "fig4", Title: "DFG restricted to /usr/lib at file granularity (Figure 4)"}
	_, _, cx := lssim.Both(lssim.Config{})
	in := core.FromEventLog(cx).FilterPath("/usr/lib").WithMapping(pm.CallFileName{Keep: 2})
	g := in.DFG()
	st := in.Stats()
	r.Text = render.RenderText(g, st, nil) + "\n" + render.RenderDOT(g, st, render.StatisticsColoring{Stats: st})

	selinux := pm.Activity("read:x86_64-linux-gnu/libselinux.so.1")
	libc := pm.Activity("read:x86_64-linux-gnu/libc.so.6")
	pcre := pm.Activity("read:x86_64-linux-gnu/libpcre2-8.so.0.10.4")
	r.checkInt("nodes (3 libs + start/end)", g.NumNodes(), 5)
	r.checkInt("● → libselinux", g.EdgeCount(dfg.Edge{From: pm.Start, To: selinux}), 6)
	r.checkInt("libselinux → libc", g.EdgeCount(dfg.Edge{From: selinux, To: libc}), 6)
	r.checkInt("libc → libpcre2", g.EdgeCount(dfg.Edge{From: libc, To: pcre}), 6)
	r.checkInt("libpcre2 → ■", g.EdgeCount(dfg.Edge{From: pcre, To: pm.End}), 6)
	for _, a := range []pm.Activity{selinux, libc, pcre} {
		r.checkInt(fmt.Sprintf("bytes(%s)", a), int(st.Get(a).Bytes), 6*832)
	}
	return r, nil
}

// Fig5 regenerates the timeline plot of read:/usr/lib over C_b.
func Fig5() (*Report, error) {
	r := &Report{ID: "fig5", Title: "timeline of read:/usr/lib over C_b (Figure 5)"}
	_, cb, _ := lssim.Both(lssim.Config{})
	in := core.FromEventLog(cb)
	tl := in.Timeline("read:/usr/lib")
	r.Text = render.RenderTimeline(tl)

	r.checkInt("intervals", len(tl), 9)
	rows := map[trace.CaseID]bool{}
	for _, iv := range tl {
		rows[iv.Case] = true
	}
	r.checkInt("timeline rows", len(rows), 3)
	mc := in.Stats().Get("read:/usr/lib").MaxConc
	r.checkInt("max-concurrency", mc, 2)
	return r, nil
}
