package experiments

import (
	"fmt"
	"time"

	"stinspector/internal/core"
	"stinspector/internal/pm"
	"stinspector/internal/render"
	"stinspector/internal/trace"
	"stinspector/internal/workloads"
)

// WorkloadCheckpoint runs the checkpoint workload in both strategies and
// checks that the Figure 8 contention signature carries over to this
// application pattern (the paper's future-work direction).
func WorkloadCheckpoint() (*Report, error) {
	r := &Report{ID: "wl-ckpt", Title: "workload: periodic checkpointing, shared file vs file per rank"}
	shared, err := workloads.Checkpoint(workloads.CheckpointConfig{
		CID: "shared", Ranks: 16, Rounds: 4, Shared: true, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	perRank, err := workloads.Checkpoint(workloads.CheckpointConfig{
		CID: "perrank", Ranks: 16, Rounds: 4, Shared: false, Seed: 1,
	})
	if err != nil {
		return nil, err
	}

	union := shared.Log.Clone()
	for _, c := range perRank.Log.Cases() {
		if err := union.Add(c); err != nil {
			return nil, err
		}
	}
	m := pm.MappingFunc(func(e trace.Event) (pm.Activity, bool) {
		strategy := "shared"
		if hasRankSuffix(e.FP) {
			strategy = "perrank"
		}
		return pm.Activity(e.Call + ":" + strategy), true
	})
	in := core.FromEventLog(union).WithMapping(m)
	st := in.Stats()
	r.Text = render.StatsTable(st)

	r.checkInt("shared-run revocations > 0", boolToInt(shared.FS.Revocations > 0), 1)
	r.checkInt("per-rank revocations", perRank.FS.Revocations, 0)
	rdOpenShared := st.Get("openat:shared").RelDur
	rdOpenPer := st.Get("openat:perrank").RelDur
	r.check("openat load shared ≫ per-rank", rdOpenShared > 10*rdOpenPer,
		fmt.Sprintf("%.3f vs %.3f", rdOpenShared, rdOpenPer), "> 10×")
	sharedDur := time.Duration(shared.Log.TotalDur())
	perDur := time.Duration(perRank.Log.TotalDur())
	r.check("wall time shared ≫ per-rank", sharedDur > 5*perDur,
		fmt.Sprintf("%v vs %v", sharedDur.Round(time.Millisecond), perDur.Round(time.Millisecond)), "> 5×")
	return r, nil
}

// WorkloadMetadataStorm runs the many-small-files workload and checks
// that the load concentrates on the metadata operations, the "metadata
// wall" of the paper's reference [22].
func WorkloadMetadataStorm() (*Report, error) {
	r := &Report{ID: "wl-meta", Title: "workload: metadata storm (many small files, one directory)"}
	res, err := workloads.MetadataStorm(workloads.MetadataStormConfig{Ranks: 16, FilesPerRank: 12, Seed: 2})
	if err != nil {
		return nil, err
	}
	in := core.FromEventLog(res.Log).WithMapping(pm.CallTopDirs{Depth: 3})
	st := in.Stats()
	r.Text = render.StatsTable(st)

	var meta, data float64
	for _, a := range st.Activities() {
		call, _ := a.Parts()
		switch call {
		case "openat", "unlink":
			meta += st.Get(a).RelDur
		case "read", "write":
			data += st.Get(a).RelDur
		}
	}
	r.check("metadata load dominates data load", meta > 5*data,
		fmt.Sprintf("%.3f vs %.3f", meta, data), "> 5×")
	r.checkInt("dir metadata ops", res.FS.DirCreates, 16*24)
	r.checkInt("revocations (private files)", res.FS.Revocations, 0)
	return r, nil
}

// WorkloadSharedLog runs the shared-append workload and checks the
// token-bouncing signature: nearly every record pays a revocation.
func WorkloadSharedLog() (*Report, error) {
	r := &Report{ID: "wl-shlog", Title: "workload: shared-log append (maximal token bouncing)"}
	res, err := workloads.SharedLog(workloads.SharedLogConfig{Ranks: 16, Records: 24, Seed: 3})
	if err != nil {
		return nil, err
	}
	in := core.FromEventLog(res.Log).WithMapping(pm.CallTopDirs{Depth: 4})
	st := in.Stats()
	r.Text = render.StatsTable(st)

	writes := 16 * 24
	r.check("revocations ≈ records", res.FS.Revocations >= writes/2,
		fmt.Sprintf("%d", res.FS.Revocations), fmt.Sprintf("≥ %d", writes/2))
	// The write activity carries essentially the whole load.
	var writeRd float64
	for _, a := range st.Activities() {
		if call, _ := a.Parts(); call == "write" {
			writeRd += st.Get(a).RelDur
		}
	}
	r.checkRange("write load share", writeRd, 0.8, 1.0)
	// Concurrency: queued appends overlap across all ranks.
	var mc int
	for _, a := range st.Activities() {
		if call, _ := a.Parts(); call == "write" {
			if st.Get(a).MaxConc > mc {
				mc = st.Get(a).MaxConc
			}
		}
	}
	r.checkInt("write max-concurrency", mc, 16)
	return r, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func hasRankSuffix(fp string) bool {
	i := len(fp) - 1
	digits := 0
	for i >= 0 && fp[i] >= '0' && fp[i] <= '9' {
		digits++
		i--
	}
	return digits == 8 && i >= 0 && fp[i] == '.'
}
