// Package experiments regenerates every evaluation artifact of the paper:
// the methodology figures on the ls / ls -l example (Figures 2-5), the
// IOR single-shared-file vs file-per-process comparison (Figure 8), the
// POSIX vs MPI-IO comparison (Figure 9), and the ablations of the
// filesystem contention mechanisms. Each experiment renders the paper's
// artifact as text and evaluates paper-vs-measured checks; the cmd/stbench
// binary and the test suite both run through this package, so "what the
// benchmark prints" and "what the tests assert" cannot drift apart.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"stinspector/internal/iorsim"
	"stinspector/internal/pm"
)

// Check is one paper-vs-measured assertion.
type Check struct {
	Name string
	Pass bool
	Got  string
	Want string
}

// Report is the outcome of one experiment.
type Report struct {
	ID     string
	Title  string
	Text   string
	Checks []Check
}

// Failed returns the failing checks.
func (r *Report) Failed() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// Summary renders a short pass/fail table.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %-52s got %-24s want %s\n", mark, c.Name, c.Got, c.Want)
	}
	return b.String()
}

func (r *Report) check(name string, pass bool, got, want string) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Got: got, Want: want})
}

func (r *Report) checkInt(name string, got, want int) {
	r.check(name, got == want, fmt.Sprintf("%d", got), fmt.Sprintf("%d", want))
}

func (r *Report) checkRange(name string, got, lo, hi float64) {
	r.check(name, got >= lo && got <= hi, fmt.Sprintf("%.4f", got), fmt.Sprintf("[%.2f, %.2f]", lo, hi))
}

// Scale sets the size of the IOR experiments. The zero value is replaced
// by the paper's full configuration (96 ranks over 2 hosts, 3 segments of
// one 16 MiB block in 1 MiB transfers).
type Scale struct {
	Ranks             int
	Hosts             int
	Segments          int
	TransfersPerBlock int
	Seed              int64
	// NoPreamble drops the startup I/O (used by reduced-scale tests).
	NoPreamble bool
}

func (s Scale) withDefaults() Scale {
	if s.Ranks <= 0 {
		s.Ranks = 96
	}
	if s.Hosts <= 0 {
		s.Hosts = 2
	}
	if s.Segments <= 0 {
		s.Segments = 3
	}
	if s.TransfersPerBlock <= 0 {
		s.TransfersPerBlock = 16
	}
	if s.Seed == 0 {
		s.Seed = 20240924
	}
	return s
}

func (s Scale) iorConfig(cid string, fpp bool, api iorsim.API, baseRID int) iorsim.Config {
	return iorsim.Config{
		CID:          cid,
		Ranks:        s.Ranks,
		Hosts:        s.Hosts,
		BaseRID:      baseRID,
		TransferSize: 1 << 20,
		BlockSize:    int64(s.TransfersPerBlock) << 20,
		Segments:     s.Segments,
		Write:        true,
		Read:         true,
		Fsync:        true,
		ReorderTasks: true,
		FilePerProc:  fpp,
		API:          api,
		Preamble:     !s.NoPreamble,
		Seed:         s.Seed,
	}
}

// envMapping is the paper's f̄: site-variable abstraction of file paths,
// at the given depth below the variable.
func envMapping(site iorsim.Site, depth int) *pm.EnvMapping {
	return pm.NewEnvMapping(depth,
		pm.PrefixVar{Prefix: site.Scratch, Var: "$SCRATCH"},
		pm.PrefixVar{Prefix: site.Home, Var: "$HOME"},
		pm.PrefixVar{Prefix: site.Software, Var: "$SOFTWARE"},
		pm.PrefixVar{Prefix: site.NodeLocal, Var: "Node Local"},
		pm.PrefixVar{Prefix: "/tmp", Var: "Node Local"},
	)
}

// IDs lists the experiments in paper order.
var IDs = []string{"fig2", "fig3", "fig4", "fig5", "fig8a", "fig8b", "fig9", "ab-locks", "ab-skew", "wl-ckpt", "wl-meta", "wl-shlog"}

// Run executes one experiment by id.
func Run(id string, scale Scale) (*Report, error) {
	switch id {
	case "fig2":
		return Fig2()
	case "fig3":
		return Fig3()
	case "fig4":
		return Fig4()
	case "fig5":
		return Fig5()
	case "fig8a":
		return Fig8a(scale)
	case "fig8b":
		return Fig8b(scale)
	case "fig9":
		return Fig9(scale)
	case "ab-locks":
		return AblationLocks(scale)
	case "ab-skew":
		return AblationSkew()
	case "wl-ckpt":
		return WorkloadCheckpoint()
	case "wl-meta":
		return WorkloadMetadataStorm()
	case "wl-shlog":
		return WorkloadSharedLog()
	default:
		return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(IDs, ", "))
	}
}

// RunAll executes every experiment.
func RunAll(scale Scale) ([]*Report, error) {
	var out []*Report
	for _, id := range IDs {
		r, err := Run(id, scale)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// sortedActivities renders an activity set deterministically.
func sortedActivities(set map[pm.Activity]bool) string {
	var out []string
	for a := range set {
		out = append(out, string(a))
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}
