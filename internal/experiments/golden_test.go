package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stinspector/internal/core"
	"stinspector/internal/lssim"
	"stinspector/internal/render"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// golden compares got against the named golden file, rewriting it under
// -update. Golden files pin the exact rendered artifacts: any change to
// the DFG construction, statistics formatting or DOT emission shows up
// as a reviewable diff.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s differs from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenFig3dDOT(t *testing.T) {
	_, _, cx := lssim.Both(lssim.Config{})
	in := core.FromEventLog(cx)
	full, part := in.PartitionByCID("a")
	dot := render.RenderDOT(full, in.Stats(), render.PartitionColoring{Partition: part})
	golden(t, "fig3d.dot", dot)
}

func TestGoldenFig3dText(t *testing.T) {
	_, _, cx := lssim.Both(lssim.Config{})
	in := core.FromEventLog(cx)
	full, part := in.PartitionByCID("a")
	golden(t, "fig3d.txt", render.RenderText(full, in.Stats(), part))
}

func TestGoldenFig5Timeline(t *testing.T) {
	_, cb, _ := lssim.Both(lssim.Config{})
	in := core.FromEventLog(cb)
	golden(t, "fig5.txt", render.RenderTimeline(in.Timeline("read:/usr/lib")))
}

func TestGoldenFig2Strace(t *testing.T) {
	r, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig2.txt", r.Text)
}

// The golden artifacts must themselves contain the paper's headline
// values, guarding against a stale golden file being silently accepted.
func TestGoldenFilesCarryPaperValues(t *testing.T) {
	if *updateGolden {
		t.Skip("updating")
	}
	b, err := os.ReadFile(filepath.Join("testdata", "fig3d.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Load:0.22 (14.98 KB)", "Load:0.27 (2.87 KB)", "[red]", "DR: 2x"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("golden fig3d.txt missing %q", want)
		}
	}
}
