package experiments

import (
	"strings"
	"testing"
)

// checkReport fails the test for every failed check of the report.
func checkReport(t *testing.T, r *Report) {
	t.Helper()
	for _, c := range r.Failed() {
		t.Errorf("%s: %s: got %s, want %s", r.ID, c.Name, c.Got, c.Want)
	}
	if r.Text == "" {
		t.Errorf("%s: empty artifact text", r.ID)
	}
}

func TestFig2(t *testing.T) {
	r, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, r)
	if !strings.Contains(r.Text, "read(") || !strings.Contains(r.Text, "<unfinished ...>") {
		t.Errorf("fig2 text lacks strace records:\n%s", r.Text)
	}
}

func TestFig3(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, r)
	if !strings.Contains(r.Text, "digraph") {
		t.Errorf("fig3 lacks DOT output")
	}
}

func TestFig4(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, r)
}

func TestFig5(t *testing.T) {
	r, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, r)
	if !strings.Contains(r.Text, "#") {
		t.Errorf("fig5 timeline has no bars:\n%s", r.Text)
	}
}

// The IOR figures run at full paper scale (96 ranks, 2 hosts); the
// discrete-event simulation completes in well under a second.
func TestFig8aFullScale(t *testing.T) {
	r, err := Fig8a(Scale{})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, r)
}

func TestFig8bFullScale(t *testing.T) {
	r, err := Fig8b(Scale{})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, r)
	for _, want := range []string{"openat:$SCRATCH/ssf", "write:$SCRATCH/fpp", "Load:"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("fig8b text missing %q", want)
		}
	}
}

func TestFig9FullScale(t *testing.T) {
	r, err := Fig9(Scale{})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, r)
	if strings.Contains(r.Text, "openat:$SCRATCH") {
		t.Errorf("fig9 must skip openat nodes as in the paper")
	}
}

func TestAblationLocks(t *testing.T) {
	r, err := AblationLocks(Scale{})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, r)
}

func TestAblationSkew(t *testing.T) {
	r, err := AblationSkew()
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, r)
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("nope", Scale{}); err == nil {
		t.Errorf("unknown id accepted")
	}
	r, err := Run("fig5", Scale{})
	if err != nil || r.ID != "fig5" {
		t.Errorf("Run(fig5) = %v, %v", r, err)
	}
}

// Reduced scale still preserves every structural claim — the checks are
// parameterized by Scale.
func TestFig8bReducedScale(t *testing.T) {
	r, err := Fig8b(Scale{Ranks: 16, Hosts: 2, Segments: 2, TransfersPerBlock: 4, NoPreamble: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, r)
}

func TestReportSummary(t *testing.T) {
	r := &Report{ID: "x", Title: "t"}
	r.checkInt("a", 1, 1)
	r.checkInt("b", 1, 2)
	s := r.Summary()
	if !strings.Contains(s, "PASS") || !strings.Contains(s, "FAIL") {
		t.Errorf("summary = %s", s)
	}
	if len(r.Failed()) != 1 {
		t.Errorf("failed = %v", r.Failed())
	}
}

func TestWorkloadExperiments(t *testing.T) {
	for _, id := range []string{"wl-ckpt", "wl-meta", "wl-shlog"} {
		r, err := Run(id, Scale{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		checkReport(t, r)
	}
}
