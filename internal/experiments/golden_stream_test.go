package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"
	"testing/fstest"

	"stinspector/internal/core"
	"stinspector/internal/dfg"
	"stinspector/internal/lssim"
	"stinspector/internal/pm"
	"stinspector/internal/render"
	"stinspector/internal/source"
	"stinspector/internal/strace"
	"stinspector/internal/trace"
)

// These tests regenerate the golden artifacts through the *streaming*
// pipeline — AnalyzeStream over case sources instead of materialized
// event-logs — and compare against the same golden files the in-memory
// tests pin. Any byte of divergence between the two construction paths
// fails here.

// goldenBytes loads a golden file (the -update flag is owned by the
// in-memory golden tests; streaming must reproduce, never rewrite).
func goldenBytes(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("missing golden file %s (run the in-memory golden tests with -update first): %v", name, err)
	}
	return string(b)
}

// streamPartition rebuilds the full/green/red DFGs and the statistics
// of the fig3d partition purely from streams over cx.
func streamPartition(t *testing.T, cx *trace.EventLog) (*dfg.Graph, *dfg.Partition, *core.StreamResult) {
	t.Helper()
	m := pm.CallTopDirs{Depth: 2}
	full, err := core.AnalyzeStream(source.FromLog(cx), m, false)
	if err != nil {
		t.Fatal(err)
	}
	green, err := core.AnalyzeStream(
		source.FilterCases(source.FromLog(cx), func(c *trace.Case) bool { return c.ID.CID == "a" }), m, false)
	if err != nil {
		t.Fatal(err)
	}
	red, err := core.AnalyzeStream(
		source.FilterCases(source.FromLog(cx), func(c *trace.Case) bool { return c.ID.CID != "a" }), m, false)
	if err != nil {
		t.Fatal(err)
	}
	return full.DFG, dfg.Classify(full.DFG, green.DFG, red.DFG), full
}

func TestGoldenFig3dDOTStreaming(t *testing.T) {
	_, _, cx := lssim.Both(lssim.Config{})
	g, part, res := streamPartition(t, cx)
	dot := render.RenderDOT(g, res.Stats, render.PartitionColoring{Partition: part})
	if want := goldenBytes(t, "fig3d.dot"); dot != want {
		t.Errorf("streaming fig3d.dot differs from golden.\n--- streaming ---\n%s\n--- golden ---\n%s", dot, want)
	}
}

func TestGoldenFig3dTextStreaming(t *testing.T) {
	_, _, cx := lssim.Both(lssim.Config{})
	g, part, res := streamPartition(t, cx)
	txt := render.RenderText(g, res.Stats, part)
	if want := goldenBytes(t, "fig3d.txt"); txt != want {
		t.Errorf("streaming fig3d.txt differs from golden.\n--- streaming ---\n%s\n--- golden ---\n%s", txt, want)
	}
	// The paper's headline values must survive the streaming path too.
	for _, v := range []string{"Load:0.22 (14.98 KB)", "Load:0.27 (2.87 KB)", "[red]", "DR: 2x"} {
		if !strings.Contains(txt, v) {
			t.Errorf("streaming fig3d.txt missing %q", v)
		}
	}
}

// TestGoldenFig3dShardedAnalysis re-derives the fig3d artifacts through
// AnalyzeStreamParallel at several shard counts: the golden bytes must
// be reproduced exactly whatever the sharding — the merge layer's
// "shard count is never observable" law pinned against real artifacts.
func TestGoldenFig3dShardedAnalysis(t *testing.T) {
	_, _, cx := lssim.Both(lssim.Config{})
	m := pm.CallTopDirs{Depth: 2}
	wantDot := goldenBytes(t, "fig3d.dot")
	wantTxt := goldenBytes(t, "fig3d.txt")
	for _, shards := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		analyze := func(keep func(*trace.Case) bool) *core.StreamResult {
			src := source.FromLog(cx)
			if keep != nil {
				src = source.FilterCases(src, keep)
			}
			defer src.Close()
			res, err := core.AnalyzeStreamParallel(src, m, shards, false)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		full := analyze(nil)
		green := analyze(func(c *trace.Case) bool { return c.ID.CID == "a" })
		red := analyze(func(c *trace.Case) bool { return c.ID.CID != "a" })
		part := dfg.Classify(full.DFG, green.DFG, red.DFG)
		if dot := render.RenderDOT(full.DFG, full.Stats, render.PartitionColoring{Partition: part}); dot != wantDot {
			t.Errorf("shards=%d: fig3d.dot differs from golden", shards)
		}
		if txt := render.RenderText(full.DFG, full.Stats, part); txt != wantTxt {
			t.Errorf("shards=%d: fig3d.txt differs from golden", shards)
		}
	}
}

func TestGoldenFig5TimelineStreaming(t *testing.T) {
	_, cb, _ := lssim.Both(lssim.Config{})
	m := pm.CallTopDirs{Depth: 2}
	const act = pm.Activity("read:/usr/lib")
	var intervals []trace.Interval
	src := source.FromLog(cb)
	defer src.Close()
	err := source.Walk(src, false, func(c *trace.Case) error {
		for _, e := range c.Events {
			if got, ok := m.Map(e); ok && got == act {
				intervals = append(intervals, e.Interval())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(intervals, func(i, j int) bool {
		if intervals[i].Start != intervals[j].Start {
			return intervals[i].Start < intervals[j].Start
		}
		return intervals[i].Case.Less(intervals[j].Case)
	})
	got := render.RenderTimeline(intervals)
	if want := goldenBytes(t, "fig5.txt"); got != want {
		t.Errorf("streaming fig5.txt differs from golden.\n--- streaming ---\n%s\n--- golden ---\n%s", got, want)
	}
}

// TestGoldenFig2RoundTripStreaming is the streaming counterpart of the
// fig2 writer/parser round trip: the ls cases rendered to trace files
// and streamed back must reproduce every event exactly.
func TestGoldenFig2RoundTripStreaming(t *testing.T) {
	ca, _, _ := lssim.Both(lssim.Config{})
	fsys := fstest.MapFS{}
	for _, c := range ca.Cases() {
		var buf bytes.Buffer
		if err := strace.NewWriter(&buf).WriteCase(c); err != nil {
			t.Fatal(err)
		}
		fsys[c.ID.FileName()] = &fstest.MapFile{Data: buf.Bytes()}
	}
	src, err := strace.StreamFS(fsys, ".", strace.Options{Strict: true, Parallelism: 2, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got, err := source.Drain(src, true)
	if err != nil {
		t.Fatal(err)
	}
	want := ca.Cases()
	if got.NumCases() != len(want) {
		t.Fatalf("streamed %d cases, want %d", got.NumCases(), len(want))
	}
	for i, c := range got.Cases() {
		if !reflect.DeepEqual(c.Events, want[i].Events) {
			t.Errorf("case %s: events differ after stream round trip", c.ID)
		}
	}
}
