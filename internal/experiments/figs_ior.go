package experiments

import (
	"bytes"
	"fmt"
	"time"

	"stinspector/internal/core"
	"stinspector/internal/dfg"
	"stinspector/internal/iorsim"
	"stinspector/internal/pm"
	"stinspector/internal/render"
	"stinspector/internal/simfs"
	"stinspector/internal/trace"
)

// runSSFandFPP executes the two IOR runs of Section V-A and returns the
// combined event-log C_X (96 + 96 cases at full scale) restricted to the
// calls the paper records for experiment A (variants of read, write and
// openat).
func runSSFandFPP(scale Scale, params *simfs.Params) (*trace.EventLog, *iorsim.Result, *iorsim.Result, error) {
	scale = scale.withDefaults()
	cfgSSF := scale.iorConfig("ssf", false, iorsim.POSIX, 40000)
	cfgFPP := scale.iorConfig("fpp", true, iorsim.POSIX, 50000)
	cfgSSF.FSParams = params
	cfgFPP.FSParams = params
	ssf, err := iorsim.Run(cfgSSF)
	if err != nil {
		return nil, nil, nil, err
	}
	fpp, err := iorsim.Run(cfgFPP)
	if err != nil {
		return nil, nil, nil, err
	}
	cx, err := trace.Union(ssf.Log, fpp.Log)
	if err != nil {
		return nil, nil, nil, err
	}
	cx = cx.FilterCalls("read", "write", "openat", "pread64", "pwrite64")
	return cx, ssf, fpp, nil
}

// Fig8a regenerates the DFG of all events of the SSF+FPP runs under the
// depth-0 site abstraction ($SCRATCH, $SOFTWARE, $HOME, Node Local).
func Fig8a(scale Scale) (*Report, error) {
	r := &Report{ID: "fig8a", Title: "IOR SSF+FPP, all events, site abstraction (Figure 8a)"}
	cx, ssf, _, err := runSSFandFPP(scale, nil)
	if err != nil {
		return nil, err
	}
	site := ssf.Cfg.Site
	in := core.FromEventLog(cx).WithMapping(envMapping(site, 0))
	g := in.DFG()
	st := in.Stats()
	r.Text = render.RenderText(g, st, nil) + "\n" + render.RenderDOT(g, st, render.StatisticsColoring{Stats: st})

	// The figure's node set: scratch open/write/read plus the startup
	// activities.
	for _, a := range []pm.Activity{
		"openat:$SCRATCH", "write:$SCRATCH", "read:$SCRATCH",
		"openat:$SOFTWARE", "read:$SOFTWARE", "openat:$HOME",
		"openat:Node Local", "write:Node Local",
	} {
		r.check(fmt.Sprintf("node %s present", a), g.HasNode(a), fmt.Sprintf("%v", g.HasNode(a)), "true")
	}

	sc := scale.withDefaults()
	ranks := sc.Ranks
	transfers := sc.Segments * sc.TransfersPerBlock
	r.checkInt("write:$SCRATCH events", st.Get("write:$SCRATCH").Events, 2*ranks*transfers)
	r.checkInt("read:$SCRATCH events", st.Get("read:$SCRATCH").Events, 2*ranks*transfers)
	// openat $SCRATCH: one per SSF rank, two per FPP rank (create +
	// neighbour open under -C).
	r.checkInt("openat:$SCRATCH events", st.Get("openat:$SCRATCH").Events, 3*ranks)

	// The figure's headline: openat and write under $SCRATCH carry a
	// relatively high load (0.55 and 0.43 in the paper).
	rdOpen := st.Get("openat:$SCRATCH").RelDur
	rdWrite := st.Get("write:$SCRATCH").RelDur
	rdRead := st.Get("read:$SCRATCH").RelDur
	r.checkRange("rd(openat:$SCRATCH) ~ paper 0.55", rdOpen, 0.35, 0.70)
	r.checkRange("rd(write:$SCRATCH) ~ paper 0.43", rdWrite, 0.25, 0.55)
	r.check("rd(openat) > rd(write) > rd(read)",
		rdOpen > rdWrite && rdWrite > rdRead,
		fmt.Sprintf("%.3f > %.3f > %.3f", rdOpen, rdWrite, rdRead), "monotone")
	for _, a := range []pm.Activity{"openat:$SOFTWARE", "read:$SOFTWARE", "openat:$HOME", "write:Node Local"} {
		r.check(fmt.Sprintf("rd(%s) ≈ 0.00", a), st.Get(a).RelDur < 0.01,
			fmt.Sprintf("%.4f", st.Get(a).RelDur), "< 0.01")
	}
	// DR concurrency: the scratch write/read activities reach full
	// rank concurrency (96× in the paper).
	r.checkInt("mc(write:$SCRATCH)", st.Get("write:$SCRATCH").MaxConc, ranks)
	return r, nil
}

// Fig8b regenerates the DFG restricted to the $SCRATCH directory at
// depth 1, which separates the ssf/ and fpp/ run directories.
func Fig8b(scale Scale) (*Report, error) {
	r := &Report{ID: "fig8b", Title: "IOR SSF vs FPP under $SCRATCH (Figure 8b)"}
	cx, ssf, fpp, err := runSSFandFPP(scale, nil)
	if err != nil {
		return nil, err
	}
	site := ssf.Cfg.Site
	in := core.FromEventLog(cx).FilterPath(site.Scratch).WithMapping(envMapping(site, 1))
	g := in.DFG()
	st := in.Stats()
	r.Text = render.RenderText(g, st, nil) + "\n" + render.RenderDOT(g, st, render.StatisticsColoring{Stats: st})

	sc := scale.withDefaults()
	ranks := sc.Ranks
	transfers := sc.Segments * sc.TransfersPerBlock

	// Structure: the ssf chain openat → write…write → read…read → ■
	// with the counts of the figure (96 / 4512 / 96 at full scale).
	r.checkInt("edge ●→openat:$SCRATCH/ssf",
		g.EdgeCount(dfg.Edge{From: pm.Start, To: "openat:$SCRATCH/ssf"}), ranks)
	r.checkInt("edge openat→write (ssf)",
		g.EdgeCount(dfg.Edge{From: "openat:$SCRATCH/ssf", To: "write:$SCRATCH/ssf"}), ranks)
	r.checkInt("self edge write:$SCRATCH/ssf",
		g.EdgeCount(dfg.Edge{From: "write:$SCRATCH/ssf", To: "write:$SCRATCH/ssf"}), ranks*(transfers-1))
	r.checkInt("edge write→read (ssf)",
		g.EdgeCount(dfg.Edge{From: "write:$SCRATCH/ssf", To: "read:$SCRATCH/ssf"}), ranks)
	r.checkInt("self edge read:$SCRATCH/ssf",
		g.EdgeCount(dfg.Edge{From: "read:$SCRATCH/ssf", To: "read:$SCRATCH/ssf"}), ranks*(transfers-1))
	r.checkInt("edge read→■ (ssf)",
		g.EdgeCount(dfg.Edge{From: "read:$SCRATCH/ssf", To: pm.End}), ranks)

	// Byte totals: each mode moves ranks × segments × blocksize
	// (4.83 GB at full scale) in each direction.
	totalBytes := int64(ranks*transfers) << 20
	r.checkInt("bytes write:$SCRATCH/ssf", int(st.Get("write:$SCRATCH/ssf").Bytes), int(totalBytes))
	r.checkInt("bytes read:$SCRATCH/fpp", int(st.Get("read:$SCRATCH/fpp").Bytes), int(totalBytes))

	// The headline comparison: openat and write loads of the SSF run
	// dominate; their FPP counterparts are negligible (paper: 0.54 and
	// 0.43 vs 0.01 and 0.00).
	rdOpenSSF := st.Get("openat:$SCRATCH/ssf").RelDur
	rdOpenFPP := st.Get("openat:$SCRATCH/fpp").RelDur
	rdWriteSSF := st.Get("write:$SCRATCH/ssf").RelDur
	rdWriteFPP := st.Get("write:$SCRATCH/fpp").RelDur
	rdReadSSF := st.Get("read:$SCRATCH/ssf").RelDur
	rdReadFPP := st.Get("read:$SCRATCH/fpp").RelDur
	r.checkRange("rd(openat ssf) ~ paper 0.54", rdOpenSSF, 0.35, 0.70)
	r.checkRange("rd(write ssf) ~ paper 0.43", rdWriteSSF, 0.25, 0.55)
	r.check("rd(openat ssf) ≫ rd(openat fpp)", rdOpenSSF > 10*rdOpenFPP,
		fmt.Sprintf("%.3f vs %.3f", rdOpenSSF, rdOpenFPP), "> 10×")
	r.check("rd(write ssf) ≫ rd(write fpp)", rdWriteSSF > 10*rdWriteFPP,
		fmt.Sprintf("%.3f vs %.3f", rdWriteSSF, rdWriteFPP), "> 10×")
	r.check("reads cheap in both modes", rdReadSSF < 0.05 && rdReadFPP < 0.05,
		fmt.Sprintf("%.3f / %.3f", rdReadSSF, rdReadFPP), "< 0.05")

	// Concurrency: the contended SSF write reaches all ranks.
	r.checkInt("mc(write ssf)", st.Get("write:$SCRATCH/ssf").MaxConc, ranks)

	// Mechanism evidence from the filesystem model.
	r.checkInt("fpp revocations", fpp.FS.Revocations, 0)
	r.check("ssf revocations ≈ ranks×segments", ssf.FS.Revocations >= ranks*(sc.Segments-1),
		fmt.Sprintf("%d", ssf.FS.Revocations), fmt.Sprintf("≥ %d", ranks*(sc.Segments-1)))
	r.checkInt("ssf shared opens", ssf.FS.SharedOpens, ranks-1)
	return r, nil
}

// Fig9 regenerates the partition-colored DFG of the POSIX vs MPI-IO
// comparison of Section V-B.
func Fig9(scale Scale) (*Report, error) {
	r := &Report{ID: "fig9", Title: "IOR with vs without MPI-IO, partition coloring (Figure 9)"}
	scale = scale.withDefaults()
	cfgP := scale.iorConfig("posix", false, iorsim.POSIX, 60000)
	cfgM := scale.iorConfig("mpiio", false, iorsim.MPIIO, 70000)
	posix, err := iorsim.Run(cfgP)
	if err != nil {
		return nil, err
	}
	mpiio, err := iorsim.Run(cfgM)
	if err != nil {
		return nil, err
	}
	cy, err := trace.Union(posix.Log, mpiio.Log)
	if err != nil {
		return nil, err
	}
	// Experiment B records lseek in addition to read/write/openat.
	cy = cy.FilterCalls("read", "write", "openat", "pread64", "pwrite64", "lseek")

	site := posix.Cfg.Site
	in := core.FromEventLog(cy).WithMapping(envMapping(site, 0))
	full, part := in.PartitionByCID("mpiio")
	st := in.Stats()
	skip := map[string]bool{"openat": true} // as in the paper's Figure 9
	var text bytes.Buffer
	txt := render.Text{Graph: full, Stats: st, Partition: part, SkipCalls: skip}
	if err := txt.Render(&text); err != nil {
		return nil, err
	}
	dot := render.DOT{Graph: full, Stats: st, Styler: render.PartitionColoring{Partition: part}, SkipCalls: skip}
	text.WriteString("\n")
	if err := dot.Render(&text); err != nil {
		return nil, err
	}
	r.Text = text.String()

	// Green: the MPI-IO interface uses pread64/pwrite64.
	for _, a := range []pm.Activity{"pwrite64:$SCRATCH", "pread64:$SCRATCH"} {
		r.check(fmt.Sprintf("%s green", a), part.Node(a) == dfg.Green, part.Node(a).String(), "green")
	}
	// Red: the standard calls and the lseeks occur only without MPI-IO.
	for _, a := range []pm.Activity{"write:$SCRATCH", "read:$SCRATCH", "lseek:$SCRATCH"} {
		r.check(fmt.Sprintf("%s red", a), part.Node(a) == dfg.Red, part.Node(a).String(), "red")
	}
	// Startup activities occur in both runs.
	for _, a := range []pm.Activity{"read:$SOFTWARE", "write:Node Local"} {
		r.check(fmt.Sprintf("%s shared", a), part.Node(a) == dfg.Shared, part.Node(a).String(), "shared")
	}
	// "The number of lseek calls … is significantly lower in the run
	// that uses MPI-IO": zero on $SCRATCH.
	lseekCount := 0
	mpiio.Log.Events(func(e trace.Event) {
		if e.Call == "lseek" {
			lseekCount++
		}
	})
	r.checkInt("lseek events in MPI-IO run", lseekCount, 0)
	// "The reduction in the number of system calls …": strictly fewer
	// events in the MPI-IO run.
	r.check("MPI-IO issues fewer syscalls",
		mpiio.Log.NumEvents() < posix.Log.NumEvents(),
		fmt.Sprintf("%d vs %d", mpiio.Log.NumEvents(), posix.Log.NumEvents()), "fewer")
	// "… resulted in a relatively reduced load in terms of overall
	// duration": total $SCRATCH time of the MPI-IO run does not exceed
	// the POSIX run's (the paper measures a 0.42-vs-0.56 split; our
	// model yields near-parity since it credits MPI-IO only for the
	// removed system calls — see EXPERIMENTS.md).
	durOf := func(log *trace.EventLog) time.Duration {
		var d time.Duration
		log.Events(func(e trace.Event) {
			if e.FP != "" && e.Call != "openat" && containsPath(e.FP, site.Scratch) {
				d += e.Dur
			}
		})
		return d
	}
	dp, dm := durOf(posix.Log), durOf(mpiio.Log)
	r.check("MPI-IO total data-path time ≤ 1.05× POSIX", float64(dm) <= 1.05*float64(dp),
		fmt.Sprintf("%v vs %v", dm.Round(time.Millisecond), dp.Round(time.Millisecond)), "≤ 1.05×")
	return r, nil
}

func containsPath(fp, prefix string) bool {
	return len(fp) >= len(prefix) && fp[:len(prefix)] == prefix
}

// AblationLocks reruns the Figure 8b pipeline with the two contention
// mechanisms disabled, demonstrating that the paper's headline signal
// (the SSF openat/write load dominance) is produced by those mechanisms
// and not by an artifact of the pipeline.
func AblationLocks(scale Scale) (*Report, error) {
	r := &Report{ID: "ab-locks", Title: "ablation: contention mechanisms off ⇒ Figure 8b signal collapses"}
	params := simfs.DefaultParams()
	params.DisableWriteTokens = true
	params.DisableSharedOpen = true
	cx, ssf, _, err := runSSFandFPP(scale, &params)
	if err != nil {
		return nil, err
	}
	site := ssf.Cfg.Site
	in := core.FromEventLog(cx).FilterPath(site.Scratch).WithMapping(envMapping(site, 1))
	st := in.Stats()
	r.Text = render.StatsTable(st)

	rdOpenSSF := st.Get("openat:$SCRATCH/ssf").RelDur
	rdWriteSSF := st.Get("write:$SCRATCH/ssf").RelDur
	rdWriteFPP := st.Get("write:$SCRATCH/fpp").RelDur
	r.check("openat ssf load collapses", rdOpenSSF < 0.05, fmt.Sprintf("%.4f", rdOpenSSF), "< 0.05")
	r.check("write ssf ≈ write fpp (within 2×)",
		rdWriteSSF < 2*rdWriteFPP+0.02,
		fmt.Sprintf("%.4f vs %.4f", rdWriteSSF, rdWriteFPP), "≈")
	r.checkInt("revocations", ssf.FS.Revocations, 0)
	return r, nil
}

// AblationSkew verifies the paper's remark that unsynchronized clocks
// across hosts perturb the max-concurrency statistic but affect neither
// the DFG nor the other metrics (Section IV-B).
func AblationSkew() (*Report, error) {
	r := &Report{ID: "ab-skew", Title: "ablation: host clock skew perturbs mc only (Section IV-B)"}
	run := func(skew time.Duration) (*dfg.Graph, *core.Inspector, error) {
		cfg := iorsim.Config{
			CID: "skew", Ranks: 8, Hosts: 2, TransferSize: 1 << 20, BlockSize: 4 << 20,
			Segments: 2, Write: true, Read: true, ReorderTasks: true, Seed: 99,
		}
		res, err := iorsim.Run(cfg)
		if err != nil {
			return nil, nil, err
		}
		log := res.Log
		if skew != 0 {
			log = shiftHost(log, res.World.Ranks[len(res.World.Ranks)-1].Host, skew)
		}
		in := core.FromEventLog(log).WithMapping(envMapping(res.Cfg.Site, 1))
		return in.DFG(), in, nil
	}
	g0, in0, err := run(0)
	if err != nil {
		return nil, err
	}
	g1, in1, err := run(3 * time.Second)
	if err != nil {
		return nil, err
	}
	r.check("DFG identical under skew", g0.Equal(g1), fmt.Sprintf("%v", g0.Equal(g1)), "true")
	a := pm.Activity("write:$SCRATCH/ssf")
	mc0 := in0.Stats().Get(a).MaxConc
	mc1 := in1.Stats().Get(a).MaxConc
	r.check("mc perturbed by skew", mc1 < mc0,
		fmt.Sprintf("%d vs %d", mc1, mc0), "lower under skew")
	r.check("relative durations unchanged",
		fmt.Sprintf("%.6f", in0.Stats().Get(a).RelDur) == fmt.Sprintf("%.6f", in1.Stats().Get(a).RelDur),
		fmt.Sprintf("%.6f vs %.6f", in0.Stats().Get(a).RelDur, in1.Stats().Get(a).RelDur), "equal")
	r.Text = r.Summary()
	return r, nil
}

// shiftHost returns a copy of the log with every event of the given host
// shifted by the skew, emulating an unsynchronized system clock.
func shiftHost(log *trace.EventLog, host string, skew time.Duration) *trace.EventLog {
	out := log.Clone()
	for _, c := range out.Cases() {
		if c.ID.Host != host {
			continue
		}
		for i := range c.Events {
			c.Events[i].Start += skew
		}
	}
	return out
}
