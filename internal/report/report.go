// Package report composes the individual analyses of this library into a
// single textual I/O report, in the spirit of Darshan's per-job summary
// reports mentioned in the paper's related work (Section II): an overview
// of the event-log, the DFG with statistics, the per-activity hot spots
// with duration distributions, the straggler processes, and — when a
// partition is given — the configuration comparison.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"stinspector/internal/core"
	"stinspector/internal/dfg"
	"stinspector/internal/pm"
	"stinspector/internal/render"
	"stinspector/internal/stats"
)

// Options configures report generation.
type Options struct {
	// Title heads the report.
	Title string
	// TopActivities bounds the hot-spot section (default 8).
	TopActivities int
	// TopCases bounds the straggler section (default 8).
	TopCases int
	// GreenCIDs, when non-empty, adds the partition-comparison section
	// with the given command ids as the green subset.
	GreenCIDs []string
	// Timelines adds an ASCII timeline for each listed activity.
	Timelines []pm.Activity
}

// Generate writes the report for an inspector's event-log and mapping.
func Generate(w io.Writer, in *core.Inspector, opts Options) error {
	if opts.TopActivities <= 0 {
		opts.TopActivities = 8
	}
	if opts.TopCases <= 0 {
		opts.TopCases = 8
	}
	var b strings.Builder

	title := opts.Title
	if title == "" {
		title = "I/O inspection report"
	}
	rule := strings.Repeat("=", len(title))
	fmt.Fprintf(&b, "%s\n%s\n\n", title, rule)

	// 1. Overview.
	el := in.EventLog()
	fmt.Fprintf(&b, "Overview\n--------\n")
	fmt.Fprintf(&b, "cases:        %d\n", el.NumCases())
	fmt.Fprintf(&b, "events:       %d\n", el.NumEvents())
	fmt.Fprintf(&b, "calls:        %s\n", strings.Join(el.CallNames(), ", "))
	fmt.Fprintf(&b, "bytes moved:  %s\n", render.FormatBytes(el.TotalBytes()))
	fmt.Fprintf(&b, "I/O time:     %s (sum over all system calls)\n\n",
		render.FormatDuration(time.Duration(el.TotalDur())))

	// 2. Hot activities.
	st := in.Stats()
	fmt.Fprintf(&b, "Hot activities (by relative duration)\n-------------------------------------\n")
	type row struct {
		a  pm.Activity
		st *stats.ActivityStats
	}
	rows := make([]row, 0)
	for _, a := range st.Activities() {
		rows = append(rows, row{a, st.Get(a)})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].st.RelDur != rows[j].st.RelDur {
			return rows[i].st.RelDur > rows[j].st.RelDur
		}
		return rows[i].a < rows[j].a
	})
	shown := rows
	if len(shown) > opts.TopActivities {
		shown = shown[:opts.TopActivities]
	}
	for _, r := range shown {
		fmt.Fprintf(&b, "%-44s %s", r.a, render.FormatLoad(r.st.RelDur, r.st.Bytes, r.st.HasBytes))
		if r.st.HasBytes {
			fmt.Fprintf(&b, "  %s", render.FormatDR(r.st.MaxConc, r.st.ProcRate))
		}
		if d, ok := in.Distribution(r.a); ok {
			fmt.Fprintf(&b, "  p50=%s p99=%s tail=%.0f%%",
				render.FormatDuration(d.P50), render.FormatDuration(d.P99), d.TailShare*100)
		}
		b.WriteByte('\n')
	}
	if len(rows) > len(shown) {
		fmt.Fprintf(&b, "(%d further activities omitted)\n", len(rows)-len(shown))
	}
	b.WriteByte('\n')

	// 3. Stragglers.
	fmt.Fprintf(&b, "Slowest processes\n-----------------\n")
	per := in.PerCase("")
	if len(per) > opts.TopCases {
		per = per[:opts.TopCases]
	}
	for _, c := range per {
		fmt.Fprintf(&b, "%-28s %6d events  %12s  %12s\n",
			c.Case, c.Events, render.FormatDuration(c.TotalDur), render.FormatBytes(c.Bytes))
	}
	b.WriteByte('\n')

	// 4. The DFG.
	fmt.Fprintf(&b, "Directly-Follows-Graph\n----------------------\n")
	var part *dfg.Partition
	var full *dfg.Graph
	if len(opts.GreenCIDs) > 0 {
		full, part = in.PartitionByCID(opts.GreenCIDs...)
		gn, rn, sn := part.CountNodes()
		fmt.Fprintf(&b, "partition: green = {%s}: %d green / %d red / %d shared nodes\n\n",
			strings.Join(opts.GreenCIDs, ","), gn, rn, sn)
	} else {
		full = in.DFG()
	}
	b.WriteString(render.RenderText(full, st, part))
	b.WriteByte('\n')

	// 5. Optional timelines.
	for _, a := range opts.Timelines {
		fmt.Fprintf(&b, "Timeline of %s\n", a)
		fmt.Fprintf(&b, "%s\n", strings.Repeat("-", len("Timeline of ")+len(a)))
		b.WriteString(render.RenderTimeline(in.Timeline(a)))
		b.WriteByte('\n')
	}

	_, err := io.WriteString(w, b.String())
	return err
}
