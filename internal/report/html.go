package report

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"strings"
	"time"

	"stinspector/internal/core"
	"stinspector/internal/dfg"
	"stinspector/internal/pm"
	"stinspector/internal/render"
)

// GenerateHTML writes a self-contained interactive-free HTML report — the
// counterpart of the PyDarshan HTML summaries cited in the paper's
// related work. It embeds the statistics table, the per-process
// breakdown, SVG timelines, and the DFG as a Mermaid diagram (rendered by
// any Mermaid-enabled viewer; the raw structure remains readable as
// text).
func GenerateHTML(w io.Writer, in *core.Inspector, opts Options) error {
	if opts.TopActivities <= 0 {
		opts.TopActivities = 12
	}
	if opts.TopCases <= 0 {
		opts.TopCases = 12
	}
	title := opts.Title
	if title == "" {
		title = "I/O inspection report"
	}

	st := in.Stats()
	type actRow struct {
		Activity string
		Load     string
		DR       string
		Events   int
		P50, P99 string
		Tail     string
	}
	var acts []actRow
	for _, a := range st.Activities() {
		s := st.Get(a)
		row := actRow{
			Activity: string(a),
			Load:     render.FormatLoad(s.RelDur, s.Bytes, s.HasBytes),
			Events:   s.Events,
		}
		if s.HasBytes {
			row.DR = render.FormatDR(s.MaxConc, s.ProcRate)
		}
		if d, ok := in.Distribution(a); ok {
			row.P50 = render.FormatDuration(d.P50)
			row.P99 = render.FormatDuration(d.P99)
			row.Tail = fmt.Sprintf("%.0f%%", d.TailShare*100)
		}
		acts = append(acts, row)
	}
	sort.SliceStable(acts, func(i, j int) bool {
		si, sj := st.Get(pm.Activity(acts[i].Activity)), st.Get(pm.Activity(acts[j].Activity))
		if si.RelDur != sj.RelDur {
			return si.RelDur > sj.RelDur
		}
		return acts[i].Activity < acts[j].Activity
	})
	if len(acts) > opts.TopActivities {
		acts = acts[:opts.TopActivities]
	}

	type caseRow struct {
		Case   string
		Events int
		Dur    string
		Bytes  string
	}
	var cases []caseRow
	for i, c := range in.PerCase("") {
		if i >= opts.TopCases {
			break
		}
		cases = append(cases, caseRow{
			Case:   c.Case.String(),
			Events: c.Events,
			Dur:    render.FormatDuration(c.TotalDur),
			Bytes:  render.FormatBytes(c.Bytes),
		})
	}

	var full *dfg.Graph
	var part *dfg.Partition
	partNote := ""
	if len(opts.GreenCIDs) > 0 {
		full, part = in.PartitionByCID(opts.GreenCIDs...)
		gn, rn, sn := part.CountNodes()
		partNote = fmt.Sprintf("partition: green = {%s}; %d green / %d red / %d shared nodes",
			strings.Join(opts.GreenCIDs, ","), gn, rn, sn)
	} else {
		full = in.DFG()
	}
	var styler render.Styler = render.StatisticsColoring{Stats: st}
	if part != nil {
		styler = render.PartitionColoring{Partition: part}
	}
	mermaid := render.RenderMermaid(full, st, styler)

	var timelines []template.HTML
	for _, a := range opts.Timelines {
		timelines = append(timelines,
			template.HTML(render.RenderTimelineSVG(in.Timeline(a), string(a)))) // #nosec G203 -- RenderTimelineSVG escapes all labels
	}

	el := in.EventLog()
	data := map[string]any{
		"Title":      title,
		"Cases":      el.NumCases(),
		"Events":     el.NumEvents(),
		"Calls":      strings.Join(el.CallNames(), ", "),
		"Bytes":      render.FormatBytes(el.TotalBytes()),
		"IOTime":     render.FormatDuration(time.Duration(el.TotalDur())),
		"Activities": acts,
		"CaseRows":   cases,
		"Mermaid":    mermaid,
		"PartNote":   partNote,
		"Timelines":  timelines,
	}
	return htmlTmpl.Execute(w, data)
}

var htmlTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font-family: sans-serif; margin: 2em; max-width: 72em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #cccccc; padding: 4px 10px; text-align: left; font-size: 14px; }
th { background: #f0f4f8; }
pre.mermaid { background: #fafafa; border: 1px solid #eeeeee; padding: 1em; overflow-x: auto; }
.note { color: #555555; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>

<h2>Overview</h2>
<table>
<tr><th>cases</th><td>{{.Cases}}</td></tr>
<tr><th>events</th><td>{{.Events}}</td></tr>
<tr><th>calls</th><td>{{.Calls}}</td></tr>
<tr><th>bytes moved</th><td>{{.Bytes}}</td></tr>
<tr><th>I/O time</th><td>{{.IOTime}}</td></tr>
</table>

<h2>Hot activities</h2>
<table>
<tr><th>activity</th><th>load</th><th>DR</th><th>events</th><th>p50</th><th>p99</th><th>tail share</th></tr>
{{range .Activities}}<tr><td>{{.Activity}}</td><td>{{.Load}}</td><td>{{.DR}}</td><td>{{.Events}}</td><td>{{.P50}}</td><td>{{.P99}}</td><td>{{.Tail}}</td></tr>
{{end}}</table>

<h2>Slowest processes</h2>
<table>
<tr><th>case</th><th>events</th><th>total duration</th><th>bytes</th></tr>
{{range .CaseRows}}<tr><td>{{.Case}}</td><td>{{.Events}}</td><td>{{.Dur}}</td><td>{{.Bytes}}</td></tr>
{{end}}</table>

<h2>Directly-Follows-Graph</h2>
{{if .PartNote}}<p class="note">{{.PartNote}}</p>{{end}}
<pre class="mermaid">
{{.Mermaid}}</pre>

{{range .Timelines}}
<h2>Timeline</h2>
{{.}}
{{end}}
</body>
</html>
`))
