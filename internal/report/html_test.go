package report

import (
	"strings"
	"testing"
	"time"

	"stinspector/internal/core"
	"stinspector/internal/pm"
	"stinspector/internal/trace"
)

// hostileInspector builds an inspector whose attacker-reachable strings
// — file paths (which become activity names) and case identities —
// carry HTML/JS payloads.
func hostileInspector(t *testing.T) *core.Inspector {
	t.Helper()
	evil := `/data/<script>alert(1)</script>/x.bin`
	c1 := trace.NewCase(trace.CaseID{CID: `a"><img src=x onerror=alert(2)>`, Host: "h<b>", RID: 1}, []trace.Event{
		{PID: 1, Call: "read", Start: 0, Dur: 5 * time.Microsecond, FP: evil, Size: 64},
		{PID: 1, Call: "write", Start: 10 * time.Microsecond, Dur: 5 * time.Microsecond, FP: evil, Size: 32},
	})
	c2 := trace.NewCase(trace.CaseID{CID: "b&amp", Host: "h", RID: 2}, []trace.Event{
		{PID: 2, Call: "read", Start: 0, Dur: 7 * time.Microsecond, FP: evil, Size: 16},
	})
	return core.FromEventLog(trace.MustNewEventLog(c1, c2))
}

// TestGenerateHTMLEscaping: no payload may reach the document
// unescaped — not through the title, the activity table, the case
// table, the Mermaid block, or the embedded SVG timeline (the one
// template.HTML injection point, which relies on the SVG renderer's own
// escaping).
func TestGenerateHTMLEscapingHostileData(t *testing.T) {
	in := hostileInspector(t)
	var b strings.Builder
	err := GenerateHTML(&b, in, Options{
		Title:     `Report <script>alert(0)</script> & more`,
		Timelines: []pm.Activity{`read:/data/<script>alert(1)</script>`},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, raw := range []string{
		"<script>alert(0)</script>", // title
		"<script>alert(1)</script>", // file path via activities, Mermaid, SVG
		"<img src=x onerror",        // case id in the straggler table
	} {
		if strings.Contains(out, raw) {
			t.Errorf("unescaped payload %q reached the HTML report", raw)
		}
	}
	for _, want := range []string{
		"Report &lt;script&gt;alert(0)&lt;/script&gt; &amp; more", // escaped title
		"&lt;script&gt;alert(1)&lt;/script&gt;",                   // escaped activity path
	} {
		if !strings.Contains(out, want) {
			t.Errorf("escaped form %q missing from the HTML report", want)
		}
	}
	// The hostile data must still be reported, not dropped.
	if !strings.Contains(out, "alert") {
		t.Error("hostile activity vanished from the report entirely")
	}
}

// TestGenerateHTMLEmptyLog pins the empty-log behavior: a report over
// zero cases renders a complete, well-formed document instead of
// failing.
func TestGenerateHTMLEmptyLog(t *testing.T) {
	in := core.FromEventLog(trace.MustNewEventLog())
	var b strings.Builder
	if err := GenerateHTML(&b, in, Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"<title>I/O inspection report</title>",
		"<tr><th>cases</th><td>0</td></tr>",
		"flowchart TB",
		"</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("empty-log HTML report missing %q", want)
		}
	}
}

// TestGenerateTextEmptyLog: the text report over zero cases must also
// succeed and carry the overview section.
func TestGenerateTextEmptyLog(t *testing.T) {
	in := core.FromEventLog(trace.MustNewEventLog())
	var b strings.Builder
	if err := Generate(&b, in, Options{Title: "empty"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"empty", "cases:        0"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("empty-log text report missing %q:\n%s", want, b.String())
		}
	}
}
