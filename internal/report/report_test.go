package report

import (
	"strings"
	"testing"

	"stinspector/internal/core"
	"stinspector/internal/lssim"
	"stinspector/internal/pm"
)

func demoInspector() *core.Inspector {
	_, _, cx := lssim.Both(lssim.Config{})
	return core.FromEventLog(cx)
}

func TestGenerateBasic(t *testing.T) {
	var b strings.Builder
	if err := Generate(&b, demoInspector(), Options{Title: "ls vs ls -l"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"ls vs ls -l",
		"Overview",
		"cases:        6",
		"events:       75",
		"Hot activities",
		"read:/proc/filesystems", // the hottest activity leads
		"Slowest processes",
		"Directly-Follows-Graph",
		"Load:",
		"p50=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Hot activities are sorted: proc/filesystems (0.27) before
	// usr/lib (0.22).
	iProc := strings.Index(out, "read:/proc/filesystems")
	iLib := strings.Index(out, "read:/usr/lib")
	if iProc < 0 || iLib < 0 || iProc > iLib {
		t.Errorf("hot activities out of order (proc at %d, lib at %d)", iProc, iLib)
	}
}

func TestGenerateWithPartitionAndTimelines(t *testing.T) {
	var b strings.Builder
	err := Generate(&b, demoInspector(), Options{
		GreenCIDs: []string{"a"},
		Timelines: []pm.Activity{"read:/usr/lib"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"partition: green = {a}",
		"0 green / 4 red",
		"[red]",
		"Timeline of read:/usr/lib",
		"#",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestGenerateTruncation(t *testing.T) {
	var b strings.Builder
	if err := Generate(&b, demoInspector(), Options{TopActivities: 2, TopCases: 3}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "further activities omitted") {
		t.Errorf("truncation note missing")
	}
	// Only 3 case rows.
	section := out[strings.Index(out, "Slowest processes"):]
	section = section[:strings.Index(section, "Directly-Follows-Graph")]
	if got := strings.Count(section, "_host1_"); got != 3 {
		t.Errorf("case rows = %d, want 3", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	var a, b strings.Builder
	in := demoInspector()
	if err := Generate(&a, in, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := Generate(&b, in, Options{}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("report not deterministic")
	}
}

func TestGenerateHTML(t *testing.T) {
	var b strings.Builder
	err := GenerateHTML(&b, demoInspector(), Options{
		Title:     "html demo",
		GreenCIDs: []string{"a"},
		Timelines: []pm.Activity{"read:/usr/lib"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"<title>html demo</title>",
		"Hot activities",
		"read:/proc/filesystems",
		"flowchart TB",
		"partition: green = {a}",
		"<svg",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("html missing %q", want)
		}
	}
	// The hottest activity heads the table.
	iProc := strings.Index(out, "<td>read:/proc/filesystems</td>")
	iLib := strings.Index(out, "<td>read:/usr/lib</td>")
	if iProc < 0 || iLib < 0 || iProc > iLib {
		t.Errorf("activity order wrong (proc %d, lib %d)", iProc, iLib)
	}
}

func TestGenerateHTMLEscaping(t *testing.T) {
	var b strings.Builder
	if err := GenerateHTML(&b, demoInspector(), Options{Title: `<script>alert(1)</script>`}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "<script>alert") {
		t.Errorf("title not escaped")
	}
}
