// Package intern implements the symbol layer of the hot path: dense
// uint32 symbols for the small, heavily repeated string vocabularies the
// paper's event model draws from (system call names from a fixed set,
// file paths from a heavily repeated path set — Equation 1 of
// arXiv:2408.07378).
//
// Three representations cover the pipeline's three concurrency regimes:
//
//   - Table is the shared, concurrency-safe symbol table: string ⇄ Sym
//     with a lock-free read path (per-shard lock-free maps, an
//     atomically published block spine for Sym → string) and per-shard
//     mutexes taken only to append a new symbol.
//   - Cache is a per-worker, unsynchronized view of a Table for the
//     parse pool: repeat lookups are plain map hits, and []byte keys
//     are looked up without allocating, so interning a trace line's
//     call name and file path costs no allocation once the vocabulary
//     has been seen.
//   - Local (local.go) is a fully unsynchronized table for the sharded
//     analysis fold, remapped into another table at merge time.
//
// Symbol tables are append-only: a string, once interned, is retained
// for the lifetime of the table. That is the right trade for the
// paper's model (tiny call vocabulary, heavily repeated paths); callers
// with unbounded vocabularies should scope a Table to the ingestion
// pass rather than use the process-wide Default: construct one with
// NewTable, bind per-worker caches to it with CacheFor, and drop it
// with the pass's results — every string it interned becomes
// collectable, while Default stays untouched.
package intern

import (
	"hash/maphash"
	"strings"
	"sync"
	"sync/atomic"
)

// Sym is a dense symbol: the i-th distinct string interned into a table
// gets symbol i. Symbols from different tables are not comparable;
// remap through Local.RemapInto (or re-intern the string) to move
// between tables.
type Sym uint32

const (
	numShards = 32 // power of two; shard index is hash & (numShards-1)
	blockLen  = 256
)

// Table is a sharded, concurrency-safe symbol table. The zero value is
// not ready; use NewTable. Sym 0 is always the empty string.
type Table struct {
	seed maphash.Seed

	// spine maps Sym → string: an atomically published slice of
	// fixed-size blocks. Readers load the spine pointer without locks;
	// growth replaces the slice under mu. A block entry is written
	// exactly once, before the owning shard publishes the symbol, so
	// any reader holding a Sym observes its string.
	mu    sync.Mutex
	spine atomic.Pointer[[]*block]
	n     atomic.Uint32

	shards [numShards]shard
}

type block [blockLen]string

// shard holds one slice of the string → Sym direction. Reads go through
// the lock-free m; the mutex serializes appends so every string gets
// exactly one symbol.
type shard struct {
	mu sync.Mutex
	m  sync.Map // string → Sym
}

// NewTable returns an empty table with "" pre-interned as Sym 0.
func NewTable() *Table {
	t := &Table{seed: maphash.MakeSeed()}
	empty := make([]*block, 0, 4)
	t.spine.Store(&empty)
	t.Intern("")
	return t
}

// Default is the process-wide table the ingestion backends canonicalize
// event strings through.
var Default = NewTable()

// Intern returns the symbol for s, assigning the next dense symbol on
// first sight. The fast path (string already present) is lock-free.
func (t *Table) Intern(s string) Sym {
	sh := &t.shards[maphash.String(t.seed, s)&(numShards-1)]
	if v, ok := sh.m.Load(s); ok {
		return v.(Sym)
	}
	return t.internSlow(sh, s)
}

func (t *Table) internSlow(sh *shard, s string) Sym {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.m.Load(s); ok {
		return v.(Sym)
	}
	// Clone so the table never pins a larger parent string (parsed
	// trace lines, decoded archive sections).
	s = strings.Clone(s)
	id := Sym(t.n.Add(1) - 1)
	t.place(id, s)
	// Publishing the map entry is the release: a reader that observes
	// the Sym also observes the spine entry written above.
	sh.m.Store(s, id)
	return id
}

// place writes the Sym → string entry, growing the spine if id opens a
// new block. Only the allocator of id writes its entry.
func (t *Table) place(id Sym, s string) {
	bi := int(id) / blockLen
	spine := *t.spine.Load()
	if bi >= len(spine) {
		t.mu.Lock()
		spine = *t.spine.Load()
		for bi >= len(spine) {
			spine = append(spine, new(block))
		}
		t.spine.Store(&spine)
		t.mu.Unlock()
	}
	spine[bi][int(id)%blockLen] = s
}

// Str returns the string of a symbol previously returned by Intern on
// this table. For values never returned by Intern the result is
// unspecified (it reports "" without panicking for in-range ids).
func (t *Table) Str(y Sym) string {
	spine := *t.spine.Load()
	bi := int(y) / blockLen
	if bi >= len(spine) {
		return ""
	}
	return spine[bi][int(y)%blockLen]
}

// Len returns the number of distinct strings interned so far (≥ 1: the
// empty string is pre-interned).
func (t *Table) Len() int { return int(t.n.Load()) }
