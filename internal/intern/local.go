package intern

// Local is a fully unsynchronized symbol table: the shard-local form
// used by the parallel analysis fold, where each shard worker owns its
// builders outright and pays neither locks nor atomics per event. At
// merge time a shard's Local is remapped into the surviving table with
// RemapInto, which is what keeps shard count unobservable in the
// artifacts: symbols are a private encoding, the strings are the
// meaning.
//
// Unlike Table, a Local does not pre-intern "" — its first interned
// string gets Sym 0 — so remapping a Local into a fresh Local is the
// identity, reproducing the symbol assignment a sequential fold over
// the same first-occurrence order would have made.
type Local struct {
	m    map[string]Sym
	strs []string
}

// NewLocal returns an empty local table.
func NewLocal() *Local {
	return &Local{m: make(map[string]Sym, 64)}
}

// Intern returns the symbol for s, assigning the next dense symbol on
// first sight. The string is retained as given (callers pass canonical
// or freshly built strings).
func (l *Local) Intern(s string) Sym {
	if y, ok := l.m[s]; ok {
		return y
	}
	y := Sym(len(l.strs))
	l.strs = append(l.strs, s)
	l.m[s] = y
	return y
}

// Sym looks up the symbol for s without interning.
func (l *Local) Sym(s string) (Sym, bool) {
	y, ok := l.m[s]
	return y, ok
}

// Str returns the string of a symbol previously returned by Intern.
func (l *Local) Str(y Sym) string { return l.strs[y] }

// Len returns the number of distinct strings interned.
func (l *Local) Len() int { return len(l.strs) }

// RemapInto interns every symbol of l into dst and returns the
// translation r, with r[localSym] = dst symbol for the same string.
// Remapping preserves meaning exactly — dst.Str(r[y]) == l.Str(y) for
// every y — which is the property the merge layer's aggregate folds
// rely on. Remapping into an empty Local is the identity.
func (l *Local) RemapInto(dst *Local) []Sym {
	r := make([]Sym, len(l.strs))
	for i, s := range l.strs {
		r[i] = dst.Intern(s)
	}
	return r
}
