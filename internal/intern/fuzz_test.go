package intern

import "testing"

// FuzzIntern: round-trip law for all three table forms. Any pair of
// strings must intern to symbols that (a) materialize back to the
// exact input, (b) are stable across re-interning, (c) are equal iff
// the strings are equal, and (d) survive a Local remap unchanged in
// meaning.
func FuzzIntern(f *testing.F) {
	f.Add("", "")
	f.Add("read", "read")
	f.Add("read", "write")
	f.Add("/usr/lib/x86_64-linux-gnu/libselinux.so.1", "/usr/lib")
	f.Add("a\x00b", "a")
	f.Add("●", "■")
	f.Fuzz(func(t *testing.T, a, b string) {
		tab := NewTable()
		ya, yb := tab.Intern(a), tab.Intern(b)
		if tab.Str(ya) != a || tab.Str(yb) != b {
			t.Fatalf("table round trip: %q->%q, %q->%q", a, tab.Str(ya), b, tab.Str(yb))
		}
		if (ya == yb) != (a == b) {
			t.Fatalf("symbol equality diverges from string equality: %d/%d for %q/%q", ya, yb, a, b)
		}
		if tab.Intern(a) != ya || tab.Intern(b) != yb {
			t.Fatal("re-intern unstable")
		}

		c := NewCache(tab)
		if c.Intern(a) != ya || c.InternBytes([]byte(b)) != yb {
			t.Fatal("cache disagrees with table")
		}
		if c.Canon(a) != a || c.CanonBytes([]byte(b)) != b {
			t.Fatal("canon changed the string value")
		}

		l := NewLocal()
		la, lb := l.Intern(a), l.Intern(b)
		if l.Str(la) != a || l.Str(lb) != b {
			t.Fatal("local round trip")
		}
		dst := NewLocal()
		dst.Intern(b) // pre-populate so the remap is not the identity
		r := l.RemapInto(dst)
		if dst.Str(r[la]) != a || dst.Str(r[lb]) != b {
			t.Fatal("remap changed string meaning")
		}
	})
}
