package intern

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestTableBasics: dense ids, round trips, the pre-interned empty
// string.
func TestTableBasics(t *testing.T) {
	tab := NewTable()
	if got := tab.Intern(""); got != 0 {
		t.Errorf("Intern(\"\") = %d, want 0", got)
	}
	a := tab.Intern("read")
	b := tab.Intern("write")
	if a == b {
		t.Fatalf("distinct strings share symbol %d", a)
	}
	if got := tab.Intern("read"); got != a {
		t.Errorf("re-intern = %d, want %d", got, a)
	}
	if tab.Str(a) != "read" || tab.Str(b) != "write" {
		t.Errorf("Str round trip: %q, %q", tab.Str(a), tab.Str(b))
	}
	if tab.Len() != 3 {
		t.Errorf("Len = %d, want 3 (\"\", read, write)", tab.Len())
	}
}

// TestTableBlockGrowth crosses several block boundaries and verifies
// every symbol still round-trips.
func TestTableBlockGrowth(t *testing.T) {
	tab := NewTable()
	const n = 3*blockLen + 17
	syms := make([]Sym, n)
	for i := 0; i < n; i++ {
		syms[i] = tab.Intern(fmt.Sprintf("s%05d", i))
	}
	for i, y := range syms {
		if got := tab.Str(y); got != fmt.Sprintf("s%05d", i) {
			t.Fatalf("Str(%d) = %q", y, got)
		}
	}
	if tab.Len() != n+1 {
		t.Errorf("Len = %d, want %d", tab.Len(), n+1)
	}
}

// TestInternConcurrent is the interner race test: N goroutines intern
// an overlapping vocabulary through per-worker caches; afterwards every
// string must have exactly one symbol, every observed symbol must
// round-trip, and the table must hold exactly the vocabulary. Run under
// -race this also proves the lock-free read path publishes safely.
func TestInternConcurrent(t *testing.T) {
	tab := NewTable()
	const workers = 8
	const perWorker = 4000
	vocab := make([]string, 199) // shared, overlapping vocabulary
	for i := range vocab {
		vocab[i] = fmt.Sprintf("/data/dir%02d/file%d", i%13, i)
	}
	results := make([]map[string]Sym, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			c := NewCache(tab)
			seen := make(map[string]Sym)
			for i := 0; i < perWorker; i++ {
				s := vocab[(w*31+i*7)%len(vocab)]
				y := c.Intern(s)
				if prev, ok := seen[s]; ok && prev != y {
					t.Errorf("worker %d: %q got symbols %d and %d", w, s, prev, y)
					return
				}
				seen[s] = y
				if got := tab.Str(y); got != s {
					t.Errorf("worker %d: Str(%d) = %q, want %q", w, y, got, s)
					return
				}
			}
			results[w] = seen
		}(w)
	}
	wg.Wait()

	// One id per string, across all workers.
	global := make(map[string]Sym)
	for w, seen := range results {
		for s, y := range seen {
			if prev, ok := global[s]; ok && prev != y {
				t.Errorf("worker %d: %q = %d, another worker saw %d", w, s, y, prev)
			}
			global[s] = y
		}
	}
	if len(global) != len(vocab) {
		t.Errorf("observed %d distinct strings, want %d", len(global), len(vocab))
	}
	if tab.Len() != len(vocab)+1 { // +1 for the pre-interned ""
		t.Errorf("table holds %d symbols, want %d", tab.Len(), len(vocab)+1)
	}
}

// TestCacheBytesAndCanon: the []byte forms agree with the string forms
// and return the canonical allocation.
func TestCacheBytesAndCanon(t *testing.T) {
	tab := NewTable()
	c := NewCache(tab)
	y := c.Intern("openat")
	if got := c.InternBytes([]byte("openat")); got != y {
		t.Errorf("InternBytes = %d, want %d", got, y)
	}
	if got := c.Canon("openat"); got != tab.Str(y) {
		t.Errorf("Canon = %q", got)
	}
	if got := c.CanonBytes([]byte("openat")); got != tab.Str(y) {
		t.Errorf("CanonBytes = %q", got)
	}
	if c.Table() != tab {
		t.Error("Table() identity")
	}
}

// TestLocalRemapIdentity: remapping a local table into an empty one
// reproduces the sequential symbol assignment exactly — the one-shard
// case of the merge remap.
func TestLocalRemapIdentity(t *testing.T) {
	l := NewLocal()
	for i := 0; i < 100; i++ {
		l.Intern(fmt.Sprintf("a%d", i%37))
	}
	dst := NewLocal()
	r := l.RemapInto(dst)
	for y := 0; y < l.Len(); y++ {
		if r[y] != Sym(y) {
			t.Fatalf("remap into empty: r[%d] = %d, want identity", y, r[y])
		}
		if dst.Str(r[y]) != l.Str(Sym(y)) {
			t.Fatalf("remap changed string: %q -> %q", l.Str(Sym(y)), dst.Str(r[y]))
		}
	}
}

// TestLocalRemapMerge is the merge-remap property test: shard-local
// tables built from a round-robin partition of one string stream,
// remapped into a single table in shard order, must (a) preserve every
// string exactly and (b) assign one symbol per distinct string — the
// precondition under which the sharded analysis fold's artifacts are
// byte-identical to the sequential fold's.
func TestLocalRemapMerge(t *testing.T) {
	stream := make([]string, 500)
	for i := range stream {
		stream[i] = fmt.Sprintf("/p/scratch/u%d/part%d", i%7, i%23)
	}
	for _, shards := range []int{1, 2, 3, 8} {
		locals := make([]*Local, shards)
		for i := range locals {
			locals[i] = NewLocal()
		}
		for i, s := range stream {
			locals[i%shards].Intern(s)
		}
		global := NewLocal()
		for si, l := range locals {
			r := l.RemapInto(global)
			for y := 0; y < l.Len(); y++ {
				if global.Str(r[y]) != l.Str(Sym(y)) {
					t.Fatalf("shards=%d shard %d: remap changed %q to %q",
						shards, si, l.Str(Sym(y)), global.Str(r[y]))
				}
			}
		}
		// The merged table holds exactly the distinct strings.
		distinct := make(map[string]bool)
		for _, s := range stream {
			distinct[s] = true
		}
		if global.Len() != len(distinct) {
			t.Errorf("shards=%d: merged table %d symbols, want %d", shards, global.Len(), len(distinct))
		}
		// Every string has exactly one global symbol, equal to a direct
		// sequential intern of the stream when shards == 1.
		for s := range distinct {
			if _, ok := global.Sym(s); !ok {
				t.Errorf("shards=%d: %q missing from merged table", shards, s)
			}
		}
	}
}

// TestGetPutCache: pooled caches front the Default table.
func TestGetPutCache(t *testing.T) {
	c := GetCache()
	if c.Table() != Default {
		t.Fatal("GetCache not over Default")
	}
	s := c.Canon("read")
	PutCache(c)
	c2 := GetCache()
	defer PutCache(c2)
	if got := c2.Canon("read"); got != s {
		t.Errorf("canonical string changed across pool round trip")
	}
}

// TestCacheFor: pooled caches bind to the requested table — nil means
// Default, a scoped table gets its own map, and interning through a
// scoped cache never touches Default.
func TestCacheFor(t *testing.T) {
	if c := CacheFor(nil); c.Table() != Default {
		t.Errorf("CacheFor(nil) bound to %p, want Default", c.Table())
	} else {
		PutCache(c)
	}
	tab := NewTable()
	d0 := Default.Len()
	c := CacheFor(tab)
	if c.Table() != tab {
		t.Fatalf("CacheFor bound to %p, want the scoped table", c.Table())
	}
	y := c.Intern("/cachefor-test-only/novel/path")
	if got := tab.Str(y); got != "/cachefor-test-only/novel/path" {
		t.Errorf("scoped round trip = %q", got)
	}
	if got := c.CanonBytes([]byte("/cachefor-test-only/other")); got != "/cachefor-test-only/other" {
		t.Errorf("scoped CanonBytes = %q", got)
	}
	if tab.Len() != 3 { // "", and the two paths
		t.Errorf("scoped table Len = %d, want 3", tab.Len())
	}
	if Default.Len() != d0 {
		t.Errorf("scoped interning grew Default: %d -> %d", d0, Default.Len())
	}
	PutCache(c)
}

// TestPutCacheScopedHygiene is the pool-hygiene regression test: a
// pooled cache must not pin a scoped table (or its strings, via the
// cache map) after the pass that owned the table puts the cache back.
// Default-bound caches, by contrast, keep their warm map — Default
// lives for the process anyway.
func TestPutCacheScopedHygiene(t *testing.T) {
	tab := NewTable()
	c := CacheFor(tab)
	c.Intern("/hygiene-test/a")
	PutCache(c)
	if c.t != nil {
		t.Errorf("scoped cache still references its table after PutCache")
	}
	if c.m != nil {
		t.Errorf("scoped cache still holds its map (and the table's strings) after PutCache")
	}

	d := GetCache()
	d.Intern("read")
	PutCache(d)
	if d.t != Default || d.m == nil {
		t.Errorf("Default-bound cache was stripped on PutCache; the warm-vocabulary reuse is gone")
	}
}

// TestScopedTableCollectableAfterPut proves the hygiene fix end to
// end: once a pass puts its caches back and drops its table, the table
// is garbage — nothing in the package-level pool keeps it alive.
func TestScopedTableCollectableAfterPut(t *testing.T) {
	collected := make(chan struct{})
	func() {
		tab := NewTable()
		runtime.SetFinalizer(tab, func(*Table) { close(collected) })
		c := CacheFor(tab)
		for i := 0; i < 1000; i++ {
			c.Intern(fmt.Sprintf("/collectable-test/%d", i))
		}
		PutCache(c)
	}()
	for i := 0; i < 100; i++ {
		runtime.GC()
		select {
		case <-collected:
			return
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	t.Fatal("scoped table never collected after PutCache — the pool pins it")
}

// TestCacheForNeverCrossesTables pins the no-aliasing contract of the
// cache pool: scoped tables never receive a pooled cache (each get is
// freshly bound, since the pool holds only Default-bound caches), so
// interleaving passes over different tables — with puts in between —
// can never serve a cache whose map belongs to another table.
func TestCacheForNeverCrossesTables(t *testing.T) {
	a, b := NewTable(), NewTable()
	for i := 0; i < 4; i++ {
		ca := CacheFor(a)
		if ca.Table() != a {
			t.Fatalf("cache bound to %p, want table a", ca.Table())
		}
		ya := ca.Intern("shared-key")
		if got := a.Str(ya); got != "shared-key" {
			t.Fatalf("table a round trip = %q", got)
		}
		PutCache(ca)
		cb := CacheFor(b)
		if cb.Table() != b {
			t.Fatalf("cache bound to %p, want table b", cb.Table())
		}
		yb := cb.Intern("shared-key")
		if got := b.Str(yb); got != "shared-key" {
			t.Fatalf("table b round trip = %q", got)
		}
		PutCache(cb)
	}
	if a.Len() != 2 || b.Len() != 2 {
		t.Errorf("table lens = %d, %d, want 2, 2", a.Len(), b.Len())
	}
}
