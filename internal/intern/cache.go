package intern

import "sync"

// cacheMax bounds a Cache's private map so a worker that sees an
// adversarial stream of distinct strings (a fuzzed trace, say) cannot
// grow its cache without bound; the shared Table keeps the canonical
// mapping either way.
const cacheMax = 1 << 15

// Cache is a per-worker, unsynchronized front of a Table. Lookups that
// hit the cache are plain map reads — no locks, no atomics — and the
// []byte forms avoid the string conversion allocation, so a parse
// worker interning the same call names and file paths over and over
// runs allocation-free.
//
// A Cache must not be shared between goroutines; get one per worker
// (CacheFor/PutCache pool them).
type Cache struct {
	t *Table
	m map[string]Sym
}

// NewCache returns an empty cache over t.
func NewCache(t *Table) *Cache {
	return &Cache{t: t, m: make(map[string]Sym, 64)}
}

// Table returns the shared table the cache fronts.
func (c *Cache) Table() *Table { return c.t }

func (c *Cache) trim() {
	if len(c.m) >= cacheMax {
		c.m = make(map[string]Sym, 64)
	}
}

// Intern returns the symbol for s.
func (c *Cache) Intern(s string) Sym {
	if y, ok := c.m[s]; ok {
		return y
	}
	y := c.t.Intern(s)
	c.trim()
	// Key with the table's canonical string so the cache never pins
	// the caller's (possibly larger) backing allocation.
	c.m[c.t.Str(y)] = y
	return y
}

// InternBytes is Intern for a []byte key. On a cache hit no string is
// allocated.
func (c *Cache) InternBytes(b []byte) Sym {
	if y, ok := c.m[string(b)]; ok { // compiler elides the conversion
		return y
	}
	y := c.t.Intern(string(b))
	c.trim()
	c.m[c.t.Str(y)] = y
	return y
}

// Canon returns the canonical (interned) string equal to s. Passing
// every parsed call name and file path through Canon deduplicates the
// event-log's strings: one allocation per distinct string per process,
// not one per event.
func (c *Cache) Canon(s string) string { return c.t.Str(c.Intern(s)) }

// CanonBytes is Canon for a []byte, allocating only on first sight.
func (c *Cache) CanonBytes(b []byte) string { return c.t.Str(c.InternBytes(b)) }

// cachePool recycles per-worker caches over the Default table — and
// only Default. Default lives for the process, so pooled caches stay
// warm across files forever; scoped-table caches never enter the pool
// (they would either pin their pass's table or, stripped, displace the
// warm Default caches).
var cachePool = sync.Pool{New: func() any { return NewCache(Default) }}

// CacheFor hands out a per-worker cache bound to t (nil means
// Default); return it with PutCache when the worker is done with its
// file/section. Default-bound caches are pooled and arrive warm; a
// scoped table gets a fresh cache, whose map costs a couple of
// allocations amortized over the whole file/section.
func CacheFor(t *Table) *Cache {
	if t == nil || t == Default {
		return cachePool.Get().(*Cache)
	}
	return NewCache(t)
}

// GetCache hands out a pooled per-worker cache over Default; it is
// CacheFor(Default).
func GetCache() *Cache { return CacheFor(nil) }

// PutCache retires a cache obtained from CacheFor/GetCache.
// Default-bound caches return to the pool with their warm map. A cache
// bound to a scoped table is not pooled; it drops its table reference
// and map instead, so even a stray caller reference to the cache
// cannot pin the pass's table (or any string it interned) after the
// pass's results were dropped — the retention the scoped mode exists
// to avoid.
func PutCache(c *Cache) {
	if c.t != Default {
		c.t, c.m = nil, nil
		return
	}
	cachePool.Put(c)
}
