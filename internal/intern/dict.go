package intern

import (
	"encoding/binary"
	"fmt"
)

// Dictionary serialization: the persisted form of a symbol table, used
// by the STA v2 archive to store a file-level dictionary so readers can
// load a run's symbols without re-canonicalizing per case. The format
// is the natural one for a dense Local — a count followed by
// length-prefixed strings in symbol order:
//
//	uvarint n | (uvarint len | bytes)*
//
// Symbols are positional: string i is Sym(i). The encoding carries no
// checksum; containers (the archive) frame and checksum the block.

// AppendDict appends the dictionary serialization of l to dst and
// returns the extended slice. Output is a pure function of the interned
// strings and their first-use order, so containers embedding a dict
// stay byte-reproducible.
func (l *Local) AppendDict(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(l.strs)))
	for _, s := range l.strs {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// DecodeDict parses a dictionary produced by AppendDict, consuming
// exactly len(data) bytes. The input is untrusted: claimed counts and
// lengths are validated against the bytes actually present before any
// sized allocation, and duplicate strings — which AppendDict can never
// emit, since Local symbols are distinct — are rejected rather than
// silently collapsed to a smaller table. Decoded strings are copied out
// of data, so the caller may recycle (or unmap) the buffer afterwards.
func DecodeDict(data []byte) (*Local, error) {
	n, w := binary.Uvarint(data)
	if w <= 0 {
		return nil, fmt.Errorf("intern: bad dictionary count")
	}
	off := w
	// Every string costs at least its one-byte length prefix, so a count
	// the buffer cannot hold is corruption, not an allocation request.
	if n > uint64(len(data)-off) {
		return nil, fmt.Errorf("intern: dictionary claims %d strings in %d bytes", n, len(data)-off)
	}
	l := &Local{
		m:    make(map[string]Sym, n),
		strs: make([]string, 0, n),
	}
	for i := uint64(0); i < n; i++ {
		sl, w := binary.Uvarint(data[off:])
		if w <= 0 {
			return nil, fmt.Errorf("intern: bad dictionary string length at offset %d", off)
		}
		off += w
		if sl > uint64(len(data)-off) {
			return nil, fmt.Errorf("intern: dictionary string of %d bytes exceeds buffer at offset %d", sl, off)
		}
		s := string(data[off : off+int(sl)])
		off += int(sl)
		if _, dup := l.m[s]; dup {
			return nil, fmt.Errorf("intern: duplicate dictionary string %q", s)
		}
		l.m[s] = Sym(len(l.strs))
		l.strs = append(l.strs, s)
	}
	if off != len(data) {
		return nil, fmt.Errorf("intern: %d trailing bytes after dictionary", len(data)-off)
	}
	return l, nil
}

// RemapIntoTable is the Table-destination counterpart of RemapInto: it
// canonicalizes every string of l through c (fronting either the
// process-wide table or a scoped one) and returns r with r[y] the
// canonical string for l.Str(y). As with RemapInto, meaning is
// preserved exactly — r[y] == l.Str(y) for every y — but the returned
// strings are the destination table's single retained copies, so N
// readers sharing a vocabulary retain one string per distinct value.
func (l *Local) RemapIntoTable(c *Cache) []string {
	r := make([]string, len(l.strs))
	for i, s := range l.strs {
		r[i] = c.Canon(s)
	}
	return r
}
