package intern

import (
	"bytes"
	"testing"
)

func TestDictRoundTrip(t *testing.T) {
	for _, strs := range [][]string{
		nil,
		{""},
		{"openat", "read", "", "/var/log/a", "read"},
		{"a", "b", "c", "aa", "bb"},
	} {
		l := NewLocal()
		for _, s := range strs {
			l.Intern(s)
		}
		enc := l.AppendDict(nil)
		got, err := DecodeDict(enc)
		if err != nil {
			t.Fatalf("DecodeDict(%q): %v", strs, err)
		}
		if got.Len() != l.Len() {
			t.Fatalf("round-trip of %q: %d strings, want %d", strs, got.Len(), l.Len())
		}
		for y := Sym(0); int(y) < l.Len(); y++ {
			if got.Str(y) != l.Str(y) {
				t.Fatalf("round-trip of %q: sym %d = %q, want %q", strs, y, got.Str(y), l.Str(y))
			}
			if ry, ok := got.Sym(l.Str(y)); !ok || ry != y {
				t.Fatalf("round-trip of %q: lookup %q = (%d,%v), want (%d,true)", strs, l.Str(y), ry, ok, y)
			}
		}
	}
}

func TestDictAppendExtends(t *testing.T) {
	l := NewLocal()
	l.Intern("x")
	prefix := []byte("hdr")
	out := l.AppendDict(prefix)
	if !bytes.HasPrefix(out, []byte("hdr")) {
		t.Fatalf("AppendDict did not extend the given slice: %q", out)
	}
	if _, err := DecodeDict(out[3:]); err != nil {
		t.Fatalf("decoding appended dict: %v", err)
	}
}

func TestDictDeterministic(t *testing.T) {
	build := func() []byte {
		l := NewLocal()
		for _, s := range []string{"read", "write", "/tmp/a", "read"} {
			l.Intern(s)
		}
		return l.AppendDict(nil)
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("AppendDict not deterministic for identical intern order")
	}
}

func TestDecodeDictHostile(t *testing.T) {
	l := NewLocal()
	l.Intern("abc")
	l.Intern("de")
	good := l.AppendDict(nil)

	cases := map[string][]byte{
		"empty":           {},
		"truncated count": {0x80},
		"huge count":      {0xff, 0xff, 0xff, 0xff, 0x0f},
		"count beyond buffer": func() []byte {
			// Claims 200 strings with 3 bytes of payload.
			return []byte{200, 1, 'a', 1}
		}(),
		"string beyond buffer": {1, 10, 'a'},
		"truncated string len": {1, 0x80},
		"trailing bytes":       append(append([]byte{}, good...), 0),
		"duplicate strings":    {2, 1, 'a', 1, 'a'},
	}
	for name, data := range cases {
		if _, err := DecodeDict(data); err == nil {
			t.Errorf("%s: DecodeDict accepted %v", name, data)
		}
	}

	// Truncation at every split point of a valid encoding must fail, not
	// misparse: the encoding is self-delimiting.
	for i := 0; i < len(good); i++ {
		if _, err := DecodeDict(good[:i]); err == nil {
			t.Errorf("DecodeDict accepted %d-byte truncation of %v", i, good)
		}
	}
}

func TestDecodeDictCopiesOutOfBuffer(t *testing.T) {
	l := NewLocal()
	l.Intern("volatile")
	enc := l.AppendDict(nil)
	got, err := DecodeDict(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		enc[i] = 0xaa // simulate the backing mmap being reused/unmapped
	}
	if got.Str(0) != "volatile" {
		t.Fatalf("decoded string aliases the input buffer: %q", got.Str(0))
	}
}

func TestRemapIntoTable(t *testing.T) {
	l := NewLocal()
	for _, s := range []string{"read", "openat", "/var/x"} {
		l.Intern(s)
	}
	tab := NewTable()
	c := NewCache(tab)
	r := l.RemapIntoTable(c)
	if len(r) != l.Len() {
		t.Fatalf("remap length %d, want %d", len(r), l.Len())
	}
	for y := 0; y < l.Len(); y++ {
		if r[y] != l.Str(Sym(y)) {
			t.Fatalf("remap[%d] = %q, want %q", y, r[y], l.Str(Sym(y)))
		}
	}
	// The returned strings must be the destination table's canonical
	// copies: remapping twice yields identical (shared) strings.
	r2 := l.RemapIntoTable(NewCache(tab))
	for y := range r {
		if &r[y] == &r2[y] {
			continue
		}
		if r[y] != r2[y] {
			t.Fatalf("second remap diverged at %d: %q vs %q", y, r[y], r2[y])
		}
	}
	if tab.Len() < 3 {
		t.Fatalf("destination table holds %d symbols, want >= 3", tab.Len())
	}
}
