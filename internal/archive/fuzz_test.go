package archive

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"stinspector/internal/synth/profiles"
)

// Robustness: arbitrary corruption of a valid archive must never panic —
// every byte flip either fails at open, fails at read, or (for bytes in
// unreachable padding) still round-trips correctly. Silent corruption is
// impossible because sections and the index are checksummed.
func TestReaderRobustnessUnderMutation(t *testing.T) {
	log := randLog(77, 4, 60)
	var f bytes.Buffer
	if err := Write(&f, log); err != nil {
		t.Fatal(err)
	}
	orig := f.Bytes()
	rng := rand.New(rand.NewSource(7))

	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), orig...)
		// 1-4 random mutations.
		for k := 0; k < 1+rng.Intn(4); k++ {
			switch rng.Intn(3) {
			case 0: // flip
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			case 1: // truncate
				if len(mut) > 1 {
					mut = mut[:rng.Intn(len(mut))]
				}
			case 2: // extend with junk
				mut = append(mut, byte(rng.Intn(256)))
			}
		}
		r, err := NewReader(bytes.NewReader(mut), int64(len(mut)))
		if err != nil {
			continue
		}
		_, _ = r.ReadAll() // must not panic
	}
}

// FuzzSectionDecode drives arbitrary bytes through the streaming decode
// path: NewReader followed by Reader.Stream at several worker/window
// settings. Whatever the corruption, the source must never panic, must
// terminate, and must agree with the materializing ReadAll on both the
// error/success verdict and (on success) the decoded contents — the
// stream and the in-memory path share one notion of a valid archive.
func FuzzSectionDecode(f *testing.F) {
	// Seed with valid archives (several shapes) and a few mutants so
	// the fuzzer starts inside the format, not at the magic check.
	for seed := int64(1); seed <= 3; seed++ {
		var buf bytes.Buffer
		if err := Write(&buf, randLog(seed, int(seed)+1, 20)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		mut := append([]byte(nil), buf.Bytes()...)
		mut[len(mut)/2] ^= 0x40
		f.Add(mut)
	}
	// A hostileargs-profile archive seeds the mutator with the quoting
	// and control-character torture paths of the adversarial generators.
	if p, ok := profiles.Lookup("hostileargs"); ok {
		var buf bytes.Buffer
		if err := Write(&buf, p.Generate("fz", 3, 12, 20240924)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		mut := append([]byte(nil), buf.Bytes()...)
		mut[len(mut)/3] ^= 0x11
		f.Add(mut)
	}
	f.Add([]byte(magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		want, wantErr := r.ReadAll()
		for _, cfg := range [][2]int{{1, 1}, {4, 2}, {3, 8}} {
			src := r.Stream(cfg[0], cfg[1])
			var events, cases int
			var streamErr error
			for {
				c, err := src.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					streamErr = err
					break
				}
				cases++
				events += c.Len()
			}
			src.Close()
			if (streamErr == nil) != (wantErr == nil) {
				t.Fatalf("workers=%d window=%d: stream err %v, ReadAll err %v", cfg[0], cfg[1], streamErr, wantErr)
			}
			if wantErr == nil && (cases != want.NumCases() || events != want.NumEvents()) {
				t.Fatalf("workers=%d window=%d: streamed %d cases / %d events, ReadAll %d / %d",
					cfg[0], cfg[1], cases, events, want.NumCases(), want.NumEvents())
			}
		}
	})
}

// FuzzArchiveV2Decode is FuzzSectionDecode for the v2 format: arbitrary
// bytes through NewReader (which auto-detects and takes the columnar
// path on the v2 magic) and the streaming decode at several
// worker/window settings. The stakes are higher than v1's — production
// readers decode v2 sections zero-copy from an mmap of untrusted bytes —
// so the invariants are the same and non-negotiable: never panic,
// always terminate, stream and ReadAll agree on verdict and contents.
func FuzzArchiveV2Decode(f *testing.F) {
	for seed := int64(1); seed <= 3; seed++ {
		var buf bytes.Buffer
		if err := WriteV2(&buf, randLog(seed, int(seed)+1, 20)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		mut := append([]byte(nil), buf.Bytes()...)
		mut[len(mut)/2] ^= 0x40
		f.Add(mut)
	}
	if p, ok := profiles.Lookup("hostileargs"); ok {
		var buf bytes.Buffer
		if err := WriteV2(&buf, p.Generate("fz", 3, 12, 20240924)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		mut := append([]byte(nil), buf.Bytes()...)
		mut[len(mut)/3] ^= 0x11
		f.Add(mut)
	}
	f.Add([]byte(magicV2))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReaderBytes(data)
		if err != nil {
			return
		}
		want, wantErr := r.ReadAll()
		for _, cfg := range [][2]int{{1, 1}, {4, 2}, {3, 8}} {
			src := r.Stream(cfg[0], cfg[1])
			var events, cases int
			var streamErr error
			for {
				c, err := src.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					streamErr = err
					break
				}
				cases++
				events += c.Len()
			}
			src.Close()
			if (streamErr == nil) != (wantErr == nil) {
				t.Fatalf("workers=%d window=%d: stream err %v, ReadAll err %v", cfg[0], cfg[1], streamErr, wantErr)
			}
			if wantErr == nil && (cases != want.NumCases() || events != want.NumEvents()) {
				t.Fatalf("workers=%d window=%d: streamed %d cases / %d events, ReadAll %d / %d",
					cfg[0], cfg[1], cases, events, want.NumCases(), want.NumEvents())
			}
		}
		// Range slicing must stay within the same validity verdict: a
		// decodable archive slices cleanly, a corrupt one never panics.
		if wantErr == nil && want.NumCases() > 1 {
			src := r.StreamRange(1, want.NumCases(), 2, 2)
			n := 0
			for {
				c, err := src.Next()
				if err != nil {
					break
				}
				_ = c
				n++
			}
			src.Close()
			if n != want.NumCases()-1 {
				t.Fatalf("range [1,n) streamed %d cases, want %d", n, want.NumCases()-1)
			}
		}
	})
}

// Robustness: random byte blobs presented as archives must never panic.
func TestReaderRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(400)
		blob := make([]byte, n)
		rng.Read(blob)
		// Occasionally fake the magics so deeper paths run.
		if n >= 4 && trial%3 == 0 {
			copy(blob, magic)
		}
		if n >= footerSize && trial%5 == 0 {
			copy(blob[n-4:], footerMagic)
		}
		r, err := NewReader(bytes.NewReader(blob), int64(n))
		if err != nil {
			continue
		}
		_, _ = r.ReadAll()
	}
}
