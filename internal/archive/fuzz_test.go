package archive

import (
	"bytes"
	"math/rand"
	"testing"
)

// Robustness: arbitrary corruption of a valid archive must never panic —
// every byte flip either fails at open, fails at read, or (for bytes in
// unreachable padding) still round-trips correctly. Silent corruption is
// impossible because sections and the index are checksummed.
func TestReaderRobustnessUnderMutation(t *testing.T) {
	log := randLog(77, 4, 60)
	var f bytes.Buffer
	if err := Write(&f, log); err != nil {
		t.Fatal(err)
	}
	orig := f.Bytes()
	rng := rand.New(rand.NewSource(7))

	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), orig...)
		// 1-4 random mutations.
		for k := 0; k < 1+rng.Intn(4); k++ {
			switch rng.Intn(3) {
			case 0: // flip
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			case 1: // truncate
				if len(mut) > 1 {
					mut = mut[:rng.Intn(len(mut))]
				}
			case 2: // extend with junk
				mut = append(mut, byte(rng.Intn(256)))
			}
		}
		r, err := NewReader(bytes.NewReader(mut), int64(len(mut)))
		if err != nil {
			continue
		}
		_, _ = r.ReadAll() // must not panic
	}
}

// Robustness: random byte blobs presented as archives must never panic.
func TestReaderRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(400)
		blob := make([]byte, n)
		rng.Read(blob)
		// Occasionally fake the magics so deeper paths run.
		if n >= 4 && trial%3 == 0 {
			copy(blob, magic)
		}
		if n >= footerSize && trial%5 == 0 {
			copy(blob[n-4:], footerMagic)
		}
		r, err := NewReader(bytes.NewReader(blob), int64(n))
		if err != nil {
			continue
		}
		_, _ = r.ReadAll()
	}
}
