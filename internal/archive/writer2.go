package archive

import (
	"fmt"
	"io"

	"stinspector/internal/fsatomic"
	"stinspector/internal/intern"
	"stinspector/internal/trace"
)

// V2Writer writes an STA v2 archive incrementally: each Add encodes and
// flushes one case while only the file-level dictionary and the case
// index accumulate in memory. Memory is therefore proportional to the
// vocabulary and case count, not the event data, which is what lets
// tracegen emit multi-GB corpora without materializing them. Cases land
// in Add order; Finish writes the dictionary, index, and footer.
//
// Output is byte-for-byte reproducible for a given case sequence: the
// dictionary assigns symbols in first-use order, a pure function of the
// content.
type V2Writer struct {
	w        io.Writer
	written  int64
	err      error
	started  bool
	finished bool
	dict     *intern.Local
	entries  []indexEntry
	cols     [6]buf // per-column scratch, reused across cases
	sec      buf    // assembled-section scratch, reused across cases
}

// NewV2Writer returns a writer that will stream an STA v2 archive to w.
// The caller must call Finish to complete the file.
func NewV2Writer(w io.Writer) *V2Writer {
	return &V2Writer{w: w, dict: intern.NewLocal()}
}

func (vw *V2Writer) count(p []byte) error {
	n, err := vw.w.Write(p)
	vw.written += int64(n)
	if err != nil {
		vw.err = err
	}
	return err
}

func (vw *V2Writer) start() error {
	if vw.started {
		return vw.err
	}
	vw.started = true
	var head buf
	head.raw([]byte(magicV2))
	head.u32(versionV2)
	return vw.count(head.bytes())
}

// Add appends one case to the archive. The case must be sorted by start
// time (Equation (2) order), which is also what lets readers skip
// re-sorting: the delta-encoded start column proves the order.
func (vw *V2Writer) Add(c *trace.Case) error {
	if vw.finished {
		return fmt.Errorf("archive: Add after Finish")
	}
	if vw.err != nil {
		return vw.err
	}
	if err := vw.start(); err != nil {
		return err
	}
	if !c.Sorted() {
		return fmt.Errorf("archive: case %s is not sorted by start time", c.ID)
	}
	cidSym := vw.dict.Intern(c.ID.CID)
	hostSym := vw.dict.Intern(c.ID.Host)
	sec := vw.encodeCase(c, len(vw.entries))
	vw.entries = append(vw.entries, indexEntry{
		id:      c.ID,
		cidSym:  uint32(cidSym),
		hostSym: uint32(hostSym),
		offset:  uint64(vw.written),
		length:  uint64(len(sec)),
		events:  uint64(len(c.Events)),
	})
	return vw.count(sec)
}

// Finish writes the dictionary, index, and footer. The writer cannot be
// used afterwards.
func (vw *V2Writer) Finish() error {
	if vw.finished {
		return fmt.Errorf("archive: Finish twice")
	}
	if vw.err != nil {
		return vw.err
	}
	if err := vw.start(); err != nil {
		return err
	}
	vw.finished = true

	dictOffset := uint64(vw.written)
	payload := vw.dict.AppendDict(nil)
	var dict buf
	dict.raw(payload)
	dict.u32(checksum(payload))
	if err := vw.count(dict.bytes()); err != nil {
		return err
	}

	indexOffset := uint64(vw.written)
	var idx buf
	idx.uvarint(uint64(len(vw.entries)))
	for _, ent := range vw.entries {
		idx.uvarint(uint64(ent.cidSym))
		idx.uvarint(uint64(ent.hostSym))
		idx.varint(int64(ent.id.RID))
		idx.uvarint(ent.offset)
		idx.uvarint(ent.length)
		idx.uvarint(ent.events)
	}
	if err := vw.count(idx.bytes()); err != nil {
		return err
	}

	var foot buf
	foot.u64(dictOffset)
	foot.u64(indexOffset)
	foot.u32(checksum(idx.bytes()))
	foot.raw([]byte(footerMagicV2))
	return vw.count(foot.bytes())
}

// encodeCase serializes one case as a columnar v2 section (see
// format2.go for the layout). Column scratch buffers are reused across
// cases, so steady-state encoding allocates only when a column outgrows
// its previous high-water mark.
func (vw *V2Writer) encodeCase(c *trace.Case, ordinal int) []byte {
	for j := range vw.cols {
		vw.cols[j].b = vw.cols[j].b[:0]
	}
	pid, call, start := &vw.cols[0], &vw.cols[1], &vw.cols[2]
	dur, fp, size := &vw.cols[3], &vw.cols[4], &vw.cols[5]
	prev := int64(0)
	for i, e := range c.Events {
		pid.varint(int64(e.PID))
		call.uvarint(uint64(vw.dict.Intern(e.Call)))
		v := int64(e.Start)
		if i == 0 {
			start.varint(v)
		} else {
			start.uvarint(uint64(v - prev))
		}
		prev = v
		dur.uvarint(uint64(e.Dur))
		fp.uvarint(uint64(vw.dict.Intern(e.FP)))
		size.varint(e.Size)
	}

	sec := &vw.sec
	sec.b = sec.b[:0]
	sec.uvarint(uint64(ordinal))
	sec.uvarint(uint64(len(c.Events)))
	for j := range vw.cols {
		sec.uvarint(uint64(len(vw.cols[j].b)))
	}
	for j := range vw.cols {
		sec.raw(vw.cols[j].b)
	}
	sec.u32(checksum(sec.b))
	return sec.b
}

// WriteV2 serializes the event-log in the STA v2 format, the columnar
// counterpart of Write. Cases are written in the log's deterministic
// order; the output is byte-for-byte reproducible for a given log.
func WriteV2(w io.Writer, log *trace.EventLog) error {
	vw := NewV2Writer(w)
	for _, c := range log.Cases() {
		if err := vw.Add(c); err != nil {
			return err
		}
	}
	return vw.Finish()
}

// WriteFileV2 serializes the event-log to a v2 file with the same
// crash-safety contract as WriteFile: the archive lands in a temporary
// file that is synced and renamed over path only once complete.
func WriteFileV2(path string, log *trace.EventLog) error {
	return fsatomic.WriteFile(path, func(w io.Writer) error {
		return WriteV2(w, log)
	})
}
