package archive

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"stinspector/internal/intern"
	"stinspector/internal/trace"
)

// newReaderV2 finishes opening a reader whose head identified an STA v2
// image: it loads and verifies the footer, dictionary, and index. All
// counts, offsets, and symbol ids come from untrusted bytes and are
// validated against the regions that actually exist before any sized
// allocation or slice, mirroring the v1 guards.
func newReaderV2(src io.ReaderAt, size int64, ver uint32) (*Reader, error) {
	if ver != versionV2 {
		return nil, fmt.Errorf("archive: unsupported version %d", ver)
	}
	if size < headerV2Size+footerV2Size {
		return nil, corrupt("file too small (%d bytes)", size)
	}
	foot := make([]byte, footerV2Size)
	if _, err := src.ReadAt(foot, size-footerV2Size); err != nil {
		return nil, err
	}
	if string(foot[footerV2Size-4:]) != footerMagicV2 {
		return nil, corrupt("bad footer magic %q", foot[footerV2Size-4:])
	}
	dictOffset := binary.LittleEndian.Uint64(foot)
	indexOffset := binary.LittleEndian.Uint64(foot[8:])
	indexCRC := binary.LittleEndian.Uint32(foot[16:])
	if indexOffset > uint64(size-footerV2Size) {
		return nil, corrupt("index offset %d beyond file", indexOffset)
	}
	if dictOffset < headerV2Size || dictOffset > indexOffset {
		return nil, corrupt("dictionary region [%d,%d) out of order", dictOffset, indexOffset)
	}
	// The dictionary region is its payload plus a trailing CRC; even an
	// empty dictionary needs a count byte.
	if indexOffset-dictOffset < 5 {
		return nil, corrupt("dictionary region of %d bytes too small", indexOffset-dictOffset)
	}

	dictRegion := make([]byte, indexOffset-dictOffset)
	if _, err := src.ReadAt(dictRegion, int64(dictOffset)); err != nil {
		return nil, err
	}
	payload := dictRegion[:len(dictRegion)-4]
	if checksum(payload) != binary.LittleEndian.Uint32(dictRegion[len(dictRegion)-4:]) {
		return nil, corrupt("dictionary checksum mismatch")
	}
	dict, err := intern.DecodeDict(payload)
	if err != nil {
		return nil, corrupt("dictionary: %v", err)
	}

	idx := make([]byte, uint64(size-footerV2Size)-indexOffset)
	if _, err := src.ReadAt(idx, int64(indexOffset)); err != nil {
		return nil, err
	}
	if checksum(idx) != indexCRC {
		return nil, corrupt("index checksum mismatch")
	}

	ic := &cursor{b: idx}
	n, err := ic.uvarint()
	if err != nil {
		return nil, err
	}
	// Every index entry needs at least 6 bytes (six one-byte varints),
	// so a count the index bytes cannot hold is corruption, not an
	// allocation request.
	if n > uint64(ic.remaining())/6 {
		return nil, corrupt("index claims %d cases in %d bytes", n, ic.remaining())
	}
	nsyms := uint64(dict.Len())
	r := &Reader{
		src:         src,
		ver:         versionV2,
		dict:        dict,
		resolveOnce: new(sync.Once),
		byID:        make(map[trace.CaseID]int, n),
	}
	for i := uint64(0); i < n; i++ {
		var ent indexEntry
		cidSym, err := ic.uvarint()
		if err != nil {
			return nil, err
		}
		hostSym, err := ic.uvarint()
		if err != nil {
			return nil, err
		}
		if cidSym >= nsyms || hostSym >= nsyms {
			return nil, corrupt("case %d identity symbols (%d,%d) beyond dictionary of %d", i, cidSym, hostSym, nsyms)
		}
		ent.cidSym, ent.hostSym = uint32(cidSym), uint32(hostSym)
		ent.id.CID = dict.Str(intern.Sym(cidSym))
		ent.id.Host = dict.Str(intern.Sym(hostSym))
		rid, err := ic.varint()
		if err != nil {
			return nil, err
		}
		ent.id.RID = int(rid)
		if ent.offset, err = ic.uvarint(); err != nil {
			return nil, err
		}
		if ent.length, err = ic.uvarint(); err != nil {
			return nil, err
		}
		if ent.events, err = ic.uvarint(); err != nil {
			return nil, err
		}
		// Sections live strictly between the header and the dictionary.
		// Compare without computing offset+length: hostile values near
		// MaxUint64 would wrap the sum back into range.
		if ent.offset < headerV2Size || ent.length > dictOffset || ent.offset > dictOffset-ent.length {
			return nil, corrupt("case %s section [%d,+%d) outside data region", ent.id, ent.offset, ent.length)
		}
		r.byID[ent.id] = len(r.entries)
		r.entries = append(r.entries, ent)
	}
	return r, nil
}

// resolve returns the dictionary remapped into the reader's current
// symbol table: resolve()[fileSym] is the canonical string. The remap
// runs once per table binding — the near-zero-parse property: after it,
// section decode touches no hash table and allocates no strings.
// Concurrent decode workers share the one remap via the Once; SetSyms
// (documented as not concurrent with decodes) installs a fresh Once.
func (r *Reader) resolve() []string {
	r.resolveOnce.Do(func() {
		cache := r.getCache()
		r.resolved = r.dict.RemapIntoTable(cache)
		r.putCache(cache)
	})
	return r.resolved
}

func (r *Reader) readEntryV2(i int) (*trace.Case, error) {
	ent := &r.entries[i]
	resolved := r.resolve()
	if r.data != nil {
		// Zero-copy: the section is a subslice of the mapping; decode
		// copies every value out, so nothing escapes the mmap lifetime.
		sec := r.data[ent.offset : ent.offset+ent.length]
		return decodeCaseV2(sec, i, ent, resolved)
	}
	bp, _ := r.secBufs.Get().(*[]byte)
	if bp == nil || uint64(cap(*bp)) < ent.length {
		b := make([]byte, ent.length)
		bp = &b
	}
	sec := (*bp)[:ent.length]
	defer r.secBufs.Put(bp)
	if _, err := r.src.ReadAt(sec, int64(ent.offset)); err != nil {
		return nil, err
	}
	return decodeCaseV2(sec, i, ent, resolved)
}

// colCursor is the hot-path varint decoder for v2 column blocks. Unlike
// cursor it does not return an error per value: column byte ranges are
// pre-sliced from the section header, so a malformed varint can only
// arise inside one column, and the per-column done() check after the
// loop catches it. The single-byte fast path covers the common small
// values (symbols, short durations) without the binary.Uvarint call.
type colCursor struct {
	b   []byte
	off int
	bad bool
}

func (c *colCursor) uvarint() uint64 {
	b, i := c.b, c.off
	if i < len(b) {
		if b0 := b[i]; b0 < 0x80 {
			c.off = i + 1
			return uint64(b0)
		}
	}
	return c.uvarintSlow()
}

// uvarintSlow decodes the multi-byte encodings, unrolled for the 2–4
// byte lengths that dominate real columns (timestamps in nanoseconds,
// transfer sizes): binary.Uvarint's generic loop would re-read byte 0
// and pay its bounds check per byte.
func (c *colCursor) uvarintSlow() uint64 {
	b, i := c.b, c.off
	if i+1 < len(b) {
		b0 := uint64(b[i] & 0x7f)
		if b1 := b[i+1]; b1 < 0x80 {
			c.off = i + 2
			return b0 | uint64(b1)<<7
		} else if i+2 < len(b) {
			b1 := uint64(b1 & 0x7f)
			if b2 := b[i+2]; b2 < 0x80 {
				c.off = i + 3
				return b0 | b1<<7 | uint64(b2)<<14
			} else if i+3 < len(b) {
				if b3 := b[i+3]; b3 < 0x80 {
					c.off = i + 4
					return b0 | b1<<7 | uint64(b2&0x7f)<<14 | uint64(b3)<<21
				}
			}
		}
	}
	v, n := binary.Uvarint(b[i:])
	if n <= 0 {
		c.bad = true
		return 0
	}
	c.off = i + n
	return v
}

func (c *colCursor) varint() int64 {
	ux := c.uvarint()
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x
}

// done reports whether the column decoded cleanly and consumed exactly
// its bytes — the v2 analogue of v1's per-value error checks, amortized
// to one check per column.
func (c *colCursor) done() bool { return !c.bad && c.off == len(c.b) }

// decodeCaseV2 parses and verifies one columnar section. resolved is
// the dictionary remap from resolve(); every string in the result is a
// canonical table string, and no hashing, sorting, or event copying
// happens here: the delta-encoded start column proves Equation (2)
// order, so the events are assembled once, in place.
func decodeCaseV2(sec []byte, ordinal int, ent *indexEntry, resolved []string) (*trace.Case, error) {
	if len(sec) < 4 {
		return nil, corrupt("case %s: section of %d bytes too small", ent.id, len(sec))
	}
	body := sec[:len(sec)-4]
	if checksum(body) != binary.LittleEndian.Uint32(sec[len(sec)-4:]) {
		return nil, corrupt("case %s: section checksum mismatch", ent.id)
	}

	c := &cursor{b: body}
	ord, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	// The ordinal binds section to index slot, catching an index whose
	// offsets point at the wrong (but individually valid) sections.
	if ord != uint64(ordinal) {
		return nil, corrupt("section holds case %d, index says %d (%s)", ord, ordinal, ent.id)
	}
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n != ent.events {
		return nil, corrupt("case %s: section holds %d events, index says %d", ent.id, n, ent.events)
	}
	var colLen [6]uint64
	for j := range colLen {
		if colLen[j], err = c.uvarint(); err != nil {
			return nil, err
		}
	}
	var cols [6][]byte
	for j, cl := range colLen {
		if cl > uint64(c.remaining()) {
			return nil, corrupt("case %s: column %d of %d bytes exceeds section", ent.id, j, cl)
		}
		cols[j] = body[c.off : c.off+int(cl) : c.off+int(cl)]
		c.off += int(cl)
		// Each event contributes at least one byte to every column, so a
		// count a column cannot hold is corruption, not an allocation
		// request.
		if n > cl {
			return nil, corrupt("case %s: %d events claimed in %d-byte column %d", ent.id, n, cl, j)
		}
	}
	if c.remaining() != 0 {
		return nil, corrupt("case %s: %d trailing bytes after columns", ent.id, c.remaining())
	}

	id := trace.CaseID{
		CID:  resolved[ent.cidSym],
		Host: resolved[ent.hostSym],
		RID:  ent.id.RID,
	}
	// nil for an empty case, exactly as NewCase builds — decoded cases
	// must be indistinguishable from in-memory ones.
	var events []trace.Event
	if n > 0 {
		events = make([]trace.Event, n)
	}

	pc := colCursor{b: cols[0]}
	for i := range events {
		events[i].PID = int(pc.varint())
		events[i].CID = id.CID
		events[i].Host = id.Host
		events[i].RID = id.RID
	}
	if !pc.done() {
		return nil, corrupt("case %s: malformed pid column", id)
	}

	nres := uint64(len(resolved))
	cc := colCursor{b: cols[1]}
	for i := range events {
		s := cc.uvarint()
		if s >= nres {
			return nil, corrupt("case %s: call symbol %d beyond dictionary of %d", id, s, nres)
		}
		events[i].Call = resolved[s]
	}
	if !cc.done() {
		return nil, corrupt("case %s: malformed call column", id)
	}

	sc := colCursor{b: cols[2]}
	prev := int64(0)
	for i := range events {
		if i == 0 {
			prev = sc.varint()
		} else {
			d := sc.uvarint()
			// Deltas are non-negative; a sum past MaxInt64 would wrap
			// into a garbage (negative) timestamp instead of failing.
			if d > math.MaxInt64 || prev > math.MaxInt64-int64(d) {
				return nil, corrupt("case %s: start timestamp overflows at event %d", id, i)
			}
			prev += int64(d)
		}
		events[i].Start = time.Duration(prev)
	}
	if !sc.done() {
		return nil, corrupt("case %s: malformed start column", id)
	}

	dc := colCursor{b: cols[3]}
	for i := range events {
		events[i].Dur = time.Duration(dc.uvarint())
	}
	if !dc.done() {
		return nil, corrupt("case %s: malformed dur column", id)
	}

	fc := colCursor{b: cols[4]}
	for i := range events {
		s := fc.uvarint()
		if s >= nres {
			return nil, corrupt("case %s: fp symbol %d beyond dictionary of %d", id, s, nres)
		}
		events[i].FP = resolved[s]
	}
	if !fc.done() {
		return nil, corrupt("case %s: malformed fp column", id)
	}

	zc := colCursor{b: cols[5]}
	for i := range events {
		events[i].Size = zc.varint()
	}
	if !zc.done() {
		return nil, corrupt("case %s: malformed size column", id)
	}

	// The start column's non-negative deltas prove the events are already
	// in Equation (2) order and they were stamped above, so NewCase's
	// copy and stable sort would be pure overhead.
	return &trace.Case{ID: id, Events: events}, nil
}
