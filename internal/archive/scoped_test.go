package archive

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"stinspector/internal/intern"
	"stinspector/internal/trace"
)

// scopedTestLog builds a tiny log with paths unique to this test, so
// any growth of the process-wide table is attributable to the decode
// under test.
func scopedTestLog(t *testing.T) *trace.EventLog {
	t.Helper()
	evs := []trace.Event{
		{PID: 1, Call: "openat", Start: 0, Dur: time.Microsecond, FP: "/scoped-archive-test/a.bin", Size: trace.SizeUnknown},
		{PID: 1, Call: "read", Start: 2 * time.Microsecond, Dur: time.Microsecond, FP: "/scoped-archive-test/a.bin", Size: 512},
		{PID: 1, Call: "close", Start: 4 * time.Microsecond, Dur: time.Microsecond, FP: "/scoped-archive-test/a.bin", Size: trace.SizeUnknown},
	}
	c := trace.NewCase(trace.CaseID{CID: "scoped-archive-test", Host: "h0", RID: 0}, evs)
	return trace.MustNewEventLog(c)
}

// TestReaderScopedSyms: SetSyms scopes section decodes to the given
// table; Default does not grow, and the decoded log is identical to a
// Default-table decode.
func TestReaderScopedSyms(t *testing.T) {
	log := scopedTestLog(t)
	var buf bytes.Buffer
	if err := Write(&buf, log); err != nil {
		t.Fatal(err)
	}
	open := func() *Reader {
		r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	want, err := open().ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	tab := intern.NewTable()
	r := open()
	r.SetSyms(tab)
	d0 := intern.Default.Len()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if intern.Default.Len() != d0 {
		t.Errorf("scoped decode grew Default: %d -> %d", d0, intern.Default.Len())
	}
	if tab.Len() < 4 {
		t.Errorf("scoped table holds %d symbols, want the archive vocabulary", tab.Len())
	}
	if !reflect.DeepEqual(got.Cases()[0].Events, want.Cases()[0].Events) {
		t.Errorf("scoped decode differs from Default decode")
	}

	// SetSyms(nil) restores Default-table decoding, and an explicit
	// Default normalizes to the same pooled-cache path.
	r.SetSyms(nil)
	if _, err := r.ReadAll(); err != nil {
		t.Fatal(err)
	}
	r.SetSyms(intern.Default)
	if r.syms != nil {
		t.Error("SetSyms(intern.Default) not normalized to the pooled nil path")
	}
	if _, err := r.ReadAll(); err != nil {
		t.Fatal(err)
	}
}
