package archive

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"stinspector/internal/trace"
)

// TestReadAllParallelEquivalence: concurrent section decode returns the
// identical event-log for every worker count.
func TestReadAllParallelEquivalence(t *testing.T) {
	cases := make([]*trace.Case, 20)
	for i := range cases {
		evs := make([]trace.Event, 50)
		for j := range evs {
			evs[j] = trace.Event{
				PID:   900 + i,
				Call:  []string{"read", "write"}[j%2],
				Start: time.Duration(j) * time.Millisecond,
				Dur:   time.Duration(10+j) * time.Microsecond,
				FP:    fmt.Sprintf("/arc/case%d/f%d", i, j%4),
				Size:  int64(j * 17),
			}
		}
		cases[i] = trace.NewCase(trace.CaseID{CID: "arc", Host: "h", RID: i}, evs)
	}
	el := trace.MustNewEventLog(cases...)
	var buf bytes.Buffer
	if err := Write(&buf, el); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	decode := func(parallelism int) *trace.EventLog {
		t.Helper()
		r, err := NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadAllParallel(parallelism)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	want := decode(1)
	for _, p := range []int{0, 2, 7, 32} {
		got := decode(p)
		if got.NumCases() != want.NumCases() {
			t.Fatalf("parallelism=%d: %d cases, want %d", p, got.NumCases(), want.NumCases())
		}
		gc, wc := got.Cases(), want.Cases()
		for i := range gc {
			if gc[i].ID != wc[i].ID || !reflect.DeepEqual(gc[i].Events, wc[i].Events) {
				t.Fatalf("parallelism=%d: case %d differs", p, i)
			}
		}
	}
}

// TestReadAllParallelCorruptSection: a corrupt case section fails the
// decode deterministically at every worker count.
func TestReadAllParallelCorruptSection(t *testing.T) {
	cases := make([]*trace.Case, 8)
	for i := range cases {
		cases[i] = trace.NewCase(trace.CaseID{CID: "arc", Host: "h", RID: i}, []trace.Event{
			{PID: 1, Call: "read", Start: time.Millisecond, Dur: time.Microsecond, FP: "/f", Size: 4},
		})
	}
	var buf bytes.Buffer
	if err := Write(&buf, trace.MustNewEventLog(cases...)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte early in the file: inside some case section, before the
	// index (which sits at the end).
	data[20] ^= 0xff
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Skip("corruption landed in the header; reader rejected the file outright")
	}
	var msgs []string
	for _, p := range []int{1, 4} {
		_, err := r.ReadAllParallel(p)
		if err == nil {
			t.Fatalf("parallelism=%d: corrupt section not detected", p)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Errorf("error differs across parallelism: %q vs %q", msgs[0], msgs[1])
	}
}
