package archive

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"stinspector/internal/trace"
)

func randLog(seed int64, nCases, maxEvents int) *trace.EventLog {
	rng := rand.New(rand.NewSource(seed))
	calls := []string{"read", "write", "openat", "lseek", "pread64", "pwrite64"}
	paths := []string{"/usr/lib/libc.so.6", "/scratch/ssf/test", "/dev/pts/7", "/etc/passwd", ""}
	var cases []*trace.Case
	for i := 0; i < nCases; i++ {
		id := trace.CaseID{CID: "arc", Host: "hostX", RID: 1000 + i}
		n := rng.Intn(maxEvents)
		evs := make([]trace.Event, n)
		start := time.Duration(rng.Int63n(int64(24 * time.Hour)))
		for j := range evs {
			start += time.Duration(rng.Intn(100000)) * time.Nanosecond
			evs[j] = trace.Event{
				PID:   2000 + rng.Intn(4),
				Call:  calls[rng.Intn(len(calls))],
				Start: start,
				Dur:   time.Duration(rng.Intn(1e6)) * time.Nanosecond,
				FP:    paths[rng.Intn(len(paths))],
				Size:  int64(rng.Intn(1<<21)) - 1,
			}
		}
		cases = append(cases, trace.NewCase(id, evs))
	}
	return trace.MustNewEventLog(cases...)
}

func logsEqual(t *testing.T, got, want *trace.EventLog) {
	t.Helper()
	if got.NumCases() != want.NumCases() {
		t.Fatalf("cases = %d, want %d", got.NumCases(), want.NumCases())
	}
	for _, wc := range want.Cases() {
		gc := got.Case(wc.ID)
		if gc == nil {
			t.Fatalf("case %s missing", wc.ID)
		}
		if len(gc.Events) != len(wc.Events) {
			t.Fatalf("case %s: %d events, want %d", wc.ID, len(gc.Events), len(wc.Events))
		}
		if len(wc.Events) > 0 && !reflect.DeepEqual(gc.Events, wc.Events) {
			t.Fatalf("case %s events differ", wc.ID)
		}
	}
}

func TestRoundTripFile(t *testing.T) {
	want := randLog(1, 6, 200)
	path := filepath.Join(t.TempDir(), "log.sta")
	if err := WriteFile(path, want); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadLog(path)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	logsEqual(t, got, want)
}

func TestRoundTripPropertyMany(t *testing.T) {
	for seed := int64(2); seed < 22; seed++ {
		want := randLog(seed, 1+int(seed)%5, 80)
		var f bytes.Buffer
		if err := Write(&f, want); err != nil {
			t.Fatalf("seed %d: Write: %v", seed, err)
		}
		r, err := NewReader(bytes.NewReader(f.Bytes()), int64(f.Len()))
		if err != nil {
			t.Fatalf("seed %d: NewReader: %v", seed, err)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("seed %d: ReadAll: %v", seed, err)
		}
		logsEqual(t, got, want)
	}
}

func TestDeterministicBytes(t *testing.T) {
	log := randLog(5, 4, 100)
	var a, b bytes.Buffer
	if err := Write(&a, log); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, log); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("archive bytes are not deterministic")
	}
}

func TestRandomAccessSingleCase(t *testing.T) {
	want := randLog(7, 8, 150)
	var f bytes.Buffer
	if err := Write(&f, want); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(f.Bytes()), int64(f.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumCases() != want.NumCases() {
		t.Fatalf("NumCases = %d", r.NumCases())
	}
	if r.NumEvents() != want.NumEvents() {
		t.Fatalf("NumEvents = %d, want %d", r.NumEvents(), want.NumEvents())
	}
	id := want.Cases()[3].ID
	c, err := r.ReadCase(id)
	if err != nil {
		t.Fatalf("ReadCase: %v", err)
	}
	if !reflect.DeepEqual(c.Events, want.Case(id).Events) {
		t.Errorf("single case read differs")
	}
	if _, err := r.ReadCase(trace.CaseID{CID: "nope", Host: "x", RID: 0}); err == nil {
		t.Errorf("absent case read succeeded")
	}
}

func TestEmptyLog(t *testing.T) {
	log := trace.MustNewEventLog()
	var f bytes.Buffer
	if err := Write(&f, log); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(f.Bytes()), int64(f.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumCases() != 0 {
		t.Errorf("NumCases = %d", r.NumCases())
	}
	got, err := r.ReadAll()
	if err != nil || got.NumCases() != 0 {
		t.Errorf("ReadAll = %v, %v", got, err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	log := randLog(9, 3, 120)
	var f bytes.Buffer
	if err := Write(&f, log); err != nil {
		t.Fatal(err)
	}
	orig := f.Bytes()

	// Flip one byte in every position class and expect either an open
	// error or a read error, never silent corruption.
	flipAndCheck := func(pos int, what string) {
		t.Helper()
		mut := append([]byte(nil), orig...)
		mut[pos] ^= 0xff
		r, err := NewReader(bytes.NewReader(mut), int64(len(mut)))
		if err != nil {
			return // detected at open
		}
		if _, err := r.ReadAll(); err == nil {
			t.Errorf("corruption at %s (offset %d) not detected", what, pos)
		}
	}
	flipAndCheck(len(magic)+4+10, "case section")
	flipAndCheck(len(orig)-footerSize-3, "index")

	// Truncations.
	for _, cut := range []int{1, footerSize, len(orig) / 2, len(orig) - 10} {
		trunc := orig[:len(orig)-cut]
		r, err := NewReader(bytes.NewReader(trunc), int64(len(trunc)))
		if err != nil {
			continue
		}
		if _, err := r.ReadAll(); err == nil {
			t.Errorf("truncation by %d bytes not detected", cut)
		}
	}

	// Bad magics.
	mut := append([]byte(nil), orig...)
	copy(mut, "NOPE")
	if _, err := NewReader(bytes.NewReader(mut), int64(len(mut))); err == nil {
		t.Errorf("bad magic accepted")
	}
	mut = append([]byte(nil), orig...)
	copy(mut[len(mut)-4:], "NOPE")
	if _, err := NewReader(bytes.NewReader(mut), int64(len(mut))); err == nil {
		t.Errorf("bad footer magic accepted")
	}

	// Tiny file.
	if _, err := NewReader(bytes.NewReader(orig[:8]), 8); err == nil {
		t.Errorf("tiny file accepted")
	}
}

func TestUnsortedCaseRejected(t *testing.T) {
	c := &trace.Case{ID: trace.CaseID{CID: "u", Host: "h", RID: 1}, Events: []trace.Event{
		{CID: "u", Host: "h", RID: 1, Call: "a", Start: 2},
		{CID: "u", Host: "h", RID: 1, Call: "b", Start: 1},
	}}
	log := trace.MustNewEventLog(c)
	var f bytes.Buffer
	if err := Write(&f, log); err == nil {
		t.Errorf("unsorted case accepted by writer")
	}
}

func TestCompression(t *testing.T) {
	// Dictionary + delta encoding should make the archive much smaller
	// than a naive fixed-width encoding (~60 bytes/event).
	log := randLog(11, 4, 2000)
	var f bytes.Buffer
	if err := Write(&f, log); err != nil {
		t.Fatal(err)
	}
	perEvent := float64(f.Len()) / float64(log.NumEvents())
	if perEvent > 40 {
		t.Errorf("encoding too large: %.1f bytes/event", perEvent)
	}
}
