package archive

import (
	"fmt"
	"io"

	"stinspector/internal/fsatomic"
	"stinspector/internal/trace"
)

// indexEntry locates one case section within the file. The cidSym and
// hostSym fields are the v2 dictionary encoding of the identity; v1
// files leave them zero and carry the strings in id alone.
type indexEntry struct {
	id      trace.CaseID
	cidSym  uint32
	hostSym uint32
	offset  uint64
	length  uint64
	events  uint64
}

// Write serializes the event-log into the STA format. Cases are written
// in the log's deterministic order; the output is byte-for-byte
// reproducible for a given log.
func Write(w io.Writer, log *trace.EventLog) error {
	var written int64
	count := func(p []byte) error {
		n, err := w.Write(p)
		written += int64(n)
		return err
	}

	var head buf
	head.raw([]byte(magic))
	head.u32(version)
	if err := count(head.bytes()); err != nil {
		return err
	}

	entries := make([]indexEntry, 0, log.NumCases())
	for _, c := range log.Cases() {
		if !c.Sorted() {
			return fmt.Errorf("archive: case %s is not sorted by start time", c.ID)
		}
		section := encodeCase(c)
		entries = append(entries, indexEntry{
			id:     c.ID,
			offset: uint64(written),
			length: uint64(len(section)),
			events: uint64(len(c.Events)),
		})
		if err := count(section); err != nil {
			return err
		}
	}

	indexOffset := uint64(written)
	var idx buf
	idx.uvarint(uint64(len(entries)))
	for _, ent := range entries {
		idx.str(ent.id.CID)
		idx.str(ent.id.Host)
		idx.varint(int64(ent.id.RID))
		idx.uvarint(ent.offset)
		idx.uvarint(ent.length)
		idx.uvarint(ent.events)
	}
	if err := count(idx.bytes()); err != nil {
		return err
	}

	var foot buf
	foot.u64(indexOffset)
	foot.u32(checksum(idx.bytes()))
	foot.raw([]byte(footerMagic))
	return count(foot.bytes())
}

// WriteFile serializes the event-log to a file. The write is
// crash-safe: the archive lands in a temporary file that is synced and
// renamed over path only once complete, so an error or crash mid-write
// can never leave a truncated .sta behind — path holds either its
// previous content or the full new archive.
func WriteFile(path string, log *trace.EventLog) error {
	return fsatomic.WriteFile(path, func(w io.Writer) error {
		return Write(w, log)
	})
}

// encodeCase serializes one case as a self-checking section:
//
//	cid | host | rid | nEvents
//	dict (string table shared by the call and fp columns)
//	pid[] | call-id[] | startΔ[] | dur[] | fp-id[] | size[]
//	u32 CRC over everything above
//
// The start column stores the first timestamp absolutely and the rest as
// deltas, which are non-negative because rows are sorted.
func encodeCase(c *trace.Case) []byte {
	var body buf
	body.str(c.ID.CID)
	body.str(c.ID.Host)
	body.varint(int64(c.ID.RID))
	body.uvarint(uint64(len(c.Events)))

	// Build the dictionary.
	dict := make(map[string]uint64)
	var strs []string
	intern := func(s string) uint64 {
		if id, ok := dict[s]; ok {
			return id
		}
		id := uint64(len(strs))
		dict[s] = id
		strs = append(strs, s)
		return id
	}
	callIDs := make([]uint64, len(c.Events))
	fpIDs := make([]uint64, len(c.Events))
	for i, e := range c.Events {
		callIDs[i] = intern(e.Call)
		fpIDs[i] = intern(e.FP)
	}
	body.uvarint(uint64(len(strs)))
	for _, s := range strs {
		body.str(s)
	}

	for _, e := range c.Events {
		body.varint(int64(e.PID))
	}
	for _, id := range callIDs {
		body.uvarint(id)
	}
	prev := int64(0)
	for i, e := range c.Events {
		v := int64(e.Start)
		if i == 0 {
			body.varint(v)
		} else {
			body.uvarint(uint64(v - prev))
		}
		prev = v
	}
	for _, e := range c.Events {
		body.uvarint(uint64(e.Dur))
	}
	for _, id := range fpIDs {
		body.uvarint(id)
	}
	for _, e := range c.Events {
		body.varint(e.Size)
	}

	var out buf
	out.uvarint(uint64(len(body.bytes())))
	out.raw(body.bytes())
	out.u32(checksum(body.bytes()))
	return out.bytes()
}
