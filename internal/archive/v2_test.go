package archive

import (
	"bytes"
	"io"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"stinspector/internal/intern"
	"stinspector/internal/source"
	"stinspector/internal/trace"
)

func TestV2RoundTripFile(t *testing.T) {
	want := randLog(1, 6, 200)
	path := filepath.Join(t.TempDir(), "log.sta2")
	if err := WriteFileV2(path, want); err != nil {
		t.Fatalf("WriteFileV2: %v", err)
	}
	got, err := ReadLog(path)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	logsEqual(t, got, want)
}

func TestV2RoundTripPropertyMany(t *testing.T) {
	for seed := int64(2); seed < 22; seed++ {
		want := randLog(seed, 1+int(seed)%5, 80)
		var f bytes.Buffer
		if err := WriteV2(&f, want); err != nil {
			t.Fatalf("seed %d: WriteV2: %v", seed, err)
		}
		r, err := NewReaderBytes(f.Bytes())
		if err != nil {
			t.Fatalf("seed %d: NewReaderBytes: %v", seed, err)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("seed %d: ReadAll: %v", seed, err)
		}
		logsEqual(t, got, want)
	}
}

// The two formats must decode to exactly the same events — same strings,
// same order, same stamping — so every downstream artifact is
// byte-identical whichever archive version fed it.
func TestV1V2DecodeIdentical(t *testing.T) {
	want := randLog(31, 8, 120)
	var v1, v2 bytes.Buffer
	if err := Write(&v1, want); err != nil {
		t.Fatal(err)
	}
	if err := WriteV2(&v2, want); err != nil {
		t.Fatal(err)
	}
	r1, err := NewReader(bytes.NewReader(v1.Bytes()), int64(v1.Len()))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewReaderBytes(v2.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	log1, err := r1.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	log2, err := r2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	logsEqual(t, log1, log2)
	logsEqual(t, log2, want)
}

// WriteV2 output must be byte-for-byte reproducible, like Write's: the
// dictionary is assigned in first-use order, a pure function of content.
func TestV2Reproducible(t *testing.T) {
	log := randLog(5, 5, 60)
	var a, b bytes.Buffer
	if err := WriteV2(&a, log); err != nil {
		t.Fatal(err)
	}
	if err := WriteV2(&b, log); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteV2 not reproducible for the same log")
	}
}

// The incremental writer and the one-shot form must produce identical
// bytes for the same case sequence.
func TestV2IncrementalMatchesOneShot(t *testing.T) {
	log := randLog(6, 7, 50)
	var oneshot, incr bytes.Buffer
	if err := WriteV2(&oneshot, log); err != nil {
		t.Fatal(err)
	}
	vw := NewV2Writer(&incr)
	for _, c := range log.Cases() {
		if err := vw.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := vw.Finish(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oneshot.Bytes(), incr.Bytes()) {
		t.Fatal("incremental V2Writer bytes differ from WriteV2")
	}
	if err := vw.Finish(); err == nil {
		t.Fatal("second Finish succeeded")
	}
	if err := vw.Add(log.Cases()[0]); err == nil {
		t.Fatal("Add after Finish succeeded")
	}
}

func TestV2UnsortedCaseRejected(t *testing.T) {
	c := &trace.Case{ID: trace.CaseID{CID: "a", Host: "h", RID: 1}, Events: []trace.Event{
		{Call: "read", Start: 10}, {Call: "write", Start: 5},
	}}
	vw := NewV2Writer(io.Discard)
	if err := vw.Add(c); err == nil {
		t.Fatal("unsorted case accepted")
	}
}

func TestV2EmptyLog(t *testing.T) {
	log := trace.MustNewEventLog()
	var f bytes.Buffer
	if err := WriteV2(&f, log); err != nil {
		t.Fatal(err)
	}
	r, err := NewReaderBytes(f.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.NumCases() != 0 || r.NumEvents() != 0 {
		t.Fatalf("empty archive reports %d cases / %d events", r.NumCases(), r.NumEvents())
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCases() != 0 {
		t.Fatalf("empty archive decoded %d cases", got.NumCases())
	}
}

// Open must behave identically to NewReader on the same file whether or
// not the platform managed to mmap it — same cases, same events.
func TestV2OpenMatchesReadAt(t *testing.T) {
	want := randLog(9, 6, 80)
	path := filepath.Join(t.TempDir(), "log.sta2")
	if err := WriteFileV2(path, want); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadAllParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	logsEqual(t, got, want)

	// Force the ReadAt fallback on the same image.
	f2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.data != nil {
		if err := f2.unmap(); err != nil {
			t.Fatal(err)
		}
		f2.data, f2.unmap = nil, nil
	}
	got2, err := f2.ReadAllParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	logsEqual(t, got2, want)
}

func TestV2CaseRangeSlicing(t *testing.T) {
	want := randLog(11, 9, 40)
	var f bytes.Buffer
	if err := WriteV2(&f, want); err != nil {
		t.Fatal(err)
	}
	r, err := NewReaderBytes(f.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	all := want.Cases()
	for _, rng := range [][2]int{{0, 9}, {0, 0}, {3, 3}, {2, 7}, {8, 9}, {0, 1}, {-2, 99}, {5, 2}} {
		a, b := rng[0], rng[1]
		wa, wb := a, b
		if wa < 0 {
			wa = 0
		}
		if wb > len(all) {
			wb = len(all)
		}
		if wa > wb {
			wa = wb
		}
		for _, par := range []int{1, 3} {
			src := r.StreamRange(a, b, par, 2)
			var got []*trace.Case
			for {
				c, err := src.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("range [%d,%d) par %d: %v", a, b, par, err)
				}
				got = append(got, c)
			}
			src.Close()
			if len(got) != wb-wa {
				t.Fatalf("range [%d,%d) par %d: %d cases, want %d", a, b, par, len(got), wb-wa)
			}
			for i, c := range got {
				wc := all[wa+i]
				if c.ID != wc.ID {
					t.Fatalf("range [%d,%d) case %d: ID %s, want %s", a, b, i, c.ID, wc.ID)
				}
				if !reflect.DeepEqual(c.Events, wc.Events) {
					t.Fatalf("range [%d,%d) case %s: events differ", a, b, c.ID)
				}
			}
		}
	}
	// ReadCaseAt is positional random access over the same index.
	for i := range all {
		c, err := r.ReadCaseAt(i)
		if err != nil {
			t.Fatalf("ReadCaseAt(%d): %v", i, err)
		}
		if c.ID != all[i].ID {
			t.Fatalf("ReadCaseAt(%d) = %s, want %s", i, c.ID, all[i].ID)
		}
	}
	for _, i := range []int{-1, len(all), len(all) + 5} {
		if _, err := r.ReadCaseAt(i); err == nil {
			t.Fatalf("ReadCaseAt(%d) succeeded", i)
		}
	}
}

// v1 readers share the range APIs: the index is the same shape.
func TestV1CaseRangeSlicing(t *testing.T) {
	want := randLog(12, 5, 30)
	var f bytes.Buffer
	if err := Write(&f, want); err != nil {
		t.Fatal(err)
	}
	r, err := NewReaderBytes(f.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	src := r.StreamRange(1, 4, 2, 2)
	defer src.Close()
	got, err := source.Drain(src, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCases() != 3 {
		t.Fatalf("v1 range [1,4): %d cases, want 3", got.NumCases())
	}
	for i, c := range got.Cases() {
		if c.ID != want.Cases()[1+i].ID {
			t.Fatalf("v1 range case %d: %s, want %s", i, c.ID, want.Cases()[1+i].ID)
		}
	}
}

// Scoped decode: binding a table must intern the whole dictionary into
// it, decode identical events, and rebinding must rebuild the remap.
func TestV2ScopedSyms(t *testing.T) {
	want := randLog(13, 4, 60)
	var f bytes.Buffer
	if err := WriteV2(&f, want); err != nil {
		t.Fatal(err)
	}
	r, err := NewReaderBytes(f.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	scoped := intern.NewTable()
	r.SetSyms(scoped)
	got, err := r.ReadAllParallel(3)
	if err != nil {
		t.Fatal(err)
	}
	logsEqual(t, got, want)
	if scoped.Len() < r.dict.Len() {
		t.Fatalf("scoped table holds %d symbols, dictionary has %d", scoped.Len(), r.dict.Len())
	}

	// Rebind to a second table: decodes must still be correct and the
	// second table must now hold the vocabulary too.
	scoped2 := intern.NewTable()
	r.SetSyms(scoped2)
	got2, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	logsEqual(t, got2, want)
	if scoped2.Len() < r.dict.Len() {
		t.Fatalf("rebound table holds %d symbols, dictionary has %d", scoped2.Len(), r.dict.Len())
	}
}

// Arbitrary corruption of a valid v2 archive must never panic and never
// silently succeed with wrong data: every region is checksummed.
func TestV2ReaderRobustnessUnderMutation(t *testing.T) {
	log := randLog(78, 4, 60)
	var f bytes.Buffer
	if err := WriteV2(&f, log); err != nil {
		t.Fatal(err)
	}
	orig := f.Bytes()
	want, err := func() (*trace.EventLog, error) {
		r, err := NewReaderBytes(orig)
		if err != nil {
			return nil, err
		}
		return r.ReadAll()
	}()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))

	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), orig...)
		mutated := false
		for k := 0; k < 1+rng.Intn(4); k++ {
			switch rng.Intn(3) {
			case 0: // flip
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
				mutated = true
			case 1: // truncate
				if len(mut) > 1 {
					mut = mut[:rng.Intn(len(mut))]
					mutated = true
				}
			case 2: // extend with junk
				mut = append(mut, byte(rng.Intn(256)))
			}
		}
		r, err := NewReaderBytes(mut)
		if err != nil {
			continue
		}
		got, err := r.ReadAll()
		if err != nil || !mutated {
			continue
		}
		// A mutation that still decodes fully must have been confined to
		// unreachable bytes: the content must be unchanged.
		logsEqual(t, got, want)
	}
}

// Every single-bit flip of a small valid v2 archive must be detected
// (or, if it lands in unreachable bytes, decode to identical content).
func TestV2BitFlipSweep(t *testing.T) {
	log := randLog(41, 3, 25)
	var f bytes.Buffer
	if err := WriteV2(&f, log); err != nil {
		t.Fatal(err)
	}
	orig := f.Bytes()
	for i := range orig {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), orig...)
			mut[i] ^= 1 << bit
			r, err := NewReaderBytes(mut)
			if err != nil {
				continue
			}
			got, err := r.ReadAll()
			if err != nil {
				continue
			}
			logsEqual(t, got, log)
		}
	}
}

// Truncation at every byte boundary must fail at open or read — the
// footer-anchored layout cannot mistake a prefix for a whole file.
func TestV2TruncationSweep(t *testing.T) {
	log := randLog(42, 3, 25)
	var f bytes.Buffer
	if err := WriteV2(&f, log); err != nil {
		t.Fatal(err)
	}
	orig := f.Bytes()
	for n := 0; n < len(orig); n++ {
		r, err := NewReaderBytes(orig[:n])
		if err != nil {
			continue
		}
		if _, err := r.ReadAll(); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(orig))
		}
	}
}

func TestV2RandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(400)
		blob := make([]byte, n)
		rng.Read(blob)
		if n >= 8 && trial%3 == 0 {
			copy(blob, magicV2)
			blob[4], blob[5], blob[6], blob[7] = versionV2, 0, 0, 0
		}
		if n >= footerV2Size && trial%5 == 0 {
			copy(blob[n-4:], footerMagicV2)
		}
		r, err := NewReaderBytes(blob)
		if err != nil {
			continue
		}
		_, _ = r.ReadAll()
	}
}
