package archive

import (
	"fmt"

	"stinspector/internal/trace"
)

// Merge consolidates several STA files into one, the operation needed
// when separate runs (recorded and archived independently, as the
// paper's SSF and FPP runs were) are to be analysed as a single
// event-log. Case identities must be disjoint across inputs.
func Merge(dst string, srcs ...string) error {
	if len(srcs) == 0 {
		return fmt.Errorf("archive: nothing to merge")
	}
	combined, err := trace.NewEventLog()
	if err != nil {
		return err
	}
	for _, src := range srcs {
		log, err := ReadLog(src)
		if err != nil {
			return fmt.Errorf("archive: merge %s: %w", src, err)
		}
		for _, c := range log.Cases() {
			if err := combined.Add(c); err != nil {
				return fmt.Errorf("archive: merge %s: %w", src, err)
			}
		}
	}
	return WriteFile(dst, combined)
}
