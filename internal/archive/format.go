// Package archive implements STA, a single-file binary event-log
// container. It stands in for the HDF5 consolidation step of the paper's
// implementation (Section V): "each processed trace file (i.e., each
// case) is stored in a separate group within the HDF5 file as a table"
// whose columns are the event attributes pid, call, start, dur, fp, size,
// with rows sorted by start timestamp.
//
// STA provides the same semantics with the standard library only:
//
//   - one section per case, holding six columns;
//   - string columns (call, fp) are dictionary-encoded per case;
//   - integer columns use varints, with start timestamps delta-encoded
//     (rows are sorted, so deltas are small and non-negative);
//   - every section and the footer index carry CRC-32 checksums, so
//     truncation and corruption are detected;
//   - a footer index maps case identities to section offsets, enabling
//     random access to single cases without reading the whole file.
//
// Layout:
//
//	"STA1" | u32 version
//	section*          (one per case)
//	index             (case table with offsets/lengths)
//	u64 index offset | u32 index CRC | "XATS"
package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	magic       = "STA1"
	footerMagic = "XATS"
	version     = 1
)

// footerSize is the fixed tail of the file: index offset, index CRC,
// magic.
const footerSize = 8 + 4 + 4

// ErrCorrupt is wrapped by errors reporting integrity failures.
type CorruptError struct {
	Detail string
}

func (e *CorruptError) Error() string { return "archive: corrupt file: " + e.Detail }

func corrupt(format string, args ...any) error {
	return &CorruptError{Detail: fmt.Sprintf(format, args...)}
}

// checksum is the CRC-32 (IEEE) used throughout the format.
func checksum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// buf is a small append-only encoder.
type buf struct {
	b []byte
}

func (w *buf) bytes() []byte { return w.b }

func (w *buf) uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *buf) varint(v int64)   { w.b = binary.AppendVarint(w.b, v) }
func (w *buf) raw(p []byte)     { w.b = append(w.b, p...) }
func (w *buf) u32(v uint32)     { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *buf) u64(v uint64)     { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *buf) str(s string)     { w.uvarint(uint64(len(s))); w.b = append(w.b, s...) }

// cursor is the matching decoder.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) remaining() int { return len(c.b) - c.off }

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, corrupt("bad uvarint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		return 0, corrupt("bad varint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *cursor) u32() (uint32, error) {
	if c.remaining() < 4 {
		return 0, corrupt("truncated u32 at offset %d", c.off)
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, nil
}

func (c *cursor) u64() (uint64, error) {
	if c.remaining() < 8 {
		return 0, corrupt("truncated u64 at offset %d", c.off)
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v, nil
}

func (c *cursor) str() (string, error) {
	b, err := c.strBytes()
	return string(b), err
}

// strBytes reads a length-prefixed string as a subslice of the section
// buffer, letting decodeCase canonicalize through the symbol cache
// without an intermediate allocation.
func (c *cursor) strBytes() ([]byte, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(c.remaining()) {
		return nil, corrupt("string of %d bytes exceeds section at offset %d", n, c.off)
	}
	b := c.b[c.off : c.off+int(n)]
	c.off += int(n)
	return b, nil
}
