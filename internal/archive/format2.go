package archive

// STA v2 is the columnar, indexed, mmap-able successor of the v1
// layout. v1 optimizes for simplicity: one self-contained section per
// case with its own string dictionary, decoded through a symbol cache.
// v2 optimizes re-ingestion: strings are interned once per file into a
// single dictionary, sections carry only fixed-width-free integer
// columns, and the index addresses every case (and, via per-column
// lengths, every column) directly — so a reader maps the file, loads
// the dictionary into its symbol table once, and decodes events without
// hashing a single string or sorting a single row.
//
// Layout:
//
//	"STA2" | u32 version
//	section*             (one per case, columnar; see below)
//	dict                 (file-level symbol dictionary | u32 CRC)
//	index                (case table with dictionary-encoded identities)
//	u64 dict offset | u64 index offset | u32 index CRC | "2ATS"
//
// section (all row values for one case, stored column-major):
//
//	uvarint ordinal      (the case's index position, cross-checked)
//	uvarint nEvents
//	uvarint len ×6       (byte length of each column block)
//	pid    varint[]
//	call   uvarint[]     (file-dictionary symbols)
//	start  varint first, then non-negative uvarint deltas
//	dur    uvarint[]
//	fp     uvarint[]     (file-dictionary symbols)
//	size   varint[]
//	u32 CRC              (over everything above)
//
// The dictionary is an intern.Local serialized in first-use order
// (intern.AppendDict) — a pure function of the written content, so v2
// output is byte-for-byte reproducible like v1. It doubles as the
// string arena: the call and fp columns, and the index's CID/Host
// fields, are all symbols into it. The index mirrors v1's (offset,
// length, events per case) with identities dictionary-encoded.
//
// Every region is independently checksummed (sections and dict inline,
// index from the footer), and the decoder validates claimed counts,
// lengths, and symbol ids against the bytes actually present before
// any allocation — mmap'd untrusted bytes raise the stakes, so v2
// decode must fail closed exactly like v1's.
const (
	magicV2       = "STA2"
	footerMagicV2 = "2ATS"
	versionV2     = 2
)

// headerV2Size is the fixed head of the file: magic and version.
const headerV2Size = 4 + 4

// footerV2Size is the fixed tail: dict offset, index offset, index CRC,
// magic.
const footerV2Size = 8 + 8 + 4 + 4
