//go:build unix

package archive

import (
	"math"
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only, returning the mapping, its
// release function, and whether mapping succeeded. Failure is not an
// error — callers fall back to ReadAt — so files that cannot be mapped
// (empty, larger than the address space, exotic filesystems) still
// open.
func mmapFile(f *os.File, size int64) ([]byte, func() error, bool) {
	if size <= 0 || uint64(size) > uint64(math.MaxInt) {
		return nil, nil, false
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false
	}
	return data, func() error { return syscall.Munmap(data) }, true
}
