package archive

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// WriteFile must be crash-safe: a failing write (here: a case whose
// events were perturbed out of start order after construction, which
// Write rejects mid-stream) leaves no destination file, no torn bytes
// over a previous archive, and no temporary litter.
func TestWriteFileAtomicOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.sta")

	good := randLog(5, 3, 10)
	if err := WriteFile(path, good); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	bad := randLog(6, 2, 10)
	c := bad.Cases()[1]
	c.Events[0].Start = c.Events[len(c.Events)-1].Start + time.Second // break sort order
	if c.Sorted() {
		t.Fatal("perturbation did not unsort the case")
	}
	if err := WriteFile(path, bad); err == nil {
		t.Fatal("WriteFile accepted an unsorted case")
	}

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("failed write changed the existing archive")
	}
	if r, err := Open(path); err != nil {
		t.Errorf("existing archive unreadable after failed write: %v", err)
	} else {
		r.Close()
	}

	// And against a fresh path: nothing lands at all.
	fresh := filepath.Join(dir, "fresh.sta")
	if err := WriteFile(fresh, bad); err == nil {
		t.Fatal("WriteFile accepted an unsorted case")
	}
	if _, err := os.Stat(fresh); !os.IsNotExist(err) {
		t.Errorf("failed write left a file behind: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temporary file left behind: %s", e.Name())
		}
	}
}
