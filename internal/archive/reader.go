package archive

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"stinspector/internal/intern"
	"stinspector/internal/source"
	"stinspector/internal/trace"
)

// Reader provides random access to the cases of an STA file, the
// counterpart of the paper's "each case is stored in a separate group
// within the HDF5 file": single cases can be loaded without materializing
// the whole event-log. One Reader serves both format versions — Open and
// NewReader detect v1 vs v2 from the magic — and every decode API below
// behaves identically on either.
type Reader struct {
	src     io.ReaderAt
	closer  io.Closer
	ver     uint32
	entries []indexEntry
	byID    map[trace.CaseID]int
	syms    *intern.Table // nil = intern.Default
	// caches pools per-worker decode caches over syms when scoped, so
	// concurrent section decodes stay warm across sections. The pool
	// lives and dies with the reader, which is what keeps a scoped
	// table collectable once the reader is dropped; Default-bound
	// caches use the process-wide intern pool instead.
	caches sync.Pool

	// v2 state. data, when non-nil, is a whole-file view (an mmap from
	// Open, or the caller's buffer from NewReaderBytes) that section
	// decodes slice zero-copy; otherwise sections are fetched through
	// src with pooled buffers. dict is the file-level symbol dictionary,
	// and resolved its remap into the bound symbol table, built once per
	// binding under resolveOnce (see resolve).
	data        []byte
	unmap       func() error
	dict        *intern.Local
	resolved    []string
	resolveOnce *sync.Once
	secBufs     sync.Pool
}

// SetSyms scopes subsequent case decodes to the given symbol table
// (nil restores the process-wide intern.Default). Scope a table per
// reader when decoding archives with unbounded path vocabularies in a
// long-lived process: dropping the reader and its decoded cases then
// makes every interned string collectable. Decoded events are
// identical either way. Not safe to call concurrently with decodes.
func (r *Reader) SetSyms(t *intern.Table) {
	if t == intern.Default {
		// Normalize so an explicit Default takes the pooled-cache path,
		// exactly like nil.
		t = nil
	}
	r.syms = t
	if r.ver == versionV2 {
		// Invalidate the dictionary remap: the next decode rebuilds it
		// against the new table.
		r.resolved = nil
		r.resolveOnce = new(sync.Once)
	}
}

// getCache hands a decode worker a cache over the reader's symbol
// table; return it with putCache. A pooled cache bound to a previous
// SetSyms table is discarded, not reused, so rebinding a reader can
// never alias symbols across tables.
func (r *Reader) getCache() *intern.Cache {
	if r.syms == nil {
		return intern.CacheFor(nil)
	}
	if c, ok := r.caches.Get().(*intern.Cache); ok && c.Table() == r.syms {
		return c
	}
	return intern.NewCache(r.syms)
}

func (r *Reader) putCache(c *intern.Cache) {
	if r.syms == nil {
		intern.PutCache(c)
		return
	}
	if c.Table() == r.syms {
		r.caches.Put(c)
	}
}

// Open opens an STA file for random access. v2 files are additionally
// memory-mapped where the platform allows it, so section decodes slice
// the page cache directly instead of issuing a read per case; when
// mapping is unavailable or fails, the reader transparently uses the
// same ReadAt path as NewReader.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	if r.ver == versionV2 {
		if data, unmap, ok := mmapFile(f, st.Size()); ok {
			r.data, r.unmap = data, unmap
		}
	}
	return r, nil
}

// NewReaderBytes opens an in-memory STA image. v2 sections decode
// zero-copy straight from data; the caller must not mutate it while the
// reader is in use.
func NewReaderBytes(data []byte) (*Reader, error) {
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	if r.ver == versionV2 {
		r.data = data
	}
	return r, nil
}

// NewReader opens an STA image of the given size from any io.ReaderAt,
// detecting the format version from the magic.
func NewReader(src io.ReaderAt, size int64) (*Reader, error) {
	if size < int64(len(magic))+4+footerSize {
		return nil, corrupt("file too small (%d bytes)", size)
	}
	head := make([]byte, len(magic)+4)
	if _, err := src.ReadAt(head, 0); err != nil {
		return nil, err
	}
	c := &cursor{b: head, off: 4}
	ver, err := c.u32()
	if err != nil {
		return nil, err
	}
	switch string(head[:4]) {
	case magic:
	case magicV2:
		return newReaderV2(src, size, ver)
	default:
		return nil, corrupt("bad magic %q", head[:4])
	}
	if ver != version {
		return nil, fmt.Errorf("archive: unsupported version %d", ver)
	}

	foot := make([]byte, footerSize)
	if _, err := src.ReadAt(foot, size-footerSize); err != nil {
		return nil, err
	}
	fc := &cursor{b: foot}
	indexOffset, err := fc.u64()
	if err != nil {
		return nil, err
	}
	indexCRC, err := fc.u32()
	if err != nil {
		return nil, err
	}
	if string(foot[12:16]) != footerMagic {
		return nil, corrupt("bad footer magic %q", foot[12:16])
	}
	if indexOffset > uint64(size-footerSize) {
		return nil, corrupt("index offset %d beyond file", indexOffset)
	}

	idx := make([]byte, uint64(size-footerSize)-indexOffset)
	if _, err := src.ReadAt(idx, int64(indexOffset)); err != nil {
		return nil, err
	}
	if checksum(idx) != indexCRC {
		return nil, corrupt("index checksum mismatch")
	}

	ic := &cursor{b: idx}
	n, err := ic.uvarint()
	if err != nil {
		return nil, err
	}
	// Every index entry needs at least 6 bytes (three one-byte strings
	// /varints plus three uvarints), so a count the index bytes cannot
	// hold is corruption, not an allocation request.
	if n > uint64(ic.remaining())/6 {
		return nil, corrupt("index claims %d cases in %d bytes", n, ic.remaining())
	}
	r := &Reader{src: src, ver: version, byID: make(map[trace.CaseID]int, n)}
	for i := uint64(0); i < n; i++ {
		var ent indexEntry
		if ent.id.CID, err = ic.str(); err != nil {
			return nil, err
		}
		if ent.id.Host, err = ic.str(); err != nil {
			return nil, err
		}
		rid, err := ic.varint()
		if err != nil {
			return nil, err
		}
		ent.id.RID = int(rid)
		if ent.offset, err = ic.uvarint(); err != nil {
			return nil, err
		}
		if ent.length, err = ic.uvarint(); err != nil {
			return nil, err
		}
		if ent.events, err = ic.uvarint(); err != nil {
			return nil, err
		}
		// Compare without computing offset+length: hostile values near
		// MaxUint64 would wrap the sum back into range.
		if ent.length > indexOffset || ent.offset > indexOffset-ent.length {
			return nil, corrupt("case %s section [%d,+%d) overlaps index", ent.id, ent.offset, ent.length)
		}
		r.byID[ent.id] = len(r.entries)
		r.entries = append(r.entries, ent)
	}
	return r, nil
}

// Close releases the mapping (if any) and the underlying file when the
// reader owns one. Streams obtained from the reader must be closed (or
// fully drained) first: their Close joins the decode workers, which is
// what makes unmapping here safe.
func (r *Reader) Close() error {
	var err error
	if r.unmap != nil {
		err = r.unmap()
		r.unmap, r.data = nil, nil
	}
	if r.closer != nil {
		if cerr := r.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Cases lists the stored case identities in file order.
func (r *Reader) Cases() []trace.CaseID {
	out := make([]trace.CaseID, len(r.entries))
	for i, ent := range r.entries {
		out[i] = ent.id
	}
	return out
}

// NumCases returns the number of stored cases.
func (r *Reader) NumCases() int { return len(r.entries) }

// NumEvents returns the total number of stored events (from the index, no
// section reads).
func (r *Reader) NumEvents() int {
	n := 0
	for _, ent := range r.entries {
		n += int(ent.events)
	}
	return n
}

// ReadCase loads a single case.
func (r *Reader) ReadCase(id trace.CaseID) (*trace.Case, error) {
	i, ok := r.byID[id]
	if !ok {
		return nil, fmt.Errorf("archive: no case %s", id)
	}
	return r.readAt(i)
}

// ReadCaseAt loads the case at position i of the file order — O(1) in
// the archive size, since the index addresses every section directly.
func (r *Reader) ReadCaseAt(i int) (*trace.Case, error) {
	if i < 0 || i >= len(r.entries) {
		return nil, fmt.Errorf("archive: case index %d out of range [0,%d)", i, len(r.entries))
	}
	return r.readAt(i)
}

// readAt decodes the case at index position i via the version's path.
func (r *Reader) readAt(i int) (*trace.Case, error) {
	if r.ver == versionV2 {
		return r.readEntryV2(i)
	}
	return r.readEntry(r.entries[i])
}

func (r *Reader) readEntry(ent indexEntry) (*trace.Case, error) {
	section := make([]byte, ent.length)
	if _, err := r.src.ReadAt(section, int64(ent.offset)); err != nil {
		return nil, err
	}
	cache := r.getCache()
	defer r.putCache(cache)
	return decodeCase(section, ent.id, cache)
}

// ReadAll loads the full event-log, decoding case sections concurrently
// with GOMAXPROCS workers. The result is deterministic: cases are merged
// in file order whatever the worker count.
func (r *Reader) ReadAll() (*trace.EventLog, error) {
	return r.ReadAllParallel(0)
}

// ReadAllParallel is ReadAll with an explicit worker bound: each case
// section is an independent (offset, length) region of the file, so the
// ReadAt+decode work fans out cleanly. parallelism 0 means
// runtime.GOMAXPROCS(0); 1 decodes sequentially. The first failing case
// in file order determines the returned error. It is the materializing
// form of Stream: drain the case source into an event-log.
func (r *Reader) ReadAllParallel(parallelism int) (*trace.EventLog, error) {
	src := r.Stream(parallelism, 0)
	defer src.Close()
	return source.Drain(src, false)
}

// Stream decodes the archive's case sections as a case source: sections
// are fetched and decoded by parallelism workers (0 = GOMAXPROCS) into
// an ordered window of at most window resident cases (0 = 2×workers),
// delivered in file order — which WriteFile lays down in CaseID order,
// so streaming consumers see the canonical event-log order without the
// log ever being materialized. The source does not own the underlying
// file; Close cancels outstanding decodes but leaves the Reader open.
func (r *Reader) Stream(parallelism, window int) source.Source {
	return r.StreamRange(0, len(r.entries), parallelism, window)
}

// StreamRange is Stream over the half-open slice [a, b) of the file's
// case order: the index addresses every section directly, so slicing
// costs nothing beyond the cases actually decoded, whatever the archive
// size. The bounds are clamped to [0, NumCases()]; an empty or inverted
// range yields an immediately-exhausted source.
func (r *Reader) StreamRange(a, b, parallelism, window int) source.Source {
	n := len(r.entries)
	if a < 0 {
		a = 0
	}
	if b > n {
		b = n
	}
	if a > b {
		a = b
	}
	return source.OrderedRange(a, b, parallelism, window, r.readAt)
}

// ReadLog opens path and loads the full event-log in one call.
func ReadLog(path string) (*trace.EventLog, error) {
	return ReadLogParallel(path, 0)
}

// ReadLogParallel is ReadLog with an explicit decode-worker bound.
func ReadLogParallel(path string, parallelism int) (*trace.EventLog, error) {
	return ReadLogParallelSyms(path, parallelism, nil)
}

// ReadLogParallelSyms is ReadLogParallel decoding through a scoped
// symbol table (nil means intern.Default) — the materializing
// counterpart of StreamLogSyms.
func ReadLogParallelSyms(path string, parallelism int, t *intern.Table) (*trace.EventLog, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	r.SetSyms(t)
	return r.ReadAllParallel(parallelism)
}

// StreamLog opens path as a case source with the given decode
// parallelism and resident-case window. The returned source owns the
// file: Close releases it.
func StreamLog(path string, parallelism, window int) (source.Source, error) {
	return StreamLogSyms(path, parallelism, window, nil)
}

// StreamLogSyms is StreamLog decoding through a scoped symbol table
// (nil means intern.Default) — the streaming entry point for passes
// that own their symbol universe.
func StreamLogSyms(path string, parallelism, window int, t *intern.Table) (source.Source, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	r.SetSyms(t)
	return source.WithCloser(r.Stream(parallelism, window), r), nil
}

// StreamLogRangeSyms is StreamLogSyms restricted to the half-open case
// range [a, b) of the archive's file order; b < 0 means NumCases. The
// index addresses every section directly, so the cost is proportional
// to the cases decoded, not the archive size. Unlike Reader.StreamRange
// (which clamps), a range outside the archive is rejected here — this
// is the entry point user-supplied ranges reach.
func StreamLogRangeSyms(path string, a, b, parallelism, window int, t *intern.Table) (source.Source, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	n := r.NumCases()
	if b < 0 {
		b = n
	}
	if a < 0 || a > b || b > n {
		r.Close()
		return nil, fmt.Errorf("archive: case range [%d,%d) out of bounds for %d cases", a, b, n)
	}
	r.SetSyms(t)
	return source.WithCloser(r.StreamRange(a, b, parallelism, window), r), nil
}

// decodeCase parses and verifies one case section. The per-case string
// dictionary (call names, file paths) and the case identity are
// canonicalized through the caller's symbol cache — fronting either
// the process-wide table or the reader's scoped one — so decoding N
// cases that share a path vocabulary retains one string per distinct
// value instead of one per case.
func decodeCase(section []byte, want trace.CaseID, cache *intern.Cache) (*trace.Case, error) {
	c := &cursor{b: section}
	bodyLen, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	// Checked as "remaining - 4 < bodyLen": a bodyLen near MaxUint64
	// would wrap bodyLen+4 back into range.
	if uint64(c.remaining()) < 4 || bodyLen > uint64(c.remaining())-4 {
		return nil, corrupt("case %s: section body truncated", want)
	}
	body := section[c.off : c.off+int(bodyLen)]
	crcCur := &cursor{b: section, off: c.off + int(bodyLen)}
	crc, err := crcCur.u32()
	if err != nil {
		return nil, err
	}
	if checksum(body) != crc {
		return nil, corrupt("case %s: section checksum mismatch", want)
	}

	bc := &cursor{b: body}
	var id trace.CaseID
	cidB, err := bc.strBytes()
	if err != nil {
		return nil, err
	}
	id.CID = cache.CanonBytes(cidB)
	hostB, err := bc.strBytes()
	if err != nil {
		return nil, err
	}
	id.Host = cache.CanonBytes(hostB)
	rid, err := bc.varint()
	if err != nil {
		return nil, err
	}
	id.RID = int(rid)
	if id != want {
		return nil, corrupt("section holds case %s, index says %s", id, want)
	}

	n, err := bc.uvarint()
	if err != nil {
		return nil, err
	}
	// Each event occupies at least 6 bytes of the body (six one-byte
	// columns), so larger claimed counts are corruption — the guard that
	// keeps a hostile count from becoming a multi-GB allocation.
	if n > uint64(bc.remaining())/6 {
		return nil, corrupt("case %s: %d events claimed in %d bytes", id, n, bc.remaining())
	}
	nd, err := bc.uvarint()
	if err != nil {
		return nil, err
	}
	if nd > uint64(bc.remaining()) {
		return nil, corrupt("case %s: %d dictionary strings claimed in %d bytes", id, nd, bc.remaining())
	}
	dict := make([]string, nd)
	for i := range dict {
		b, err := bc.strBytes()
		if err != nil {
			return nil, err
		}
		dict[i] = cache.CanonBytes(b)
	}
	lookup := func(i uint64) (string, error) {
		if i >= uint64(len(dict)) {
			return "", corrupt("case %s: dictionary id %d out of range", id, i)
		}
		return dict[i], nil
	}

	// nil for an empty case, exactly as NewCase builds — decoded cases
	// must be indistinguishable from in-memory ones.
	var events []trace.Event
	if n > 0 {
		events = make([]trace.Event, n)
	}
	for i := range events {
		pid, err := bc.varint()
		if err != nil {
			return nil, err
		}
		events[i].PID = int(pid)
		events[i].CID = id.CID
		events[i].Host = id.Host
		events[i].RID = id.RID
	}
	for i := range events {
		cid, err := bc.uvarint()
		if err != nil {
			return nil, err
		}
		if events[i].Call, err = lookup(cid); err != nil {
			return nil, err
		}
	}
	prev := int64(0)
	for i := range events {
		if i == 0 {
			v, err := bc.varint()
			if err != nil {
				return nil, err
			}
			prev = v
		} else {
			d, err := bc.uvarint()
			if err != nil {
				return nil, err
			}
			// Deltas are non-negative; a sum past MaxInt64 would wrap
			// into a garbage (negative) timestamp instead of failing.
			if d > math.MaxInt64 || prev > math.MaxInt64-int64(d) {
				return nil, corrupt("case %s: start timestamp overflows at event %d", id, i)
			}
			prev += int64(d)
		}
		events[i].Start = time.Duration(prev)
	}
	for i := range events {
		d, err := bc.uvarint()
		if err != nil {
			return nil, err
		}
		events[i].Dur = time.Duration(d)
	}
	for i := range events {
		fid, err := bc.uvarint()
		if err != nil {
			return nil, err
		}
		if events[i].FP, err = lookup(fid); err != nil {
			return nil, err
		}
	}
	for i := range events {
		if events[i].Size, err = bc.varint(); err != nil {
			return nil, err
		}
	}
	// The start column's non-negative deltas prove the events are already
	// in Equation (2) order, and the identity was stamped in the pid
	// loop, so NewCase — which would clone the freshly built slice and
	// stable-sort the already-sorted rows — is pure overhead here.
	return &trace.Case{ID: id, Events: events}, nil
}
