package archive

import (
	"path/filepath"
	"testing"

	"stinspector/internal/trace"
)

func TestMerge(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.sta")
	b := filepath.Join(dir, "b.sta")
	dst := filepath.Join(dir, "merged.sta")

	logA := randLog(1, 3, 50)
	// Distinct identities for the second log.
	var casesB []*trace.Case
	for i, c := range randLog(2, 2, 50).Cases() {
		id := c.ID
		id.CID = "other"
		_ = i
		casesB = append(casesB, trace.NewCase(id, c.Events))
	}
	logB := trace.MustNewEventLog(casesB...)

	if err := WriteFile(a, logA); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(b, logB); err != nil {
		t.Fatal(err)
	}
	if err := Merge(dst, a, b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	got, err := ReadLog(dst)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCases() != logA.NumCases()+logB.NumCases() {
		t.Errorf("merged cases = %d", got.NumCases())
	}
	if got.NumEvents() != logA.NumEvents()+logB.NumEvents() {
		t.Errorf("merged events = %d", got.NumEvents())
	}
}

func TestMergeErrors(t *testing.T) {
	dir := t.TempDir()
	if err := Merge(filepath.Join(dir, "out.sta")); err == nil {
		t.Errorf("empty merge accepted")
	}
	a := filepath.Join(dir, "a.sta")
	if err := WriteFile(a, randLog(3, 2, 20)); err != nil {
		t.Fatal(err)
	}
	// Duplicate identities across inputs.
	if err := Merge(filepath.Join(dir, "dup.sta"), a, a); err == nil {
		t.Errorf("duplicate-case merge accepted")
	}
	// Missing input.
	if err := Merge(filepath.Join(dir, "x.sta"), filepath.Join(dir, "missing.sta")); err == nil {
		t.Errorf("missing input accepted")
	}
}
