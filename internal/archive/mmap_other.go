//go:build !unix

package archive

import "os"

// mmapFile reports that mapping is unavailable; readers use the ReadAt
// fallback path on these platforms.
func mmapFile(f *os.File, size int64) ([]byte, func() error, bool) {
	return nil, nil, false
}
