// Package cliutil holds the exit-status contract shared by the
// repository's commands: 0 on success (including an explicit -h/-help
// request), 2 for command-line (usage) errors, 1 for runtime failures.
// Both stinspect and stbench document this contract; keeping the
// classification here means it cannot drift between them.
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io"
)

// UsageError marks command-line mistakes (bad flags, missing operands,
// contradictory options), distinguishing "you invoked me wrong" (exit
// 2) from "the work failed" (exit 1) in scripts.
type UsageError struct{ Err error }

func (e UsageError) Error() string { return e.Err.Error() }
func (e UsageError) Unwrap() error { return e.Err }

// Usagef builds a usage error from a format string.
func Usagef(format string, args ...any) error {
	return UsageError{fmt.Errorf(format, args...)}
}

// Usage wraps an existing error (a flag.FlagSet.Parse failure, say) as
// a usage error. A nil error stays nil.
func Usage(err error) error {
	if err == nil {
		return nil
	}
	return UsageError{err}
}

// ExitCode maps an error from a command's run function to the process
// exit status. An explicit help request is a success: flag has already
// printed the usage text the user asked for.
func ExitCode(err error) int {
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return 0
	}
	var ue UsageError
	if errors.As(err, &ue) {
		return 2
	}
	return 1
}

// Report prints err prefixed with the tool name (help requests and nil
// print nothing) and returns the exit status — the one-liner for a
// command's main.
func Report(w io.Writer, tool string, err error) int {
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(w, "%s: %v\n", tool, err)
	}
	return ExitCode(err)
}
