package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"strings"
	"testing"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 0},
		{"help request", flag.ErrHelp, 0},
		{"wrapped help request", Usage(flag.ErrHelp), 0},
		{"usage", Usagef("bad -x"), 2},
		{"wrapped usage", fmt.Errorf("context: %w", Usagef("bad")), 2},
		{"runtime", errors.New("disk on fire"), 1},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: ExitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestUsage(t *testing.T) {
	if Usage(nil) != nil {
		t.Error("Usage(nil) != nil")
	}
	base := errors.New("boom")
	if !errors.Is(Usage(base), base) {
		t.Error("Usage does not unwrap to the original error")
	}
}

func TestReport(t *testing.T) {
	var b strings.Builder
	if got := Report(&b, "tool", Usagef("bad flag")); got != 2 || b.String() != "tool: bad flag\n" {
		t.Errorf("usage: exit %d, output %q", got, b.String())
	}
	b.Reset()
	if got := Report(&b, "tool", flag.ErrHelp); got != 0 || b.Len() != 0 {
		t.Errorf("help: exit %d, output %q — help requests must print nothing", got, b.String())
	}
	b.Reset()
	if got := Report(&b, "tool", nil); got != 0 || b.Len() != 0 {
		t.Errorf("nil: exit %d, output %q", got, b.String())
	}
}
