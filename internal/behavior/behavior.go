// Package behavior derives behavior profiles from event-logs: per case
// and merged, which files a process opened, read, wrote, deleted or
// renamed, which commands it executed and which network endpoints it
// connected to. It is the fourth mergeable aggregate next to the
// activity-log (pm), the DFG (dfg) and the statistics (stats), and the
// consumer the semantic decoding layer (internal/strace/decode.go)
// exists for: the strace parser folds dirfd resolution, argv decoding
// and socket-address decoding into the event file-path, so
// classification here is a pure function of the backend-independent
// trace.Event — the same profile falls out of strace text, STA/STA2
// archives and DXT dumps.
//
// Profiles follow the aggregate contract of the other three: Merge is
// exact (integer count sums under a string-preserving symbol remap), so
// profiles built per shard, per epoch or per process combine into
// byte-identical artifacts at any parallelism, window, shard count or
// symbol-table scoping. Each profile owns a scoped intern.Local symbol
// table for its subjects — the private encoding dies with the profile;
// the strings are the meaning.
package behavior

import (
	"fmt"
	"sort"
	"strings"

	"stinspector/internal/intern"
	"stinspector/internal/trace"
)

// Op classifies what a behavior-relevant event did to its subject.
type Op uint8

const (
	// OpOpened is a plain file open (open/openat/openat2).
	OpOpened Op = iota
	// OpRead is a byte-transferring read variant.
	OpRead
	// OpWritten covers write variants and file-creating or
	// -truncating mutations (creat, truncate, mkdir).
	OpWritten
	// OpDeleted is a file or directory removal.
	OpDeleted
	// OpRenamed is a rename; the subject is the source path.
	OpRenamed
	// OpSpawned is a process execution; the subject is the decoded
	// command line.
	OpSpawned
	// OpConnected is a network connection; the subject is the
	// canonical endpoint ("ip:port", "[v6]:port", or a socket path).
	OpConnected

	numOps
)

var opNames = [numOps]string{
	"opened", "read", "written", "deleted", "renamed", "spawned", "connected",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Classify maps a system-call name to its behavior class. Calls outside
// the behavior taxonomy (close, lseek, fsync, …) report false and do
// not contribute to profiles.
func Classify(call string) (Op, bool) {
	switch call {
	case "open", "openat", "openat2":
		return OpOpened, true
	case "read", "pread64", "readv", "preadv", "preadv2":
		return OpRead, true
	case "write", "pwrite64", "writev", "pwritev", "pwritev2",
		"creat", "truncate", "ftruncate", "mkdir", "mkdirat":
		return OpWritten, true
	case "unlink", "unlinkat", "rmdir":
		return OpDeleted, true
	case "rename", "renameat", "renameat2":
		return OpRenamed, true
	case "execve", "execveat":
		return OpSpawned, true
	case "connect":
		return OpConnected, true
	}
	return 0, false
}

// Profile is the mergeable behavior aggregate: per-case counts of
// distinct subjects per operation class. Like dfg.Graph it is both the
// accumulator and the queryable result — Add/AddCase fold events in,
// Merge combines profiles exactly, and the query methods (Cases,
// Merged, RenderText) materialize deterministic views at any point.
type Profile struct {
	syms  *intern.Local
	cases map[trace.CaseID]*caseAcc
}

type caseAcc struct {
	ops    [numOps]map[intern.Sym]int
	events int
}

// New returns an empty profile owning a fresh scoped symbol table.
func New() *Profile {
	return &Profile{
		syms:  intern.NewLocal(),
		cases: make(map[trace.CaseID]*caseAcc),
	}
}

// Add folds one event into the profile. Events outside the behavior
// taxonomy or without a subject are skipped.
func (p *Profile) Add(e trace.Event) {
	op, ok := Classify(e.Call)
	if !ok || e.FP == "" {
		return
	}
	id := e.CaseID()
	acc := p.cases[id]
	if acc == nil {
		acc = &caseAcc{}
		p.cases[id] = acc
	}
	m := acc.ops[op]
	if m == nil {
		m = make(map[intern.Sym]int)
		acc.ops[op] = m
	}
	m[p.syms.Intern(e.FP)]++
	acc.events++
}

// AddCase folds every event of the case.
func (p *Profile) AddCase(c *trace.Case) {
	for _, e := range c.Events {
		p.Add(e)
	}
}

// FromLog builds a profile over a whole event-log.
func FromLog(el *trace.EventLog) *Profile {
	p := New()
	for _, c := range el.Cases() {
		p.AddCase(c)
	}
	return p
}

// Merge folds q into p, exactly: q's symbols are remapped into p's
// table (a string-preserving translation) and the per-case counts sum
// as integers. Merging per-shard or per-epoch profiles of a disjoint
// case partition in any order yields the same queryable state — and
// the same snapshot bytes — a single sequential fold produces. q is
// not modified; a nil q is a no-op.
func (p *Profile) Merge(q *Profile) {
	if q == nil {
		return
	}
	r := q.syms.RemapInto(p.syms)
	for id, qa := range q.cases {
		acc := p.cases[id]
		if acc == nil {
			acc = &caseAcc{}
			p.cases[id] = acc
		}
		acc.events += qa.events
		for op, m := range qa.ops {
			if len(m) == 0 {
				continue
			}
			dm := acc.ops[op]
			if dm == nil {
				dm = make(map[intern.Sym]int, len(m))
				acc.ops[op] = dm
			}
			for y, n := range m {
				dm[r[y]] += n
			}
		}
	}
}

// Merge combines profiles into a new one; nil inputs are skipped and
// the inputs are not modified.
func Merge(ps ...*Profile) *Profile {
	out := New()
	for _, q := range ps {
		out.Merge(q)
	}
	return out
}

// NumCases returns the number of cases with at least one behavior
// event.
func (p *Profile) NumCases() int { return len(p.cases) }

// Events returns the total number of behavior events folded in.
func (p *Profile) Events() int {
	n := 0
	for _, acc := range p.cases {
		n += acc.events
	}
	return n
}

// Entry is one subject of a case profile with its event count.
type Entry struct {
	Subject string
	Count   int
}

// CaseProfile is the queryable per-case (or merged) view: for each
// operation class, the distinct subjects touched with their counts, in
// ascending subject order.
type CaseProfile struct {
	ID     trace.CaseID
	Events int
	Opened, Read, Written, Deleted,
	Renamed, Spawned, Connected []Entry
}

func (cp *CaseProfile) byOp() [numOps]*[]Entry {
	return [numOps]*[]Entry{
		&cp.Opened, &cp.Read, &cp.Written, &cp.Deleted,
		&cp.Renamed, &cp.Spawned, &cp.Connected,
	}
}

func (p *Profile) caseProfile(id trace.CaseID, acc *caseAcc) CaseProfile {
	cp := CaseProfile{ID: id, Events: acc.events}
	dst := cp.byOp()
	for op := Op(0); op < numOps; op++ {
		m := acc.ops[op]
		if len(m) == 0 {
			continue
		}
		es := make([]Entry, 0, len(m))
		for y, n := range m {
			es = append(es, Entry{Subject: p.syms.Str(y), Count: n})
		}
		sort.Slice(es, func(i, j int) bool { return es[i].Subject < es[j].Subject })
		*dst[op] = es
	}
	return cp
}

// Cases returns the per-case profiles in ascending CaseID order.
func (p *Profile) Cases() []CaseProfile {
	ids := p.sortedIDs()
	out := make([]CaseProfile, len(ids))
	for i, id := range ids {
		out[i] = p.caseProfile(id, p.cases[id])
	}
	return out
}

// Merged returns the union profile over every case: the distinct
// subjects per operation with counts summed across cases. Its ID is
// the zero CaseID.
func (p *Profile) Merged() CaseProfile {
	acc := &caseAcc{}
	for _, ca := range p.cases {
		acc.events += ca.events
		for op, m := range ca.ops {
			if len(m) == 0 {
				continue
			}
			dm := acc.ops[op]
			if dm == nil {
				dm = make(map[intern.Sym]int, len(m))
				acc.ops[op] = dm
			}
			for y, n := range m {
				dm[y] += n
			}
		}
	}
	return p.caseProfile(trace.CaseID{}, acc)
}

// Totals returns the merged distinct-subject counts by theme: files
// (opened/read/written/deleted/renamed paths), hosts (connection
// endpoints) and commands (spawn command lines) — the structural
// columns the benchmark matrix tracks.
func (p *Profile) Totals() (files, hosts, commands int) {
	distinct := [numOps]map[intern.Sym]bool{}
	for _, ca := range p.cases {
		for op, m := range ca.ops {
			if len(m) == 0 {
				continue
			}
			if distinct[op] == nil {
				distinct[op] = make(map[intern.Sym]bool, len(m))
			}
			for y := range m {
				distinct[op][y] = true
			}
		}
	}
	fileSet := make(map[intern.Sym]bool)
	for _, op := range []Op{OpOpened, OpRead, OpWritten, OpDeleted, OpRenamed} {
		for y := range distinct[op] {
			fileSet[y] = true
		}
	}
	return len(fileSet), len(distinct[OpConnected]), len(distinct[OpSpawned])
}

func (p *Profile) sortedIDs() []trace.CaseID {
	ids := make([]trace.CaseID, 0, len(p.cases))
	for id := range p.cases {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// RenderText renders the profile as a deterministic text listing: the
// merged view first, then every case in ascending CaseID order.
// Subjects are quoted, so hostile path bytes render unambiguously. The
// output is a pure function of the profile's content — the form the
// equivalence matrix compares across backends and fold shapes.
func (p *Profile) RenderText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "behavior: %d cases, %d events\n", p.NumCases(), p.Events())
	writeCaseProfile(&b, "merged", p.Merged())
	for _, cp := range p.Cases() {
		writeCaseProfile(&b, cp.ID.String(), cp)
	}
	return b.String()
}

func writeCaseProfile(b *strings.Builder, label string, cp CaseProfile) {
	fmt.Fprintf(b, "%s: %d events\n", label, cp.Events)
	src := cp.byOp()
	for op := Op(0); op < numOps; op++ {
		for _, e := range *src[op] {
			fmt.Fprintf(b, "  %s %q %d\n", opNames[op], e.Subject, e.Count)
		}
	}
}
