package behavior_test

import (
	"bytes"
	"errors"
	"testing"

	"stinspector/internal/behavior"
	"stinspector/internal/snapshot/wire"
	"stinspector/internal/synth/profiles"
	"stinspector/internal/trace"
)

func mkEvent(pid int, call, fp string) trace.Event {
	return trace.Event{PID: pid, Call: call, Dur: 1000, FP: fp}
}

// TestClassify pins the call taxonomy: every behavior call maps to its
// class, and the non-behavior I/O bookkeeping calls stay outside.
func TestClassify(t *testing.T) {
	for call, want := range map[string]behavior.Op{
		"openat": behavior.OpOpened, "open": behavior.OpOpened, "openat2": behavior.OpOpened,
		"read": behavior.OpRead, "pread64": behavior.OpRead, "preadv2": behavior.OpRead,
		"write": behavior.OpWritten, "truncate": behavior.OpWritten, "mkdirat": behavior.OpWritten,
		"unlink": behavior.OpDeleted, "unlinkat": behavior.OpDeleted, "rmdir": behavior.OpDeleted,
		"rename": behavior.OpRenamed, "renameat2": behavior.OpRenamed,
		"execve": behavior.OpSpawned, "execveat": behavior.OpSpawned,
		"connect": behavior.OpConnected,
	} {
		if got, ok := behavior.Classify(call); !ok || got != want {
			t.Errorf("Classify(%q) = %v, %v; want %v, true", call, got, ok, want)
		}
	}
	for _, call := range []string{"close", "lseek", "fsync", "brk", "mmap", ""} {
		if _, ok := behavior.Classify(call); ok {
			t.Errorf("Classify(%q) accepted a non-behavior call", call)
		}
	}
}

// TestProfileFoldViews: a small hand-built case yields the expected
// per-class subjects, the merged view sums across cases, and Totals
// reports the distinct files / hosts / commands split.
func TestProfileFoldViews(t *testing.T) {
	a := trace.NewCase(trace.CaseID{CID: "app", Host: "h1", RID: 1}, []trace.Event{
		mkEvent(1, "openat", "/data/in.bin"),
		mkEvent(1, "read", "/data/in.bin"),
		mkEvent(1, "read", "/data/in.bin"),
		mkEvent(1, "write", "/data/out.bin"),
		mkEvent(1, "close", "/data/in.bin"), // outside the taxonomy
		mkEvent(1, "execve", "/usr/bin/gzip -9 out.bin"),
		mkEvent(1, "connect", "10.0.0.7:443"),
	})
	b := trace.NewCase(trace.CaseID{CID: "app", Host: "h2", RID: 2}, []trace.Event{
		mkEvent(2, "connect", "10.0.0.7:443"),
		mkEvent(2, "connect", "/run/db.sock"),
		mkEvent(2, "unlink", "/data/out.bin"),
	})
	p := behavior.New()
	p.AddCase(a)
	p.AddCase(b)

	if p.NumCases() != 2 || p.Events() != 9 {
		t.Fatalf("profile has %d cases / %d events, want 2 / 9", p.NumCases(), p.Events())
	}
	cs := p.Cases()
	if len(cs) != 2 || cs[0].ID != a.ID || cs[1].ID != b.ID {
		t.Fatalf("Cases() order = %v", cs)
	}
	if len(cs[0].Read) != 1 || cs[0].Read[0] != (behavior.Entry{Subject: "/data/in.bin", Count: 2}) {
		t.Errorf("case a read entries = %v", cs[0].Read)
	}
	if len(cs[0].Spawned) != 1 || cs[0].Spawned[0].Subject != "/usr/bin/gzip -9 out.bin" {
		t.Errorf("case a spawned entries = %v", cs[0].Spawned)
	}
	m := p.Merged()
	if m.Events != 9 {
		t.Errorf("merged events = %d, want 9", m.Events)
	}
	if len(m.Connected) != 2 || m.Connected[0].Subject != "/run/db.sock" ||
		m.Connected[1] != (behavior.Entry{Subject: "10.0.0.7:443", Count: 2}) {
		t.Errorf("merged connected = %v", m.Connected)
	}
	files, hosts, cmds := p.Totals()
	// Files: /data/in.bin, /data/out.bin. Hosts: the endpoint and the
	// socket path. Commands: the one spawn.
	if files != 2 || hosts != 2 || cmds != 1 {
		t.Errorf("Totals = %d files, %d hosts, %d commands; want 2, 2, 1", files, hosts, cmds)
	}
}

// TestMergeExact: for every generator profile — including the hostile
// vocabularies and the multitenant shape — merging per-shard partial
// profiles in any order reproduces the sequential fold's rendering
// byte-for-byte, nil inputs are no-ops, and merge does not disturb its
// source.
func TestMergeExact(t *testing.T) {
	for _, p := range profiles.All() {
		t.Run(p.Name, func(t *testing.T) {
			el := p.Generate("bm", 9, 60, 21)
			want := behavior.FromLog(el).RenderText()

			cases := el.Cases()
			shard := func(lo, hi int) *behavior.Profile {
				q := behavior.New()
				for _, c := range cases[lo:hi] {
					q.AddCase(c)
				}
				return q
			}
			a, b, c := shard(0, 3), shard(3, 7), shard(7, 9)
			bBefore := b.RenderText()

			if got := behavior.Merge(a, b, c).RenderText(); got != want {
				t.Error("forward shard merge differs from the sequential fold")
			}
			if got := behavior.Merge(c, nil, a, b, nil).RenderText(); got != want {
				t.Error("reordered merge with nils differs from the sequential fold")
			}
			if b.RenderText() != bBefore {
				t.Error("Merge modified a source profile")
			}
		})
	}
}

// TestSnapshotFixedPoint: for every generator profile the snapshot
// section is a fixed point — decode(encode(p)) renders identically and
// re-encodes to the identical bytes, whatever fold shape built p.
func TestSnapshotFixedPoint(t *testing.T) {
	for _, p := range profiles.All() {
		t.Run(p.Name, func(t *testing.T) {
			el := p.Generate("bs", 7, 50, 33)
			seq := behavior.FromLog(el)

			// A sharded fold must hit the same encoding as the
			// sequential one: the dictionary order is canonical, not
			// insertion-historical.
			cases := el.Cases()
			sharded := behavior.New()
			for i := len(cases) - 1; i >= 0; i-- {
				part := behavior.New()
				part.AddCase(cases[i])
				sharded.Merge(part)
			}
			enc := seq.EncodeSnapshot()
			if !bytes.Equal(sharded.EncodeSnapshot(), enc) {
				t.Fatal("sharded fold encodes differently from the sequential fold")
			}

			got, err := behavior.DecodeSnapshot(enc)
			if err != nil {
				t.Fatal(err)
			}
			if got.RenderText() != seq.RenderText() {
				t.Error("decoded profile renders differently")
			}
			if !bytes.Equal(got.EncodeSnapshot(), enc) {
				t.Error("re-encode after decode differs: the section is not a fixed point")
			}
		})
	}
}

// TestSnapshotHostileBytes: truncations and bit flips of a snapshot
// section must decode to an error or to equivalent state, never panic.
func TestSnapshotHostileBytes(t *testing.T) {
	el, _ := profiles.Lookup("hostileargs")
	enc := behavior.FromLog(el.Generate("bc", 3, 30, 2)).EncodeSnapshot()

	for cut := 0; cut < len(enc); cut++ {
		if _, err := behavior.DecodeSnapshot(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
	mut := make([]byte, len(enc))
	for pos := 0; pos < len(enc); pos++ {
		copy(mut, enc)
		mut[pos] ^= 0x08
		got, err := behavior.DecodeSnapshot(mut)
		if err == nil {
			if !bytes.Equal(got.EncodeSnapshot(), enc) {
				// The profile layer has no checksum of its own — that
				// is the container's job — so a flip may legitimately
				// decode to *different* valid state (e.g. a changed
				// count); it must simply never panic or corrupt memory.
				_ = got.RenderText()
			}
		}
	}
	var ce *wire.CorruptError
	if _, err := behavior.DecodeSnapshot([]byte{0xff, 0xff, 0xff, 0xff, 0xff}); !errors.As(err, &ce) {
		t.Errorf("garbage header: err = %v, want CorruptError", err)
	}
}
